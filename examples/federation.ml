(* Federation walkthrough: what the wrappers actually export at registration
   time, and how the blended cost model changes the optimizer's decisions
   compared to the generic-only model.

     dune exec examples/federation.exe *)

open Disco_core
open Disco_wrapper
open Disco_mediator

let hr () = print_endline (String.make 72 '-')

let () =
  let wrappers = Demo.make ~sizes:Demo.small_sizes () in

  (* 1. What a wrapper ships to the mediator during registration: the
     cost-communication-language text of paper §3 — interfaces with
     cardinality sections, plus cost rules. *)
  hr ();
  print_endline "Registration text exported by the 'web' wrapper:";
  hr ();
  let web = List.find (fun w -> w.Wrapper.name = "web") wrappers in
  print_endline (Wrapper.registration_text web);

  (* 2. Two mediators over the same data: one receives the wrappers' cost
     rules, the other only their statistics (the calibrating baseline). *)
  let blended = Mediator.create () in
  List.iter (Mediator.register blended) wrappers;
  let generic = Mediator.create () in
  List.iter
    (Mediator.register generic)
    (List.map Wrapper.without_rules (Demo.make ~sizes:Demo.small_sizes ()));

  (* 3. The strategy-mismatch query (bench T2/Q4): the generic model assumes
     every source implements a cheap sort-merge join; the object store only
     has nested-loop and index joins, and its exported rule says so. *)
  let query =
    "select t.id from Task t, Project p \
     where t.hours = p.hours_budget and t.id <= 50 and p.id <= 10"
  in
  hr ();
  Fmt.pr "Query: %s@." query;
  hr ();
  let show label med =
    let plan, cost = Mediator.plan_query med query in
    Fmt.pr "%s cost model chooses (estimated %.0f ms):@.%a@." label cost
      Disco_algebra.Plan.pp_indented plan
  in
  show "GENERIC" generic;
  show "BLENDED" blended;

  (* 4. Execute both mediators' choices and compare the simulated time. *)
  let run label med =
    let a = Mediator.run_query med query in
    Fmt.pr "%s plan measured: %a@." label Disco_exec.Run.pp_vector a.Mediator.measured;
    a.Mediator.measured.Disco_exec.Run.total_time
  in
  let tg = run "GENERIC" generic in
  let tb = run "BLENDED" blended in
  Fmt.pr "speedup from wrapper cost rules: %.2fx@." (tg /. tb);

  (* 5. Where each estimate came from: the explain output annotates every
     node with the scope of the rule that priced it. *)
  hr ();
  print_endline "Blended explain (note wrapper/collection scopes):";
  hr ();
  print_string (Mediator.explain blended query);
  (* provenance of a single estimate *)
  let plan, _ = Mediator.plan_query blended query in
  let ann = Estimator.estimate (Mediator.registry blended) plan in
  (match Estimator.provenance ann Disco_costlang.Ast.Total_time with
   | Some p ->
     Fmt.pr "root TotalTime priced by a %s-scope rule of source %S@."
       (Scope.to_string p.Estimator.rule_scope)
       p.Estimator.rule_source
   | None -> ());

  (* 6. Static analysis of the blended model: the same lint pass that backs
     [disco lint] and strict-mode registration, run in-process. The demo
     exports are deliberately clean — every finding is informational
     (shadowed defaults, min-combined ties, partial coverage with generic
     fallback). A wrapper whose rules can divide by zero or drive a cost
     negative would be rejected by [Mediator.create ~lint:`Error ()]. *)
  hr ();
  print_endline "Lint findings over the blended model:";
  hr ();
  let module A = Disco_analysis.Analyzer in
  let findings = A.analyze (Mediator.registry blended) in
  let count sev = List.length (List.filter (fun f -> f.A.severity = sev) findings) in
  List.iter (fun f -> Fmt.pr "%a@." A.pp_finding f)
    (List.filter (fun f -> f.A.severity <> A.Info) findings);
  Fmt.pr "%d findings: %d errors, %d warnings, %d info@."
    (List.length findings) (count A.Error) (count A.Warning) (count A.Info)
