(* Batched execution: run the same plan through both engines and read both
   clocks — the simulated cost vector (bit-identical between engines, by
   construction) and the real wall clock (where the vectorized engine earns
   its keep).

     dune exec examples/batch.exe

   Engine selection is also available without code changes: set
   DISCO_ENGINE=batch (and optionally DISCO_BATCH=<rows>) and every
   execution that does not pass an explicit mode — the mediator, the CLI,
   the benches — switches to the batched engine. *)

open Disco_common
open Disco_catalog
open Disco_algebra
open Disco_storage
open Disco_exec

let () =
  (* A little OO7-flavoured table: ids, a build date to filter on. *)
  let n = 200_000 in
  let schema =
    Schema.collection "AtomicPart"
      [ ("id", Schema.Tint); ("buildDate", Schema.Tint); ("docId", Schema.Tint) ]
  in
  let rng = Rng.create ~seed:7 in
  let rows =
    List.init n (fun i ->
        [| Constant.Int i; Constant.Int (Rng.int rng 1000); Constant.Int (i / 20) |])
  in
  let table =
    Table.create ~name:"AtomicPart" ~schema ~object_size:104 ~index_on:[ "id" ] rows
  in
  let plan =
    Physical.Pscan
      { table;
        binding = "a";
        access = Physical.Full_scan;
        residual = Pred.Cmp ("a.buildDate", Pred.Lt, Constant.Int 300) }
  in
  let env () =
    { Run.engine = Costs.relational;
      buffer = Buffer.create ~capacity:2048;
      hash_join = false;
      adts = [] }
  in

  (* 1. Explicit engine selection via [mode]. *)
  let rt = Run.run ~mode:Run.Tuple_at_a_time (env ()) plan in
  let rb = Run.run ~mode:(Run.Batched { batch_size = 1024 }) (env ()) plan in

  (* 2. Both engines return the same rows and the same *simulated* times:
     the cost model's clock is part of the semantics, not a measurement. *)
  assert (List.length rt.Run.rows = List.length rb.Run.rows);
  assert (List.for_all2 Tuple.equal rt.Run.rows rb.Run.rows);
  assert (
    Int64.bits_of_float rt.Run.total = Int64.bits_of_float rb.Run.total);

  Fmt.pr "rows kept           : %d of %d@." (List.length rt.Run.rows) n;
  Fmt.pr "simulated total (ms): tuple %.3f | batched %.3f (bit-identical)@."
    rt.Run.total rb.Run.total;

  (* 3. The *wall* clock is the engines' own execution time — the one place
     they are allowed to differ. *)
  Fmt.pr "wall clock (ms)     : tuple %.2f | batched %.2f (%.1fx)@."
    rt.Run.wall_ms rb.Run.wall_ms
    (rt.Run.wall_ms /. Float.max rb.Run.wall_ms 1e-9);

  (* 4. The columnar result can also be kept as batches (no tuple
     materialization at all) for callers that consume columns. *)
  let br = Run.run_batched ~batch_size:1024 (env ()) plan in
  Fmt.pr "batched result      : %d batches, %d rows, %d bytes@."
    (List.length br.Run.batches) br.Run.bcount br.Run.bbytes;

  (* 5. Process-wide default via the environment, as the CLI does it:
     DISCO_ENGINE=batch [DISCO_BATCH=rows]. *)
  (match Run.default_mode () with
  | Run.Batched { batch_size } ->
    Fmt.pr "default engine      : batched (batch_size %d, from DISCO_ENGINE)@."
      batch_size
  | Run.Tuple_at_a_time ->
    Fmt.pr "default engine      : tuple-at-a-time (set DISCO_ENGINE=batch to switch)@.")
