(** Runtime values flowing through compiled cost formulas. Formulas compute
    numbers, but function arguments may also be attribute/collection names,
    constants, or whole predicates (e.g. [sel(P)]). *)

open Disco_common
open Disco_algebra

type t =
  | Vnum of float
  | Vconst of Constant.t
  | Vname of string  (** an attribute or collection name bound in a head *)
  | Vpred of Pred.t  (** a predicate bound to a predicate variable *)

val pp : Format.formatter -> t -> unit

val to_num : t -> float
(** Numeric view; booleans coerce to 0/1.
    @raise Disco_common.Err.Eval_error for names, predicates and non-numeric
    constants. *)

val num : float -> t
