lib/costlang/ast.ml: Constant Disco_algebra Disco_catalog Disco_common List Pred Schema String
