lib/costlang/parser.ml: Array Ast Constant Disco_algebra Disco_catalog Disco_common Err Float Fmt Lexer List Pred Schema String
