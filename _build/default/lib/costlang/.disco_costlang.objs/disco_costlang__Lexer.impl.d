lib/costlang/lexer.ml: Buffer Disco_common Err Fmt List String
