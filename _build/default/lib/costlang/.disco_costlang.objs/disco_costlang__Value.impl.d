lib/costlang/value.ml: Constant Disco_algebra Disco_common Err Fmt Pred
