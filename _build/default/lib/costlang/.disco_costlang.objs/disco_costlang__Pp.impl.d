lib/costlang/pp.ml: Ast Constant Disco_algebra Disco_catalog Disco_common Fmt List Pred Schema String
