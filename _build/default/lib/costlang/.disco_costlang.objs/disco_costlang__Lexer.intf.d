lib/costlang/lexer.mli: Format
