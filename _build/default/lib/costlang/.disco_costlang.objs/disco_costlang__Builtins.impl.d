lib/costlang/builtins.ml: Disco_common Err Float Fmt List Value
