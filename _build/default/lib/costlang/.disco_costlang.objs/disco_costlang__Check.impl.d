lib/costlang/check.ml: Ast Builtins Fmt List Option Pp
