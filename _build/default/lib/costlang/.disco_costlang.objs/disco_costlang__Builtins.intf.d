lib/costlang/builtins.mli: Value
