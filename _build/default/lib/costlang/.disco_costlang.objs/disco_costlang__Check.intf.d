lib/costlang/check.mli: Ast Format
