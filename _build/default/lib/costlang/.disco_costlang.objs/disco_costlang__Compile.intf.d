lib/costlang/compile.mli: Ast Value
