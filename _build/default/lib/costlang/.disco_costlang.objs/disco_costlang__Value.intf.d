lib/costlang/value.mli: Constant Disco_algebra Disco_common Format Pred
