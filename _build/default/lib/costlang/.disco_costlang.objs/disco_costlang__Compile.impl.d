lib/costlang/compile.ml: Ast Constant Disco_common Err Fmt List Value
