lib/costlang/pp.mli: Ast Format
