lib/costlang/parser.mli: Ast
