lib/costlang/ast.mli: Constant Disco_algebra Disco_catalog Disco_common Pred Schema
