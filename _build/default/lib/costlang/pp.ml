(* Pretty-printer for the cost language AST, producing concrete syntax that
   reparses to an equal AST (round-trip property tested in the test suite). *)

open Disco_common
open Disco_algebra
open Disco_catalog

let rec expr ppf (e : Ast.expr) =
  match e with
  | Ast.Binop (Ast.Add, a, b) -> Fmt.pf ppf "%a + %a" expr a expr b
  | Ast.Binop (Ast.Sub, a, b) -> Fmt.pf ppf "%a - %a" expr a term b
  | e -> term ppf e

and term ppf (e : Ast.expr) =
  match e with
  | Ast.Binop (Ast.Mul, a, b) -> Fmt.pf ppf "%a * %a" term a factor b
  | Ast.Binop (Ast.Div, a, b) -> Fmt.pf ppf "%a / %a" term a factor b
  | e -> factor ppf e

and factor ppf (e : Ast.expr) =
  match e with
  | Ast.Num f -> Fmt.pf ppf "%.12g" f
  | Ast.Str s -> Fmt.pf ppf "%S" s
  | Ast.Ref path -> Fmt.string ppf (String.concat "." path)
  | Ast.Neg e -> Fmt.pf ppf "-%a" factor e
  | Ast.Call (name, args) ->
    Fmt.pf ppf "%s(%a)" name Fmt.(list ~sep:(any ", ") expr) args
  | Ast.Binop _ -> Fmt.pf ppf "(%a)" expr e

let const ppf (c : Constant.t) =
  match c with
  | Constant.Null -> Fmt.string ppf "null"
  | Constant.Bool b -> Fmt.bool ppf b
  | Constant.Int i -> Fmt.int ppf i
  | Constant.Float f -> Fmt.pf ppf "%.12g" f
  | Constant.String s -> Fmt.pf ppf "%S" s

let arg_pat ppf = function
  | Ast.Pvar v -> Fmt.string ppf v
  | Ast.Pname n -> Fmt.string ppf n
  | Ast.Pconst c -> const ppf c

let pred_pat ppf = function
  | Ast.Ppred_var v -> Fmt.string ppf v
  | Ast.Pcmp (l, op, r) -> Fmt.pf ppf "%a %a %a" arg_pat l Pred.pp_cmp op arg_pat r

let head ppf (h : Ast.head) =
  match h with
  | Ast.Hscan c -> Fmt.pf ppf "scan(%a)" arg_pat c
  | Ast.Hselect (c, p) -> Fmt.pf ppf "select(%a, %a)" arg_pat c pred_pat p
  | Ast.Hproject (c, a) -> Fmt.pf ppf "project(%a, %a)" arg_pat c arg_pat a
  | Ast.Hsort (c, a) -> Fmt.pf ppf "sort(%a, %a)" arg_pat c arg_pat a
  | Ast.Hjoin (l, r, p) -> Fmt.pf ppf "join(%a, %a, %a)" arg_pat l arg_pat r pred_pat p
  | Ast.Hunion (l, r) -> Fmt.pf ppf "union(%a, %a)" arg_pat l arg_pat r
  | Ast.Hdedup c -> Fmt.pf ppf "dedup(%a)" arg_pat c
  | Ast.Haggregate (c, g) -> Fmt.pf ppf "aggregate(%a, %a)" arg_pat c arg_pat g
  | Ast.Hsubmit (w, c) -> Fmt.pf ppf "submit(%a, %a)" arg_pat w arg_pat c

let target ppf = function
  | Ast.Cost v -> Fmt.string ppf (Ast.cost_var_name v)
  | Ast.Local name -> Fmt.string ppf name

let rule ppf (r : Ast.rule) =
  Fmt.pf ppf "@[<v 2>rule %a {@ " head r.head;
  List.iter (fun (t, e) -> Fmt.pf ppf "%a = %a;@ " target t expr e) r.body;
  Fmt.pf ppf "@]}"

let member ppf (m : Ast.member) =
  match m with
  | Ast.Attr_decl (ty, name) -> Fmt.pf ppf "attribute %a %s;" Schema.pp_ty ty name
  | Ast.Extent_decl { count; total; objsize } ->
    Fmt.pf ppf "cardinality extent(%.12g, %.12g, %.12g);" count total objsize
  | Ast.Attr_stats { attr; indexed; distinct; min; max } ->
    Fmt.pf ppf "cardinality attribute(%s, %b, %.12g, %a, %a);" attr indexed distinct
      const min const max
  | Ast.Iface_rule r -> rule ppf r

let item ppf (i : Ast.item) =
  match i with
  | Ast.Capabilities ops -> Fmt.pf ppf "capabilities %s;" (String.concat ", " ops)
  | Ast.Let (name, e) -> Fmt.pf ppf "let %s = %a;" name expr e
  | Ast.Def (name, params, e) ->
    Fmt.pf ppf "def %s(%s) = %a;" name (String.concat ", " params) expr e
  | Ast.Interface decl ->
    let parent ppf = function None -> () | Some p -> Fmt.pf ppf " : %s" p in
    Fmt.pf ppf "@[<v 2>interface %s%a {@ %a@]@ }" decl.iface_name parent
      decl.iface_parent
      Fmt.(list ~sep:(any "@ ") member)
      decl.members
  | Ast.Toplevel_rule r -> rule ppf r

let source ppf (s : Ast.source_decl) =
  Fmt.pf ppf "@[<v 2>source %s {@ %a@]@ }" s.source_name
    Fmt.(list ~sep:(any "@ ") item)
    s.items

let source_to_string s = Fmt.str "%a" source s
