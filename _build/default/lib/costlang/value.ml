(* Runtime values flowing through compiled cost formulas. Formulas compute
   numbers, but function arguments may also be attribute/collection names,
   constants, or whole predicates (e.g. [sel(P)]). *)

open Disco_common
open Disco_algebra

type t =
  | Vnum of float
  | Vconst of Constant.t
  | Vname of string      (* an attribute or collection name bound in a head *)
  | Vpred of Pred.t      (* a predicate bound to a predicate variable *)

let pp ppf = function
  | Vnum f -> Fmt.float ppf f
  | Vconst c -> Constant.pp ppf c
  | Vname s -> Fmt.string ppf s
  | Vpred p -> Pred.pp ppf p

let to_num = function
  | Vnum f -> f
  | Vconst c ->
    (match Constant.to_float_opt c with
     | Some f -> f
     | None ->
       raise (Err.Eval_error (Fmt.str "constant %a is not numeric" Constant.pp c)))
  | Vname s -> raise (Err.Eval_error (Fmt.str "name %S used where a number was expected" s))
  | Vpred p ->
    raise
      (Err.Eval_error (Fmt.str "predicate %a used where a number was expected" Pred.pp p))

let num f = Vnum f
