(* Hand-written lexer for the cost communication language. *)

open Disco_common

type token =
  | IDENT of string
  | NUMBER of float
  | STRING of string
  | LBRACE
  | RBRACE
  | LPAREN
  | RPAREN
  | COMMA
  | SEMI
  | DOT
  | EQ
  | NE
  | LT
  | LE
  | GT
  | GE
  | COLON
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | EOF

let pp_token ppf = function
  | IDENT s -> Fmt.pf ppf "identifier %S" s
  | NUMBER f -> Fmt.pf ppf "number %g" f
  | STRING s -> Fmt.pf ppf "string %S" s
  | LBRACE -> Fmt.string ppf "'{'"
  | RBRACE -> Fmt.string ppf "'}'"
  | LPAREN -> Fmt.string ppf "'('"
  | RPAREN -> Fmt.string ppf "')'"
  | COMMA -> Fmt.string ppf "','"
  | SEMI -> Fmt.string ppf "';'"
  | DOT -> Fmt.string ppf "'.'"
  | EQ -> Fmt.string ppf "'='"
  | NE -> Fmt.string ppf "'<>'"
  | LT -> Fmt.string ppf "'<'"
  | LE -> Fmt.string ppf "'<='"
  | GT -> Fmt.string ppf "'>'"
  | GE -> Fmt.string ppf "'>='"
  | PLUS -> Fmt.string ppf "'+'"
  | MINUS -> Fmt.string ppf "'-'"
  | STAR -> Fmt.string ppf "'*'"
  | SLASH -> Fmt.string ppf "'/'"
  | COLON -> Fmt.string ppf "':'"
  | EOF -> Fmt.string ppf "end of input"

type spanned = { tok : token; line : int; col : int }

type state = {
  what : string;  (* description used in error messages *)
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable bol : int;  (* offset of beginning of current line *)
}

let make ~what src = { what; src; pos = 0; line = 1; bol = 0 }

let error st msg =
  Err.parse_error ~what:st.what ~line:st.line ~col:(st.pos - st.bol + 1) msg

let peek_char st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st =
  (match peek_char st with
   | Some '\n' ->
     st.line <- st.line + 1;
     st.bol <- st.pos + 1
   | _ -> ());
  st.pos <- st.pos + 1

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

(* Skip whitespace, [//] line comments and [/* */] block comments. *)
let rec skip_trivia st =
  match peek_char st with
  | Some (' ' | '\t' | '\r' | '\n') ->
    advance st;
    skip_trivia st
  | Some '/' when st.pos + 1 < String.length st.src && st.src.[st.pos + 1] = '/' ->
    while peek_char st <> None && peek_char st <> Some '\n' do
      advance st
    done;
    skip_trivia st
  | Some '/' when st.pos + 1 < String.length st.src && st.src.[st.pos + 1] = '*' ->
    advance st;
    advance st;
    let rec close () =
      match peek_char st with
      | None -> error st "unterminated block comment"
      | Some '*' when st.pos + 1 < String.length st.src && st.src.[st.pos + 1] = '/' ->
        advance st;
        advance st
      | Some _ ->
        advance st;
        close ()
    in
    close ();
    skip_trivia st
  | _ -> ()

let lex_ident st =
  let start = st.pos in
  while (match peek_char st with Some c -> is_ident_char c | None -> false) do
    advance st
  done;
  String.sub st.src start (st.pos - start)

let lex_number st =
  let start = st.pos in
  while (match peek_char st with Some c -> is_digit c | None -> false) do
    advance st
  done;
  (* fractional part: a '.' followed by a digit (a bare '.' is a path dot) *)
  (match peek_char st with
   | Some '.' when st.pos + 1 < String.length st.src && is_digit st.src.[st.pos + 1] ->
     advance st;
     while (match peek_char st with Some c -> is_digit c | None -> false) do
       advance st
     done
   | _ -> ());
  (match peek_char st with
   | Some ('e' | 'E') ->
     advance st;
     (match peek_char st with Some ('+' | '-') -> advance st | _ -> ());
     if not (match peek_char st with Some c -> is_digit c | None -> false) then
       error st "malformed exponent in number literal";
     while (match peek_char st with Some c -> is_digit c | None -> false) do
       advance st
     done
   | _ -> ());
  float_of_string (String.sub st.src start (st.pos - start))

let lex_string st =
  advance st;
  let buf = Buffer.create 16 in
  let rec go () =
    match peek_char st with
    | None -> error st "unterminated string literal"
    | Some '"' -> advance st
    | Some '\\' ->
      advance st;
      (match peek_char st with
       | Some 'n' -> Buffer.add_char buf '\n'
       | Some 't' -> Buffer.add_char buf '\t'
       | Some c -> Buffer.add_char buf c
       | None -> error st "unterminated string literal");
      advance st;
      go ()
    | Some c ->
      Buffer.add_char buf c;
      advance st;
      go ()
  in
  go ();
  Buffer.contents buf

let next st : spanned =
  skip_trivia st;
  let line = st.line and col = st.pos - st.bol + 1 in
  let simple tok =
    advance st;
    tok
  in
  let tok =
    match peek_char st with
    | None -> EOF
    | Some c when is_ident_start c -> IDENT (lex_ident st)
    | Some c when is_digit c -> NUMBER (lex_number st)
    | Some '"' -> STRING (lex_string st)
    | Some '{' -> simple LBRACE
    | Some '}' -> simple RBRACE
    | Some '(' -> simple LPAREN
    | Some ')' -> simple RPAREN
    | Some ',' -> simple COMMA
    | Some ';' -> simple SEMI
    | Some ':' -> simple COLON
    | Some '.' -> simple DOT
    | Some '=' -> simple EQ
    | Some '+' -> simple PLUS
    | Some '-' -> simple MINUS
    | Some '*' -> simple STAR
    | Some '/' -> simple SLASH
    | Some '<' ->
      advance st;
      (match peek_char st with
       | Some '=' -> simple LE
       | Some '>' -> simple NE
       | _ -> LT)
    | Some '>' ->
      advance st;
      (match peek_char st with Some '=' -> simple GE | _ -> GT)
    | Some c -> error st (Fmt.str "unexpected character %C" c)
  in
  { tok; line; col }

(* Tokenize the whole input. *)
let tokenize ~what src =
  let st = make ~what src in
  let rec go acc =
    let t = next st in
    if t.tok = EOF then List.rev (t :: acc) else go (t :: acc)
  in
  go []
