(** Recursive-descent parser for the cost communication language. The
    concrete grammar follows Fig 9 of the paper, extended with the full
    operator set of the mediator algebra, [let]/[def] declarations, and the
    IDL-subset interface syntax of Figs 3-5 (see DESIGN.md §3).

    All entry points raise {!Disco_common.Err.Parse_error} with source
    positions on malformed input. *)

val parse_source : what:string -> string -> Ast.source_decl
(** Parse a full [source name { ... }] declaration. *)

val parse_items : what:string -> string -> Ast.item list
(** Parse a sequence of items without the [source] wrapper; used for
    registering extra rules at runtime. *)

val parse_rule : what:string -> string -> Ast.rule
(** Parse a single [rule head { ... }]. *)

val parse_expr : what:string -> string -> Ast.expr
(** Parse a single formula expression (tests and tools). *)
