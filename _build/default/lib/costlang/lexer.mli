(** Hand-written lexer for the cost communication language (also reused by
    the SQL front end). Supports [//] line comments and [/* ... */] block
    comments. *)

type token =
  | IDENT of string
  | NUMBER of float
  | STRING of string
  | LBRACE
  | RBRACE
  | LPAREN
  | RPAREN
  | COMMA
  | SEMI
  | DOT
  | EQ
  | NE
  | LT
  | LE
  | GT
  | GE
  | COLON
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | EOF

val pp_token : Format.formatter -> token -> unit

type spanned = { tok : token; line : int; col : int }
(** A token with its 1-based source position. *)

val tokenize : what:string -> string -> spanned list
(** Tokenize the whole input, ending with [EOF]. [what] names the input in
    error messages.
    @raise Disco_common.Err.Parse_error on lexical errors. *)
