(** Pretty-printer for the cost language AST, producing concrete syntax that
    reparses to an equal AST (a property checked by the test suite). Used to
    render the registration text a wrapper ships to the mediator. *)

val expr : Format.formatter -> Ast.expr -> unit
val arg_pat : Format.formatter -> Ast.arg_pat -> unit
val pred_pat : Format.formatter -> Ast.pred_pat -> unit
val head : Format.formatter -> Ast.head -> unit
val target : Format.formatter -> Ast.target -> unit
val rule : Format.formatter -> Ast.rule -> unit
val member : Format.formatter -> Ast.member -> unit
val item : Format.formatter -> Ast.item -> unit
val source : Format.formatter -> Ast.source_decl -> unit

val source_to_string : Ast.source_decl -> string
