(** True cost coefficients of the simulated engines. Each data source has its
    own profile — the heterogeneity the paper's cost-model blending
    addresses: the mediator's generic model assumes one calibration vector,
    while the actual engines disagree with it and with each other. All values
    in (simulated) milliseconds. *)

type engine = {
  io_ms : float;       (** fetch one page *)
  output_ms : float;   (** materialize one object *)
  eval_ms : float;     (** evaluate one predicate *)
  startup_ms : float;  (** operation start-up *)
  probe_ms : float;    (** one index-level descent *)
  sort_ms : float;     (** per comparison of n log2 n sorting *)
}

(** Communication profile between the mediator and one source. *)
type network = {
  msg_ms : float;   (** per round-trip *)
  byte_ms : float;  (** per byte shipped *)
}

val objectstore : engine
(** The profile matching the paper's §5 ObjectStore measurements: 25 ms/page,
    9 ms/object. *)

val relational : engine
(** A relational engine: cheaper per-object CPU, similar IO. *)

val flat_file : engine
(** A flat-file source: expensive parsing per object, no usable indexes. *)

val mediator_engine : engine
(** The mediator's own in-memory composition engine. *)

val lan : network
val wan : network
(** A slow, high-latency link (the web source). *)
