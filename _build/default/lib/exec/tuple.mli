(** Runtime tuples: a flat array of constants with qualified attribute names
    ([e.salary]). Joins concatenate, projections restrict. *)

open Disco_common

type t = {
  attrs : string array;
  values : Constant.t array;
}

val make : string array -> Constant.t array -> t
(** @raise Invalid_argument on arity mismatch. *)

val arity : t -> int

val find_index : t -> string -> int option

val get : t -> string -> Constant.t
(** Lookup by qualified name, falling back to a unique unqualified-suffix
    match. @raise Disco_common.Err.Eval_error when absent or ambiguous. *)

val concat : t -> t -> t

val project : t -> string list -> t
(** Restrict (and reorder) to the given attributes. *)

val byte_size : t -> int
(** Serialized width, used to charge communication cost. *)

val equal : t -> t -> bool

val key : t -> string
(** A hashable key of the tuple's values (dedup, grouping). *)

val pp : Format.formatter -> t -> unit
val pp_with_names : Format.formatter -> t -> unit
