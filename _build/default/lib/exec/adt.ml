(* Abstract-data-type operations (paper §7): source-specific boolean
   operations over attribute values — the paper's motivating example is
   image matching — that are expensive compared to ordinary comparisons.
   The implementation is shipped to the mediator like cost rules are
   (§2.4), so deferred evaluation over composed results is possible; the
   per-call cost and selectivity are exported through the cost language as
   [let AdtCost_<name> = ...] and [let AdtSel_<name> = ...]. *)

open Disco_common

type t = {
  name : string;
  impl : Constant.t -> Constant.t -> bool;  (* attribute value, argument *)
  cost_ms : float;       (* simulated cost per invocation *)
  selectivity : float;   (* fraction of objects satisfying the operation *)
}

let make ~name ~cost_ms ~selectivity impl = { name; impl; cost_ms; selectivity }

let find (ops : t list) name = List.find_opt (fun o -> String.equal o.name name) ops

(* The [apply] callback for [Pred.eval]. *)
let apply (ops : t list) name a v =
  match find ops name with
  | Some op -> op.impl a v
  | None ->
    raise (Err.Eval_error (Fmt.str "no implementation for ADT operation %S" name))

(* Per-evaluation cost of a predicate: the engine's comparison cost plus the
   cost of every ADT invocation it contains (no short-circuit accounting). *)
let pred_cost (ops : t list) ~eval_ms (p : Disco_algebra.Pred.t) =
  List.fold_left
    (fun acc name ->
      acc +. (match find ops name with Some op -> op.cost_ms | None -> 0.))
    eval_ms
    (Disco_algebra.Pred.adt_operations p)
