(* Runtime tuples: a flat array of constants with qualified attribute names
   ("e.salary"). Joins concatenate, projections restrict. *)

open Disco_common

type t = {
  attrs : string array;
  values : Constant.t array;
}

let make attrs values =
  if Array.length attrs <> Array.length values then
    invalid_arg "Tuple.make: attribute/value arity mismatch";
  { attrs; values }

let arity t = Array.length t.attrs

let find_index t name =
  let rec go i =
    if i >= Array.length t.attrs then None
    else if String.equal t.attrs.(i) name then Some i
    else go (i + 1)
  in
  go 0

(* Attribute lookup; accepts both qualified names and, when unambiguous in
   the tuple, bare names. *)
let get t name : Constant.t =
  match find_index t name with
  | Some i -> t.values.(i)
  | None ->
    (* fall back to suffix match on the unqualified part *)
    let matches = ref [] in
    Array.iteri
      (fun i a ->
        match Disco_algebra.Plan.split_attr a with
        | Some (_, base) when String.equal base name -> matches := i :: !matches
        | _ -> ())
      t.attrs;
    (match !matches with
     | [ i ] -> t.values.(i)
     | _ ->
       raise
         (Err.Eval_error
            (Fmt.str "attribute %S not found in tuple (%s)" name
               (String.concat ", " (Array.to_list t.attrs)))))

let concat a b =
  { attrs = Array.append a.attrs b.attrs; values = Array.append a.values b.values }

let project t names =
  let values = Array.of_list (List.map (fun n -> get t n) names) in
  { attrs = Array.of_list names; values }

(* Serialized byte size, used to charge communication cost. *)
let byte_size t =
  Array.fold_left (fun acc v -> acc + Constant.byte_size v) 0 t.values

let equal a b =
  Array.length a.values = Array.length b.values
  && (let ok = ref true in
      Array.iteri (fun i v -> if not (Constant.equal v b.values.(i)) then ok := false) a.values;
      !ok)

(* A comparable key for hashing/dedup: the rendered values. *)
let key t = String.concat "\x00" (Array.to_list (Array.map Constant.to_string t.values))

let pp ppf t =
  Fmt.pf ppf "(%a)"
    Fmt.(array ~sep:(any ", ") Constant.pp)
    t.values

let pp_with_names ppf t =
  let item ppf i = Fmt.pf ppf "%s=%a" t.attrs.(i) Constant.pp t.values.(i) in
  Fmt.pf ppf "{%a}" Fmt.(list ~sep:(any "; ") item)
    (List.init (Array.length t.attrs) Fun.id)
