lib/exec/tuple.ml: Array Constant Disco_algebra Disco_common Err Fmt Fun List String
