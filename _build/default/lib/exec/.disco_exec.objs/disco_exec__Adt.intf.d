lib/exec/adt.mli: Constant Disco_algebra Disco_common
