lib/exec/costs.ml:
