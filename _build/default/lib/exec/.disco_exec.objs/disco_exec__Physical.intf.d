lib/exec/physical.mli: Cmp Constant Costs Disco_algebra Disco_common Disco_storage Format Plan Pred Table Tuple
