lib/exec/run.mli: Adt Buffer Costs Disco_costlang Disco_storage Format Physical Tuple
