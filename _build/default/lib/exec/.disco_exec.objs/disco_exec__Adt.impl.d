lib/exec/adt.ml: Constant Disco_algebra Disco_common Err Fmt List String
