lib/exec/physical.ml: Btree Cmp Constant Costs Disco_algebra Disco_common Disco_costlang Disco_storage Err Float Fmt List Plan Pred String Table Tuple
