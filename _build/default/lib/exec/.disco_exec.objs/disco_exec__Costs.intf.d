lib/exec/costs.mli:
