lib/exec/run.ml: Adt Array Btree Buffer Constant Costs Disco_algebra Disco_catalog Disco_common Disco_costlang Disco_storage Err Float Fmt Hashtbl List Physical Plan Pred String Table Tuple
