lib/exec/tuple.mli: Constant Disco_common Format
