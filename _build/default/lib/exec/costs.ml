(* True cost coefficients of a simulated engine. Each data source has its own
   profile — the heterogeneity the paper's cost-model blending addresses: the
   mediator's generic model assumes one calibration vector, while the actual
   engines disagree with it and with each other. All values in (simulated)
   milliseconds. *)

type engine = {
  io_ms : float;       (* fetch one page *)
  output_ms : float;   (* produce one result object *)
  eval_ms : float;     (* evaluate one predicate *)
  startup_ms : float;  (* operation start-up *)
  probe_ms : float;    (* one index-level descent *)
  sort_ms : float;     (* per comparison of n log2 n sorting *)
}

(* Communication profile between the mediator and one source. *)
type network = {
  msg_ms : float;   (* per round-trip *)
  byte_ms : float;  (* per byte shipped *)
}

(* The profile matching the paper's ObjectStore measurements (§5):
   IO = 25 ms per page, Output = 9 ms per object. *)
let objectstore =
  { io_ms = 25.;
    output_ms = 9.;
    eval_ms = 0.4;
    startup_ms = 120.;
    probe_ms = 12.;
    sort_ms = 0.02 }

(* A relational engine: cheaper per-object CPU, similar IO. *)
let relational =
  { io_ms = 20.;
    output_ms = 2.;
    eval_ms = 0.15;
    startup_ms = 80.;
    probe_ms = 8.;
    sort_ms = 0.01 }

(* A flat-file source: no indexes, expensive parsing per object. *)
let flat_file =
  { io_ms = 15.;
    output_ms = 25.;
    eval_ms = 3.;
    startup_ms = 300.;
    probe_ms = 1000.;  (* no real index; never used *)
    sort_ms = 0.1 }

(* The mediator's own in-memory composition engine. *)
let mediator_engine =
  { io_ms = 0.;
    output_ms = 0.8;
    eval_ms = 0.05;
    startup_ms = 5.;
    probe_ms = 0.2;
    sort_ms = 0.005 }

let lan = { msg_ms = 60.; byte_ms = 0.005 }

(* A slow, high-latency web source. *)
let wan = { msg_ms = 4000.; byte_ms = 0.08 }
