(** Abstract-data-type operations (paper §7): source-specific boolean
    operations over attribute values — the paper's motivating example is
    image matching — that are expensive compared to ordinary comparisons.
    The implementation is shipped to the mediator like cost rules are
    (§2.4); the per-call cost and selectivity are exported through the cost
    language as [let AdtCost_<name> = ...] / [let AdtSel_<name> = ...]. *)

open Disco_common

type t = {
  name : string;
  impl : Constant.t -> Constant.t -> bool;  (** attribute value, argument *)
  cost_ms : float;      (** simulated cost per invocation *)
  selectivity : float;  (** fraction of objects satisfying the operation *)
}

val make :
  name:string -> cost_ms:float -> selectivity:float ->
  (Constant.t -> Constant.t -> bool) -> t

val find : t list -> string -> t option

val apply : t list -> string -> Constant.t -> Constant.t -> bool
(** The [apply] callback for {!Disco_algebra.Pred.eval}.
    @raise Disco_common.Err.Eval_error for unknown operations. *)

val pred_cost : t list -> eval_ms:float -> Disco_algebra.Pred.t -> float
(** Per-evaluation cost of a predicate: [eval_ms] plus the cost of every ADT
    invocation it contains. *)
