lib/mediator/optimizer.mli: Disco_algebra Disco_core Plan Pred Registry
