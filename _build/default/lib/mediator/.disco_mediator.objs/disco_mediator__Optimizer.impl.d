lib/mediator/optimizer.ml: Array Disco_algebra Disco_common Disco_core Disco_costlang Err Estimator Hashtbl List Option Plan Pred Set String
