lib/mediator/mediator.mli: Catalog Disco_algebra Disco_catalog Disco_core Disco_exec Disco_sql Disco_wrapper Estimator Generic History Optimizer Plan Pred Registry Run Sql Tuple Wrapper
