lib/storage/btree.mli: Cmp Constant Disco_common
