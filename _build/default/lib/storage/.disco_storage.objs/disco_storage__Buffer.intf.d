lib/storage/buffer.mli:
