lib/storage/btree.ml: Array Cmp Constant Disco_common List
