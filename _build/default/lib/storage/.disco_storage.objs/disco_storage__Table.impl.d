lib/storage/table.ml: Array Btree Constant Disco_catalog Disco_common Err List Schema Stats
