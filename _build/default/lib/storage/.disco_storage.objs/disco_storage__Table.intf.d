lib/storage/table.mli: Btree Constant Disco_catalog Disco_common Schema Stats
