(* An LRU buffer pool. The executor routes every page access through it; a
   miss counts one physical IO. This is what makes repeated accesses to the
   same page cheaper than the naive one-IO-per-object model.

   LRU is implemented with a lazy-deletion queue: each access pushes a fresh
   (key, stamp) entry; stale queue entries (whose stamp no longer matches the
   key's current stamp) are skipped during eviction. Amortized O(1). *)

type key = string * int  (* table name, page number *)

type t = {
  capacity : int;
  stamps : (key, int) Hashtbl.t;  (* resident pages -> latest stamp *)
  queue : (key * int) Queue.t;    (* access order, possibly stale *)
  mutable hits : int;
  mutable misses : int;
  mutable clock : int;
}

let create ~capacity =
  { capacity = max capacity 1;
    stamps = Hashtbl.create 64;
    queue = Queue.create ();
    hits = 0;
    misses = 0;
    clock = 0 }

let clear t =
  Hashtbl.reset t.stamps;
  Queue.clear t.queue;
  t.hits <- 0;
  t.misses <- 0;
  t.clock <- 0

let touch t key =
  t.clock <- t.clock + 1;
  Hashtbl.replace t.stamps key t.clock;
  Queue.push (key, t.clock) t.queue

let rec evict_lru t =
  match Queue.take_opt t.queue with
  | None -> ()
  | Some (key, stamp) ->
    (match Hashtbl.find_opt t.stamps key with
     | Some current when current = stamp -> Hashtbl.remove t.stamps key
     | _ -> evict_lru t (* stale entry *))

(* Access a page; returns [true] when the access missed (one IO for the
   caller to charge). *)
let access t ~table ~page : bool =
  let key = (table, page) in
  if Hashtbl.mem t.stamps key then begin
    t.hits <- t.hits + 1;
    touch t key;
    false
  end
  else begin
    t.misses <- t.misses + 1;
    if Hashtbl.length t.stamps >= t.capacity then evict_lru t;
    touch t key;
    true
  end

let resident t = Hashtbl.length t.stamps
let hits t = t.hits
let misses t = t.misses
