(** An LRU buffer pool. The executor routes every page access through it; a
    miss counts one physical IO. Repeated accesses to resident pages are
    free, which is what makes measured index-scan IO follow the number of
    {e distinct} pages touched (Yao) rather than the number of objects. *)

type t

val create : capacity:int -> t
(** Pool with room for [capacity] pages (at least 1). *)

val clear : t -> unit
(** Evict everything and reset the counters (a cold cache). *)

val access : t -> table:string -> page:int -> bool
(** Access a page; [true] means a miss (the caller charges one IO). Pages of
    different tables are distinct. *)

val resident : t -> int
val hits : t -> int
val misses : t -> int
