(* A stored collection: fixed-size objects packed into pages, optionally
   clustered on one attribute, with secondary B-tree indexes. This is the
   simulated stand-in for the paper's data sources (ObjectStore et al.);
   object placement across pages is what makes index-scan costs follow Yao's
   formula rather than the linear calibrated model. *)

open Disco_common
open Disco_catalog

type tuple = Constant.t array

type t = {
  name : string;
  schema : Schema.collection;
  pages : tuple array array;      (* page -> slot -> object *)
  object_size : int;              (* bytes per object *)
  page_size : int;
  fill : float;
  indexes : (string * Btree.t) list;  (* attribute -> index *)
  clustered_on : string option;
  count : int;
}

let attr_pos t name =
  match Schema.attr_index t.schema name with
  | Some i -> i
  | None ->
    raise (Err.Unknown_attribute { collection = t.name; attribute = name })

let objects_per_page ~page_size ~fill ~object_size =
  max 1 (int_of_float (float_of_int page_size *. fill) / object_size)

(* Build a table from rows. Rows are paged in the given order (callers
   shuffle beforehand for random placement) unless [cluster_on] asks for
   clustering, in which case rows are sorted by that attribute first. *)
let create ~name ~schema ?(page_size = 4096) ?(fill = 0.96) ~object_size ?cluster_on
    ?(index_on = []) (rows : tuple list) : t =
  let rows =
    match cluster_on with
    | None -> rows
    | Some attr ->
      let pos =
        match Schema.attr_index schema attr with
        | Some i -> i
        | None -> raise (Err.Unknown_attribute { collection = name; attribute = attr })
      in
      List.sort (fun a b -> Constant.compare a.(pos) b.(pos)) rows
  in
  let per_page = objects_per_page ~page_size ~fill ~object_size in
  let arr = Array.of_list rows in
  let count = Array.length arr in
  let n_pages = (count + per_page - 1) / per_page in
  let pages =
    Array.init (max n_pages 0) (fun p ->
        let base = p * per_page in
        Array.init (min per_page (count - base)) (fun s -> arr.(base + s)))
  in
  let index_of attr =
    let pos =
      match Schema.attr_index schema attr with
      | Some i -> i
      | None -> raise (Err.Unknown_attribute { collection = name; attribute = attr })
    in
    let entries = ref [] in
    Array.iteri
      (fun p page ->
        Array.iteri
          (fun s row ->
            entries := (row.(pos), { Btree.page = p; slot = s }) :: !entries)
          page)
      pages;
    (attr, Btree.build !entries)
  in
  { name;
    schema;
    pages;
    object_size;
    page_size;
    fill;
    indexes = List.map index_of index_on;
    clustered_on = cluster_on;
    count }

let page_count t = Array.length t.pages
let count t = t.count
let total_size t = t.count * t.object_size

let fetch t (rid : Btree.rid) : tuple = t.pages.(rid.Btree.page).(rid.Btree.slot)

let index t attr = List.assoc_opt attr t.indexes
let has_index t attr = List.mem_assoc attr t.indexes

let iter_pages t f = Array.iteri f t.pages

(* All rows, in storage order. *)
let rows t =
  Array.to_list t.pages |> List.concat_map (fun p -> Array.to_list p)

let column t attr =
  let pos = attr_pos t attr in
  List.map (fun row -> row.(pos)) (rows t)

(* --- Statistics export (the wrapper's cardinality methods, paper §3.2) --- *)

let extent_stats t : Stats.extent =
  Stats.extent ~count_objects:t.count ~total_size:(total_size t)
    ~object_size:t.object_size

let attribute_stats t attr : Stats.attribute =
  let values = column t attr in
  Stats.attribute_of_values ~indexed:(has_index t attr) values

let all_attribute_stats t =
  List.map
    (fun (a : Schema.attribute) ->
      (a.Schema.attr_name, attribute_stats t a.Schema.attr_name))
    t.schema.Schema.attributes
