(** Comparison operators, shared by predicates (lib/algebra) and index search
    (lib/storage). *)

type t = Eq | Ne | Lt | Le | Gt | Ge

val pp : Format.formatter -> t -> unit

val eval : t -> Constant.t -> Constant.t -> bool
(** [eval op a b] applies [op] to two constants using {!Constant.compare}. *)

val flip : t -> t
(** [flip op] is the operator [op'] such that [a op b <=> b op' a]. *)
