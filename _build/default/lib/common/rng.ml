(* Small deterministic PRNG (splitmix64) so data generation, benches and
   property tests are reproducible without touching the global [Random]
   state. *)

type t = { mutable state : int64 }

let create ~seed = { state = Int64.of_int seed }

let next_int64 t =
  let open Int64 in
  t.state <- add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

(* Uniform int in [0, bound). *)
let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let v = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  v mod bound

let float t bound =
  let v = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  bound *. (v /. 9007199254740992.0 (* 2^53 *))

let bool t = Int64.logand (next_int64 t) 1L = 1L

(* Fisher-Yates shuffle, in place. *)
let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let pick t arr = arr.(int t (Array.length arr))
