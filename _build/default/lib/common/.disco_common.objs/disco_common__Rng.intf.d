lib/common/rng.mli:
