lib/common/cmp.ml: Constant Fmt
