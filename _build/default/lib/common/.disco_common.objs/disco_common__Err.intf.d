lib/common/err.mli:
