lib/common/constant.ml: Bool Char Float Fmt Int String
