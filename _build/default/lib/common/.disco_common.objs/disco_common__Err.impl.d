lib/common/err.ml: Fmt Printexc
