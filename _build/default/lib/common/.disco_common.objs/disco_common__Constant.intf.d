lib/common/constant.mli: Format
