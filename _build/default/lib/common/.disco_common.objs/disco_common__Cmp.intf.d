lib/common/cmp.mli: Constant Format
