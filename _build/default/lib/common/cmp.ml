(* Comparison operators shared by predicates (lib/algebra) and index search
   (lib/storage). *)

type t = Eq | Ne | Lt | Le | Gt | Ge

let pp ppf = function
  | Eq -> Fmt.string ppf "="
  | Ne -> Fmt.string ppf "<>"
  | Lt -> Fmt.string ppf "<"
  | Le -> Fmt.string ppf "<="
  | Gt -> Fmt.string ppf ">"
  | Ge -> Fmt.string ppf ">="

(* Apply to two constants. *)
let eval op a b =
  let c = Constant.compare a b in
  match op with
  | Eq -> c = 0
  | Ne -> c <> 0
  | Lt -> c < 0
  | Le -> c <= 0
  | Gt -> c > 0
  | Ge -> c >= 0

let flip = function Eq -> Eq | Ne -> Ne | Lt -> Gt | Le -> Ge | Gt -> Lt | Ge -> Le
