(** A small deterministic PRNG (splitmix64), so that data generation, benches
    and property tests are reproducible without touching the global [Random]
    state. *)

type t

val create : seed:int -> t

val next_int64 : t -> int64
(** The raw 64-bit stream. *)

val int : t -> int -> int
(** [int t bound] is uniform in [[0, bound)]. Raises [Invalid_argument] when
    [bound <= 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [[0, bound)]. *)

val bool : t -> bool

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** A uniformly random element of a non-empty array. *)
