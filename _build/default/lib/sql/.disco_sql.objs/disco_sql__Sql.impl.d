lib/sql/sql.ml: Array Constant Disco_algebra Disco_common Disco_costlang Err Float Fmt Lexer List Option Plan Pred String
