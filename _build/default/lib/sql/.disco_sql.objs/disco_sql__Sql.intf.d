lib/sql/sql.mli: Disco_algebra Plan Pred
