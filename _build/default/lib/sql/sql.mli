(** The client query language: a small object/relational SQL subset (paper
    §2.2).

    {v
    SELECT [DISTINCT] item, ...
    FROM [source.]Collection [AS] alias, ...
    [WHERE cond {AND|OR} cond ...]
    [GROUP BY attr, ...]
    [ORDER BY attr [ASC|DESC], ...]
    [LIMIT n]
    v}

    Items are attributes ([alias.attr] or bare [attr]), [*], or aggregates
    ([sum(e.salary) AS total], count-star). Conditions compare an attribute
    with a constant or another attribute, with [AND]/[OR]/[NOT] and
    parentheses. Bare attribute names are resolved against the registered
    schemas by the mediator. *)

open Disco_algebra

type relation = {
  rel_source : string option;  (** [None]: resolved from the catalog *)
  rel_collection : string;
  rel_alias : string;
}

type item =
  | Col of string
      (** a possibly-qualified attribute *)
  | Agg of Plan.agg_fun * string * string
      (** function, input attribute ([""] for count-star), output name *)

type t = {
  distinct : bool;
  star : bool;
  items : item list;  (** empty when [star] *)
  relations : relation list;
  where : Pred.t;
  group_by : string list;
  order_by : (string * Plan.order) list;
  limit : int option;
}

val parse : ?what:string -> string -> t
(** @raise Disco_common.Err.Parse_error with positions on malformed input.
    Keywords are case-insensitive; a trailing [;] is tolerated. *)

val aliases : t -> string list
(** Aliases in FROM order. *)
