(* The client query language: a small object/relational SQL subset (paper
   §2.2: "the query in Step 3 is declarative, written in simple
   object/relational SQL language").

     SELECT [DISTINCT] item, ...
     FROM [source.]Collection [AS] alias, ...
     [WHERE cond AND cond ...]
     [GROUP BY attr, ...]
     [ORDER BY attr [DESC], ...]
     [LIMIT n]

   Items are attributes ([alias.attr] or bare [attr]), [*], or aggregates
   ([sum(a.salary) AS total]). Conditions compare an attribute with a
   constant or with another attribute. Bare attribute names are resolved
   against the registered schemas by the mediator. *)

open Disco_common
open Disco_algebra
open Disco_costlang

type relation = {
  rel_source : string option;  (* None: resolved from the catalog *)
  rel_collection : string;
  rel_alias : string;
}

type item =
  | Col of string                            (* possibly qualified attribute *)
  | Agg of Plan.agg_fun * string * string    (* fn, input attr ("" for count-star), output name *)

type t = {
  distinct : bool;
  star : bool;
  items : item list;  (* empty when [star] *)
  relations : relation list;
  where : Pred.t;
  group_by : string list;
  order_by : (string * Plan.order) list;
  limit : int option;
}

(* --- Parsing --------------------------------------------------------------- *)

type cursor = { toks : Lexer.spanned array; mutable i : int; what : string }

let peek c = c.toks.(c.i).Lexer.tok
let peek2 c = if c.i + 1 < Array.length c.toks then c.toks.(c.i + 1).Lexer.tok else Lexer.EOF
let advance c = if c.i < Array.length c.toks - 1 then c.i <- c.i + 1

let error_at c msg =
  let s = c.toks.(c.i) in
  Err.parse_error ~what:c.what ~line:s.Lexer.line ~col:s.Lexer.col msg

let lower = String.lowercase_ascii

(* Keyword test, case-insensitive. *)
let is_kw c kw =
  match peek c with Lexer.IDENT s -> String.equal (lower s) kw | _ -> false

let eat_kw c kw =
  if is_kw c kw then advance c
  else error_at c (Fmt.str "expected keyword %S" (String.uppercase_ascii kw))

let keywords =
  [ "select"; "distinct"; "from"; "where"; "group"; "order"; "by"; "and"; "or";
    "not"; "as"; "asc"; "desc"; "limit" ]

let ident c =
  match peek c with
  | Lexer.IDENT s when not (List.mem (lower s) keywords) ->
    advance c;
    s
  | t -> error_at c (Fmt.str "expected identifier, found %a" Lexer.pp_token t)

let eat c tok =
  if peek c = tok then advance c
  else error_at c (Fmt.str "expected %a, found %a" Lexer.pp_token tok Lexer.pp_token (peek c))

(* [alias.attr] or bare [attr]. *)
let attr_ref c =
  let a = ident c in
  if peek c = Lexer.DOT then begin
    advance c;
    a ^ "." ^ ident c
  end
  else a

let constant c : Constant.t =
  match peek c with
  | Lexer.NUMBER f ->
    advance c;
    if Float.is_integer f then Constant.Int (int_of_float f) else Constant.Float f
  | Lexer.MINUS ->
    advance c;
    (match peek c with
     | Lexer.NUMBER f ->
       advance c;
       if Float.is_integer f then Constant.Int (-(int_of_float f))
       else Constant.Float (-.f)
     | t -> error_at c (Fmt.str "expected number, found %a" Lexer.pp_token t))
  | Lexer.STRING s ->
    advance c;
    Constant.String s
  | Lexer.IDENT s when lower s = "true" ->
    advance c;
    Constant.Bool true
  | Lexer.IDENT s when lower s = "false" ->
    advance c;
    Constant.Bool false
  | Lexer.IDENT s when lower s = "null" ->
    advance c;
    Constant.Null
  | t -> error_at c (Fmt.str "expected constant, found %a" Lexer.pp_token t)

let cmp_op c : Pred.cmp =
  match peek c with
  | Lexer.EQ -> advance c; Pred.Eq
  | Lexer.NE -> advance c; Pred.Ne
  | Lexer.LT -> advance c; Pred.Lt
  | Lexer.LE -> advance c; Pred.Le
  | Lexer.GT -> advance c; Pred.Gt
  | Lexer.GE -> advance c; Pred.Ge
  | t -> error_at c (Fmt.str "expected comparison operator, found %a" Lexer.pp_token t)

(* cond := attr op (const | attr) | fn '(' attr ',' const ')' | NOT cond
         | '(' disj ')' *)
let rec condition c : Pred.t =
  if is_kw c "not" then begin
    advance c;
    Pred.Not (condition c)
  end
  else if peek c = Lexer.LPAREN then begin
    advance c;
    let p = disjunction c in
    eat c Lexer.RPAREN;
    p
  end
  else if
    (match peek c, peek2 c with
     | Lexer.IDENT s, Lexer.LPAREN -> not (List.mem (lower s) keywords)
     | _ -> false)
  then begin
    (* ADT operation: fn(attr, constant) — a boolean predicate implemented
       by the wrapper (paper §7) *)
    let fn = ident c in
    eat c Lexer.LPAREN;
    let attr = attr_ref c in
    eat c Lexer.COMMA;
    let v = constant c in
    eat c Lexer.RPAREN;
    Pred.Apply (fn, attr, v)
  end
  else begin
    let a = attr_ref c in
    let op = cmp_op c in
    match peek c with
    | Lexer.IDENT s when List.mem (lower s) [ "true"; "false"; "null" ] ->
      Pred.Cmp (a, op, constant c)
    | Lexer.IDENT s when not (List.mem (lower s) keywords) ->
      Pred.Attr_cmp (a, op, attr_ref c)
    | _ -> Pred.Cmp (a, op, constant c)
  end

and conjunction c : Pred.t =
  let p = condition c in
  if is_kw c "and" then begin
    advance c;
    Pred.And (p, conjunction c)
  end
  else p

and disjunction c : Pred.t =
  let p = conjunction c in
  if is_kw c "or" then begin
    advance c;
    Pred.Or (p, disjunction c)
  end
  else p

let agg_fun_of_name name : Plan.agg_fun option =
  match lower name with
  | "count" -> Some Plan.Count
  | "sum" -> Some Plan.Sum
  | "avg" -> Some Plan.Avg
  | "min" -> Some Plan.Min
  | "max" -> Some Plan.Max
  | _ -> None

let select_item c : item =
  match peek c, peek2 c with
  | Lexer.IDENT name, Lexer.LPAREN when agg_fun_of_name name <> None ->
    let fn = Option.get (agg_fun_of_name name) in
    advance c;
    advance c;
    let input =
      if peek c = Lexer.STAR then begin
        advance c;
        ""
      end
      else attr_ref c
    in
    eat c Lexer.RPAREN;
    let default_name =
      lower (Fmt.str "%a_%s" Plan.pp_agg_fun fn
               (match Plan.split_attr input with
                | Some (_, a) -> a
                | None -> if input = "" then "all" else input))
    in
    if is_kw c "as" then begin
      advance c;
      Agg (fn, input, ident c)
    end
    else Agg (fn, input, default_name)
  | _ -> Col (attr_ref c)

let relation c : relation =
  let first = ident c in
  let rel_source, rel_collection =
    if peek c = Lexer.DOT then begin
      advance c;
      (Some first, ident c)
    end
    else (None, first)
  in
  let rel_alias =
    if is_kw c "as" then begin
      advance c;
      ident c
    end
    else
      match peek c with
      | Lexer.IDENT s when not (List.mem (lower s) keywords) ->
        advance c;
        s
      | _ -> rel_collection
  in
  { rel_source; rel_collection; rel_alias }

let comma_list c f =
  let rec go acc =
    let x = f c in
    if peek c = Lexer.COMMA then begin
      advance c;
      go (x :: acc)
    end
    else List.rev (x :: acc)
  in
  go []

let parse ?(what = "query") text : t =
  let toks = Array.of_list (Lexer.tokenize ~what text) in
  let c = { toks; i = 0; what } in
  eat_kw c "select";
  let distinct =
    if is_kw c "distinct" then begin
      advance c;
      true
    end
    else false
  in
  let star, items =
    if peek c = Lexer.STAR then begin
      advance c;
      (true, [])
    end
    else (false, comma_list c select_item)
  in
  eat_kw c "from";
  let relations = comma_list c relation in
  let where =
    if is_kw c "where" then begin
      advance c;
      disjunction c
    end
    else Pred.True
  in
  let group_by =
    if is_kw c "group" then begin
      advance c;
      eat_kw c "by";
      comma_list c attr_ref
    end
    else []
  in
  let order_by =
    if is_kw c "order" then begin
      advance c;
      eat_kw c "by";
      comma_list c (fun c ->
          let a = attr_ref c in
          if is_kw c "desc" then begin
            advance c;
            (a, Plan.Desc)
          end
          else begin
            if is_kw c "asc" then advance c;
            (a, Plan.Asc)
          end)
    end
    else []
  in
  let limit =
    if is_kw c "limit" then begin
      advance c;
      match peek c with
      | Lexer.NUMBER f ->
        advance c;
        Some (int_of_float f)
      | t -> error_at c (Fmt.str "expected number after LIMIT, found %a" Lexer.pp_token t)
    end
    else None
  in
  (match peek c with
   | Lexer.EOF | Lexer.SEMI -> ()
   | t -> error_at c (Fmt.str "unexpected %a after query" Lexer.pp_token t));
  { distinct; star; items; relations; where; group_by; order_by; limit }

(* Aliases used in the query, in FROM order. *)
let aliases t = List.map (fun r -> r.rel_alias) t.relations
