lib/wrapper/wrapper.mli: Adt Ast Buffer Costs Disco_algebra Disco_costlang Disco_exec Disco_storage Physical Plan Run Table Tuple
