lib/wrapper/demo.mli: Disco_catalog Disco_exec Schema Wrapper
