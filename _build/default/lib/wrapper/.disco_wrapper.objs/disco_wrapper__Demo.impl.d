lib/wrapper/demo.ml: Adt Array Constant Costs Disco_catalog Disco_common Disco_exec Disco_storage List Rng Schema String Table Wrapper
