lib/wrapper/wrapper.ml: Adt Ast Buffer Costs Disco_algebra Disco_catalog Disco_common Disco_costlang Disco_exec Disco_storage Err List Parser Physical Plan Pp Run Schema Stats String Table Tuple
