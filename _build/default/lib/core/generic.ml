(* The mediator's generic cost model (paper §2.3), expressed in the cost
   communication language itself and registered at Default scope. It covers
   every operator and every cost variable, guaranteeing the estimator always
   finds a formula (paper §4.2: "The mediator default cost model guarantees
   that at least one formula is found for every variable for every node").

   Alternative physical strategies (sequential vs index scan; nested-loop vs
   sort-merge vs index join) are competing rules at the same matching level;
   the estimator evaluates all of them and keeps the lowest value per
   variable, as prescribed in §4.2 step 3. Inapplicable strategies guard
   themselves with [if(...)] and yield [Huge].

   The time coefficients form the calibration vector of the [DKS92]/[GST96]
   approach: calibrating the generic model for a class of sources amounts to
   re-registering this text with different coefficients. *)

type calibration = {
  io_ms : float;        (* read one page *)
  output_ms : float;    (* produce one result object *)
  eval_ms : float;      (* evaluate one predicate *)
  startup_ms : float;   (* operator start-up overhead *)
  msg_ms : float;       (* one wrapper message round-trip *)
  byte_ms : float;      (* ship one byte between wrapper and mediator *)
  page_size : float;    (* bytes per page *)
  probe_ms : float;     (* one index probe *)
  sort_ms : float;      (* per-comparison factor of n log2 n sorting *)
}

(* Defaults follow the constants measured on ObjectStore in the paper's §5:
   IO = 0.025 s per page and Output = 0.009 s per object. The communication
   constants are deliberately conservative (a slow shared LAN): sources with
   faster links are expected to export their own submit rules, exactly like
   slower-than-assumed sources (the web wrapper) do. *)
let default_calibration =
  { io_ms = 25.;
    output_ms = 9.;
    eval_ms = 0.4;
    startup_ms = 120.;
    msg_ms = 200.;
    byte_ms = 0.05;
    page_size = 4096.;
    probe_ms = 12.;
    sort_ms = 0.02 }

let text ?(calibration = default_calibration) () =
  let c = calibration in
  Fmt.str
    {|
source default {
  let IO = %g;
  let Output = %g;
  let Eval = %g;
  let Startup = %g;
  let MsgCost = %g;
  let ByteCost = %g;
  let PageSize = %g;
  let Probe = %g;
  let SortFactor = %g;
  let FieldSize = 16;
  let Huge = 1e18;

  // Sequential scan of a base extent.
  rule scan(C) {
    CountObject = C.CountObject;
    TotalSize = C.TotalSize;
    TimeFirst = Startup + IO;
    TotalTime = Startup + IO * ceil(C.TotalSize / PageSize) + Output * C.CountObject;
    TimeNext = (TotalTime - TimeFirst) / max(C.CountObject, 1);
  }

  // Selection, strategy 1: filter the input sequentially. The per-object
  // predicate cost includes the exported cost of ADT operations (§7).
  rule select(C, P) {
    CountObject = C.CountObject * sel(P);
    TotalSize = CountObject * C.ObjectSize;
    TimeFirst = C.TimeFirst + Eval + adtcost(P);
    TotalTime = C.TotalTime + (Eval + adtcost(P)) * C.CountObject;
    TimeNext = (TotalTime - TimeFirst) / max(CountObject, 1);
  }

  // Selection, strategy 2: index scan, bypassing the input scan. The
  // calibrated linear model: pages fetched proportional to selectivity.
  rule select(C, P) {
    TimeFirst = if(indexed(P), Startup + Probe + IO, Huge);
    TotalTime = if(indexed(P),
                   Startup + Probe
                   + IO * ceil(C.TotalSize / PageSize) * sel(P)
                   + Output * C.CountObject * sel(P),
                   Huge);
  }

  // Projection: per-object copy; result width estimated from the number of
  // projected attributes.
  rule project(C, G) {
    CountObject = C.CountObject;
    TotalSize = min(C.TotalSize, CountObject * nnames(G) * FieldSize);
    TimeFirst = C.TimeFirst;
    TimeNext = C.TimeNext;
    TotalTime = C.TotalTime + Eval * C.CountObject;
  }

  // Sort: blocking; first result after the full input is sorted.
  rule sort(C, G) {
    CountObject = C.CountObject;
    TotalSize = C.TotalSize;
    TimeFirst = C.TotalTime + SortFactor * C.CountObject * log2(max(C.CountObject, 2));
    TotalTime = TimeFirst + Output * C.CountObject;
    TimeNext = Output;
  }

  // Join result statistics and strategy 1: materialized nested loops.
  rule join(C1, C2, P) {
    CountObject = C1.CountObject * C2.CountObject * sel(P);
    TotalSize = CountObject * (C1.ObjectSize + C2.ObjectSize);
    TimeFirst = C1.TimeFirst + C2.TimeFirst + Eval;
    TotalTime = C1.TotalTime + C2.TotalTime
                + Eval * C1.CountObject * C2.CountObject
                + Output * CountObject;
    TimeNext = (TotalTime - TimeFirst) / max(CountObject, 1);
  }

  // Join, strategy 2: sort-merge.
  rule join(C1, C2, P) {
    TimeFirst = C1.TotalTime + C2.TotalTime
                + SortFactor * (C1.CountObject * log2(max(C1.CountObject, 2))
                                + C2.CountObject * log2(max(C2.CountObject, 2)));
    TotalTime = TimeFirst
                + Eval * (C1.CountObject + C2.CountObject)
                + Output * CountObject;
  }

  // Join, strategy 3: index join, probing an index of the inner input.
  rule join(C1, C2, P) {
    TimeFirst = if(rindexed(P), C1.TimeFirst + Probe + IO, Huge);
    TotalTime = if(rindexed(P),
                   C1.TotalTime + C1.CountObject * (Probe + IO) + Output * CountObject,
                   Huge);
  }

  rule union(C1, C2) {
    CountObject = C1.CountObject + C2.CountObject;
    TotalSize = C1.TotalSize + C2.TotalSize;
    TimeFirst = min(C1.TimeFirst, C2.TimeFirst);
    TotalTime = C1.TotalTime + C2.TotalTime + Output * CountObject;
    TimeNext = (TotalTime - TimeFirst) / max(CountObject, 1);
  }

  // Duplicate elimination: hash/sort based, blocking.
  rule dedup(C) {
    CountObject = max(C.CountObject / 2, 1);
    TotalSize = C.TotalSize / 2;
    TimeFirst = C.TotalTime + SortFactor * C.CountObject * log2(max(C.CountObject, 2));
    TotalTime = TimeFirst + Output * CountObject;
    TimeNext = Output;
  }

  // Grouped aggregation; result cardinality from group-attribute statistics.
  rule aggregate(C, G) {
    CountObject = groupcard(G);
    TotalSize = CountObject * C.ObjectSize;
    TimeFirst = C.TotalTime + Eval * C.CountObject;
    TotalTime = TimeFirst + Output * CountObject;
    TimeNext = Output;
  }

  // Shipping a subplan to a wrapper: uniform communication cost (paper
  // §2.3), adjusted by the per-source historical factor (§4.3.1).
  rule submit(W, C) {
    CountObject = C.CountObject;
    TotalSize = C.TotalSize;
    TimeFirst = (C.TimeFirst + MsgCost + ByteCost * C.ObjectSize) * adjust(W);
    TotalTime = (C.TotalTime + MsgCost + ByteCost * C.TotalSize) * adjust(W);
    TimeNext = (TotalTime - TimeFirst) / max(CountObject, 1);
  }
}
|}
    c.io_ms c.output_ms c.eval_ms c.startup_ms c.msg_ms c.byte_ms c.page_size
    c.probe_ms c.sort_ms

(* Local-scope rules: the mediator executes composition operators in memory,
   so its predicate evaluation and output costs are cheaper than the generic
   defaults, and there is no page IO below its joins. *)
let local_text =
  {|
source mediator {
  let EvalM = 0.05;
  let OutputM = 0.8;

  // Mediator-side equi-join over materialized subresults: in-memory hash
  // join (build + probe + candidate checks + result delivery). Restricted to
  // single equality predicates — the engine hashes exactly those; other
  // predicates fall back to the generic nested-loop estimate.
  rule join(C1, C2, A = B) {
    TimeFirst = C1.TimeFirst + C2.TotalTime + EvalM;
    TotalTime = C1.TotalTime + C2.TotalTime
                + EvalM * (C1.CountObject + C2.CountObject + CountObject)
                + OutputM * CountObject;
  }

  rule select(C, P) {
    TimeFirst = C.TimeFirst + EvalM + adtcost(P);
    TotalTime = C.TotalTime + (EvalM + adtcost(P)) * C.CountObject;
  }
}
|}

(* Parse and install the generic model (Default scope) and the mediator's
   local rules (Local scope) into a registry. *)
let register ?calibration registry =
  ignore
    (Registry.register_text ~scope_override:Scope.Default registry
       ~what:"generic cost model" (text ?calibration ()));
  ignore
    (Registry.register_text registry ~what:"mediator local rules" local_text)
