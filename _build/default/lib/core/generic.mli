(** The mediator's generic cost model (paper §2.3), expressed in the cost
    communication language itself and registered at [Default] scope. It
    covers every operator and every cost variable, guaranteeing the estimator
    always finds a formula (paper §4.2).

    Alternative physical strategies (sequential vs index scan; nested-loop vs
    sort-merge vs index join) are competing rules at the same matching level;
    the estimator evaluates all of them and keeps the lowest value per
    variable. Inapplicable strategies guard themselves with [if(...)] and
    yield a huge sentinel. *)

(** The calibration vector of the [DKS92]/[GST96] approach: calibrating the
    generic model for a class of sources amounts to re-registering the model
    text with different coefficients. All times in milliseconds. *)
type calibration = {
  io_ms : float;       (** read one page *)
  output_ms : float;   (** produce (materialize) one object *)
  eval_ms : float;     (** evaluate one predicate *)
  startup_ms : float;  (** operation start-up overhead *)
  msg_ms : float;      (** one wrapper message round-trip *)
  byte_ms : float;     (** ship one byte between wrapper and mediator *)
  page_size : float;   (** bytes per page *)
  probe_ms : float;    (** one index probe *)
  sort_ms : float;     (** per-comparison factor of n log2 n sorting *)
}

val default_calibration : calibration
(** The constants measured on ObjectStore in the paper's §5 (IO = 25 ms/page,
    Output = 9 ms/object), with deliberately conservative communication
    coefficients (fast sources export their own submit rules). *)

val text : ?calibration:calibration -> unit -> string
(** The generic model as cost-language source text for the pseudo-source
    ["default"]. *)

val local_text : string
(** Local-scope rules of the pseudo-source ["mediator"]: in-memory
    composition operators (hash equi-join, cheap predicate evaluation). *)

val register : ?calibration:calibration -> Registry.t -> unit
(** Parse and install the generic model (Default scope) and the mediator's
    local rules (Local scope) into a registry. *)
