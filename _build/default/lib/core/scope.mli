(** The specialization hierarchy of cost rules (paper §4.1, Fig 10), from
    least to most specific:

    - [Default]: the mediator's generic cost model, defined for every operator
      and variable; always matches.
    - [Local]: rules for operators executed by the mediator itself.
    - [Wrapper]: rules a wrapper exports for any collection of its source.
    - [Collection]: rules restricted to one named collection.
    - [Predicate]: rules restricted to one collection and one ground
      predicate.
    - [Query]: rules recorded for one exact subquery (the historical-cost
      extension of §4.3.1). *)

type t = Default | Local | Wrapper | Collection | Predicate | Query

val rank : t -> int

val compare : t -> t -> int
(** Orders by specificity: [compare Default Query < 0]. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit

val all : t list
(** In increasing specificity. *)
