lib/core/rule.mli: Ast Compile Constant Disco_algebra Disco_common Disco_costlang Format Plan Pred Scope
