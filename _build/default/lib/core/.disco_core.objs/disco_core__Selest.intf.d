lib/core/selest.mli: Constant Derive Disco_algebra Disco_common Pred
