lib/core/registry.ml: Ast Builtins Catalog Compile Derive Disco_algebra Disco_catalog Disco_common Disco_costlang Err Fmt Hashtbl List Option Parser Rule Schema Scope Stats String Value
