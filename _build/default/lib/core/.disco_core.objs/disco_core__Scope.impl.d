lib/core/scope.ml: Fmt Int
