lib/core/history.ml: Ast Disco_algebra Disco_catalog Disco_costlang List Plan Registry
