lib/core/generic.mli: Registry
