lib/core/scope.mli: Format
