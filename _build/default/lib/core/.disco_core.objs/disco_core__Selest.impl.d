lib/core/selest.ml: Constant Derive Disco_algebra Disco_common Float List Option Pred
