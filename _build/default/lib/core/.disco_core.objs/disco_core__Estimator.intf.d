lib/core/estimator.mli: Ast Derive Disco_algebra Disco_costlang Hashtbl Lazy Plan Registry Rule Scope Value
