lib/core/registry.mli: Ast Catalog Compile Derive Disco_algebra Disco_catalog Disco_costlang Rule Scope Stats Value
