lib/core/rule.ml: Array Ast Compile Constant Disco_algebra Disco_common Disco_costlang Fmt List Option Plan Pp Pred Scope String
