lib/core/derive.ml: Catalog Constant Disco_algebra Disco_catalog Disco_common Float Fmt List Option Plan Pred Schema Stats String
