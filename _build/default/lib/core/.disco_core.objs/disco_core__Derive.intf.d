lib/core/derive.mli: Catalog Constant Disco_algebra Disco_catalog Disco_common Format Plan Pred Stats
