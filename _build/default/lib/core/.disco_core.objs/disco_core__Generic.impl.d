lib/core/generic.ml: Fmt Registry Scope
