lib/core/history.mli: Ast Disco_algebra Disco_costlang Plan Registry
