(* Dynamic cost-formula extensions (paper §4.3.1).

   Two mechanisms make the cost model learn from executed subqueries:

   - [Exact] caching: after a subplan executes, its measured cost vector is
     installed as a query-scope rule that matches that exact subplan. The
     next identical subquery is estimated with the real cost (the HERMES
     style of historical costs).

   - [Adjust] parameter adjustment: instead of storing per-query formulas,
     the ratio measured/estimated TotalTime of each executed subquery updates
     a per-source multiplicative factor by exponential smoothing. The generic
     [submit] rule applies the factor through the [adjust(W)] context
     function, so all formulas sharing the parameter benefit at once — the
     paper's answer to HERMES' proliferation of statistical information. *)

open Disco_costlang
open Disco_algebra

type mode = Off | Exact | Adjust of { smoothing : float }

type record = {
  plan : Plan.t;
  source : string;
  measured : (Ast.cost_var * float) list;
  estimated_total : float;
}

type t = {
  registry : Registry.t;
  mutable mode : mode;
  mutable records : record list;  (* newest first *)
}

let create ?(mode = Off) registry = { registry; mode; records = [] }

let set_mode t mode = t.mode <- mode

let records t = List.rev t.records

(* Feed back the measured costs of an executed wrapper subquery. [plan] is
   the subplan that was submitted (without the submit node itself). *)
let observe t ~source ~(plan : Plan.t) ~measured ~estimated_total =
  t.records <- { plan; source; measured; estimated_total } :: t.records;
  match t.mode with
  | Off -> ()
  | Exact -> ignore (Registry.add_query_rule t.registry ~source plan measured)
  | Adjust { smoothing } ->
    (match List.assoc_opt Ast.Total_time measured with
     | None -> ()
     | Some real when real <= 0. || estimated_total <= 0. -> ()
     | Some real ->
       let ratio = real /. estimated_total in
       let old_factor = Registry.adjust t.registry ~source in
       (* the estimate already includes the current factor; the raw model
          error is ratio * old_factor *)
       let target = ratio *. old_factor in
       let factor = (smoothing *. target) +. ((1. -. smoothing) *. old_factor) in
       Registry.set_adjust t.registry ~source factor)

let forget t =
  t.records <- [];
  List.iter
    (fun source ->
      Registry.remove_query_rules t.registry ~source;
      Registry.set_adjust t.registry ~source 1.)
    (Disco_catalog.Catalog.source_names (Registry.catalog t.registry))
