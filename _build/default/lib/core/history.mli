(** Dynamic cost-formula extensions (paper §4.3.1): the cost model learns
    from executed subqueries. *)

open Disco_costlang
open Disco_algebra

(** - [Exact]: measured cost vectors are installed as query-scope rules
      matching their exact subplan — the HERMES style of historical costs;
      the next identical subquery is estimated with the real cost.
    - [Adjust]: the ratio measured/estimated TotalTime of each executed
      subquery updates a per-source multiplicative factor by exponential
      smoothing; the generic [submit] rule applies the factor through the
      [adjust(W)] context function, so all formulas sharing the parameter
      benefit at once — the paper's answer to HERMES' proliferation of
      statistical information. *)
type mode = Off | Exact | Adjust of { smoothing : float }

type record = {
  plan : Plan.t;       (** the executed wrapper subplan (no submit node) *)
  source : string;
  measured : (Ast.cost_var * float) list;
  estimated_total : float;  (** the estimate made when the plan was chosen *)
}

type t

val create : ?mode:mode -> Registry.t -> t

val set_mode : t -> mode -> unit

val records : t -> record list
(** Oldest first. *)

val observe :
  t ->
  source:string ->
  plan:Plan.t ->
  measured:(Ast.cost_var * float) list ->
  estimated_total:float ->
  unit
(** Feed back the measured costs of an executed wrapper subquery. In
    [Adjust] mode, [estimated_total] must include the adjustment factor in
    force when the estimate was made (the mediator does this), so the
    smoothing converges. *)

val forget : t -> unit
(** Drop all records, query-scope rules and adjustment factors. *)
