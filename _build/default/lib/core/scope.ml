(* The specialization hierarchy of cost rules (paper §4.1, Fig 10). From
   least to most specific:

   - [Default]: the mediator generic cost model, defined for every operator
     and every variable; always matches.
   - [Local]: rules for operators executed by the mediator itself.
   - [Wrapper]: rules a wrapper exports for any collection of its source.
   - [Collection]: rules restricted to one named collection.
   - [Predicate]: rules restricted to one collection and one ground predicate.
   - [Query]: rules recorded for one exact subquery (the historical-cost
     extension of §4.3.1). *)

type t = Default | Local | Wrapper | Collection | Predicate | Query

let rank = function
  | Default -> 0
  | Local -> 1
  | Wrapper -> 2
  | Collection -> 3
  | Predicate -> 4
  | Query -> 5

let compare a b = Int.compare (rank a) (rank b)

let to_string = function
  | Default -> "default"
  | Local -> "local"
  | Wrapper -> "wrapper"
  | Collection -> "collection"
  | Predicate -> "predicate"
  | Query -> "query"

let pp = Fmt.of_to_string to_string

let all = [ Default; Local; Wrapper; Collection; Predicate; Query ]
