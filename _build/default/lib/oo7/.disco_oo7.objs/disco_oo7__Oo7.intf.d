lib/oo7/oo7.mli: Disco_algebra Disco_catalog Disco_storage Disco_wrapper Schema Table
