lib/oo7/oo7.ml: Array Buffer Constant Costs Disco_algebra Disco_catalog Disco_common Disco_exec Disco_storage Disco_wrapper Fmt Fun List Plan Pred Rng Schema Table
