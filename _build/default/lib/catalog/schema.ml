(* Schema descriptions exported by wrappers: a collection ("interface" in the
   paper's IDL subset, Fig 3) is a named extent of objects with typed
   attributes. *)

type ty = Tbool | Tint | Tfloat | Tstring

let pp_ty ppf = function
  | Tbool -> Fmt.string ppf "boolean"
  | Tint -> Fmt.string ppf "long"
  | Tfloat -> Fmt.string ppf "double"
  | Tstring -> Fmt.string ppf "string"

type attribute = { attr_name : string; attr_type : ty }

type collection = {
  coll_name : string;
  attributes : attribute list;
}

let collection name attrs =
  { coll_name = name;
    attributes = List.map (fun (attr_name, attr_type) -> { attr_name; attr_type }) attrs }

let attribute_names c = List.map (fun a -> a.attr_name) c.attributes

let find_attribute c name =
  List.find_opt (fun a -> String.equal a.attr_name name) c.attributes

let has_attribute c name = Option.is_some (find_attribute c name)

let attr_index c name =
  let rec go i = function
    | [] -> None
    | a :: _ when String.equal a.attr_name name -> Some i
    | _ :: rest -> go (i + 1) rest
  in
  go 0 c.attributes

let pp_collection ppf c =
  Fmt.pf ppf "interface %s { %a }" c.coll_name
    Fmt.(list ~sep:(any "; ") (fun ppf a -> pf ppf "%a %s" pp_ty a.attr_type a.attr_name))
    c.attributes
