lib/catalog/schema.ml: Fmt List Option String
