lib/catalog/catalog.ml: Disco_common Err Fmt List Schema Stats String
