lib/catalog/stats.ml: Constant Disco_common Fmt List Set
