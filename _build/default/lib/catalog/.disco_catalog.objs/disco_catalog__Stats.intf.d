lib/catalog/stats.mli: Constant Disco_common Format
