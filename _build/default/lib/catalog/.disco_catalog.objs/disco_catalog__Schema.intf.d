lib/catalog/schema.mli: Format
