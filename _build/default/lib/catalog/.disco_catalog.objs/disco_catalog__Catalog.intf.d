lib/catalog/catalog.mli: Format Schema Stats
