(** Schema descriptions exported by wrappers: a collection (an "interface" in
    the paper's IDL subset, Fig 3) is a named extent of objects with typed
    attributes. *)

type ty = Tbool | Tint | Tfloat | Tstring

val pp_ty : Format.formatter -> ty -> unit
(** Renders IDL-style type names ([long], [string], ...). *)

type attribute = { attr_name : string; attr_type : ty }

type collection = {
  coll_name : string;
  attributes : attribute list;
}

val collection : string -> (string * ty) list -> collection
(** [collection name [(attr, ty); ...]] builds a collection description. *)

val attribute_names : collection -> string list

val find_attribute : collection -> string -> attribute option

val has_attribute : collection -> string -> bool

val attr_index : collection -> string -> int option
(** Position of an attribute in the collection's tuple layout. *)

val pp_collection : Format.formatter -> collection -> unit
