lib/algebra/pred.ml: Cmp Constant Disco_common Fmt List String
