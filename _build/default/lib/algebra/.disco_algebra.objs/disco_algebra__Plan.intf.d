lib/algebra/plan.mli: Format Pred
