lib/algebra/pred.mli: Cmp Constant Disco_common Format
