lib/algebra/plan.ml: Fmt List Pred String
