(* Tests for lib/storage: B-tree index, paged tables, LRU buffer pool. *)

open Disco_common
open Disco_catalog
open Disco_storage

(* --- Btree -------------------------------------------------------------------- *)

let mk_index entries =
  Btree.build (List.map (fun (k, p, s) -> (Constant.Int k, { Btree.page = p; slot = s })) entries)

let rid p s = { Btree.page = p; slot = s }

let test_btree_lookup () =
  let idx = mk_index [ (5, 0, 0); (1, 0, 1); (5, 1, 0); (9, 1, 1) ] in
  Alcotest.(check int) "key count" 3 (Btree.key_count idx);
  Alcotest.(check int) "dup postings" 2 (List.length (Btree.lookup idx (Constant.Int 5)));
  Alcotest.(check int) "single" 1 (List.length (Btree.lookup idx (Constant.Int 1)));
  Alcotest.(check int) "missing" 0 (List.length (Btree.lookup idx (Constant.Int 7)))

let test_btree_range () =
  let idx = mk_index (List.init 10 (fun i -> (i, i, 0))) in
  let range ?lo ?lo_strict ?hi ?hi_strict () =
    List.map (fun r -> r.Btree.page) (Btree.range ?lo ?lo_strict ?hi ?hi_strict idx)
  in
  Alcotest.(check (list int)) "le 3" [ 0; 1; 2; 3 ] (range ~hi:(Constant.Int 3) ());
  Alcotest.(check (list int)) "lt 3" [ 0; 1; 2 ] (range ~hi:(Constant.Int 3) ~hi_strict:true ());
  Alcotest.(check (list int)) "ge 7" [ 7; 8; 9 ] (range ~lo:(Constant.Int 7) ());
  Alcotest.(check (list int)) "gt 7" [ 8; 9 ] (range ~lo:(Constant.Int 7) ~lo_strict:true ());
  Alcotest.(check (list int)) "between" [ 3; 4 ]
    (range ~lo:(Constant.Int 3) ~hi:(Constant.Int 5) ~hi_strict:true ());
  Alcotest.(check int) "all" 10 (List.length (range ()))

let test_btree_search_ops () =
  let idx = mk_index (List.init 10 (fun i -> (i, i, 0))) in
  let count op v = List.length (Btree.search idx op (Constant.Int v)) in
  Alcotest.(check int) "eq" 1 (count Cmp.Eq 4);
  Alcotest.(check int) "ne" 9 (count Cmp.Ne 4);
  Alcotest.(check int) "lt" 4 (count Cmp.Lt 4);
  Alcotest.(check int) "le" 5 (count Cmp.Le 4);
  Alcotest.(check int) "gt" 5 (count Cmp.Gt 4);
  Alcotest.(check int) "ge" 6 (count Cmp.Ge 4)

let prop_btree_vs_naive =
  QCheck2.Test.make ~name:"btree search = naive filter" ~count:300
    QCheck2.Gen.(
      pair
        (list_size (int_range 0 60) (int_range 0 20))
        (pair (int_range (-2) 22) (int_range 0 5)))
    (fun (keys, (v, opn)) ->
      let op =
        match opn with
        | 0 -> Cmp.Eq
        | 1 -> Cmp.Ne
        | 2 -> Cmp.Lt
        | 3 -> Cmp.Le
        | 4 -> Cmp.Gt
        | _ -> Cmp.Ge
      in
      let idx = mk_index (List.mapi (fun i k -> (k, i, 0)) keys) in
      let expected =
        List.filter (fun k -> Cmp.eval op (Constant.Int k) (Constant.Int v)) keys
      in
      List.length (Btree.search idx op (Constant.Int v)) = List.length expected)

let test_btree_rids_in_key_order () =
  let idx = mk_index [ (3, 30, 0); (1, 10, 0); (2, 20, 0) ] in
  Alcotest.(check (list int)) "key order" [ 10; 20; 30 ]
    (List.map (fun r -> r.Btree.page) (Btree.range idx));
  ignore (rid 0 0)

(* --- Table ------------------------------------------------------------------------ *)

let part_schema =
  Schema.collection "Part" [ ("id", Schema.Tint); ("weight", Schema.Tint) ]

let mk_table ?cluster_on ?(index_on = []) ?(object_size = 56) n =
  let rows = List.init n (fun i -> [| Constant.Int (i + 1); Constant.Int (i mod 10) |]) in
  Table.create ~name:"Part" ~schema:part_schema ~object_size ~page_size:4096 ~fill:0.96
    ?cluster_on ~index_on rows

let test_table_paging_paper_parameters () =
  (* the paper's §5 parameters: 56-byte objects, 4096-byte pages, 96% fill
     -> 70 objects per page; 70000 objects -> 1000 pages *)
  Alcotest.(check int) "objects per page" 70
    (Table.objects_per_page ~page_size:4096 ~fill:0.96 ~object_size:56);
  let t = mk_table 70_000 in
  Alcotest.(check int) "1000 pages" 1000 (Table.page_count t);
  Alcotest.(check int) "count" 70_000 (Table.count t);
  Alcotest.(check int) "total size" (70_000 * 56) (Table.total_size t)

let test_table_fetch_and_rows () =
  let t = mk_table 100 in
  Alcotest.(check int) "rows" 100 (List.length (Table.rows t));
  let r = Table.fetch t { Btree.page = 0; slot = 3 } in
  Alcotest.(check bool) "fetch slot" true (Constant.equal r.(0) (Constant.Int 4))

let test_table_clustering () =
  let rows =
    [ [| Constant.Int 3; Constant.Int 0 |];
      [| Constant.Int 1; Constant.Int 0 |];
      [| Constant.Int 2; Constant.Int 0 |] ]
  in
  let t =
    Table.create ~name:"Part" ~schema:part_schema ~object_size:56 ~cluster_on:"id" rows
  in
  Alcotest.(check (list bool)) "sorted by id" [ true; true; true ]
    (List.mapi
       (fun i row -> Constant.equal row.(0) (Constant.Int (i + 1)))
       (Table.rows t));
  Alcotest.(check (option string)) "clustered_on" (Some "id") t.Table.clustered_on

let test_table_indexes () =
  let t = mk_table ~index_on:[ "id" ] 500 in
  Alcotest.(check bool) "has id index" true (Table.has_index t "id");
  Alcotest.(check bool) "no weight index" false (Table.has_index t "weight");
  let idx = Option.get (Table.index t "id") in
  (* each rid resolves to the object with the matching key *)
  let rids = Btree.lookup idx (Constant.Int 123) in
  Alcotest.(check int) "one match" 1 (List.length rids);
  let row = Table.fetch t (List.hd rids) in
  Alcotest.(check bool) "resolves" true (Constant.equal row.(0) (Constant.Int 123))

let test_table_stats () =
  let t = mk_table ~index_on:[ "id" ] 500 in
  let e = Table.extent_stats t in
  Alcotest.(check int) "count" 500 e.Stats.count_objects;
  let a = Table.attribute_stats t "weight" in
  Alcotest.(check int) "distinct weights" 10 a.Stats.count_distinct;
  Alcotest.(check bool) "weight unindexed" false a.Stats.indexed;
  let id_stats = Table.attribute_stats t "id" in
  Alcotest.(check bool) "id indexed" true id_stats.Stats.indexed;
  Alcotest.(check bool) "id max" true (Constant.equal id_stats.Stats.max (Constant.Int 500))

let test_table_unknown_attr () =
  let t = mk_table 10 in
  Alcotest.(check bool) "unknown attr raises" true
    (try
       ignore (Table.column t "nope");
       false
     with Disco_common.Err.Unknown_attribute _ -> true)

(* --- Buffer ------------------------------------------------------------------------- *)

let test_buffer_miss_then_hit () =
  let b = Buffer.create ~capacity:4 in
  Alcotest.(check bool) "first access misses" true (Buffer.access b ~table:"t" ~page:0);
  Alcotest.(check bool) "second access hits" false (Buffer.access b ~table:"t" ~page:0);
  Alcotest.(check int) "hits" 1 (Buffer.hits b);
  Alcotest.(check int) "misses" 1 (Buffer.misses b)

let test_buffer_lru_eviction () =
  let b = Buffer.create ~capacity:2 in
  ignore (Buffer.access b ~table:"t" ~page:0);
  ignore (Buffer.access b ~table:"t" ~page:1);
  ignore (Buffer.access b ~table:"t" ~page:0);  (* 0 is now most recent *)
  ignore (Buffer.access b ~table:"t" ~page:2);  (* evicts 1 *)
  Alcotest.(check bool) "0 still resident" false (Buffer.access b ~table:"t" ~page:0);
  Alcotest.(check bool) "1 evicted" true (Buffer.access b ~table:"t" ~page:1)

let test_buffer_capacity_bound () =
  let b = Buffer.create ~capacity:8 in
  for i = 0 to 99 do
    ignore (Buffer.access b ~table:"t" ~page:i)
  done;
  Alcotest.(check bool) "resident bounded" true (Buffer.resident b <= 8)

let test_buffer_distinct_pages_when_large () =
  (* with capacity >= distinct pages, misses = distinct pages regardless of
     the access pattern *)
  let b = Buffer.create ~capacity:100 in
  let rng = Rng.create ~seed:1 in
  let distinct = Hashtbl.create 16 in
  for _ = 1 to 1000 do
    let p = Rng.int rng 50 in
    Hashtbl.replace distinct p ();
    ignore (Buffer.access b ~table:"t" ~page:p)
  done;
  Alcotest.(check int) "misses = distinct" (Hashtbl.length distinct) (Buffer.misses b)

let test_buffer_clear () =
  let b = Buffer.create ~capacity:4 in
  ignore (Buffer.access b ~table:"t" ~page:0);
  Buffer.clear b;
  Alcotest.(check int) "cleared misses" 0 (Buffer.misses b);
  Alcotest.(check bool) "page gone" true (Buffer.access b ~table:"t" ~page:0)

let test_buffer_tables_disjoint () =
  let b = Buffer.create ~capacity:4 in
  ignore (Buffer.access b ~table:"a" ~page:0);
  Alcotest.(check bool) "same page other table misses" true
    (Buffer.access b ~table:"b" ~page:0)

let prop_buffer_misses_bounded =
  QCheck2.Test.make ~name:"distinct <= misses <= accesses" ~count:200
    QCheck2.Gen.(pair (int_range 1 8) (list_size (int_range 1 100) (int_range 0 15)))
    (fun (cap, pages) ->
      let b = Buffer.create ~capacity:cap in
      List.iter (fun p -> ignore (Buffer.access b ~table:"t" ~page:p)) pages;
      let distinct = List.length (List.sort_uniq compare pages) in
      Buffer.misses b >= distinct && Buffer.misses b <= List.length pages)

let () =
  Alcotest.run "storage"
    [ ( "btree",
        [ Alcotest.test_case "lookup" `Quick test_btree_lookup;
          Alcotest.test_case "range" `Quick test_btree_range;
          Alcotest.test_case "search operators" `Quick test_btree_search_ops;
          Alcotest.test_case "rids in key order" `Quick test_btree_rids_in_key_order;
          QCheck_alcotest.to_alcotest prop_btree_vs_naive ] );
      ( "table",
        [ Alcotest.test_case "paper paging parameters" `Quick
            test_table_paging_paper_parameters;
          Alcotest.test_case "fetch and rows" `Quick test_table_fetch_and_rows;
          Alcotest.test_case "clustering" `Quick test_table_clustering;
          Alcotest.test_case "indexes" `Quick test_table_indexes;
          Alcotest.test_case "statistics" `Quick test_table_stats;
          Alcotest.test_case "unknown attribute" `Quick test_table_unknown_attr ] );
      ( "buffer",
        [ Alcotest.test_case "miss then hit" `Quick test_buffer_miss_then_hit;
          Alcotest.test_case "LRU eviction" `Quick test_buffer_lru_eviction;
          Alcotest.test_case "capacity bound" `Quick test_buffer_capacity_bound;
          Alcotest.test_case "distinct pages" `Quick test_buffer_distinct_pages_when_large;
          Alcotest.test_case "clear" `Quick test_buffer_clear;
          Alcotest.test_case "tables disjoint" `Quick test_buffer_tables_disjoint;
          QCheck_alcotest.to_alcotest prop_buffer_misses_bounded ] ) ]
