test/test_common.ml: Alcotest Array Cmp Constant Disco_common Fmt Fun List Option QCheck2 QCheck_alcotest Rng
