test/test_costlang.mli:
