test/test_sql.ml: Alcotest Constant Disco_algebra Disco_common Disco_sql Err List Plan Pred Sql
