test/test_catalog.ml: Alcotest Catalog Constant Disco_catalog Disco_common Err List QCheck2 QCheck_alcotest Schema Stats
