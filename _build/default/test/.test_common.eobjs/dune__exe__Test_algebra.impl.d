test/test_algebra.ml: Alcotest Constant Disco_algebra Disco_common List Plan Pred String
