test/test_storage.ml: Alcotest Array Btree Buffer Cmp Constant Disco_catalog Disco_common Disco_storage Hashtbl List Option QCheck2 QCheck_alcotest Rng Schema Stats Table
