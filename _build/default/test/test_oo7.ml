(* Tests for lib/oo7: the benchmark database matches the paper's parameters,
   and the Yao-rule estimates track the simulated measurements much better
   than the linear calibrated model (the §5 validation, in miniature). *)

open Disco_common
open Disco_algebra
open Disco_core
open Disco_storage
open Disco_exec
open Disco_wrapper
open Disco_oo7

let test_paper_parameters () =
  (* full-size database: 70000 AtomicParts of 56 bytes on exactly 1000
     pages (4096-byte pages at 96% fill) *)
  let tables = Oo7.make_tables Oo7.paper_config in
  let atomic = List.find (fun t -> t.Table.name = "AtomicPart") tables in
  Alcotest.(check int) "70000 objects" 70_000 (Table.count atomic);
  Alcotest.(check int) "1000 pages" 1000 (Table.page_count atomic);
  Alcotest.(check int) "56-byte objects" 56 atomic.Table.object_size;
  Alcotest.(check bool) "id indexed" true (Table.has_index atomic "id");
  Alcotest.(check bool) "unclustered" true (atomic.Table.clustered_on = None);
  (* ids are dense 1..70000 *)
  let st = Table.attribute_stats atomic "id" in
  Alcotest.(check int) "distinct ids" 70_000 st.Disco_catalog.Stats.count_distinct

let test_structure () =
  let tables = Oo7.make_tables Oo7.small_config in
  let names = List.map (fun t -> t.Table.name) tables in
  Alcotest.(check (list string)) "four collections"
    [ "AtomicPart"; "CompositePart"; "Connection"; "Document" ]
    names;
  let conn = List.find (fun t -> t.Table.name = "Connection") tables in
  Alcotest.(check int) "3 connections per part"
    (Oo7.small_config.Oo7.atomic_parts * 3)
    (Table.count conn)

let test_deterministic () =
  let t1 = Oo7.make_tables Oo7.small_config and t2 = Oo7.make_tables Oo7.small_config in
  let rows t = Table.rows (List.hd t) in
  Alcotest.(check bool) "same generation" true (rows t1 = rows t2)

(* The §5 experiment in miniature: measured index-scan times vs the linear
   calibrated estimate and the Yao estimate across selectivities. *)
let test_yao_beats_calibration () =
  let config = { Oo7.small_config with Oo7.atomic_parts = 7_000 } in
  let source = Oo7.make_source ~config ~with_rules:true () in
  (* registry with rules (Yao) *)
  let catalog = Disco_catalog.Catalog.create () in
  let registry = Registry.create catalog in
  Generic.register registry;
  ignore (Registry.register_source_decl registry (Wrapper.registration_decl source));
  (* registry without rules: pure calibrated generic model *)
  let source_bare = Oo7.make_source ~config ~with_rules:false () in
  let catalog2 = Disco_catalog.Catalog.create () in
  let registry2 = Registry.create catalog2 in
  Generic.register registry2;
  ignore (Registry.register_source_decl registry2 (Wrapper.registration_decl source_bare));
  let n = config.Oo7.atomic_parts in
  let errors =
    List.map
      (fun sel ->
        let k = int_of_float (float_of_int n *. sel) in
        let plan =
          Plan.Select
            ( Plan.Scan { Plan.source = "oo7"; collection = "AtomicPart"; binding = "a" },
              Pred.Cmp ("a.id", Pred.Le, Constant.Int k) )
        in
        Oo7.cold_cache source;
        let _, measured = Wrapper.execute source plan in
        let est_yao =
          Estimator.total_time (Estimator.estimate ~source:"oo7" registry plan)
        in
        let est_cal =
          Estimator.total_time (Estimator.estimate ~source:"oo7" registry2 plan)
        in
        let err e = Float.abs (e -. measured.Run.total_time) /. measured.Run.total_time in
        (err est_yao, err est_cal))
      [ 0.05; 0.1; 0.2; 0.4; 0.6 ]
  in
  let avg f = List.fold_left (fun a x -> a +. f x) 0. errors /. float_of_int (List.length errors) in
  let yao_err = avg fst and cal_err = avg snd in
  Alcotest.(check bool)
    (Fmt.str "yao (%.3f) at least as accurate as calibration (%.3f)" yao_err cal_err)
    true (yao_err < cal_err);
  Alcotest.(check bool) "yao reasonably tight" true (yao_err < 0.35)

let test_measured_curve_is_concave () =
  (* the measured response time saturates once every page is touched: the
     increment from sel 0.4 to 0.6 in IO terms is smaller than from 0.0 to
     0.2 (concavity of Yao) — checked on the IO component, i.e. with output
     cost subtracted *)
  let config = { Oo7.small_config with Oo7.atomic_parts = 7_000 } in
  let source = Oo7.make_source ~config () in
  let measure sel =
    let k = int_of_float (float_of_int config.Oo7.atomic_parts *. sel) in
    let plan =
      Plan.Select
        ( Plan.Scan { Plan.source = "oo7"; collection = "AtomicPart"; binding = "a" },
          Pred.Cmp ("a.id", Pred.Le, Constant.Int k) )
    in
    Oo7.cold_cache source;
    let _, v = Wrapper.execute source plan in
    v.Run.total_time -. (float_of_int k *. Costs.objectstore.Costs.output_ms)
  in
  let t0 = measure 0.001 and t2 = measure 0.2 and t4 = measure 0.4 and t6 = measure 0.6 in
  Alcotest.(check bool) "early increment dominates late" true (t2 -. t0 > t6 -. t4);
  Alcotest.(check bool) "monotone" true (t0 <= t2 && t2 <= t4 +. 1. && t4 <= t6 +. 1.)

module Util_err = struct
  let rel est real = Float.abs (est -. real) /. Float.max real 1e-9
end

let test_query_workload () =
  (* the OO7 query subset runs, produces sane results, and the wrapper rules
     estimate the workload better than the calibrated model on average *)
  let config = { Oo7.small_config with Oo7.atomic_parts = 7_000 } in
  let source = Oo7.make_source ~config ~with_rules:true () in
  let registry_of src =
    let registry = Registry.create (Disco_catalog.Catalog.create ()) in
    Generic.register registry;
    ignore (Registry.register_source_decl registry (Wrapper.registration_decl src));
    registry
  in
  let reg_yao = registry_of source in
  let reg_cal = registry_of (Wrapper.without_rules source) in
  let queries = Oo7.queries config in
  Alcotest.(check int) "seven queries" 7 (List.length queries);
  let errs =
    List.map
      (fun (label, plan) ->
        Oo7.cold_cache source;
        let rows, v = Wrapper.execute source plan in
        Alcotest.(check bool) (label ^ " rows sane") true
          (List.length rows >= 0 && v.Run.total_time > 0.);
        let est r = Estimator.total_time (Estimator.estimate ~source:"oo7" r plan) in
        ( Util_err.rel (est reg_cal) v.Run.total_time,
          Util_err.rel (est reg_yao) v.Run.total_time ))
      queries
  in
  let mean f = List.fold_left (fun a e -> a +. f e) 0. errs /. float_of_int (List.length errs) in
  Alcotest.(check bool)
    (Fmt.str "rules (%.2f) beat calibration (%.2f)" (mean snd) (mean fst))
    true
    (mean snd < mean fst)

let () =
  Alcotest.run "oo7"
    [ ( "database",
        [ Alcotest.test_case "paper parameters" `Slow test_paper_parameters;
          Alcotest.test_case "structure" `Quick test_structure;
          Alcotest.test_case "deterministic" `Quick test_deterministic ] );
      ( "validation",
        [ Alcotest.test_case "yao beats calibration" `Slow test_yao_beats_calibration;
          Alcotest.test_case "measured curve concave" `Slow test_measured_curve_is_concave;
          Alcotest.test_case "query workload" `Slow test_query_workload ] ) ]
