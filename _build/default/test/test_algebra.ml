(* Tests for lib/algebra: predicates and logical plans. *)

open Disco_common
open Disco_algebra

let emp = { Plan.source = "s1"; collection = "Employee"; binding = "e" }
let dep = { Plan.source = "s1"; collection = "Department"; binding = "d" }
let prj = { Plan.source = "s2"; collection = "Project"; binding = "p" }

let lookup_of (assoc : (string * Constant.t) list) name = List.assoc name assoc

(* --- Pred ------------------------------------------------------------------- *)

let test_pred_eval () =
  let env = lookup_of [ ("e.salary", Constant.Int 2000); ("e.age", Constant.Int 30) ] in
  let open Pred in
  Alcotest.(check bool) "eq true" true (eval env (Cmp ("e.salary", Eq, Constant.Int 2000)));
  Alcotest.(check bool) "lt false" false (eval env (Cmp ("e.salary", Lt, Constant.Int 2000)));
  Alcotest.(check bool) "and" true
    (eval env
       (And (Cmp ("e.salary", Ge, Constant.Int 2000), Cmp ("e.age", Lt, Constant.Int 40))));
  Alcotest.(check bool) "or" true
    (eval env
       (Or (Cmp ("e.salary", Lt, Constant.Int 0), Cmp ("e.age", Eq, Constant.Int 30))));
  Alcotest.(check bool) "not" false (eval env (Not True));
  Alcotest.(check bool) "attr_cmp" false
    (eval env (Attr_cmp ("e.salary", Eq, "e.age")))

let test_pred_conjuncts () =
  let open Pred in
  let a = Cmp ("x", Eq, Constant.Int 1)
  and b = Cmp ("y", Lt, Constant.Int 2)
  and c = Cmp ("z", Gt, Constant.Int 3) in
  Alcotest.(check int) "three conjuncts" 3 (List.length (conjuncts (And (And (a, b), c))));
  Alcotest.(check int) "true is empty" 0 (List.length (conjuncts True));
  Alcotest.(check int) "or is atomic" 1 (List.length (conjuncts (Or (a, b))));
  (* conj of conjuncts round-trips to an equivalent predicate *)
  let p = And (a, And (b, c)) in
  let env = lookup_of [ ("x", Constant.Int 1); ("y", Constant.Int 1); ("z", Constant.Int 9) ] in
  Alcotest.(check bool) "roundtrip equivalence" (eval env p) (eval env (conj (conjuncts p)))

let test_pred_attributes () =
  let open Pred in
  let p = And (Cmp ("a", Eq, Constant.Int 1), Attr_cmp ("b", Lt, "c")) in
  Alcotest.(check (list string)) "attributes" [ "a"; "b"; "c" ] (attributes p)

let test_pred_apply () =
  let open Pred in
  let p = Apply ("lang_match", "d.lang", Constant.String "en") in
  let env = lookup_of [ ("d.lang", Constant.String "en") ] in
  (* without an implementation, evaluation raises *)
  Alcotest.(check bool) "no impl raises" true
    (try
       ignore (eval env p);
       false
     with Disco_common.Err.Eval_error _ -> true);
  (* with one, it applies *)
  let apply _ a v = Constant.equal a v in
  Alcotest.(check bool) "applies" true (eval ~apply env p);
  Alcotest.(check bool) "inside conjunction" true
    (eval ~apply env (And (p, True)));
  Alcotest.(check (list string)) "attributes" [ "d.lang" ] (attributes p);
  Alcotest.(check (list string)) "operations" [ "lang_match" ] (adt_operations p);
  Alcotest.(check bool) "has_apply" true (has_apply (And (True, p)));
  Alcotest.(check bool) "no apply" false (has_apply (Cmp ("x", Eq, Constant.Int 1)));
  Alcotest.(check bool) "apply equal" true
    (equal p (Apply ("lang_match", "d.lang", Constant.String "en")));
  Alcotest.(check bool) "apply not equal" false
    (equal p (Apply ("other", "d.lang", Constant.String "en")))

let test_pred_equal () =
  let open Pred in
  let p = Cmp ("a", Eq, Constant.Int 1) in
  Alcotest.(check bool) "same" true (equal p (Cmp ("a", Eq, Constant.Int 1)));
  Alcotest.(check bool) "int/float coercion" true (equal p (Cmp ("a", Eq, Constant.Float 1.)));
  Alcotest.(check bool) "different op" false (equal p (Cmp ("a", Lt, Constant.Int 1)));
  Alcotest.(check bool) "different attr" false (equal p (Cmp ("b", Eq, Constant.Int 1)))

(* --- Plan -------------------------------------------------------------------- *)

let sample_plan =
  Plan.Join
    ( Plan.Submit
        ( "s1",
          Plan.Select (Plan.Scan emp, Pred.Cmp ("e.salary", Pred.Gt, Constant.Int 100)) ),
      Plan.Submit ("s2", Plan.Scan prj),
      Pred.Attr_cmp ("e.dept_id", Pred.Eq, "p.dept_id") )

let test_plan_children_size () =
  Alcotest.(check int) "size" 6 (Plan.size sample_plan);
  Alcotest.(check int) "join has 2 children" 2 (List.length (Plan.children sample_plan));
  Alcotest.(check int) "scan has none" 0 (List.length (Plan.children (Plan.Scan emp)))

let test_plan_scans_bindings () =
  let scans = Plan.scans sample_plan in
  Alcotest.(check (list string)) "scan collections" [ "Employee"; "Project" ]
    (List.map (fun r -> r.Plan.collection) scans);
  Alcotest.(check (list string)) "bindings" [ "e"; "p" ]
    (List.map fst (Plan.bindings sample_plan))

let test_plan_equal () =
  Alcotest.(check bool) "reflexive" true (Plan.equal sample_plan sample_plan);
  Alcotest.(check bool) "different" false (Plan.equal sample_plan (Plan.Scan emp));
  let other =
    Plan.Join
      ( Plan.Submit
          ( "s1",
            Plan.Select (Plan.Scan emp, Pred.Cmp ("e.salary", Pred.Gt, Constant.Int 101)) ),
        Plan.Submit ("s2", Plan.Scan prj),
        Pred.Attr_cmp ("e.dept_id", Pred.Eq, "p.dept_id") )
  in
  Alcotest.(check bool) "differs in constant" false (Plan.equal sample_plan other)

let test_split_attr () =
  Alcotest.(check (option (pair string string))) "qualified" (Some ("e", "salary"))
    (Plan.split_attr "e.salary");
  Alcotest.(check (option (pair string string))) "bare" None (Plan.split_attr "salary")

let test_attr_origin () =
  match Plan.attr_origin sample_plan "e.salary" with
  | Some (r, attr) ->
    Alcotest.(check string) "collection" "Employee" r.Plan.collection;
    Alcotest.(check string) "attr" "salary" attr
  | None -> Alcotest.fail "origin not found"

let test_attr_origin_missing () =
  Alcotest.(check bool) "unknown binding" true
    (Plan.attr_origin sample_plan "z.salary" = None);
  Alcotest.(check bool) "bare name" true (Plan.attr_origin sample_plan "salary" = None)

let collection_attrs _ = function
  | "Employee" -> [ "id"; "salary"; "dept_id" ]
  | "Department" -> [ "id"; "city" ]
  | "Project" -> [ "id"; "dept_id" ]
  | _ -> []

let test_output_attrs () =
  let attrs = Plan.output_attrs ~collection_attrs sample_plan in
  Alcotest.(check (list string)) "join output"
    [ "e.id"; "e.salary"; "e.dept_id"; "p.id"; "p.dept_id" ]
    attrs;
  let projected = Plan.Project (sample_plan, [ "e.salary" ]) in
  Alcotest.(check (list string)) "project restricts" [ "e.salary" ]
    (Plan.output_attrs ~collection_attrs projected);
  let agg =
    Plan.Aggregate
      ( sample_plan,
        { Plan.group_by = [ "p.dept_id" ]; aggs = [ (Plan.Sum, "e.salary", "total") ] } )
  in
  Alcotest.(check (list string)) "aggregate output" [ "p.dept_id"; "total" ]
    (Plan.output_attrs ~collection_attrs agg)

let test_submit_sources () =
  Alcotest.(check (list string)) "sources" [ "s1"; "s2" ] (Plan.submit_sources sample_plan)

(* substring containment, to avoid a dependency *)
let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let test_plan_pp () =
  (* rendering goes through without exception and mentions the operators *)
  let s = Plan.to_string sample_plan in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("mentions " ^ needle) true (contains s needle))
    [ "join"; "submit"; "select"; "scan" ];
  (* dep is exercised too *)
  let u = Plan.to_string (Plan.Union (Plan.Scan dep, Plan.Dedup (Plan.Scan dep))) in
  Alcotest.(check bool) "union rendered" true (contains u "union")

let () =
  Alcotest.run "algebra"
    [ ( "pred",
        [ Alcotest.test_case "eval" `Quick test_pred_eval;
          Alcotest.test_case "conjuncts" `Quick test_pred_conjuncts;
          Alcotest.test_case "attributes" `Quick test_pred_attributes;
          Alcotest.test_case "ADT apply" `Quick test_pred_apply;
          Alcotest.test_case "equal" `Quick test_pred_equal ] );
      ( "plan",
        [ Alcotest.test_case "children and size" `Quick test_plan_children_size;
          Alcotest.test_case "scans and bindings" `Quick test_plan_scans_bindings;
          Alcotest.test_case "structural equality" `Quick test_plan_equal;
          Alcotest.test_case "split_attr" `Quick test_split_attr;
          Alcotest.test_case "attr_origin" `Quick test_attr_origin;
          Alcotest.test_case "attr_origin missing" `Quick test_attr_origin_missing;
          Alcotest.test_case "output_attrs" `Quick test_output_attrs;
          Alcotest.test_case "submit_sources" `Quick test_submit_sources;
          Alcotest.test_case "pretty printing" `Quick test_plan_pp ] ) ]
