(* Tests for lib/common: constants, comparison operators, PRNG. *)

open Disco_common

let check_float = Alcotest.(check (float 1e-9))

(* --- Constant ---------------------------------------------------------- *)

let test_compare_numeric () =
  Alcotest.(check bool) "int < int" true (Constant.compare (Int 1) (Int 2) < 0);
  Alcotest.(check bool) "int = float" true (Constant.compare (Int 2) (Float 2.0) = 0);
  Alcotest.(check bool) "float < int" true (Constant.compare (Float 1.5) (Int 2) < 0);
  Alcotest.(check bool) "int > float" true (Constant.compare (Int 3) (Float 2.5) > 0)

let test_compare_ranks () =
  (* null < bool < numeric < string *)
  Alcotest.(check bool) "null < bool" true (Constant.compare Null (Bool false) < 0);
  Alcotest.(check bool) "bool < int" true (Constant.compare (Bool true) (Int 0) < 0);
  Alcotest.(check bool) "int < string" true (Constant.compare (Int 999) (String "a") < 0)

let test_equal_coercion () =
  Alcotest.(check bool) "2 = 2.0" true (Constant.equal (Int 2) (Float 2.0));
  Alcotest.(check bool) "2.0 = 2" true (Constant.equal (Float 2.0) (Int 2));
  Alcotest.(check bool) "2 <> 3.0" false (Constant.equal (Int 2) (Float 3.0));
  Alcotest.(check bool) "strings" true (Constant.equal (String "x") (String "x"));
  Alcotest.(check bool) "null = null" true (Constant.equal Null Null);
  Alcotest.(check bool) "null <> 0" false (Constant.equal Null (Int 0))

let test_to_float () =
  Alcotest.(check (option (float 0.))) "int" (Some 5.) (Constant.to_float_opt (Int 5));
  Alcotest.(check (option (float 0.))) "bool" (Some 1.) (Constant.to_float_opt (Bool true));
  Alcotest.(check (option (float 0.))) "string" None (Constant.to_float_opt (String "5"));
  Alcotest.(check (option (float 0.))) "null" None (Constant.to_float_opt Null)

let test_fraction_numeric () =
  let f v = Constant.fraction ~min:(Constant.Int 0) ~max:(Constant.Int 100) (Constant.Int v) in
  check_float "middle" 0.5 (Option.get (f 50));
  check_float "low clamp" 0.0 (Option.get (f (-10)));
  check_float "high clamp" 1.0 (Option.get (f 200));
  check_float "quarter" 0.25 (Option.get (f 25))

let test_fraction_degenerate () =
  (* min = max: no information, returns 0.5 *)
  check_float "degenerate" 0.5
    (Option.get (Constant.fraction ~min:(Constant.Int 7) ~max:(Constant.Int 7) (Constant.Int 7)));
  Alcotest.(check (option (float 0.))) "null bounds" None
    (Constant.fraction ~min:Constant.Null ~max:Constant.Null (Constant.Int 1))

let test_fraction_string () =
  let frac v =
    Constant.fraction ~min:(Constant.String "Adiba") ~max:(Constant.String "Valduriez")
      (Constant.String v)
  in
  let a = Option.get (frac "Adiba") and v = Option.get (frac "Valduriez") in
  check_float "min is 0" 0.0 a;
  check_float "max is 1" 1.0 v;
  let m = Option.get (frac "Naacke") in
  Alcotest.(check bool) "interior" true (m > 0. && m < 1.)

let test_byte_size () =
  Alcotest.(check int) "int" 8 (Constant.byte_size (Int 5));
  Alcotest.(check int) "string" 5 (Constant.byte_size (String "hello"));
  Alcotest.(check int) "null" 1 (Constant.byte_size Null)

(* --- Cmp ---------------------------------------------------------------- *)

let test_cmp_eval () =
  let t op a b = Cmp.eval op (Constant.Int a) (Constant.Int b) in
  Alcotest.(check bool) "eq" true (t Cmp.Eq 3 3);
  Alcotest.(check bool) "ne" true (t Cmp.Ne 3 4);
  Alcotest.(check bool) "lt" true (t Cmp.Lt 3 4);
  Alcotest.(check bool) "le" true (t Cmp.Le 4 4);
  Alcotest.(check bool) "gt" false (t Cmp.Gt 3 4);
  Alcotest.(check bool) "ge" true (t Cmp.Ge 4 4)

let test_cmp_flip () =
  (* a op b <=> b (flip op) a *)
  let ops = [ Cmp.Eq; Cmp.Ne; Cmp.Lt; Cmp.Le; Cmp.Gt; Cmp.Ge ] in
  List.iter
    (fun op ->
      for a = -2 to 2 do
        for b = -2 to 2 do
          Alcotest.(check bool)
            (Fmt.str "flip %a %d %d" Cmp.pp op a b)
            (Cmp.eval op (Constant.Int a) (Constant.Int b))
            (Cmp.eval (Cmp.flip op) (Constant.Int b) (Constant.Int a))
        done
      done)
    ops

(* --- Rng ----------------------------------------------------------------- *)

let test_rng_deterministic () =
  let a = Rng.create ~seed:5 and b = Rng.create ~seed:5 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Rng.int a 1000) (Rng.int b 1000)
  done

let test_rng_bounds () =
  let rng = Rng.create ~seed:9 in
  for _ = 1 to 1000 do
    let v = Rng.int rng 7 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 7)
  done;
  for _ = 1 to 1000 do
    let f = Rng.float rng 3.5 in
    Alcotest.(check bool) "float in range" true (f >= 0. && f < 3.5)
  done

let test_rng_shuffle_permutation () =
  let rng = Rng.create ~seed:3 in
  let arr = Array.init 100 Fun.id in
  Rng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 100 Fun.id) sorted;
  Alcotest.(check bool) "actually shuffled" true (arr <> Array.init 100 Fun.id)

(* --- qcheck properties ----------------------------------------------------- *)

let constant_gen =
  QCheck2.Gen.(
    oneof
      [ return Constant.Null;
        map (fun b -> Constant.Bool b) bool;
        map (fun i -> Constant.Int i) (int_range (-1000) 1000);
        map (fun f -> Constant.Float f) (float_range (-1000.) 1000.);
        map (fun s -> Constant.String s) (string_size (int_range 0 8)) ])

let prop_compare_antisym =
  QCheck2.Test.make ~name:"Constant.compare antisymmetric" ~count:500
    QCheck2.Gen.(pair constant_gen constant_gen)
    (fun (a, b) ->
      let ab = Constant.compare a b and ba = Constant.compare b a in
      (ab > 0 && ba < 0) || (ab < 0 && ba > 0) || (ab = 0 && ba = 0))

let prop_compare_transitive =
  QCheck2.Test.make ~name:"Constant.compare transitive" ~count:500
    QCheck2.Gen.(triple constant_gen constant_gen constant_gen)
    (fun (a, b, c) ->
      let sorted = List.sort Constant.compare [ a; b; c ] in
      match sorted with
      | [ x; y; z ] -> Constant.compare x y <= 0 && Constant.compare y z <= 0 && Constant.compare x z <= 0
      | _ -> false)

let prop_equal_consistent_with_compare =
  QCheck2.Test.make ~name:"equal consistent with compare (numeric/string)" ~count:500
    QCheck2.Gen.(pair constant_gen constant_gen)
    (fun (a, b) ->
      if Constant.equal a b then Constant.compare a b = 0 else true)

let prop_fraction_bounds =
  QCheck2.Test.make ~name:"fraction in [0,1] when defined" ~count:500
    QCheck2.Gen.(triple constant_gen constant_gen constant_gen)
    (fun (min, max, v) ->
      match Constant.fraction ~min ~max v with
      | None -> true
      | Some f -> f >= 0. && f <= 1.)

let prop_fraction_monotone =
  QCheck2.Test.make ~name:"fraction monotone in v" ~count:500
    QCheck2.Gen.(triple (int_range 0 100) (int_range 0 100) (int_range 0 100))
    (fun (v1, v2, _) ->
      let lo, hi = (Constant.Int 0, Constant.Int 100) in
      let f v = Option.get (Constant.fraction ~min:lo ~max:hi (Constant.Int v)) in
      if v1 <= v2 then f v1 <= f v2 else f v1 >= f v2)

let qcheck =
  List.map QCheck_alcotest.to_alcotest
    [ prop_compare_antisym;
      prop_compare_transitive;
      prop_equal_consistent_with_compare;
      prop_fraction_bounds;
      prop_fraction_monotone ]

let () =
  Alcotest.run "common"
    [ ( "constant",
        [ Alcotest.test_case "numeric compare" `Quick test_compare_numeric;
          Alcotest.test_case "cross-type ranks" `Quick test_compare_ranks;
          Alcotest.test_case "equality coercion" `Quick test_equal_coercion;
          Alcotest.test_case "to_float" `Quick test_to_float;
          Alcotest.test_case "fraction numeric" `Quick test_fraction_numeric;
          Alcotest.test_case "fraction degenerate" `Quick test_fraction_degenerate;
          Alcotest.test_case "fraction string" `Quick test_fraction_string;
          Alcotest.test_case "byte_size" `Quick test_byte_size ] );
      ( "cmp",
        [ Alcotest.test_case "eval" `Quick test_cmp_eval;
          Alcotest.test_case "flip" `Quick test_cmp_flip ] );
      ( "rng",
        [ Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
          Alcotest.test_case "shuffle is a permutation" `Quick test_rng_shuffle_permutation ] );
      ("properties", qcheck) ]
