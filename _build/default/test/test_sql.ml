(* Tests for lib/sql: the client query language. *)

open Disco_common
open Disco_algebra
open Disco_sql

let parse = Sql.parse ~what:"test"

let test_basic_select () =
  let q = parse "select e.name, e.salary from Employee e where e.salary > 1000" in
  Alcotest.(check bool) "not star" false q.Sql.star;
  Alcotest.(check int) "two items" 2 (List.length q.Sql.items);
  Alcotest.(check int) "one relation" 1 (List.length q.Sql.relations);
  let r = List.hd q.Sql.relations in
  Alcotest.(check string) "collection" "Employee" r.Sql.rel_collection;
  Alcotest.(check string) "alias" "e" r.Sql.rel_alias;
  Alcotest.(check (option string)) "no source" None r.Sql.rel_source;
  (match q.Sql.where with
   | Pred.Cmp ("e.salary", Pred.Gt, Constant.Int 1000) -> ()
   | p -> Alcotest.failf "bad where: %a" Pred.pp p)

let test_source_qualified_relation () =
  let q = parse "select * from relstore.Employee as e" in
  Alcotest.(check bool) "star" true q.Sql.star;
  let r = List.hd q.Sql.relations in
  Alcotest.(check (option string)) "source" (Some "relstore") r.Sql.rel_source;
  Alcotest.(check string) "alias via AS" "e" r.Sql.rel_alias

let test_default_alias () =
  let q = parse "select * from Employee" in
  Alcotest.(check string) "alias = collection" "Employee"
    (List.hd q.Sql.relations).Sql.rel_alias

let test_join_query () =
  let q =
    parse
      "select e.name from Employee e, Department d \
       where e.dept_id = d.id and d.city = \"Paris\""
  in
  Alcotest.(check int) "two relations" 2 (List.length q.Sql.relations);
  (match Pred.conjuncts q.Sql.where with
   | [ Pred.Attr_cmp ("e.dept_id", Pred.Eq, "d.id");
       Pred.Cmp ("d.city", Pred.Eq, Constant.String "Paris") ] ->
     ()
   | _ -> Alcotest.fail "bad conjuncts")

let test_compound_where () =
  let q =
    parse
      "select * from T where (a < 5 or a > 10) and not b = 3"
  in
  (match q.Sql.where with
   | Pred.And (Pred.Or _, Pred.Not _) -> ()
   | p -> Alcotest.failf "bad structure: %a" Pred.pp p)

let test_aggregates () =
  let q =
    parse
      "select d.city, count(*) as n, avg(e.salary) from Employee e, Department d \
       where e.dept_id = d.id group by d.city order by n desc limit 3"
  in
  (match q.Sql.items with
   | [ Sql.Col "d.city"; Sql.Agg (Plan.Count, "", "n"); Sql.Agg (Plan.Avg, "e.salary", name) ] ->
     Alcotest.(check string) "default agg name" "avg_salary" name
   | _ -> Alcotest.fail "bad items");
  Alcotest.(check (list string)) "group" [ "d.city" ] q.Sql.group_by;
  (match q.Sql.order_by with
   | [ ("n", Plan.Desc) ] -> ()
   | _ -> Alcotest.fail "bad order");
  Alcotest.(check (option int)) "limit" (Some 3) q.Sql.limit

let test_order_variants () =
  let q = parse "select a from T order by a asc, b desc, c" in
  (match q.Sql.order_by with
   | [ ("a", Plan.Asc); ("b", Plan.Desc); ("c", Plan.Asc) ] -> ()
   | _ -> Alcotest.fail "bad order keys")

let test_distinct () =
  Alcotest.(check bool) "distinct" true (parse "select distinct a from T").Sql.distinct;
  Alcotest.(check bool) "no distinct" false (parse "select a from T").Sql.distinct

let test_case_insensitive_keywords () =
  let q = parse "SELECT a FROM T WHERE a = 1 ORDER BY a" in
  Alcotest.(check int) "parsed" 1 (List.length q.Sql.items)

let test_constants () =
  let q = parse "select * from T where a = -5 and b = 2.5 and c = true and d = null" in
  (match Pred.conjuncts q.Sql.where with
   | [ Pred.Cmp (_, _, Constant.Int (-5));
       Pred.Cmp (_, _, Constant.Float 2.5);
       Pred.Cmp (_, _, Constant.Bool true);
       Pred.Cmp (_, _, Constant.Null) ] ->
     ()
   | _ -> Alcotest.fail "bad constants")

let test_adt_condition () =
  let q =
    parse "select d.doc_id from Document d where lang_match(d.lang, \"en\") and d.bytes > 10"
  in
  (match Pred.conjuncts q.Sql.where with
   | [ Pred.Apply ("lang_match", "d.lang", Constant.String "en"); Pred.Cmp _ ] -> ()
   | _ -> Alcotest.fail "bad ADT condition");
  (* aggregate-function names still parse as aggregates in the item list,
     not as ADT predicates *)
  let q2 = parse "select count(*) from T where fuzzy(a, 3)" in
  (match q2.Sql.where with
   | Pred.Apply ("fuzzy", "a", Constant.Int 3) -> ()
   | _ -> Alcotest.fail "bare attr ADT")

let test_errors () =
  let bad s =
    try
      ignore (parse s);
      false
    with Err.Parse_error _ -> true
  in
  Alcotest.(check bool) "missing from" true (bad "select a");
  Alcotest.(check bool) "dangling where" true (bad "select a from T where");
  Alcotest.(check bool) "trailing junk" true (bad "select a from T where a = 1 1");
  Alcotest.(check bool) "bad item" true (bad "select , from T");
  Alcotest.(check bool) "bad limit" true (bad "select a from T limit x")

let test_semicolon_tolerated () =
  let q = parse "select a from T;" in
  Alcotest.(check int) "one relation" 1 (List.length q.Sql.relations)

let test_aliases_helper () =
  let q = parse "select * from A x, B y" in
  Alcotest.(check (list string)) "aliases" [ "x"; "y" ] (Sql.aliases q)

let () =
  Alcotest.run "sql"
    [ ( "parser",
        [ Alcotest.test_case "basic select" `Quick test_basic_select;
          Alcotest.test_case "source-qualified relation" `Quick test_source_qualified_relation;
          Alcotest.test_case "default alias" `Quick test_default_alias;
          Alcotest.test_case "join query" `Quick test_join_query;
          Alcotest.test_case "compound where" `Quick test_compound_where;
          Alcotest.test_case "aggregates" `Quick test_aggregates;
          Alcotest.test_case "order variants" `Quick test_order_variants;
          Alcotest.test_case "distinct" `Quick test_distinct;
          Alcotest.test_case "case-insensitive keywords" `Quick test_case_insensitive_keywords;
          Alcotest.test_case "constants" `Quick test_constants;
          Alcotest.test_case "ADT conditions" `Quick test_adt_condition;
          Alcotest.test_case "errors" `Quick test_errors;
          Alcotest.test_case "semicolon" `Quick test_semicolon_tolerated;
          Alcotest.test_case "aliases" `Quick test_aliases_helper ] ) ]
