(* Tests for lib/mediator: SQL resolution, optimizer enumeration and DP,
   end-to-end execution correctness against naive reference evaluation,
   pruning statistics, history integration. *)

open Disco_common
open Disco_algebra
open Disco_core
open Disco_storage
open Disco_exec
open Disco_wrapper
open Disco_mediator

let fed () =
  let med = Mediator.create () in
  let wrappers = Demo.make ~sizes:Demo.small_sizes () in
  List.iter (Mediator.register med) wrappers;
  (med, wrappers)

let table_of wrappers source name =
  let w = List.find (fun w -> w.Wrapper.name = source) wrappers in
  Wrapper.find_table w name

(* Naive reference: all rows of a collection as qualified tuples. *)
let rows_of wrappers source name binding =
  let t = table_of wrappers source name in
  let attrs =
    Array.of_list
      (List.map
         (fun (a : Disco_catalog.Schema.attribute) ->
           binding ^ "." ^ a.Disco_catalog.Schema.attr_name)
         t.Table.schema.Disco_catalog.Schema.attributes)
  in
  List.map (Tuple.make attrs) (Table.rows t)

let ids rows attr =
  List.sort compare (List.map (fun t -> Constant.to_string (Tuple.get t attr)) rows)

(* --- End-to-end correctness -------------------------------------------------------- *)

let test_single_source_select () =
  let med, wrappers = fed () in
  let a = Mediator.run_query med "select e.id from Employee e where e.salary > 25000" in
  let expected =
    List.filter
      (fun t -> Pred.eval (Tuple.get t) (Pred.Cmp ("e.salary", Pred.Gt, Constant.Int 25000)))
      (rows_of wrappers "relstore" "Employee" "e")
  in
  Alcotest.(check (list string)) "same ids" (ids expected "e.id") (ids a.Mediator.rows "e.id")

let test_cross_source_join () =
  let med, wrappers = fed () in
  let a =
    Mediator.run_query med
      "select e.id, p.id from Employee e, Project p \
       where e.dept_id = p.dept_id and e.salary > 28000 and p.cost < 8000"
  in
  (* naive nested loop over raw rows *)
  let emps =
    List.filter
      (fun t -> Pred.eval (Tuple.get t) (Pred.Cmp ("e.salary", Pred.Gt, Constant.Int 28000)))
      (rows_of wrappers "relstore" "Employee" "e")
  in
  let projs =
    List.filter
      (fun t -> Pred.eval (Tuple.get t) (Pred.Cmp ("p.cost", Pred.Lt, Constant.Int 8000)))
      (rows_of wrappers "objstore" "Project" "p")
  in
  let expected =
    List.concat_map
      (fun e ->
        List.filter_map
          (fun p ->
            if Constant.equal (Tuple.get e "e.dept_id") (Tuple.get p "p.dept_id") then
              Some (Tuple.concat e p)
            else None)
          projs)
      emps
  in
  Alcotest.(check int) "same cardinality" (List.length expected) (List.length a.Mediator.rows);
  Alcotest.(check bool) "join produced submits for both sources" true
    (let sources = Plan.submit_sources a.Mediator.plan in
     List.mem "relstore" sources && List.mem "objstore" sources)

let test_three_source_join () =
  let med, _ = fed () in
  let a =
    Mediator.run_query med
      "select e.id, l.rating, p.id from Employee e, Listing l, Project p \
       where l.emp_id = e.id and e.dept_id = p.dept_id \
       and e.salary > 28500 and p.cost < 6500"
  in
  (* every output row satisfies all predicates *)
  List.iter
    (fun t ->
      Alcotest.(check bool) "rating in range" true
        (match Tuple.get t "l.rating" with Constant.Int r -> r >= 1 && r <= 5 | _ -> false))
    a.Mediator.rows;
  Alcotest.(check bool) "ran" true (List.length a.Mediator.rows >= 0)

let test_aggregate_group_order () =
  let med, wrappers = fed () in
  let a =
    Mediator.run_query med
      "select e.dept_id, count(*) as n from Employee e group by e.dept_id order by n desc limit 5"
  in
  Alcotest.(check int) "limit applied" 5 (List.length a.Mediator.rows);
  (* counts descending *)
  let counts =
    List.map (fun t -> match Tuple.get t "n" with Constant.Int n -> n | _ -> -1) a.Mediator.rows
  in
  let rec desc = function a :: b :: r -> a >= b && desc (b :: r) | _ -> true in
  Alcotest.(check bool) "descending" true (desc counts);
  (* total over all groups = employee count *)
  let a2 = Mediator.run_query med "select count(*) as n from Employee e" in
  (match (List.hd a2.Mediator.rows).Tuple.values with
   | [| Constant.Int n |] ->
     Alcotest.(check int) "count(*)" (Table.count (table_of wrappers "relstore" "Employee")) n
   | _ -> Alcotest.fail "count shape")

let test_distinct_dedup () =
  let med, wrappers = fed () in
  let a = Mediator.run_query med "select distinct d.city from Department d" in
  let expected =
    List.sort_uniq compare
      (List.map
         (fun t -> Constant.to_string (Tuple.get t "d.city"))
         (rows_of wrappers "relstore" "Department" "d"))
  in
  Alcotest.(check int) "distinct cities" (List.length expected) (List.length a.Mediator.rows)

let test_star_and_order () =
  let med, wrappers = fed () in
  let a = Mediator.run_query med "select * from Department d order by d.id" in
  Alcotest.(check int) "all rows"
    (Table.count (table_of wrappers "relstore" "Department"))
    (List.length a.Mediator.rows);
  Alcotest.(check int) "all attrs" 3 (Tuple.arity (List.hd a.Mediator.rows));
  (match List.map (fun t -> Tuple.get t "d.id") a.Mediator.rows with
   | first :: _ -> Alcotest.(check bool) "sorted" true (Constant.equal first (Constant.Int 1))
   | [] -> Alcotest.fail "empty")

let test_resolution_errors () =
  let med, _ = fed () in
  let raises f =
    try
      ignore (f ());
      false
    with Err.Plan_error _ | Err.Unknown_collection _ | Err.Unknown_attribute _ -> true
  in
  Alcotest.(check bool) "unknown collection" true
    (raises (fun () -> Mediator.run_query med "select * from Nothing n"));
  Alcotest.(check bool) "unknown attribute" true
    (raises (fun () -> Mediator.run_query med "select e.wages from Employee e"));
  Alcotest.(check bool) "ambiguous bare attr" true
    (raises (fun () -> Mediator.run_query med "select id from Employee e, Department d"));
  Alcotest.(check bool) "duplicate alias" true
    (raises (fun () -> Mediator.run_query med "select * from Employee x, Department x"));
  Alcotest.(check bool) "non-grouped column" true
    (raises (fun () ->
         Mediator.run_query med "select e.name, count(*) from Employee e group by e.dept_id"))

let test_bare_attribute_resolution () =
  let med, _ = fed () in
  (* salary exists only in Employee: bare reference resolves *)
  let a = Mediator.run_query med "select name from Employee e where salary > 28000" in
  Alcotest.(check bool) "resolved" true (List.length a.Mediator.rows > 0)

let test_explain_mentions_scopes () =
  let med, _ = fed () in
  let s = Mediator.explain med "select p.id from Project p where p.id < 20" in
  let contains needle =
    let nl = String.length needle and hl = String.length s in
    let rec go i = i + nl <= hl && (String.sub s i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "mentions submit" true (contains "submit");
  Alcotest.(check bool) "mentions a wrapper scope" true
    (contains "wrapper" || contains "collection")

(* --- Optimizer ------------------------------------------------------------------------ *)

let spec_of med sql =
  let q = Disco_sql.Sql.parse sql in
  (Mediator.resolve med q).Mediator.spec

let test_enumerate_counts () =
  let med, _ = fed () in
  (* single relation: one plan *)
  let s1 = spec_of med "select e.id from Employee e" in
  Alcotest.(check int) "single" 1 (List.length (Optimizer.enumerate s1));
  (* two relations, same source: wrapper-side and mediator-side joins x2 orders *)
  let s2 =
    spec_of med "select e.id from Employee e, Department d where e.dept_id = d.id"
  in
  let plans2 = Optimizer.enumerate s2 in
  Alcotest.(check bool) "several placements" true (List.length plans2 >= 2);
  (* all enumerated plans are complete (mention both submits or a single
     submit containing both scans) *)
  List.iter
    (fun p ->
      Alcotest.(check int) "two scans" 2 (List.length (Plan.scans p)))
    plans2;
  let s3 =
    spec_of med
      "select e.id from Employee e, Department d, Project p \
       where e.dept_id = d.id and d.id = p.dept_id"
  in
  Alcotest.(check bool) "three-way has many plans" true
    (List.length (Optimizer.enumerate s3) > 4)

let test_choose_picks_min () =
  let med, _ = fed () in
  let s =
    spec_of med "select e.id from Employee e, Department d where e.dept_id = d.id"
  in
  let plans = Optimizer.enumerate s in
  let registry = Mediator.registry med in
  let stats = Optimizer.new_stats () in
  let best = Option.get (Optimizer.choose ~prune:false registry ~stats plans) in
  (* chosen cost is the minimum over all plans *)
  List.iter
    (fun p ->
      let c = Option.get (Optimizer.cost_of registry (Optimizer.new_stats ()) p) in
      Alcotest.(check bool) "minimal" true (snd best <= c +. 1e-6))
    plans

let test_dp_matches_exhaustive () =
  let med, _ = fed () in
  let s =
    spec_of med
      "select e.id from Employee e, Department d, Project p \
       where e.dept_id = d.id and d.id = p.dept_id"
  in
  let registry = Mediator.registry med in
  let _, dp_cost = Optimizer.optimize registry s in
  let best =
    Option.get (Optimizer.choose ~prune:false registry (Optimizer.enumerate s))
  in
  (* DP may differ slightly due to local pruning, but must not be worse *)
  Alcotest.(check bool) "dp within 1% of exhaustive best" true
    (dp_cost <= snd best *. 1.01)

let test_pruning_reduces_work () =
  let med, _ = fed () in
  let s =
    spec_of med
      "select e.id from Employee e, Department d, Project p, Task t \
       where e.dept_id = d.id and d.id = p.dept_id and p.id = t.project_id"
  in
  let registry = Mediator.registry med in
  let plans = Optimizer.enumerate s in
  let with_prune = Optimizer.new_stats () in
  let without = Optimizer.new_stats () in
  let b1 = Option.get (Optimizer.choose ~prune:true registry ~stats:with_prune plans) in
  let b2 = Option.get (Optimizer.choose ~prune:false registry ~stats:without plans) in
  Alcotest.(check (float 1e-6)) "same best cost" (snd b2) (snd b1);
  Alcotest.(check bool) "pruning aborted some plans" true (with_prune.Optimizer.plans_aborted > 0);
  Alcotest.(check bool) "pruning saved evaluations" true
    (with_prune.Optimizer.formula_evals < without.Optimizer.formula_evals)

let test_first_tuple_objective () =
  let med, _ = fed () in
  let registry = Mediator.registry med in
  let q =
    "select t.id, p.kind from Task t, Project p \
     where t.project_id = p.id and t.hours > 380"
  in
  let est plan v =
    Option.get
      (Estimator.var (Estimator.estimate ~require_vars:[ v ] registry plan) v)
  in
  let plan_total, _ = Mediator.plan_query med q in
  let plan_first, _ = Mediator.plan_query ~objective:Optimizer.First_tuple med q in
  (* each plan is at least as good as the other under its own objective *)
  Alcotest.(check bool) "first-tuple plan wins on TimeFirst" true
    (est plan_first Disco_costlang.Ast.Time_first
     <= est plan_total Disco_costlang.Ast.Time_first +. 1e-6);
  Alcotest.(check bool) "total-time plan wins on TotalTime" true
    (est plan_total Disco_costlang.Ast.Total_time
     <= est plan_first Disco_costlang.Ast.Total_time +. 1e-6);
  (* choose under First_tuple returns the argmin over TimeFirst *)
  let spec = spec_of med q in
  let plans = Optimizer.enumerate spec in
  let best =
    Option.get (Optimizer.choose ~prune:false ~objective:Optimizer.First_tuple registry plans)
  in
  List.iter
    (fun p ->
      Alcotest.(check bool) "minimal TimeFirst" true
        (snd best <= est p Disco_costlang.Ast.Time_first +. 1e-6))
    plans

let test_disconnected_join_rejected () =
  let med, _ = fed () in
  let s = spec_of med "select e.id from Employee e, Project p" in
  Alcotest.(check bool) "no cross products" true
    (try
       ignore (Optimizer.optimize (Mediator.registry med) s);
       false
     with Err.Plan_error _ -> true)

(* --- History integration ---------------------------------------------------------------- *)

let test_history_improves_repeat_estimates () =
  let med = Mediator.create ~history_mode:History.Exact () in
  List.iter (Mediator.register med) (Demo.make ~sizes:Demo.small_sizes ());
  let q = "select d.id from Department d where d.budget > 100000" in
  let a1 = Mediator.run_query med q in
  (* after execution, the query-scope rule records the measured cost of the
     wrapper subquery; re-estimating the same plan must reproduce it
     (communication aside, compare the submitted subplan) *)
  let sub =
    match Plan.submit_sources a1.Mediator.plan with
    | _ :: _ ->
      let rec find = function
        | Plan.Submit (_, s) -> Some s
        | p -> List.fold_left (fun acc c -> match acc with Some _ -> acc | None -> find c)
                 None (Plan.children p)
      in
      Option.get (find a1.Mediator.plan)
    | [] -> Alcotest.fail "no submit"
  in
  let registry = Mediator.registry med in
  let ann = Estimator.estimate ~source:"relstore" registry sub in
  let recorded =
    List.find_map
      (fun r ->
        if Plan.equal r.History.plan sub then
          List.assoc_opt Disco_costlang.Ast.Total_time r.History.measured
        else None)
      (History.records (Mediator.history med))
  in
  Alcotest.(check (float 0.5)) "estimate = measured after history"
    (Option.get recorded) (Estimator.total_time ann)

let test_history_adjust_converges () =
  let med = Mediator.create ~history_mode:(History.Adjust { smoothing = 0.5 }) () in
  List.iter (Mediator.register med) (Demo.make ~sizes:Demo.small_sizes ());
  let q = "select doc.doc_id from Document doc where doc.bytes > 50000" in
  (* the files source has no rules; the generic model misestimates it, and
     the adjustment factor should drift toward the real ratio *)
  for _ = 1 to 5 do
    ignore (Mediator.run_query med q)
  done;
  let f = Registry.adjust (Mediator.registry med) ~source:"files" in
  Alcotest.(check bool) "factor moved away from 1" true (Float.abs (f -. 1.) > 0.05)

let test_analyze () =
  let med, _ = fed () in
  let s =
    Mediator.analyze med
      "select e.id from Employee e, Project p \
       where e.dept_id = p.dept_id and e.salary > 28000"
  in
  let contains needle =
    let nl = String.length needle and hl = String.length s in
    let rec go i = i + nl <= hl && (String.sub s i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "per-subquery lines" true (contains "per wrapper subquery");
  Alcotest.(check bool) "mentions both sources" true
    (contains "relstore" && contains "objstore");
  Alcotest.(check bool) "overall line" true (contains "overall: estimated")

(* --- Capabilities (paper §2.1) --------------------------------------------------------------- *)

let test_capabilities_scan_only_source () =
  (* the web source declares [capabilities scan;]: selections on Listing must
     be executed by the mediator, above the submit *)
  let med, wrappers = fed () in
  Alcotest.(check bool) "web cannot select" false
    (Disco_catalog.Catalog.capable (Mediator.catalog med) ~source:"web" "select");
  Alcotest.(check bool) "relstore can select" true
    (Disco_catalog.Catalog.capable (Mediator.catalog med) ~source:"relstore" "select");
  let q = "select l.id from Listing l where l.rating = 5" in
  let plan, _ = Mediator.plan_query med q in
  (* no select below the submit *)
  let rec select_below_submit inside = function
    | Plan.Submit (_, sub) -> select_below_submit true sub
    | Plan.Select _ when inside -> true
    | p -> List.exists (select_below_submit inside) (Plan.children p)
  in
  Alcotest.(check bool) "select stays at the mediator" false
    (select_below_submit false plan);
  (* the answer is still correct *)
  let a = Mediator.run_query med q in
  let expected =
    List.filter
      (fun t -> Pred.eval (Tuple.get t) (Pred.Cmp ("l.rating", Pred.Eq, Constant.Int 5)))
      (rows_of wrappers "web" "Listing" "l")
  in
  Alcotest.(check (list string)) "rows match naive" (ids expected "l.id")
    (ids a.Mediator.rows "l.id")

let test_capabilities_join () =
  (* a source without the join capability never hosts a wrapper-side join *)
  let med, _ = fed () in
  let q =
    "select e.id from Employee e, Department d where e.dept_id = d.id and e.age < 25"
  in
  let r = Mediator.resolve med (Disco_sql.Sql.parse q) in
  Alcotest.(check bool) "relstore can join" true (r.Mediator.spec.Optimizer.can_join "relstore");
  let wrapper_side_joins =
    List.filter
      (fun p ->
        Plan.fold
          (fun acc n ->
            acc
            ||
            match n with
            | Plan.Submit (_, sub) ->
              Plan.fold
                (fun acc n -> acc || match n with Plan.Join _ -> true | _ -> false)
                false sub
            | _ -> false)
          false p)
      (Optimizer.enumerate r.Mediator.spec)
  in
  Alcotest.(check bool) "wrapper-side joins exist for capable sources" true
    (wrapper_side_joins <> []);
  (* now deny the capability and re-enumerate *)
  Disco_catalog.Catalog.set_capabilities (Mediator.catalog med) ~source:"relstore"
    [ "scan"; "select"; "project" ];
  let r2 = Mediator.resolve med (Disco_sql.Sql.parse q) in
  let wrapper_side_joins2 =
    List.filter
      (fun p ->
        Plan.fold
          (fun acc n ->
            acc
            ||
            match n with
            | Plan.Submit (_, sub) ->
              Plan.fold
                (fun acc n -> acc || match n with Plan.Join _ -> true | _ -> false)
                false sub
            | _ -> false)
          false p)
      (Optimizer.enumerate r2.Mediator.spec)
  in
  Alcotest.(check (list string)) "no wrapper-side joins without the capability" []
    (List.map Plan.to_string wrapper_side_joins2)

(* --- ADT operations (paper §7) -------------------------------------------------------------- *)

let adt_query =
  (* a wider Project filter than the bench uses: the small test federation
     needs it to produce a non-empty answer *)
  "select d.doc_id from Project p, Document d \
   where p.cost < 20000 and d.project_id = p.id and lang_match(d.lang, \"en\")"

let test_adt_push_and_defer_agree () =
  (* both placements of the expensive predicate produce the same answer *)
  let med, _ = fed () in
  let q = Disco_sql.Sql.parse adt_query in
  let r = Mediator.resolve med q in
  let vs = Mediator.variants r in
  Alcotest.(check int) "two variants" 2 (List.length vs);
  let results =
    List.map
      (fun v ->
        let plan = Mediator.plan_of_variant med v in
        let physical = Mediator.to_physical med plan in
        let rows, _ = Disco_exec.Run.measure (Mediator.mediator_run_env med) physical in
        List.sort compare
          (List.map (fun t -> Constant.to_string (Tuple.get t "d.doc_id")) rows))
      vs
  in
  (match results with
   | [ a; b ] ->
     Alcotest.(check (list string)) "same rows" a b;
     Alcotest.(check bool) "non-trivial result" true (List.length a > 0)
   | _ -> Alcotest.fail "expected two variants")

let test_adt_defer_chosen_with_costs () =
  (* with the exported AdtCost, the optimizer defers past the reducing join *)
  let med, _ = fed () in
  let plan, _ = Mediator.plan_query med adt_query in
  let rec pushed_inside = function
    | Plan.Submit (_, sub) ->
      Plan.fold
        (fun acc n ->
          acc || match n with Plan.Select (_, p) -> Pred.has_apply p | _ -> false)
        false sub
    | p -> List.exists pushed_inside (Plan.children p)
  in
  Alcotest.(check bool) "not pushed into a wrapper" false (pushed_inside plan);
  (* the deferred predicate still filters: every surviving document is "en"
     (checked against the base data) *)
  let a = Mediator.run_query med adt_query in
  let _, wrappers = fed () in
  let docs = rows_of wrappers "files" "Document" "d" in
  List.iter
    (fun t ->
      let id = Tuple.get t "d.doc_id" in
      let doc = List.find (fun d -> Constant.equal (Tuple.get d "d.doc_id") id) docs in
      Alcotest.(check bool) "lang is en" true
        (Constant.equal (Tuple.get doc "d.lang") (Constant.String "en")))
    a.Mediator.rows;
  Alcotest.(check bool) "answer non-empty" true (a.Mediator.rows <> [])

(* --- Answer consistency -------------------------------------------------------------------- *)

let test_measured_vector_consistent () =
  let med, _ = fed () in
  let a = Mediator.run_query med "select e.id from Employee e where e.salary > 20000" in
  Alcotest.(check (float 0.)) "count = rows"
    (float_of_int (List.length a.Mediator.rows))
    a.Mediator.measured.Run.count;
  Alcotest.(check bool) "total >= first" true
    (a.Mediator.measured.Run.total_time >= a.Mediator.measured.Run.time_first)

let () =
  Alcotest.run "mediator"
    [ ( "end-to-end",
        [ Alcotest.test_case "single-source select" `Quick test_single_source_select;
          Alcotest.test_case "cross-source join" `Quick test_cross_source_join;
          Alcotest.test_case "three-source join" `Quick test_three_source_join;
          Alcotest.test_case "aggregate/group/order/limit" `Quick test_aggregate_group_order;
          Alcotest.test_case "distinct" `Quick test_distinct_dedup;
          Alcotest.test_case "star and order" `Quick test_star_and_order;
          Alcotest.test_case "resolution errors" `Quick test_resolution_errors;
          Alcotest.test_case "bare attribute resolution" `Quick test_bare_attribute_resolution;
          Alcotest.test_case "explain" `Quick test_explain_mentions_scopes;
          Alcotest.test_case "measured vector" `Quick test_measured_vector_consistent;
          Alcotest.test_case "analyze" `Quick test_analyze ] );
      ( "optimizer",
        [ Alcotest.test_case "enumerate counts" `Quick test_enumerate_counts;
          Alcotest.test_case "choose picks min" `Quick test_choose_picks_min;
          Alcotest.test_case "dp close to exhaustive" `Quick test_dp_matches_exhaustive;
          Alcotest.test_case "pruning reduces work" `Quick test_pruning_reduces_work;
          Alcotest.test_case "first-tuple objective" `Quick test_first_tuple_objective;
          Alcotest.test_case "disconnected join rejected" `Quick test_disconnected_join_rejected ] );
      ( "history",
        [ Alcotest.test_case "exact records repeat" `Quick test_history_improves_repeat_estimates;
          Alcotest.test_case "adjust converges" `Quick test_history_adjust_converges ] );
      ( "capabilities",
        [ Alcotest.test_case "scan-only source" `Quick test_capabilities_scan_only_source;
          Alcotest.test_case "join capability" `Quick test_capabilities_join ] );
      ( "adt",
        [ Alcotest.test_case "push and defer agree" `Quick test_adt_push_and_defer_agree;
          Alcotest.test_case "defer chosen with costs" `Quick test_adt_defer_chosen_with_costs ] ) ]
