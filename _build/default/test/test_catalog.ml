(* Tests for lib/catalog: schemas, statistics, catalog registration. *)

open Disco_common
open Disco_catalog

let employee =
  Schema.collection "Employee"
    [ ("id", Schema.Tint); ("salary", Schema.Tint); ("name", Schema.Tstring) ]

(* --- Schema ---------------------------------------------------------------- *)

let test_schema_lookup () =
  Alcotest.(check (list string)) "attribute names" [ "id"; "salary"; "name" ]
    (Schema.attribute_names employee);
  Alcotest.(check bool) "has salary" true (Schema.has_attribute employee "salary");
  Alcotest.(check bool) "no age" false (Schema.has_attribute employee "age");
  Alcotest.(check (option int)) "index of name" (Some 2) (Schema.attr_index employee "name");
  Alcotest.(check (option int)) "index of missing" None (Schema.attr_index employee "xyz")

(* --- Stats ------------------------------------------------------------------ *)

let test_stats_of_values () =
  let vals = [ Constant.Int 5; Constant.Int 1; Constant.Int 5; Constant.Int 9 ] in
  let st = Stats.attribute_of_values ~indexed:true vals in
  Alcotest.(check int) "distinct" 3 st.Stats.count_distinct;
  Alcotest.(check bool) "min" true (Constant.equal st.Stats.min (Constant.Int 1));
  Alcotest.(check bool) "max" true (Constant.equal st.Stats.max (Constant.Int 9));
  Alcotest.(check bool) "indexed" true st.Stats.indexed

let test_stats_of_empty () =
  let st = Stats.attribute_of_values [] in
  Alcotest.(check int) "default distinct" Stats.default_attribute.Stats.count_distinct
    st.Stats.count_distinct

let test_stats_of_strings () =
  let vals = [ Constant.String "Valduriez"; Constant.String "Adiba"; Constant.String "Naacke" ] in
  let st = Stats.attribute_of_values vals in
  Alcotest.(check bool) "min Adiba" true (Constant.equal st.Stats.min (Constant.String "Adiba"));
  Alcotest.(check bool) "max Valduriez" true
    (Constant.equal st.Stats.max (Constant.String "Valduriez"));
  Alcotest.(check int) "distinct" 3 st.Stats.count_distinct

(* --- Catalog ------------------------------------------------------------------ *)

let sample_catalog () =
  let c = Catalog.create () in
  Catalog.register_collection c ~source:"s1" ~schema:employee
    ~extent:(Stats.extent ~count_objects:10000 ~total_size:1_200_000 ~object_size:120)
    ~attributes:
      [ ( "salary",
          Stats.attribute ~indexed:true ~count_distinct:5000 ~min:(Constant.Int 1000)
            ~max:(Constant.Int 30000) () ) ];
  c

let test_catalog_roundtrip () =
  let c = sample_catalog () in
  let e = Catalog.extent_stats c ~source:"s1" "Employee" in
  Alcotest.(check int) "count" 10000 e.Stats.count_objects;
  Alcotest.(check int) "size" 1_200_000 e.Stats.total_size;
  let a = Catalog.attribute_stats c ~source:"s1" ~collection:"Employee" "salary" in
  Alcotest.(check bool) "indexed" true a.Stats.indexed;
  Alcotest.(check int) "distinct" 5000 a.Stats.count_distinct

let test_catalog_default_attribute () =
  let c = sample_catalog () in
  (* name exists in the schema but exported no statistics: defaults *)
  let a = Catalog.attribute_stats c ~source:"s1" ~collection:"Employee" "name" in
  Alcotest.(check bool) "not indexed" false a.Stats.indexed

let test_catalog_unknown () =
  let c = sample_catalog () in
  Alcotest.check_raises "unknown source" (Err.Unknown_source "nope") (fun () ->
      ignore (Catalog.extent_stats c ~source:"nope" "Employee"));
  Alcotest.check_raises "unknown collection" (Err.Unknown_collection "s1.Missing")
    (fun () -> ignore (Catalog.extent_stats c ~source:"s1" "Missing"));
  Alcotest.check_raises "unknown attribute"
    (Err.Unknown_attribute { collection = "Employee"; attribute = "age" })
    (fun () -> ignore (Catalog.attribute_stats c ~source:"s1" ~collection:"Employee" "age"))

let test_catalog_reregistration () =
  let c = sample_catalog () in
  (* re-registration replaces statistics (the administrative interface for
     out-of-date statistics, paper §2.1) *)
  Catalog.register_collection c ~source:"s1" ~schema:employee
    ~extent:(Stats.extent ~count_objects:20000 ~total_size:2_400_000 ~object_size:120)
    ~attributes:[];
  let e = Catalog.extent_stats c ~source:"s1" "Employee" in
  Alcotest.(check int) "updated count" 20000 e.Stats.count_objects;
  Alcotest.(check (list string)) "still one collection" [ "Employee" ]
    (Catalog.collections c ~source:"s1")

let test_locate_collection () =
  let c = sample_catalog () in
  Catalog.register_collection c ~source:"s2"
    ~schema:(Schema.collection "Project" [ ("id", Schema.Tint) ])
    ~extent:Stats.default_extent ~attributes:[];
  Alcotest.(check (option string)) "employee in s1" (Some "s1")
    (Catalog.locate_collection c "Employee");
  Alcotest.(check (option string)) "project in s2" (Some "s2")
    (Catalog.locate_collection c "Project");
  Alcotest.(check (option string)) "missing" None (Catalog.locate_collection c "Nope")

let test_mem_collection () =
  let c = sample_catalog () in
  Alcotest.(check bool) "mem" true (Catalog.mem_collection c ~source:"s1" "Employee");
  Alcotest.(check bool) "not mem" false (Catalog.mem_collection c ~source:"s1" "X");
  Alcotest.(check bool) "no source" false (Catalog.mem_collection c ~source:"zz" "Employee")

(* qcheck: attribute_of_values matches a naive specification *)
let prop_stats_spec =
  QCheck2.Test.make ~name:"attribute_of_values = naive spec" ~count:200
    QCheck2.Gen.(list_size (int_range 1 50) (int_range (-20) 20))
    (fun ints ->
      let vals = List.map (fun i -> Constant.Int i) ints in
      let st = Stats.attribute_of_values vals in
      let sorted = List.sort_uniq compare ints in
      st.Stats.count_distinct = List.length sorted
      && Constant.equal st.Stats.min (Constant.Int (List.hd sorted))
      && Constant.equal st.Stats.max (Constant.Int (List.nth sorted (List.length sorted - 1))))

let () =
  Alcotest.run "catalog"
    [ ("schema", [ Alcotest.test_case "lookup" `Quick test_schema_lookup ]);
      ( "stats",
        [ Alcotest.test_case "of values" `Quick test_stats_of_values;
          Alcotest.test_case "of empty" `Quick test_stats_of_empty;
          Alcotest.test_case "of strings" `Quick test_stats_of_strings;
          QCheck_alcotest.to_alcotest prop_stats_spec ] );
      ( "catalog",
        [ Alcotest.test_case "roundtrip" `Quick test_catalog_roundtrip;
          Alcotest.test_case "default attribute stats" `Quick test_catalog_default_attribute;
          Alcotest.test_case "unknown entries raise" `Quick test_catalog_unknown;
          Alcotest.test_case "re-registration" `Quick test_catalog_reregistration;
          Alcotest.test_case "locate collection" `Quick test_locate_collection;
          Alcotest.test_case "mem collection" `Quick test_mem_collection ] ) ]
