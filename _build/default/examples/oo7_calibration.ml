(* The paper's §5 experiment, reduced: index-scan response time on the OO7
   AtomicParts collection vs selectivity — simulated measurement, the linear
   calibrated estimate, and the Yao-formula estimate a wrapper can export
   through the cost language (Fig 13).

     dune exec examples/oo7_calibration.exe *)

open Disco_common
open Disco_algebra
open Disco_core
open Disco_exec
open Disco_wrapper
open Disco_oo7

let () =
  (* a 7000-object AtomicParts extent keeps this example fast; run
     `dune exec bench/main.exe -- fig12` for the paper's full 70000 *)
  let config = { Oo7.paper_config with Oo7.atomic_parts = 7_000 } in
  let source = Oo7.make_source ~config ~with_rules:true () in

  (* registry with the wrapper's Yao rules, and one with statistics only *)
  let registry_of src =
    let registry = Registry.create (Disco_catalog.Catalog.create ()) in
    Generic.register registry;
    ignore (Registry.register_source_decl registry (Wrapper.registration_decl src));
    registry
  in
  let reg_yao = registry_of source in
  let reg_cal = registry_of (Wrapper.without_rules source) in

  Fmt.pr "selectivity | measured(s) | calibrated(s) | yao-rule(s)@.";
  Fmt.pr "------------+-------------+---------------+------------@.";
  List.iter
    (fun sel ->
      let k = int_of_float (float_of_int config.Oo7.atomic_parts *. sel) in
      let plan =
        Plan.Select
          ( Plan.Scan { Plan.source = "oo7"; collection = "AtomicPart"; binding = "a" },
            Pred.Cmp ("a.id", Pred.Le, Constant.Int k) )
      in
      Oo7.cold_cache source;
      let _, measured = Wrapper.execute source plan in
      let est registry =
        Estimator.total_time (Estimator.estimate ~source:"oo7" registry plan) /. 1000.
      in
      Fmt.pr "%11.2f | %11.1f | %13.1f | %10.1f@." sel
        (measured.Run.total_time /. 1000.)
        (est reg_cal) (est reg_yao))
    [ 0.01; 0.05; 0.1; 0.2; 0.3; 0.5; 0.7 ];
  Fmt.pr
    "@.The calibrated model is linear in the selectivity; the measured curve@.\
     saturates once every page of the extent has been fetched (Yao '77).@.\
     The wrapper's exported rule (paper Fig 13) captures that shape.@."
