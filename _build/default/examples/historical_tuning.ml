(* The dynamic extensions of paper §4.3.1: the mediator learns from executed
   subqueries, either by caching exact costs as query-scope rules or by
   adjusting a per-source factor shared by all formulas.

     dune exec examples/historical_tuning.exe *)

open Disco_core
open Disco_wrapper
open Disco_mediator

let queries =
  [ "select d.doc_id from Document d where d.bytes > 30000";
    "select d.doc_id from Document d where d.bytes > 60000";
    "select d.doc_id from Document d where d.bytes > 90000" ]

let round med =
  List.map
    (fun q ->
      ignore (Mediator.run_query med q);
      match List.rev (History.records (Mediator.history med)) with
      | r :: _ ->
        let real =
          Option.value ~default:1.
            (List.assoc_opt Disco_costlang.Ast.Total_time r.History.measured)
        in
        100. *. Float.abs (r.History.estimated_total -. real) /. real
      | [] -> 0.)
    queries

let demo label mode =
  Fmt.pr "@.--- %s@." label;
  let med = Mediator.create ~history_mode:mode () in
  List.iter (Mediator.register med) (Demo.make ~sizes:Demo.small_sizes ());
  for i = 1 to 3 do
    let errs = round med in
    Fmt.pr "round %d: estimation errors %s@." i
      (String.concat ", " (List.map (Fmt.str "%.1f%%") errs))
  done;
  Fmt.pr "adjustment factor for 'files': %.2f@."
    (Registry.adjust (Mediator.registry med) ~source:"files")

let () =
  (* the flat-file source exports no cost rules, so the generic model
     misestimates it badly — until history kicks in *)
  demo "no history: the error persists" History.Off;
  demo "exact caching: repeated subqueries become free to estimate" History.Exact;
  demo "parameter adjustment: one factor fixes the whole source"
    (History.Adjust { smoothing = 0.6 });
  print_newline ();
  print_endline
    "Exact caching only helps repeats of the same subquery; the adjustment";
  print_endline
    "factor also transfers to subqueries never executed before (paper §4.3.1)."
