examples/historical_tuning.ml: Demo Disco_core Disco_costlang Disco_mediator Disco_wrapper Float Fmt History List Mediator Option Registry String
