examples/federation.mli:
