examples/federation.ml: Demo Disco_algebra Disco_core Disco_costlang Disco_exec Disco_mediator Disco_wrapper Estimator Fmt List Mediator Scope String Wrapper
