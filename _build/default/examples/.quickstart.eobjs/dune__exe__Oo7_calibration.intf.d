examples/oo7_calibration.mli:
