examples/historical_tuning.mli:
