examples/extensions.mli:
