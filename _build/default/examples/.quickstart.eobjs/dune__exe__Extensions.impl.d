examples/extensions.ml: Ast Demo Disco_algebra Disco_core Disco_costlang Disco_mediator Disco_wrapper Estimator Fmt List Mediator Optimizer Option Registry String Wrapper
