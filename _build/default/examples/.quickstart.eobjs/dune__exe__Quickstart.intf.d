examples/quickstart.mli:
