examples/quickstart.ml: Demo Disco_algebra Disco_exec Disco_mediator Disco_wrapper Fmt List Mediator Run Tuple
