(* The features beyond the paper's evaluation, in one walkthrough:

   - wrapper capabilities (§2.1): the web source is fetch-only; the mediator
     compensates above the submit;
   - ADT operation costs (§7): an expensive predicate is pushed or deferred
     depending on whether its cost was exported;
   - interface inheritance (§3.1 "planned"): sub-interfaces inherit
     attributes and cost rules, with overriding;
   - first-tuple optimization: minimizing the paper's TimeFirst.

     dune exec examples/extensions.exe *)

open Disco_core
open Disco_costlang
open Disco_wrapper
open Disco_mediator

let hr title =
  Fmt.pr "@.%s@.--- %s@.%s@." (String.make 70 '-') title (String.make 70 '-')

let () =
  let med = Mediator.create () in
  List.iter (Mediator.register med) (Demo.make ~sizes:Demo.small_sizes ());

  (* 1. Capabilities: the selection on the fetch-only web source stays at
     the mediator, above the submit. *)
  hr "capabilities: scan-only web source";
  Fmt.pr "%s"
    (Mediator.explain med "select l.id from Listing l where l.rating = 5");

  (* 2. ADT costs: the same query plans differently depending on whether the
     operation's cost is known. *)
  hr "ADT operation costs: push vs defer";
  let q =
    "select d.doc_id from Project p, Document d \
     where p.cost < 20000 and d.project_id = p.id and lang_match(d.lang, \"en\")"
  in
  let plan, _ = Mediator.plan_query med q in
  Fmt.pr "with AdtCost_lang_match exported (200 ms/call):@.%a"
    Disco_algebra.Plan.pp_indented plan;
  let med_blind = Mediator.create () in
  List.iter
    (Mediator.register med_blind)
    (List.map Wrapper.without_rules (Demo.make ~sizes:Demo.small_sizes ()));
  let plan_blind, _ = Mediator.plan_query med_blind q in
  Fmt.pr "without it (priced like an ordinary comparison):@.%a"
    Disco_algebra.Plan.pp_indented plan_blind;

  (* 3. Interface inheritance: register a sub-interface with an overriding
     rule directly through the cost language. *)
  hr "interface inheritance with rule overriding";
  let registry = Mediator.registry med in
  ignore
    (Registry.register_text registry ~what:"hr extension"
       {| source hr {
            interface Person {
              attribute long id;
              cardinality extent(1000, 100000, 100);
              cardinality attribute(id, true, 1000, 1, 1000);
              rule scan(Person) { TotalTime = 111; }
            }
            interface Veteran : Person {
              attribute long years;
              rule scan(Veteran) { TotalTime = 222; }
            }
          } |});
  let show coll =
    let plan =
      Disco_algebra.Plan.Scan { Disco_algebra.Plan.source = "hr"; collection = coll; binding = "x" }
    in
    let ann = Estimator.estimate ~source:"hr" registry plan in
    Fmt.pr "scan(%s): TotalTime = %.0f@." coll (Estimator.total_time ann)
  in
  show "Person";
  show "Veteran";
  Fmt.pr "(Veteran inherits Person's attributes; its own rule overrides)@.";

  (* 4. First-tuple optimization: the two objectives can choose different
     plans for the same query. *)
  hr "optimization objective: TotalTime vs TimeFirst";
  let q =
    "select t.id, p.kind from Task t, Project p \
     where t.project_id = p.id and t.hours > 380"
  in
  let report label objective =
    let plan, cost = Mediator.plan_query ~objective med q in
    let ann = Estimator.estimate registry plan in
    Fmt.pr "%s objective: cost %.0f  (TimeFirst %.0f, TotalTime %.0f)@." label cost
      (Option.get (Estimator.var ann Ast.Time_first))
      (Option.get (Estimator.var ann Ast.Total_time))
  in
  report "total-time " Optimizer.Total_time;
  report "first-tuple" Optimizer.First_tuple
