(* Quickstart: build a mediator over four heterogeneous sources, register the
   wrappers (schemas + statistics + cost rules), and run declarative queries.

     dune exec examples/quickstart.exe *)

open Disco_exec
open Disco_wrapper
open Disco_mediator

let () =
  (* 1. Create the mediator: its generic cost model is installed up front. *)
  let med = Mediator.create () in

  (* 2. Registration phase: each wrapper uploads its schema, its statistics
     (computed from the actual data) and its cost rules. *)
  let wrappers = Demo.make ~sizes:Demo.small_sizes () in
  List.iter (Mediator.register med) wrappers;

  (* 3. Query phase: declarative queries over the federation. *)
  let show title query =
    Fmt.pr "--- %s@.%s@." title query;
    let answer = Mediator.run_query med query in
    Fmt.pr "plan:@.%a" Disco_algebra.Plan.pp_indented answer.Mediator.plan;
    Fmt.pr "measured: %a@." Run.pp_vector answer.Mediator.measured;
    let n = List.length answer.Mediator.rows in
    List.iteri
      (fun i row -> if i < 5 then Fmt.pr "  %a@." Tuple.pp_with_names row)
      answer.Mediator.rows;
    if n > 5 then Fmt.pr "  ... (%d rows)@." n else Fmt.pr "  (%d rows)@." n
  in

  show "single-source selection (pushed to the wrapper)"
    "select e.name, e.salary from Employee e where e.salary > 25000";

  show "cross-source join (relational x object store)"
    "select e.name, p.kind from Employee e, Project p \
     where e.dept_id = p.dept_id and e.salary > 28000 and p.cost < 6000";

  show "aggregation over a wrapper result"
    "select d.city, count(*) as n, avg(e.salary) as avg_salary \
     from Employee e, Department d where e.dept_id = d.id \
     group by d.city order by d.city";

  (* 4. EXPLAIN shows which scope of the blended cost model priced each
     node: wrapper rules where exported, the generic model elsewhere. *)
  Fmt.pr "--- explain@.%s@."
    (Mediator.explain med
       "select p.id from Project p where p.id < 50")
