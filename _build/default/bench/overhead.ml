(* Table T3 — cost-estimation overhead (§3.3.2: "the cost rules overriding
   mechanism should not induce significant workload on the mediator site").
   We register a growing number of query-specific (predicate-scope) rules
   and measure the wall-clock time to estimate a fixed three-relation plan.
   Reported in microseconds per estimation. *)

open Disco_core
open Disco_wrapper
open Disco_mediator

let rule_counts = [ 0; 10; 100; 500; 1000 ]

let fixed_query =
  "select e.id from Employee e, Department d, Project p \
   where e.dept_id = d.id and d.id = p.dept_id and e.salary > 20000"

let make_registry extra_rules =
  let med = Mediator.create () in
  List.iter (Mediator.register med) (Demo.make ());
  let registry = Mediator.registry med in
  for i = 1 to extra_rules do
    let rule =
      Disco_costlang.Parser.parse_rule ~what:"extra"
        (Fmt.str "rule select(Employee, salary = %d) { TotalTime = %d; }" i i)
    in
    ignore (Registry.add_rule registry ~source:"relstore" rule)
  done;
  (med, registry)

(* Median wall-clock microseconds of [f] over [n] runs. *)
let time_us ?(n = 200) f =
  let samples =
    List.init n (fun _ ->
        let t0 = Unix.gettimeofday () in
        f ();
        (Unix.gettimeofday () -. t0) *. 1e6)
  in
  let sorted = List.sort compare samples in
  List.nth sorted (n / 2)

let print () =
  Util.section
    "T3 — estimation overhead vs registered query-specific rules (us per plan estimate)";
  let rows =
    List.map
      (fun count ->
        let med, registry = make_registry count in
        let plan, _ = Mediator.plan_query med fixed_query in
        let us =
          time_us (fun () -> ignore (Estimator.estimate registry plan))
        in
        [ string_of_int count;
          string_of_int (Registry.rule_count registry ~source:"relstore");
          Util.f1 us ])
      rule_counts
  in
  Util.table [ "extra predicate rules"; "total relstore rules"; "estimate (us)" ] rows
