bench/prune.ml: Demo Disco_mediator Disco_sql Disco_wrapper Float Fmt List Mediator Optimizer Util
