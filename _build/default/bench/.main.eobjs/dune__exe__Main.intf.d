bench/main.mli:
