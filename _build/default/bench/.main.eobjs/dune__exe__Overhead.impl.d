bench/overhead.ml: Demo Disco_core Disco_costlang Disco_mediator Disco_wrapper Estimator Fmt List Mediator Registry Unix Util
