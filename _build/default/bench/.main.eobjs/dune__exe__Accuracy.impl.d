bench/accuracy.ml: Constant Costs Demo Disco_algebra Disco_catalog Disco_common Disco_core Disco_exec Disco_storage Disco_wrapper Estimator Fmt Generic List Plan Pred Registry Run Util Wrapper
