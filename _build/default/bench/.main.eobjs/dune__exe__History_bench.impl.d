bench/history_bench.ml: Demo Disco_core Disco_costlang Disco_mediator Disco_wrapper Fmt History List Mediator Option Util
