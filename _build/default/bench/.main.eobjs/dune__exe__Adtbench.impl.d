bench/adtbench.ml: Buffer Demo Disco_algebra Disco_exec Disco_mediator Disco_storage Disco_wrapper Fmt List Mediator Run Util Wrapper
