bench/oo7queries.ml: Disco_catalog Disco_core Disco_exec Disco_oo7 Disco_wrapper Estimator Fmt Generic List Oo7 Registry Run Util Wrapper
