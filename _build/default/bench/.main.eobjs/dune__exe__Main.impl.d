bench/main.ml: Accuracy Adtbench Array Disco_oo7 Fig12 Fmt History_bench List Micro Oo7queries Overhead Planquality Prune Scopes String Sys
