bench/util.ml: Array Float Fmt List String
