bench/fig12.ml: Constant Disco_algebra Disco_catalog Disco_common Disco_core Disco_exec Disco_oo7 Disco_wrapper Estimator Fmt Generic List Oo7 Plan Pred Registry Run Util Wrapper
