bench/planquality.ml: Buffer Demo Disco_exec Disco_mediator Disco_sql Disco_storage Disco_wrapper Float List Mediator Optimizer Run Util Wrapper
