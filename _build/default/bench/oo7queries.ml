(* Table T8 — estimation accuracy over the OO7 query workload (the paper's §5
   uses "queries ... from the 007 benchmark"): measured execution on the
   simulated ObjectStore vs the calibrated generic estimate vs the
   wrapper-rule (Yao) estimate, for each query. This widens Figure 12 from a
   single operator sweep to the whole workload. *)

open Disco_core
open Disco_exec
open Disco_wrapper
open Disco_oo7

let registry_for source =
  let registry = Registry.create (Disco_catalog.Catalog.create ()) in
  Generic.register registry;
  ignore (Registry.register_source_decl registry (Wrapper.registration_decl source));
  registry

let print ?(config = Oo7.paper_config) () =
  Util.section
    "T8 — OO7 query workload: measured vs calibrated vs wrapper-rule estimates (s)";
  let with_rules = Oo7.make_source ~config ~with_rules:true () in
  let reg_yao = registry_for with_rules in
  let reg_cal = registry_for (Wrapper.without_rules with_rules) in
  let rows, errs =
    List.fold_left
      (fun (rows, errs) (label, plan) ->
        Oo7.cold_cache with_rules;
        let _, v = Wrapper.execute with_rules plan in
        let measured = v.Run.total_time in
        let est registry =
          Estimator.total_time (Estimator.estimate ~source:"oo7" registry plan)
        in
        let cal = est reg_cal and yao = est reg_yao in
        let e_cal = Util.rel_err ~est:cal ~real:measured in
        let e_yao = Util.rel_err ~est:yao ~real:measured in
        ( rows
          @ [ [ label;
                Util.f1 (measured /. 1000.);
                Util.f1 (cal /. 1000.);
                Util.f1 (yao /. 1000.);
                Util.pct e_cal;
                Util.pct e_yao ] ],
          (e_cal, e_yao) :: errs ))
      ([], [])
      (Oo7.queries config)
  in
  Util.table
    [ "query"; "measured"; "calibrated"; "wrapper rules"; "cal.err"; "rule.err" ]
    rows;
  Fmt.pr "  mean error: calibrated %s, wrapper rules %s@."
    (Util.pct (Util.mean (List.map fst errs)))
    (Util.pct (Util.mean (List.map snd errs)))
