(* Table T1 — per-operator estimation accuracy across the heterogeneous
   federation, generic-only model vs blended model (generic + wrapper rules).
   For each operation we execute it on the simulated engine (measured) and
   compare both estimates. *)

open Disco_common
open Disco_algebra
open Disco_core
open Disco_exec
open Disco_wrapper

type op = {
  label : string;
  source : string;
  plan : Plan.t;
  submit : bool;  (* measure/estimate including the communication step *)
}

let scan source collection binding =
  Plan.Scan { Plan.source; collection; binding }

let workload : op list =
  [ { label = "relstore: scan Employee";
      source = "relstore";
      plan = scan "relstore" "Employee" "e";
      submit = false };
    { label = "relstore: select salary = c (indexed)";
      source = "relstore";
      plan =
        Plan.Select
          (scan "relstore" "Employee" "e", Pred.Cmp ("e.salary", Pred.Eq, Constant.Int 15000));
      submit = false };
    { label = "relstore: select age < 30 (no index)";
      source = "relstore";
      plan =
        Plan.Select
          (scan "relstore" "Employee" "e", Pred.Cmp ("e.age", Pred.Lt, Constant.Int 30));
      submit = false };
    { label = "objstore: scan Project";
      source = "objstore";
      plan = scan "objstore" "Project" "p";
      submit = false };
    { label = "objstore: select id <= 400 (index, Yao)";
      source = "objstore";
      plan =
        Plan.Select
          (scan "objstore" "Project" "p", Pred.Cmp ("p.id", Pred.Le, Constant.Int 400));
      submit = false };
    { label = "objstore: join Task x Project (index join)";
      source = "objstore";
      plan =
        Plan.Join
          ( Plan.Select
              (scan "objstore" "Task" "t", Pred.Cmp ("t.hours", Pred.Gt, Constant.Int 380)),
            scan "objstore" "Project" "p",
            Pred.Attr_cmp ("t.project_id", Pred.Eq, "p.id") );
      submit = false };
    { label = "files: scan Document (stats only)";
      source = "files";
      plan = scan "files" "Document" "d";
      submit = false };
    { label = "files: select bytes > 90000";
      source = "files";
      plan =
        Plan.Select
          (scan "files" "Document" "d", Pred.Cmp ("d.bytes", Pred.Gt, Constant.Int 90000));
      submit = false };
    { label = "web: ship Listing over the WAN";
      source = "web";
      plan = scan "web" "Listing" "l";
      submit = true } ]

let registry_of wrappers =
  let catalog = Disco_catalog.Catalog.create () in
  let registry = Registry.create catalog in
  Generic.register registry;
  List.iter
    (fun w -> ignore (Registry.register_source_decl registry (Wrapper.registration_decl w)))
    wrappers;
  registry

let measure_op (wrappers : Wrapper.t list) (op : op) =
  let w = List.find (fun w -> w.Wrapper.name = op.source) wrappers in
  Disco_storage.Buffer.clear w.Wrapper.buffer;
  let _, v = Wrapper.execute w op.plan in
  if op.submit then
    let net = w.Wrapper.network in
    v.Run.total_time +. net.Costs.msg_ms +. (net.Costs.byte_ms *. v.Run.size)
  else v.Run.total_time

let estimate_op registry (op : op) =
  if op.submit then
    Estimator.total_time (Estimator.estimate registry (Plan.Submit (op.source, op.plan)))
  else Estimator.total_time (Estimator.estimate ~source:op.source registry op.plan)

let print () =
  Util.section
    "T1 — estimation accuracy per operator: generic-only vs blended model (ms)";
  let wrappers = Demo.make () in
  let blended = registry_of wrappers in
  let generic = registry_of (List.map Wrapper.without_rules wrappers) in
  let rows, errs =
    List.fold_left
      (fun (rows, errs) op ->
        let real = measure_op wrappers op in
        let eg = estimate_op generic op in
        let eb = estimate_op blended op in
        let err_g = Util.rel_err ~est:eg ~real and err_b = Util.rel_err ~est:eb ~real in
        ( rows
          @ [ [ op.label; Util.f1 real; Util.f1 eg; Util.f1 eb; Util.pct err_g;
                Util.pct err_b ] ],
          (err_g, err_b) :: errs ))
      ([], []) workload
  in
  Util.table
    [ "operation"; "measured"; "est generic"; "est blended"; "err gen"; "err blend" ]
    rows;
  Fmt.pr "  mean error: generic %s, blended %s@."
    (Util.pct (Util.mean (List.map fst errs)))
    (Util.pct (Util.mean (List.map snd errs)))
