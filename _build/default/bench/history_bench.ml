(* Table T4 — the dynamic extensions of §4.3.1: estimation error of wrapper
   subqueries over a repeated workload, with
   - no history,
   - exact query-scope caching (HERMES-style historical costs),
   - parameter adjustment (per-source smoothing factor).

   The workload repeatedly queries the statistics-only [files] source (whose
   generic estimates are off) with constants drawn from a small pool, so
   both repetition (exact hits) and similarity (adjustment) matter. *)

open Disco_core
open Disco_wrapper
open Disco_mediator

(* Rounds of the workload: each round runs the same five selections. *)
let constants = [ 20_000; 40_000; 60_000; 80_000; 95_000 ]

let query c =
  Fmt.str "select d.doc_id from Document d where d.bytes > %d" c

let run_mode mode rounds =
  let med = Mediator.create ~history_mode:mode () in
  List.iter (Mediator.register med) (Demo.make ());
  let errors_per_round = ref [] in
  for _ = 1 to rounds do
    let errs =
      List.map
        (fun c ->
          ignore (Mediator.run_query med (query c));
          (* the history record holds both the estimate made during this run
             and the measured cost *)
          match History.records (Mediator.history med) with
          | [] -> 0.
          | _ ->
            let r = List.hd (List.rev (History.records (Mediator.history med))) in
            let real =
              Option.value ~default:1.
                (List.assoc_opt Disco_costlang.Ast.Total_time r.History.measured)
            in
            Util.rel_err ~est:r.History.estimated_total ~real)
        constants
    in
    errors_per_round := Util.mean errs :: !errors_per_round
  done;
  List.rev !errors_per_round

let print () =
  Util.section
    "T4 — historical costs (§4.3.1): mean estimation error per round of a repeated workload";
  let rounds = 4 in
  let off = run_mode History.Off rounds in
  let exact = run_mode History.Exact rounds in
  let adjust = run_mode (History.Adjust { smoothing = 0.6 }) rounds in
  let rows =
    List.mapi
      (fun i _ ->
        [ Fmt.str "round %d" (i + 1);
          Util.pct (List.nth off i);
          Util.pct (List.nth exact i);
          Util.pct (List.nth adjust i) ])
      off
  in
  Util.table [ "workload round"; "no history"; "exact caching"; "adjustment" ] rows;
  Fmt.pr
    "  (exact caching nails repeated subqueries from round 2; adjustment also\n\
    \   transfers across different constants through the shared factor)@."
