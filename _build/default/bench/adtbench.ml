(* Table T7 — costs of abstract-data-type operations (paper §7).

   The paper's conclusion motivates exporting ADT operation costs with the
   example of "avoid[ing] processing a large number of images by first
   selecting a few images from other data source". Here the files source
   implements an expensive [lang_match] operation (200 ms/call); the query
   joins Documents with a very selective Project filter. The optimizer can
   either push the ADT predicate to the source (evaluating it on every
   document) or defer it past the reducing join (evaluating it on the few
   survivors) — but only a cost model that knows the operation's price makes
   the right call. *)

open Disco_storage
open Disco_exec
open Disco_wrapper
open Disco_mediator

let query =
  "select d.doc_id from Project p, Document d \
   where p.cost < 5300 and d.project_id = p.id and lang_match(d.lang, \"en\")"

let make_federation ~with_rules =
  let wrappers = Demo.make () in
  let wrappers = if with_rules then wrappers else List.map Wrapper.without_rules wrappers in
  let med = Mediator.create () in
  List.iter (Mediator.register med) wrappers;
  (med, wrappers)

let describe plan =
  (* where did the ADT predicate land? *)
  let rec in_submit inside = function
    | Disco_algebra.Plan.Submit (_, sub) -> in_submit true sub
    | p ->
      let here =
        match p with
        | Disco_algebra.Plan.Select (_, pred) -> Disco_algebra.Pred.has_apply pred
        | _ -> false
      in
      if here then Some inside
      else
        List.fold_left
          (fun acc c -> match acc with Some _ -> acc | None -> in_submit inside c)
          None
          (Disco_algebra.Plan.children p)
  in
  match in_submit false plan with
  | Some true -> "pushed to wrapper"
  | Some false -> "deferred to mediator"
  | None -> "absent"

let run ~with_rules =
  let med, wrappers = make_federation ~with_rules in
  let plan, est = Mediator.plan_query med query in
  List.iter (fun w -> Buffer.clear w.Wrapper.buffer) wrappers;
  let physical = Mediator.to_physical med plan in
  let _, v = Run.measure (Mediator.mediator_run_env med) physical in
  (describe plan, est, v.Run.total_time)

let print () =
  Util.section
    "T7 — ADT operation costs (§7): placement of an expensive predicate (ms)";
  let p_g, est_g, t_g = run ~with_rules:false in
  let p_b, est_b, t_b = run ~with_rules:true in
  Util.table
    [ "cost model"; "ADT predicate placement"; "estimated"; "measured" ]
    [ [ "generic (no ADT costs)"; p_g; Util.f1 est_g; Util.f1 t_g ];
      [ "blended (AdtCost exported)"; p_b; Util.f1 est_b; Util.f1 t_b ] ];
  Fmt.pr "  slowdown of the generic choice: %.2fx@." (t_g /. t_b);
  Fmt.pr
    "  (the ADT implementation is shipped to the mediator like cost rules are,\n\
    \   so deferring it past the reducing join is executable; only the exported\n\
    \   AdtCost makes the optimizer choose to)@."
