(* Table T5 — the early-abort heuristic of §4.3.2: while enumerating complete
   plans, estimation of a plan stops as soon as a node's TotalTime exceeds
   the best complete plan so far. We report the work saved (formula
   evaluations and aborted plans) at several query sizes. *)

open Disco_wrapper
open Disco_mediator

let queries =
  [ ( "2 relations",
      "select e.id from Employee e, Department d where e.dept_id = d.id" );
    ( "3 relations",
      "select e.id from Employee e, Department d, Project p \
       where e.dept_id = d.id and d.id = p.dept_id" );
    ( "4 relations",
      "select e.id from Employee e, Department d, Project p, Task t \
       where e.dept_id = d.id and d.id = p.dept_id and p.id = t.project_id" );
    ( "5 relations",
      "select e.id from Employee e, Department d, Project p, Task t, Document doc \
       where e.dept_id = d.id and d.id = p.dept_id and p.id = t.project_id \
       and doc.project_id = p.id" ) ]

let print () =
  Util.section
    "T5 — branch-and-bound plan estimation (§4.3.2): work with and without early abort";
  let med = Mediator.create () in
  List.iter (Mediator.register med) (Demo.make ());
  let registry = Mediator.registry med in
  let rows =
    List.map
      (fun (label, sql) ->
        let q = Disco_sql.Sql.parse sql in
        let resolved = Mediator.resolve med q in
        let plans = Optimizer.enumerate resolved.Mediator.spec in
        let s_on = Optimizer.new_stats () and s_off = Optimizer.new_stats () in
        let b_on = Optimizer.choose ~prune:true registry ~stats:s_on plans in
        let b_off = Optimizer.choose ~prune:false registry ~stats:s_off plans in
        assert (
          match b_on, b_off with
          | Some (_, c1), Some (_, c2) -> Float.abs (c1 -. c2) < 1e-6
          | _ -> false);
        [ label;
          string_of_int (List.length plans);
          string_of_int s_on.Optimizer.plans_aborted;
          string_of_int s_off.Optimizer.formula_evals;
          string_of_int s_on.Optimizer.formula_evals;
          Util.pct
            (1.
            -. (float_of_int s_on.Optimizer.formula_evals
               /. float_of_int (max s_off.Optimizer.formula_evals 1))) ])
      queries
  in
  Util.table
    [ "query"; "plans"; "aborted"; "evals (full)"; "evals (pruned)"; "saved" ]
    rows;
  Fmt.pr "  (identical best plan found in both modes; the assertion checks it)@."
