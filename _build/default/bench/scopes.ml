(* Table T6 — scope-hierarchy ablation: estimation accuracy on an OO7
   workload as rule scopes are enabled one by one (Fig 10 of the paper):

     default only -> +wrapper -> +collection -> +predicate -> +query

   Each level adds the corresponding rules for the OO7 source; the workload
   mixes index selections on AtomicPart (including one "hot" predicate that
   the predicate- and query-scope levels capture exactly). *)

open Disco_common
open Disco_algebra
open Disco_core
open Disco_exec
open Disco_wrapper
open Disco_oo7

let config =
  { Oo7.paper_config with
    Oo7.atomic_parts = 20_000;
    composite_parts = 5_000;
    connections_per_part = 1 }

let hot_constant = 2_000

let scan = Plan.Scan { Plan.source = "oo7"; collection = "AtomicPart"; binding = "a" }
let scan_cp = Plan.Scan { Plan.source = "oo7"; collection = "CompositePart"; binding = "c" }

let workload =
  [ ("scan AtomicPart", scan);
    ( "select id <= 1000",
      Plan.Select (scan, Pred.Cmp ("a.id", Pred.Le, Constant.Int 1000)) );
    ( "select id <= 8000",
      Plan.Select (scan, Pred.Cmp ("a.id", Pred.Le, Constant.Int 8000)) );
    ( Fmt.str "select id <= %d (hot)" hot_constant,
      Plan.Select (scan, Pred.Cmp ("a.id", Pred.Le, Constant.Int hot_constant)) );
    ( "select buildDate < 200",
      Plan.Select (scan, Pred.Cmp ("a.buildDate", Pred.Lt, Constant.Int 200)) );
    (* CompositePart is clustered on id: range scans touch contiguous pages,
       which neither the calibrated model nor the unclustered Yao rule can
       express (paper §2.3: "clustering is not considered", and §7) *)
    ( "select CompositePart id <= 100 (clustered)",
      Plan.Select (scan_cp, Pred.Cmp ("c.id", Pred.Le, Constant.Int 100)) );
    ( "select CompositePart id <= 500 (clustered)",
      Plan.Select (scan_cp, Pred.Cmp ("c.id", Pred.Le, Constant.Int 500)) ) ]

(* Collection-scope refinement: the implementor knows AtomicPart's exact page
   count and fill, and knows CompositePart is clustered on id. *)
let collection_rules =
  {|
  rule select(AtomicPart, P) {
    CountPage = ceil(AtomicPart.CountObject / 70);
    CountObject = AtomicPart.CountObject * sel(P);
    TimeFirst = if(indexed(P), Startup + 3 * Probe + IO, 1e18);
    TotalTime = if(indexed(P),
                   Startup + 3 * Probe
                   + IO * CountPage * yao(AtomicPart.CountObject, CountPage, CountObject)
                   + Output * CountObject,
                   1e18);
  }

  // clustered: pages touched = ceil(matches / objects-per-page)
  rule select(CompositePart, P) {
    CountObject = CompositePart.CountObject * sel(P);
    TimeFirst = if(indexed(P), Startup + 2 * Probe + IO, 1e18);
    TotalTime = if(indexed(P),
                   Startup + 2 * Probe + IO * ceil(CountObject / 98)
                   + Output * CountObject,
                   1e18);
  }
  |}

let predicate_rule measured =
  Fmt.str
    {|
    rule select(AtomicPart, id <= %d) {
      TotalTime = %.3f;
    }
    |}
    hot_constant measured

let print () =
  Util.section "T6 — scope-hierarchy ablation: mean estimation error by enabled scope";
  let source = Oo7.make_source ~config ~with_rules:true () in
  let measured =
    List.map
      (fun (label, plan) ->
        Oo7.cold_cache source;
        let _, v = Wrapper.execute source plan in
        (label, plan, v.Run.total_time))
      workload
  in
  let hot_label = Fmt.str "select id <= %d (hot)" hot_constant in
  let hot_measured =
    let _, _, t = List.find (fun (l, _, _) -> l = hot_label) measured in
    t
  in
  let registry_with levels =
    let catalog = Disco_catalog.Catalog.create () in
    let registry = Registry.create catalog in
    Generic.register registry;
    let decl =
      Wrapper.registration_decl
        (if List.mem `Wrapper levels then source else Wrapper.without_rules source)
    in
    ignore (Registry.register_source_decl registry decl);
    if List.mem `Collection levels then
      List.iter
        (fun i -> ignore (Registry.add_rule registry ~source:"oo7" i))
        (List.filter_map
           (function Disco_costlang.Ast.Toplevel_rule r -> Some r | _ -> None)
           (Disco_costlang.Parser.parse_items ~what:"collection rules" collection_rules));
    if List.mem `Predicate levels then
      List.iter
        (fun i -> ignore (Registry.add_rule registry ~source:"oo7" i))
        (List.filter_map
           (function Disco_costlang.Ast.Toplevel_rule r -> Some r | _ -> None)
           (Disco_costlang.Parser.parse_items ~what:"predicate rule"
              (predicate_rule hot_measured)));
    if List.mem `Query levels then
      List.iter
        (fun (_, plan, t) ->
          ignore
            (Registry.add_query_rule registry ~source:"oo7" plan
               [ (Disco_costlang.Ast.Total_time, t) ]))
        measured;
    registry
  in
  let levels_list =
    [ ("default only", []);
      ("+ wrapper", [ `Wrapper ]);
      ("+ collection", [ `Wrapper; `Collection ]);
      ("+ predicate", [ `Wrapper; `Collection; `Predicate ]);
      ("+ query", [ `Wrapper; `Collection; `Predicate; `Query ]) ]
  in
  let rows =
    List.map
      (fun (label, levels) ->
        let registry = registry_with levels in
        let errs =
          List.map
            (fun (_, plan, real) ->
              let est =
                Estimator.total_time (Estimator.estimate ~source:"oo7" registry plan)
              in
              Util.rel_err ~est ~real)
            measured
        in
        let hot_err =
          let _, plan, real = List.find (fun (l, _, _) -> l = hot_label) measured in
          Util.rel_err
            ~est:(Estimator.total_time (Estimator.estimate ~source:"oo7" registry plan))
            ~real
        in
        [ label; Util.pct (Util.mean errs); Util.pct hot_err ])
      levels_list
  in
  Util.table [ "enabled scopes"; "mean error (workload)"; "error (hot predicate)" ] rows
