(* Bechamel micro-benchmarks: one [Test.make] per experiment table, measuring
   the mediator-side computational kernel behind it (the estimation /
   optimization work, not the simulated execution time). Reported as
   nanoseconds per run from an OLS fit. *)

open Bechamel
open Disco_common
open Disco_algebra
open Disco_core
open Disco_wrapper
open Disco_mediator

let setup () =
  let med = Mediator.create () in
  List.iter (Mediator.register med) (Demo.make ~sizes:Demo.small_sizes ());
  med

let oo7_registry () =
  let source =
    Disco_oo7.Oo7.make_source ~config:Disco_oo7.Oo7.small_config ~with_rules:true ()
  in
  let catalog = Disco_catalog.Catalog.create () in
  let registry = Registry.create catalog in
  Generic.register registry;
  ignore (Registry.register_source_decl registry (Wrapper.registration_decl source));
  registry

let tests () =
  let med = setup () in
  let registry = Mediator.registry med in
  let oo7_reg = oo7_registry () in
  let fig12_plan =
    Plan.Select
      ( Plan.Scan { Plan.source = "oo7"; collection = "AtomicPart"; binding = "a" },
        Pred.Cmp ("a.id", Pred.Le, Constant.Int 500) )
  in
  let select_plan, _ =
    Mediator.plan_query med "select e.id from Employee e where e.salary > 20000"
  in
  let join_sql =
    "select e.id from Employee e, Department d, Project p \
     where e.dept_id = d.id and d.id = p.dept_id"
  in
  let join_spec = (Mediator.resolve med (Disco_sql.Sql.parse join_sql)).Mediator.spec in
  let join_plans = Optimizer.enumerate join_spec in
  let parse_text =
    "rule select(C, A = V) { CountObject = C.CountObject * selectivity(A, V); \
     TotalTime = C.TotalTime + C.CountObject * 2; }"
  in
  [ Test.make ~name:"fig12/yao-rule-estimate"
      (Staged.stage (fun () ->
           ignore (Estimator.estimate ~source:"oo7" oo7_reg fig12_plan)));
    Test.make ~name:"t1-accuracy/blended-estimate"
      (Staged.stage (fun () -> ignore (Estimator.estimate registry select_plan)));
    Test.make ~name:"t2-planquality/dp-optimize"
      (Staged.stage (fun () -> ignore (Optimizer.optimize registry join_spec)));
    Test.make ~name:"t3-overhead/rule-compile"
      (Staged.stage (fun () ->
           ignore (Disco_costlang.Parser.parse_rule ~what:"bench" parse_text)));
    Test.make ~name:"t4-history/query-rule-match"
      (Staged.stage (fun () -> ignore (Registry.matching registry ~source:"relstore" select_plan)));
    Test.make ~name:"t5-prune/choose-with-abort"
      (Staged.stage (fun () ->
           ignore (Optimizer.choose ~prune:true registry join_plans)));
    Test.make ~name:"t6-scopes/match-and-estimate"
      (Staged.stage (fun () ->
           ignore (Estimator.estimate ~source:"oo7" oo7_reg fig12_plan))) ]

let print () =
  Util.section "Bechamel micro-benchmarks (mediator-side kernels, ns/run)";
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.25) ~stabilize:false () in
  let raws =
    Benchmark.all cfg
      Toolkit.Instance.[ monotonic_clock ]
      (Test.make_grouped ~name:"disco" (tests ()))
  in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raws in
  let rows = ref [] in
  Hashtbl.iter
    (fun name o ->
      let ns =
        match Analyze.OLS.estimates o with Some [ x ] -> x | _ -> Float.nan
      in
      rows := [ name; Util.f1 ns ] :: !rows)
    results;
  Util.table [ "kernel"; "ns/run" ] (List.sort compare !rows)
