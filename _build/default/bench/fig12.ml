(* Figure 12 of the paper: index-scan response time on the OO7 AtomicParts
   collection (70000 objects x 56 B, 1000 pages, unclustered index on id,
   uniform ids) as the selectivity sweeps 0 -> 0.7.

   Three series, as in the paper:
   - Experiment:   simulated execution on the paged store (distinct page
                   fetches through the buffer pool => Yao-shaped IO)
   - Calibration:  the generic (calibrated) model's linear index formula
   - Yao formula:  the wrapper-exported rule of Fig 13

   Times are reported in seconds to match the paper's axis. *)

open Disco_common
open Disco_algebra
open Disco_core
open Disco_exec
open Disco_wrapper
open Disco_oo7

let selectivities = [ 0.01; 0.05; 0.1; 0.15; 0.2; 0.3; 0.4; 0.5; 0.6; 0.7 ]

type point = {
  sel : float;
  experiment : float;   (* seconds *)
  calibration : float;
  yao : float;
}

let registry_for source =
  let catalog = Disco_catalog.Catalog.create () in
  let registry = Registry.create catalog in
  Generic.register registry;
  ignore (Registry.register_source_decl registry (Wrapper.registration_decl source));
  registry

let plan_for k =
  Plan.Select
    ( Plan.Scan { Plan.source = "oo7"; collection = "AtomicPart"; binding = "a" },
      Pred.Cmp ("a.id", Pred.Le, Constant.Int k) )

let run ?(config = Oo7.paper_config) () : point list =
  let with_rules = Oo7.make_source ~config ~with_rules:true () in
  let without_rules = Oo7.make_source ~config ~with_rules:false () in
  let reg_yao = registry_for with_rules in
  let reg_cal = registry_for without_rules in
  let n = config.Oo7.atomic_parts in
  List.map
    (fun sel ->
      let k = int_of_float (float_of_int n *. sel) in
      let plan = plan_for k in
      Oo7.cold_cache with_rules;
      let _, measured = Wrapper.execute with_rules plan in
      let est registry =
        Estimator.total_time (Estimator.estimate ~source:"oo7" registry plan) /. 1000.
      in
      { sel;
        experiment = measured.Run.total_time /. 1000.;
        calibration = est reg_cal;
        yao = est reg_yao })
    selectivities

let print ?config () =
  Util.section
    "Figure 12 — OO7 index scan: response time vs selectivity (seconds)";
  let points = run ?config () in
  Util.table
    [ "selectivity"; "Experiment"; "Calibration"; "Yao formula"; "cal.err"; "yao.err" ]
    (List.map
       (fun p ->
         [ Util.f2 p.sel;
           Util.f1 p.experiment;
           Util.f1 p.calibration;
           Util.f1 p.yao;
           Util.pct (Util.rel_err ~est:p.calibration ~real:p.experiment);
           Util.pct (Util.rel_err ~est:p.yao ~real:p.experiment) ])
       points);
  let cal_errs =
    List.map (fun p -> Util.rel_err ~est:p.calibration ~real:p.experiment) points
  in
  let yao_errs = List.map (fun p -> Util.rel_err ~est:p.yao ~real:p.experiment) points in
  Fmt.pr "  mean error: calibration %s, Yao formula %s@." (Util.pct (Util.mean cal_errs))
    (Util.pct (Util.mean yao_errs));
  Fmt.pr "  max error:  calibration %s, Yao formula %s@."
    (Util.pct (Util.maximum cal_errs))
    (Util.pct (Util.maximum yao_errs))
