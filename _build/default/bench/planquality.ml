(* Table T2 — plan quality: the simulated execution time of the plan chosen
   by the optimizer under the generic-only cost model vs the blended model,
   against the oracle (cheapest measured plan among all enumerated ones).
   This is the end-to-end payoff of better cost estimates. *)

open Disco_storage
open Disco_exec
open Disco_wrapper
open Disco_mediator

let queries =
  [ ( "Q1: Employee x Listing (cross-source, WAN side)",
      "select e.id, l.rating from Employee e, Listing l \
       where l.emp_id = e.id and e.salary > 28000" );
    ( "Q2: Task x Project (single source, join placement)",
      "select t.id, p.kind from Task t, Project p \
       where t.project_id = p.id and t.hours > 390" );
    ( "Q3: Employee x Project x Document (three sources)",
      "select e.id, d.doc_id from Employee e, Project p, Document d \
       where e.dept_id = p.dept_id and d.project_id = p.id \
       and e.salary > 29000 and p.cost < 5500" );
    (* The generic model believes every wrapper has a cheap sort-merge join;
       the object store only has nested-loop and index joins, and its
       exported rule says so — the classic strategy mismatch of §1(ii). *)
    ( "Q4: Task x Project on an unindexed attribute (strategy mismatch)",
      "select t.id from Task t, Project p \
       where t.hours = p.hours_budget and t.id <= 1000 and p.id <= 40" ) ]

let make_federation ~with_rules =
  let wrappers = Demo.make () in
  let wrappers = if with_rules then wrappers else List.map Wrapper.without_rules wrappers in
  let med = Mediator.create () in
  List.iter (Mediator.register med) wrappers;
  (med, wrappers)

let clear_buffers wrappers =
  List.iter (fun w -> Buffer.clear w.Wrapper.buffer) wrappers

(* Execute an already-chosen plan and return its measured total time. *)
let execute med wrappers plan =
  clear_buffers wrappers;
  let physical = Mediator.to_physical med plan in
  let _, v = Run.measure (Mediator.mediator_run_env med) physical in
  v.Run.total_time

let oracle med wrappers sql =
  let q = Disco_sql.Sql.parse sql in
  let resolved = Mediator.resolve med q in
  let plans = Optimizer.enumerate resolved.Mediator.spec in
  List.fold_left
    (fun best plan ->
      let t = execute med wrappers (Mediator.decorate resolved plan) in
      Float.min best t)
    infinity plans

let print () =
  Util.section
    "T2 — plan quality: measured time of the chosen plan (ms), generic vs blended";
  let med_g, w_g = make_federation ~with_rules:false in
  let med_b, w_b = make_federation ~with_rules:true in
  let rows =
    List.map
      (fun (label, sql) ->
        let plan_g, _ = Mediator.plan_query med_g sql in
        let plan_b, _ = Mediator.plan_query med_b sql in
        let t_g = execute med_g w_g plan_g in
        let t_b = execute med_b w_b plan_b in
        let t_o = oracle med_b w_b sql in
        [ label;
          Util.f1 t_g;
          Util.f1 t_b;
          Util.f1 t_o;
          Util.f2 (t_g /. t_o);
          Util.f2 (t_b /. t_o) ])
      queries
  in
  Util.table
    [ "query"; "generic plan"; "blended plan"; "oracle"; "gen/oracle"; "blend/oracle" ]
    rows
