(* The benchmark harness: regenerates every figure and table of the
   reproduction (see DESIGN.md §4 for the experiment index).

     dune exec bench/main.exe              # everything
     dune exec bench/main.exe -- fig12 t2  # a subset
     dune exec bench/main.exe -- --small   # reduced data sizes (CI-friendly)

   Experiments:
     fig12  — paper Figure 12: OO7 index scan, Experiment/Calibration/Yao
     t1     — estimation accuracy per operator, generic vs blended
     t2     — plan quality: executed time of chosen plans vs oracle
     t3     — estimation overhead vs number of registered rules
     t4     — historical-cost extensions (exact caching, adjustment)
     t5     — branch-and-bound early abort during plan selection
     t6     — scope-hierarchy ablation
     t7     — ADT operation costs: push vs defer an expensive predicate
     t8     — OO7 query workload accuracy (measured vs calibrated vs rules)
     cache  — two-level estimation cache: speedup + differential assertions
     micro  — Bechamel micro-benchmarks of the mediator kernels
     formula — cost-formula throughput, bytecode VM vs closure backend
               (--json=PATH writes the BENCH JSON record to a file)
     faults — fault injection: zero-fault differential, determinism,
              availability vs latency sweep (--json=PATH as above)
     parallel — domain-parallel plan search and scatter-gather execution:
              speedup curve over 1..N domains with bit-identity checks
              (--json=PATH as above)
     batch  — vectorized batch executor vs tuple-at-a-time: rows/sec on the
              scan/filter/hash-join kernels and the OO7 workload end to end;
              DISCO_OO7_SCALE=large arms the 2x gate (--json=PATH as above)
     serve  — the federation server under closed-loop multi-client load:
              QPS and latency percentiles per domain count, with exact
              client/server accounting and a warm-restart check
              (--json=PATH as above)
     verify — whole-plan verification overhead on the warm plan-cache
              query path, gated at 5% (--json=PATH as above)
     joins  — scalable join enumeration: DPccp vs subset-DP vs greedy over
              chain/star/clique/random graphs at 5..50 sources, with
              bit-identity checks and the enumeration-work and 50-source
              latency gates (--json=PATH as above) *)

let all =
  [ "fig12"; "t1"; "t2"; "t3"; "t4"; "t5"; "t6"; "t7"; "t8"; "cache"; "micro";
    "formula"; "faults"; "parallel"; "batch"; "serve"; "verify"; "joins" ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let small = List.mem "--small" args in
  let json_path =
    List.find_map
      (fun a ->
        if String.length a > 7 && String.sub a 0 7 = "--json=" then
          Some (String.sub a 7 (String.length a - 7))
        else None)
      args
  in
  let wanted =
    List.filter
      (fun a -> a <> "--small" && not (String.length a >= 7 && String.sub a 0 7 = "--json="))
      args
  in
  let wanted = if wanted = [] then all else wanted in
  let fig12_config =
    if small then
      Some { Disco_oo7.Oo7.paper_config with Disco_oo7.Oo7.atomic_parts = 7_000 }
    else None
  in
  List.iter
    (fun name ->
      match name with
      | "fig12" -> Fig12.print ?config:fig12_config ()
      | "t1" -> Accuracy.print ()
      | "t2" -> Planquality.print ?json_path ~smoke:small ()
      | "t3" -> Overhead.print ()
      | "t4" -> History_bench.print ()
      | "t5" -> Prune.print ()
      | "t6" -> Scopes.print ()
      | "t7" -> Adtbench.print ()
      | "t8" -> Oo7queries.print ?config:fig12_config ()
      | "cache" -> Cachebench.print ~smoke:small ()
      | "micro" -> Micro.print ()
      | "formula" -> Micro.print_formula ~smoke:small ?json_path ()
      | "faults" -> Faults.print ~smoke:small ?json_path ()
      | "parallel" -> Parallel.print ~smoke:small ?json_path ()
      | "batch" -> Batch_bench.print ~smoke:small ?json_path ()
      | "serve" -> Serve_bench.print ~smoke:small ?json_path ()
      | "verify" -> Verify_bench.print ~smoke:small ?json_path ()
      | "joins" -> Joins.print ~smoke:small ?json_path ()
      | other ->
        Fmt.epr "unknown experiment %S (known: %s)@." other (String.concat ", " all);
        exit 1)
    wanted
