(* Cache bench — speedup of the two-level estimation cache.

   Two workloads:

   - OO7: the OO7 query workload estimated repeatedly against the
     wrapper-rule registry. The first pass fills the cross-query plan cache;
     every later pass is a cache probe instead of a full cost evaluation.

   - federation: multi-join SQL queries planned repeatedly through the
     mediator (subset-DP), cache-enabled vs cache-disabled mediators over the
     same demo federation.

   The differential assertions always run, in every mode: the cached and
   uncached paths must pick identical plans with bit-identical estimated
   costs (a wrong cache silently corrupts plan choice — see
   test/test_plancache.ml for the randomized version). [smoke] runs one
   iteration and only the assertions, for CI. *)

open Disco_costlang
open Disco_core
open Disco_wrapper
open Disco_oo7
open Disco_mediator

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let bits = Int64.bits_of_float

let assert_same_cost what ~cached ~uncached =
  if bits cached <> bits uncached then
    Fmt.failwith "cachebench: %s: cached cost %.17g <> uncached %.17g" what
      cached uncached

(* --- OO7 workload ----------------------------------------------------------- *)

(* Estimate TotalTime of a wrapper-side OO7 plan, optionally through the
   per-run memo and the cross-query cache. *)
let oo7_cost ?memo ?cache registry plan =
  let fresh () =
    Estimator.total_time
      (Estimator.estimate ?memo ~require_vars:[ Ast.Total_time ] ~source:"oo7"
         registry plan)
  in
  match cache with
  | None -> fresh ()
  | Some c ->
    (match Plancache.find c registry ~objective:Ast.Total_time plan with
     | Some cost -> cost
     | None ->
       let cost = fresh () in
       Plancache.add c registry ~objective:Ast.Total_time plan cost;
       cost)

let oo7_registry config =
  let source = Oo7.make_source ~config ~with_rules:true () in
  let registry = Registry.create (Disco_catalog.Catalog.create ()) in
  Generic.register registry;
  ignore (Registry.register_source_decl registry (Wrapper.registration_decl source));
  registry

let oo7_workload ~iters config =
  let registry = oo7_registry config in
  let queries = Oo7.queries config in
  let cache = Plancache.create () in
  let run ~cached () =
    let memo = if cached then Some (Estimator.new_memo ()) else None in
    let cache = if cached then Some cache else None in
    for _ = 1 to iters do
      List.iter (fun (_, plan) -> ignore (oo7_cost ?memo ?cache registry plan)) queries
    done
  in
  (* differential check on every query, before timing anything *)
  List.iter
    (fun (label, plan) ->
      let uncached = oo7_cost registry plan in
      let c1 = oo7_cost ~cache registry plan in   (* fills the cache *)
      let c2 = oo7_cost ~cache registry plan in   (* served from the cache *)
      assert_same_cost label ~cached:c1 ~uncached;
      assert_same_cost (label ^ " (warm)") ~cached:c2 ~uncached)
    queries;
  let (), cold = time (run ~cached:false) in
  let (), warm = time (run ~cached:true) in
  (cold, warm, cache)

(* --- Federation workload ----------------------------------------------------- *)

let federation_queries =
  [ "select e.id from Employee e, Department d where e.dept_id = d.id \
     and d.budget > 200000";
    "select e.id from Employee e, Department d, Project p \
     where e.dept_id = d.id and d.id = p.dept_id and e.salary > 20000";
    "select t.id from Project p, Task t where t.project_id = p.id \
     and p.cost < 50000";
    "select e.id from Employee e, Department d, Project p, Task t \
     where e.dept_id = d.id and d.id = p.dept_id and p.id = t.project_id" ]

let federation_mediator ~cache =
  let med = Mediator.create ~cache () in
  List.iter (Mediator.register med) (Demo.make ~sizes:Demo.small_sizes ());
  med

let federation_workload ~iters =
  let cached = federation_mediator ~cache:true in
  let uncached = federation_mediator ~cache:false in
  (* differential check: identical plan, bit-identical cost — twice, so the
     second round is served from the warm cross-query cache *)
  List.iter
    (fun sql ->
      let p0, c0 = Mediator.plan_query uncached sql in
      for round = 1 to 2 do
        let p1, c1 = Mediator.plan_query cached sql in
        if not (Disco_algebra.Plan.equal p0 p1) then
          Fmt.failwith "cachebench: %s (round %d): cached chose a different plan"
            sql round;
        assert_same_cost (Fmt.str "%s (round %d)" sql round) ~cached:c1
          ~uncached:c0
      done)
    federation_queries;
  let run med () =
    for _ = 1 to iters do
      List.iter (fun sql -> ignore (Mediator.plan_query med sql)) federation_queries
    done
  in
  let (), cold = time (run uncached) in
  let (), warm = time (run cached) in
  (cold, warm, Mediator.plancache cached)

(* --- Driver ------------------------------------------------------------------- *)

let print ?(smoke = false) ?config () =
  let config =
    match config with
    | Some c -> c
    | None -> if smoke then Oo7.small_config else Oo7.paper_config
  in
  let iters = if smoke then 1 else 200 in
  Util.section
    (Fmt.str "cache — two-level estimation cache, %d iteration%s%s" iters
       (if iters = 1 then "" else "s")
       (if smoke then " (smoke: assertions only)" else ""));
  let oo7_cold, oo7_warm, oo7_cache = oo7_workload ~iters config in
  let fed_cold, fed_warm, fed_cache = federation_workload ~iters in
  Util.table
    [ "workload"; "uncached(ms)"; "cached(ms)"; "speedup"; "cache counters" ]
    [ [ "OO7";
        Util.f2 (oo7_cold *. 1000.);
        Util.f2 (oo7_warm *. 1000.);
        Util.f2 (oo7_cold /. Float.max oo7_warm 1e-9) ^ "x";
        Fmt.str "%a" Plancache.pp_counters oo7_cache ];
      [ "federation";
        Util.f2 (fed_cold *. 1000.);
        Util.f2 (fed_warm *. 1000.);
        Util.f2 (fed_cold /. Float.max fed_warm 1e-9) ^ "x";
        Fmt.str "%a" Plancache.pp_counters fed_cache ] ];
  if smoke then print_endline "  differential assertions passed (cached = uncached)"
  else begin
    let speedup = oo7_cold /. Float.max oo7_warm 1e-9 in
    if speedup < 2. then
      Fmt.failwith
        "cachebench: OO7 warm-cache speedup %.2fx is below the 2x target" speedup;
    Fmt.pr "  OO7 warm-cache speedup %.1fx (target >= 2x), differential \
            assertions passed@."
      speedup
  end
