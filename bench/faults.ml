(* Fault injection and graceful degradation across the wrapper/mediator
   boundary, in three sections:

   1. differential: inert (zero-probability) fault injectors must leave
      plans, estimated costs and measured timings bit-identical to running
      with no injectors installed at all;
   2. determinism: the same seed and profiles replay the same retries,
      replans, timings and final simulated clock in two independent runs;
   3. availability sweep: per-source transient error rate vs answered
      queries, retries, replans and latency — what graceful degradation
      costs and what it saves. *)

open Disco_algebra
open Disco_core
open Disco_exec
open Disco_wrapper
open Disco_fault
open Disco_mediator

let bits = Int64.bits_of_float

(* Queries spanning the federation: single-source selections, intra- and
   cross-source joins, decoration. *)
let workload =
  [ "select e.id from Employee e where e.salary > 20000";
    "select e.id from Employee e, Department d where e.dept_id = d.id and \
     d.budget > 150000";
    "select t.id from Project p, Task t where t.project_id = p.id and p.cost \
     < 50000";
    "select l.id from Employee e, Listing l where l.emp_id = e.id and \
     l.rating >= 3";
    "select distinct d.city from Department d where d.budget > 100000" ]

let make ?(faults = fun _ -> None) ?domains ~smoke () =
  let sizes = if smoke then Demo.small_sizes else Demo.default_sizes in
  let wrappers = Demo.make ~sizes () in
  let med = Mediator.create ?domains () in
  List.iter (Mediator.register med) wrappers;
  List.iter
    (fun w ->
      match faults w.Wrapper.name with
      | Some profile -> Wrapper.install_fault w profile
      | None -> ())
    wrappers;
  (med, wrappers)

(* --- 1. zero-fault differential ------------------------------------------- *)

let check_differential ~smoke () =
  let plain, _ = make ~domains:1 ~smoke () in
  let inert, _ = make ~faults:(fun _ -> Some Fault.none) ~domains:1 ~smoke () in
  (* the same zero-fault run again, but planning and submitting through a
     4-domain pool: parallelism must be as invisible as an inert injector *)
  let par, _ = make ~domains:4 ~smoke () in
  (* one pass per mediator — history and the simulated clock advance across
     the workload, so comparisons must pair up the same pass *)
  let answers med = List.map (Mediator.run_query med) workload in
  let reference = answers plain in
  let against label (b_answers : Mediator.answer list) =
    List.iter2
      (fun sql (a, b) ->
        if not (Plan.equal a.Mediator.plan b.Mediator.plan) then
          Fmt.failwith "faults bench: %s changed the plan for %S" label sql;
        let ea = Estimator.total_time a.Mediator.estimate
        and eb = Estimator.total_time b.Mediator.estimate in
        if bits ea <> bits eb then
          Fmt.failwith
            "faults bench: %s changed the estimate for %S (%h vs %h)"
            label sql ea eb;
        if
          bits a.Mediator.measured.Run.total_time
          <> bits b.Mediator.measured.Run.total_time
          || bits a.Mediator.measured.Run.time_first
             <> bits b.Mediator.measured.Run.time_first
        then
          Fmt.failwith "faults bench: %s changed measured times for %S" label
            sql;
        if a.Mediator.replans <> 0 || b.Mediator.replans <> 0 then
          Fmt.failwith "faults bench: replans without faults for %S" sql)
      workload
      (List.combine reference b_answers)
  in
  against "inert injector" (answers inert);
  against "4-domain pool" (answers par);
  Fmt.pr "  zero-fault differential: %d queries bit-identical with inert \
          injectors and with --domains 4@."
    (List.length workload)

(* --- 2. determinism -------------------------------------------------------- *)

let flaky_profiles name =
  match name with
  | "web" ->
    Some
      { Fault.none with
        Fault.seed = 11;
        transient_prob = 0.6;
        transient_ms = 40.;
        spike_prob = 0.3;
        spike_ms = 400. }
  | "relstore" -> Some { Fault.none with Fault.seed = 5; transient_prob = 0.25 }
  | _ -> None

(* Two rounds of the workload under the flaky profiles: per-query trace plus
   final health, retry count and clock. Degraded queries record their
   failure shape instead. *)
let trace ~smoke () =
  let med, _ = make ~faults:flaky_profiles ~smoke () in
  let per_query =
    List.concat_map
      (fun sql ->
        [ (match Mediator.run_query med sql with
           | a ->
             Fmt.str "%s | %Lx | replans %d" (Plan.to_string a.Mediator.plan)
               (bits a.Mediator.measured.Run.total_time)
               a.Mediator.replans
           | exception Mediator.Degraded r ->
             Fmt.str "degraded | %d failures | replans %d"
               (List.length r.Mediator.failures)
               r.Mediator.replans) ])
      (workload @ workload)
  in
  let health_rows = Health.report (Mediator.health med) in
  let health =
    List.map
      (fun (r : Health.row) ->
        Fmt.str "%s ok=%d fail=%d retry=%d" r.Health.source r.Health.ok
          r.Health.failed r.Health.retried)
      health_rows
  in
  let retries =
    List.fold_left (fun acc (r : Health.row) -> acc + r.Health.retried) 0 health_rows
  in
  (per_query, health, retries, bits (Mediator.now med))

let check_determinism ~smoke () =
  let t1 = trace ~smoke () in
  let t2 = trace ~smoke () in
  if t1 <> t2 then
    Fmt.failwith "faults bench: two runs with the same seed+profiles diverged";
  let _, health, retries, _ = t1 in
  if retries = 0 then
    Fmt.failwith "faults bench: determinism run exercised no retries";
  Fmt.pr "  determinism: two runs identical (per-query plans, timing bits, \
          replans, health, clock); %d retries exercised@."
    retries;
  List.iter (fun line -> Fmt.pr "    %s@." line) health

(* --- 3. availability sweep ------------------------------------------------- *)

type scenario = {
  error_rate : float;
  ok : int;
  degraded : int;
  retries : int;
  replans : int;
  mean_latency_ms : float;
}

let sweep_one ~smoke ~rounds error_rate : scenario =
  let faults _ =
    if error_rate = 0. then None
    else
      Some
        { Fault.none with
          Fault.seed = 3;
          transient_prob = error_rate;
          transient_ms = 40. }
  in
  let med, _ = make ~faults ~smoke () in
  let ok = ref 0 and degraded = ref 0 and replans = ref 0 in
  let latencies = ref [] in
  for _ = 1 to rounds do
    List.iter
      (fun sql ->
        match Mediator.run_query med sql with
        | a ->
          incr ok;
          replans := !replans + a.Mediator.replans;
          latencies := a.Mediator.measured.Run.total_time :: !latencies
        | exception Mediator.Degraded r ->
          incr degraded;
          replans := !replans + r.Mediator.replans
        | exception Disco_common.Err.Source_unavailable _ -> incr degraded)
      workload
  done;
  let retries =
    List.fold_left
      (fun acc (r : Health.row) -> acc + r.Health.retried)
      0
      (Health.report (Mediator.health med))
  in
  { error_rate;
    ok = !ok;
    degraded = !degraded;
    retries;
    replans = !replans;
    mean_latency_ms = Util.mean !latencies }

let print ?(smoke = false) ?json_path () =
  Util.section
    "Fault injection: availability vs plan quality and latency (bench faults)";
  check_differential ~smoke ();
  check_determinism ~smoke ();
  let rates = if smoke then [ 0.0; 0.3 ] else [ 0.0; 0.1; 0.3; 0.5 ] in
  let rounds = if smoke then 3 else 8 in
  let scenarios = List.map (sweep_one ~smoke ~rounds) rates in
  Util.table
    [ "err rate"; "answered"; "degraded"; "retries"; "replans"; "mean latency ms" ]
    (List.map
       (fun s ->
         [ Util.f2 s.error_rate;
           string_of_int s.ok;
           string_of_int s.degraded;
           string_of_int s.retries;
           string_of_int s.replans;
           Util.f1 s.mean_latency_ms ])
       scenarios);
  (match scenarios with
   | baseline :: _ when baseline.degraded > 0 || baseline.retries > 0 ->
     Fmt.failwith "faults bench: fault-free baseline degraded or retried"
   | _ -> ());
  Util.bench_json ?json_path ~bench:"faults"
    ~domains:(Disco_parallel.Pool.env_domains ())
    [ Fmt.str {|"smoke":%b|} smoke;
      Fmt.str {|"scenarios":[%s]|}
        (String.concat ","
           (List.map
              (fun s ->
                Fmt.str
                  {|{"error_rate":%.2f,"ok":%d,"degraded":%d,"retries":%d,"replans":%d,"mean_latency_ms":%.1f}|}
                  s.error_rate s.ok s.degraded s.retries s.replans
                  s.mean_latency_ms)
              scenarios)) ]
