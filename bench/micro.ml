(* Bechamel micro-benchmarks: one [Test.make] per experiment table, measuring
   the mediator-side computational kernel behind it (the estimation /
   optimization work, not the simulated execution time). Reported as
   nanoseconds per run from an OLS fit. *)

open Bechamel
open Disco_common
open Disco_algebra
open Disco_core
open Disco_wrapper
open Disco_mediator

let setup () =
  let med = Mediator.create () in
  List.iter (Mediator.register med) (Demo.make ~sizes:Demo.small_sizes ());
  med

let oo7_registry () =
  let source =
    Disco_oo7.Oo7.make_source ~config:Disco_oo7.Oo7.small_config ~with_rules:true ()
  in
  let catalog = Disco_catalog.Catalog.create () in
  let registry = Registry.create catalog in
  Generic.register registry;
  ignore (Registry.register_source_decl registry (Wrapper.registration_decl source));
  registry

let tests () =
  let med = setup () in
  let registry = Mediator.registry med in
  let oo7_reg = oo7_registry () in
  let fig12_plan =
    Plan.Select
      ( Plan.Scan { Plan.source = "oo7"; collection = "AtomicPart"; binding = "a" },
        Pred.Cmp ("a.id", Pred.Le, Constant.Int 500) )
  in
  let select_plan, _ =
    Mediator.plan_query med "select e.id from Employee e where e.salary > 20000"
  in
  let join_sql =
    "select e.id from Employee e, Department d, Project p \
     where e.dept_id = d.id and d.id = p.dept_id"
  in
  let join_spec = (Mediator.resolve med (Disco_sql.Sql.parse join_sql)).Mediator.spec in
  let join_plans = Optimizer.enumerate join_spec in
  let parse_text =
    "rule select(C, A = V) { CountObject = C.CountObject * selectivity(A, V); \
     TotalTime = C.TotalTime + C.CountObject * 2; }"
  in
  [ Test.make ~name:"fig12/yao-rule-estimate"
      (Staged.stage (fun () ->
           ignore (Estimator.estimate ~source:"oo7" oo7_reg fig12_plan)));
    Test.make ~name:"t1-accuracy/blended-estimate"
      (Staged.stage (fun () -> ignore (Estimator.estimate registry select_plan)));
    Test.make ~name:"t2-planquality/dp-optimize"
      (Staged.stage (fun () -> ignore (Optimizer.optimize registry join_spec)));
    Test.make ~name:"t3-overhead/rule-compile"
      (Staged.stage (fun () ->
           ignore (Disco_costlang.Parser.parse_rule ~what:"bench" parse_text)));
    Test.make ~name:"t4-history/query-rule-match"
      (Staged.stage (fun () -> ignore (Registry.matching registry ~source:"relstore" select_plan)));
    Test.make ~name:"t5-prune/choose-with-abort"
      (Staged.stage (fun () ->
           ignore (Optimizer.choose ~prune:true registry join_plans)));
    Test.make ~name:"t6-scopes/match-and-estimate"
      (Staged.stage (fun () ->
           ignore (Estimator.estimate ~source:"oo7" oo7_reg fig12_plan))) ]

(* --- Formula throughput: bytecode VM vs closure reference backend -------------

   Every formula of the generic model plus representative wrapper exports
   (object store, web source, OO7 Yao rules) is evaluated in a tight loop
   against a synthetic resolution context — once as the closure trees of the
   reference backend, once through the registration-time optimizer and the
   flat VM with slot pre-resolution. This isolates the formula-evaluation
   kernel the estimator runs thousands of times per optimization. The two
   backends are asserted to produce bit-identical values on every formula
   before anything is timed; full mode enforces the >= 2x throughput target.

   On top of the kernel, two registry-level workloads report the end-to-end
   effect: OO7 estimation and federation planning under each backend. *)

module Formula = struct
  open Disco_costlang

  (* Synthetic resolution environment shaped like the estimator's
     [resolve_ref] chain: body locals, the cost-variable name check, head
     bindings, then the parameter/statistics tables. A dynamic reference
     pays the whole chain on every evaluation, exactly as it does inside
     the estimator — where the real chain is strictly more expensive
     (scope hierarchy, catalog walks, statistics derivation) — while a
     slotted reference pays it once per model generation. Values are
     deterministic in the path (positive, so divisions stay defined) and
     the differential gate below re-checks both backends against them. *)
  let head_bindings = [ ("W", Value.Vname "wrapper") ]

  let lets : (string, Value.t) Hashtbl.t = Hashtbl.create 64

  let derived key = Value.Vnum (float_of_int ((Hashtbl.hash key land 0xff) + 2))

  let derived_f key = float_of_int ((Hashtbl.hash key land 0xff) + 2)

  (* Synthetic catalog mirroring [Catalog]'s representation exactly:
     association lists per level (sources, then collections, then
     attributes), so one resolution pays what the estimator pays against the
     real catalog — a membership scan ([Catalog.mem_collection]), a second
     scan to fetch the entry ([Catalog.find_collection]), then either a
     field dispatch on the statistic name ([Registry.extent_stat]) or an
     attribute scan plus a derived-record allocation and another dispatch
     ([Catalog.attribute_stats] + [Derive.of_catalog_attr] +
     [Registry.attr_stat_value]). *)
  type extent = { count_objects : float; total_size : float; object_size : float }

  type attr_stat = { indexed : bool; distinct : float; vmin : Value.t; vmax : Value.t }

  type centry = { extent : extent; attributes : (string * attr_stat) list }

  type csource = { mutable colls : (string * centry) list }

  let catalog : (string * csource) list =
    [ ("bench", { colls = [] }); ("wrapper", { colls = [] }) ]

  let extent_stat (e : extent) = function
    | "CountObject" -> Some e.count_objects
    | "TotalSize" -> Some e.total_size
    | "ObjectSize" -> Some e.object_size
    | _ -> None

  let attr_record key =
    { indexed = Hashtbl.hash key land 1 = 0; distinct = derived_f key;
      vmin = Value.Vnum 0.; vmax = Value.Vnum (derived_f key) }

  let attr_stat_of (s : attr_stat) = function
    | "Indexed" -> Some (Value.Vnum (if s.indexed then 1. else 0.))
    | "CountDistinct" -> Some (Value.Vnum s.distinct)
    | "Min" -> Some s.vmin
    | "Max" -> Some s.vmax
    | _ -> None

  (* a fixed schema per collection, like a wrapper registration would
     upload; a statistics path finds its attribute by scanning it *)
  let attr_names = [ "oid"; "key"; "a"; "b"; "size"; "tag" ]

  let register_collection src coll =
    let key = src ^ "." ^ coll in
    let f = derived_f key in
    let entry =
      { extent = { count_objects = f; total_size = f *. 64.; object_size = 64. };
        attributes = List.map (fun a -> (a, attr_record (key ^ "." ^ a))) attr_names }
    in
    (match List.assoc_opt src catalog with
     | Some s -> s.colls <- (coll, entry) :: s.colls
     | None -> ());
    entry

  let mem_collection src coll =
    match List.assoc_opt src catalog with
    | None -> false
    | Some s -> List.mem_assoc coll s.colls

  let find_collection src coll =
    match List.assoc_opt src catalog with
    | None -> None
    | Some s -> List.assoc_opt coll s.colls

  let default_attr = attr_record "default"

  let catalog_path ~source path =
    match path with
    | [ coll; stat ] ->
      if not (mem_collection source coll) then
        (* first touch registers deterministically, as catalog registration
           would have; steady state is the scans above and below *)
        ignore (register_collection source coll);
      (match find_collection source coll with
       | Some e -> Option.map (fun f -> Value.Vnum f) (extent_stat e.extent stat)
       | None -> None)
    | [ coll; attr; stat ] ->
      if not (mem_collection source coll) then ignore (register_collection source coll);
      (match find_collection source coll with
       | Some e ->
         let s =
           match List.assoc_opt attr e.attributes with
           | Some s -> s
           | None -> default_attr (* [Stats.default_attribute] *)
         in
         (* the real chain re-derives the statistics record per resolution
            ([Derive.of_catalog_attr] allocates) before dispatching *)
         let s = { s with distinct = s.distinct } in
         attr_stat_of s stat
       | None -> None)
    | _ -> None

  (* [Derive.find_loose]: exact match first, then a scan that strips any
     [Collection.attr] qualification off each candidate before comparing *)
  let find_loose (attrs : (string * attr_stat) list) name =
    match List.assoc_opt name attrs with
    | Some s -> Some s
    | None ->
      List.find_opt
        (fun (q, _) ->
          match String.rindex_opt q '.' with
          | Some i ->
            String.equal (String.sub q (i + 1) (String.length q - i - 1)) name
          | None -> String.equal q name)
        attrs
      |> Option.map snd

  (* the operand's result statistics, searched with loose matching as
     [Estimator.operand_path] does on [Rule.Input] operands *)
  let operand_attrs : (string * attr_stat) list ref = ref []

  let value_of_path locals path =
    match path with
    | [] -> Value.Vnum 1.
    | [ x ] ->
      (match Hashtbl.find_opt locals x with
       | Some v -> v
       | None ->
         (match Ast.cost_var_of_name x with
          | Some _ -> Value.Vnum 12.5 (* an input's cost variable *)
          | None ->
            (match List.assoc_opt x head_bindings with
             | Some v -> v
             | None ->
               (* wrapper/default parameter (a [let] of the model text) *)
               (match Hashtbl.find_opt lets x with
                | Some v -> v
                | None ->
                  let v = derived x in
                  Hashtbl.add lets x v;
                  v))))
    | x :: rest ->
      (match List.assoc_opt x head_bindings with
       | Some _ ->
         (* operand-rooted path: substitute bound segments, then resolve
            against the operand's statistics ([Estimator.operand_path]) *)
         let rest =
           List.map
             (fun s ->
               match List.assoc_opt s head_bindings with
               | Some (Value.Vname n) -> n
               | _ -> s)
             rest
         in
         (match rest with
          | [ stat ] ->
            (match Ast.cost_var_of_name stat with
             | Some _ -> Value.Vnum 12.5 (* child cost variable *)
             | None ->
               if String.equal stat "ObjectSize" then Value.Vnum 64.
               else derived stat)
          | [ attr; stat ] ->
            (match find_loose !operand_attrs attr with
             | Some s ->
               (match attr_stat_of s stat with
                | Some v -> v
                | None -> derived (attr ^ "." ^ stat))
             | None ->
               let s = attr_record attr in
               operand_attrs := (attr, s) :: !operand_attrs;
               (match attr_stat_of s stat with
                | Some v -> v
                | None -> derived (attr ^ "." ^ stat)))
          | _ -> derived (String.concat "." rest))
       | None ->
         (* literal collection path, walked against the catalog under the
            evaluation source and then the rule's own source, exactly like
            the [Registry.catalog_path] double lookup *)
         (match catalog_path ~source:"bench" path with
          | Some v -> v
          | None ->
            (match catalog_path ~source:"wrapper" path with
             | Some v -> v
             | None -> derived (String.concat "." path))))

  let to_f v = try Value.to_num v with Err.Eval_error _ -> 1.

  type unit_of_work = {
    label : string;
    closure : Compile.compiled list;     (* the rule body, reference backend *)
    progs : Vm.program list;             (* the same body, optimized bytecode *)
    slots : Vm.slots;
    locals : (string, Value.t) Hashtbl.t;
        (* per-instance body locals, as [inst.values] in the estimator — the
           evaluation contexts below capture it, so both backends pay the
           estimator's per-instance context construction *)
    vc : Vm.ctx;
        (* allocated once per instance as the estimator does; each pass
           repins the slot column and clears the dynamic-reference memo *)
  }

  let rec compile_units () =
    let decls =
      Parser.parse_source ~what:"generic" (Generic.text ())
      :: List.map
           (fun (name, text) ->
             { Ast.source_name = name; items = Parser.parse_items ~what:name text })
           [ ("objstore", Demo.objstore_rules);
             ("web", Demo.web_rules);
             ("oo7", Disco_oo7.Oo7.yao_rules) ]
    in
    List.concat_map
      (fun (decl : Ast.source_decl) ->
        let defs =
          List.filter_map
            (function
              | Ast.Def (name, params, body) ->
                Some (name, Compile.compile_def ~params body)
              | _ -> None)
            decl.Ast.items
        in
        let decl_locals : (string, Value.t) Hashtbl.t = Hashtbl.create 16 in
        let rec cctx = { Compile.resolve_ref = value_of_path decl_locals; call }
        and call name args =
          match List.assoc_opt name defs with
          | Some def -> Compile.apply_def def cctx args
          | None ->
            (match (name, args) with
             | "max", [ a; b ] -> Value.Vnum (Float.max (to_f a) (to_f b))
             | "min", [ a; b ] -> Value.Vnum (Float.min (to_f a) (to_f b))
             | "exp", [ a ] -> Value.Vnum (Float.exp (to_f a))
             | "ceil", [ a ] -> Value.Vnum (Float.ceil (to_f a))
             | "if", [ c; a; b ] -> if to_f c <> 0. then a else b
             | "sel", _ -> Value.Vnum 0.1
             | "adjust", _ -> Value.Vnum 1.
             | _ -> Value.Vnum 1.)
        in
        let lookup name =
          Option.map
            (fun (d : Compile.def) -> (d.Compile.params, d.Compile.def_ast))
            (List.assoc_opt name defs)
        in
        List.filter_map
          (fun ((iface : string option), (rule : Ast.rule)) ->
            let targets = List.map (fun (t, _) -> Ast.target_name t) rule.Ast.body in
            let head_vars = Ast.head_var_names rule.Ast.head in
            let head_var x = List.mem x head_vars in
            let volatile_first x =
              Option.is_some (Ast.cost_var_of_name x) || List.mem x targets
            in
            let dynamic_first x = head_var x || volatile_first x in
            let b = Vm.new_builder () in
            let progs =
              List.map
                (fun (_, e) ->
                   Vm.compile b ~dynamic_first ~volatile_first ~head_var
                     (Opt.pipeline ~lookup e))
                rule.Ast.body
            in
            let slots = Vm.finish b in
            let closure = List.map (fun (_, e) -> Compile.compile e) rule.Ast.body in
            let label =
              Fmt.str "%s/%s%s" decl.Ast.source_name
                (Ast.head_operator rule.Ast.head)
                (match iface with Some i -> "(" ^ i ^ ")" | None -> "")
            in
            let locals : (string, Value.t) Hashtbl.t = Hashtbl.create 16 in
            let vc =
              { Vm.bank = Vm.empty_bank;
                dmemo =
                  (let n = Vm.dyn_count slots in
                   if n = 0 then Vm.empty_bank else Vm.new_bank n);
                slots;
                resolve = value_of_path locals;
                call = cctx.Compile.call }
            in
            let u = { label; closure; progs; slots; locals; vc } in
            (* differential gate: both backends agree bit-for-bit on every
               formula of the body, or the rule is excluded (a formula may
               raise under the synthetic context, e.g. via a zero divisor) *)
            let agrees =
              List.for_all2
                (fun compiled prog ->
                  let c = try Some (compiled cctx) with Err.Eval_error _ -> None in
                  let v =
                    try Some (Vm.exec prog (vm_ctx u cctx)) with Err.Eval_error _ -> None
                  in
                  match (c, v) with
                  | None, None -> false (* raising formulas carry no signal *)
                  | Some (Value.Vnum a), Some (Value.Vnum b) ->
                    Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)
                    || Fmt.failwith "formula bench: %s: closure %.17g <> vm %.17g"
                         label a b
                  | Some a, Some b ->
                    a = b
                    || Fmt.failwith "formula bench: %s: backends disagree" label
                  | _ -> Fmt.failwith "formula bench: %s: one backend raised" label)
                u.closure u.progs
            in
            if agrees then Some (u, cctx) else None)
          (Ast.rules_of_source decl))
      decls

  and vm_ctx u (_cctx : Compile.ctx) =
    (* per-pass repin, as the estimator does: fetch the slot column under
       the current generation; the dynamic-reference memo survives, since
       the generation is unchanged (the estimator drops it when a model
       write moves the generation, like the slot banks) *)
    u.vc.Vm.bank <-
      (if Vm.slot_count u.slots = 0 then Vm.empty_bank
       else Vm.slot_cache u.slots ~generation:1 ~source:"bench");
    u.vc

  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)

  let run_closure units iters =
    (* the estimator builds a fresh evaluation context per formula
       evaluation on this backend ([eval_ctx] captures the instance); the
       closure backend has no cacheable slot identity, so that construction
       is part of its per-eval cost *)
    let n = ref 0 in
    let (), s =
      time (fun () ->
          for _ = 1 to iters do
            List.iter
              (fun (u, cctx) ->
                List.iter
                  (fun c ->
                    let ectx =
                      { Compile.resolve_ref = value_of_path u.locals;
                        call = cctx.Compile.call }
                    in
                    ignore (c ectx);
                    incr n)
                  u.closure)
              units
          done)
    in
    s *. 1e9 /. float_of_int (max !n 1)

  let run_vm units iters =
    let n = ref 0 in
    let (), s =
      time (fun () ->
          for _ = 1 to iters do
            List.iter
              (fun (u, cctx) ->
                let ctx = vm_ctx u cctx in
                List.iter (fun p -> ignore (Vm.exec p ctx); incr n) u.progs)
              units
          done)
    in
    s *. 1e9 /. float_of_int (max !n 1)
end

let formula_queries =
  [ "select e.id from Employee e where e.salary > 20000";
    "select e.id from Employee e, Department d, Project p \
     where e.dept_id = d.id and d.id = p.dept_id" ]

let print_formula ?(smoke = false) ?json_path () =
  Util.section
    (Fmt.str "formula — cost-formula throughput, bytecode VM vs closure backend%s"
       (if smoke then " (smoke)" else ""));
  let units = Formula.compile_units () in
  let rounds = if smoke then 1 else 5 in
  let per_round = if smoke then 1 else 4_000 in
  let iters = rounds * per_round in
  ignore (Formula.run_closure units 1);   (* warm-up both sides *)
  ignore (Formula.run_vm units 1);
  (* interleaved best-of-N: per-process GC and scheduling noise swamps a
     single measurement, so each side keeps its fastest round *)
  let closure_best = ref infinity and vm_best = ref infinity in
  for _ = 1 to rounds do
    closure_best := Float.min !closure_best (Formula.run_closure units per_round);
    vm_best := Float.min !vm_best (Formula.run_vm units per_round)
  done;
  let closure_ns = !closure_best and vm_ns = !vm_best in
  let speedup = closure_ns /. Float.max vm_ns 1e-9 in
  (* registry-level workloads: estimation / planning end to end *)
  let oo7_ns backend =
    let registry =
      let source =
        Disco_oo7.Oo7.make_source ~config:Disco_oo7.Oo7.small_config ~with_rules:true ()
      in
      let r = Registry.create ~backend (Disco_catalog.Catalog.create ()) in
      Generic.register r;
      ignore (Registry.register_source_decl r (Wrapper.registration_decl source));
      r
    in
    let queries = Disco_oo7.Oo7.queries Disco_oo7.Oo7.small_config in
    let reps = if smoke then 1 else 50 in
    let n = ref 0 in
    let (), s =
      Formula.time (fun () ->
          for _ = 1 to reps do
            List.iter
              (fun (_, plan) ->
                ignore (Estimator.estimate ~source:"oo7" registry plan);
                incr n)
              queries
          done)
    in
    s *. 1e9 /. float_of_int (max !n 1)
  in
  let fed_ns backend =
    let med = Mediator.create ~backend ~cache:false () in
    List.iter (Mediator.register med) (Demo.make ~sizes:Demo.small_sizes ());
    let reps = if smoke then 1 else 50 in
    let n = ref 0 in
    let (), s =
      Formula.time (fun () ->
          for _ = 1 to reps do
            List.iter
              (fun q -> ignore (Mediator.plan_query med q); incr n)
              formula_queries
          done)
    in
    s *. 1e9 /. float_of_int (max !n 1)
  in
  let oo7_c = oo7_ns Registry.Closure and oo7_b = oo7_ns Registry.Bytecode in
  let fed_c = fed_ns Registry.Closure and fed_b = fed_ns Registry.Bytecode in
  Util.table
    [ "kernel"; "closure(ns)"; "bytecode(ns)"; "speedup" ]
    [ [ Fmt.str "formula-eval (%d formulas)"
          (List.fold_left (fun a (u, _) -> a + List.length u.Formula.progs) 0 units);
        Util.f1 closure_ns; Util.f1 vm_ns; Util.f2 speedup ^ "x" ];
      [ "oo7-estimate"; Util.f1 oo7_c; Util.f1 oo7_b;
        Util.f2 (oo7_c /. Float.max oo7_b 1e-9) ^ "x" ];
      [ "federation-plan"; Util.f1 fed_c; Util.f1 fed_b;
        Util.f2 (fed_c /. Float.max fed_b 1e-9) ^ "x" ] ];
  Util.bench_json ?json_path ~bench:"formula"
    ~domains:(Disco_parallel.Pool.env_domains ())
    [ Fmt.str
        {|"smoke":%b,"iters":%d,"formulas":%d,"closure_ns_per_eval":%.1f,"bytecode_ns_per_eval":%.1f,"speedup":%.2f,"registry":[{"name":"oo7-estimate","closure_ns":%.1f,"bytecode_ns":%.1f},{"name":"federation-plan","closure_ns":%.1f,"bytecode_ns":%.1f}]|}
        smoke iters
        (List.fold_left (fun a (u, _) -> a + List.length u.Formula.progs) 0 units)
        closure_ns vm_ns speedup oo7_c oo7_b fed_c fed_b ];
  if (not smoke) && speedup < 2. then
    Fmt.failwith
      "formula bench: bytecode speedup %.2fx is below the 2x target" speedup;
  if not smoke then
    Fmt.pr "  bytecode formula-eval speedup %.1fx (target >= 2x), differential \
            assertions passed@."
      speedup

let print () =
  Util.section "Bechamel micro-benchmarks (mediator-side kernels, ns/run)";
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.25) ~stabilize:false () in
  let raws =
    Benchmark.all cfg
      Toolkit.Instance.[ monotonic_clock ]
      (Test.make_grouped ~name:"disco" (tests ()))
  in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raws in
  let rows = ref [] in
  Hashtbl.iter
    (fun name o ->
      let ns =
        match Analyze.OLS.estimates o with Some [ x ] -> x | _ -> Float.nan
      in
      rows := [ name; Util.f1 ns ] :: !rows)
    results;
  Util.table [ "kernel"; "ns/run" ] (List.sort compare !rows)

