(* disco serve under closed-loop multi-client load.

   For each domain-pool degree, a fresh server (its own mediator and unix
   socket) takes a fixed workload from C concurrent clients, each running
   as its own tenant: every client blocks on its previous answer before
   sending the next — the closed-loop model, so offered load tracks service
   rate and the numbers are throughput (QPS) and latency percentiles
   rather than queue growth. Queries are serialized on the server's
   execution lock; the domain pool parallelizes *inside* each query, so
   the sweep shows what intra-query parallelism buys a saturated server.

   Two assertions ride along:
   - exact accounting: the server's completed/rejected counters must equal
     what the clients observed, and received must equal queries sent;
   - warm restart: a server stopped with a snapshot and restarted as a new
     process-equivalent (fresh mediator, same path) must come back with
     bit-identical adjustment factors and clock, and all history records.

   The trailing BENCH JSON record carries QPS and p99 per domain count for
   archived CI artifacts. *)

open Disco_core
open Disco_wrapper
open Disco_mediator
open Disco_server

let bits = Int64.bits_of_float

let workload =
  [ "select e.name from Employee e where e.salary > 20000";
    "select e.id from Employee e, Department d where e.dept_id = d.id and \
     d.budget > 100000";
    "select t.id from Project p, Task t where t.project_id = p.id";
    "select l.id from Listing l where l.rating >= 2" ]

let socket_path =
  let n = ref 0 in
  fun () ->
    incr n;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "disco-bench-%d-%d.sock" (Unix.getpid ()) !n)

let make_mediator ?(history = History.Off) ~domains ~smoke () =
  let sizes = if smoke then Demo.small_sizes else Demo.default_sizes in
  let med = Mediator.create ~history_mode:history ~domains () in
  List.iter (Mediator.register med) (Demo.make ~sizes ());
  med

let start_server ?snapshot_path med =
  let addr = Server.Unix_socket (socket_path ()) in
  let config =
    { (Server.default_config addr) with
      Server.queue_depth = 256;
      workers = 4;
      snapshot_path;
      snapshot_every = 0 }
  in
  let srv = Server.create ~config med in
  Server.start srv;
  (srv, addr)

(* C clients, each its own connection and tenant, each sending the whole
   workload [rounds] times, blocking on every answer. Returns the client-
   side tallies and the wall-clock seconds of the full run. *)
let closed_loop ~clients ~rounds addr =
  let ok = Array.make clients 0 in
  let rejected = Array.make clients 0 in
  let t0 = Unix.gettimeofday () in
  let threads =
    List.init clients (fun i ->
        Thread.create
          (fun () ->
            let c = Client.connect_retry addr in
            Fun.protect
              ~finally:(fun () -> Client.close c)
              (fun () ->
                for _ = 1 to rounds do
                  List.iter
                    (fun sql ->
                      let resp =
                        Client.query ~tenant:(Printf.sprintf "client-%d" i) c sql
                      in
                      match Json.string_member "status" resp with
                      | Some "ok" -> ok.(i) <- ok.(i) + 1
                      | Some "rejected" -> rejected.(i) <- rejected.(i) + 1
                      | _ -> ())
                    workload
                done))
          ())
  in
  List.iter Thread.join threads;
  let wall = Unix.gettimeofday () -. t0 in
  let total a = Array.fold_left ( + ) 0 a in
  (total ok, total rejected, wall)

let run_domain_point ~smoke ~clients ~rounds domains =
  let med = make_mediator ~domains ~smoke () in
  let srv, addr = start_server med in
  Fun.protect
    ~finally:(fun () -> Server.stop srv)
    (fun () ->
      let ok, rejected, wall = closed_loop ~clients ~rounds addr in
      let m = Metrics.snapshot (Server.metrics srv) in
      let sent = clients * rounds * List.length workload in
      let counters_match =
        m.Metrics.received = sent
        && m.Metrics.completed = ok
        && m.Metrics.rejected_queue + m.Metrics.rejected_deadline = rejected
        && m.Metrics.in_flight = 0
      in
      (ok, rejected, wall, m, counters_match))

(* Warm restart: train adjustment factors through the server, snapshot,
   then bring up a fresh mediator from the same path and compare bits. *)
let warm_restart_exercise ~smoke () =
  let snap = Filename.temp_file "disco-serve-bench" ".snap" in
  Sys.remove snap;
  let sources = [ "relstore"; "objstore"; "files"; "web" ] in
  let med1 =
    make_mediator ~history:(History.Adjust { smoothing = 0.6 }) ~domains:1
      ~smoke ()
  in
  let srv1, addr1 = start_server ~snapshot_path:snap med1 in
  let trained =
    Fun.protect
      ~finally:(fun () -> Server.stop srv1)
      (fun () ->
        ignore (closed_loop ~clients:2 ~rounds:2 addr1);
        ( List.map
            (fun s -> (s, Registry.adjust (Mediator.registry med1) ~source:s))
            sources,
          Mediator.now med1 ))
  in
  (* Server.stop wrote the final snapshot; restart "the process" *)
  let med2 =
    make_mediator ~history:(History.Adjust { smoothing = 0.6 }) ~domains:1
      ~smoke ()
  in
  let srv2, _addr2 = start_server ~snapshot_path:snap med2 in
  let restored_ok =
    Fun.protect
      ~finally:(fun () ->
        Server.stop srv2;
        if Sys.file_exists snap then Sys.remove snap)
      (fun () ->
        let factors1, clock1 = trained in
        List.for_all
          (fun (s, f1) ->
            bits f1 = bits (Registry.adjust (Mediator.registry med2) ~source:s))
          factors1
        && bits clock1 = bits (Mediator.now med2))
  in
  restored_ok

let print ?(smoke = false) ?json_path () =
  Util.section "serve: closed-loop multi-client server throughput";
  let domain_counts = if smoke then [ 1; 2 ] else [ 1; 2; 4; 8 ] in
  let clients = if smoke then 4 else 8 in
  let rounds = if smoke then 15 else 40 in
  Fmt.pr "  %d clients (one tenant each), %d queries per client, per domain \
          count@."
    clients
    (rounds * List.length workload);
  let all_match = ref true in
  let results =
    List.map
      (fun domains ->
        let ok, rejected, wall, m, counters_match =
          run_domain_point ~smoke ~clients ~rounds domains
        in
        if not counters_match then all_match := false;
        (domains, ok, rejected, wall, m))
      domain_counts
  in
  Util.table
    [ "domains"; "queries"; "rejected"; "wall s"; "qps"; "p50 ms"; "p95 ms";
      "p99 ms"; "max ms" ]
    (List.map
       (fun (domains, ok, rejected, wall, m) ->
         [ string_of_int domains;
           string_of_int ok;
           string_of_int rejected;
           Util.f2 wall;
           Util.f1 (float_of_int ok /. wall);
           Util.f2 m.Metrics.p50_ms;
           Util.f2 m.Metrics.p95_ms;
           Util.f2 m.Metrics.p99_ms;
           Util.f2 m.Metrics.max_ms ])
       results);
  Fmt.pr "  exact accounting (client view = server counters): %s@."
    (if !all_match then "ok" else "MISMATCH");
  let warm_ok = warm_restart_exercise ~smoke () in
  Fmt.pr "  warm restart (factors + clock bit-identical after reload): %s@."
    (if warm_ok then "ok" else "MISMATCH");
  if not (!all_match && warm_ok) then exit 1;
  let fields =
    List.concat_map
      (fun (domains, ok, _rejected, wall, m) ->
        [ Fmt.str {|"qps_d%d":%.1f|} domains (float_of_int ok /. wall);
          Fmt.str {|"p50_d%d_ms":%.3f|} domains m.Metrics.p50_ms;
          Fmt.str {|"p99_d%d_ms":%.3f|} domains m.Metrics.p99_ms ])
      results
    @ [ Fmt.str {|"clients":%d|} clients;
        Fmt.str {|"queries_per_point":%d|} (clients * rounds * List.length workload);
        Fmt.str {|"counters_match":%b|} !all_match;
        Fmt.str {|"warm_restart_ok":%b|} warm_ok ]
  in
  Util.bench_json ?json_path ~bench:"serve"
    ~domains:(List.fold_left max 1 domain_counts)
    fields
