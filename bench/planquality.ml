(* Table T2 — plan quality: the simulated execution time of the plan chosen
   by the optimizer under the generic-only cost model vs the blended model,
   against the oracle (cheapest measured plan among all enumerated ones).
   This is the end-to-end payoff of better cost estimates.

   Second section — estimation quality: mean estimated-vs-actual cardinality
   error on a skewed synthetic workload, seed constants (uniform assumption)
   vs histograms + cardinality feedback (DESIGN.md §11). The acceptance gate
   for the statistics subsystem is a ≥ 2x error reduction. *)

open Disco_common
open Disco_catalog
open Disco_core
open Disco_storage
open Disco_exec
open Disco_wrapper
open Disco_mediator

let queries =
  [ ( "Q1: Employee x Listing (cross-source, WAN side)",
      "select e.id, l.rating from Employee e, Listing l \
       where l.emp_id = e.id and e.salary > 28000" );
    ( "Q2: Task x Project (single source, join placement)",
      "select t.id, p.kind from Task t, Project p \
       where t.project_id = p.id and t.hours > 390" );
    ( "Q3: Employee x Project x Document (three sources)",
      "select e.id, d.doc_id from Employee e, Project p, Document d \
       where e.dept_id = p.dept_id and d.project_id = p.id \
       and e.salary > 29000 and p.cost < 5500" );
    (* The generic model believes every wrapper has a cheap sort-merge join;
       the object store only has nested-loop and index joins, and its
       exported rule says so — the classic strategy mismatch of §1(ii). *)
    ( "Q4: Task x Project on an unindexed attribute (strategy mismatch)",
      "select t.id from Task t, Project p \
       where t.hours = p.hours_budget and t.id <= 1000 and p.id <= 40" ) ]

let make_federation ?(smoke = false) ~with_rules () =
  let wrappers =
    if smoke then Demo.make ~sizes:Demo.small_sizes () else Demo.make ()
  in
  let wrappers = if with_rules then wrappers else List.map Wrapper.without_rules wrappers in
  let med = Mediator.create () in
  List.iter (Mediator.register med) wrappers;
  (med, wrappers)

let clear_buffers wrappers =
  List.iter (fun w -> Buffer.clear w.Wrapper.buffer) wrappers

(* Execute an already-chosen plan and return its measured total time. *)
let execute med wrappers plan =
  clear_buffers wrappers;
  let physical = Mediator.to_physical med plan in
  let _, v = Run.measure (Mediator.mediator_run_env med) physical in
  v.Run.total_time

let oracle med wrappers sql =
  let q = Disco_sql.Sql.parse sql in
  let resolved = Mediator.resolve med q in
  let plans = Optimizer.enumerate resolved.Mediator.spec in
  List.fold_left
    (fun best plan ->
      let t = execute med wrappers (Mediator.decorate resolved plan) in
      Float.min best t)
    infinity plans

(* --- Estimation quality on a skewed synthetic source ------------------------ *)

(* One table whose value distribution breaks the uniform assumption two ways:
   [v] clusters 90% of its mass in the top tenth of its range, and [w] is a
   deterministic function of [v] (1 above the cluster threshold, else 0), so
   conjunctions over (v, w) also break the independence assumption —
   histograms fix the former, cardinality feedback the latter. *)
let skew_threshold = 9000

let make_skew_source ~rows =
  let rng = Rng.create ~seed:7 in
  let schema =
    Schema.collection "Val"
      [ ("id", Schema.Tint); ("v", Schema.Tint); ("w", Schema.Tint) ]
  in
  let data =
    List.init rows (fun i ->
        let v =
          if Rng.int rng 10 < 9 then skew_threshold + 1 + Rng.int rng 1000
          else Rng.int rng (skew_threshold + 1)
        in
        [| Constant.Int (i + 1);
           Constant.Int v;
           Constant.Int (if v > skew_threshold then 1 else 0) |])
  in
  let table =
    Table.create ~name:"Val" ~schema ~object_size:24 ~index_on:[ "id" ] data
  in
  Wrapper.create ~name:"skew" ~engine:Costs.relational ~network:Costs.lan [ table ]

let skew_workload =
  [ "select val.id from Val val where val.v > 9000";
    "select val.id from Val val where val.v > 5000";
    "select val.id from Val val where val.v <= 2000";
    "select val.id from Val val where val.v > 9900";
    "select val.id from Val val where val.w = 1";
    "select val.id from Val val where val.v > 8000 and val.w = 0" ]

(* Mean relative cardinality error of the workload under one mediator,
   measured after [warmup] executions of the whole workload (feedback — when
   on — folds those observations into corrections and histograms). *)
let cardinality_error ~stats_mode ~rows ~warmup () =
  let w = make_skew_source ~rows in
  let med = Mediator.create ~stats_mode () in
  Mediator.register med w;
  for _ = 1 to warmup do
    List.iter (fun sql -> ignore (Mediator.run_query med sql)) skew_workload
  done;
  let errs =
    List.map
      (fun sql ->
        let a = Mediator.run_query med sql in
        let est = Estimator.count_object a.Mediator.estimate in
        let real = float_of_int (List.length a.Mediator.rows) in
        Util.rel_err ~est ~real)
      skew_workload
  in
  Util.mean errs

let print ?json_path ?(smoke = false) () =
  Util.section
    "T2 — plan quality: measured time of the chosen plan (ms), generic vs blended";
  let med_g, w_g = make_federation ~smoke ~with_rules:false () in
  let med_b, w_b = make_federation ~smoke ~with_rules:true () in
  let t2 =
    List.map
      (fun (label, sql) ->
        let plan_g, _ = Mediator.plan_query med_g sql in
        let plan_b, _ = Mediator.plan_query med_b sql in
        let t_g = execute med_g w_g plan_g in
        let t_b = execute med_b w_b plan_b in
        let t_o = oracle med_b w_b sql in
        (label, t_g, t_b, t_o))
      queries
  in
  Util.table
    [ "query"; "generic plan"; "blended plan"; "oracle"; "gen/oracle"; "blend/oracle" ]
    (List.map
       (fun (label, t_g, t_b, t_o) ->
         [ label;
           Util.f1 t_g;
           Util.f1 t_b;
           Util.f1 t_o;
           Util.f2 (t_g /. t_o);
           Util.f2 (t_b /. t_o) ])
       t2);
  Util.section
    "T2b — estimation quality: mean relative cardinality error on the skewed \
     workload";
  let rows = if smoke then 1200 else 4000 in
  let warmup = if smoke then 2 else 4 in
  let err_off = cardinality_error ~stats_mode:Mediator.Stats_off ~rows ~warmup () in
  let err_hist =
    cardinality_error
      ~stats_mode:(Mediator.Stats_feedback History.default_feedback)
      ~rows ~warmup:0 ()
  in
  let err_fb =
    cardinality_error
      ~stats_mode:(Mediator.Stats_feedback History.default_feedback)
      ~rows ~warmup ()
  in
  let improvement = err_off /. Float.max err_fb 1e-9 in
  Util.table
    [ "configuration"; "mean rel. cardinality error" ]
    [ [ "seed constants (stats off)"; Util.f2 err_off ];
      [ "histograms, no feedback yet"; Util.f2 err_hist ];
      [ "histograms + feedback"; Util.f2 err_fb ] ];
  Fmt.pr "  error reduction (off / histograms+feedback): %.1fx %s@."
    improvement
    (if improvement >= 2. then "(gate >= 2x: ok)" else "(gate >= 2x: FAILED)");
  let domains = (Mediator.create ()) |> Mediator.domains in
  Util.bench_json ?json_path ~bench:"planquality" ~domains
    [ Fmt.str {|"mean_err_off":%.4f|} err_off;
      Fmt.str {|"mean_err_hist":%.4f|} err_hist;
      Fmt.str {|"mean_err_feedback":%.4f|} err_fb;
      Fmt.str {|"improvement":%.2f|} improvement;
      Fmt.str {|"gate_2x":%b|} (improvement >= 2.) ]
