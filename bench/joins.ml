(* joins — scalable join enumeration over synthetic wide federations
   (DESIGN.md §15).

   Chain / star / clique / random join graphs at 5..50 sources, optimized
   by each enumeration engine where it is feasible:

   - [Dp]    — the subset-size dynamic program (the pre-DPccp core), kept
               as the differential baseline. Its work is exponential in the
               relation count regardless of graph shape.
   - [Dpccp] — connected-subgraph / complement enumeration: work
               proportional to the number of csg–cmp pairs the graph
               actually has (cubic on chains).
   - [Greedy] — GOO with bounded DPccp window improvement; the engine
               [Auto] hands over to above the threshold.

   Assertions and gates:
   - wherever Dp and Dpccp both run, the chosen plan, its cost, and the
     [plans_considered]/[dp_entries] counters are bit-identical;
   - at chain-12, Dp examines >= 10x more csg–cmp pairs than Dpccp (the
     enumeration-work gate: cost evaluations are identical by construction,
     the enumeration around them is what DPccp collapses);
   - every sparse 50-source shape (chain/star/random) optimizes by greedy in
     under 100 ms; clique-50 in under 500 ms — its query carries n(n-1)/2 =
     1225 join predicates, so every one of its ~n^2/2 pair rankings is an
     estimation over wide predicate conjunctions: the extra factor is the
     cost model's predicate scaling, not enumeration (exact DP on a mere
     clique-10 already takes seconds). Every 50-source decorated plan passes
     whole-plan verification with zero errors;
   - chain-50 runs end to end through [Mediator.run_query]. *)

open Disco_algebra
open Disco_wrapper
open Disco_mediator

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, 1000. *. (Unix.gettimeofday () -. t0))

let fed ~n ~rows =
  let med = Mediator.create () in
  List.iter (Mediator.register med) (Demo.synthetic ~rows ~n ());
  med

let spec_of med sql = (Mediator.resolve med (Disco_sql.Sql.parse sql)).Mediator.spec

(* Feasibility caps per graph shape: the width up to which an engine's
   enumeration stays tractable (Dp is ~3^n splits on any shape; Dpccp is
   ~3^n pairs on cliques and stars but cubic on chains). *)
let dp_cap = function
  | Demo.Chain -> 14
  | Demo.Star -> 12
  | Demo.Clique -> 10
  | Demo.Random_edges _ -> 10

let ccp_cap = function
  | Demo.Chain -> Optimizer.max_graph_width
  | Demo.Star -> 12
  | Demo.Clique -> 11
  | Demo.Random_edges _ -> 12

type run = {
  plan : Plan.t;
  cost : float;
  ms : float;
  considered : int;
  pairs : int;
  entries : int;
}

let optimize_with ~enum med spec =
  let stats = Optimizer.new_stats () in
  let (plan, cost), ms =
    time (fun () -> Optimizer.optimize ~enum ~stats (Mediator.registry med) spec)
  in
  { plan; cost; ms;
    considered = stats.Optimizer.plans_considered;
    pairs = stats.Optimizer.csg_cmp_pairs;
    entries = stats.Optimizer.dp_entries }

let assert_identical ~where (a : run) (b : run) =
  if Plan.to_string a.plan <> Plan.to_string b.plan then
    Fmt.failwith "joins: %s: Dp and Dpccp chose different plans" where;
  if Int64.bits_of_float a.cost <> Int64.bits_of_float b.cost then
    Fmt.failwith "joins: %s: Dp and Dpccp costs differ (%g vs %g)" where a.cost
      b.cost;
  if a.considered <> b.considered then
    Fmt.failwith "joins: %s: plans_considered differ (%d vs %d)" where
      a.considered b.considered;
  if a.entries <> b.entries then
    Fmt.failwith "joins: %s: dp_entries differ (%d vs %d)" where a.entries
      b.entries

let shapes n =
  [ ("chain", Demo.Chain);
    ("star", Demo.Star);
    ("clique", Demo.Clique);
    ("random", Demo.Random_edges (max 1 (n / 2))) ]

let print ?(smoke = false) ?json_path () =
  Fmt.pr "== joins: scalable join enumeration (chain/star/clique/random) ==@.";
  let rows = if smoke then 40 else 200 in
  let sizes = [ 5; 10; 15; 20; 35; 50 ] in
  let table_rows = ref [] in
  let add_row cells = table_rows := cells :: !table_rows in
  let identical = ref 0 in
  let greedy50 = Hashtbl.create 8 in
  List.iter
    (fun n ->
      let med = fed ~n ~rows in
      List.iter
        (fun (shape_name, shape) ->
          let where = Fmt.str "%s-%d" shape_name n in
          let spec = spec_of med (Demo.synthetic_sql ~shape ~n ()) in
          let run_engine name enum =
            let r = optimize_with ~enum med spec in
            add_row
              [ where; name; Fmt.str "%.2f" r.ms; string_of_int r.considered;
                string_of_int r.pairs; string_of_int r.entries;
                Fmt.str "%.0f" r.cost ];
            r
          in
          let dp =
            if n <= dp_cap shape then Some (run_engine "dp" Optimizer.Dp)
            else None
          in
          let ccp =
            if n <= ccp_cap shape then Some (run_engine "dpccp" Optimizer.Dpccp)
            else None
          in
          (match dp, ccp with
           | Some a, Some b -> assert_identical ~where a b; incr identical
           | _ -> ());
          let greedy = run_engine "greedy" Optimizer.Greedy in
          (match ccp with
           | Some b when b.cost > 0. ->
             add_row
               [ where; "ratio"; ""; ""; "";
                 "greedy/exact"; Fmt.str "%.3f" (greedy.cost /. b.cost) ]
           | _ -> ());
          if n = 50 then Hashtbl.replace greedy50 shape_name greedy.ms)
        (shapes n))
    sizes;
  Util.table
    [ "graph"; "engine"; "ms"; "considered"; "csg-cmp"; "dp-entries"; "cost" ]
    (List.rev !table_rows);
  Fmt.pr "  %d Dp/Dpccp identity checks passed@." !identical;

  (* --- gate: enumeration work at chain-12, Dp vs DPccp ------------------- *)
  let med12 = fed ~n:12 ~rows in
  let spec12 = spec_of med12 (Demo.synthetic_sql ~shape:Demo.Chain ~n:12 ()) in
  let dp12 = optimize_with ~enum:Optimizer.Dp med12 spec12 in
  let ccp12 = optimize_with ~enum:Optimizer.Dpccp med12 spec12 in
  assert_identical ~where:"chain-12 (gate)" dp12 ccp12;
  let ratio = float_of_int dp12.pairs /. float_of_int (max ccp12.pairs 1) in
  Fmt.pr "  chain-12 enumeration work: dp %d pairs, dpccp %d pairs (%.1fx)@."
    dp12.pairs ccp12.pairs ratio;
  if ratio < 10. then
    Fmt.failwith
      "joins: chain-12 enumeration-work ratio %.1fx below the 10x gate" ratio;

  (* --- gate: 50-source greedy latency, plans verify clean ----------------
     Sparse shapes gate at 100 ms. The clique's 1225-predicate query makes
     each pair ranking an estimation over wide conjunctions — a cost-model
     scaling any enumerator pays — so it gates at 500 ms. *)
  List.iter
    (fun (shape_name, _) ->
      let ms = try Hashtbl.find greedy50 shape_name with Not_found -> nan in
      let budget = if shape_name = "clique" then 500. else 100. in
      Fmt.pr "  %s-50 greedy optimize: %.2f ms (gate %.0f ms)@." shape_name ms
        budget;
      if not (ms <= budget) then
        Fmt.failwith "joins: %s-50 greedy took %.1f ms (gate: %.0f ms)"
          shape_name ms budget)
    (shapes 50);
  let med50 = fed ~n:50 ~rows in
  List.iter
    (fun (shape_name, shape) ->
      let sql = Demo.synthetic_sql ~shape ~n:50 () in
      let plan, _cost = Mediator.plan_query med50 sql in
      let errs =
        Disco_analysis.Plancheck.errors (Mediator.verify_plan med50 plan)
      in
      if errs <> [] then
        Fmt.failwith "joins: %s-50 plan has %d verification error(s)"
          shape_name (List.length errs))
    (shapes 50);
  Fmt.pr "  50-source plans verify clean (all shapes)@.";

  (* --- chain-50 end to end ----------------------------------------------- *)
  let e2e_med = fed ~n:50 ~rows:(if smoke then 20 else 60) in
  let answer, e2e_ms =
    time (fun () ->
        Mediator.run_query e2e_med (Demo.synthetic_sql ~shape:Demo.Chain ~n:50 ()))
  in
  Fmt.pr "  chain-50 end to end: %d rows in %.1f ms (%d replans)@."
    (List.length answer.Mediator.rows) e2e_ms answer.Mediator.replans;

  let os = Mediator.optimizer_stats e2e_med in
  Util.bench_json ?json_path ~bench:"joins" ~domains:(Mediator.domains e2e_med)
    [ Fmt.str {|"rows_per_relation":%d|} rows;
      Fmt.str {|"identity_checks":%d|} !identical;
      Fmt.str {|"chain12_dp_pairs":%d|} dp12.pairs;
      Fmt.str {|"chain12_dpccp_pairs":%d|} ccp12.pairs;
      Fmt.str {|"chain12_pair_ratio":%.2f|} ratio;
      Fmt.str {|"greedy50_chain_ms":%.3f|}
        (try Hashtbl.find greedy50 "chain" with Not_found -> nan);
      Fmt.str {|"greedy50_star_ms":%.3f|}
        (try Hashtbl.find greedy50 "star" with Not_found -> nan);
      Fmt.str {|"greedy50_clique_ms":%.3f|}
        (try Hashtbl.find greedy50 "clique" with Not_found -> nan);
      Fmt.str {|"greedy50_random_ms":%.3f|}
        (try Hashtbl.find greedy50 "random" with Not_found -> nan);
      Fmt.str {|"chain50_e2e_ms":%.1f|} e2e_ms;
      Fmt.str {|"chain50_e2e_rows":%d|} (List.length answer.Mediator.rows);
      Fmt.str {|"e2e_csg_cmp_pairs":%d|} os.Optimizer.csg_cmp_pairs;
      Fmt.str {|"e2e_dp_entries":%d|} os.Optimizer.dp_entries ]
