(* Domain-parallel plan search and scatter-gather submit execution: wall-clock
   speedup curves over 1..N domains, with bit-identity checked at every point.

   Two curves:

   1. optimize — plan_query over an OO7 join workload (the subset-DP
      parallelizes per subset size; caching off so every repetition pays the
      full search);
   2. execute — run_query over the demo federation (submits to distinct
      sources scatter across the pool; all accounting gathers sequentially).

   Parallelism here is an implementation detail of the mediator, never of the
   model: at every domain count the chosen plan, its estimated cost and the
   measured (simulated) timings must be bit-identical to --domains 1. The
   speedup gate (>= 2x optimize-time at 4 domains) only applies on hosts that
   actually have 4 cores — Domain.recommended_domain_count reports the
   parallelism the runtime can deliver, and a 1-core container cannot show
   wall-clock speedup no matter how well work is distributed. *)

open Disco_algebra
open Disco_exec
open Disco_wrapper
open Disco_mediator

let bits = Int64.bits_of_float

(* Join-heavy OO7 queries: the DP's work grows with the number of relations,
   so four-relation chains give the pool enough per-size candidates to
   amortize the fork/join barrier. *)
let oo7_workload =
  [ "select a.id from AtomicPart a, Connection c \
     where c.fromId = a.id and a.buildDate < 500";
    "select a.id from AtomicPart a, CompositePart p, Document d \
     where a.partOf = p.id and d.partId = p.id and a.x < 50000";
    "select a.id from AtomicPart a, Connection c, CompositePart p, Document d \
     where c.fromId = a.id and a.partOf = p.id and d.partId = p.id \
     and a.buildDate < 500 and c.length < 50" ]

(* Cross-source federation queries whose plans submit to several wrappers —
   the scatter side needs independent sources in one plan to overlap. *)
let federation_workload =
  [ "select e.id from Employee e, Department d \
     where e.dept_id = d.id and d.budget > 150000";
    "select t.id from Project p, Task t where t.project_id = p.id";
    "select l.id from Employee e, Listing l \
     where l.emp_id = e.id and l.rating >= 3" ]

let oo7_mediator ~domains () =
  let med = Mediator.create ~cache:false ~domains () in
  let config = { Disco_oo7.Oo7.small_config with Disco_oo7.Oo7.atomic_parts = 4_000 } in
  Mediator.register med (Disco_oo7.Oo7.make_source ~config ~with_rules:true ());
  med

let federation_mediator ~domains ~smoke () =
  let sizes = if smoke then Demo.small_sizes else Demo.default_sizes in
  let med = Mediator.create ~cache:false ~domains () in
  List.iter (Mediator.register med) (Demo.make ~sizes ());
  med

let wall f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* One optimize-time measurement: fresh mediator at [domains], [reps]
   repetitions of planning the whole workload. Returns the per-query
   (plan, cost-bits) trace of the first pass for the identity check, and the
   best-of-passes wall time in ms. *)
let measure_optimize ~domains ~reps () =
  let med = oo7_mediator ~domains () in
  let plan_all () =
    List.map
      (fun sql ->
        let plan, cost = Mediator.plan_query med sql in
        (Plan.to_string plan, bits cost))
      oo7_workload
  in
  let trace = plan_all () in   (* warm-up: code, minor heap, catalog *)
  let best = ref infinity in
  for _ = 1 to reps do
    let _, s = wall plan_all in
    best := Float.min !best s
  done;
  (trace, !best *. 1000.)

(* One execute-time measurement: run the federation workload end to end.
   History and the simulated clock advance across queries, so the identity
   trace is the whole first pass on a fresh mediator; timing passes then
   measure steady-state execution. *)
let measure_execute ~domains ~reps ~smoke () =
  let trace =
    let med = federation_mediator ~domains ~smoke () in
    List.map
      (fun sql ->
        let a = Mediator.run_query med sql in
        (Plan.to_string a.Mediator.plan,
         bits a.Mediator.measured.Run.total_time,
         List.length a.Mediator.rows))
      federation_workload
  in
  let med = federation_mediator ~domains ~smoke () in
  let run_all () =
    List.iter (fun sql -> ignore (Mediator.run_query med sql)) federation_workload
  in
  run_all ();
  let best = ref infinity in
  for _ = 1 to reps do
    let _, s = wall run_all in
    best := Float.min !best s
  done;
  (trace, !best *. 1000.)

let print ?(smoke = false) ?json_path () =
  Util.section
    (Fmt.str "parallel — domain-parallel plan search and scatter-gather \
              execution%s"
       (if smoke then " (smoke)" else ""));
  let cores = Domain.recommended_domain_count () in
  let max_domains = if smoke then 4 else 8 in
  let counts =
    List.filter (fun d -> d <= max_domains) [ 1; 2; 4; 8 ]
  in
  let opt_reps = if smoke then 1 else 3 in
  let exe_reps = if smoke then 1 else 3 in
  let opt = List.map (fun d -> (d, measure_optimize ~domains:d ~reps:opt_reps ())) counts in
  let exe =
    List.map (fun d -> (d, measure_execute ~domains:d ~reps:exe_reps ~smoke ())) counts
  in
  (* bit-identity at every domain count, against the sequential run *)
  let opt_ref = fst (List.assoc 1 opt) and exe_ref = fst (List.assoc 1 exe) in
  List.iter
    (fun (d, (trace, _)) ->
      if trace <> opt_ref then
        Fmt.failwith
          "parallel bench: optimize at %d domains diverged from sequential" d)
    opt;
  List.iter
    (fun (d, (trace, _)) ->
      if trace <> exe_ref then
        Fmt.failwith
          "parallel bench: execute at %d domains diverged from sequential" d)
    exe;
  let opt_ms d = snd (List.assoc d opt) and exe_ms d = snd (List.assoc d exe) in
  Util.table
    [ "domains"; "optimize ms"; "opt speedup"; "execute ms"; "exe speedup" ]
    (List.map
       (fun d ->
         [ string_of_int d;
           Util.f1 (opt_ms d);
           Util.f2 (opt_ms 1 /. Float.max (opt_ms d) 1e-9) ^ "x";
           Util.f1 (exe_ms d);
           Util.f2 (exe_ms 1 /. Float.max (exe_ms d) 1e-9) ^ "x" ])
       counts);
  Fmt.pr "  bit-identity: plans, costs and measured timings identical at \
          every domain count (%d cores available)@."
    cores;
  Util.bench_json ?json_path ~bench:"parallel" ~domains:max_domains
    [ Fmt.str {|"smoke":%b|} smoke;
      Fmt.str {|"cores":%d|} cores;
      Fmt.str {|"curve":[%s]|}
        (String.concat ","
           (List.map
              (fun d ->
                Fmt.str
                  {|{"domains":%d,"optimize_ms":%.2f,"optimize_speedup":%.2f,"execute_ms":%.2f,"execute_speedup":%.2f}|}
                  d (opt_ms d)
                  (opt_ms 1 /. Float.max (opt_ms d) 1e-9)
                  (exe_ms d)
                  (exe_ms 1 /. Float.max (exe_ms d) 1e-9))
              counts)) ];
  let gate_domains = 4 in
  if (not smoke) && cores >= gate_domains && List.mem gate_domains counts then begin
    let speedup = opt_ms 1 /. Float.max (opt_ms gate_domains) 1e-9 in
    if speedup < 2. then
      Fmt.failwith
        "parallel bench: optimize speedup %.2fx at %d domains is below the \
         2x target"
        speedup gate_domains;
    Fmt.pr "  optimize speedup %.1fx at %d domains (target >= 2x)@." speedup
      gate_domains
  end
  else if cores < gate_domains then
    Fmt.pr "  speedup gate skipped: host reports %d core(s), and wall-clock \
            speedup needs >= %d@."
      cores gate_domains
