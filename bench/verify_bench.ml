(* Verify bench — latency cost of whole-plan verification on the warm
   plan-cache query path.

   The same federation workload as cachebench, executed end to end through
   [Mediator.run_query] with the plan cache warm, with and without
   [~verify:true]. Verification on this path reuses the answer's own
   estimation tree ([Planbound.check_ann]), so the expected overhead is the
   two checker walks only; the acceptance gate holds it under 5%.

   The differential assertion always runs: verified and unverified
   executions return identical rows (verification is read-only). *)

open Disco_wrapper
open Disco_mediator

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let queries =
  [ "select e.id from Employee e, Department d where e.dept_id = d.id \
     and d.budget > 200000";
    "select e.id from Employee e, Department d, Project p \
     where e.dept_id = d.id and d.id = p.dept_id and e.salary > 20000";
    "select t.id from Project p, Task t where t.project_id = p.id \
     and p.cost < 50000";
    "select e.name, d.city from Employee e, Department d \
     where e.dept_id = d.id order by e.name" ]

let print ?(smoke = false) ?json_path () =
  Fmt.pr "== verify: whole-plan verification overhead (warm plan cache) ==@.";
  let med = Mediator.create () in
  List.iter (Mediator.register med) (Demo.make ~sizes:Demo.small_sizes ());
  let run ~verify () =
    List.iter (fun sql -> ignore (Mediator.run_query ~verify med sql)) queries
  in
  (* differential: identical answers, and every chosen plan verifies clean *)
  List.iter
    (fun sql ->
      let plain = Mediator.run_query ~verify:false med sql in
      let verified = Mediator.run_query ~verify:true med sql in
      if plain.Mediator.rows <> verified.Mediator.rows then
        Fmt.failwith "verifybench: %s: verification changed the answer" sql;
      let errs =
        Disco_analysis.Plancheck.errors
          (Mediator.verify_plan med plain.Mediator.plan)
      in
      if errs <> [] then
        Fmt.failwith "verifybench: %s: chosen plan has %d error finding(s)" sql
          (List.length errs))
    queries;
  let iters = if smoke then 3 else 40 in
  (* both loops run against the same warm cache; interleave a warmup first *)
  run ~verify:false ();
  run ~verify:true ();
  let (), base = time (fun () -> for _ = 1 to iters do run ~verify:false () done) in
  let (), with_verify =
    time (fun () -> for _ = 1 to iters do run ~verify:true () done)
  in
  let per_query t = 1e6 *. t /. float_of_int (iters * List.length queries) in
  let overhead = (with_verify -. base) /. base in
  Fmt.pr "  %d queries x %d iters, warm cache@." (List.length queries) iters;
  Fmt.pr "  plain     %8.1f us/query@." (per_query base);
  Fmt.pr "  verified  %8.1f us/query@." (per_query with_verify);
  Fmt.pr "  overhead  %8.2f%%@." (100. *. overhead);
  let pc = Plancache.counters (Mediator.plancache med) in
  Fmt.pr "  plancache: %d hits, %d misses, %d verify rejects@."
    pc.Plancache.hits pc.Plancache.misses pc.Plancache.verify_rejects;
  Util.bench_json ?json_path ~bench:"verify" ~domains:(Mediator.domains med)
    [ Fmt.str {|"queries":%d|} (List.length queries);
      Fmt.str {|"iters":%d|} iters;
      Fmt.str {|"plain_us_per_query":%.3f|} (per_query base);
      Fmt.str {|"verified_us_per_query":%.3f|} (per_query with_verify);
      Fmt.str {|"overhead_pct":%.3f|} (100. *. overhead);
      Fmt.str {|"verify_rejects":%d|} pc.Plancache.verify_rejects ];
  (* smoke timings are too noisy to gate on a relative bound *)
  if (not smoke) && overhead > 0.05 then
    Fmt.failwith
      "verifybench: verification overhead %.2f%% exceeds the 5%% budget"
      (100. *. overhead)
