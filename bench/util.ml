(* Shared helpers for the benchmark harness: table rendering and summary
   statistics. *)

let hr () = print_endline (String.make 78 '-')

let section title =
  print_newline ();
  hr ();
  Fmt.pr "== %s@." title;
  hr ()

(* Render a table: [header] row then [rows], columns padded to content. *)
let table (header : string list) (rows : string list list) =
  let all = header :: rows in
  let ncols = List.fold_left (fun acc r -> max acc (List.length r)) 0 all in
  let widths = Array.make ncols 0 in
  List.iter
    (fun row ->
      List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row)
    all;
  let render row =
    let cells =
      List.mapi (fun i cell -> cell ^ String.make (widths.(i) - String.length cell) ' ') row
    in
    print_endline ("  " ^ String.concat "  " cells)
  in
  render header;
  print_endline
    ("  " ^ String.concat "  " (Array.to_list (Array.map (fun w -> String.make w '-') widths)));
  List.iter render rows

let f1 x = Fmt.str "%.1f" x
let f2 x = Fmt.str "%.2f" x
let pct x = Fmt.str "%.1f%%" (100. *. x)

let rel_err ~est ~real = Float.abs (est -. real) /. Float.max real 1e-9

let mean xs = List.fold_left ( +. ) 0. xs /. float_of_int (max (List.length xs) 1)

let geomean xs =
  exp (List.fold_left (fun a x -> a +. log (Float.max x 1e-12)) 0. xs
       /. float_of_int (max (List.length xs) 1))

let maximum xs = List.fold_left Float.max neg_infinity xs

(* Emit the one-line machine-readable record every bench ends with, and
   optionally persist it (--json=PATH). [domains] is the domain-pool degree
   the bench ran under — every record carries it so archived CI artifacts
   from parallel and sequential runs stay distinguishable. [fields] are
   pre-rendered `"key":value` JSON members. *)
let bench_json ?json_path ~bench ~domains fields =
  let json =
    Fmt.str {|{"bench":%S,"domains":%d,%s}|} bench domains
      (String.concat "," fields)
  in
  Fmt.pr "  BENCH JSON %s@." json;
  match json_path with
  | Some path ->
    let oc = open_out path in
    output_string oc json;
    output_char oc '\n';
    close_out oc
  | None -> ()
