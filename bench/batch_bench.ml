(* Vectorized batch executor vs tuple-at-a-time: wall-clock rows/sec on the
   scan / filter / hash-join kernels over the OO7 database, plus the OO7
   query workload end to end through the wrapper.

   Both engines charge identical simulated costs by construction (the
   differential suites pin this; the bench re-asserts it on every kernel),
   so the only number that may move is the real clock. The >= 2x speedup
   gate arms at large OO7 scale (DISCO_OO7_SCALE set, not --small): at toy
   sizes the fixed per-query overhead drowns the per-row work the batched
   engine eliminates. *)

open Disco_common
open Disco_algebra
open Disco_storage
open Disco_exec

let bits = Int64.bits_of_float

let wall f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let batch_size =
  match Run.default_mode () with
  | Run.Batched { batch_size } -> batch_size
  | Run.Tuple_at_a_time -> Run.default_batch_size

let env ~hash_join () =
  { Run.engine = Costs.objectstore;
    buffer = Buffer.create ~capacity:4096;
    hash_join;
    adts = [] }

(* One kernel: (name, rows processed per pass, physical plan, hash_join). *)
type kernel = {
  kname : string;
  processed : int;  (* input rows a single pass consumes *)
  plan : Physical.t;
  hj : bool;
}

let kernels (cfg : Disco_oo7.Oo7.config) tables =
  let find name = List.find (fun (t : Table.t) -> t.Table.name = name) tables in
  let atomic = find "AtomicPart" and connection = find "Connection" in
  let scan t b = Physical.Pscan { table = t; binding = b; access = Physical.Full_scan; residual = Pred.True } in
  (* ~50% selectivity: buildDate is uniform on [0, 1000) *)
  let filter_pred = Pred.Cmp ("a.buildDate", Pred.Lt, Constant.Int 500) in
  (* equi-join a 10% id window of AtomicPart against its outgoing
     Connections; the window keeps the join output (and thus the Output-cost
     accounting, identical in both engines) proportional to the input *)
  let window = Pred.Cmp ("a.id", Pred.Le, Constant.Int (cfg.Disco_oo7.Oo7.atomic_parts / 10)) in
  let n_atomic = Table.count atomic and n_conn = Table.count connection in
  [ { kname = "scan"; processed = n_atomic; plan = scan atomic "a"; hj = false };
    { kname = "filter";
      processed = n_atomic;
      plan =
        Physical.Pscan
          { table = atomic; binding = "a"; access = Physical.Full_scan; residual = filter_pred };
      hj = false };
    { kname = "hash-join";
      processed = n_atomic + n_conn;
      plan =
        Physical.Pnested_join
          ( Physical.Pscan
              { table = atomic; binding = "a"; access = Physical.Full_scan; residual = window },
            scan connection "c",
            Pred.Attr_cmp ("a.id", Pred.Eq, "c.fromId") );
      hj = true } ]

(* Best-of-reps wall seconds for one engine on one kernel, plus the measured
   vector for the differential assertion. A warm-up pass precedes timing so
   both engines see the same buffer-pool state. *)
let time_kernel ~reps ~mode k =
  let e = env ~hash_join:k.hj () in
  let vec () =
    match mode with
    | Run.Tuple_at_a_time ->
      Run.vector_of_result (Run.run ~mode (* engine-native result *) e k.plan)
    | Run.Batched { batch_size } ->
      Run.vector_of_batched (Run.run_batched ~batch_size e k.plan)
  in
  let v = vec () in
  let best = ref infinity in
  for _ = 1 to reps do
    let _, s = wall (fun () -> ignore (vec ())) in
    best := Float.min !best s
  done;
  (v, !best)

(* End to end: the OO7 query workload through the wrapper (physical
   translation included), one engine at a time. *)
let time_e2e ~reps ~mode source queries =
  let run_all () =
    List.iter (fun (_, plan) -> ignore (Disco_wrapper.Wrapper.execute ~mode source plan)) queries
  in
  run_all ();
  let best = ref infinity in
  for _ = 1 to reps do
    let _, s = wall run_all in
    best := Float.min !best s
  done;
  !best

let print ?(smoke = false) ?json_path () =
  let scaled = Sys.getenv_opt "DISCO_OO7_SCALE" <> None in
  let cfg =
    if smoke then Disco_oo7.Oo7.small_config else Disco_oo7.Oo7.scale_from_env ()
  in
  Util.section
    (Fmt.str "batch — vectorized executor vs tuple-at-a-time (%d atomic parts%s)"
       cfg.Disco_oo7.Oo7.atomic_parts
       (if smoke then ", smoke" else ""));
  let tables = Disco_oo7.Oo7.make_tables cfg in
  let reps = if smoke then 2 else 3 in
  let results =
    List.map
      (fun k ->
        let vt, st = time_kernel ~reps ~mode:Run.Tuple_at_a_time k in
        let vb, sb = time_kernel ~reps ~mode:(Run.Batched { batch_size }) k in
        (* the two engines must be indistinguishable on everything but the
           wall clock — assert it right here, on the bench's own data *)
        if
          bits vt.Run.count <> bits vb.Run.count
          || bits vt.Run.size <> bits vb.Run.size
          || bits vt.Run.total_time <> bits vb.Run.total_time
          || bits vt.Run.time_first <> bits vb.Run.time_first
        then Fmt.failwith "batch bench: %s diverged from tuple engine" k.kname;
        (k, st, sb))
      (kernels cfg tables)
  in
  let rate k s = float_of_int k.processed /. Float.max s 1e-9 in
  Util.table
    [ "kernel"; "rows"; "tuple ms"; "batch ms"; "tuple Mrow/s"; "batch Mrow/s"; "speedup" ]
    (List.map
       (fun (k, st, sb) ->
         [ k.kname;
           string_of_int k.processed;
           Util.f1 (st *. 1000.);
           Util.f1 (sb *. 1000.);
           Util.f2 (rate k st /. 1e6);
           Util.f2 (rate k sb /. 1e6);
           Util.f2 (st /. Float.max sb 1e-9) ^ "x" ])
       results);
  let source = Disco_wrapper.Wrapper.create ~name:"oo7" ~engine:Costs.objectstore
      ~network:Costs.lan ~buffer_pages:4096 (* rules don't matter for execution *)
      tables
  in
  let queries = Disco_oo7.Oo7.queries cfg in
  let e2e_t = time_e2e ~reps ~mode:Run.Tuple_at_a_time source queries in
  let e2e_b = time_e2e ~reps ~mode:(Run.Batched { batch_size }) source queries in
  Fmt.pr "  e2e OO7 workload: tuple %.1f ms, batched %.1f ms (%.2fx), batch size %d@."
    (e2e_t *. 1000.) (e2e_b *. 1000.)
    (e2e_t /. Float.max e2e_b 1e-9)
    batch_size;
  let speedup (k, st, sb) = (k.kname, st /. Float.max sb 1e-9) in
  let speedups = List.map speedup results in
  Util.bench_json ?json_path ~bench:"batch" ~domains:(Disco_parallel.Pool.env_domains ())
    [ Fmt.str {|"smoke":%b|} smoke;
      Fmt.str {|"scale":%d|} cfg.Disco_oo7.Oo7.atomic_parts;
      Fmt.str {|"batch_size":%d|} batch_size;
      Fmt.str {|"gate_armed":%b|} (scaled && not smoke);
      Fmt.str {|"kernels":[%s]|}
        (String.concat ","
           (List.map
              (fun (k, st, sb) ->
                Fmt.str
                  {|{"kernel":%S,"rows":%d,"tuple_ms":%.2f,"batch_ms":%.2f,"rows_per_sec_tuple":%.0f,"rows_per_sec_batch":%.0f,"speedup":%.2f}|}
                  k.kname k.processed (st *. 1000.) (sb *. 1000.) (rate k st)
                  (rate k sb)
                  (st /. Float.max sb 1e-9))
              results));
      Fmt.str {|"e2e":{"tuple_ms":%.2f,"batch_ms":%.2f,"speedup":%.2f}|}
        (e2e_t *. 1000.) (e2e_b *. 1000.)
        (e2e_t /. Float.max e2e_b 1e-9) ];
  (* the throughput gate: only meaningful at scale, where per-row work
     dominates; a toy database measures constant overheads instead *)
  if scaled && not smoke then
    List.iter
      (fun (name, s) ->
        if s < 2. then
          Fmt.failwith
            "batch bench: %s speedup %.2fx is below the 2x target" name s
        else Fmt.pr "  %s speedup %.1fx (target >= 2x)@." name s)
      speedups
  else
    Fmt.pr "  speedup gate skipped (set DISCO_OO7_SCALE and drop --small to arm)@."
