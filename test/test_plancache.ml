(* The two-level estimation cache, tested two ways:

   - differentially: random queries planned through a cache-enabled and a
     cache-disabled mediator over the same federation must yield the
     identical plan and a bit-identical estimated cost ([Int64.bits_of_float]
     equality, not an epsilon) — and a repeated cached query, now served from
     the warm cross-query cache, must reproduce the same bits;

   - invalidation: every kind of cost-model write — rule registration,
     [let] update via re-registration, calibration adjustment, historical
     feedback (§4.3) — must bump {!Registry.generation}, so a stale cache
     entry is dropped instead of served and re-estimation sees the new
     model. One test per {!Registry} invalidation site. *)

open Disco_common
open Disco_algebra
open Disco_costlang
open Disco_core
open Disco_wrapper
open Disco_mediator

let bits = Int64.bits_of_float

(* --- Differential harness ------------------------------------------------------ *)

(* Two mediators over the same deterministic demo federation: the reference
   (cache disabled: no estimator memo, no plan cache) and the cached one. *)
let reference, cached =
  let mk cache =
    let m = Mediator.create ~cache () in
    List.iter (Mediator.register m) (Demo.make ~sizes:Demo.small_sizes ());
    m
  in
  (mk false, mk true)

(* Query templates spanning the shapes the optimizer sees: single-source
   selections, intra- and cross-source joins, three- and four-way joins,
   decoration (distinct / order by / group by), and an ADT predicate whose
   placement is itself cost-based (§7). *)
let templates =
  [ (fun v -> Fmt.str "select e.id from Employee e where e.salary > %d" (v mod 30_000));
    (fun v ->
      Fmt.str "select e.id, e.name from Employee e where e.age < %d and e.dept_id = %d"
        (v mod 60) (1 + (v mod 20)));
    (fun v ->
      Fmt.str
        "select e.id from Employee e, Department d \
         where e.dept_id = d.id and d.budget > %d"
        (100_000 + (v * 37 mod 300_000)));
    (fun v ->
      Fmt.str
        "select t.id from Project p, Task t where t.project_id = p.id and p.cost < %d"
        (5000 + (v mod 100_000)));
    (fun v ->
      Fmt.str
        "select e.id from Employee e, Department d, Project p \
         where e.dept_id = d.id and d.id = p.dept_id and e.salary > %d"
        (v mod 30_000));
    (fun v ->
      Fmt.str
        "select e.id from Employee e, Department d, Project p, Task t \
         where e.dept_id = d.id and d.id = p.dept_id and p.id = t.project_id \
         and t.hours > %d"
        (v mod 100));
    (fun v ->
      Fmt.str "select l.id from Employee e, Listing l where l.emp_id = e.id \
               and l.rating >= %d"
        (1 + (v mod 5)));
    (fun v ->
      Fmt.str "select distinct d.city from Department d where d.budget > %d"
        (v mod 300_000));
    (fun v ->
      Fmt.str
        "select e.dept_id, count(*) as n from Employee e where e.salary > %d \
         group by e.dept_id order by n desc limit 3"
        (v mod 30_000));
    (fun v ->
      Fmt.str
        "select d.doc_id from Document d \
         where lang_match(d.lang, \"en\") and d.bytes > %d"
        (v mod 100_000)) ]

let prop_differential =
  QCheck2.Test.make ~name:"cached plan and cost = uncached (bit-identical)"
    ~count:200
    QCheck2.Gen.(pair (int_range 0 (List.length templates - 1)) (int_range 0 1_000_000))
    (fun (ti, v) ->
      let sql = (List.nth templates ti) v in
      let p0, c0 = Mediator.plan_query reference sql in
      let p1, c1 = Mediator.plan_query cached sql in
      (* same query again: complete-plan costs now come from the warm
         cross-query cache *)
      let p2, c2 = Mediator.plan_query cached sql in
      Plan.equal p0 p1 && bits c0 = bits c1 && Plan.equal p0 p2 && bits c0 = bits c2)

let prop_objectives_differential =
  QCheck2.Test.make ~name:"differential also holds under TimeFirst" ~count:40
    QCheck2.Gen.(int_range 0 1_000_000)
    (fun v ->
      let sql = (List.nth templates (v mod List.length templates)) v in
      let objective = Optimizer.First_tuple in
      let p0, c0 = Mediator.plan_query ~objective reference sql in
      let p1, c1 = Mediator.plan_query ~objective cached sql in
      Plan.equal p0 p1 && bits c0 = bits c1)

(* Runs after the properties (alcotest preserves suite order): the
   differential pass must actually have exercised the cache, otherwise the
   equalities above prove nothing. *)
let test_cache_was_exercised () =
  let c = Plancache.counters (Mediator.plancache cached) in
  Alcotest.(check bool) "cross-query hits happened" true (c.Plancache.hits > 0);
  Alcotest.(check bool) "misses happened" true (c.Plancache.misses > 0);
  let r = Plancache.counters (Mediator.plancache reference) in
  Alcotest.(check int) "reference cache never consulted" 0
    (r.Plancache.hits + r.Plancache.misses)

let test_no_cache_flag_toggles () =
  let med = Mediator.create ~cache:false () in
  List.iter (Mediator.register med) (Demo.make ~sizes:Demo.small_sizes ());
  Alcotest.(check bool) "disabled at creation" false (Mediator.cache_enabled med);
  let sql = "select e.id from Employee e where e.salary > 1000" in
  ignore (Mediator.plan_query med sql);
  Alcotest.(check int) "no lookups while disabled" 0
    ((Plancache.counters (Mediator.plancache med)).Plancache.misses);
  Mediator.set_cache_enabled med true;
  ignore (Mediator.plan_query med sql);
  Alcotest.(check bool) "lookups once enabled" true
    ((Plancache.counters (Mediator.plancache med)).Plancache.misses > 0)

(* --- Plancache mechanics -------------------------------------------------------- *)

let fresh_registry () =
  let registry = Registry.create (Disco_catalog.Catalog.create ()) in
  Generic.register registry;
  registry

let dummy_plan i =
  Plan.Scan { Plan.source = "src"; collection = Fmt.str "C%d" i; binding = "x" }

let test_fifo_eviction () =
  let registry = fresh_registry () in
  let cache = Plancache.create ~capacity:3 () in
  let add i = Plancache.add cache registry ~objective:Ast.Total_time (dummy_plan i) (float_of_int i) in
  let find i = Plancache.find cache registry ~objective:Ast.Total_time (dummy_plan i) in
  List.iter add [ 1; 2; 3 ];
  Alcotest.(check int) "full" 3 (Plancache.size cache);
  add 4;
  Alcotest.(check int) "capacity kept" 3 (Plancache.size cache);
  Alcotest.(check (option (float 0.))) "oldest evicted" None (find 1);
  Alcotest.(check (option (float 0.))) "newest present" (Some 4.) (find 4);
  Alcotest.(check int) "eviction counted" 1
    (Plancache.counters cache).Plancache.evictions;
  Plancache.clear cache;
  Alcotest.(check int) "cleared" 0 (Plancache.size cache)

(* Regression for the stale-drop / re-add churn bug: dropping a stale entry
   left its FIFO occurrence in the queue, so re-adding the same key pushed a
   duplicate and a later eviction removed the *re-added* (live, newer) entry
   while an older key survived. *)
let test_churn_readd_survives () =
  let registry = fresh_registry () in
  let cache = Plancache.create ~capacity:3 () in
  let add i c = Plancache.add cache registry ~objective:Ast.Total_time (dummy_plan i) c in
  let find i = Plancache.find cache registry ~objective:Ast.Total_time (dummy_plan i) in
  List.iter (fun i -> add i (float_of_int i)) [ 1; 2; 3 ];
  (* a model write makes every entry stale *)
  Registry.register_adt registry ~name:"churn" ~cost_ms:1. ~selectivity:0.5;
  Alcotest.(check (option (float 0.))) "stale entry dropped" None (find 2);
  add 2 20.;
  (* re-added under the new generation *)
  add 4 4.;
  (* evicts key 1, the oldest *)
  add 5 5.;
  (* must evict key 3 — not the freshly re-added key 2 *)
  Alcotest.(check (option (float 0.))) "re-added entry survives churn" (Some 20.) (find 2);
  Alcotest.(check (option (float 0.))) "older key evicted instead" None (find 3);
  Alcotest.(check int) "capacity bound held" 3 (Plancache.size cache)

(* Model-based property: random add/find/invalidate interleavings against an
   insertion-ordered reference model. The cache must never exceed capacity,
   must agree with the model on every lookup (including stale drops), and
   must always evict the oldest resident key first. *)
let prop_cache_model =
  QCheck2.Test.make ~name:"random churn agrees with FIFO reference model"
    ~count:300
    QCheck2.Gen.(list_size (int_range 1 150) (pair (int_range 0 9) (int_range 0 10)))
    (fun ops ->
      let registry = fresh_registry () in
      let capacity = 4 in
      let cache = Plancache.create ~capacity () in
      (* resident entries as (key, cost, generation-at-add), oldest first;
         re-adds keep their queue position is NOT modelled — the cache
         refreshes in place, so position is insertion order of first
         residency, which the list preserves *)
      let model : (int * float * int) list ref = ref [] in
      let adts = ref 0 in
      let ok = ref true in
      List.iteri
        (fun step (key, kind) ->
          (match kind with
           | 0 | 1 | 2 | 3 ->
             let cost = float_of_int step in
             let gen = Registry.generation registry in
             Plancache.add cache registry ~objective:Ast.Total_time (dummy_plan key) cost;
             if List.exists (fun (k, _, _) -> k = key) !model then
               model :=
                 List.map
                   (fun (k, c, g) -> if k = key then (k, cost, gen) else (k, c, g))
                   !model
             else begin
               let m =
                 if List.length !model >= capacity then List.tl !model else !model
               in
               model := m @ [ (key, cost, gen) ]
             end
           | 4 | 5 | 6 | 7 ->
             let expect =
               match List.find_opt (fun (k, _, _) -> k = key) !model with
               | Some (_, c, g) when g = Registry.generation registry -> Some c
               | Some _ ->
                 model := List.filter (fun (k, _, _) -> k <> key) !model;
                 None
               | None -> None
             in
             let got =
               Plancache.find cache registry ~objective:Ast.Total_time (dummy_plan key)
             in
             if got <> expect then ok := false
           | _ ->
             incr adts;
             Registry.register_adt registry ~name:(Fmt.str "adt%d" !adts)
               ~cost_ms:1. ~selectivity:0.5);
          if Plancache.size cache > capacity then ok := false;
          if Plancache.size cache <> List.length !model then ok := false)
        ops;
      !ok)

(* --- Concurrency ----------------------------------------------------------------- *)

(* Regression: [Plancache.counters] used to hand back the cache's live
   mutable record, so a monitoring reader saw the fields keep moving after
   the call — and, polled concurrently, torn combinations like
   [hits + misses <> lookups]. A snapshot must be a frozen copy taken in
   one critical section. *)
let test_counters_snapshot_frozen () =
  let registry = fresh_registry () in
  let cache = Plancache.create ~capacity:8 () in
  for k = 0 to 5 do
    ignore
      (Plancache.find cache registry ~objective:Ast.Total_time (dummy_plan k));
    Plancache.add cache registry ~objective:Ast.Total_time (dummy_plan k) 1.
  done;
  let snap = Plancache.counters cache in
  let before = (snap.Plancache.hits, snap.Plancache.misses) in
  (* churn after the snapshot: hits and misses both move *)
  for k = 0 to 5 do
    ignore
      (Plancache.find cache registry ~objective:Ast.Total_time (dummy_plan k))
  done;
  Alcotest.(check (pair int int))
    "a snapshot is frozen, not a window onto live counters" before
    (snap.Plancache.hits, snap.Plancache.misses);
  Alcotest.(check bool) "and the live counters did move" true
    (Plancache.counters cache <> snap)

let test_counters_never_torn_under_polling () =
  let registry = fresh_registry () in
  let cache = Plancache.create ~capacity:8 () in
  let lookups = 4_000 in
  let done_ = Atomic.make false in
  let writer () =
    for k = 1 to lookups do
      let key = k mod 24 in
      ignore
        (Plancache.find cache registry ~objective:Ast.Total_time (dummy_plan key));
      Plancache.add cache registry ~objective:Ast.Total_time (dummy_plan key) 1.
    done;
    Atomic.set done_ true
  in
  (* each reader polls snapshots while the writer churns: the accounted
     lookup total must never exceed the work issued and never go backwards *)
  let reader () =
    let torn = ref 0 and last = ref 0 in
    while not (Atomic.get done_) do
      let c = Plancache.counters cache in
      let sum = c.Plancache.hits + c.Plancache.misses in
      if sum < !last || sum > lookups then incr torn;
      last := sum
    done;
    !torn
  in
  let readers = List.init 3 (fun _ -> Domain.spawn reader) in
  writer ();
  let torn = List.fold_left (fun acc d -> acc + Domain.join d) 0 readers in
  Alcotest.(check int) "no torn snapshot observed" 0 torn;
  let c = Plancache.counters cache in
  Alcotest.(check int) "final accounting exact" lookups
    (c.Plancache.hits + c.Plancache.misses)

(* Multi-domain hammer: the parallel plan search and scatter-gather paths hit
   one shared cache from every pool slot, so its single lock must keep the
   counters exact, the capacity bound tight and the generation stamp
   authoritative under contention. Four domains interleave find/add churn
   over a key space three times the capacity, in two waves with a cost-model
   write between them. Costs are generation-stamped by construction (each
   add stores the generation it ran under), so a lookup that ever returned a
   pre-bump cost after the bump — a stale entry served past invalidation —
   is detected exactly. *)
let test_multi_domain_hammer () =
  let registry = fresh_registry () in
  let capacity = 8 in
  let cache = Plancache.create ~capacity () in
  let n_domains = 4 and rounds = 500 and keys = 24 in
  let finds = Array.make n_domains 0 in
  let hits = Array.make n_domains 0 in
  let stale_served = Array.make n_domains 0 in
  let worker gen slot () =
    for i = 1 to rounds do
      let key = ((slot * 7) + i) mod keys in
      (match
         Plancache.find cache registry ~objective:Ast.Total_time (dummy_plan key)
       with
       | Some cost ->
         hits.(slot) <- hits.(slot) + 1;
         if bits cost <> bits (float_of_int gen) then
           stale_served.(slot) <- stale_served.(slot) + 1
       | None -> ());
      finds.(slot) <- finds.(slot) + 1;
      Plancache.add cache registry ~objective:Ast.Total_time (dummy_plan key)
        (float_of_int gen);
      if Plancache.size cache > capacity then stale_served.(slot) <- 1000
    done
  in
  let wave () =
    let gen = Registry.generation registry in
    let spawned =
      List.init (n_domains - 1) (fun s -> Domain.spawn (worker gen (s + 1)))
    in
    worker gen 0 ();
    List.iter Domain.join spawned
  in
  wave ();
  (* every resident entry is now stale; wave two must never see a wave-one
     cost *)
  Registry.register_adt registry ~name:"hammer" ~cost_ms:1. ~selectivity:0.5;
  wave ();
  let total a = Array.fold_left ( + ) 0 a in
  Alcotest.(check int) "no stale entry served, capacity never exceeded" 0
    (total stale_served);
  let c = Plancache.counters cache in
  Alcotest.(check int) "hits + misses account for every lookup, exactly"
    (total finds)
    (c.Plancache.hits + c.Plancache.misses);
  Alcotest.(check int) "every hit accounted" (total hits) c.Plancache.hits;
  Alcotest.(check bool) "contention exercised hits" true (c.Plancache.hits > 0);
  Alcotest.(check bool) "capacity churn evicted (none lost: bound held above)"
    true
    (c.Plancache.evictions > 0);
  Alcotest.(check int) "cache full after sustained churn" capacity
    (Plancache.size cache);
  (* deterministic coda: whatever the interleavings above did, a stale entry
     surviving to a lookup is dropped and counted, never served. (The waves
     may evict every pre-bump resident through capacity churn before a find
     reaches it, so the stale counter is only pinned here.) *)
  let stale0 = c.Plancache.stale in
  Registry.register_adt registry ~name:"hammer2" ~cost_ms:1. ~selectivity:0.5;
  let resident =
    List.find
      (fun k ->
        Plancache.find cache registry ~objective:Ast.Total_time (dummy_plan k)
        <> None
        ||
        (Plancache.counters cache).Plancache.stale > stale0)
      (List.init keys Fun.id)
  in
  ignore resident;
  Alcotest.(check int) "post-bump lookup dropped the stale entry, exactly once"
    (stale0 + 1)
    (Plancache.counters cache).Plancache.stale

let test_objectives_are_distinct_keys () =
  let registry = fresh_registry () in
  let cache = Plancache.create () in
  let plan = dummy_plan 1 in
  Plancache.add cache registry ~objective:Ast.Total_time plan 10.;
  Plancache.add cache registry ~objective:Ast.Time_first plan 2.;
  Alcotest.(check (option (float 0.))) "total" (Some 10.)
    (Plancache.find cache registry ~objective:Ast.Total_time plan);
  Alcotest.(check (option (float 0.))) "first" (Some 2.)
    (Plancache.find cache registry ~objective:Ast.Time_first plan)

(* --- Invalidation ---------------------------------------------------------------- *)

(* The test_core fixture: one source with statistics, plus optional extra
   cost-language text. *)
let emp = { Plan.source = "src"; collection = "Employee"; binding = "e" }
let scan_emp = Plan.Scan emp
let sel_salary v = Plan.Select (scan_emp, Pred.Cmp ("e.salary", Pred.Eq, Constant.Int v))

let src_text extra =
  Fmt.str
    {|
    source src {
      interface Employee {
        attribute long id;
        attribute long salary;
        cardinality extent(10000, 1200000, 120);
        cardinality attribute(id, true, 10000, 1, 10000);
        cardinality attribute(salary, true, 100, 1000, 30000);
      }
      %s
    }
    |}
    extra

let base_registry ?(extra = "") () =
  let registry = fresh_registry () in
  ignore (Registry.register_text registry ~what:"src" (src_text extra));
  registry

let total ?(source = "src") registry plan =
  Estimator.total_time
    (Estimator.estimate ~require_vars:[ Ast.Total_time ] ~source registry plan)

(* The full invalidation contract for one mutation: a cached estimate of
   [plan] is served before the write, the write bumps the generation, the
   stale entry is dropped (counted) instead of served, and re-estimation
   yields a different cost — the new model, not the cached one. *)
let check_invalidates what registry ?source plan (mutate : unit -> unit) =
  let cache = Plancache.create () in
  let c0 = total ?source registry plan in
  Plancache.add cache registry ~objective:Ast.Total_time plan c0;
  Alcotest.(check (option (float 0.))) (what ^ ": warm hit") (Some c0)
    (Plancache.find cache registry ~objective:Ast.Total_time plan);
  let g0 = Registry.generation registry in
  mutate ();
  Alcotest.(check bool) (what ^ ": generation bumped") true
    (Registry.generation registry > g0);
  Alcotest.(check (option (float 0.))) (what ^ ": stale entry not served") None
    (Plancache.find cache registry ~objective:Ast.Total_time plan);
  Alcotest.(check int) (what ^ ": stale drop counted") 1
    (Plancache.counters cache).Plancache.stale;
  let c1 = total ?source registry plan in
  Alcotest.(check bool) (what ^ ": re-estimation sees the new model") true
    (bits c1 <> bits c0);
  c1

let parse_rule text = Parser.parse_rule ~what:"test rule" text

let test_invalidate_add_rule () =
  let registry = base_registry () in
  let c1 =
    check_invalidates "add_rule" registry (sel_salary 7) (fun () ->
        ignore
          (Registry.add_rule registry ~source:"src"
             (parse_rule "rule select(Employee, P) { TotalTime = 42; }")))
  in
  Alcotest.(check (float 0.)) "new rule governs" 42. c1

let test_invalidate_let_update () =
  (* a [let] a rule depends on, updated by administrative re-registration *)
  let extra coef =
    Fmt.str "let Coef = %d; rule scan(C) { TotalTime = Coef * 10; }" coef
  in
  let registry = base_registry ~extra:(extra 5) () in
  Alcotest.(check (float 0.)) "initial let" 50. (total registry scan_emp);
  let c1 =
    check_invalidates "let update" registry scan_emp (fun () ->
        ignore
          (Registry.register_source_decl registry
             (Parser.parse_source ~what:"rereg" (src_text (extra 7)))))
  in
  Alcotest.(check (float 0.)) "updated let governs" 70. c1

let test_invalidate_calibration_adjust () =
  (* the adjustment factor applies through the generic submit rule *)
  let registry = base_registry () in
  let plan = Plan.Submit ("src", scan_emp) in
  ignore
    (check_invalidates "set_adjust" registry plan (fun () ->
         Registry.set_adjust registry ~source:"src" 3.))

let test_invalidate_history_exact () =
  let registry = base_registry () in
  let history = History.create ~mode:History.Exact registry in
  let plan = sel_salary 9 in
  let c1 =
    check_invalidates "history exact" registry plan (fun () ->
        History.observe history ~source:"src" ~plan
          ~measured:[ (Ast.Total_time, 1234.) ] ~estimated_total:2000.)
  in
  Alcotest.(check (float 0.)) "measured cost governs" 1234. c1

let test_invalidate_history_adjust () =
  let registry = base_registry () in
  let history = History.create ~mode:(History.Adjust { smoothing = 1.0 }) registry in
  let plan = Plan.Submit ("src", scan_emp) in
  let sub_est = total registry scan_emp in
  ignore
    (check_invalidates "history adjust" registry plan (fun () ->
         History.observe history ~source:"src" ~plan:scan_emp
           ~measured:[ (Ast.Total_time, sub_est *. 2.) ] ~estimated_total:sub_est))

let test_invalidate_remove_query_rules () =
  let registry = base_registry () in
  let plan = sel_salary 11 in
  ignore (Registry.add_query_rule registry ~source:"src" plan [ (Ast.Total_time, 777.) ]);
  let c1 =
    check_invalidates "remove_query_rules" registry plan (fun () ->
        Registry.remove_query_rules registry ~source:"src")
  in
  Alcotest.(check bool) "historical cost gone" true (c1 <> 777.)

let test_invalidate_clear_source () =
  (* clear_source drops the source's rules; the registry falls back to the
     generic model, so the estimate changes *)
  let registry = base_registry ~extra:"rule scan(C) { TotalTime = 99; }" () in
  Alcotest.(check (float 0.)) "source rule governs" 99. (total registry scan_emp);
  let c1 =
    check_invalidates "clear_source" registry scan_emp (fun () ->
        Registry.clear_source registry ~source:"src")
  in
  Alcotest.(check bool) "generic model after clear" true (c1 <> 99.)

let test_invalidate_register_adt () =
  (* ADT cost exports feed adtcost(P)/selectivity; their arrival must
     invalidate too *)
  let registry = base_registry () in
  let g0 = Registry.generation registry in
  Registry.register_adt registry ~name:"contains" ~cost_ms:4.5 ~selectivity:0.1;
  Alcotest.(check bool) "register_adt bumps generation" true
    (Registry.generation registry > g0)

let test_generation_stable_across_reads () =
  (* estimation and cache traffic are reads: no bump *)
  let registry = base_registry () in
  let g0 = Registry.generation registry in
  ignore (total registry scan_emp);
  let cache = Plancache.create () in
  Plancache.add cache registry ~objective:Ast.Total_time scan_emp 1.;
  ignore (Plancache.find cache registry ~objective:Ast.Total_time scan_emp);
  ignore (Registry.matching registry ~source:"src" scan_emp);
  Alcotest.(check int) "reads do not bump" g0 (Registry.generation registry)

let () =
  Alcotest.run "plancache"
    [ ( "differential",
        List.map QCheck_alcotest.to_alcotest
          [ prop_differential; prop_objectives_differential ]
        @ [ Alcotest.test_case "cache exercised" `Quick test_cache_was_exercised;
            Alcotest.test_case "no-cache toggle" `Quick test_no_cache_flag_toggles ] );
      ( "mechanics",
        [ Alcotest.test_case "fifo eviction" `Quick test_fifo_eviction;
          Alcotest.test_case "churn re-add" `Quick test_churn_readd_survives;
          Alcotest.test_case "multi-domain hammer" `Quick test_multi_domain_hammer;
          Alcotest.test_case "counters snapshot frozen" `Quick
            test_counters_snapshot_frozen;
          Alcotest.test_case "counters never torn" `Quick
            test_counters_never_torn_under_polling;
          QCheck_alcotest.to_alcotest prop_cache_model;
          Alcotest.test_case "objective keys" `Quick test_objectives_are_distinct_keys ] );
      ( "invalidation",
        [ Alcotest.test_case "add_rule" `Quick test_invalidate_add_rule;
          Alcotest.test_case "let update" `Quick test_invalidate_let_update;
          Alcotest.test_case "calibration adjust" `Quick test_invalidate_calibration_adjust;
          Alcotest.test_case "history exact" `Quick test_invalidate_history_exact;
          Alcotest.test_case "history adjust" `Quick test_invalidate_history_adjust;
          Alcotest.test_case "remove_query_rules" `Quick test_invalidate_remove_query_rules;
          Alcotest.test_case "clear_source" `Quick test_invalidate_clear_source;
          Alcotest.test_case "register_adt" `Quick test_invalidate_register_adt;
          Alcotest.test_case "reads stable" `Quick test_generation_stable_across_reads ] ) ]
