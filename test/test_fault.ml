(* Fault injection and the mediator's submit policy: injector determinism,
   spec parsing, the zero-profile differential guarantee, retry/backoff with
   replan recovery, the circuit breaker (open, fail-fast, half-open probe)
   and the Adjust-mode feedback of retry latency. *)

open Disco_common
open Disco_algebra
open Disco_core
open Disco_exec
open Disco_wrapper
open Disco_fault
open Disco_mediator

let bits = Int64.bits_of_float

(* Mediator over the small demo federation, with fault profiles installed
   per source name. *)
let make ?policy ?history_mode ?(faults = fun _ -> None) () =
  let wrappers = Demo.make ~sizes:Demo.small_sizes () in
  let med = Mediator.create ?policy ?history_mode () in
  List.iter (Mediator.register med) wrappers;
  List.iter
    (fun w ->
      match faults w.Wrapper.name with
      | Some p -> Wrapper.install_fault w p
      | None -> ())
    wrappers;
  med

let queries =
  [ "select e.id from Employee e where e.salary > 10000";
    "select e.id from Employee e, Department d where e.dept_id = d.id and \
     d.budget > 100000";
    "select l.id from Listing l where l.rating >= 2" ]

(* --- Injector ---------------------------------------------------------------- *)

let test_decide_deterministic () =
  let profile =
    { Fault.none with
      Fault.seed = 42;
      transient_prob = 0.3;
      spike_prob = 0.4;
      spike_ms = 200.;
      stall_prob = 0.1 }
  in
  let run source =
    let inj = Fault.install profile ~source in
    List.init 200 (fun i -> Fault.decide inj ~now:(float_of_int (i * 50)))
  in
  Alcotest.(check bool) "same source, same stream" true (run "web" = run "web");
  Alcotest.(check bool) "different sources, different streams" true
    (run "web" <> run "files")

let test_decide_windows () =
  let profile =
    { Fault.none with Fault.outages = [ (100., 200.) ]; stalls = [ (300., 400.) ] }
  in
  let inj = Fault.install profile ~source:"s" in
  Alcotest.(check bool) "outage refuses" true (Fault.decide inj ~now:150. = Fault.Refuse);
  Alcotest.(check bool) "outage end exclusive" true
    (Fault.decide inj ~now:200. <> Fault.Refuse);
  Alcotest.(check bool) "stall window stalls" true
    (Fault.decide inj ~now:350. = Fault.Stall);
  Alcotest.(check bool) "healthy outside windows" true
    (Fault.decide inj ~now:500. = Fault.Respond 0.)

let test_parse_spec () =
  let specs =
    Fault.parse_spec
      "web:err=0.3@40,spike=0.2@500,seed=7;files:outage=0-5000,stallwin=10-20,stall=0.5"
  in
  (match List.assoc_opt "web" specs with
   | Some p ->
     Alcotest.(check int) "seed" 7 p.Fault.seed;
     Alcotest.(check (float 1e-9)) "err prob" 0.3 p.Fault.transient_prob;
     Alcotest.(check (float 1e-9)) "err ms" 40. p.Fault.transient_ms;
     Alcotest.(check (float 1e-9)) "spike prob" 0.2 p.Fault.spike_prob;
     Alcotest.(check (float 1e-9)) "spike ms" 500. p.Fault.spike_ms
   | None -> Alcotest.fail "web profile missing");
  (match List.assoc_opt "files" specs with
   | Some p ->
     Alcotest.(check bool) "outage" true (p.Fault.outages = [ (0., 5000.) ]);
     Alcotest.(check bool) "stall window" true (p.Fault.stalls = [ (10., 20.) ]);
     Alcotest.(check (float 1e-9)) "stall prob" 0.5 p.Fault.stall_prob
   | None -> Alcotest.fail "files profile missing");
  let rejects s =
    match Fault.parse_spec s with
    | _ -> false
    | exception Invalid_argument _ -> true
  in
  Alcotest.(check bool) "unknown field rejected" true (rejects "web:bogus=1");
  Alcotest.(check bool) "missing source rejected" true (rejects "err=0.5");
  Alcotest.(check bool) "bad number rejected" true (rejects "web:err=lots")

(* --- Zero-profile differential ------------------------------------------------ *)

let test_zero_profile_differential () =
  let plain = make () in
  let inert = make ~faults:(fun _ -> Some Fault.none) () in
  List.iter
    (fun sql ->
      let a = Mediator.run_query plain sql in
      let b = Mediator.run_query inert sql in
      Alcotest.(check bool) ("plan: " ^ sql) true
        (Plan.equal a.Mediator.plan b.Mediator.plan);
      Alcotest.(check bool) ("estimate bits: " ^ sql) true
        (bits (Estimator.total_time a.Mediator.estimate)
         = bits (Estimator.total_time b.Mediator.estimate));
      Alcotest.(check bool) ("measured bits: " ^ sql) true
        (bits a.Mediator.measured.Run.total_time
         = bits b.Mediator.measured.Run.total_time
         && bits a.Mediator.measured.Run.time_first
            = bits b.Mediator.measured.Run.time_first);
      Alcotest.(check int) ("no replans: " ^ sql) 0 (a.Mediator.replans + b.Mediator.replans))
    queries

let test_runs_deterministic () =
  let profile =
    { Fault.none with
      Fault.seed = 9;
      transient_prob = 0.4;
      spike_prob = 0.3;
      spike_ms = 500. }
  in
  let run () =
    let med = make ~faults:(fun _ -> Some profile) () in
    let out =
      List.map
        (fun sql ->
          match Mediator.run_query med sql with
          | a ->
            Fmt.str "%s %Lx %d" (Plan.to_string a.Mediator.plan)
              (bits a.Mediator.measured.Run.total_time)
              a.Mediator.replans
          | exception Mediator.Degraded r ->
            Fmt.str "degraded %d %d" (List.length r.Mediator.failures) r.Mediator.replans)
        queries
    in
    (out, Mediator.now med)
  in
  Alcotest.(check bool) "two runs replay identically" true (run () = run ())

(* --- Retry, replan, breaker ---------------------------------------------------- *)

(* The web source stalls for its first 1500 simulated ms. With a 1000 ms
   timeout and a budget of two attempts the first execution fails at
   t = 2010 (1000 + 10 backoff + 1000) — past the window — so the replan's
   submit succeeds. *)
let test_retry_then_replan_recovers () =
  let policy =
    { Health.default_policy with
      Health.timeout_ms = 1000.;
      max_attempts = 2;
      backoff_base_ms = 10.;
      breaker_threshold = 10 }
  in
  let faults = function
    | "web" -> Some { Fault.none with Fault.stalls = [ (0., 1500.) ] }
    | _ -> None
  in
  let med = make ~policy ~faults () in
  let a = Mediator.run_query med "select l.id from Listing l" in
  Alcotest.(check bool) "rows delivered" true (a.Mediator.rows <> []);
  Alcotest.(check int) "one replan" 1 a.Mediator.replans;
  (match a.Mediator.recovered with
   | [ f ] ->
     Alcotest.(check string) "failed source" "web" f.Run.source;
     Alcotest.(check int) "attempts" 2 f.Run.attempts;
     Alcotest.(check bool) "timeout reason" true (f.Run.reason = Run.Timeout)
   | _ -> Alcotest.fail "expected exactly one recovered failure");
  Alcotest.(check bool) "clock moved past the stall window" true
    (Mediator.now med > 1500.)

(* A permanently stalled source: two exhausted budgets open the breaker
   (threshold 2), the second replan finds no plan, and the accumulated
   failures surface as a structured report. A later query needing the open
   source fails fast with the clear unavailability error. *)
let test_breaker_opens_and_degrades () =
  let policy =
    { Health.default_policy with
      Health.timeout_ms = 1000.;
      max_attempts = 2;
      backoff_base_ms = 100.;
      breaker_threshold = 2;
      breaker_cooldown_ms = 50_000. }
  in
  let faults = function
    | "web" -> Some { Fault.none with Fault.stalls = [ (0., 1e9) ] }
    | _ -> None
  in
  let med = make ~policy ~faults () in
  (match Mediator.run_query med "select l.id from Listing l" with
   | _ -> Alcotest.fail "expected Degraded"
   | exception Mediator.Degraded r ->
     Alcotest.(check int) "two exhausted budgets" 2 (List.length r.Mediator.failures);
     Alcotest.(check int) "both replans used" 2 r.Mediator.replans;
     (match r.Mediator.unavailable with
      | [ (src, until) ] ->
        Alcotest.(check string) "web reported out" "web" src;
        Alcotest.(check bool) "retry time in the future" true (until > Mediator.now med)
      | _ -> Alcotest.fail "expected exactly web unavailable"));
  Alcotest.(check bool) "circuit open" true
    (match Health.state (Mediator.health med) "web" with
     | Health.Open _ -> true
     | _ -> false);
  (* unaffected sources still answer *)
  let ok = Mediator.run_query med "select e.id from Employee e where e.salary > 10000" in
  Alcotest.(check int) "healthy source unaffected" 0 ok.Mediator.replans;
  match Mediator.run_query med "select l.id from Listing l" with
  | _ -> Alcotest.fail "expected Source_unavailable"
  | exception Err.Source_unavailable { source; retry_at_ms } ->
    Alcotest.(check string) "clear error names the source" "web" source;
    Alcotest.(check bool) "and when to retry" true (retry_at_ms > Mediator.now med)

(* After the cooldown the next availability check admits a half-open probe;
   the stall window is over by then, so the probe succeeds and the circuit
   closes. *)
let test_half_open_probe_recovers () =
  let policy =
    { Health.default_policy with
      Health.timeout_ms = 1000.;
      max_attempts = 1;
      breaker_threshold = 1;
      breaker_cooldown_ms = 5_000. }
  in
  let faults = function
    | "web" -> Some { Fault.none with Fault.stalls = [ (0., 3000.) ] }
    | _ -> None
  in
  let med = make ~policy ~faults () in
  (match Mediator.run_query med "select l.id from Listing l" with
   | _ -> Alcotest.fail "expected Degraded"
   | exception Mediator.Degraded _ -> ());
  Alcotest.(check bool) "open after the failure" true
    (match Health.state (Mediator.health med) "web" with
     | Health.Open _ -> true
     | _ -> false);
  Mediator.set_now med 10_000.;
  let a = Mediator.run_query med "select l.id from Listing l" in
  Alcotest.(check bool) "probe answered" true (a.Mediator.rows <> []);
  Alcotest.(check bool) "circuit closed again" true
    (Health.state (Mediator.health med) "web" = Health.Closed)

(* --- Probe admission under concurrency (regression) ----------------------------- *)

(* Hammer [Health.available] from [n] domains at the same instant and count
   how many are admitted. The probe storm bug: every concurrent caller that
   saw an elapsed cooldown flipped the circuit half-open and proceeded, so
   a recovering source was hit by a whole fleet of "single" probes. *)
let hammer_available ?(n = 8) h ~now source =
  let go = Atomic.make false in
  let workers =
    List.init n (fun _ ->
        Domain.spawn (fun () ->
            while not (Atomic.get go) do
              Domain.cpu_relax ()
            done;
            Health.available h ~now source))
  in
  Atomic.set go true;
  let admitted = List.map Domain.join workers in
  List.length (List.filter Fun.id admitted)

let probes_of h source =
  match List.find_opt (fun r -> r.Health.source = source) (Health.report h) with
  | Some r -> r.Health.probed
  | None -> 0

let test_probe_single_admission () =
  let policy =
    { Health.default_policy with
      Health.breaker_threshold = 1;
      breaker_cooldown_ms = 1_000. }
  in
  let h = Health.create ~policy () in
  Health.on_failure h ~now:0. "web" ~reason:"stall";
  Alcotest.(check bool) "circuit open" true
    (match Health.state h "web" with Health.Open _ -> true | _ -> false);
  (* cooldown not yet elapsed: nobody gets in *)
  Alcotest.(check int) "all refused before the cooldown" 0
    (hammer_available h ~now:500. "web");
  (* cooldown elapsed: exactly one concurrent caller wins the probe *)
  Alcotest.(check int) "exactly one admission" 1
    (hammer_available h ~now:2_000. "web");
  Alcotest.(check int) "exactly one probe counted" 1 (probes_of h "web");
  Alcotest.(check bool) "probe in flight" true
    (Health.state h "web" = Health.Half_open { probing = true });
  (* and while that probe is unsettled, a second hammer is shut out *)
  Alcotest.(check int) "no admission while probing" 0
    (hammer_available h ~now:2_500. "web");
  Alcotest.(check int) "probe count unchanged" 1 (probes_of h "web")

(* The full transition cycle under the same concurrent hammer —
   closed → open → half-open → closed, then open → half-open → reopen —
   with exact probe/failure accounting at every step. *)
let test_breaker_transition_hammer () =
  let policy =
    { Health.default_policy with
      Health.breaker_threshold = 2;
      breaker_cooldown_ms = 1_000. }
  in
  let h = Health.create ~policy () in
  (* closed: everyone may plan against the source *)
  Alcotest.(check int) "closed admits all" 8 (hammer_available h ~now:0. "web");
  Health.on_failure h ~now:0. "web" ~reason:"stall";
  Alcotest.(check bool) "below threshold stays closed" true
    (Health.state h "web" = Health.Closed);
  Health.on_failure h ~now:10. "web" ~reason:"stall";
  Alcotest.(check bool) "threshold opens" true
    (match Health.state h "web" with Health.Open _ -> true | _ -> false);
  Alcotest.(check int) "open refuses all" 0 (hammer_available h ~now:500. "web");
  (* cooldown elapses; one probe wins and succeeds: closed again *)
  Alcotest.(check int) "one probe after cooldown" 1
    (hammer_available h ~now:1_500. "web");
  Health.on_success h "web";
  Alcotest.(check bool) "successful probe closes" true
    (Health.state h "web" = Health.Closed);
  (* open it again; this time the probe fails: straight back to open *)
  Health.on_failure h ~now:2_000. "web" ~reason:"stall";
  Health.on_failure h ~now:2_010. "web" ~reason:"stall";
  Alcotest.(check int) "one probe after second cooldown" 1
    (hammer_available h ~now:4_000. "web");
  Health.on_failure h ~now:4_000. "web" ~reason:"stall";
  Alcotest.(check bool) "failed probe reopens" true
    (match Health.state h "web" with Health.Open _ -> true | _ -> false);
  Alcotest.(check int) "reopened circuit refuses all" 0
    (hammer_available h ~now:4_500. "web");
  (* exact accounting across the whole cycle *)
  (match List.find_opt (fun r -> r.Health.source = "web") (Health.report h) with
   | None -> Alcotest.fail "web untracked"
   | Some r ->
     Alcotest.(check int) "probes admitted" 2 r.Health.probed;
     Alcotest.(check int) "failures counted" 5 r.Health.failed;
     Alcotest.(check int) "successes counted" 1 r.Health.ok)

(* A probe admission returned via [release_probe] (the winning query died
   between planning and submit) immediately re-opens admission for one new
   probe — and the lost-probe cooldown is the backstop when nobody calls
   it. *)
let test_probe_release_and_loss () =
  let policy =
    { Health.default_policy with
      Health.breaker_threshold = 1;
      breaker_cooldown_ms = 1_000. }
  in
  let h = Health.create ~policy () in
  Health.on_failure h ~now:0. "web" ~reason:"stall";
  Alcotest.(check int) "probe admitted" 1 (hammer_available h ~now:1_500. "web");
  Health.release_probe h "web";
  Alcotest.(check bool) "released, none in flight" true
    (Health.state h "web" = Health.Half_open { probing = false });
  Alcotest.(check int) "released admission is re-won by exactly one" 1
    (hammer_available h ~now:1_500. "web");
  (* the second admission is never settled or released: after a further
     cooldown it is presumed lost and a new probe is admitted *)
  Alcotest.(check int) "unsettled probe blocks" 0
    (hammer_available h ~now:2_000. "web");
  Alcotest.(check int) "presumed lost after a cooldown" 1
    (hammer_available h ~now:3_000. "web");
  Alcotest.(check int) "three probes accounted" 3 (probes_of h "web")

(* --- History feedback ----------------------------------------------------------- *)

(* Retry/spike latency is charged to the measured TotalTime fed into the
   history, so under Adjust mode a flaky source's adjustment factor rises
   above 1 and its future estimates inflate. *)
let test_adjust_feedback_inflates () =
  let policy = { Health.default_policy with Health.timeout_ms = 1e6 } in
  let faults = function
    | "web" ->
      Some
        { Fault.none with Fault.seed = 1; spike_prob = 1.0; spike_ms = 50_000. }
    | _ -> None
  in
  let med =
    make ~policy ~history_mode:(History.Adjust { smoothing = 1.0 }) ~faults ()
  in
  ignore (Mediator.run_query med "select l.id from Listing l");
  Alcotest.(check bool) "spiky source's adjust factor inflated" true
    (Registry.adjust (Mediator.registry med) ~source:"web" > 1.)

let () =
  Alcotest.run "fault"
    [ ( "injector",
        [ Alcotest.test_case "decide deterministic" `Quick test_decide_deterministic;
          Alcotest.test_case "windows" `Quick test_decide_windows;
          Alcotest.test_case "parse_spec" `Quick test_parse_spec ] );
      ( "differential",
        [ Alcotest.test_case "zero profile inert" `Quick test_zero_profile_differential;
          Alcotest.test_case "runs deterministic" `Quick test_runs_deterministic ] );
      ( "policy",
        [ Alcotest.test_case "retry then replan" `Quick test_retry_then_replan_recovers;
          Alcotest.test_case "breaker opens, degrades" `Quick test_breaker_opens_and_degrades;
          Alcotest.test_case "half-open probe" `Quick test_half_open_probe_recovers ] );
      ( "probe admission",
        [ Alcotest.test_case "single admission under hammer" `Quick
            test_probe_single_admission;
          Alcotest.test_case "transition hammer" `Quick
            test_breaker_transition_hammer;
          Alcotest.test_case "release and loss" `Quick test_probe_release_and_loss ] );
      ( "history",
        [ Alcotest.test_case "adjust feedback" `Quick test_adjust_feedback_inflates ] ) ]
