(* Tests for lib/core: the scope hierarchy, rule matching and specificity,
   the blended registry, the generic model, the cost-evaluation algorithm and
   its dynamic extensions. *)

open Disco_common
open Disco_algebra
open Disco_costlang
open Disco_core

(* --- Fixtures ---------------------------------------------------------------- *)

let emp = { Plan.source = "src"; collection = "Employee"; binding = "e" }
let mgr = { Plan.source = "src"; collection = "Manager"; binding = "m" }

let base_registry ?backend ?(extra = "") () =
  let catalog = Disco_catalog.Catalog.create () in
  let registry = Registry.create ?backend catalog in
  Generic.register registry;
  let text =
    Fmt.str
      {|
      source src {
        interface Employee {
          attribute long id;
          attribute long salary;
          attribute long dept_id;
          attribute string name;
          cardinality extent(10000, 1200000, 120);
          cardinality attribute(id, true, 10000, 1, 10000);
          cardinality attribute(salary, true, 100, 1000, 30000);
          cardinality attribute(dept_id, false, 50, 1, 50);
          cardinality attribute(name, false, 9000, "Adiba", "Valduriez");
        }
        interface Manager {
          attribute long id;
          attribute long emp_id;
          cardinality extent(500, 20000, 40);
          cardinality attribute(id, true, 500, 1, 500);
          cardinality attribute(emp_id, false, 500, 1, 10000);
        }
        %s
      }
      |}
      extra
  in
  ignore (Registry.register_text registry ~what:"src" text);
  registry

let scan_emp = Plan.Scan emp
let sel_salary v = Plan.Select (scan_emp, Pred.Cmp ("e.salary", Pred.Eq, Constant.Int v))

let est ?source registry plan = Estimator.estimate ?source registry plan

let total ?source registry plan = Estimator.total_time (est ?source registry plan)

let var_of ?source registry plan v =
  Option.get (Estimator.var (est ?source registry plan) v)

(* --- Scope ------------------------------------------------------------------- *)

let test_scope_order () =
  let open Scope in
  Alcotest.(check bool) "default lowest" true
    (List.for_all (fun s -> compare Default s <= 0) all);
  Alcotest.(check bool) "query highest" true
    (List.for_all (fun s -> compare Query s >= 0) all);
  Alcotest.(check bool) "wrapper < collection" true (compare Wrapper Collection < 0);
  Alcotest.(check bool) "collection < predicate" true (compare Collection Predicate < 0);
  Alcotest.(check bool) "local between default and wrapper" true
    (compare Default Local < 0 && compare Local Wrapper < 0)

let parse_head s =
  (Parser.parse_rule ~what:"head" (Fmt.str "rule %s { TotalTime = 1; }" s)).Ast.head

let test_classify () =
  let cls ?interface_of ?(local = false) s =
    Rule.classify ?interface_of ~local (parse_head s)
  in
  Alcotest.(check string) "wrapper" "wrapper"
    (Scope.to_string (cls "select(C, P)"));
  Alcotest.(check string) "collection by name" "collection"
    (Scope.to_string (cls "select(Employee, P)"));
  Alcotest.(check string) "collection by interface" "collection"
    (Scope.to_string (cls ~interface_of:"Employee" "select(C, P)"));
  Alcotest.(check string) "predicate" "predicate"
    (Scope.to_string (cls "select(Employee, salary = 77)"));
  Alcotest.(check string) "pred needs collection" "wrapper"
    (Scope.to_string (cls "select(C, salary = 77)"));
  Alcotest.(check string) "local" "local" (Scope.to_string (cls ~local:true "join(C1, C2, P)"))

(* --- Specificity (the matching order of paper §4.2) --------------------------- *)

let test_specificity_paper_order () =
  (* select(R, P) < select(Employee, P) < select(Employee, salary = A)
     < select(Employee, salary = 77); join(R1, R2, P) < join(Employee, Book, P)
     < join(Employee, Book, x1.id = x2.id) *)
  let spec s = Rule.specificity_of_head (parse_head s) in
  let ordered =
    [ "select(R, P)";
      "select(Employee, P)";
      "select(Employee, salary = A)";
      "select(Employee, salary = 77)" ]
  in
  let rec check_increasing = function
    | a :: b :: rest ->
      Alcotest.(check bool) (a ^ " < " ^ b) true (compare (spec a) (spec b) < 0);
      check_increasing (b :: rest)
    | _ -> ()
  in
  check_increasing ordered;
  check_increasing
    [ "join(R1, R2, P)"; "join(Employee, Book, P)"; "join(Employee, Book, x1.id = x2.id)" ];
  (* equal specificity ties *)
  Alcotest.(check bool) "same heads tie" true
    (compare (spec "select(Employee, salary = A)") (spec "select(Employee, salary = A)") = 0)

(* --- Matching ------------------------------------------------------------------ *)

let test_match_scan () =
  (match Rule.match_head (parse_head "scan(C)") scan_emp with
   | Some [ ("C", Rule.Boperand (Rule.Base r)) ] ->
     Alcotest.(check string) "bound collection" "Employee" r.Plan.collection
   | _ -> Alcotest.fail "scan(C) should bind C");
  Alcotest.(check bool) "literal match" true
    (Rule.match_head (parse_head "scan(Employee)") scan_emp <> None);
  Alcotest.(check bool) "literal mismatch" true
    (Rule.match_head (parse_head "scan(Manager)") scan_emp = None)

let test_match_select () =
  let node = sel_salary 77 in
  (match Rule.match_head (parse_head "select(C, A = V)") node with
   | Some bs ->
     Alcotest.(check bool) "A bound" true (List.assoc "A" bs = Rule.Battr "salary");
     Alcotest.(check bool) "V bound" true (List.assoc "V" bs = Rule.Bconst (Constant.Int 77))
   | None -> Alcotest.fail "should match");
  (* literal attribute and constant *)
  Alcotest.(check bool) "salary = 77" true
    (Rule.match_head (parse_head "select(Employee, salary = 77)") node <> None);
  Alcotest.(check bool) "salary = 78 mismatch" true
    (Rule.match_head (parse_head "select(Employee, salary = 78)") node = None);
  Alcotest.(check bool) "wrong operator" true
    (Rule.match_head (parse_head "select(C, A < V)") node = None);
  (* predicate variable matches any predicate *)
  let compound =
    Plan.Select
      ( scan_emp,
        Pred.And
          ( Pred.Cmp ("e.salary", Pred.Gt, Constant.Int 1),
            Pred.Cmp ("e.id", Pred.Lt, Constant.Int 5) ) )
  in
  Alcotest.(check bool) "P matches compound" true
    (Rule.match_head (parse_head "select(C, P)") compound <> None);
  Alcotest.(check bool) "A = V rejects compound" true
    (Rule.match_head (parse_head "select(C, A = V)") compound = None)

let test_match_through_operators () =
  (* a collection-literal head matches operations on that collection through
     selects/projects (the subject relation) *)
  let node = Plan.Select (Plan.Project (sel_salary 1, [ "e.id" ]), Pred.True) in
  Alcotest.(check bool) "subject through project/select" true
    (Rule.match_head (parse_head "select(Employee, P)") node <> None)

let test_match_join () =
  let join =
    Plan.Join (scan_emp, Plan.Scan mgr, Pred.Attr_cmp ("e.id", Pred.Eq, "m.emp_id"))
  in
  (match Rule.match_head (parse_head "join(C1, C2, A = B)") join with
   | Some bs ->
     Alcotest.(check bool) "A" true (List.assoc "A" bs = Rule.Battr "id");
     Alcotest.(check bool) "B" true (List.assoc "B" bs = Rule.Battr "emp_id")
   | None -> Alcotest.fail "join should match");
  Alcotest.(check bool) "literal collections" true
    (Rule.match_head (parse_head "join(Employee, Manager, P)") join <> None);
  Alcotest.(check bool) "swapped literals reject" true
    (Rule.match_head (parse_head "join(Manager, Employee, P)") join = None);
  (* dotted literal attrs match on the unqualified part *)
  Alcotest.(check bool) "dotted attrs" true
    (Rule.match_head (parse_head "join(C1, C2, x1.id = x2.emp_id)") join <> None)

let test_match_submit () =
  let node = Plan.Submit ("src", scan_emp) in
  (match Rule.match_head (parse_head "submit(W, C)") node with
   | Some bs -> Alcotest.(check bool) "W" true (List.assoc "W" bs = Rule.Bname "src")
   | None -> Alcotest.fail "submit should match");
  Alcotest.(check bool) "literal source" true
    (Rule.match_head (parse_head "submit(src, C)") node <> None);
  Alcotest.(check bool) "wrong source" true
    (Rule.match_head (parse_head "submit(other, C)") node = None)

let test_match_same_var_twice () =
  (* join(C, C, P): same variable must unify to the same operand -> cannot
     match a join of two different children *)
  let join = Plan.Join (scan_emp, Plan.Scan mgr, Pred.True) in
  Alcotest.(check bool) "nonlinear pattern rejects" true
    (Rule.match_head (parse_head "join(C, C, P)") join = None)

(* --- Generic model completeness --------------------------------------------------- *)

let test_generic_complete () =
  let registry = base_registry () in
  let plans =
    [ scan_emp;
      sel_salary 5;
      Plan.Project (scan_emp, [ "e.id" ]);
      Plan.Sort (scan_emp, [ ("e.id", Plan.Asc) ]);
      Plan.Join (scan_emp, Plan.Scan mgr, Pred.Attr_cmp ("e.id", Pred.Eq, "m.emp_id"));
      Plan.Union (scan_emp, scan_emp);
      Plan.Dedup scan_emp;
      Plan.Aggregate
        (scan_emp, { Plan.group_by = [ "e.dept_id" ]; aggs = [ (Plan.Count, "", "n") ] });
      Plan.Submit ("src", scan_emp) ]
  in
  List.iter
    (fun p ->
      let ann = est ~source:"src" registry p in
      List.iter
        (fun v ->
          match Estimator.var ann v with
          | Some x ->
            Alcotest.(check bool)
              (Fmt.str "%s of %a finite" (Ast.cost_var_name v) Plan.pp p)
              true
              (Float.is_finite x && x >= 0.)
          | None -> Alcotest.failf "missing %s for %a" (Ast.cost_var_name v) Plan.pp p)
        Ast.all_cost_vars)
    plans

let test_generic_cardinalities () =
  let registry = base_registry () in
  (* scan returns the extent cardinality *)
  Alcotest.(check (float 0.)) "scan count" 10000.
    (var_of ~source:"src" registry scan_emp Ast.Count_object);
  (* equality selection on salary: 10000 / CountDistinct(100) = 100 *)
  Alcotest.(check (float 1.)) "eq select count" 100.
    (var_of ~source:"src" registry (sel_salary 1500) Ast.Count_object);
  (* join cardinality via 1/max(distinct): emp.id distinct 10000,
     mgr.emp_id distinct 500 -> 10000 * 500 / 10000 = 500 (see the note in
     Selest about deviating from the paper's 1/min) *)
  let join =
    Plan.Join (scan_emp, Plan.Scan mgr, Pred.Attr_cmp ("e.id", Pred.Eq, "m.emp_id"))
  in
  Alcotest.(check (float 1.)) "join count (1/max rule)" 500.
    (var_of ~source:"src" registry join Ast.Count_object)

let test_generic_index_beats_seq_when_selective () =
  let registry = base_registry () in
  (* salary is indexed with 100 distinct values: equality is selective, the
     index strategy should win and skip the scan cost *)
  let sel = sel_salary 1500 in
  let ann = est ~source:"src" registry sel in
  let t_sel = Estimator.total_time ann in
  let t_scan = total ~source:"src" registry scan_emp in
  Alcotest.(check bool) "select cheaper than full scan" true (t_sel < t_scan);
  (* an unindexed attribute cannot use the index strategy *)
  let sel_dept = Plan.Select (scan_emp, Pred.Cmp ("e.dept_id", Pred.Eq, Constant.Int 3)) in
  let t_dept = total ~source:"src" registry sel_dept in
  Alcotest.(check bool) "unindexed select pays the scan" true (t_dept > t_scan)

(* --- Blending: overriding and fallback ---------------------------------------------- *)

let test_wrapper_rule_overrides () =
  let registry =
    base_registry ~extra:"rule scan(C) { TotalTime = 999; }" ()
  in
  Alcotest.(check (float 0.)) "wrapper total" 999. (total ~source:"src" registry scan_emp);
  (* other variables still come from the default model *)
  Alcotest.(check (float 0.)) "default count" 10000.
    (var_of ~source:"src" registry scan_emp Ast.Count_object);
  (* provenance records the scopes *)
  let ann = est ~source:"src" registry scan_emp in
  let p v = (Option.get (Estimator.provenance ann v)).Estimator.rule_scope in
  Alcotest.(check string) "total from wrapper" "wrapper" (Scope.to_string (p Ast.Total_time));
  Alcotest.(check string) "count from default" "default"
    (Scope.to_string (p Ast.Count_object))

let test_collection_beats_wrapper () =
  let registry =
    base_registry
      ~extra:
        {| rule scan(C) { TotalTime = 111; }
           rule scan(Employee) { TotalTime = 222; } |}
      ()
  in
  Alcotest.(check (float 0.)) "collection wins on Employee" 222.
    (total ~source:"src" registry scan_emp);
  Alcotest.(check (float 0.)) "wrapper on Manager" 111.
    (total ~source:"src" registry (Plan.Scan mgr))

let test_predicate_beats_collection () =
  let registry =
    base_registry
      ~extra:
        {| rule select(Employee, P) { TotalTime = 111; }
           rule select(Employee, salary = 77) { TotalTime = 222; } |}
      ()
  in
  Alcotest.(check (float 0.)) "predicate scope" 222.
    (total ~source:"src" registry (sel_salary 77));
  Alcotest.(check (float 0.)) "collection scope" 111.
    (total ~source:"src" registry (sel_salary 78))

let test_min_combining_same_level () =
  (* two rules at the same level: all evaluated, lowest wins (§4.2 step 3) *)
  let registry =
    base_registry
      ~extra:
        {| rule scan(C) { TotalTime = 500; }
           rule scan(C) { TotalTime = 300; } |}
      ()
  in
  Alcotest.(check (float 0.)) "min" 300. (total ~source:"src" registry scan_emp)

let test_min_combining_prefers_finite_over_nan () =
  (* regression: the fold compared with [<], under which NaN is never less
     and never greater — a NaN first candidate (here ln(0) * 0) used to
     survive over a later finite same-level rule. Checked on both formula
     backends. *)
  List.iter
    (fun backend ->
      let registry =
        base_registry ~backend
          ~extra:
            {| rule scan(C) { TotalTime = ln(0) * 0; }
               rule scan(C) { TotalTime = 300; } |}
          ()
      in
      let t = total ~source:"src" registry scan_emp in
      Alcotest.(check bool) "not NaN" false (Float.is_nan t);
      Alcotest.(check (float 0.)) "finite candidate wins" 300. t)
    [ Registry.Closure; Registry.Bytecode ]

let test_first_rule_wins_tie_via_order () =
  (* min-combining makes value ties harmless; check both are evaluated by
     using the evals counter *)
  let registry =
    base_registry
      ~extra:
        {| rule scan(C) { TotalTime = 300; }
           rule scan(C) { TotalTime = 300; } |}
      ()
  in
  let evals = ref 0 in
  ignore (Estimator.estimate ~evals ~source:"src" registry scan_emp);
  Alcotest.(check bool) "both formulas evaluated" true (!evals >= 2)

let test_per_variable_fallback () =
  (* the wrapper rule provides only TotalTime; TimeFirst must fall back to a
     less specific rule without losing the TotalTime override (paper §4.2:
     "the scope hierarchy is scanned until the first less-specific rule") *)
  let registry =
    base_registry ~extra:"rule select(Employee, P) { TotalTime = 42; }" ()
  in
  let ann = est ~source:"src" registry (sel_salary 1) in
  Alcotest.(check (float 0.)) "override total" 42. (Estimator.total_time ann);
  let tf = Option.get (Estimator.var ann Ast.Time_first) in
  Alcotest.(check bool) "fallback TimeFirst computed" true (Float.is_finite tf && tf > 0.)

let test_wrapper_lets_and_defs () =
  let registry =
    base_registry
      ~extra:
        {| let Coef = 7;
           def double(x) = x * 2;
           rule scan(C) { TotalTime = double(Coef) * 10; } |}
      ()
  in
  Alcotest.(check (float 0.)) "lets and defs" 140. (total ~source:"src" registry scan_emp)

let test_lets_reference_catalog () =
  let registry =
    base_registry
      ~extra:
        {| let EmpCount = Employee.CountObject;
           rule scan(Employee) { TotalTime = EmpCount / 100; } |}
      ()
  in
  Alcotest.(check (float 0.)) "catalog let" 100. (total ~source:"src" registry scan_emp)

let test_wrapper_rules_fall_back_to_default_lets () =
  (* a wrapper rule may reference generic coefficients such as IO *)
  let registry = base_registry ~extra:"rule scan(C) { TotalTime = IO; }" () in
  Alcotest.(check (float 0.)) "default IO visible" 25. (total ~source:"src" registry scan_emp)

let test_fig13_yao_rule_evaluates () =
  let registry =
    base_registry
      ~extra:
        {| let PageSize = 4096;
           rule select(C, id = V) {
             CountPage = C.TotalSize / PageSize;
             CountObject = C.CountObject * (V - C.id.Min) / (C.id.Max - C.id.Min);
             TotalSize = CountObject * C.ObjectSize;
             TotalTime = IO * CountPage * (1 - exp(-1 * (CountObject / CountPage)))
                         + CountObject * Output;
           } |}
      ()
  in
  let node = Plan.Select (scan_emp, Pred.Cmp ("e.id", Pred.Eq, Constant.Int 5000)) in
  let ann = est ~source:"src" registry node in
  (* CountObject = 10000 * (5000-1)/(10000-1) ~ 4999.5 *)
  Alcotest.(check bool) "count near 5000" true
    (Float.abs (Option.get (Estimator.var ann Ast.Count_object) -. 5000.) < 2.);
  let t = Estimator.total_time ann in
  (* Yao saturates: pages ~ 292, all fetched: IO*292*(1-exp(-17)) + 5000*9 *)
  Alcotest.(check bool) "total in the expected band" true (t > 45000. && t < 55000.)

(* --- Interface inheritance (paper §3.1: "Support of inheritance ... is
   planned"; conclusion: "inheritance hierarchy of wrapper descriptions with
   overriding of cost formulas") ------------------------------------------- *)

let inherit_extra =
  {| interface Boss : Employee {
       attribute long bonus;
       cardinality extent(50, 6000, 120);
       cardinality attribute(bonus, false, 10, 100, 1000);
     }
     rule scan(Employee) { TotalTime = 111; }
     rule scan(Boss) { TotalTime = 222; } |}

let boss = { Plan.source = "src"; collection = "Boss"; binding = "b" }

let test_inheritance_catalog () =
  let registry = base_registry ~extra:inherit_extra () in
  let catalog = Registry.catalog registry in
  Alcotest.(check bool) "Boss is an Employee" true
    (Disco_catalog.Catalog.is_instance catalog ~source:"src" "Boss" "Employee");
  Alcotest.(check bool) "Employee is not a Boss" false
    (Disco_catalog.Catalog.is_instance catalog ~source:"src" "Employee" "Boss");
  Alcotest.(check bool) "reflexive" true
    (Disco_catalog.Catalog.is_instance catalog ~source:"src" "Boss" "Boss");
  Alcotest.(check int) "depth" 1
    (Disco_catalog.Catalog.inheritance_depth catalog ~source:"src" "Boss");
  (* the sub-interface inherits the parent's attributes *)
  let entry = Disco_catalog.Catalog.find_collection catalog ~source:"src" "Boss" in
  let names = Disco_catalog.Schema.attribute_names entry.Disco_catalog.Catalog.schema in
  Alcotest.(check bool) "inherits salary" true (List.mem "salary" names);
  Alcotest.(check bool) "own attribute" true (List.mem "bonus" names)

let test_inheritance_rule_overriding () =
  let registry = base_registry ~extra:inherit_extra () in
  (* the Boss rule overrides the Employee rule on Boss nodes... *)
  Alcotest.(check (float 0.)) "sub-interface rule wins" 222.
    (total ~source:"src" registry (Plan.Scan boss));
  (* ...while Employee nodes still use the Employee rule *)
  Alcotest.(check (float 0.)) "parent rule on parent" 111.
    (total ~source:"src" registry scan_emp);
  (* a parent rule applies to sub-interfaces when not overridden *)
  let registry2 =
    base_registry
      ~extra:
        {| interface Boss : Employee {
             cardinality extent(50, 6000, 120);
           }
           rule scan(Employee) { TotalTime = 111; } |}
      ()
  in
  Alcotest.(check (float 0.)) "inherited rule" 111.
    (total ~source:"src" registry2 (Plan.Scan boss))

let test_inheritance_undeclared_parent () =
  Alcotest.(check bool) "unknown parent raises" true
    (try
       ignore
         (base_registry
            ~extra:"interface Oops : Nothing { cardinality extent(1, 1, 1); }" ());
       false
     with Err.Eval_error _ -> true)

let test_adt_costs () =
  (* the wrapper exports the cost and selectivity of an ADT operation as
     AdtCost_/AdtSel_ parameters (paper §7) *)
  let registry =
    base_registry ~extra:"let AdtCost_heavy = 150; let AdtSel_heavy = 0.02;" ()
  in
  Alcotest.(check (option (float 0.))) "cost harvested" (Some 150.)
    (Registry.adt_cost registry "heavy");
  Alcotest.(check (option (float 0.))) "selectivity harvested" (Some 0.02)
    (Registry.adt_selectivity registry "heavy");
  Alcotest.(check (option (float 0.))) "unknown op" None (Registry.adt_cost registry "nope");
  let apply = Pred.Apply ("heavy", "e.name", Constant.String "x") in
  let node = Plan.Select (scan_emp, apply) in
  let with_adt = total ~source:"src" registry node in
  (* same predicate with an unexported operation: priced as a free predicate *)
  let registry2 = base_registry () in
  let without = total ~source:"src" registry2 node in
  Alcotest.(check bool) "exported cost increases the select estimate" true
    (with_adt > without +. 150. *. 9000.);
  (* exported selectivity drives the cardinality *)
  Alcotest.(check (float 1.)) "cardinality via AdtSel" (10000. *. 0.02)
    (var_of ~source:"src" registry node Ast.Count_object);
  (* default selectivity when not exported *)
  Alcotest.(check (float 1.)) "default ADT selectivity" (10000. *. Selest.default_apply)
    (var_of ~source:"src" registry2 node Ast.Count_object)

let test_reregistration_replaces_rules () =
  (* the administrative re-registration of §2.1: updated rules replace the
     old ones instead of accumulating *)
  let registry = base_registry ~extra:"rule scan(C) { TotalTime = 100; }" () in
  let n0 = Registry.rule_count registry ~source:"src" in
  Alcotest.(check (float 0.)) "initial rule" 100. (total ~source:"src" registry scan_emp);
  (* a query-scope record survives re-registration *)
  ignore
    (Registry.add_query_rule registry ~source:"src" (sel_salary 5)
       [ (Ast.Total_time, 7.) ]);
  let decl =
    Parser.parse_source ~what:"rereg"
      {| source src {
           interface Employee {
             attribute long id;
             attribute long salary;
             cardinality extent(20000, 2400000, 120);
             cardinality attribute(salary, true, 100, 1000, 30000);
           }
           rule scan(C) { TotalTime = 55; }
         } |}
  in
  ignore (Registry.register_source_decl registry decl);
  Alcotest.(check (float 0.)) "updated rule wins" 55. (total ~source:"src" registry scan_emp);
  Alcotest.(check int) "no duplicate accumulation" (n0 + 1)
    (Registry.rule_count registry ~source:"src");
  Alcotest.(check (float 0.)) "refreshed statistics" 20000.
    (var_of ~source:"src" registry scan_emp Ast.Count_object);
  Alcotest.(check (float 0.)) "history survives" 7.
    (total ~source:"src" registry (sel_salary 5))

(* --- Query scope and history ----------------------------------------------------- *)

let test_query_scope_exact () =
  let registry = base_registry () in
  let plan = sel_salary 123 in
  ignore
    (Registry.add_query_rule registry ~source:"src" plan
       [ (Ast.Total_time, 777.); (Ast.Count_object, 3.) ]);
  Alcotest.(check (float 0.)) "recorded total" 777. (total ~source:"src" registry plan);
  Alcotest.(check (float 0.)) "recorded count" 3.
    (var_of ~source:"src" registry plan Ast.Count_object);
  (* a similar but different query is unaffected *)
  Alcotest.(check bool) "other constant unaffected" true
    (total ~source:"src" registry (sel_salary 124) <> 777.);
  Registry.remove_query_rules registry ~source:"src";
  Alcotest.(check bool) "removed" true (total ~source:"src" registry plan <> 777.)

let test_history_exact_mode () =
  let registry = base_registry () in
  let history = History.create ~mode:History.Exact registry in
  let plan = sel_salary 9 in
  History.observe history ~source:"src" ~plan
    ~measured:[ (Ast.Total_time, 1234.); (Ast.Count_object, 5.) ]
    ~estimated_total:2000.;
  Alcotest.(check (float 0.)) "next estimate is the real cost" 1234.
    (total ~source:"src" registry plan)

let test_history_adjust_mode () =
  let registry = base_registry () in
  let history = History.create ~mode:(History.Adjust { smoothing = 1.0 }) registry in
  let plan = scan_emp in
  let est0 = total ~source:"src" registry (Plan.Submit ("src", plan)) in
  (* the source is consistently 2x slower than estimated *)
  let sub_est = total ~source:"src" registry plan in
  History.observe history ~source:"src" ~plan
    ~measured:[ (Ast.Total_time, sub_est *. 2.) ]
    ~estimated_total:sub_est;
  Alcotest.(check (float 1e-6)) "factor learned" 2. (Registry.adjust registry ~source:"src");
  let est1 = total ~source:"src" registry (Plan.Submit ("src", plan)) in
  Alcotest.(check bool) "submit estimate doubled" true
    (Float.abs ((est1 /. est0) -. 2.) < 0.01)

let test_history_forget () =
  let registry = base_registry () in
  let history = History.create ~mode:History.Exact registry in
  History.observe history ~source:"src" ~plan:scan_emp
    ~measured:[ (Ast.Total_time, 1.) ] ~estimated_total:1.;
  Registry.set_adjust registry ~source:"src" 3.;
  History.forget history;
  Alcotest.(check (float 0.)) "adjust reset" 1. (Registry.adjust registry ~source:"src");
  Alcotest.(check bool) "query rules dropped" true (total ~source:"src" registry scan_emp > 1.)

(* --- Estimation algorithm mechanics ------------------------------------------------ *)

let test_abort () =
  let registry = base_registry () in
  Alcotest.check_raises "aborts over bound" Estimator.Aborted (fun () ->
      ignore (Estimator.estimate ~abort_above:1.0 ~source:"src" registry scan_emp))

let test_abort_bound_not_reached () =
  let registry = base_registry () in
  let t = total ~source:"src" registry scan_emp in
  let ann = Estimator.estimate ~abort_above:(t +. 1.) ~source:"src" registry scan_emp in
  Alcotest.(check (float 0.)) "same value" t (Estimator.total_time ann)

let test_subtree_cut () =
  (* a query-scope rule with constant formulas must not visit the child: we
     prove it by giving the child a scan over a collection absent from the
     catalog, which would raise if visited *)
  let registry = base_registry () in
  let ghost = Plan.Scan { Plan.source = "src"; collection = "Ghost"; binding = "g" } in
  let plan = Plan.Select (ghost, Pred.Cmp ("g.x", Pred.Eq, Constant.Int 1)) in
  ignore
    (Registry.add_query_rule registry ~source:"src" plan
       (List.map (fun v -> (v, 5.)) Ast.all_cost_vars));
  let ann = est ~source:"src" registry plan in
  Alcotest.(check (float 0.)) "constant rule" 5. (Estimator.total_time ann);
  (* sanity: without the query rule the same plan fails *)
  Registry.remove_query_rules registry ~source:"src";
  Alcotest.(check bool) "child visit raises" true
    (try
       ignore (total ~source:"src" registry plan);
       false
     with _ -> true)

let test_evals_counter_scales () =
  let registry = base_registry () in
  let e1 = ref 0 and e2 = ref 0 in
  ignore (Estimator.estimate ~evals:e1 ~source:"src" registry scan_emp);
  ignore (Estimator.estimate ~evals:e2 ~source:"src" registry (sel_salary 4));
  Alcotest.(check bool) "larger plan, more evals" true (!e2 > !e1);
  Alcotest.(check bool) "counted" true (!e1 > 0)

let test_division_by_zero_in_rule () =
  let registry =
    base_registry
      ~extra:"rule scan(Employee) { TotalTime = 1 / (Employee.CountObject - 10000); }" ()
  in
  (* the formula is statically fine but divides by zero at evaluation *)
  Alcotest.(check bool) "raises Eval_error" true
    (try
       ignore (total ~source:"src" registry scan_emp);
       false
     with Err.Eval_error _ -> true)

let test_unknown_attribute_in_rule () =
  let registry =
    base_registry ~extra:"rule select(C, P) { TotalTime = C.nonexistent.Min + 1; }" ()
  in
  Alcotest.(check bool) "raises Eval_error" true
    (try
       ignore (total ~source:"src" registry (sel_salary 1));
       false
     with Err.Eval_error _ -> true)

let test_deep_plan_chain () =
  (* a 30-deep chain of selects estimates fine *)
  let registry = base_registry () in
  let rec deep n p =
    if n = 0 then p
    else deep (n - 1) (Plan.Select (p, Pred.Cmp ("e.id", Pred.Gt, Constant.Int n)))
  in
  let plan = deep 30 scan_emp in
  let t = total ~source:"src" registry plan in
  Alcotest.(check bool) "finite" true (Float.is_finite t && t > 0.)

let test_time_next_consistency () =
  (* the default scan rule defines TimeNext = (TotalTime - TimeFirst)/count *)
  let registry = base_registry () in
  let ann = est ~source:"src" registry scan_emp in
  let v x = Option.get (Estimator.var ann x) in
  Alcotest.(check (float 1e-6)) "TimeNext consistent"
    ((v Ast.Total_time -. v Ast.Time_first) /. v Ast.Count_object)
    (v Ast.Time_next)

let test_groupcard () =
  let registry = base_registry () in
  (* grouping on dept_id (50 distinct): estimated group count = 50 *)
  let agg =
    Plan.Aggregate
      (scan_emp, { Plan.group_by = [ "e.dept_id" ]; aggs = [ (Plan.Count, "", "n") ] })
  in
  Alcotest.(check (float 0.)) "group cardinality" 50.
    (var_of ~source:"src" registry agg Ast.Count_object);
  (* empty grouping: one group *)
  let agg0 =
    Plan.Aggregate (scan_emp, { Plan.group_by = []; aggs = [ (Plan.Count, "", "n") ] })
  in
  Alcotest.(check (float 0.)) "global aggregate" 1.
    (var_of ~source:"src" registry agg0 Ast.Count_object)

let test_report_smoke () =
  let registry = base_registry ~extra:"rule scan(C) { TotalTime = 5; }" () in
  let ann = est ~source:"src" registry (Plan.Submit ("src", sel_salary 9)) in
  let s = Estimator.report ann in
  let contains needle =
    let nl = String.length needle and hl = String.length s in
    let rec go i = i + nl <= hl && (String.sub s i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "mentions wrapper scope" true (contains "(wrapper)");
  Alcotest.(check bool) "mentions default scope" true (contains "(default)");
  Alcotest.(check bool) "mentions the collection" true (contains "Employee")

(* --- Derived statistics -------------------------------------------------------- *)

let stats_of registry plan =
  let ann = est ~source:"src" registry plan in
  ignore (Estimator.total_time ann);
  Lazy.force ann.Estimator.stats

let test_derive_scan_and_select () =
  let registry = base_registry () in
  let scan_stats = stats_of registry scan_emp in
  (match Derive.find scan_stats "e.salary" with
   | Some s ->
     Alcotest.(check bool) "indexed" true s.Derive.indexed;
     Alcotest.(check (float 0.)) "distinct" 100. s.Derive.distinct
   | None -> Alcotest.fail "salary stats");
  (* equality select pins the attribute *)
  let sel_stats = stats_of registry (sel_salary 7) in
  (match Derive.find sel_stats "e.salary" with
   | Some s ->
     Alcotest.(check (float 0.)) "distinct 1" 1. s.Derive.distinct;
     Alcotest.(check bool) "min pinned" true (Constant.equal s.Derive.min (Constant.Int 7));
     Alcotest.(check bool) "index cleared" false s.Derive.indexed
   | None -> Alcotest.fail "narrowed stats")

let test_derive_range_narrowing () =
  let registry = base_registry () in
  let node = Plan.Select (scan_emp, Pred.Cmp ("e.salary", Pred.Lt, Constant.Int 15500)) in
  (match Derive.find (stats_of registry node) "e.salary" with
   | Some s ->
     Alcotest.(check bool) "distinct halved" true (s.Derive.distinct < 60.);
     Alcotest.(check bool) "max moved" true (Constant.equal s.Derive.max (Constant.Int 15500))
   | None -> Alcotest.fail "range stats")

let test_derive_join_and_project () =
  let registry = base_registry () in
  let join =
    Plan.Join (scan_emp, Plan.Scan mgr, Pred.Attr_cmp ("e.id", Pred.Eq, "m.emp_id"))
  in
  let js = stats_of registry join in
  Alcotest.(check bool) "has both sides" true
    (Derive.find js "e.salary" <> None && Derive.find js "m.emp_id" <> None);
  Alcotest.(check bool) "join clears indexes" true
    (match Derive.find js "e.id" with Some s -> not s.Derive.indexed | None -> false);
  let pj = stats_of registry (Plan.Project (scan_emp, [ "e.id" ])) in
  Alcotest.(check int) "project restricts" 1 (List.length pj)

let test_find_loose () =
  let registry = base_registry () in
  let s = stats_of registry scan_emp in
  Alcotest.(check bool) "loose by base name" true (Derive.find_loose s "salary" <> None);
  Alcotest.(check bool) "qualified still works" true (Derive.find_loose s "e.salary" <> None);
  Alcotest.(check bool) "missing" true (Derive.find_loose s "zzz" = None)

let test_find_loose_ambiguity () =
  (* two qualified attributes share a bare name, as above a self-join on [id]:
     the bare lookup resolves in derivation order, so the first entry — the
     left operand's attribute — wins, and qualified names stay unambiguous *)
  let left = { Derive.default_stat with Derive.distinct = 11. } in
  let right = { Derive.default_stat with Derive.distinct = 22. } in
  let stats = [ ("e.id", left); ("d.id", right) ] in
  (match Derive.find_loose stats "id" with
   | Some s -> Alcotest.(check (float 0.)) "bare name: left wins" 11. s.Derive.distinct
   | None -> Alcotest.fail "bare lookup");
  (match Derive.find_loose stats "d.id" with
   | Some s -> Alcotest.(check (float 0.)) "qualified picks the side" 22. s.Derive.distinct
   | None -> Alcotest.fail "qualified lookup")

(* --- Selectivity estimation --------------------------------------------------- *)

let test_selest () =
  let registry = base_registry () in
  let ann = est ~source:"src" registry scan_emp in
  let stats = [ Lazy.force ann.Estimator.stats ] in
  let sel p = Selest.of_pred stats p in
  Alcotest.(check (float 1e-9)) "eq = 1/distinct" 0.01
    (sel (Pred.Cmp ("e.salary", Pred.Eq, Constant.Int 5)));
  Alcotest.(check (float 0.01)) "range fraction" 0.5
    (sel (Pred.Cmp ("e.salary", Pred.Lt, Constant.Int 15500)));
  Alcotest.(check (float 1e-9)) "true" 1. (sel Pred.True);
  let a = Pred.Cmp ("e.salary", Pred.Eq, Constant.Int 5) in
  Alcotest.(check (float 1e-9)) "and multiplies" (0.01 *. 0.01) (sel (Pred.And (a, a)));
  Alcotest.(check (float 1e-6)) "not complements" 0.99 (sel (Pred.Not a));
  Alcotest.(check bool) "or combines" true
    (let s = sel (Pred.Or (a, a)) in
     s > 0.01 && s < 0.03);
  Alcotest.(check (float 1e-9)) "unknown attr default" 0.1
    (sel (Pred.Cmp ("e.unknown_attr", Pred.Eq, Constant.Int 1)))

let test_selest_no_stats_fallbacks () =
  (* all six comparison operators against an attribute with no statistics.
     Regression: Ne fell back to the range default (1/3) instead of the
     complement of the equality default. *)
  let registry = base_registry () in
  let ann = est ~source:"src" registry scan_emp in
  let stats = [ Lazy.force ann.Estimator.stats ] in
  let sel op = Selest.of_pred stats (Pred.Cmp ("e.unknown_attr", op, Constant.Int 1)) in
  Alcotest.(check (float 1e-9)) "eq" 0.1 (sel Pred.Eq);
  Alcotest.(check (float 1e-9)) "ne complements eq" 0.9 (sel Pred.Ne);
  List.iter
    (fun op -> Alcotest.(check (float 1e-9)) "range third" (1. /. 3.) (sel op))
    [ Pred.Lt; Pred.Le; Pred.Gt; Pred.Ge ]

(* Regression (the satellite fix this PR pins): a wrapper-exported ADT
   selectivity of NaN used to leak through the clamp —
   [Float.max 0. (Float.min 1. nan)] is NaN — poisoning every estimate the
   predicate participated in. The NaN-safe clamp maps it to 0. *)
let test_of_pred_nan_clamp () =
  let nan_sel _ = Some Float.nan in
  let p = Pred.Apply ("noise", "d.lang", Constant.String "en") in
  let check_clamped label q =
    let s = Selest.of_pred ~apply_sel:nan_sel [ [] ] q in
    Alcotest.(check bool)
      (Fmt.str "%s: %.3f finite and in [0,1]" label s)
      true
      (Float.is_finite s && s >= 0. && s <= 1.)
  in
  check_clamped "bare apply" p;
  check_clamped "conjunction" (Pred.And (p, Pred.True));
  check_clamped "disjunction" (Pred.Or (p, p));
  check_clamped "negation" (Pred.Not p)

(* The paper's §2.3 prose gives join selectivity as 1/Min(CountDistinct); we
   deliberately follow the standard System-R 1/Max (see the DESIGN.md
   deviations table). Pinned so the divergence stays intentional. *)
let test_attr_cmp_uses_one_over_max () =
  let sa = { Derive.default_stat with Derive.distinct = 100. } in
  let sb = { Derive.default_stat with Derive.distinct = 20. } in
  let inputs = [ [ ("a.x", sa) ]; [ ("b.y", sb) ] ] in
  let s = Selest.of_attr_cmp inputs "a.x" "b.y" Pred.Eq in
  Alcotest.(check (float 1e-12)) "1/Max(100, 20)" (1. /. 100.) s;
  Alcotest.(check bool) "explicitly not the paper's 1/Min" true
    (s <> 1. /. 20.)

let prop_selest_bounds =
  QCheck2.Test.make ~name:"sel always in [0,1]" ~count:300
    QCheck2.Gen.(
      let atom =
        oneof
          [ map
              (fun (v, op) ->
                Pred.Cmp
                  ( "e.salary",
                    (match op mod 6 with
                     | 0 -> Pred.Eq
                     | 1 -> Pred.Ne
                     | 2 -> Pred.Lt
                     | 3 -> Pred.Le
                     | 4 -> Pred.Gt
                     | _ -> Pred.Ge),
                    Constant.Int v ))
              (pair (int_range (-100) 40000) (int_range 0 5));
            return (Pred.Attr_cmp ("e.id", Pred.Eq, "m.emp_id"));
            return Pred.True ]
      in
      let rec tree n =
        if n = 0 then atom
        else
          oneof
            [ atom;
              map2 (fun a b -> Pred.And (a, b)) (tree (n - 1)) (tree (n - 1));
              map2 (fun a b -> Pred.Or (a, b)) (tree (n - 1)) (tree (n - 1));
              map (fun a -> Pred.Not a) (tree (n - 1)) ]
      in
      tree 3)
    (fun p ->
      let registry = base_registry () in
      let ann = est ~source:"src" registry scan_emp in
      let s = Selest.of_pred [ Lazy.force ann.Estimator.stats ] p in
      s >= 0. && s <= 1.)

(* --- Feedback-driven statistics (§4.3, DESIGN.md §11) ------------------------- *)

(* Sustained misestimation of one predicate bumps the model generation exactly
   once per streak of [consecutive] drifting observations; the streak restarts
   after firing, and an in-band observation resets it. *)
let test_feedback_drift_bumps_once () =
  let registry = base_registry () in
  let history = History.create registry in
  History.set_feedback history (Some History.default_feedback);
  let plan = sel_salary 9 in
  let g0 = Registry.generation registry in
  let observe ~estimated =
    History.observe ~estimated_count:estimated history ~source:"src" ~plan
      ~measured:[ (Ast.Count_object, 5.) ] ~estimated_total:1.
  in
  let drifting () = observe ~estimated:1000. in
  drifting ();
  drifting ();
  Alcotest.(check int) "no bump before [consecutive] is reached" g0
    (Registry.generation registry);
  drifting ();
  Alcotest.(check int) "third drifting observation bumps exactly once" (g0 + 1)
    (Registry.generation registry);
  drifting ();
  drifting ();
  Alcotest.(check int) "streak restarted after firing" (g0 + 1)
    (Registry.generation registry);
  observe ~estimated:5.;   (* est = actual: in band *)
  drifting ();
  drifting ();
  Alcotest.(check int) "in-band observation cleared the streak" (g0 + 1)
    (Registry.generation registry)

(* The closed loop end to end: the selection over Fact is underestimated 10x
   (perfectly correlated conjuncts — histograms assume independence), so the
   first pass defers the expensive ADT predicate past an expanding join,
   where it actually runs on far more rows than the pushed placement would
   have seen (paper §7's placement decision, made with wrong cardinalities).
   The measured cardinality feeds the §4.3 correction back; the second pass
   plans with the corrected estimate, pushes the ADT into the wrapper, and
   executes measurably cheaper. *)
module Med = Disco_mediator.Mediator
module W = Disco_wrapper.Wrapper

let fanout = 20

let correlated_federation () =
  let open Disco_catalog in
  let open Disco_storage in
  let open Disco_exec in
  let rng = Rng.create ~seed:5 in
  let fact_schema =
    Schema.collection "Fact"
      [ ("id", Schema.Tint); ("dim_id", Schema.Tint); ("v", Schema.Tint);
        ("w", Schema.Tint); ("u", Schema.Tint) ]
  in
  let fact_rows =
    List.init 2000 (fun i ->
        let v = Rng.int rng 1000 in
        (* w = v: the conjunction v < 100 && w < 100 really keeps ~10 %,
           but under independence it is estimated at ~1 % *)
        [| Constant.Int (i + 1); Constant.Int (i mod 50); Constant.Int v;
           Constant.Int v; Constant.Int (Rng.int rng 1000) |])
  in
  let dim_schema =
    Schema.collection "Dim" [ ("k", Schema.Tint); ("pad", Schema.Tint) ]
  in
  let dim_rows =
    (* every key appears [fanout] times: the join expands its input *)
    List.init (50 * fanout) (fun i ->
        [| Constant.Int (i mod 50); Constant.Int (Rng.int rng 100) |])
  in
  let even =
    Adt.make ~name:"even" ~cost_ms:50. ~selectivity:0.5 (fun a _ ->
        match a with Constant.Int x -> x mod 2 = 0 | _ -> false)
  in
  let facts =
    W.create ~name:"facts" ~engine:Costs.relational ~network:Costs.lan
      ~adts:[ even ]
      [ Table.create ~name:"Fact" ~schema:fact_schema ~object_size:24 fact_rows ]
  in
  let dims =
    W.create ~name:"dims" ~engine:Costs.relational ~network:Costs.lan
      [ Table.create ~name:"Dim" ~schema:dim_schema ~object_size:16 dim_rows ]
  in
  let med =
    Med.create ~cache:false
      ~stats_mode:
        (Med.Stats_feedback
           { History.default_feedback with History.smoothing = 1.0 })
      ()
  in
  Med.register med facts;
  Med.register med dims;
  med

let rec pred_has_adt = function
  | Pred.Apply _ -> true
  | Pred.And (a, b) | Pred.Or (a, b) -> pred_has_adt a || pred_has_adt b
  | Pred.Not a -> pred_has_adt a
  | _ -> false

(* Is the ADT predicate evaluated inside a wrapper-submitted subplan? *)
let adt_pushed plan =
  Plan.fold
    (fun acc node ->
      acc
      ||
      match node with
      | Plan.Submit (_, q) ->
        Plan.fold
          (fun a n ->
            a || match n with Plan.Select (_, p) -> pred_has_adt p | _ -> false)
          false q
      | _ -> false)
    false plan

let test_feedback_second_pass_cheaper () =
  let med = correlated_federation () in
  let sql =
    "select f.id from Fact f, Dim d \
     where f.dim_id = d.k and f.v < 100 and f.w < 100 and even(f.u, 0)"
  in
  let pass () =
    let a = Med.run_query med sql in
    ( a.Med.measured.Disco_exec.Run.total_time,
      a.Med.plan,
      List.sort compare (List.map Disco_exec.Tuple.key a.Med.rows) )
  in
  let time1, plan1, rows1 = pass () in
  let time2, plan2, rows2 = pass () in
  Alcotest.(check bool) "first pass defers the ADT past the join" false
    (adt_pushed plan1);
  Alcotest.(check bool) "second pass pushes the ADT into the wrapper" true
    (adt_pushed plan2);
  Alcotest.(check bool)
    (Fmt.str "second-pass plan is cheaper (%.0f < %.0f)" time2 time1)
    true (time2 < time1);
  Alcotest.(check bool) "both passes return the same answer" true
    (rows1 = rows2 && rows1 <> [])

let () =
  Alcotest.run "core"
    [ ( "scope",
        [ Alcotest.test_case "ordering" `Quick test_scope_order;
          Alcotest.test_case "classification" `Quick test_classify ] );
      ( "specificity",
        [ Alcotest.test_case "paper matching order" `Quick test_specificity_paper_order ] );
      ( "matching",
        [ Alcotest.test_case "scan" `Quick test_match_scan;
          Alcotest.test_case "select" `Quick test_match_select;
          Alcotest.test_case "subject through operators" `Quick test_match_through_operators;
          Alcotest.test_case "join" `Quick test_match_join;
          Alcotest.test_case "submit" `Quick test_match_submit;
          Alcotest.test_case "nonlinear patterns" `Quick test_match_same_var_twice ] );
      ( "generic model",
        [ Alcotest.test_case "complete coverage" `Quick test_generic_complete;
          Alcotest.test_case "cardinalities" `Quick test_generic_cardinalities;
          Alcotest.test_case "index strategy selection" `Quick
            test_generic_index_beats_seq_when_selective ] );
      ( "blending",
        [ Alcotest.test_case "wrapper overrides" `Quick test_wrapper_rule_overrides;
          Alcotest.test_case "collection beats wrapper" `Quick test_collection_beats_wrapper;
          Alcotest.test_case "predicate beats collection" `Quick test_predicate_beats_collection;
          Alcotest.test_case "min-combining" `Quick test_min_combining_same_level;
          Alcotest.test_case "min-combining vs NaN" `Quick
            test_min_combining_prefers_finite_over_nan;
          Alcotest.test_case "same-level both evaluated" `Quick test_first_rule_wins_tie_via_order;
          Alcotest.test_case "per-variable fallback" `Quick test_per_variable_fallback;
          Alcotest.test_case "lets and defs" `Quick test_wrapper_lets_and_defs;
          Alcotest.test_case "lets reference catalog" `Quick test_lets_reference_catalog;
          Alcotest.test_case "default lets visible" `Quick
            test_wrapper_rules_fall_back_to_default_lets;
          Alcotest.test_case "fig 13 Yao rule" `Quick test_fig13_yao_rule_evaluates;
          Alcotest.test_case "ADT operation costs" `Quick test_adt_costs;
          Alcotest.test_case "re-registration replaces rules" `Quick
            test_reregistration_replaces_rules ] );
      ( "inheritance",
        [ Alcotest.test_case "catalog" `Quick test_inheritance_catalog;
          Alcotest.test_case "rule overriding" `Quick test_inheritance_rule_overriding;
          Alcotest.test_case "undeclared parent" `Quick test_inheritance_undeclared_parent ] );
      ( "history",
        [ Alcotest.test_case "query-scope exact" `Quick test_query_scope_exact;
          Alcotest.test_case "exact mode" `Quick test_history_exact_mode;
          Alcotest.test_case "adjust mode" `Quick test_history_adjust_mode;
          Alcotest.test_case "forget" `Quick test_history_forget ] );
      ( "estimator",
        [ Alcotest.test_case "abort over bound" `Quick test_abort;
          Alcotest.test_case "no abort under bound" `Quick test_abort_bound_not_reached;
          Alcotest.test_case "subtree cut" `Quick test_subtree_cut;
          Alcotest.test_case "evals counter" `Quick test_evals_counter_scales;
          Alcotest.test_case "division by zero" `Quick test_division_by_zero_in_rule;
          Alcotest.test_case "unknown attribute" `Quick test_unknown_attribute_in_rule;
          Alcotest.test_case "deep plan chain" `Quick test_deep_plan_chain;
          Alcotest.test_case "TimeNext consistency" `Quick test_time_next_consistency;
          Alcotest.test_case "group cardinality" `Quick test_groupcard;
          Alcotest.test_case "report" `Quick test_report_smoke ] );
      ( "derive",
        [ Alcotest.test_case "scan and select" `Quick test_derive_scan_and_select;
          Alcotest.test_case "range narrowing" `Quick test_derive_range_narrowing;
          Alcotest.test_case "join and project" `Quick test_derive_join_and_project;
          Alcotest.test_case "loose lookup" `Quick test_find_loose;
          Alcotest.test_case "loose lookup ambiguity" `Quick
            test_find_loose_ambiguity ] );
      ( "selectivity",
        [ Alcotest.test_case "estimates" `Quick test_selest;
          Alcotest.test_case "no-stats fallbacks" `Quick test_selest_no_stats_fallbacks;
          Alcotest.test_case "NaN-safe clamp" `Quick test_of_pred_nan_clamp;
          Alcotest.test_case "join uses 1/Max, not the paper's 1/Min" `Quick
            test_attr_cmp_uses_one_over_max;
          QCheck_alcotest.to_alcotest prop_selest_bounds ] );
      ( "feedback",
        [ Alcotest.test_case "drift bumps generation exactly once" `Quick
            test_feedback_drift_bumps_once;
          Alcotest.test_case "second pass plans cheaper" `Quick
            test_feedback_second_pass_cheaper ] ) ]
