(* Tests for lib/costlang: lexer, parser, pretty-printer round-trip, formula
   compilation and builtins. The paper's own example rules (Figs 3, 4, 8, 13)
   are used as parser fixtures. *)

open Disco_common
open Disco_algebra
open Disco_costlang

(* --- Lexer -------------------------------------------------------------- *)

let toks text = List.map (fun s -> s.Lexer.tok) (Lexer.tokenize ~what:"test" text)

let test_lexer_basic () =
  Alcotest.(check int) "count" 7 (List.length (toks "a = b + 1.5 ;"));
  (match toks "x <= 10" with
   | [ IDENT "x"; LE; NUMBER n; EOF ] -> Alcotest.(check (float 0.)) "10" 10. n
   | _ -> Alcotest.fail "unexpected tokens");
  (match toks "a <> b" with
   | [ IDENT _; NE; IDENT _; EOF ] -> ()
   | _ -> Alcotest.fail "expected NE")

let test_lexer_numbers () =
  (match toks "1.5e3" with
   | [ NUMBER n; EOF ] -> Alcotest.(check (float 0.)) "1500" 1500. n
   | _ -> Alcotest.fail "exponent");
  (* a dot not followed by a digit is a path separator *)
  (match toks "C.CountObject" with
   | [ IDENT "C"; DOT; IDENT "CountObject"; EOF ] -> ()
   | _ -> Alcotest.fail "path dots");
  (match toks "1.CountObject" with
   | [ NUMBER _; DOT; IDENT _; EOF ] -> ()
   | _ -> Alcotest.fail "number then path dot")

let test_lexer_strings_comments () =
  (match toks {| "hello \"world\"" |} with
   | [ STRING s; EOF ] -> Alcotest.(check string) "escapes" {|hello "world"|} s
   | _ -> Alcotest.fail "string");
  (match toks "a // comment\nb" with
   | [ IDENT "a"; IDENT "b"; EOF ] -> ()
   | _ -> Alcotest.fail "line comment");
  (match toks "a /* multi \n line */ b" with
   | [ IDENT "a"; IDENT "b"; EOF ] -> ()
   | _ -> Alcotest.fail "block comment")

let test_lexer_errors () =
  Alcotest.(check bool) "bad char raises" true
    (try
       ignore (toks "a # b");
       false
     with Err.Parse_error _ -> true);
  Alcotest.(check bool) "unterminated string" true
    (try
       ignore (toks "\"abc");
       false
     with Err.Parse_error _ -> true)

let test_lexer_positions () =
  (try
     ignore (toks "ab\ncd @")
   with Err.Parse_error { line; col; _ } ->
     Alcotest.(check int) "line" 2 line;
     Alcotest.(check int) "col" 4 col)

(* --- Parser: expressions -------------------------------------------------- *)

let pexpr s = Parser.parse_expr ~what:"test" s

let test_expr_precedence () =
  (* 1 + 2 * 3 parses as 1 + (2 * 3) *)
  (match pexpr "1 + 2 * 3" with
   | Ast.Binop (Ast.Add, Ast.Num 1., Ast.Binop (Ast.Mul, Ast.Num 2., Ast.Num 3.)) -> ()
   | e -> Alcotest.failf "bad tree: %a" Pp.expr e);
  (* left associativity: 1 - 2 - 3 = (1 - 2) - 3 *)
  (match pexpr "1 - 2 - 3" with
   | Ast.Binop (Ast.Sub, Ast.Binop (Ast.Sub, _, _), Ast.Num 3.) -> ()
   | e -> Alcotest.failf "bad assoc: %a" Pp.expr e);
  (* parentheses *)
  (match pexpr "(1 + 2) * 3" with
   | Ast.Binop (Ast.Mul, Ast.Binop (Ast.Add, _, _), Ast.Num 3.) -> ()
   | e -> Alcotest.failf "bad parens: %a" Pp.expr e)

let test_expr_paths_calls () =
  (match pexpr "Employee.salary.Min" with
   | Ast.Ref [ "Employee"; "salary"; "Min" ] -> ()
   | _ -> Alcotest.fail "path");
  (match pexpr "max(C.CountObject, 1)" with
   | Ast.Call ("max", [ Ast.Ref [ "C"; "CountObject" ]; Ast.Num 1. ]) -> ()
   | _ -> Alcotest.fail "call");
  (match pexpr "exp(-1 * x)" with
   | Ast.Call ("exp", [ Ast.Binop (Ast.Mul, Ast.Neg (Ast.Num 1.), Ast.Ref [ "x" ]) ]) -> ()
   | _ -> Alcotest.fail "unary minus")

(* --- Parser: rules (paper examples) ---------------------------------------- *)

let test_rule_fig8_scan () =
  (* Fig 8, first rule *)
  let r =
    Parser.parse_rule ~what:"fig8"
      {| rule scan(employee) {
           TotalTime = 120 + employee.TotalSize * 12 + employee.CountObject / employee.CountDistinct;
         } |}
  in
  (match r.Ast.head with
   | Ast.Hscan (Ast.Pname "employee") -> ()
   | _ -> Alcotest.fail "head should be literal collection");
  Alcotest.(check int) "one formula" 1 (List.length r.Ast.body)

let test_rule_fig8_select () =
  (* Fig 8, second rule: select(C, A = V) with free variables *)
  let r =
    Parser.parse_rule ~what:"fig8"
      {| rule select(C, A = V) {
           CountObject = C.CountObject * selectivity(A, V);
           TotalSize = CountObject * C.ObjectSize;
           TotalTime = C.TotalTime + C.TotalSize * 25;
         } |}
  in
  (match r.Ast.head with
   | Ast.Hselect (Ast.Pvar "C", Ast.Pcmp (Ast.Pvar "A", Pred.Eq, Ast.Pvar "V")) -> ()
   | _ -> Alcotest.fail "head variables");
  Alcotest.(check (list string)) "provides"
    [ "CountObject"; "TotalSize"; "TotalTime" ]
    (List.map Ast.cost_var_name (Ast.rule_provides r))

let test_rule_fig13_locals () =
  (* Fig 13: a local variable (CountPage) feeding later formulas *)
  let r =
    Parser.parse_rule ~what:"fig13"
      {| rule select(C, id = V) {
           CountPage = C.TotalSize / PageSize;
           CountObject = C.CountObject * (V - C.id.Min) / (C.id.Max - C.id.Min);
           TotalSize = CountObject * C.ObjectSize;
           TotalTime = IO * (C.TotalSize / CountPage * (1 - exp(-1 * (CountObject / CountPage))))
                       + CountObject * Output;
         } |}
  in
  Alcotest.(check int) "four assignments" 4 (List.length r.Ast.body);
  (match List.hd r.Ast.body with
   | Ast.Local "CountPage", _ -> ()
   | _ -> Alcotest.fail "first assignment is a local");
  Alcotest.(check int) "three cost vars" 3 (List.length (Ast.rule_provides r))

let test_rule_heads_variants () =
  let heads =
    [ "rule project(C, G) { TotalTime = 1; }";
      "rule sort(C, G) { TotalTime = 1; }";
      "rule join(C1, C2, P) { TotalTime = 1; }";
      "rule join(Employee, Book, id = id) { TotalTime = 1; }";
      "rule union(C1, C2) { TotalTime = 1; }";
      "rule dedup(C) { TotalTime = 1; }";
      "rule aggregate(C, G) { TotalTime = 1; }";
      "rule submit(W, C) { TotalTime = 1; }";
      "rule select(Employee, salary = 77) { TotalTime = 1; }" ]
  in
  List.iter (fun s -> ignore (Parser.parse_rule ~what:"heads" s)) heads

let test_variable_convention () =
  Alcotest.(check bool) "C is var" true (Ast.is_variable_name "C");
  Alcotest.(check bool) "R1 is var" true (Ast.is_variable_name "R1");
  Alcotest.(check bool) "V is var" true (Ast.is_variable_name "V");
  Alcotest.(check bool) "Employee is not" false (Ast.is_variable_name "Employee");
  Alcotest.(check bool) "employee is not" false (Ast.is_variable_name "employee");
  Alcotest.(check bool) "CX is not" false (Ast.is_variable_name "CX")

let test_parse_errors () =
  let bad s =
    try
      ignore (Parser.parse_rule ~what:"bad" s);
      false
    with Err.Parse_error _ -> true
  in
  Alcotest.(check bool) "unknown operator" true (bad "rule frobnicate(C) { TotalTime = 1; }");
  Alcotest.(check bool) "missing semicolon" true (bad "rule scan(C) { TotalTime = 1 }");
  Alcotest.(check bool) "lone literal predicate" true
    (bad "rule select(C, salary) { TotalTime = 1; }")

(* --- Parser: interfaces and sources (Figs 3-5) ------------------------------ *)

let employee_source =
  {|
  source objstore {
    let PageSize = 4096;
    def half(x) = x / 2;
    interface Employee {
      attribute long salary;
      attribute string Name;
      cardinality extent(10000, 15, 120);
      cardinality attribute(salary, true, 10000, 1000, 30000);
      cardinality attribute(Name, true, 10000, "Adiba", "Valduriez");
      rule scan(Employee) { TotalTime = 42; }
    }
    rule select(C, P) { TotalTime = C.TotalTime; }
  }
  |}

let test_parse_source () =
  let s = Parser.parse_source ~what:"fig4" employee_source in
  Alcotest.(check string) "name" "objstore" s.Ast.source_name;
  Alcotest.(check int) "items" 4 (List.length s.Ast.items);
  let rules = Ast.rules_of_source s in
  Alcotest.(check int) "two rules" 2 (List.length rules);
  (match rules with
   | [ (Some "Employee", _); (None, _) ] -> ()
   | _ -> Alcotest.fail "interface attribution");
  (match List.nth s.Ast.items 2 with
   | Ast.Interface i ->
     Alcotest.(check string) "iface" "Employee" i.Ast.iface_name;
     Alcotest.(check int) "members" 6 (List.length i.Ast.members);
     (match List.nth i.Ast.members 3 with
      | Ast.Attr_stats { attr = "salary"; indexed = true; distinct; min; max } ->
        Alcotest.(check (float 0.)) "distinct" 10000. distinct;
        Alcotest.(check bool) "min" true (Constant.equal min (Constant.Int 1000));
        Alcotest.(check bool) "max" true (Constant.equal max (Constant.Int 30000))
      | _ -> Alcotest.fail "salary stats")
   | _ -> Alcotest.fail "expected interface")

let test_parse_inheritance_and_capabilities () =
  let s =
    Parser.parse_source ~what:"inh"
      {| source s {
           capabilities scan, select;
           interface A { attribute long x; cardinality extent(1, 1, 1); }
           interface B : A { attribute long y; cardinality extent(2, 2, 1); }
         } |}
  in
  (match s.Ast.items with
   | [ Ast.Capabilities [ "scan"; "select" ];
       Ast.Interface { iface_parent = None; _ };
       Ast.Interface { iface_name = "B"; iface_parent = Some "A"; _ } ] ->
     ()
   | _ -> Alcotest.fail "bad inheritance/capabilities parse");
  (* round-trips through the pretty-printer *)
  let printed = Pp.source_to_string s in
  Alcotest.(check bool) "round-trip" true (Parser.parse_source ~what:"rt" printed = s)

let test_parse_items () =
  let items = Parser.parse_items ~what:"items" "let X = 3; rule scan(C) { TotalTime = X; }" in
  Alcotest.(check int) "two items" 2 (List.length items)

(* --- Static checking ---------------------------------------------------------- *)

let check text = Check.check_source (Parser.parse_source ~what:"check" text)

let has_error issues needle =
  List.exists
    (fun i ->
      i.Check.severity = Check.Error
      &&
      let s = i.Check.msg in
      let nl = String.length needle and hl = String.length s in
      let rec go j = j + nl <= hl && (String.sub s j nl = needle || go (j + 1)) in
      go 0)
    issues

let test_check_clean () =
  (* the real exports are clean *)
  Alcotest.(check int) "employee fixture has no errors" 0
    (List.length (Check.errors (check employee_source)))

let test_check_unbound_variable () =
  let issues =
    check "source s { rule scan(C) { TotalTime = V * 2; } }"
  in
  Alcotest.(check bool) "unbound V" true (has_error issues "unbound variable \"V\"");
  (* bound by the head: fine *)
  Alcotest.(check int) "bound is clean" 0
    (List.length
       (Check.errors (check "source s { rule select(C, A = V) { TotalTime = V * 2; } }")))

let test_check_locals_bind () =
  (* a body-local assignment binds for later formulas (Fig 13 style) *)
  Alcotest.(check int) "local ok" 0
    (List.length
       (Check.errors
          (check
             "source s { rule scan(C) { X1 = 3; TotalTime = X1 * 2; } }")));
  (* but not before its assignment *)
  Alcotest.(check bool) "use before assignment" true
    (has_error
       (check "source s { rule scan(C) { TotalTime = X1 * 2; X1 = 3; } }")
       "unbound variable")

let test_check_unknown_function () =
  Alcotest.(check bool) "unknown fn" true
    (has_error (check "source s { rule scan(C) { TotalTime = frob(1); } }")
       "unknown function");
  Alcotest.(check int) "context fns allowed" 0
    (List.length
       (Check.errors
          (check "source s { rule select(C, P) { TotalTime = sel(P) * 10; } }")));
  Alcotest.(check int) "defs allowed" 0
    (List.length
       (Check.errors
          (check "source s { def f(x) = x; rule scan(C) { TotalTime = f(1); } }")))

let test_check_duplicates () =
  Alcotest.(check bool) "duplicate assignment" true
    (has_error
       (check "source s { rule scan(C) { TotalTime = 1; TotalTime = 2; } }")
       "duplicate assignment");
  Alcotest.(check bool) "duplicate attribute" true
    (has_error
       (check
          "source s { interface A { attribute long x; attribute long x; \
           cardinality extent(1,1,1); } }")
       "duplicate attribute")

let test_check_interface_issues () =
  Alcotest.(check bool) "stats for undeclared attribute" true
    (has_error
       (check
          "source s { interface A { attribute long x; \
           cardinality extent(1,1,1); \
           cardinality attribute(y, false, 1, 0, 1); } }")
       "undeclared attribute");
  Alcotest.(check bool) "parent after child" true
    (has_error
       (check
          "source s { interface B : A { cardinality extent(1,1,1); } \
           interface A { cardinality extent(1,1,1); } }")
       "not declared before");
  (* missing extent: a warning, not an error *)
  let issues = check "source s { interface A { attribute long x; } }" in
  Alcotest.(check int) "no errors" 0 (List.length (Check.errors issues));
  Alcotest.(check bool) "warns" true
    (List.exists (fun i -> i.Check.severity = Check.Warning) issues)

let test_check_generic_model_clean () =
  (* the generic model itself passes its own checker *)
  let decl =
    Parser.parse_source ~what:"generic" (Disco_core.Generic.text ())
  in
  Alcotest.(check int) "generic model clean" 0
    (List.length (Check.errors (Check.check_source decl)));
  let local =
    Parser.parse_source ~what:"local" Disco_core.Generic.local_text
  in
  Alcotest.(check int) "local rules clean" 0
    (List.length (Check.errors (Check.check_source local)))

(* --- Pretty-printer round-trip ----------------------------------------------- *)

(* Reparsing pretty-printed text yields different source positions, which
   don't participate in semantic identity — compare position-erased ASTs. *)
let test_pp_roundtrip_source () =
  let s1 = Parser.parse_source ~what:"rt1" employee_source in
  let printed = Pp.source_to_string s1 in
  let s2 = Parser.parse_source ~what:"rt2" printed in
  Alcotest.(check bool) "round-trip equal" true
    (Ast.erase_source_pos s1 = Ast.erase_source_pos s2)

(* parse ∘ pp ∘ parse = parse on every real export in the tree: the generic
   model, the mediator's local rules, and each demo wrapper's registration
   text — as whole sources and rule by rule. *)
let real_sources () =
  [ ("generic", Disco_core.Generic.text ());
    ("local", Disco_core.Generic.local_text) ]
  @ List.map
      (fun w ->
        (w.Disco_wrapper.Wrapper.name, Disco_wrapper.Wrapper.registration_text w))
      (Disco_wrapper.Demo.make ~sizes:Disco_wrapper.Demo.small_sizes ())

let test_pp_roundtrip_real_sources () =
  List.iter
    (fun (name, text) ->
      let s1 = Parser.parse_source ~what:name text in
      let s2 = Parser.parse_source ~what:(name ^ " reparsed") (Pp.source_to_string s1) in
      Alcotest.(check bool) (name ^ " source round-trips") true
        (Ast.erase_source_pos s1 = Ast.erase_source_pos s2))
    (real_sources ())

let test_pp_roundtrip_real_rules () =
  List.iter
    (fun (name, text) ->
      let s = Parser.parse_source ~what:name text in
      List.iter
        (fun (_iface, r) ->
          let printed = Fmt.str "%a" Pp.rule r in
          let r2 = Parser.parse_rule ~what:(name ^ " rule reparsed") printed in
          let r = Ast.erase_rule_pos r and r2 = Ast.erase_rule_pos r2 in
          if r2 <> r then
            Alcotest.failf "%s: rule does not round-trip:@.%s" name printed)
        (Ast.rules_of_source s))
    (real_sources ())

(* random expression generator for the round-trip property *)
let rec expr_gen depth =
  let open QCheck2.Gen in
  if depth = 0 then
    oneof
      [ map (fun f -> Ast.Num (Float.of_int f)) (int_range 0 100);
        map (fun v -> Ast.Ref [ v ]) (oneofl [ "x"; "y"; "IO"; "C" ]);
        return (Ast.Ref [ "C"; "CountObject" ]) ]
  else
    oneof
      [ expr_gen 0;
        map2
          (fun op (a, b) -> Ast.Binop (op, a, b))
          (oneofl [ Ast.Add; Ast.Sub; Ast.Mul; Ast.Div ])
          (pair (expr_gen (depth - 1)) (expr_gen (depth - 1)));
        map (fun a -> Ast.Neg a) (expr_gen (depth - 1));
        map
          (fun (a, b) -> Ast.Call ("max", [ a; b ]))
          (pair (expr_gen (depth - 1)) (expr_gen (depth - 1))) ]

let prop_expr_roundtrip =
  QCheck2.Test.make ~name:"expr print/reparse round-trip" ~count:300 (expr_gen 4)
    (fun e ->
      let printed = Fmt.str "%a" Pp.expr e in
      let reparsed = Parser.parse_expr ~what:"rt" printed in
      (* compare by evaluation on a fixed environment to tolerate
         reassociation-invariant printing differences *)
      let ctx =
        { Compile.resolve_ref =
            (fun path ->
              Value.Vnum (float_of_int (Hashtbl.hash path mod 7) +. 1.));
          call =
            (fun name args ->
              match Builtins.find name with
              | Some f -> f args
              | None -> Value.Vnum 0.) }
      in
      let safe_eval e = try Some (Compile.eval_num (Compile.compile e) ctx) with _ -> None in
      match safe_eval e, safe_eval reparsed with
      | Some a, Some b -> Float.abs (a -. b) <= 1e-6 *. Float.max 1. (Float.abs a)
      | None, None -> true
      | _ -> false)

(* --- Compilation and builtins -------------------------------------------------- *)

let const_ctx bindings =
  { Compile.resolve_ref =
      (fun path ->
        match List.assoc_opt (String.concat "." path) bindings with
        | Some v -> Value.Vnum v
        | None -> raise (Err.Eval_error "unbound"));
    call =
      (fun name args ->
        match Builtins.find name with
        | Some f -> f args
        | None -> raise (Err.Eval_error ("no fn " ^ name))) }

let eval ?(bindings = []) s =
  Compile.eval_num (Compile.compile (pexpr s)) (const_ctx bindings)

let test_compile_arith () =
  Alcotest.(check (float 1e-9)) "arith" 7. (eval "1 + 2 * 3");
  Alcotest.(check (float 1e-9)) "div" 2.5 (eval "5 / 2");
  Alcotest.(check (float 1e-9)) "neg" (-4.) (eval "-(2 + 2)");
  Alcotest.(check (float 1e-9)) "ref" 10. (eval ~bindings:[ ("x", 4.) ] "x + 6")

let test_compile_division_by_zero () =
  Alcotest.(check bool) "raises" true
    (try
       ignore (eval "1 / 0");
       false
     with Err.Eval_error _ -> true)

let test_builtins_math () =
  Alcotest.(check (float 1e-9)) "min" 2. (eval "min(5, 2, 3)");
  Alcotest.(check (float 1e-9)) "max" 5. (eval "max(5, 2, 3)");
  Alcotest.(check (float 1e-9)) "ceil" 3. (eval "ceil(2.1)");
  Alcotest.(check (float 1e-9)) "floor" 2. (eval "floor(2.9)");
  Alcotest.(check (float 1e-6)) "exp/ln" 1. (eval "ln(exp(1))");
  Alcotest.(check (float 1e-9)) "log2" 10. (eval "log2(1024)");
  Alcotest.(check (float 1e-9)) "pow" 8. (eval "pow(2, 3)");
  Alcotest.(check (float 1e-9)) "if true" 1. (eval "if(2 - 1, 1, 0)");
  Alcotest.(check (float 1e-9)) "if false" 0. (eval "if(0, 1, 0)")

let test_builtin_arity_errors () =
  Alcotest.(check bool) "exp arity" true
    (try
       ignore (eval "exp(1, 2)");
       false
     with Err.Eval_error _ -> true)

let test_yao_exact () =
  (* bounds *)
  Alcotest.(check (float 1e-9)) "k=0" 0. (Builtins.yao_exact ~objects:100. ~pages:10. ~selected:0.);
  Alcotest.(check (float 1e-9)) "k=n" 1.
    (Builtins.yao_exact ~objects:100. ~pages:10. ~selected:100.);
  (* one object per page: fraction = k/n *)
  Alcotest.(check (float 1e-6)) "m=n" 0.25
    (Builtins.yao_exact ~objects:100. ~pages:100. ~selected:25.);
  (* close to the exponential approximation for large n *)
  let exact = Builtins.yao_exact ~objects:70000. ~pages:1000. ~selected:700. in
  let approx = Builtins.yao_approx ~pages:1000. ~selected:700. in
  Alcotest.(check bool) "close to approx" true (Float.abs (exact -. approx) < 0.02)

let prop_yao_monotone =
  QCheck2.Test.make ~name:"yao monotone and bounded" ~count:200
    QCheck2.Gen.(pair (int_range 1 500) (int_range 0 500))
    (fun (k1, k2) ->
      let f k = Builtins.yao_exact ~objects:1000. ~pages:50. ~selected:(float_of_int k) in
      let a = f (min k1 k2) and b = f (max k1 k2) in
      a <= b +. 1e-9 && a >= 0. && b <= 1.)

let test_defs () =
  let d = Compile.compile_def ~params:[ "x"; "y" ] (pexpr "x * 10 + y") in
  let v = Compile.apply_def d (const_ctx []) [ Value.Vnum 4.; Value.Vnum 2. ] in
  Alcotest.(check (float 1e-9)) "def apply" 42. (Value.to_num v);
  Alcotest.(check bool) "wrong arity raises" true
    (try
       ignore (Compile.apply_def d (const_ctx []) [ Value.Vnum 1. ]);
       false
     with Err.Eval_error _ -> true)

let test_refs_analysis () =
  let e = pexpr "C.TotalTime + max(C.CountObject, PageSize) * sel(P)" in
  let refs = Compile.refs e in
  Alcotest.(check int) "four refs" 4 (List.length refs);
  Alcotest.(check bool) "contains child total" true (List.mem [ "C"; "TotalTime" ] refs);
  Alcotest.(check bool) "contains P" true (List.mem [ "P" ] refs)

let test_value_to_num () =
  Alcotest.(check (float 0.)) "const int" 3. (Value.to_num (Value.Vconst (Constant.Int 3)));
  Alcotest.(check bool) "string raises" true
    (try
       ignore (Value.to_num (Value.Vconst (Constant.String "x")));
       false
     with Err.Eval_error _ -> true);
  Alcotest.(check bool) "pred raises" true
    (try
       ignore (Value.to_num (Value.Vpred Pred.True));
       false
     with Err.Eval_error _ -> true)

let () =
  Alcotest.run "costlang"
    [ ( "lexer",
        [ Alcotest.test_case "basic tokens" `Quick test_lexer_basic;
          Alcotest.test_case "numbers and paths" `Quick test_lexer_numbers;
          Alcotest.test_case "strings and comments" `Quick test_lexer_strings_comments;
          Alcotest.test_case "errors" `Quick test_lexer_errors;
          Alcotest.test_case "positions" `Quick test_lexer_positions ] );
      ( "parser",
        [ Alcotest.test_case "expression precedence" `Quick test_expr_precedence;
          Alcotest.test_case "paths and calls" `Quick test_expr_paths_calls;
          Alcotest.test_case "fig 8 scan rule" `Quick test_rule_fig8_scan;
          Alcotest.test_case "fig 8 select rule" `Quick test_rule_fig8_select;
          Alcotest.test_case "fig 13 locals" `Quick test_rule_fig13_locals;
          Alcotest.test_case "all head forms" `Quick test_rule_heads_variants;
          Alcotest.test_case "variable convention" `Quick test_variable_convention;
          Alcotest.test_case "parse errors" `Quick test_parse_errors;
          Alcotest.test_case "full source" `Quick test_parse_source;
          Alcotest.test_case "inheritance and capabilities" `Quick
            test_parse_inheritance_and_capabilities;
          Alcotest.test_case "bare items" `Quick test_parse_items ] );
      ( "checker",
        [ Alcotest.test_case "clean exports" `Quick test_check_clean;
          Alcotest.test_case "unbound variables" `Quick test_check_unbound_variable;
          Alcotest.test_case "locals bind sequentially" `Quick test_check_locals_bind;
          Alcotest.test_case "unknown functions" `Quick test_check_unknown_function;
          Alcotest.test_case "duplicates" `Quick test_check_duplicates;
          Alcotest.test_case "interface issues" `Quick test_check_interface_issues;
          Alcotest.test_case "generic model is clean" `Quick
            test_check_generic_model_clean ] );
      ( "pretty-printer",
        [ Alcotest.test_case "source round-trip" `Quick test_pp_roundtrip_source;
          Alcotest.test_case "real sources round-trip" `Quick
            test_pp_roundtrip_real_sources;
          Alcotest.test_case "real rules round-trip" `Quick
            test_pp_roundtrip_real_rules;
          QCheck_alcotest.to_alcotest prop_expr_roundtrip ] );
      ( "compile",
        [ Alcotest.test_case "arithmetic" `Quick test_compile_arith;
          Alcotest.test_case "division by zero" `Quick test_compile_division_by_zero;
          Alcotest.test_case "math builtins" `Quick test_builtins_math;
          Alcotest.test_case "builtin arity errors" `Quick test_builtin_arity_errors;
          Alcotest.test_case "yao exact" `Quick test_yao_exact;
          QCheck_alcotest.to_alcotest prop_yao_monotone;
          Alcotest.test_case "wrapper-defined functions" `Quick test_defs;
          Alcotest.test_case "refs analysis" `Quick test_refs_analysis;
          Alcotest.test_case "value conversions" `Quick test_value_to_num ] ) ]
