(* Tests for lib/analysis: the interval domain, soundness of the abstract
   interpreter against the concrete evaluator, and the whole-model analyzer —
   seeded regressions it must catch, and the shipped models it must pass. *)

open Disco_common
open Disco_costlang
open Disco_core
open Disco_wrapper
open Disco_mediator
open Disco_analysis

(* --- Fixtures ---------------------------------------------------------------- *)

let reg_with texts =
  let registry = Registry.create (Disco_catalog.Catalog.create ()) in
  Generic.register registry;
  List.iter
    (fun t -> ignore (Registry.register_text registry ~what:"test source" t))
    texts;
  registry

(* 1-based line/col of the first (or last) occurrence of [sub] in [text]:
   the expected lexer position of a seeded defect. *)
let pos_of ?(last = false) text sub =
  let idx =
    let rec all from acc =
      match String.index_from_opt text from sub.[0] with
      | Some i when i + String.length sub <= String.length text
                    && String.sub text i (String.length sub) = sub ->
        all (i + 1) (i :: acc)
      | Some i -> all (i + 1) acc
      | None -> acc
    in
    match all 0 [] with
    | [] -> Alcotest.failf "substring %S not found" sub
    | is -> if last then List.hd is else List.hd (List.rev is)
  in
  let line = ref 1 and bol = ref 0 in
  String.iteri
    (fun i c ->
      if i < idx && c = '\n' then begin
        incr line;
        bol := i + 1
      end)
    text;
  { Ast.line = !line; col = idx - !bol + 1 }

let contains_sub s sub =
  let n = String.length sub in
  let rec go i =
    i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
  in
  go 0

let find_tag fs tag =
  match List.filter (fun f -> f.Analyzer.tag = tag) fs with
  | [] -> Alcotest.failf "no %S finding" tag
  | f :: _ -> f

let check_sev what expected (f : Analyzer.finding) =
  Alcotest.(check string) what
    (Analyzer.severity_name expected)
    (Analyzer.severity_name f.Analyzer.severity)

let check_loc what expected (f : Analyzer.finding) =
  match f.Analyzer.loc with
  | None -> Alcotest.failf "%s: finding has no location" what
  | Some p ->
    Alcotest.(check (pair int int)) what
      (expected.Ast.line, expected.Ast.col)
      (p.Ast.line, p.Ast.col)

let item_interface =
  {|interface Item {
    attribute long id;
    cardinality extent(1000, 50000, 50);
    cardinality attribute(id, true, 1000, 1, 1000);
  }|}

(* --- Interval domain ---------------------------------------------------------- *)

let test_interval_ops () =
  let open Interval in
  Alcotest.(check bool) "mul 0*inf endpoint" true
    (let i = mul nonneg unit in
     i.lo = 0. && i.hi = infinity && not i.nan);
  Alcotest.(check bool) "sub introduces negatives" true
    (maybe_neg (sub nonneg nonneg));
  Alcotest.(check bool) "point div ok" true
    (let i, st = div (point 10.) (point 4.) in
     st = Div_ok && i.lo = 2.5 && i.hi = 2.5);
  Alcotest.(check bool) "div by zero definite" true
    (snd (div (point 1.) (point 0.)) = Div_zero);
  Alcotest.(check bool) "div by nonneg maybe zero" true
    (snd (div (point 1.) nonneg) = Div_maybe_zero);
  Alcotest.(check bool) "ln of possibly-negative is nan" true
    (ln_ (v (-1.) 1.)).nan;
  Alcotest.(check bool) "ln of positive is nan-free" true (not (ln_ ge1).nan);
  Alcotest.(check bool) "ln of possibly-zero is tainted" true (ln_ nonneg).nan;
  Alcotest.(check bool) "ite decisive on nonzero cond" true
    (ite (point 1.) (point 2.) (point 3.) = point 2.);
  Alcotest.(check bool) "ite joins on uncertain cond" true
    (let i = ite unit (point 2.) (point 3.) in
     i.lo = 2. && i.hi = 3.)

(* --- Canonical builtin lists (satellite: hoisted into Builtins) --------------- *)

let test_builtin_names_resolve () =
  List.iter
    (fun n ->
      Alcotest.(check bool) (n ^ " resolves") true
        (Option.is_some (Builtins.find n)))
    Builtins.names;
  (* context functions are the estimator's, not pure builtins — the two
     canonical lists must stay disjoint *)
  List.iter
    (fun n ->
      Alcotest.(check bool) (n ^ " is not a pure builtin") true
        (Option.is_none (Builtins.find n));
      (* the abstract interpreter has a transfer function for each: no
         unknown-call issue, numeric result *)
      let env =
        { Absint.resolve = (fun _ -> Absint.Opaque); def_of = (fun _ -> None) }
      in
      let v, issues = Absint.eval env (Ast.Call (n, [])) in
      Alcotest.(check bool) (n ^ " abstracts to a number") true
        (Option.is_some (Absint.interval_of v));
      Alcotest.(check int) (n ^ " raises no issue") 0 (List.length issues))
    Builtins.context_function_names;
  (* Check consumes the same list: a rule using a context function passes *)
  let r =
    Parser.parse_rule ~what:"test"
      "rule select(C, P) { TotalTime = sel(P) * nnames(C); }"
  in
  Alcotest.(check int) "check accepts context functions" 0
    (List.length (Check.errors (Check.check_rule r ~lets:[] ~defs:[])))

(* --- Seeded regression: possible division by zero ----------------------------- *)

let divzero_text =
  {|source srcz {
  |} ^ item_interface
  ^ {|
  rule scan(C) {
    CountObject = C.CountObject;
    TotalSize = C.TotalSize;
    TimeFirst = 1;
    TimeNext = 1;
    TotalTime = C.TotalSize / C.CountObject;
  }
}|}

let test_seeded_divzero () =
  let reg = reg_with [ divzero_text ] in
  let fs = Analyzer.analyze_source reg ~source:"srcz" in
  let f = find_tag fs "div-zero" in
  check_sev "possible divisor zero is a warning" Analyzer.Warning f;
  check_loc "location is the TotalTime assignment"
    (pos_of divzero_text "TotalTime = C.TotalSize") f;
  Alcotest.(check string) "owned by srcz" "srcz" f.Analyzer.source;
  (* a warning, not an error: strict mode does not reject it *)
  Alcotest.(check int) "no error findings" 0
    (List.length (Analyzer.errors fs))

(* --- Seeded regression: negative cost ----------------------------------------- *)

let negative_text =
  {|source srcn {
  |} ^ item_interface
  ^ {|
  rule scan(C) {
    CountObject = C.CountObject;
    TotalSize = C.TotalSize;
    TimeFirst = 0 - 5;
    TimeNext = 1;
    TotalTime = 1;
  }
}|}

let test_seeded_negative () =
  let reg = reg_with [ negative_text ] in
  let fs = Analyzer.analyze_source reg ~source:"srcn" in
  let f = find_tag fs "negative" in
  check_sev "definitely negative cost is an error" Analyzer.Error f;
  check_loc "location is the TimeFirst assignment"
    (pos_of negative_text "TimeFirst = 0 - 5") f

(* --- Seeded regression: dead rule shadowed by a collection-scope rule ---------- *)

let dead_text =
  {|source srcd {
  interface Item {
    attribute long id;
    cardinality extent(1000, 50000, 50);
    cardinality attribute(id, true, 1000, 1, 1000);
    rule scan(C) {
      CountObject = C.CountObject;
      TotalSize = C.TotalSize;
      TimeFirst = 2;
      TimeNext = 2;
      TotalTime = 2;
    }
  }
  rule scan(C) {
    CountObject = C.CountObject;
    TotalSize = C.TotalSize;
    TimeFirst = 5;
    TimeNext = 5;
    TotalTime = 5;
  }
}|}

let test_seeded_dead_rule () =
  let reg = reg_with [ dead_text ] in
  let fs = Analyzer.analyze_source reg ~source:"srcd" in
  let f = find_tag fs "dead-rule" in
  check_sev "dead rule is a warning" Analyzer.Warning f;
  (* the victim is the toplevel (wrapper-scope) rule — the second
     "rule scan(C)" in the text *)
  check_loc "location is the shadowed toplevel rule"
    (pos_of ~last:true dead_text "rule scan(C)") f;
  Alcotest.(check bool) "message names the collection-scope shadower" true
    (contains_sub f.Analyzer.msg "collection")

(* --- Seeded regression: cost-variable dependency cycle ------------------------- *)

let cycle_text =
  {|source srcc {
  |} ^ item_interface
  ^ {|
  rule sort(C, A) {
    TotalTime = TotalSize * 2;
  }
  rule sort(C, A) {
    TotalSize = TotalTime / 2;
  }
}|}

let test_seeded_cycle () =
  let reg = reg_with [ cycle_text ] in
  let fs = Analyzer.analyze_source reg ~source:"srcc" in
  let f = find_tag fs "cycle" in
  check_sev "dependency cycle is an error" Analyzer.Error f;
  Alcotest.(check bool) "cycle names both variables" true
    (contains_sub f.Analyzer.msg "TotalTime"
     && contains_sub f.Analyzer.msg "TotalSize")

(* --- Coverage: a chain missing a variable is an error -------------------------- *)

let test_coverage_missing_var () =
  (* an operator nobody (not even the generic model) covers does not exist;
     instead: a conditional-only provider — TimeNext defined only for scans
     of the literal collection, other scans fall back... to nothing once the
     generic chain is absent. Build a registry WITHOUT the generic model. *)
  let registry = Registry.create (Disco_catalog.Catalog.create ()) in
  ignore
    (Registry.register_text registry ~what:"test"
       ({|source srcm {
  |} ^ item_interface
       ^ {|
  rule scan(C) {
    CountObject = C.CountObject;
    TotalSize = C.TotalSize;
    TimeFirst = 1;
  }
}|}));
  let fs = Analyzer.analyze_chain registry ~source:"srcm" ~operator:"scan" in
  let f = find_tag fs "coverage" in
  check_sev "missing cost variables are an error" Analyzer.Error f

(* --- The shipped models lint clean under --strict ------------------------------ *)

let test_generic_model_clean () =
  let reg = reg_with [] in
  let fs = Analyzer.analyze reg in
  Alcotest.(check int) "generic + mediator model has no error findings" 0
    (List.length (Analyzer.errors fs));
  (* and the expected benign findings are present: the competing same-level
     select strategies are reported as min-combined ambiguity *)
  ignore (find_tag fs "ambiguous")

let test_demo_federation_clean_strict () =
  (* `Error lint mode: registration itself is the strict gate *)
  let med = Mediator.create ~lint:`Error () in
  List.iter (Mediator.register med) (Demo.make ~sizes:Demo.small_sizes ());
  let fs = Analyzer.analyze (Mediator.registry med) in
  Alcotest.(check int) "demo federation has no error findings" 0
    (List.length (Analyzer.errors fs));
  (* the objstore index join exports no TimeNext: fallback to generic *)
  Alcotest.(check bool) "objstore join falls back for TimeNext" true
    (List.exists
       (fun f ->
         f.Analyzer.tag = "fallback" && f.Analyzer.source = "objstore"
         && f.Analyzer.operator = Some "join")
       fs)

let test_oo7_clean_strict () =
  let registry = Registry.create (Disco_catalog.Catalog.create ()) in
  Generic.register registry;
  let src =
    Disco_oo7.Oo7.make_source ~config:Disco_oo7.Oo7.small_config
      ~with_rules:true ()
  in
  ignore (Registry.register_source_decl registry (Wrapper.registration_decl src));
  let fs = Analyzer.analyze_source registry ~source:"oo7" in
  Alcotest.(check int) "oo7 export has no error findings" 0
    (List.length (Analyzer.errors fs))

(* --- Strict registration rejects and rolls back -------------------------------- *)

let test_strict_mode_rejects () =
  let med = Mediator.create ~lint:`Error () in
  let bad =
    match Demo.make ~sizes:Demo.small_sizes () with
    | w :: _ ->
      { w with
        Wrapper.rules_text =
          {|rule scan(C) {
  CountObject = C.CountObject;
  TotalSize = C.TotalSize;
  TimeFirst = 0 - 5;
  TimeNext = 1;
  TotalTime = 1;
}|} }
    | [] -> assert false
  in
  (match Mediator.register med bad with
   | () -> Alcotest.fail "strict registration should have rejected the export"
   | exception Err.Eval_error msg ->
     Alcotest.(check bool) "error mentions lint" true (contains_sub msg "lint"));
  Alcotest.(check int) "rules rolled back" 0
    (Registry.rule_count (Mediator.registry med) ~source:bad.Wrapper.name);
  (* Warn mode keeps the same export and records the findings *)
  let med2 = Mediator.create ~lint:`Warn () in
  Mediator.register med2 bad;
  Alcotest.(check bool) "warn mode keeps the export" true
    (Registry.rule_count (Mediator.registry med2) ~source:bad.Wrapper.name > 0);
  Alcotest.(check bool) "warn mode records the error finding" true
    (Analyzer.errors (Mediator.last_lint med2) <> []);
  (* Off mode skips the analyzer *)
  let med3 = Mediator.create ~lint:`Off () in
  Mediator.register med3 bad;
  Alcotest.(check int) "off mode records nothing" 0
    (List.length (Mediator.last_lint med3))

(* --- JSON output ---------------------------------------------------------------- *)

let test_json_output () =
  let reg = reg_with [ negative_text ] in
  let fs = Analyzer.analyze_source reg ~source:"srcn" in
  let json = Analyzer.to_json fs in
  let has sub = contains_sub json sub in
  Alcotest.(check bool) "json has severity field" true
    (has {|"severity": "error"|});
  Alcotest.(check bool) "json has tag field" true (has {|"tag": "negative"|});
  Alcotest.(check bool) "json has line field" true (has {|"line": |})

(* --- Soundness: abstract interpretation vs the concrete evaluator --------------- *)

(* Random formulas over three typed variables: N abstracted as [0, inf)
   (concrete nonnegative), S as [0, 1] (concrete selectivity), X as top.
   Function set and constant ranges are chosen so intermediates cannot
   overflow to infinity — the domain's "unbounded finite" endpoint reading
   assumes finite inputs (exp/pow excluded). *)
let gen_env =
  QCheck2.Gen.(
    triple (map float_of_int (int_range 0 10_000))
      (float_bound_inclusive 1.0)
      (map float_of_int (int_range (-1000) 1000)))

let gen_expr =
  QCheck2.Gen.(
    sized_size (int_bound 8)
    @@ fix (fun self n ->
           let leaf =
             oneof
               [ map (fun i -> Ast.Num (float_of_int i)) (int_range (-50) 50);
                 oneofl [ Ast.Ref [ "N" ]; Ast.Ref [ "S" ]; Ast.Ref [ "X" ] ] ]
           in
           if n <= 0 then leaf
           else
             oneof
               [ leaf;
                 map3
                   (fun op a b -> Ast.Binop (op, a, b))
                   (oneofl [ Ast.Add; Ast.Sub; Ast.Mul; Ast.Div ])
                   (self (n / 2)) (self (n / 2));
                 map (fun e -> Ast.Neg e) (self (n - 1));
                 map2
                   (fun f e -> Ast.Call (f, [ e ]))
                   (oneofl [ "ln"; "log2"; "sqrt"; "ceil"; "floor"; "abs" ])
                   (self (n - 1));
                 map3
                   (fun f a b -> Ast.Call (f, [ a; b ]))
                   (oneofl [ "min"; "max"; "yaoapprox" ])
                   (self (n / 2)) (self (n / 2));
                 map3
                   (fun c t e -> Ast.Call ("if", [ c; t; e ]))
                   (self (n / 3)) (self (n / 3)) (self (n / 3));
                 map3
                   (fun a b c -> Ast.Call ("yao", [ a; b; c ]))
                   (self (n / 3)) (self (n / 3)) (self (n / 3)) ]))

let abstract_env =
  { Absint.resolve =
      (function
        | [ "N" ] -> Absint.Num Interval.nonneg
        | [ "S" ] -> Absint.Num Interval.unit
        | [ "X" ] -> Absint.Num Interval.top
        | _ -> Absint.Opaque);
    def_of = (fun _ -> None) }

let concrete_ctx (n, s, x) =
  { Compile.resolve_ref =
      (function
        | [ "N" ] -> Value.num n
        | [ "S" ] -> Value.num s
        | [ "X" ] -> Value.num x
        | path -> Fmt.failwith "unexpected ref %s" (String.concat "." path));
    call =
      (fun fn args ->
        match Builtins.find fn with
        | Some f -> f args
        | None -> Fmt.failwith "unexpected call %s" fn) }

let soundness_prop (e, env) =
  let av, issues = Absint.eval abstract_env e in
  match Compile.eval_num (Compile.compile e) (concrete_ctx env) with
  | exception Err.Eval_error _ ->
    (* the only raising construct the generator produces is division by
       zero: the abstract pass must have flagged it *)
    List.exists
      (function Absint.Div_by_zero _ -> true | _ -> false)
      issues
  | f ->
    (match av with
     | Absint.Num i -> Interval.contains i f
     | _ -> false (* all generated expressions are numeric *))

let test_soundness =
  QCheck2.Test.make ~name:"interval analysis sound vs concrete evaluation"
    ~count:1000
    ~print:(fun (e, (n, s, x)) ->
      Fmt.str "%a with N=%g S=%g X=%g" Pp.expr e n s x)
    QCheck2.Gen.(pair gen_expr gen_env)
    soundness_prop

(* Constant folding / simplification must not change what the lint sees:
   the analyzer cross-checks the AST pass against the optimized form and
   reports divergence, so the optimizer must preserve issue verdicts. *)
let opt_verdict_prop e =
  let issues_of e = snd (Absint.eval abstract_env e) in
  let opt = Opt.pipeline ~lookup:(fun _ -> None) e in
  List.sort compare (issues_of e) = List.sort compare (issues_of opt)

let test_opt_verdict =
  QCheck2.Test.make ~name:"Opt.pipeline never changes the lint verdict"
    ~count:1000 gen_expr opt_verdict_prop

(* --- Run ------------------------------------------------------------------------ *)

let () =
  Alcotest.run "analysis"
    [ ( "interval",
        [ Alcotest.test_case "operations" `Quick test_interval_ops ] );
      ( "builtins",
        [ Alcotest.test_case "canonical lists resolve" `Quick
            test_builtin_names_resolve ] );
      ( "seeded regressions",
        [ Alcotest.test_case "possible division by zero" `Quick
            test_seeded_divzero;
          Alcotest.test_case "negative cost" `Quick test_seeded_negative;
          Alcotest.test_case "dead rule" `Quick test_seeded_dead_rule;
          Alcotest.test_case "dependency cycle" `Quick test_seeded_cycle;
          Alcotest.test_case "missing coverage" `Quick
            test_coverage_missing_var ] );
      ( "shipped models",
        [ Alcotest.test_case "generic model clean" `Quick
            test_generic_model_clean;
          Alcotest.test_case "demo federation clean under strict" `Quick
            test_demo_federation_clean_strict;
          Alcotest.test_case "oo7 clean under strict" `Quick
            test_oo7_clean_strict ] );
      ( "strict registration",
        [ Alcotest.test_case "rejects and rolls back" `Quick
            test_strict_mode_rejects;
          Alcotest.test_case "json findings" `Quick test_json_output ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ test_soundness; test_opt_verdict ] ) ]
