(* Tests for the batched execution engine: the columnar Batch representation,
   per-batch predicate compilation (Bpred), and the engine-differential
   guarantee — batched execution returns the same rows in the same order and
   bit-identical simulated cost vectors as tuple-at-a-time, at any batch
   size, including the boundary sizes 1 and larger-than-input. *)

open Disco_common
open Disco_catalog
open Disco_algebra
open Disco_storage
open Disco_exec

(* --- Fixtures (mirrors test_exec) ----------------------------------------------- *)

let part_schema =
  Schema.collection "Part"
    [ ("id", Schema.Tint); ("weight", Schema.Tint); ("kind", Schema.Tstring) ]

let box_schema =
  Schema.collection "Box" [ ("id", Schema.Tint); ("part_id", Schema.Tint) ]

let mk_part_rows n =
  let rng = Rng.create ~seed:11 in
  let rows =
    List.init n (fun i ->
        [| Constant.Int (i + 1);
           Constant.Int (Rng.int rng 50);
           Constant.String (Rng.pick rng [| "a"; "b"; "c" |]) |])
  in
  let arr = Array.of_list rows in
  Rng.shuffle rng arr;
  Array.to_list arr

let part_table ?(n = 400) () =
  Table.create ~name:"Part" ~schema:part_schema ~object_size:56 ~index_on:[ "id" ]
    (mk_part_rows n)

let box_table ?(n = 120) ~parts () =
  let rng = Rng.create ~seed:13 in
  let rows =
    List.init n (fun i ->
        [| Constant.Int (i + 1); Constant.Int (1 + Rng.int rng parts) |])
  in
  Table.create ~name:"Box" ~schema:box_schema ~object_size:24
    ~index_on:[ "id"; "part_id" ] rows

let engine = Costs.relational

let env ?(hash_join = false) () =
  { Run.engine; buffer = Buffer.create ~capacity:1024; hash_join; adts = [] }

let pscan table binding =
  Physical.Pscan { table; binding; access = Physical.Full_scan; residual = Pred.True }

(* --- Batch representation -------------------------------------------------------- *)

let test_builder_typing () =
  (* all-int column stays unboxed; a mixed column promotes to boxed, and the
     byte accounting stays exact either way *)
  let bld = Batch.builder [| "p.a"; "p.b" |] in
  Batch.add_row bld [| Constant.Int 1; Constant.Int 10 |];
  Batch.add_row bld [| Constant.Int 2; Constant.String "xyz" |];
  Batch.add_row bld [| Constant.Int 3; Constant.Null |];
  let b = Batch.flush bld in
  Alcotest.(check int) "len" 3 (Batch.length b);
  (match b.Batch.cols.(0) with
   | Batch.Ints a -> Alcotest.(check (array int)) "ints kept" [| 1; 2; 3 |] a
   | _ -> Alcotest.fail "first column should be unboxed ints");
  (match b.Batch.cols.(1) with
   | Batch.Boxed _ -> ()
   | _ -> Alcotest.fail "mixed column should be boxed");
  let tuples = Batch.to_tuples b in
  let bytes = List.fold_left (fun acc t -> acc + Tuple.byte_size t) 0 tuples in
  Alcotest.(check int) "bytes exact" bytes (Batch.byte_size b)

let test_find_col_matches_tuple_get () =
  let bld = Batch.builder [| "p.id"; "b.id" |] in
  Batch.add_row bld [| Constant.Int 1; Constant.Int 2 |];
  let b = Batch.flush bld in
  Alcotest.(check int) "qualified" 0 (Batch.find_col b "p.id");
  Alcotest.(check bool) "ambiguous bare name raises" true
    (try ignore (Batch.find_col b "id"); false with Err.Eval_error _ -> true);
  Alcotest.(check bool) "missing raises" true
    (try ignore (Batch.find_col b "zzz"); false with Err.Eval_error _ -> true)

let test_mask_matches_pred_eval () =
  let parts = part_table ~n:200 () in
  let e = env () in
  let br = Run.run_batched ~batch_size:64 e (pscan parts "p") in
  let pred =
    Pred.And
      ( Pred.Cmp ("p.weight", Pred.Lt, Constant.Int 25),
        Pred.Not (Pred.Cmp ("p.kind", Pred.Eq, Constant.String "b")) )
  in
  List.iter
    (fun b ->
      let mask, kept = Bpred.mask ~apply:(Adt.apply []) b pred in
      let expect = ref 0 in
      List.iteri
        (fun i t ->
          let want = Pred.eval ~apply:(Adt.apply []) (Tuple.get t) pred in
          if want then incr expect;
          Alcotest.(check bool)
            (Fmt.str "row %d" i) want
            (Bytes.get mask i <> '\000'))
        (Batch.to_tuples b);
      Alcotest.(check int) "kept count" !expect kept)
    br.Run.batches

(* --- Engine differential ---------------------------------------------------------- *)

let bits = Int64.bits_of_float

let check_vec name (vt : Run.vector) (vb : Run.vector) =
  let same what a b =
    Alcotest.(check int64) (name ^ " " ^ what) (bits a) (bits b)
  in
  same "count" vt.Run.count vb.Run.count;
  same "size" vt.Run.size vb.Run.size;
  same "time_first" vt.Run.time_first vb.Run.time_first;
  same "time_next" vt.Run.time_next vb.Run.time_next;
  same "total_time" vt.Run.total_time vb.Run.total_time

(* Batch sizes straddling every boundary: 1, mid-batch, exactly page-ish,
   larger than any input. *)
let batch_sizes = [ 1; 7; 64; 100_000 ]

let check_diff ?hash_join name phys =
  let rt, vt = Run.measure ~mode:Run.Tuple_at_a_time (env ?hash_join ()) phys in
  List.iter
    (fun bsz ->
      let rb, vb =
        Run.measure ~mode:(Run.Batched { batch_size = bsz }) (env ?hash_join ()) phys
      in
      let n = Fmt.str "%s @%d" name bsz in
      Alcotest.(check int) (n ^ " row count") (List.length rt) (List.length rb);
      Alcotest.(check bool) (n ^ " rows identical") true
        (List.for_all2 Tuple.equal rt rb);
      check_vec n vt vb)
    batch_sizes

let test_diff_operators () =
  let parts = part_table () in
  let boxes = box_table ~parts:400 () in
  let p = pscan parts "p" and b = pscan boxes "b" in
  let sel =
    Physical.Pscan
      { table = parts;
        binding = "p";
        access = Physical.Full_scan;
        residual = Pred.Cmp ("p.weight", Pred.Lt, Constant.Int 20) }
  in
  check_diff "full scan" p;
  check_diff "scan+residual" sel;
  check_diff "index scan"
    (Physical.Pscan
       { table = parts;
         binding = "p";
         access = Physical.Index_scan { attr = "id"; op = Cmp.Le; value = Constant.Int 120 };
         residual = Pred.Cmp ("p.weight", Pred.Ge, Constant.Int 10) });
  check_diff "filter" (Physical.Pfilter (p, Pred.Cmp ("p.kind", Pred.Eq, Constant.String "a")));
  check_diff "project" (Physical.Pproject (sel, [ "p.id"; "p.kind" ]));
  check_diff "sort"
    (Physical.Psort (sel, [ ("p.weight", Plan.Desc); ("p.id", Plan.Asc) ]));
  check_diff "dedup" (Physical.Pdedup (Physical.Pproject (p, [ "p.kind" ])));
  check_diff "union mixed schemas" (Physical.Punion (sel, b));
  check_diff "aggregate"
    (Physical.Paggregate
       ( p,
         { Plan.group_by = [ "p.kind" ];
           aggs =
             [ (Plan.Count, "", "n");
               (Plan.Sum, "p.weight", "w");
               (Plan.Avg, "p.weight", "aw");
               (Plan.Min, "p.weight", "mn");
               (Plan.Max, "p.weight", "mx") ] } ));
  check_diff "aggregate no groups"
    (Physical.Paggregate
       (sel, { Plan.group_by = []; aggs = [ (Plan.Count, "", "n") ] }));
  let join_pred = Pred.Attr_cmp ("b.part_id", Pred.Eq, "p.id") in
  check_diff "nl join" (Physical.Pnested_join (b, p, join_pred));
  check_diff ~hash_join:true "hash join" (Physical.Pnested_join (b, p, join_pred));
  check_diff ~hash_join:true "hash join + residual"
    (Physical.Pnested_join
       (b, p, Pred.And (join_pred, Pred.Cmp ("p.weight", Pred.Gt, Constant.Int 5))));
  check_diff "index join"
    (Physical.Pindex_join
       { outer = b;
         table = parts;
         binding = "p";
         outer_attr = "b.part_id";
         inner_attr = "id";
         residual = Pred.Cmp ("p.weight", Pred.Gt, Constant.Int 5) })

let test_diff_empty_table () =
  let empty =
    Table.create ~name:"Part" ~schema:part_schema ~object_size:56 ~index_on:[ "id" ] []
  in
  check_diff "empty scan" (pscan empty "p");
  check_diff "empty sort" (Physical.Psort (pscan empty "p", [ ("p.id", Plan.Asc) ]));
  check_diff "empty aggregate"
    (Physical.Paggregate
       ( pscan empty "p",
         { Plan.group_by = [ "p.kind" ]; aggs = [ (Plan.Sum, "p.weight", "w") ] } ))

let test_materialized_roundtrip () =
  let rows =
    List.init 10 (fun i ->
        Tuple.make [| "x.a" |] [| Constant.Int (i mod 3) |])
  in
  let phys =
    Physical.Pdedup
      (Physical.Pmaterialized { rows; count = 10; first = 2.; total = 11. })
  in
  check_diff "dedup over materialized" phys

(* --- Incremental accounting (the O(n^2) fix) -------------------------------------- *)

let test_incremental_accounting () =
  let parts = part_table ~n:1000 () in
  let br = Run.run_batched ~batch_size:13 (env ()) (pscan parts "p") in
  let rows = Run.rows_of_batched br in
  (* the carried totals are exact: equal to a full refold over the rows *)
  Alcotest.(check int) "carried count" (List.length rows) br.Run.bcount;
  Alcotest.(check int) "carried bytes"
    (List.fold_left (fun acc t -> acc + Tuple.byte_size t) 0 rows)
    br.Run.bbytes;
  let v = Run.vector_of_batched br in
  Alcotest.(check int64) "vector count from carried total"
    (bits (float_of_int br.Run.bcount)) (bits v.Run.count);
  (* no produced batch is empty (scans may exceed the requested size: a
     full scan emits zero-copy batches over the whole columnar mirror) *)
  List.iter
    (fun b -> Alcotest.(check bool) "batch non-empty" true (Batch.length b > 0))
    br.Run.batches

let test_wall_clock_present () =
  let parts = part_table () in
  let r = Run.run ~mode:Run.Tuple_at_a_time (env ()) (pscan parts "p") in
  Alcotest.(check bool) "tuple wall >= 0" true (r.Run.wall_ms >= 0.);
  let br = Run.run_batched ~batch_size:64 (env ()) (pscan parts "p") in
  Alcotest.(check bool) "batched wall >= 0" true (br.Run.bwall_ms >= 0.)

let () =
  Alcotest.run "batch"
    [ ( "representation",
        [ Alcotest.test_case "builder typing + bytes" `Quick test_builder_typing;
          Alcotest.test_case "find_col = Tuple.get" `Quick test_find_col_matches_tuple_get;
          Alcotest.test_case "mask = Pred.eval" `Quick test_mask_matches_pred_eval ] );
      ( "differential",
        [ Alcotest.test_case "all operators, boundary batch sizes" `Quick
            test_diff_operators;
          Alcotest.test_case "empty inputs" `Quick test_diff_empty_table;
          Alcotest.test_case "materialized input" `Quick test_materialized_roundtrip ] );
      ( "accounting",
        [ Alcotest.test_case "incremental count/bytes exact" `Quick
            test_incremental_accounting;
          Alcotest.test_case "wall clock populated" `Quick test_wall_clock_present ] ) ]
