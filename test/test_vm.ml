(* Differential tests for the bytecode formula backend: the registration-time
   optimizer (Opt) plus the flat VM (Vm) must be observationally equivalent to
   the closure reference backend (Compile) — bit-identical values and identical
   Eval_error behavior — and pre-resolved statistics slots must be invalidated
   by the registry generation stamp, never served stale. *)

open Disco_common
open Disco_algebra
open Disco_costlang
open Disco_core
open Disco_wrapper
open Disco_mediator
module A = Ast

(* --- A self-contained evaluation environment ---------------------------------

   Mirrors the estimator's contract: a reference resolver (raising Eval_error
   for unknown paths), wrapper defs applied through the closure machinery on
   both backends, and a few context functions — including [isname], which
   observes the representation of its argument and so catches any rewrite that
   illegally changes a value's constructor. *)

let head_vars = [ "C"; "A" ]
let head_var x = List.mem x head_vars
let dynamic_first x = head_var x || x = "Local1" || Option.is_some (A.cost_var_of_name x)

let ref_pool : (string list * Value.t) list =
  [ ([ "S1" ], Value.Vnum 3.5);
    ([ "S2" ], Value.Vnum 0.);
    ([ "T"; "CountObject" ], Value.Vnum 100.);
    ([ "T"; "id"; "Min" ], Value.Vconst (Constant.Int 7));
    ([ "NameRef" ], Value.Vname "salary");
    ([ "C" ], Value.Vname "Employee");
    ([ "C"; "CountObject" ], Value.Vnum 250.);
    ([ "Local1" ], Value.Vnum 5.);
    ([ "S2"; "A" ], Value.Vnum 9.) ]

let res path =
  match List.assoc_opt path ref_pool with
  | Some v -> v
  | None -> raise (Err.Eval_error (Fmt.str "unresolved %s" (String.concat "." path)))

let defs : (string * Compile.def) list =
  [ ("dbl", Compile.compile_def ~params:[ "x" ] A.(Binop (Mul, Ref [ "x" ], Num 2.)));
    ( "wavg",
      Compile.compile_def ~params:[ "x"; "y" ]
        A.(Binop (Div, Binop (Add, Ref [ "x" ], Ref [ "y" ]), Num 2.)) );
    ("konst", Compile.compile_def ~params:[ "x" ] (A.Num 42.)) ]

let def_lookup name =
  Option.map (fun (d : Compile.def) -> (d.Compile.params, d.Compile.def_ast))
    (List.assoc_opt name defs)

let rec cctx = { Compile.resolve_ref = res; call = callf }

and callf name args =
  match List.assoc_opt name defs with
  | Some def -> Compile.apply_def def cctx args
  | None ->
    (match (name, args) with
     | "min2", [ a; b ] -> Value.Vnum (Float.min (Value.to_num a) (Value.to_num b))
     | "isname", [ a ] ->
       Value.Vnum (match a with Value.Vname _ -> 1. | _ -> 0.)
     | "ceil", [ a ] -> Value.Vnum (Float.ceil (Value.to_num a))
     | _ -> raise (Err.Eval_error ("unknown function " ^ name)))

type outcome = Ok_v of Value.t | Raised of string

let run f = try Ok_v (f ()) with Err.Eval_error m -> Raised m

let closure_eval e = run (fun () -> Compile.compile e cctx)

(* Compile with the full pipeline and execute twice over the same slot table:
   the second run must serve cached slots and still agree. *)
let vm_eval e =
  let e' = Opt.pipeline ~lookup:def_lookup e in
  let b = Vm.new_builder () in
  let prog = Vm.compile b ~dynamic_first ~head_var e' in
  let slots = Vm.finish b in
  let exec () =
    let bank =
      if Vm.slot_count slots = 0 then Vm.empty_bank
      else Vm.slot_cache slots ~generation:1 ~source:"s"
    in
    let ctx =
      { Vm.bank; dmemo = Vm.new_bank (Vm.dyn_count slots); slots;
        resolve = res; call = callf }
    in
    Vm.exec prog ctx
  in
  (run exec, run exec)

let same_float x y =
  Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y)
  || (x = 0. && y = 0.)
  || (Float.is_nan x && Float.is_nan y)

let same_value a b =
  match (a, b) with
  | Value.Vnum x, Value.Vnum y -> same_float x y
  | Value.Vconst c1, Value.Vconst c2 -> Constant.equal c1 c2
  | Value.Vname n1, Value.Vname n2 -> String.equal n1 n2
  | Value.Vpred p1, Value.Vpred p2 -> p1 = p2
  | _ -> false

(* The backends may evaluate operands in a different order, so when both
   raise we compare only the fact of the Eval_error, not its message. *)
let same_outcome a b =
  match (a, b) with
  | Ok_v va, Ok_v vb -> same_value va vb
  | Raised _, Raised _ -> true
  | _ -> false

let pp_outcome ppf = function
  | Ok_v v -> Value.pp ppf v
  | Raised m -> Fmt.pf ppf "Eval_error %S" m

let check_differential e =
  let c = closure_eval e in
  let v1, v2 = vm_eval e in
  if not (same_outcome c v1) then
    Alcotest.failf "backends disagree: closure %a, vm %a" pp_outcome c pp_outcome v1;
  if not (same_outcome v1 v2) then
    Alcotest.failf "vm unstable across slot-cached runs: %a then %a" pp_outcome v1
      pp_outcome v2;
  true

(* --- Random well-typed cost ASTs -------------------------------------------- *)

let gen_expr : A.expr QCheck2.Gen.t =
  QCheck2.Gen.(
    let num =
      map (fun i -> A.Num (List.nth [ 0.; 1.; -1.; 2.5; 0.1; 1e6; 7.; 1e308 ] i))
        (int_range 0 7)
    in
    let reference =
      let paths = [ "Missing" ] :: List.map fst ref_pool in
      map (fun i -> A.Ref (List.nth paths i)) (int_range 0 (List.length paths - 1))
    in
    let leaf = oneof [ num; num; reference ] in
    let rec tree n =
      if n = 0 then leaf
      else
        let sub = tree (n - 1) in
        oneof
          [ leaf;
            map (fun e -> A.Neg e) sub;
            (let op =
               map (fun i -> List.nth [ A.Add; A.Sub; A.Mul; A.Div ] i) (int_range 0 3)
             in
             map3 (fun op a b -> A.Binop (op, a, b)) op sub sub);
            (let call1 =
               map (fun i -> List.nth [ "dbl"; "konst"; "isname"; "ceil"; "nosuch" ] i)
                 (int_range 0 4)
             in
             map2 (fun f a -> A.Call (f, [ a ])) call1 sub);
            (let call2 = map (fun i -> List.nth [ "wavg"; "min2" ] i) (int_range 0 1) in
             map3 (fun f a b -> A.Call (f, [ a; b ])) call2 sub sub) ]
    in
    tree 4)

let prop_backends_agree =
  QCheck2.Test.make ~name:"vm = closure on random formulas" ~count:2000 gen_expr
    check_differential

(* --- Hand-picked differential cases ------------------------------------------ *)

let test_differential_cases () =
  let cases =
    A.
      [ (* division by zero must raise on both backends, never fold away *)
        Binop (Div, Num 1., Num 0.);
        Binop (Div, Ref [ "S1" ], Ref [ "S2" ]);
        Binop (Div, Num 0., Num 0.);
        (* a zero multiplier must not erase a raising operand *)
        Binop (Mul, Num 0., Ref [ "Missing" ]);
        Binop (Mul, Num 0., Binop (Div, Num 1., Num 0.));
        (* representation is observable in argument position: x*1 / x+0 stay *)
        Call ("isname", [ Ref [ "C" ] ]);
        Call ("isname", [ Binop (Mul, Ref [ "S1" ], Num 1.) ]);
        Call ("isname", [ Ref [ "T"; "id"; "Min" ] ]);
        (* def calls: inlinable, constant-foldable, unknown-arity, recursive *)
        Call ("dbl", [ Ref [ "S1" ] ]);
        Call ("dbl", [ Num 21. ]);
        Call ("wavg", [ Ref [ "T"; "CountObject" ]; Ref [ "C"; "CountObject" ] ]);
        Call ("konst", [ Ref [ "Missing" ] ]);
        Call ("dbl", [ Num 1.; Num 2. ]);
        Call ("nosuch", [ Num 1. ]);
        (* mixed static/dynamic references and negation *)
        Neg (Binop (Add, Ref [ "Local1" ], Ref [ "S2"; "A" ]));
        Binop (Sub, Neg (Num 0.), Num 0.);
        Binop (Add, Binop (Mul, Ref [ "S1" ], Ref [ "S1" ]), Binop (Mul, Ref [ "S1" ], Ref [ "S1" ]));
        Ref [ "Missing" ] ]
  in
  List.iter (fun e -> ignore (check_differential e)) cases

(* --- The optimizer's rewrite rules ------------------------------------------- *)

let expr = Alcotest.testable (fun ppf (_ : A.expr) -> Fmt.pf ppf "<expr>") ( = )

let test_simplify () =
  let x = A.Ref [ "X" ] in
  Alcotest.check expr "constant folding" (A.Num 5.)
    (Opt.simplify A.(Binop (Add, Num 2., Num 3.)));
  Alcotest.check expr "x * 1 in numeric context" x
    (Opt.simplify ~num:true A.(Binop (Mul, x, Num 1.)));
  Alcotest.check expr "x + 0 in numeric context" x
    (Opt.simplify ~num:true A.(Binop (Add, Num 0., x)));
  (* in value context the representation (Vnum vs Vconst/Vname) is observable *)
  Alcotest.check expr "x * 1 preserved in value context"
    A.(Binop (Mul, x, Num 1.))
    (Opt.simplify A.(Binop (Mul, x, Num 1.)));
  (* effects are preserved *)
  Alcotest.check expr "x / 0 never folds"
    A.(Binop (Div, Num 1., Num 0.))
    (Opt.simplify ~num:true A.(Binop (Div, Num 1., Num 0.)));
  Alcotest.check expr "0 * ref keeps the (possibly raising) ref"
    A.(Binop (Mul, Num 0., x))
    (Opt.simplify ~num:true A.(Binop (Mul, Num 0., x)));
  Alcotest.check expr "0 * literal folds" (A.Num 0.)
    (Opt.simplify ~num:true A.(Binop (Mul, Num 0., Num 17.)));
  Alcotest.check expr "double negation in numeric context" x
    (Opt.simplify ~num:true A.(Neg (Neg x)))

let test_inline_defs () =
  let lookup = def_lookup in
  Alcotest.check expr "wrapper def inlined"
    A.(Binop (Mul, Ref [ "X" ], Num 2.))
    (Opt.inline_defs ~lookup A.(Call ("dbl", [ Ref [ "X" ] ])));
  Alcotest.check expr "pipeline folds inlined constants" (A.Num 42.)
    (Opt.pipeline ~lookup A.(Call ("dbl", [ Num 21. ])));
  (* a non-atomic argument would be duplicated or re-evaluated: leave it *)
  let fat = A.(Call ("dbl", [ Binop (Add, Ref [ "X" ], Ref [ "Y" ]) ])) in
  Alcotest.check expr "non-atomic argument not inlined" fat (Opt.inline_defs ~lookup fat);
  (* arity mismatches go to the runtime path, which raises *)
  let bad = A.(Call ("dbl", [ Num 1.; Num 2. ])) in
  Alcotest.check expr "arity mismatch untouched" bad (Opt.inline_defs ~lookup bad);
  (* recursion terminates and keeps a runtime call *)
  let rec_lookup = function
    | "r" -> Some ([ "x" ], A.(Binop (Add, Call ("r", [ Ref [ "x" ] ]), Num 1.)))
    | _ -> None
  in
  let e = A.(Call ("r", [ Num 0. ])) in
  Alcotest.(check bool) "recursive def terminates" true
    (match Opt.inline_defs ~lookup:rec_lookup e with _ -> true)

(* --- Slot tables -------------------------------------------------------------- *)

let test_slot_cache () =
  let b = Vm.new_builder () in
  let _p =
    Vm.compile b ~dynamic_first ~head_var A.(Binop (Add, Ref [ "S1" ], Ref [ "T"; "CountObject" ]))
  in
  let slots = Vm.finish b in
  Alcotest.(check int) "two slots collected" 2 (Vm.slot_count slots);
  let bank = Vm.slot_cache slots ~generation:1 ~source:"s" in
  bank.Vm.bvals.(0) <- Some (Value.Vnum 1.);
  let bank' = Vm.slot_cache slots ~generation:1 ~source:"s" in
  Alcotest.(check bool) "same generation keeps cached values" true
    (bank == bank' && bank'.Vm.bvals.(0) = Some (Value.Vnum 1.));
  let other = Vm.slot_cache slots ~generation:1 ~source:"t" in
  Alcotest.(check bool) "per-source columns" true (other.Vm.bvals.(0) = None);
  let bank2 = Vm.slot_cache slots ~generation:2 ~source:"s" in
  Alcotest.(check bool) "generation bump drops the cache" true
    (bank2.Vm.bvals.(0) = None)

let test_slot_sharing_across_body () =
  (* one rule body: the same static path in two formulas shares one slot *)
  let b = Vm.new_builder () in
  let _ = Vm.compile b ~dynamic_first ~head_var A.(Binop (Mul, Ref [ "S1" ], Num 2.)) in
  let _ = Vm.compile b ~dynamic_first ~head_var A.(Binop (Add, Ref [ "S1" ], Ref [ "S2" ])) in
  let slots = Vm.finish b in
  Alcotest.(check int) "shared slot" 2 (Vm.slot_count slots)

let test_dynamic_refs_not_slotted () =
  let b = Vm.new_builder () in
  let _ =
    Vm.compile b ~dynamic_first ~head_var
      A.(Binop (Add, Ref [ "C"; "CountObject" ], Binop (Add, Ref [ "Local1" ], Ref [ "S2"; "A" ])))
  in
  let slots = Vm.finish b in
  Alcotest.(check int) "head-var, local and head-var-segment paths stay dynamic" 0
    (Vm.slot_count slots)

(* --- End-to-end: both backends drive identical optimizer decisions ------------ *)

let fed_queries =
  [ "select e.id from Employee e where e.salary > 25000";
    "select e.id, p.id from Employee e, Project p \
     where e.dept_id = p.dept_id and e.salary > 28000 and p.cost < 8000";
    "select e.id, l.rating, p.id from Employee e, Listing l, Project p \
     where l.emp_id = e.id and e.dept_id = p.dept_id \
     and e.salary > 28500 and p.cost < 6500";
    "select t.id, p.kind from Task t, Project p \
     where t.project_id = p.id and t.hours > 380";
    "select e.dept_id, count(*) as n from Employee e group by e.dept_id \
     order by n desc limit 5";
    "select * from Department d order by d.id" ]

let make_fed backend =
  let med = Mediator.create ~backend () in
  List.iter (Mediator.register med) (Demo.make ~sizes:Demo.small_sizes ());
  med

let test_federation_differential () =
  let med_c = make_fed Registry.Closure in
  let med_b = make_fed Registry.Bytecode in
  List.iter
    (fun q ->
      let plan_c, cost_c = Mediator.plan_query med_c q in
      let plan_b, cost_b = Mediator.plan_query med_b q in
      Alcotest.(check bool) (Fmt.str "identical plan for %S" q) true
        (Plan.equal plan_c plan_b);
      Alcotest.(check bool) (Fmt.str "bit-identical cost for %S" q) true
        (same_float cost_c cost_b))
    fed_queries

let make_oo7 backend =
  let catalog = Disco_catalog.Catalog.create () in
  let registry = Registry.create ~backend catalog in
  Generic.register registry;
  let source = Disco_oo7.Oo7.make_source ~config:Disco_oo7.Oo7.small_config () in
  ignore (Registry.register_source_decl registry (Wrapper.registration_decl source));
  registry

let test_oo7_differential () =
  let reg_c = make_oo7 Registry.Closure in
  let reg_b = make_oo7 Registry.Bytecode in
  List.iter
    (fun (name, plan) ->
      let est r = Estimator.estimate ~source:"oo7" r plan in
      let tc = Estimator.total_time (est reg_c) and tb = Estimator.total_time (est reg_b) in
      Alcotest.(check bool) (Fmt.str "bit-identical total for %s" name) true
        (same_float tc tb);
      List.iter
        (fun v ->
          match (Estimator.var (est reg_c) v, Estimator.var (est reg_b) v) with
          | Some a, Some b ->
            Alcotest.(check bool)
              (Fmt.str "bit-identical %s for %s" (A.cost_var_name v) name)
              true (same_float a b)
          | None, None -> ()
          | _ -> Alcotest.failf "variable coverage differs for %s" name)
        A.all_cost_vars)
    (Disco_oo7.Oo7.queries Disco_oo7.Oo7.small_config)

(* --- Invalidation: generation bumps must defeat pre-resolved slots ------------ *)

let test_calibration_update_invalidates_slots () =
  (* The wrapper rule references the generic parameter IO, which pre-resolves
     into a slot. Re-registering the generic model with a new calibration does
     NOT recompile the wrapper's rule — only the generation stamp protects us
     from serving the stale coefficient. *)
  let catalog = Disco_catalog.Catalog.create () in
  let registry = Registry.create catalog in
  Generic.register registry;
  ignore
    (Registry.register_text registry ~what:"src"
       {| source src {
            interface Employee {
              attribute long id;
              cardinality extent(1000, 120000, 120);
            }
            rule scan(C) { TotalTime = IO * 10; }
          } |});
  let scan =
    Disco_algebra.Plan.Scan { Disco_algebra.Plan.source = "src"; collection = "Employee"; binding = "e" }
  in
  let total () =
    Estimator.total_time (Estimator.estimate ~source:"src" registry scan)
  in
  Alcotest.(check (float 0.)) "initial coefficient" 250. (total ());
  let gen0 = Registry.generation registry in
  Generic.register
    ~calibration:{ Generic.default_calibration with Generic.io_ms = 100. }
    registry;
  Alcotest.(check bool) "re-registration bumps the generation" true
    (Registry.generation registry > gen0);
  Alcotest.(check (float 0.)) "next evaluation sees the new coefficient" 1000. (total ())

let test_statistics_update_invalidates_slots () =
  (* Same shape for catalog statistics: the rule pre-resolves
     Employee.CountObject; re-registering the source with a new extent must be
     visible immediately. *)
  let catalog = Disco_catalog.Catalog.create () in
  let registry = Registry.create catalog in
  Generic.register registry;
  let text count =
    Fmt.str
      {| source src {
           interface Employee {
             attribute long id;
             cardinality extent(%d, 120000, 120);
           }
           rule scan(Employee) { TotalTime = Employee.CountObject / 10; }
         } |}
      count
  in
  ignore (Registry.register_text registry ~what:"src" (text 1000));
  let scan =
    Disco_algebra.Plan.Scan { Disco_algebra.Plan.source = "src"; collection = "Employee"; binding = "e" }
  in
  let total () = Estimator.total_time (Estimator.estimate ~source:"src" registry scan) in
  Alcotest.(check (float 0.)) "initial statistics" 100. (total ());
  ignore (Registry.register_text registry ~what:"src" (text 5000));
  Alcotest.(check (float 0.)) "refreshed statistics" 500. (total ())

let test_history_feedback_after_preresolution () =
  (* Historical feedback arriving after rules were compiled and slots resolved:
     an adjustment factor (paper §4.3.1) and a query-scope record must both be
     reflected in the next evaluation. *)
  let med = make_fed Registry.Bytecode in
  let registry = Mediator.registry med in
  (* the files source exports no rules: its submit estimate comes from the
     generic rule, which consults the adjust(W) factor *)
  let q = "select doc.doc_id from Document doc where doc.bytes > 50000" in
  let _, cost0 = Mediator.plan_query med q in
  Registry.set_adjust registry ~source:"files" 4.;
  let _, cost1 = Mediator.plan_query med q in
  Alcotest.(check bool) "adjustment factor raises the submit estimate" true
    (cost1 > cost0);
  Registry.set_adjust registry ~source:"files" 1.;
  let _, cost2 = Mediator.plan_query med q in
  Alcotest.(check bool) "factor reset restores the estimate" true (same_float cost2 cost0)

let test_calibrated_backends_agree () =
  (* after a live calibration update, the two backends still agree bit-for-bit *)
  let cal = { Generic.default_calibration with Generic.io_ms = 60.; output_ms = 2. } in
  let q = "select e.id from Employee e where e.salary > 25000" in
  let med_b = make_fed Registry.Bytecode in
  Generic.register ~calibration:cal (Mediator.registry med_b);
  let med_c = make_fed Registry.Closure in
  Generic.register ~calibration:cal (Mediator.registry med_c);
  let plan_b, cost_b = Mediator.plan_query med_b q in
  let plan_c, cost_c = Mediator.plan_query med_c q in
  Alcotest.(check bool) "same plan after calibration" true (Plan.equal plan_b plan_c);
  Alcotest.(check bool) "bit-identical cost after calibration" true
    (same_float cost_b cost_c)

let () =
  Alcotest.run "vm"
    [ ( "differential",
        [ QCheck_alcotest.to_alcotest prop_backends_agree;
          Alcotest.test_case "hand-picked cases" `Quick test_differential_cases ] );
      ( "optimizer",
        [ Alcotest.test_case "simplify" `Quick test_simplify;
          Alcotest.test_case "def inlining" `Quick test_inline_defs ] );
      ( "slots",
        [ Alcotest.test_case "cache and generation" `Quick test_slot_cache;
          Alcotest.test_case "sharing across a body" `Quick test_slot_sharing_across_body;
          Alcotest.test_case "dynamic refs stay dynamic" `Quick test_dynamic_refs_not_slotted ] );
      ( "end to end",
        [ Alcotest.test_case "federation plans and costs" `Quick test_federation_differential;
          Alcotest.test_case "oo7 estimates" `Quick test_oo7_differential ] );
      ( "invalidation",
        [ Alcotest.test_case "calibration update" `Quick test_calibration_update_invalidates_slots;
          Alcotest.test_case "statistics update" `Quick test_statistics_update_invalidates_slots;
          Alcotest.test_case "history feedback" `Quick test_history_feedback_after_preresolution;
          Alcotest.test_case "calibrated backends agree" `Quick test_calibrated_backends_agree ] ) ]
