(* Tests for lib/exec: tuples, physical translation (access-path selection),
   and the measuring evaluator — checked against a naive reference
   implementation on randomized data. *)

open Disco_common
open Disco_catalog
open Disco_algebra
open Disco_storage
open Disco_exec

(* --- Fixtures ------------------------------------------------------------------ *)

let part_schema =
  Schema.collection "Part"
    [ ("id", Schema.Tint); ("weight", Schema.Tint); ("kind", Schema.Tstring) ]

let box_schema =
  Schema.collection "Box" [ ("id", Schema.Tint); ("part_id", Schema.Tint) ]

let mk_part_rows n =
  let rng = Rng.create ~seed:11 in
  let rows =
    List.init n (fun i ->
        [| Constant.Int (i + 1);
           Constant.Int (Rng.int rng 50);
           Constant.String (Rng.pick rng [| "a"; "b"; "c" |]) |])
  in
  let arr = Array.of_list rows in
  Rng.shuffle rng arr;
  Array.to_list arr

let part_table ?(n = 400) () =
  Table.create ~name:"Part" ~schema:part_schema ~object_size:56 ~index_on:[ "id" ]
    (mk_part_rows n)

let box_table ?(n = 120) ~parts () =
  let rng = Rng.create ~seed:13 in
  let rows =
    List.init n (fun i ->
        [| Constant.Int (i + 1); Constant.Int (1 + Rng.int rng parts) |])
  in
  Table.create ~name:"Box" ~schema:box_schema ~object_size:24 ~index_on:[ "id"; "part_id" ]
    rows

let engine = Costs.relational

let env () =
  { Run.engine; buffer = Buffer.create ~capacity:1024; hash_join = false; adts = [] }

let find_table parts boxes name =
  match name with
  | "Part" -> parts
  | "Box" -> boxes
  | other -> raise (Err.Unknown_collection other)

let exec ?parts ?boxes plan =
  let parts = match parts with Some t -> t | None -> part_table () in
  let boxes = match boxes with Some t -> t | None -> box_table ~parts:400 () in
  let phys = Physical.of_logical ~engine ~find_table:(find_table parts boxes) plan in
  (Run.run (env ()) phys, phys)

let scan_part = Plan.Scan { Plan.source = "s"; collection = "Part"; binding = "p" }
let scan_box = Plan.Scan { Plan.source = "s"; collection = "Box"; binding = "b" }

(* Naive reference evaluation over the raw rows. *)
let naive_part_rows table =
  List.map
    (fun row ->
      Tuple.make [| "p.id"; "p.weight"; "p.kind" |] row)
    (Table.rows table)

(* --- Tuple ---------------------------------------------------------------------- *)

let test_tuple_basics () =
  let t = Tuple.make [| "p.id"; "p.weight" |] [| Constant.Int 1; Constant.Int 9 |] in
  Alcotest.(check bool) "get qualified" true (Constant.equal (Tuple.get t "p.id") (Constant.Int 1));
  Alcotest.(check bool) "get by suffix" true
    (Constant.equal (Tuple.get t "weight") (Constant.Int 9));
  Alcotest.(check bool) "missing raises" true
    (try
       ignore (Tuple.get t "zzz");
       false
     with Err.Eval_error _ -> true);
  let u = Tuple.concat t (Tuple.make [| "b.id" |] [| Constant.Int 5 |]) in
  Alcotest.(check int) "concat arity" 3 (Tuple.arity u);
  let v = Tuple.project u [ "b.id"; "p.id" ] in
  Alcotest.(check int) "project arity" 2 (Tuple.arity v);
  Alcotest.(check bool) "project order" true
    (Constant.equal v.Tuple.values.(0) (Constant.Int 5))

let test_tuple_ambiguous_suffix () =
  let t =
    Tuple.make [| "p.id"; "b.id" |] [| Constant.Int 1; Constant.Int 2 |]
  in
  Alcotest.(check bool) "ambiguous bare name raises" true
    (try
       ignore (Tuple.get t "id");
       false
     with Err.Eval_error _ -> true)

(* --- Physical translation: access-path selection ---------------------------------- *)

let test_access_path_index_for_equality () =
  let parts = part_table () in
  let plan = Plan.Select (scan_part, Pred.Cmp ("p.id", Pred.Eq, Constant.Int 5)) in
  let phys =
    Physical.of_logical ~engine ~find_table:(find_table parts (box_table ~parts:400 ()))
      plan
  in
  (match phys with
   | Physical.Pscan { access = Physical.Index_scan { attr = "id"; _ }; _ } -> ()
   | p -> Alcotest.failf "expected index scan, got %a" Physical.pp p)

let test_access_path_seq_when_unindexed () =
  let parts = part_table () in
  let plan = Plan.Select (scan_part, Pred.Cmp ("p.weight", Pred.Eq, Constant.Int 5)) in
  let phys =
    Physical.of_logical ~engine ~find_table:(find_table parts (box_table ~parts:400 ()))
      plan
  in
  (match phys with
   | Physical.Pscan { access = Physical.Full_scan; residual; _ } ->
     Alcotest.(check bool) "residual kept" false (Pred.equal residual Pred.True)
   | p -> Alcotest.failf "expected full scan, got %a" Physical.pp p)

let test_access_path_cost_consistent () =
  (* whatever access is chosen, it must be the one its own cost model ranks
     cheapest *)
  let parts = part_table () in
  List.iter
    (fun (op, v) ->
      let pred = Pred.Cmp ("p.id", op, Constant.Int v) in
      let phys =
        Physical.of_logical ~engine
          ~find_table:(find_table parts (box_table ~parts:400 ()))
          (Plan.Select (scan_part, pred))
      in
      let idx = Option.get (Table.index parts "id") in
      let k = List.length (Btree.search idx op (Constant.Int v)) in
      let icost = Physical.index_scan_cost engine parts ~clustered:false k in
      let fcost = Physical.full_scan_cost engine parts ~matches:k in
      match phys with
      | Physical.Pscan { access = Physical.Index_scan _; _ } ->
        Alcotest.(check bool) "index is argmin" true (icost < fcost)
      | Physical.Pscan { access = Physical.Full_scan; _ } ->
        Alcotest.(check bool) "full is argmin" true (fcost <= icost)
      | p -> Alcotest.failf "unexpected plan %a" Physical.pp p)
    [ (Pred.Eq, 5); (Pred.Le, 10); (Pred.Ge, 1); (Pred.Lt, 390); (Pred.Ne, 0) ]

let test_access_path_seq_when_probe_expensive () =
  (* a flat-file-like engine with a prohibitive probe cost prefers the full
     scan even when an index exists *)
  let parts = part_table ~n:150 () in
  let plan = Plan.Select (scan_part, Pred.Cmp ("p.id", Pred.Ge, Constant.Int 1)) in
  let phys =
    Physical.of_logical ~engine:Costs.flat_file
      ~find_table:(find_table parts (box_table ~parts:150 ()))
      plan
  in
  (match phys with
   | Physical.Pscan { access = Physical.Full_scan; _ } -> ()
   | p -> Alcotest.failf "expected full scan, got %a" Physical.pp p)

let test_residual_after_index_choice () =
  let parts = part_table () in
  let pred =
    Pred.And
      ( Pred.Cmp ("p.id", Pred.Eq, Constant.Int 5),
        Pred.Cmp ("p.weight", Pred.Lt, Constant.Int 100) )
  in
  let plan = Plan.Select (scan_part, pred) in
  let phys =
    Physical.of_logical ~engine ~find_table:(find_table parts (box_table ~parts:400 ()))
      plan
  in
  (match phys with
   | Physical.Pscan { access = Physical.Index_scan _; residual; _ } ->
     Alcotest.(check bool) "residual is the weight conjunct" true
       (Pred.equal residual (Pred.Cmp ("p.weight", Pred.Lt, Constant.Int 100)))
   | p -> Alcotest.failf "expected index scan with residual, got %a" Physical.pp p)

let test_index_join_selected () =
  let plan =
    Plan.Join (scan_box, scan_part, Pred.Attr_cmp ("b.part_id", Pred.Eq, "p.id"))
  in
  let parts = part_table () in
  let phys =
    Physical.of_logical ~engine ~find_table:(find_table parts (box_table ~parts:400 ()))
      plan
  in
  (match phys with
   | Physical.Pindex_join { inner_attr = "id"; outer_attr = "b.part_id"; _ } -> ()
   | p -> Alcotest.failf "expected index join, got %a" Physical.pp p)

let test_submit_rejected () =
  let parts = part_table () in
  Alcotest.(check bool) "submit in wrapper subplan raises" true
    (try
       ignore
         (Physical.of_logical ~engine
            ~find_table:(find_table parts (box_table ~parts:400 ()))
            (Plan.Submit ("s", scan_part)));
       false
     with Err.Plan_error _ -> true)

(* --- Evaluator correctness ---------------------------------------------------------- *)

let test_scan_results () =
  let parts = part_table () in
  let r, _ = exec ~parts scan_part in
  Alcotest.(check int) "all rows" 400 (List.length r.Run.rows);
  Alcotest.(check bool) "times ordered" true (r.Run.total >= r.Run.first && r.Run.first > 0.)

let test_select_equivalence_index_vs_naive () =
  let parts = part_table () in
  let pred = Pred.Cmp ("p.id", Pred.Le, Constant.Int 37) in
  let r, phys = exec ~parts (Plan.Select (scan_part, pred)) in
  (match phys with
   | Physical.Pscan { access = Physical.Index_scan _; _ } -> ()
   | _ -> Alcotest.fail "expected index scan for selective range");
  let expected =
    List.filter (fun t -> Pred.eval (Tuple.get t) pred) (naive_part_rows parts)
  in
  Alcotest.(check int) "same count" (List.length expected) (List.length r.Run.rows);
  let ids rows =
    List.sort compare
      (List.map (fun t -> Constant.to_string (Tuple.get t "p.id")) rows)
  in
  Alcotest.(check (list string)) "same ids" (ids expected) (ids r.Run.rows)

let test_join_equivalence () =
  let parts = part_table ~n:100 () in
  let boxes = box_table ~n:50 ~parts:100 () in
  let pred = Pred.Attr_cmp ("b.part_id", Pred.Eq, "p.id") in
  (* index join (inner scan of Part) *)
  let r1, phys1 = exec ~parts ~boxes (Plan.Join (scan_box, scan_part, pred)) in
  (match phys1 with
   | Physical.Pindex_join _ -> ()
   | _ -> Alcotest.fail "expected index join");
  (* force nested loop by joining the other way with an unindexed pred *)
  let r2, _ =
    exec ~parts ~boxes
      (Plan.Join (scan_box, Plan.Select (scan_part, Pred.True), pred))
  in
  Alcotest.(check int) "both joins agree" (List.length r1.Run.rows)
    (List.length r2.Run.rows);
  Alcotest.(check int) "one row per box" 50 (List.length r1.Run.rows)

let test_sort_order () =
  let parts = part_table ~n:50 () in
  let r, _ = exec ~parts (Plan.Sort (scan_part, [ ("p.id", Plan.Desc) ])) in
  let ids = List.map (fun t -> Tuple.get t "p.id") r.Run.rows in
  let rec desc = function
    | a :: b :: rest -> Constant.compare a b >= 0 && desc (b :: rest)
    | _ -> true
  in
  Alcotest.(check bool) "descending" true (desc ids);
  Alcotest.(check bool) "sort is blocking" true (r.Run.first > 0.)

let test_dedup () =
  let parts = part_table ~n:200 () in
  let r, _ = exec ~parts (Plan.Dedup (Plan.Project (scan_part, [ "p.kind" ]))) in
  Alcotest.(check int) "three kinds" 3 (List.length r.Run.rows)

let test_union () =
  let parts = part_table ~n:30 () in
  let r, _ = exec ~parts (Plan.Union (scan_part, scan_part)) in
  Alcotest.(check int) "bag union" 60 (List.length r.Run.rows)

let test_aggregate () =
  let parts = part_table ~n:100 () in
  let r, _ =
    exec ~parts
      (Plan.Aggregate
         ( scan_part,
           { Plan.group_by = [ "p.kind" ];
             aggs =
               [ (Plan.Count, "", "n");
                 (Plan.Sum, "p.weight", "total_weight");
                 (Plan.Min, "p.id", "min_id");
                 (Plan.Max, "p.id", "max_id");
                 (Plan.Avg, "p.weight", "avg_weight") ] } ))
  in
  Alcotest.(check int) "three groups" 3 (List.length r.Run.rows);
  (* spot check: counts sum to the input size *)
  let total_n =
    List.fold_left
      (fun acc t ->
        match Tuple.get t "n" with Constant.Int n -> acc + n | _ -> acc)
      0 r.Run.rows
  in
  Alcotest.(check int) "counts partition input" 100 total_n;
  (* avg consistent with sum/count on each group *)
  List.iter
    (fun t ->
      let n = Constant.to_float_opt (Tuple.get t "n") |> Option.get in
      let sum = Constant.to_float_opt (Tuple.get t "total_weight") |> Option.get in
      let avg = Constant.to_float_opt (Tuple.get t "avg_weight") |> Option.get in
      Alcotest.(check (float 1e-6)) "avg = sum/n" (sum /. n) avg)
    r.Run.rows

let test_aggregate_empty_group_by () =
  let parts = part_table ~n:10 () in
  let r, _ =
    exec ~parts
      (Plan.Aggregate (scan_part, { Plan.group_by = []; aggs = [ (Plan.Count, "", "n") ] }))
  in
  Alcotest.(check int) "single group" 1 (List.length r.Run.rows);
  (match (List.hd r.Run.rows).Tuple.values with
   | [| Constant.Int 10 |] -> ()
   | _ -> Alcotest.fail "count(*) = 10")

let test_materialized_passthrough () =
  let rows = [ Tuple.make [| "x" |] [| Constant.Int 1 |] ] in
  let r = Run.run (env ()) (Physical.Pmaterialized { rows; count = 1; first = 5.; total = 9. }) in
  Alcotest.(check int) "rows" 1 (List.length r.Run.rows);
  Alcotest.(check (float 0.)) "first" 5. r.Run.first;
  Alcotest.(check (float 0.)) "total" 9. r.Run.total

(* --- Measured costs ------------------------------------------------------------------ *)

let test_measure_vector () =
  let parts = part_table ~n:100 () in
  let plan = Plan.Select (scan_part, Pred.Cmp ("p.id", Pred.Le, Constant.Int 10)) in
  let phys =
    Physical.of_logical ~engine ~find_table:(find_table parts (box_table ~parts:100 ()))
      plan
  in
  let rows, v = Run.measure (env ()) phys in
  Alcotest.(check (float 0.)) "count matches rows" (float_of_int (List.length rows)) v.Run.count;
  Alcotest.(check bool) "size positive" true (v.Run.size > 0.);
  Alcotest.(check bool) "total >= first" true (v.Run.total_time >= v.Run.time_first);
  let vars = Run.to_cost_vars v in
  Alcotest.(check int) "five cost vars" 5 (List.length vars)

let test_index_scan_cheaper_than_full_when_selective () =
  let parts = part_table ~n:400 () in
  let selective = Pred.Cmp ("p.id", Pred.Eq, Constant.Int 7) in
  let via_index, _ = exec ~parts (Plan.Select (scan_part, selective)) in
  let full, _ = exec ~parts scan_part in
  Alcotest.(check bool) "index scan cheaper" true (via_index.Run.total < full.Run.total)

let test_buffer_effect_on_repeat () =
  (* a warm buffer makes the second identical scan cheaper *)
  let parts = part_table ~n:400 () in
  let e = env () in
  let phys =
    Physical.of_logical ~engine ~find_table:(find_table parts (box_table ~parts:400 ()))
      scan_part
  in
  let cold = Run.run e phys in
  let warm = Run.run e phys in
  Alcotest.(check bool) "warm run cheaper" true (warm.Run.total < cold.Run.total)

(* --- Batch boundaries ----------------------------------------------------------------

   The batched engine at its boundary sizes — 1 row per batch, a batch
   larger than the whole input, and an empty input — produces exactly the
   tuple engine's rows and simulated times (the full operator-by-operator
   differential lives in test_batch.ml). *)

let test_batched_boundary_sizes () =
  let parts = part_table ~n:50 () in
  let plan = Plan.Select (scan_part, Pred.Cmp ("p.weight", Pred.Lt, Constant.Int 25)) in
  let phys =
    Physical.of_logical ~engine ~find_table:(find_table parts (box_table ~parts:50 ()))
      plan
  in
  let want = Run.run ~mode:Run.Tuple_at_a_time (env ()) phys in
  List.iter
    (fun batch_size ->
      let got = Run.run ~mode:(Run.Batched { batch_size }) (env ()) phys in
      Alcotest.(check int)
        (Fmt.str "rows @%d" batch_size)
        (List.length want.Run.rows) (List.length got.Run.rows);
      Alcotest.(check bool)
        (Fmt.str "identical rows @%d" batch_size)
        true
        (List.for_all2 Tuple.equal want.Run.rows got.Run.rows);
      Alcotest.(check (float 0.)) (Fmt.str "first @%d" batch_size) want.Run.first
        got.Run.first;
      Alcotest.(check (float 0.)) (Fmt.str "total @%d" batch_size) want.Run.total
        got.Run.total)
    [ 1; 49; 50; 51; 10_000 ]

let test_batched_empty_input () =
  let empty =
    Table.create ~name:"Part" ~schema:part_schema ~object_size:56 ~index_on:[ "id" ] []
  in
  let phys =
    Physical.Pscan
      { table = empty; binding = "p"; access = Physical.Full_scan; residual = Pred.True }
  in
  let want = Run.run ~mode:Run.Tuple_at_a_time (env ()) phys in
  let got = Run.run ~mode:(Run.Batched { batch_size = 1 }) (env ()) phys in
  Alcotest.(check int) "no rows" 0 (List.length got.Run.rows);
  Alcotest.(check (float 0.)) "total" want.Run.total got.Run.total

(* qcheck: filter equivalence between the evaluator and naive evaluation for
   random single-attribute predicates *)
let prop_filter_equivalence =
  QCheck2.Test.make ~name:"select = naive filter (random preds)" ~count:60
    QCheck2.Gen.(pair (int_range 0 6) (int_range (-10) 420))
    (fun (opn, v) ->
      let parts = part_table ~n:150 () in
      let op =
        match opn mod 6 with
        | 0 -> Pred.Eq
        | 1 -> Pred.Ne
        | 2 -> Pred.Lt
        | 3 -> Pred.Le
        | 4 -> Pred.Gt
        | _ -> Pred.Ge
      in
      let pred = Pred.Cmp ("p.id", op, Constant.Int v) in
      let r, _ = exec ~parts (Plan.Select (scan_part, pred)) in
      let expected =
        List.filter (fun t -> Pred.eval (Tuple.get t) pred) (naive_part_rows parts)
      in
      List.length r.Run.rows = List.length expected)

let () =
  Alcotest.run "exec"
    [ ( "tuple",
        [ Alcotest.test_case "basics" `Quick test_tuple_basics;
          Alcotest.test_case "ambiguous suffix" `Quick test_tuple_ambiguous_suffix ] );
      ( "access paths",
        [ Alcotest.test_case "index for equality" `Quick test_access_path_index_for_equality;
          Alcotest.test_case "seq when unindexed" `Quick test_access_path_seq_when_unindexed;
          Alcotest.test_case "choice is cost-consistent" `Quick test_access_path_cost_consistent;
          Alcotest.test_case "seq when probe expensive" `Quick
            test_access_path_seq_when_probe_expensive;
          Alcotest.test_case "residual after index" `Quick test_residual_after_index_choice;
          Alcotest.test_case "index join" `Quick test_index_join_selected;
          Alcotest.test_case "submit rejected" `Quick test_submit_rejected ] );
      ( "evaluator",
        [ Alcotest.test_case "scan" `Quick test_scan_results;
          Alcotest.test_case "select index = naive" `Quick test_select_equivalence_index_vs_naive;
          Alcotest.test_case "join strategies agree" `Quick test_join_equivalence;
          Alcotest.test_case "sort" `Quick test_sort_order;
          Alcotest.test_case "dedup" `Quick test_dedup;
          Alcotest.test_case "union" `Quick test_union;
          Alcotest.test_case "aggregate" `Quick test_aggregate;
          Alcotest.test_case "aggregate no groups" `Quick test_aggregate_empty_group_by;
          Alcotest.test_case "materialized leaf" `Quick test_materialized_passthrough;
          Alcotest.test_case "batched boundary sizes" `Quick test_batched_boundary_sizes;
          Alcotest.test_case "batched empty input" `Quick test_batched_empty_input;
          QCheck_alcotest.to_alcotest prop_filter_equivalence ] );
      ( "measurement",
        [ Alcotest.test_case "vector" `Quick test_measure_vector;
          Alcotest.test_case "index cheaper when selective" `Quick
            test_index_scan_cheaper_than_full_when_selective;
          Alcotest.test_case "buffer warming" `Quick test_buffer_effect_on_repeat ] ) ]
