(* Cardinality test matrix for the feedback-driven statistics subsystem
   (DESIGN.md §11), after the triple_store exemplar's test discipline: each
   case pins an estimated-vs-actual error bound, not just "doesn't crash".

   - fully-bound key predicate estimates ≈ 1 object;
   - unbound scan estimates exactly the extent count;
   - histogram-backed predicates beat the uniform fallback on skewed data;
   - multiple bound attributes multiply their selectivities;
   - join cardinality comes from histogram overlap, separating overlapping
     from disjoint key domains. *)

open Disco_common
open Disco_catalog
open Disco_core
open Disco_storage
open Disco_exec
open Disco_wrapper
open Disco_mediator

let nrows = 2000
let skew_threshold = 9000

(* One source, four tables:
   - Val: [id] unique, [v] skewed (90% of mass above [skew_threshold]),
     [u] uniform and independent of [v];
   - Hot / Cold / Far: single-key tables whose [k] domains overlap fully,
     partially and not at all, for the join-overlap cases. *)
let make_source () =
  let rng = Rng.create ~seed:11 in
  let val_schema =
    Schema.collection "Val"
      [ ("id", Schema.Tint); ("v", Schema.Tint); ("u", Schema.Tint) ]
  in
  let val_rows =
    List.init nrows (fun i ->
        let v =
          if Rng.int rng 10 < 9 then skew_threshold + 1 + Rng.int rng 1000
          else Rng.int rng (skew_threshold + 1)
        in
        [| Constant.Int (i + 1); Constant.Int v; Constant.Int (Rng.int rng 1000) |])
  in
  let keyed name lo hi n =
    let schema = Schema.collection name [ (name ^ "_id", Schema.Tint); ("k", Schema.Tint) ] in
    let rows =
      List.init n (fun i ->
          [| Constant.Int (i + 1); Constant.Int (lo + Rng.int rng (hi - lo + 1)) |])
    in
    Table.create ~name ~schema ~object_size:16 rows
  in
  let tables =
    [ Table.create ~name:"Val" ~schema:val_schema ~object_size:24
        ~index_on:[ "id" ] val_rows;
      keyed "Hot" 1 100 400;
      keyed "Cold" 51 150 400;
      keyed "Far" 1000 1100 400 ]
  in
  Wrapper.create ~name:"skewtest" ~engine:Costs.relational ~network:Costs.lan tables

let mediator ~stats () =
  let stats_mode =
    if stats then Mediator.Stats_feedback History.default_feedback
    else Mediator.Stats_off
  in
  let med = Mediator.create ~stats_mode () in
  Mediator.register med (make_source ());
  med

let med_on = mediator ~stats:true ()
let med_off = mediator ~stats:false ()

(* Estimated output cardinality and actual row count of one query. *)
let est_and_actual med sql =
  let a = Mediator.run_query med sql in
  (Estimator.count_object a.Mediator.estimate, float_of_int (List.length a.Mediator.rows))

let err ~est ~real = Float.abs (est -. real) /. Float.max real 1.

let check_bound name ~bound ~est ~real =
  let e = err ~est ~real in
  Alcotest.(check bool)
    (Fmt.str "%s: est %.1f vs actual %.0f, rel err %.2f <= %.2f" name est real e bound)
    true (e <= bound)

(* --- fully bound: unique key predicate estimates ~ one object -------------- *)

let test_fully_bound () =
  let est, real = est_and_actual med_on "select val.v from Val val where val.id = 42" in
  Alcotest.(check bool) "actual is exactly one row" true (real = 1.);
  (* equi-depth buckets put ~ nrows/32 ids per bucket with as many distinct
     values, so count/distinct ≈ 1; allow sampling slack *)
  Alcotest.(check bool) (Fmt.str "fully bound est %.2f in [0.25, 4]" est)
    true (est >= 0.25 && est <= 4.)

(* --- unbound: scan estimates exactly the extent count ---------------------- *)

let test_unbound () =
  let est, real = est_and_actual med_on "select val.id from Val val" in
  check_bound "unbound scan" ~bound:0.001 ~est ~real;
  Alcotest.(check bool) "extent count exact" true (est = float_of_int nrows)

(* --- skew: histogram beats the uniform fallback ---------------------------- *)

let test_skew_beats_uniform () =
  let sql = "select val.id from Val val where val.v > 9000" in
  let est_u, real = est_and_actual med_off sql in
  let est_h, _ = est_and_actual med_on sql in
  let e_u = err ~est:est_u ~real and e_h = err ~est:est_h ~real in
  (* uniform sees 10% above the cutoff where 90% of the data lives *)
  Alcotest.(check bool) (Fmt.str "uniform badly off (err %.2f > 0.5)" e_u)
    true (e_u > 0.5);
  Alcotest.(check bool) "histogram within 10%" true (e_h <= 0.1);
  Alcotest.(check bool)
    (Fmt.str "histogram at least 2x better (%.3f vs %.3f)" e_h e_u)
    true (e_h *. 2. <= e_u)

let test_skew_range_family () =
  (* error bound holds across the whole range family, not one lucky cutoff *)
  List.iter
    (fun (sql, bound) ->
      let est, real = est_and_actual med_on sql in
      check_bound sql ~bound ~est ~real)
    [ ("select val.id from Val val where val.v <= 2000", 0.5);
      ("select val.id from Val val where val.v > 5000", 0.1);
      ("select val.id from Val val where val.v > 9900", 0.25) ]

(* --- conjunction: bound attributes multiply selectivities ------------------ *)

let test_conjunction_multiplies () =
  (* u and v are independent: P(u <= 500 && v > 9000) = P(u <= 500) P(v > 9000) *)
  let est_u, _ = est_and_actual med_on "select val.id from Val val where val.u <= 500" in
  let est_v, _ = est_and_actual med_on "select val.id from Val val where val.v > 9000" in
  let est_uv, real =
    est_and_actual med_on
      "select val.id from Val val where val.u <= 500 and val.v > 9000"
  in
  let expected = est_u *. est_v /. float_of_int nrows in
  check_bound "product of marginals" ~bound:0.05 ~est:est_uv ~real:expected;
  (* and multiplying stays close to the truth because they really are
     independent *)
  check_bound "conjunction vs actual" ~bound:0.15 ~est:est_uv ~real

(* --- joins: cardinality via histogram overlap ------------------------------ *)

let join_sql a b = Fmt.str "select %s.k from %s %s, %s %s where %s.k = %s.k"
    (String.lowercase_ascii a) a (String.lowercase_ascii a) b
    (String.lowercase_ascii b) (String.lowercase_ascii a) (String.lowercase_ascii b)

let test_join_overlap () =
  (* full overlap: both [1,100] x [51,150] share half their domains *)
  let est, real = est_and_actual med_on (join_sql "Hot" "Cold") in
  check_bound "partial-overlap join" ~bound:0.35 ~est ~real

let test_join_disjoint () =
  (* Hot [1,100] and Far [1000,1100] never join; the uniform 1/Max estimate
     can't see that, the histogram overlap can *)
  let est_h, real = est_and_actual med_on (join_sql "Hot" "Far") in
  let est_u, _ = est_and_actual med_off (join_sql "Hot" "Far") in
  Alcotest.(check bool) "disjoint join is empty" true (real = 0.);
  Alcotest.(check bool)
    (Fmt.str "histogram estimate near zero (%.2f)" est_h)
    true (est_h <= 1.);
  Alcotest.(check bool)
    (Fmt.str "uniform estimate far off (%.0f)" est_u)
    true (est_u > 100.)

let () =
  Alcotest.run "stats"
    [ ( "cardinality matrix",
        [ Alcotest.test_case "fully bound ~ 1" `Quick test_fully_bound;
          Alcotest.test_case "unbound = extent count" `Quick test_unbound;
          Alcotest.test_case "histogram beats uniform on skew" `Quick
            test_skew_beats_uniform;
          Alcotest.test_case "range family error bounds" `Quick
            test_skew_range_family;
          Alcotest.test_case "conjunction multiplies" `Quick
            test_conjunction_multiplies;
          Alcotest.test_case "join via histogram overlap" `Quick test_join_overlap;
          Alcotest.test_case "disjoint join detected" `Quick test_join_disjoint ] ) ]
