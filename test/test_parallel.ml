(* The domain-pool subsystem and the two mediator layers built on it —
   parallel plan search and scatter-gather submit execution — tested three
   ways:

   - the pool primitives themselves (chunking, task/slot ordering, exception
     determinism, nested fork/join reentrancy, deterministic reduction);

   - differentially: plan search and full query execution at 1, 2, 4 and 8
     domains must produce bit-identical plans, costs ([Int64.bits_of_float]
     equality), merged optimizer counters, answer rows, measured timings and
     simulated clock — including with an active plan cache and across a
     mid-run cost-model generation bump;

   - the satellite regression for the stats-ownership hazard: counters are
     written by exactly one domain each and merged exactly once, so the
     merged totals are pinned to the sequential values. *)

open Disco_algebra
open Disco_core
open Disco_exec
open Disco_wrapper
open Disco_mediator
module Pool = Disco_parallel.Pool

let bits = Int64.bits_of_float

(* --- Pool primitives ------------------------------------------------------------ *)

let test_chunk () =
  let sizes a = Array.to_list (Array.map List.length a) in
  let c = Pool.chunk 3 [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ] in
  Alcotest.(check (list int)) "sizes differ by at most one, earlier larger"
    [ 4; 3; 3 ] (sizes c);
  Alcotest.(check (list int)) "concatenation restores the input"
    [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ]
    (List.concat (Array.to_list c));
  Alcotest.(check int) "more chunks than elements clamps" 3
    (Array.length (Pool.chunk 8 [ 1; 2; 3 ]));
  Alcotest.(check int) "empty input, empty array" 0
    (Array.length (Pool.chunk 4 []))

let test_run_order () =
  let pool = Pool.create 4 in
  Alcotest.(check (list int)) "results indexed by task"
    (List.init 10 (fun i -> i * i))
    (Array.to_list (Pool.run pool (fun i -> i * i) 10));
  Alcotest.(check (list int)) "fewer tasks than degree"
    [ 0; 1 ]
    (Array.to_list (Pool.run pool (fun i -> i) 2));
  Alcotest.(check int) "zero tasks" 0 (Array.length (Pool.run pool (fun i -> i) 0))

let test_run_exception () =
  let pool = Pool.create 4 in
  Alcotest.check_raises "a raising task propagates after the barrier"
    (Failure "boom")
    (fun () -> ignore (Pool.run pool (fun i -> if i = 5 then failwith "boom" else i) 8));
  (* two slots fail: the lowest-numbered slot's exception wins. With degree 4,
     task 6 runs on slot 2 and task 3 on slot 3. *)
  Alcotest.check_raises "lowest failing slot is re-raised" (Failure "6")
    (fun () ->
      ignore
        (Pool.run pool
           (fun i -> if i = 3 || i = 6 then failwith (string_of_int i) else i)
           8));
  (* the pool survives failed rounds *)
  Alcotest.(check int) "pool usable after failure" 45
    (Array.fold_left ( + ) 0 (Pool.run pool (fun i -> i) 10))

let test_run_nested () =
  let outer = Pool.create 2 in
  let r =
    Pool.run outer
      (fun o ->
        let inner = Pool.create 4 in
        (* inside a task: must run inline, not deadlock on busy workers *)
        Array.fold_left ( + ) 0 (Pool.run inner (fun i -> (o * 100) + i) 5))
      2
  in
  Alcotest.(check (list int)) "nested runs compute inline" [ 10; 510 ]
    (Array.to_list r)

let test_reduce () =
  Alcotest.(check (option int)) "left fold in index order" (Some 5)
    (Pool.reduce ( - ) [| 10; 3; 2 |]);
  Alcotest.(check (option int)) "empty" None (Pool.reduce ( + ) [||])

(* --- Federation fixture ---------------------------------------------------------- *)

let fed ?(cache = true) ?stats_mode ~domains () =
  let med = Mediator.create ~cache ?stats_mode ~domains () in
  let wrappers = Demo.make ~sizes:Demo.small_sizes () in
  List.iter (Mediator.register med) wrappers;
  (med, wrappers)

let spec_of med sql = (Mediator.resolve med (Disco_sql.Sql.parse sql)).Mediator.spec

let join4 =
  "select e.id from Employee e, Department d, Project p, Task t \
   where e.dept_id = d.id and d.id = p.dept_id and p.id = t.project_id \
   and t.hours > 10"

let optimize_workload =
  [ "select e.id from Employee e where e.salary > 20000";
    "select e.id from Employee e, Department d where e.dept_id = d.id \
     and d.budget > 150000";
    "select e.id from Employee e, Department d, Project p \
     where e.dept_id = d.id and d.id = p.dept_id and e.salary > 15000";
    join4 ]

let domain_counts = [ 1; 2; 4; 8 ]

(* --- Satellite: stats ownership and exact merge ----------------------------------- *)

let test_merge_stats_exact () =
  let a = Optimizer.new_stats () in
  a.Optimizer.plans_considered <- 3;
  a.Optimizer.plans_aborted <- 1;
  a.Optimizer.formula_evals <- 40;
  let b = Optimizer.new_stats () in
  b.Optimizer.plans_considered <- 5;
  b.Optimizer.plans_aborted <- 2;
  b.Optimizer.formula_evals <- 60;
  Optimizer.merge_stats ~into:a b;
  Alcotest.(check (list int)) "merge adds each counter exactly once"
    [ 8; 3; 100 ]
    [ a.Optimizer.plans_considered; a.Optimizer.plans_aborted;
      a.Optimizer.formula_evals ];
  Alcotest.(check (list int)) "source unchanged" [ 5; 2; 60 ]
    [ b.Optimizer.plans_considered; b.Optimizer.plans_aborted;
      b.Optimizer.formula_evals ]

(* The sequential counter totals for the 4-way join are pinned: any lost or
   double-counted update in the parallel merge (the shared-mutation hazard
   this PR removes) shifts them. [formula_evals] is deliberately absent — it
   is memo-configuration-dependent (each domain memoizes its own chunk), and
   only [plans_considered] / [plans_aborted] are part of the determinism
   contract. *)
let test_stats_pinned_across_domains () =
  let reference = ref None in
  List.iter
    (fun domains ->
      let med, _ = fed ~domains () in
      let stats = Optimizer.new_stats () in
      let plan, cost =
        Optimizer.optimize ~domains ~stats (Mediator.registry med)
          (spec_of med join4)
      in
      let obs =
        (Plan.to_string plan, bits cost, stats.Optimizer.plans_considered,
         stats.Optimizer.plans_aborted)
      in
      match !reference with
      | None ->
        let _, _, considered, aborted = obs in
        Alcotest.(check bool) "sequential run considered plans" true
          (considered > 0);
        Alcotest.(check int) "no aborts without a bound" 0 aborted;
        reference := Some obs
      | Some r ->
        if obs <> r then
          Alcotest.failf "stats/plan diverged at %d domains" domains)
    domain_counts

(* --- Differential: plan search over domains, cache active, generation bump ------- *)

(* One mediator per domain count over the identical federation; every query
   is optimized twice (cold, then warm from the plan cache), then the cost
   model's generation is bumped by re-registering a wrapper (refreshing its
   statistics) and the pass repeats against the now-stale cache. All four
   observations must be identical across domain counts, bit for bit. *)
let trace_optimize ?stats_mode ~domains () =
  let med, wrappers = fed ?stats_mode ~domains () in
  let cache = Mediator.plancache med in
  let registry = Mediator.registry med in
  let pass label =
    List.concat_map
      (fun sql ->
        let stats = Optimizer.new_stats () in
        let plan, cost =
          Optimizer.optimize ~domains ~stats ~cache registry (spec_of med sql)
        in
        [ Fmt.str "%s %s %Lx considered=%d aborted=%d" label
            (Plan.to_string plan) (bits cost) stats.Optimizer.plans_considered
            stats.Optimizer.plans_aborted ])
      optimize_workload
  in
  let cold = pass "cold" in
  let warm = pass "warm" in
  List.iter (Mediator.register med) wrappers;   (* generation bump mid-run *)
  let bumped = pass "bumped" in
  let c = Plancache.counters cache in
  (cold @ warm @ bumped,
   (c.Plancache.hits, c.Plancache.misses, c.Plancache.stale))

let test_optimize_differential () =
  let ref_trace, ((hits, _, stale) as ref_counters) = trace_optimize ~domains:1 () in
  Alcotest.(check bool) "warm pass actually hit the cache" true (hits > 0);
  Alcotest.(check bool) "generation bump dropped stale entries" true (stale > 0);
  List.iter
    (fun domains ->
      let t, counters = trace_optimize ~domains () in
      if t <> ref_trace then
        Alcotest.failf "optimize trace diverged at %d domains" domains;
      if counters <> ref_counters then
        Alcotest.failf
          "plan-cache counters diverged at %d domains (exactness under the \
           cache lock)"
          domains)
    (List.tl domain_counts)

(* choose over an explicit plan list: same winner and cost at every domain
   count, with and without pruning. *)
let test_choose_differential () =
  let med, _ = fed ~domains:1 () in
  let registry = Mediator.registry med in
  let plans =
    Optimizer.enumerate
      (spec_of med
         "select e.id from Employee e, Department d, Project p \
          where e.dept_id = d.id and d.id = p.dept_id")
  in
  Alcotest.(check bool) "enumeration is non-trivial" true (List.length plans > 4);
  List.iter
    (fun prune ->
      let reference =
        Option.get (Optimizer.choose ~prune ~domains:1 registry plans)
      in
      List.iter
        (fun domains ->
          let plan, cost =
            Option.get (Optimizer.choose ~prune ~domains registry plans)
          in
          if
            (not (Plan.equal plan (fst reference)))
            || bits cost <> bits (snd reference)
          then
            Alcotest.failf "choose (prune=%b) diverged at %d domains" prune
              domains)
        (List.tl domain_counts))
    [ false; true ]

(* --- Differential: scatter-gather execution --------------------------------------- *)

let execute_workload =
  [ "select e.id from Employee e, Department d where e.dept_id = d.id \
     and d.budget > 150000";
    "select t.id from Project p, Task t where t.project_id = p.id \
     and p.cost < 50000";
    "select l.id from Employee e, Listing l where l.emp_id = e.id \
     and l.rating >= 3";
    "select distinct d.city from Department d where d.budget > 100000" ]

(* Everything observable from a full run — answer rows (values and order),
   plan, estimate and measured bits, replans, and after the workload the
   simulated clock, which integrates every submit's communication charges in
   order. Two passes, because the first feeds history that the second plans
   with. *)
let trace_execute ?stats_mode ~domains () =
  let med, _ = fed ?stats_mode ~domains () in
  let pass () =
    List.concat_map
      (fun sql ->
        let a = Mediator.run_query med sql in
        [ Fmt.str "%s | est %Lx | measured %Lx %Lx | replans %d | rows %s"
            (Plan.to_string a.Mediator.plan)
            (bits (Estimator.total_time a.Mediator.estimate))
            (bits a.Mediator.measured.Run.total_time)
            (bits a.Mediator.measured.Run.time_first)
            a.Mediator.replans
            (String.concat ";" (List.map Tuple.key a.Mediator.rows)) ])
      execute_workload
  in
  let p1 = pass () in
  let p2 = pass () in
  p1 @ p2 @ [ Fmt.str "clock %Lx" (bits (Mediator.now med)) ]

let test_execute_differential () =
  let reference = trace_execute ~domains:1 () in
  List.iter
    (fun domains ->
      if trace_execute ~domains () <> reference then
        Alcotest.failf "execution trace diverged at %d domains" domains)
    (List.tl domain_counts)

(* --- Differential: stats off is the seed path (demo + OO7) ------------------------ *)

(* A mediator with [Stats_off] passed explicitly must trace bit-identically to
   one built without the argument (the construction path every pre-existing
   caller uses), at every domain count — the no-histogram path is the seed
   behavior, not merely close to it. *)
let test_stats_off_identical_demo () =
  let opt_ref = trace_optimize ~domains:1 () in
  let exec_ref = trace_execute ~domains:1 () in
  List.iter
    (fun domains ->
      if trace_optimize ~stats_mode:Mediator.Stats_off ~domains () <> opt_ref
      then Alcotest.failf "stats-off optimize trace diverged at %d domains" domains;
      if trace_execute ~stats_mode:Mediator.Stats_off ~domains () <> exec_ref
      then Alcotest.failf "stats-off execute trace diverged at %d domains" domains)
    domain_counts

(* The same contract over the OO7 federation: the full query workload executed
   through the mediator (submit, measured times, simulated clock), stats off,
   at 1/2/4/8 domains. *)
let oo7_config = Disco_oo7.Oo7.small_config

let trace_oo7 ?stats_mode ~domains () =
  let med = Mediator.create ?stats_mode ~domains () in
  Mediator.register med (Disco_oo7.Oo7.make_source ~config:oo7_config ());
  let env = Mediator.mediator_run_env med in
  List.map
    (fun (label, plan) ->
      let phys = Mediator.to_physical med (Plan.Submit ("oo7", plan)) in
      let rows, v = Run.measure env phys in
      Fmt.str "%s | %Lx %Lx | %d rows %s" label (bits v.Run.total_time)
        (bits v.Run.time_first) (List.length rows)
        (String.concat ";" (List.map Tuple.key rows)))
    (Disco_oo7.Oo7.queries oo7_config)
  @ [ Fmt.str "clock %Lx" (bits (Mediator.now med)) ]

let test_stats_off_identical_oo7 () =
  let reference = trace_oo7 ~domains:1 () in
  List.iter
    (fun domains ->
      if trace_oo7 ~stats_mode:Mediator.Stats_off ~domains () <> reference then
        Alcotest.failf "OO7 stats-off trace diverged at %d domains" domains)
    domain_counts

(* --- Differential: batched engine composes with domains and stats ----------------- *)

let with_mode m f =
  let prev = Run.default_mode () in
  Run.set_default_mode m;
  Fun.protect ~finally:(fun () -> Run.set_default_mode prev) f

(* The vectorized engine is a drop-in under every composition: for each
   (domain count, stats mode) the full execution trace — rows, measured
   bits, simulated clock — of the batched engine equals the tuple engine's,
   over both the demo federation and OO7. *)
let test_batched_composes () =
  List.iter
    (fun domains ->
      List.iter
        (fun stats_mode ->
          let exec_ref = trace_execute ~stats_mode ~domains () in
          let oo7_ref = trace_oo7 ~stats_mode ~domains () in
          List.iter
            (fun batch_size ->
              with_mode (Run.Batched { batch_size }) (fun () ->
                  if trace_execute ~stats_mode ~domains () <> exec_ref then
                    Alcotest.failf
                      "batched execute trace diverged at %d domains, batch %d"
                      domains batch_size;
                  if trace_oo7 ~stats_mode ~domains () <> oo7_ref then
                    Alcotest.failf
                      "batched OO7 trace diverged at %d domains, batch %d"
                      domains batch_size))
            [ 17; 1024 ])
        [ Mediator.Stats_off; Mediator.Stats_feedback History.default_feedback ])
    domain_counts

let () =
  Alcotest.run "parallel"
    [ ( "pool",
        [ Alcotest.test_case "chunk" `Quick test_chunk;
          Alcotest.test_case "run ordering" `Quick test_run_order;
          Alcotest.test_case "exception determinism" `Quick test_run_exception;
          Alcotest.test_case "nested reentrancy" `Quick test_run_nested;
          Alcotest.test_case "reduce" `Quick test_reduce ] );
      ( "stats",
        [ Alcotest.test_case "merge is exact" `Quick test_merge_stats_exact;
          Alcotest.test_case "pinned across domains" `Quick
            test_stats_pinned_across_domains ] );
      ( "differential",
        [ Alcotest.test_case "optimize (cache + generation bump)" `Quick
            test_optimize_differential;
          Alcotest.test_case "choose" `Quick test_choose_differential;
          Alcotest.test_case "execute (scatter-gather)" `Quick
            test_execute_differential;
          Alcotest.test_case "stats off = seed (demo)" `Quick
            test_stats_off_identical_demo;
          Alcotest.test_case "stats off = seed (OO7)" `Quick
            test_stats_off_identical_oo7;
          Alcotest.test_case "batched engine composes (domains x stats)" `Quick
            test_batched_composes ] ) ]
