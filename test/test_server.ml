(* The federation server, bottom up: the JSON codec, the bounded admission
   queue and the metrics registry as units (counter exactness under
   concurrent hammering included), then the serve loop end to end over a
   unix socket — differential row identity against one-shot runs,
   concurrent multi-tenant clients with exact admission/rejection
   accounting, deterministic deadline rejections, snapshot warm restarts,
   and the HTTP-ish observability endpoints. *)

open Disco_core
open Disco_wrapper
open Disco_mediator
open Disco_server

let bits = Int64.bits_of_float

(* --- fixtures ------------------------------------------------------------------- *)

let make_mediator ?(history = History.Off) () =
  let med = Mediator.create ~history_mode:history () in
  List.iter (Mediator.register med) (Demo.make ~sizes:Demo.small_sizes ());
  med

let fresh_socket_path =
  let n = ref 0 in
  fun () ->
    incr n;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "disco-test-%d-%d.sock" (Unix.getpid ()) !n)

let with_server ?history ?(queue_depth = 64) ?(workers = 2) ?default_deadline_ms
    ?snapshot_path ?(snapshot_every = 0) f =
  let med = make_mediator ?history () in
  let addr = Server.Unix_socket (fresh_socket_path ()) in
  let config =
    { Server.addr;
      queue_depth;
      workers;
      default_deadline_ms;
      snapshot_path;
      snapshot_every;
      verify = true }
  in
  let srv = Server.create ~config med in
  Server.start srv;
  Fun.protect ~finally:(fun () -> Server.stop srv) (fun () -> f srv addr med)

let queries =
  [ "select e.name from Employee e where e.salary > 20000";
    "select e.id from Employee e, Department d where e.dept_id = d.id and \
     d.budget > 100000";
    "select l.id from Listing l where l.rating >= 2" ]

let field name j =
  match Json.member name j with
  | Some v -> v
  | None -> Alcotest.failf "response lacks %S: %s" name (Json.to_string j)

let status j =
  match Json.string_member "status" j with
  | Some s -> s
  | None -> Alcotest.failf "no status in %s" (Json.to_string j)

let int_field name j =
  match Json.int_member name j with
  | Some i -> i
  | None -> Alcotest.failf "no int %S in %s" name (Json.to_string j)

(* --- json ------------------------------------------------------------------------ *)

let test_json_roundtrip () =
  let v =
    Json.Obj
      [ ("s", Json.String "a\"b\\c\nd\te\x01f");
        ("i", Json.Int (-42));
        ("f", Json.Float 0.1);
        ("tiny", Json.Float 5e-324);
        ("neg", Json.Float (-1.5));
        ("b", Json.Bool true);
        ("n", Json.Null);
        ("l", Json.List [ Json.Int 1; Json.Float 2.5; Json.String "x" ]);
        ("o", Json.Obj [ ("nested", Json.List []) ]) ]
  in
  match Json.parse (Json.to_string v) with
  | Error e -> Alcotest.failf "roundtrip parse failed: %s" e
  | Ok v' ->
    Alcotest.(check string) "roundtrip preserves structure" (Json.to_string v)
      (Json.to_string v');
    (* %.17g keeps float bits exactly *)
    (match (Json.float_member "f" v', Json.float_member "tiny" v') with
     | Some f, Some tiny ->
       Alcotest.(check int64) "0.1 bits" (bits 0.1) (bits f);
       Alcotest.(check int64) "denormal bits" (bits 5e-324) (bits tiny)
     | _ -> Alcotest.fail "float members lost")

let test_json_unicode_and_errors () =
  (match Json.parse {|{"u":"café ✓"}|} with
   | Ok j ->
     Alcotest.(check (option string)) "escapes decode to UTF-8"
       (Some "caf\xc3\xa9 \xe2\x9c\x93") (Json.string_member "u" j)
   | Error e -> Alcotest.failf "unicode parse failed: %s" e);
  List.iter
    (fun bad ->
      match Json.parse bad with
      | Ok _ -> Alcotest.failf "accepted malformed json %S" bad
      | Error _ -> ())
    [ "{"; "[1,"; {|{"a":}|}; "tru"; {|"unterminated|}; "1 2" ]

(* --- admission ------------------------------------------------------------------- *)

let test_admission_bounds_and_order () =
  let q = Admission.create ~depth:3 in
  Alcotest.(check int) "depth clamps up from zero" 1
    (Admission.depth (Admission.create ~depth:0));
  List.iter
    (fun i -> Alcotest.(check bool) "within depth" true (Admission.try_push q i))
    [ 1; 2; 3 ];
  Alcotest.(check bool) "fourth refused" false (Admission.try_push q 4);
  Alcotest.(check (option int)) "fifo" (Some 1) (Admission.pop q);
  Alcotest.(check bool) "slot freed" true (Admission.try_push q 5);
  Admission.close q;
  Alcotest.(check bool) "closed refuses" false (Admission.try_push q 6);
  Alcotest.(check (option int)) "drains after close" (Some 2) (Admission.pop q);
  Alcotest.(check (option int)) "drains after close" (Some 3) (Admission.pop q);
  Alcotest.(check (option int)) "drains after close" (Some 5) (Admission.pop q);
  Alcotest.(check (option int)) "then exhausted" None (Admission.pop q);
  let c = Admission.counters q in
  Alcotest.(check int) "pushed" 4 c.Admission.pushed;
  Alcotest.(check int) "rejected" 2 c.Admission.rejected;
  Alcotest.(check int) "popped" 4 c.Admission.popped

(* 8 domains flood a bounded queue with no consumer: exactly [depth] pushes
   can win, every other attempt must be counted rejected — no lost or
   double-counted admissions under contention. *)
let test_admission_concurrent_flood () =
  let depth = 16 and domains = 8 and per = 100 in
  let q = Admission.create ~depth in
  let go = Atomic.make false in
  let workers =
    List.init domains (fun d ->
        Domain.spawn (fun () ->
            while not (Atomic.get go) do
              Domain.cpu_relax ()
            done;
            let won = ref 0 in
            for i = 1 to per do
              if Admission.try_push q ((d * per) + i) then incr won
            done;
            !won))
  in
  Atomic.set go true;
  let won = List.fold_left (fun acc d -> acc + Domain.join d) 0 workers in
  Alcotest.(check int) "exactly depth admissions" depth won;
  let c = Admission.counters q in
  Alcotest.(check int) "pushed = winners" depth c.Admission.pushed;
  Alcotest.(check int) "every loser rejected"
    ((domains * per) - depth)
    c.Admission.rejected;
  let drained = ref 0 in
  Admission.close q;
  let rec drain () =
    match Admission.pop q with
    | Some _ ->
      incr drained;
      drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check int) "nothing lost in the queue" depth !drained

(* --- metrics --------------------------------------------------------------------- *)

let test_metrics_invariants () =
  let m = Metrics.create () in
  for _ = 1 to 10 do
    Metrics.on_received m
  done;
  for _ = 1 to 8 do
    Metrics.on_admitted m
  done;
  Metrics.on_rejected_queue m;
  Metrics.on_rejected_queue m;
  List.iteri
    (fun i f -> f m ~latency_ms:(float_of_int (i + 1)))
    [ Metrics.on_completed; Metrics.on_completed; Metrics.on_completed;
      Metrics.on_completed; Metrics.on_degraded; Metrics.on_failed ];
  Metrics.on_rejected_deadline m;
  let s = Metrics.snapshot m in
  Alcotest.(check int) "received partitions" s.Metrics.received
    (s.Metrics.admitted + s.Metrics.rejected_queue);
  Alcotest.(check int) "admitted partitions" s.Metrics.admitted
    (s.Metrics.completed + s.Metrics.degraded + s.Metrics.failed
    + s.Metrics.rejected_deadline + s.Metrics.in_flight);
  Alcotest.(check int) "one in flight" 1 s.Metrics.in_flight;
  Alcotest.(check int) "six samples" 6 s.Metrics.samples;
  Alcotest.(check bool) "percentiles ordered" true
    (s.Metrics.p50_ms <= s.Metrics.p95_ms
    && s.Metrics.p95_ms <= s.Metrics.p99_ms
    && s.Metrics.p99_ms <= s.Metrics.max_ms);
  Alcotest.(check (float 1e-9)) "max" 6. s.Metrics.max_ms

let test_metrics_reservoir_bounded () =
  (* capacity floors at 1024 (the initial buffer) *)
  let m = Metrics.create ~latency_capacity:1024 () in
  for i = 1 to 10_000 do
    Metrics.on_received m;
    Metrics.on_admitted m;
    Metrics.on_completed m ~latency_ms:(float_of_int i)
  done;
  let s = Metrics.snapshot m in
  Alcotest.(check bool) "samples bounded by capacity" true
    (s.Metrics.samples <= 1024 && s.Metrics.samples > 0);
  Alcotest.(check int) "counts still exact" 10_000 s.Metrics.completed;
  Alcotest.(check bool) "percentiles in range" true
    (s.Metrics.p50_ms >= 1. && s.Metrics.p99_ms <= 10_000.)

(* --- serve loop: differential identity ------------------------------------------- *)

(* The server's answers must be bit-identical to one-shot runs: same rows
   in the same order (same JSON rendering) and the same measured cost
   vector, because execution is serialized over the same deterministic
   mediator construction. *)
let test_serve_differential_identity () =
  let reference = make_mediator () in
  with_server (fun _srv addr _med ->
      let c = Client.connect_retry addr in
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          List.iteri
            (fun i sql ->
              let resp = Client.query ~id:(Json.Int i) c sql in
              Alcotest.(check string) "ok" "ok" (status resp);
              let expected = Mediator.run_query reference sql in
              let expected_rows =
                Json.List
                  (List.map Protocol.json_of_tuple expected.Mediator.rows)
              in
              Alcotest.(check string)
                (Printf.sprintf "rows of %S bit-identical" sql)
                (Json.to_string expected_rows)
                (Json.to_string (field "rows" resp));
              Alcotest.(check int) "row_count"
                (List.length expected.Mediator.rows)
                (int_field "row_count" resp);
              (match Json.float_member "measured_ms" resp with
               | Some measured ->
                 Alcotest.(check int64) "measured cost bits"
                   (bits expected.Mediator.measured.Disco_exec.Run.total_time)
                   (bits measured)
               | None -> Alcotest.fail "no measured_ms"))
            queries))

(* --- serve loop: concurrent multi-tenant clients --------------------------------- *)

let test_serve_concurrent_tenants () =
  let reference = make_mediator () in
  let expected =
    List.map
      (fun sql ->
        let a = Mediator.run_query reference sql in
        ( sql,
          Json.to_string
            (Json.List (List.map Protocol.json_of_tuple a.Mediator.rows)) ))
      queries
  in
  let tenants = 6 and rounds = 2 in
  with_server ~workers:4 (fun srv addr med ->
      let mismatches = Array.make tenants 0 in
      let failures = Array.make tenants 0 in
      let threads =
        List.init tenants (fun tn ->
            Thread.create
              (fun () ->
                let c = Client.connect_retry addr in
                Fun.protect
                  ~finally:(fun () -> Client.close c)
                  (fun () ->
                    for _ = 1 to rounds do
                      List.iter
                        (fun (sql, want) ->
                          let resp =
                            Client.query
                              ~tenant:(Printf.sprintf "tenant-%d" tn) c sql
                          in
                          if status resp <> "ok" then
                            failures.(tn) <- failures.(tn) + 1
                          else if
                            Json.to_string (field "rows" resp) <> want
                          then mismatches.(tn) <- mismatches.(tn) + 1)
                        expected
                    done))
              ())
      in
      List.iter Thread.join threads;
      let total a = Array.fold_left ( + ) 0 a in
      Alcotest.(check int) "every query answered ok" 0 (total failures);
      Alcotest.(check int)
        "every answer bit-identical to the one-shot reference" 0
        (total mismatches);
      (* exact accounting: the server agrees with what the clients saw *)
      let sent = tenants * rounds * List.length queries in
      let s = Metrics.snapshot (Server.metrics srv) in
      Alcotest.(check int) "received = sent" sent s.Metrics.received;
      Alcotest.(check int) "all admitted" sent s.Metrics.admitted;
      Alcotest.(check int) "all completed" sent s.Metrics.completed;
      Alcotest.(check int) "none in flight" 0 s.Metrics.in_flight;
      let a = Server.admission_counters srv in
      Alcotest.(check int) "admission pushed" sent a.Admission.pushed;
      Alcotest.(check int) "admission popped" sent a.Admission.popped;
      Alcotest.(check int) "admission rejected" 0 a.Admission.rejected;
      (* one history partition per tenant, each fed by its own traffic *)
      let mj = Server.metrics_json srv in
      let stats = field "stats" mj in
      Alcotest.(check int) "one partition per tenant" tenants
        (int_field "tenants" stats);
      ignore med)

(* --- serve loop: rejections ------------------------------------------------------ *)

let test_serve_deadline_rejection () =
  with_server (fun srv addr _med ->
      let c = Client.connect_retry addr in
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          (* a zero budget has always expired by dequeue time: rejected
             deterministically, without execution *)
          let resp =
            Client.query ~id:(Json.Int 9) ~deadline_ms:0. c (List.hd queries)
          in
          Alcotest.(check string) "rejected" "rejected" (status resp);
          Alcotest.(check (option string)) "reason" (Some "deadline")
            (Json.string_member "reason" resp);
          Alcotest.(check (option string)) "id echoed" None
            (if Json.member "id" resp = Some (Json.Int 9) then None
             else Some "id lost");
          let s = Metrics.snapshot (Server.metrics srv) in
          Alcotest.(check int) "counted as deadline rejection" 1
            s.Metrics.rejected_deadline;
          Alcotest.(check int) "not completed" 0 s.Metrics.completed;
          (* the connection survives a rejection *)
          let resp = Client.query c (List.hd queries) in
          Alcotest.(check string) "next query fine" "ok" (status resp)))

(* Flood a tiny server from concurrent clients. Whether any individual
   push wins is timing-dependent; what must be exact is the accounting:
   every request is answered, every answer is ok or queue_full, and the
   server's counters match the clients' tallies precisely. *)
let test_serve_backpressure_accounting () =
  with_server ~queue_depth:1 ~workers:1 (fun srv addr _med ->
      let clients = 8 and per = 15 in
      let ok = Array.make clients 0 in
      let rejected = Array.make clients 0 in
      let other = Array.make clients 0 in
      let threads =
        List.init clients (fun i ->
            Thread.create
              (fun () ->
                let c = Client.connect_retry addr in
                Fun.protect
                  ~finally:(fun () -> Client.close c)
                  (fun () ->
                    for _ = 1 to per do
                      let resp = Client.query c (List.hd queries) in
                      match
                        (status resp, Json.string_member "reason" resp)
                      with
                      | "ok", _ -> ok.(i) <- ok.(i) + 1
                      | "rejected", Some "queue_full" ->
                        rejected.(i) <- rejected.(i) + 1
                      | _ -> other.(i) <- other.(i) + 1
                    done))
              ())
      in
      List.iter Thread.join threads;
      let total a = Array.fold_left ( + ) 0 a in
      let sent = clients * per in
      Alcotest.(check int) "no unexpected statuses" 0 (total other);
      Alcotest.(check int) "every request answered" sent
        (total ok + total rejected);
      let s = Metrics.snapshot (Server.metrics srv) in
      Alcotest.(check int) "received = sent" sent s.Metrics.received;
      Alcotest.(check int) "completions match client view" (total ok)
        s.Metrics.completed;
      Alcotest.(check int) "rejections match client view" (total rejected)
        s.Metrics.rejected_queue;
      Alcotest.(check int) "received partitions exactly" s.Metrics.received
        (s.Metrics.admitted + s.Metrics.rejected_queue);
      Alcotest.(check int) "none in flight at rest" 0 s.Metrics.in_flight;
      let a = Server.admission_counters srv in
      Alcotest.(check int) "admission rejections agree" (total rejected)
        a.Admission.rejected)

(* --- snapshot warm restart ------------------------------------------------------- *)

let test_snapshot_warm_restart () =
  let snap = Filename.temp_file "disco-snap" ".bin" in
  Sys.remove snap;
  let sources = [ "relstore"; "objstore"; "files"; "web" ] in
  let adjusts1, clock1, records1 =
    let result = ref (([] : (string * float) list), 0., 0) in
    with_server ~history:(History.Adjust { smoothing = 0.6 }) ~snapshot_path:snap
      (fun srv addr med ->
        let c = Client.connect_retry addr in
        Fun.protect
          ~finally:(fun () -> Client.close c)
          (fun () ->
            List.iter
              (fun tenant ->
                List.iter
                  (fun sql ->
                    Alcotest.(check string) "warmup ok" "ok"
                      (status (Client.query ~tenant c sql)))
                  queries)
              [ "acme"; "globex" ];
            (match Json.string_member "status" (Client.snapshot c) with
             | Some "ok" -> ()
             | _ -> Alcotest.fail "snapshot op failed");
            let stats = field "stats" (Server.metrics_json srv) in
            result :=
              ( List.map
                  (fun s ->
                    (s, Registry.adjust (Mediator.registry med) ~source:s))
                  sources,
                Mediator.now med,
                int_field "history_records" stats )));
    !result
  in
  Alcotest.(check bool) "traffic trained the factors" true
    (List.exists (fun (_, f) -> f <> 1.) adjusts1);
  Alcotest.(check bool) "records were kept" true (records1 > 0);
  (* a brand-new process: fresh mediator, same snapshot path *)
  with_server ~history:(History.Adjust { smoothing = 0.6 }) ~snapshot_path:snap
    (fun srv addr med ->
      List.iter
        (fun (s, f1) ->
          Alcotest.(check int64)
            (Printf.sprintf "adjust factor of %s restored exactly" s)
            (bits f1)
            (bits (Registry.adjust (Mediator.registry med) ~source:s)))
        adjusts1;
      Alcotest.(check int64) "simulated clock restored" (bits clock1)
        (bits (Mediator.now med));
      let stats = field "stats" (Server.metrics_json srv) in
      Alcotest.(check int) "history records restored" records1
        (int_field "history_records" stats);
      Alcotest.(check int) "both tenants restored" 2 (int_field "tenants" stats);
      (* and the warm server still answers *)
      let c = Client.connect_retry addr in
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          Alcotest.(check string) "warm server serves" "ok"
            (status (Client.query ~tenant:"acme" c (List.hd queries)))));
  if Sys.file_exists snap then Sys.remove snap

(* --- HTTP endpoints and lifecycle ------------------------------------------------ *)

let http_get addr path =
  let (Server.Unix_socket sock_path | Server.Tcp { host = sock_path; _ }) =
    addr
  in
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX sock_path);
  let out = Printf.sprintf "GET %s HTTP/1.0\r\n" path in
  ignore (Unix.write_substring fd out 0 (String.length out));
  let buf = Buffer.create 1024 in
  let chunk = Bytes.create 1024 in
  let rec read_all () =
    match Unix.read fd chunk 0 1024 with
    | 0 -> ()
    | n ->
      Buffer.add_subbytes buf chunk 0 n;
      read_all ()
    | exception Unix.Unix_error _ -> ()
  in
  read_all ();
  Unix.close fd;
  Buffer.contents buf

let test_http_endpoints () =
  with_server (fun _srv addr _med ->
      let contains s sub =
        let n = String.length sub in
        let rec go i =
          i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
        in
        go 0
      in
      let metrics = http_get addr "/metrics" in
      Alcotest.(check bool) "200 with metrics body" true
        (contains metrics "HTTP/1.0 200 OK" && contains metrics "\"admission\"");
      let health = http_get addr "/health" in
      Alcotest.(check bool) "200 with health body" true
        (contains health "HTTP/1.0 200 OK" && contains health "\"sources\"");
      let missing = http_get addr "/nope" in
      Alcotest.(check bool) "404 otherwise" true
        (contains missing "HTTP/1.0 404"))

let test_shutdown_op () =
  let med = make_mediator () in
  let addr = Server.Unix_socket (fresh_socket_path ()) in
  let srv = Server.create ~config:(Server.default_config addr) med in
  Server.start srv;
  let c = Client.connect_retry addr in
  Alcotest.(check string) "shutdown acknowledged" "ok"
    (status (Client.shutdown c));
  Client.close c;
  let deadline = Unix.gettimeofday () +. 10. in
  while Server.running srv && Unix.gettimeofday () < deadline do
    Thread.delay 0.05
  done;
  Alcotest.(check bool) "server stopped" false (Server.running srv);
  (* idempotent: a second stop is a no-op *)
  Server.stop srv

let () =
  Alcotest.run "server"
    [ ( "json",
        [ Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "unicode + errors" `Quick
            test_json_unicode_and_errors ] );
      ( "admission",
        [ Alcotest.test_case "bounds and order" `Quick
            test_admission_bounds_and_order;
          Alcotest.test_case "concurrent flood" `Quick
            test_admission_concurrent_flood ] );
      ( "metrics",
        [ Alcotest.test_case "invariants" `Quick test_metrics_invariants;
          Alcotest.test_case "reservoir bounded" `Quick
            test_metrics_reservoir_bounded ] );
      ( "serve",
        [ Alcotest.test_case "differential identity" `Quick
            test_serve_differential_identity;
          Alcotest.test_case "concurrent tenants" `Quick
            test_serve_concurrent_tenants;
          Alcotest.test_case "deadline rejection" `Quick
            test_serve_deadline_rejection;
          Alcotest.test_case "backpressure accounting" `Quick
            test_serve_backpressure_accounting ] );
      ( "snapshot",
        [ Alcotest.test_case "warm restart" `Quick test_snapshot_warm_restart ] );
      ( "endpoints",
        [ Alcotest.test_case "http" `Quick test_http_endpoints;
          Alcotest.test_case "shutdown op" `Quick test_shutdown_op ] ) ]
