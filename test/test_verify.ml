(* Whole-plan static verification (DESIGN.md §14): soundness of the checker
   on everything the optimizer actually emits, and sensitivity on a suite of
   deliberately corrupted plans.

   - soundness: over randomized federation seeds, stats modes and domain
     counts (1 and 4), every optimizer-chosen plan verifies with zero
     error-severity findings — the debug assertion on [Optimizer.optimize]
     output;
   - soundness: random single-source plans (the fuzz grammar) stay within
     the Planbound cardinality intervals;
   - mutations: swapped join keys, dropped attributes, dangling sources and
     negative cost constants are each detected with their specific tag;
   - engine preconditions: corrupt batches and materialized nodes are
     rejected by [check_batch] / [check_physical]. *)

open Disco_common
open Disco_algebra
open Disco_core
open Disco_exec
open Disco_wrapper
open Disco_mediator
module PC = Disco_analysis.Plancheck
module PB = Disco_analysis.Planbound

let make_med ?seed ?(stats = false) ?(domains = 1) () =
  let stats_mode =
    if stats then Mediator.Stats_feedback History.default_feedback
    else Mediator.Stats_off
  in
  let med = Mediator.create ~stats_mode ~domains () in
  List.iter (Mediator.register med) (Demo.make ?seed ~sizes:Demo.small_sizes ());
  med

let corpus =
  [ "select e.name from Employee e where e.salary > 5000";
    "select e.name, e.age from Employee e where e.age >= 30 order by e.age";
    "select e.name, d.city from Employee e, Department d \
     where e.dept_id = d.id and d.budget > 100000";
    "select p.id, t.hours from Project p, Task t \
     where t.project_id = p.id order by t.hours";
    "select d.id, count(*) as n from Employee e, Department d \
     where e.dept_id = d.id group by d.id";
    "select doc.doc_id from Document doc where doc.bytes > 1000";
    "select l.rating, e.name from Listing l, Employee e where l.emp_id = e.id";
    "select distinct e.dept_id from Employee e" ]

let pp_errors fs =
  Fmt.str "%a" (Fmt.list ~sep:Fmt.semi PC.pp_finding) (PC.errors fs)

(* --- qcheck soundness --------------------------------------------------------- *)

(* Mediator construction dominates; memoize per configuration (generation is
   deterministic in the seed, and verification does not mutate). *)
let med_cache : (int * bool * int, Mediator.t) Hashtbl.t = Hashtbl.create 16

let cached_med (seed, stats, domains) =
  match Hashtbl.find_opt med_cache (seed, stats, domains) with
  | Some m -> m
  | None ->
    let m = make_med ~seed ~stats ~domains () in
    Hashtbl.add med_cache (seed, stats, domains) m;
    m

let prop_optimizer_verifies =
  QCheck2.Test.make ~name:"optimizer output verifies clean" ~count:60
    QCheck2.Gen.(
      quad (int_range 0 3) bool (oneofl [ 1; 4 ]) (oneofl corpus))
    (fun (seed, stats, domains, sql) ->
      let med = cached_med (seed, stats, domains) in
      let plan, _ = Mediator.plan_query med sql in
      match PC.errors (Mediator.verify_plan med plan) with
      | [] -> true
      | errs -> QCheck2.Test.fail_reportf "%s: %s" sql (pp_errors errs))

(* Random single-source plans from the fuzz grammar: well-formedness may
   legitimately warn (e.g. a bare scan is only an error in mediator context)
   but the estimates must respect the sound cardinality interval. *)
let scannables =
  [ ("relstore", "Employee", "e", [ "id"; "dept_id"; "salary"; "age" ]);
    ("relstore", "Department", "d", [ "id"; "budget" ]);
    ("objstore", "Project", "p", [ "id"; "dept_id"; "cost"; "hours_budget" ]);
    ("objstore", "Task", "t", [ "id"; "project_id"; "hours" ]);
    ("files", "Document", "doc", [ "doc_id"; "project_id"; "bytes" ]);
    ("web", "Listing", "l", [ "id"; "emp_id"; "rating" ]) ]

let gen_fuzz_plan =
  QCheck2.Gen.(
    let* src, coll, binding, attrs = oneofl scannables in
    let scan = Plan.Scan { Plan.source = src; collection = coll; binding } in
    let* attr = oneofl attrs in
    let* op = oneofl [ Pred.Eq; Pred.Ne; Pred.Lt; Pred.Le; Pred.Gt; Pred.Ge ] in
    let* v = int_range (-10) 10_000 in
    let* with_select = bool in
    let base =
      if with_select then
        Plan.Select (scan, Pred.Cmp (binding ^ "." ^ attr, op, Constant.Int v))
      else scan
    in
    let* shape = int_range 0 3 in
    let qattr = binding ^ "." ^ attr in
    let decorated =
      match shape with
      | 0 -> base
      | 1 -> Plan.Project (base, [ qattr ])
      | 2 -> Plan.Dedup base
      | _ ->
        Plan.Aggregate
          ( base,
            { Plan.group_by = [ qattr ]; aggs = [ (Plan.Count, "", "n") ] } )
    in
    return (src, Plan.Submit (src, decorated)))

let prop_bounds_sound =
  let med = cached_med (0, false, 1) in
  let registry = Mediator.registry med in
  QCheck2.Test.make ~name:"random plans stay within cardinality bounds"
    ~count:300 gen_fuzz_plan
    (fun (_src, plan) ->
      match PC.errors (PB.check registry plan) with
      | [] -> true
      | errs -> QCheck2.Test.fail_reportf "%s" (pp_errors errs))

(* --- mutation suite ----------------------------------------------------------- *)

let joined_plan med =
  fst
    (Mediator.plan_query med
       "select e.name, d.city from Employee e, Department d \
        where e.dept_id = d.id")

let has_tag tag fs =
  List.exists (fun f -> f.PC.severity = PC.Error && f.PC.tag = tag) fs

let check_detects med label tag plan =
  let fs = Mediator.verify_plan med plan in
  Alcotest.(check bool)
    (Fmt.str "%s detected via [%s]" label tag)
    true (has_tag tag fs)

let rec rename_source ~from ~to_ = function
  | Plan.Scan r as p ->
    if r.Plan.source = from then Plan.Scan { r with Plan.source = to_ } else p
  | Plan.Select (c, q) -> Plan.Select (rename_source ~from ~to_ c, q)
  | Plan.Project (c, a) -> Plan.Project (rename_source ~from ~to_ c, a)
  | Plan.Sort (c, k) -> Plan.Sort (rename_source ~from ~to_ c, k)
  | Plan.Join (l, r, q) ->
    Plan.Join (rename_source ~from ~to_ l, rename_source ~from ~to_ r, q)
  | Plan.Union (l, r) ->
    Plan.Union (rename_source ~from ~to_ l, rename_source ~from ~to_ r)
  | Plan.Dedup c -> Plan.Dedup (rename_source ~from ~to_ c)
  | Plan.Aggregate (c, a) -> Plan.Aggregate (rename_source ~from ~to_ c, a)
  | Plan.Submit (s, c) -> Plan.Submit (s, rename_source ~from ~to_ c)

let test_dangling_source () =
  let med = make_med () in
  let bad = rename_source ~from:"relstore" ~to_:"ghost" (joined_plan med) in
  check_detects med "dangling source" "unknown-source" bad;
  (* Planbound degrades to a finding rather than leaking Unknown_source *)
  let fs = PB.check (Mediator.registry med) bad in
  Alcotest.(check bool)
    "bound pass reports estimation-failure" true
    (has_tag "estimation-failure" fs)

let test_swapped_join_key () =
  let med = make_med () in
  let bad =
    match joined_plan med with
    | Plan.Project (Plan.Join (l, r, _), attrs) ->
      Plan.Project
        (Plan.Join (l, r, Pred.Attr_cmp ("e.dept_id", Cmp.Eq, "d.city")), attrs)
    | p -> Alcotest.failf "unexpected plan shape %a" Plan.pp p
  in
  check_detects med "swapped join key (int vs string)" "join-type" bad

let test_dropped_attribute () =
  let med = make_med () in
  let bad = Plan.Project (joined_plan med, [ "e.nonexistent" ]) in
  check_detects med "projection of a dropped attribute" "projection" bad

let test_negative_cost () =
  let med = make_med () in
  let plan = joined_plan med in
  Alcotest.(check int)
    "clean before corruption" 0
    (List.length (PC.errors (Mediator.verify_plan med plan)));
  (* a measured (query-scope) rule asserting a negative total time *)
  ignore
    (Registry.add_query_rule (Mediator.registry med) ~source:"mediator" plan
       [ (Disco_costlang.Ast.Total_time, -5.0) ]);
  check_detects med "negative cost constant" "negative" plan

let test_verify_clean_corpus () =
  let med = make_med () in
  List.iter
    (fun sql ->
      let plan, _ = Mediator.plan_query med sql in
      let errs = PC.errors (Mediator.verify_plan med plan) in
      Alcotest.(check int) (sql ^ " verifies clean") 0 (List.length errs))
    corpus

let test_run_query_verify () =
  let med = make_med () in
  let a =
    Mediator.run_query ~verify:true med
      "select e.name from Employee e where e.salary > 5000"
  in
  Alcotest.(check bool) "rows returned" true (a.Mediator.rows <> []);
  (* corrupt the model, then the same query must be rejected pre-execution *)
  let plan, _ =
    Mediator.plan_query med "select e.name from Employee e where e.salary > 5000"
  in
  ignore
    (Registry.add_query_rule (Mediator.registry med) ~source:"mediator" plan
       [ (Disco_costlang.Ast.Total_time, Float.neg_infinity) ]);
  match Mediator.run_query ~verify:true med
          "select e.name from Employee e where e.salary > 5000"
  with
  | _ -> Alcotest.fail "corrupted plan executed"
  | exception Mediator.Invalid_plan fs ->
    Alcotest.(check bool) "findings carried" true (PC.errors fs <> [])

(* --- engine preconditions ----------------------------------------------------- *)

let mk_batch rows =
  let b = Batch.builder [| "e.id"; "e.name" |] in
  List.iter
    (fun (i, n) -> Batch.add_row b [| Constant.Int i; Constant.String n |])
    rows;
  Batch.flush b

let test_check_batch () =
  let good = mk_batch [ (1, "a"); (2, "b") ] in
  Alcotest.(check int) "good batch clean" 0
    (List.length (PC.errors (PC.check_batch good)));
  let bad_sel = { good with Batch.sel = Some [| 0; 7 |] } in
  Alcotest.(check bool) "out-of-range selection vector" true
    (has_tag "selection-vector" (PC.check_batch bad_sel));
  let bad_shape = { good with Batch.attrs = [| "e.id" |] } in
  Alcotest.(check bool) "attrs/cols disagreement" true
    (has_tag "batch-shape" (PC.check_batch bad_shape));
  let bad_bytes = { good with Batch.bytes = good.Batch.bytes + 3 } in
  Alcotest.(check bool) "bytes accounting" true
    (has_tag "batch-bytes" (PC.check_batch bad_bytes))

let test_check_physical () =
  let rows = [ Tuple.make [| "e.id" |] [| Constant.Int 1 |] ] in
  let good =
    Physical.Pmaterialized { rows; count = 1; first = 0.; total = 0. }
  in
  Alcotest.(check int) "good materialized clean" 0
    (List.length (PC.errors (PC.check_physical good)));
  let bad =
    Physical.Pmaterialized { rows; count = 5; first = 0.; total = 0. }
  in
  Alcotest.(check bool) "count mismatch" true
    (has_tag "materialized-count" (PC.check_physical bad))

(* --- plan-cache admission ----------------------------------------------------- *)

let test_plancache_rejects () =
  let reject_all = Plancache.create ~verify:(fun _ _ -> false) () in
  let med = make_med () in
  let reg = Mediator.registry med in
  let plan = joined_plan med in
  Plancache.add reject_all reg ~objective:Disco_costlang.Ast.Total_time plan 1.0;
  let c = Plancache.counters reject_all in
  Alcotest.(check int) "admission rejected" 1 c.Plancache.verify_rejects;
  Alcotest.(check bool) "nothing admitted" true
    (Plancache.find reject_all reg ~objective:Disco_costlang.Ast.Total_time plan = None)

let qcheck = List.map QCheck_alcotest.to_alcotest
    [ prop_optimizer_verifies; prop_bounds_sound ]

let () =
  Alcotest.run "verify"
    [ ("soundness",
       [ Alcotest.test_case "shipped corpus verifies clean" `Quick
           test_verify_clean_corpus;
         Alcotest.test_case "run_query ~verify gate" `Quick
           test_run_query_verify ]);
      ("mutations",
       [ Alcotest.test_case "dangling source" `Quick test_dangling_source;
         Alcotest.test_case "swapped join key" `Quick test_swapped_join_key;
         Alcotest.test_case "dropped attribute" `Quick test_dropped_attribute;
         Alcotest.test_case "negative cost" `Quick test_negative_cost ]);
      ("engine",
       [ Alcotest.test_case "batch preconditions" `Quick test_check_batch;
         Alcotest.test_case "physical invariants" `Quick test_check_physical ]);
      ("plancache",
       [ Alcotest.test_case "admission verify" `Quick test_plancache_rejects ]);
      ("properties", qcheck) ]
