(* Property/fuzz tests across the whole stack:

   - random logical plans over the demo federation never break the estimator,
     and always produce finite non-negative cost variables (the generic model
     is total);
   - random queries from a grammar of templates produce exactly the rows a
     naive cross-product reference evaluator produces. *)

open Disco_common
open Disco_algebra
open Disco_core
open Disco_storage
open Disco_exec
open Disco_wrapper
open Disco_mediator

(* One shared federation: generation is deterministic and the estimator does
   not mutate it. *)
let wrappers = Demo.make ~sizes:Demo.small_sizes ()

let med =
  let m = Mediator.create () in
  List.iter (Mediator.register m) wrappers;
  m

let registry = Mediator.registry med

(* --- Random plan generation ------------------------------------------------- *)

(* (source, collection, binding, int attributes, an indexed int attribute) *)
let scannables =
  [ ("relstore", "Employee", "e", [ "id"; "dept_id"; "salary"; "age" ]);
    ("relstore", "Department", "d", [ "id"; "budget" ]);
    ("objstore", "Project", "p", [ "id"; "dept_id"; "cost"; "hours_budget" ]);
    ("objstore", "Task", "t", [ "id"; "project_id"; "hours" ]);
    ("files", "Document", "doc", [ "doc_id"; "project_id"; "bytes" ]);
    ("web", "Listing", "l", [ "id"; "emp_id"; "rating" ]) ]

let gen_cmp = QCheck2.Gen.oneofl [ Pred.Eq; Pred.Ne; Pred.Lt; Pred.Le; Pred.Gt; Pred.Ge ]

let gen_pred binding attrs =
  QCheck2.Gen.(
    let atom =
      map3
        (fun attr op v -> Pred.Cmp (binding ^ "." ^ attr, op, Constant.Int v))
        (oneofl attrs) gen_cmp (int_range (-10) 10_000)
    in
    let rec tree n =
      if n = 0 then atom
      else
        frequency
          [ (3, atom);
            (1, map2 (fun a b -> Pred.And (a, b)) (tree (n - 1)) (tree (n - 1)));
            (1, map2 (fun a b -> Pred.Or (a, b)) (tree (n - 1)) (tree (n - 1)));
            (1, map (fun a -> Pred.Not a) (tree (n - 1))) ]
    in
    tree 2)

(* A random single-source plan: scan with optional select / project / sort /
   dedup / aggregate decoration, possibly under a submit. *)
let gen_plan =
  QCheck2.Gen.(
    let* src, coll, binding, attrs = oneofl scannables in
    let scan = Plan.Scan { Plan.source = src; collection = coll; binding } in
    let* with_select = bool in
    let* p = gen_pred binding attrs in
    let base = if with_select then Plan.Select (scan, p) else scan in
    let* shape = int_range 0 4 in
    let qattr a = binding ^ "." ^ a in
    let decorated =
      match shape with
      | 0 -> base
      | 1 -> Plan.Project (base, [ qattr (List.hd attrs) ])
      | 2 -> Plan.Sort (base, [ (qattr (List.hd attrs), Plan.Desc) ])
      | 3 -> Plan.Dedup base
      | _ ->
        Plan.Aggregate
          ( base,
            { Plan.group_by = [ qattr (List.hd attrs) ];
              aggs = [ (Plan.Count, "", "n") ] } )
    in
    let* submit = bool in
    return (src, if submit then Plan.Submit (src, decorated) else decorated))

let prop_estimator_total =
  QCheck2.Test.make ~name:"estimator total on random plans" ~count:300 gen_plan
    (fun (src, plan) ->
      let source = match plan with Plan.Submit _ -> None | _ -> Some src in
      let ann = Estimator.estimate ?source registry plan in
      List.for_all
        (fun v ->
          match Estimator.var ann v with
          | Some x -> Float.is_finite x && x >= 0.
          | None -> false)
        Disco_costlang.Ast.all_cost_vars)

(* Random two-scan joins within one source, both orientations. *)
let joinables =
  [ ("objstore", ("Task", "t", "t.project_id"), ("Project", "p", "p.id"));
    ("relstore", ("Employee", "e", "e.dept_id"), ("Department", "d", "d.id")) ]

let prop_estimator_joins =
  QCheck2.Test.make ~name:"estimator total on random joins" ~count:100
    QCheck2.Gen.(pair (oneofl joinables) (pair bool (int_range 0 8000)))
    (fun ((src, (c1, b1, a1), (c2, b2, a2)), (swap, v)) ->
      let s1 = Plan.Scan { Plan.source = src; collection = c1; binding = b1 } in
      let s2 = Plan.Scan { Plan.source = src; collection = c2; binding = b2 } in
      let filtered =
        Plan.Select (s1, Pred.Cmp (b1 ^ ".id", Pred.Le, Constant.Int v))
      in
      let pred = Pred.Attr_cmp (a1, Pred.Eq, a2) in
      let join =
        if swap then Plan.Join (s2, filtered, pred) else Plan.Join (filtered, s2, pred)
      in
      let ann = Estimator.estimate ~source:src registry join in
      Float.is_finite (Estimator.count_object ann)
      && Estimator.total_time ann >= 0.)

(* --- Histogram properties (DESIGN.md §11) ------------------------------------- *)

let gen_ints = QCheck2.Gen.(list_size (int_range 1 300) (int_range (-500) 500))

let build ?buckets xs =
  Option.get
    (Disco_catalog.Histogram.of_values ?buckets
       (List.map (fun i -> Constant.Int i) xs))

(* [strict] buckets never touch (fresh builds); merged histograms overlay a
   boundary grid, so adjacent buckets may share an endpoint. *)
let bucket_invariants ?(strict = true) (h : Disco_catalog.Histogram.t) =
  let open Disco_catalog.Histogram in
  let bs = buckets h in
  let ascending =
    let rec go = function
      | a :: (b :: _ as rest) ->
        (if strict then a.hi < b.lo else a.hi <= b.lo) && go rest
      | _ -> true
    in
    go bs
  in
  ascending
  && List.for_all (fun b -> b.lo <= b.hi && b.count > 0. && b.distinct >= 1.) bs
  && Float.abs (List.fold_left (fun a b -> a +. b.count) 0. bs -. total h) < 1e-6

let prop_equi_depth =
  QCheck2.Test.make ~name:"equi-depth invariant after build" ~count:300 gen_ints
    (fun xs ->
      let distinct = List.sort_uniq compare xs in
      let h = build ~buckets:8 distinct in
      let counts =
        List.map (fun b -> b.Disco_catalog.Histogram.count) (Disco_catalog.Histogram.buckets h)
      in
      let mx = List.fold_left Float.max neg_infinity counts in
      let mn = List.fold_left Float.min infinity counts in
      (* all-distinct input: equi-depth cuts differ by at most one object *)
      bucket_invariants h
      && mx -. mn <= 1.
      && Disco_catalog.Histogram.total h = float_of_int (List.length distinct))

let prop_merge =
  QCheck2.Test.make ~name:"merge preserves mass and shape invariants" ~count:200
    QCheck2.Gen.(pair gen_ints gen_ints)
    (fun (xs, ys) ->
      let open Disco_catalog.Histogram in
      let m = merge (build ~buckets:8 xs) (build ~buckets:8 ys) in
      bucket_invariants ~strict:false m
      && Float.abs (total m -. float_of_int (List.length xs + List.length ys)) < 1e-6)

let prop_cdf_monotone =
  QCheck2.Test.make ~name:"CDF monotone in [0,1]" ~count:300
    QCheck2.Gen.(triple gen_ints (int_range (-600) 600) (int_range 0 300))
    (fun (xs, x, d) ->
      let open Disco_catalog.Histogram in
      let h = build xs in
      let sel v = Option.get (sel_cmp h Cle (Constant.Int v)) in
      let a = sel x and b = sel (x + d) in
      (* tolerance covers ulp-level rounding in [lt + eq]; a genuine
         monotonicity break is at least a bucket share (>= 1e-3) *)
      0. <= a && a <= b +. 1e-9 && b <= 1.)

let prop_extremes =
  QCheck2.Test.make ~name:"sel(a <= max) = 1 and sel(a < min) = 0" ~count:300
    gen_ints
    (fun xs ->
      let open Disco_catalog.Histogram in
      let h = build xs in
      let mn = List.fold_left min max_int xs and mx = List.fold_left max min_int xs in
      Option.get (sel_cmp h Cle (Constant.Int mx)) = 1.
      && Option.get (sel_cmp h Clt (Constant.Int mn)) = 0.)

let prop_deterministic =
  QCheck2.Test.make ~name:"build deterministic under a fixed Rng seed" ~count:50
    QCheck2.Gen.(pair (int_range 0 1000) (int_range 1500 4000))
    (fun (seed0, n) ->
      (* above the subsample threshold, so the Rng path is exercised *)
      let xs = List.init n (fun i -> Constant.Int ((i * 37) mod 977)) in
      let open Disco_catalog.Histogram in
      let h1 = Option.get (of_values ~seed:seed0 xs) in
      let h2 = Option.get (of_values ~seed:seed0 xs) in
      buckets h1 = buckets h2 && total h1 = total h2)

(* [Selest.of_pred] stays within [0,1] when the inputs carry histograms. *)
let prop_selest_bounds_hist =
  QCheck2.Test.make ~name:"of_pred in [0,1] with histograms present" ~count:300
    QCheck2.Gen.(pair gen_ints (gen_pred "x" [ "a"; "b" ]))
    (fun (xs, p) ->
      let h = build xs in
      let stat =
        { Derive.default_stat with
          Derive.hist = Some h;
          min = Constant.Int (List.fold_left min max_int xs);
          max = Constant.Int (List.fold_left max min_int xs);
          distinct = float_of_int (List.length (List.sort_uniq compare xs)) }
      in
      let inputs = [ [ ("x.a", stat); ("x.b", stat) ] ] in
      let s = Selest.of_pred inputs p in
      Float.is_finite s && 0. <= s && s <= 1.)

(* --- End-to-end query fuzz ---------------------------------------------------- *)

let rows_of source name binding =
  let w = List.find (fun w -> w.Wrapper.name = source) wrappers in
  let t = Wrapper.find_table w name in
  let attrs =
    Array.of_list
      (List.map
         (fun (a : Disco_catalog.Schema.attribute) ->
           binding ^ "." ^ a.Disco_catalog.Schema.attr_name)
         t.Table.schema.Disco_catalog.Schema.attributes)
  in
  List.map (Tuple.make attrs) (Table.rows t)

(* Templates: (output attr, relations, where builder). *)
type template = {
  sql : int -> string;
  out : string;
  reference : int -> string list;
}

let sorted_ids rows attr =
  List.sort compare (List.map (fun t -> Constant.to_string (Tuple.get t attr)) rows)

let apply_adt name a v =
  if name = "lang_match" then Demo.lang_match.Disco_exec.Adt.impl a v
  else failwith "unknown adt"

let filter_ids ~out pred rows =
  sorted_ids (List.filter (fun t -> Pred.eval ~apply:apply_adt (Tuple.get t) pred) rows) out

let join_ref ~out pred left right =
  let joined =
    List.concat_map
      (fun l ->
        List.filter_map
          (fun r ->
            let t = Tuple.concat l r in
            if Pred.eval ~apply:apply_adt (Tuple.get t) pred then Some t else None)
          right)
      left
  in
  sorted_ids joined out

let templates : template list =
  [ { sql = (fun v -> Fmt.str "select e.id from Employee e where e.salary > %d" v);
      out = "e.id";
      reference =
        (fun v ->
          filter_ids ~out:"e.id"
            (Pred.Cmp ("e.salary", Pred.Gt, Constant.Int v))
            (rows_of "relstore" "Employee" "e")) };
    { sql =
        (fun v ->
          Fmt.str "select e.id from Employee e where e.age < %d and e.dept_id = %d" (v mod 60)
            (1 + (v mod 20)));
      out = "e.id";
      reference =
        (fun v ->
          filter_ids ~out:"e.id"
            (Pred.And
               ( Pred.Cmp ("e.age", Pred.Lt, Constant.Int (v mod 60)),
                 Pred.Cmp ("e.dept_id", Pred.Eq, Constant.Int (1 + (v mod 20))) ))
            (rows_of "relstore" "Employee" "e")) };
    { sql =
        (fun v ->
          Fmt.str
            "select e.id from Employee e, Department d \
             where e.dept_id = d.id and d.budget > %d and e.salary > %d"
            (100_000 + (v * 37 mod 300_000))
            (v mod 30_000));
      out = "e.id";
      reference =
        (fun v ->
          join_ref ~out:"e.id"
            (Pred.And
               ( Pred.Attr_cmp ("e.dept_id", Pred.Eq, "d.id"),
                 Pred.And
                   ( Pred.Cmp ("d.budget", Pred.Gt, Constant.Int (100_000 + (v * 37 mod 300_000))),
                     Pred.Cmp ("e.salary", Pred.Gt, Constant.Int (v mod 30_000)) ) ))
            (rows_of "relstore" "Employee" "e")
            (rows_of "relstore" "Department" "d")) };
    { sql =
        (fun v ->
          Fmt.str "select l.id from Listing l where l.rating >= %d" (1 + (v mod 5)));
      out = "l.id";
      reference =
        (fun v ->
          filter_ids ~out:"l.id"
            (Pred.Cmp ("l.rating", Pred.Ge, Constant.Int (1 + (v mod 5))))
            (rows_of "web" "Listing" "l")) };
    { sql =
        (fun v ->
          Fmt.str
            "select t.id from Project p, Task t where t.project_id = p.id and p.cost < %d"
            (5000 + (v mod 100_000)));
      out = "t.id";
      reference =
        (fun v ->
          join_ref ~out:"t.id"
            (Pred.And
               ( Pred.Attr_cmp ("t.project_id", Pred.Eq, "p.id"),
                 Pred.Cmp ("p.cost", Pred.Lt, Constant.Int (5000 + (v mod 100_000))) ))
            (rows_of "objstore" "Project" "p")
            (rows_of "objstore" "Task" "t")) };
    { sql =
        (fun v ->
          Fmt.str
            "select d.doc_id from Document d \
             where lang_match(d.lang, \"en\") and d.bytes > %d"
            (v mod 100_000));
      out = "d.doc_id";
      reference =
        (fun v ->
          filter_ids ~out:"d.doc_id"
            (Pred.And
               ( Pred.Apply ("lang_match", "d.lang", Constant.String "en"),
                 Pred.Cmp ("d.bytes", Pred.Gt, Constant.Int (v mod 100_000)) ))
            (rows_of "files" "Document" "d")) } ]

let prop_query_vs_reference =
  QCheck2.Test.make ~name:"random queries match the naive reference" ~count:60
    QCheck2.Gen.(pair (int_range 0 (List.length templates - 1)) (int_range 0 1_000_000))
    (fun (ti, v) ->
      let t = List.nth templates ti in
      let a = Mediator.run_query med (t.sql v) in
      sorted_ids a.Mediator.rows t.out = t.reference v)

(* --- Engine differential ------------------------------------------------------

   The batched engine must be indistinguishable from the tuple engine on
   anything but wall-clock: same rows in the same order, bit-identical
   simulated cost vectors — across random plans, random batch sizes
   (including 1 and sizes larger than any input) and both join modes. *)

let gen_join_plan =
  QCheck2.Gen.(
    let* src, (c1, b1, a1), (c2, b2, a2) = oneofl joinables in
    let* swap = bool in
    let* v = int_range 0 8000 in
    let s1 = Plan.Scan { Plan.source = src; collection = c1; binding = b1 } in
    let s2 = Plan.Scan { Plan.source = src; collection = c2; binding = b2 } in
    let filtered =
      Plan.Select (s1, Pred.Cmp (b1 ^ ".id", Pred.Le, Constant.Int v))
    in
    let pred = Pred.Attr_cmp (a1, Pred.Eq, a2) in
    return
      (src, if swap then Plan.Join (s2, filtered, pred) else Plan.Join (filtered, s2, pred)))

let gen_engine_plan =
  QCheck2.Gen.(
    frequency
      [ (3, map (fun (src, p) ->
             (src, match p with Plan.Submit (_, p) -> p | p -> p))
           gen_plan);
        (2, gen_join_plan) ])

let bits = Int64.bits_of_float

let prop_engines_agree =
  QCheck2.Test.make ~name:"batched = tuple: rows and simulated costs" ~count:150
    QCheck2.Gen.(triple gen_engine_plan bool (int_range 1 70))
    (fun ((src, plan), hj, bsz) ->
      let w = List.find (fun w -> w.Wrapper.name = src) wrappers in
      let phys = Wrapper.physical_plan w plan in
      let env =
        { Run.engine = w.Wrapper.engine;
          buffer = w.Wrapper.buffer;
          hash_join = hj;
          adts = w.Wrapper.adts }
      in
      (* identical cold buffer state before each engine, so the IO charge
         sequences are comparable *)
      Buffer.clear w.Wrapper.buffer;
      let rt, vt = Run.measure ~mode:Run.Tuple_at_a_time env phys in
      Buffer.clear w.Wrapper.buffer;
      let rb, vb = Run.measure ~mode:(Run.Batched { batch_size = bsz }) env phys in
      List.length rt = List.length rb
      && List.for_all2 Tuple.equal rt rb
      && bits vt.Run.count = bits vb.Run.count
      && bits vt.Run.size = bits vb.Run.size
      && bits vt.Run.time_first = bits vb.Run.time_first
      && bits vt.Run.total_time = bits vb.Run.total_time
      && bits vt.Run.time_next = bits vb.Run.time_next)

(* Both optimization objectives return the same rows. *)
let prop_objectives_agree =
  QCheck2.Test.make ~name:"objectives agree on answers" ~count:20
    QCheck2.Gen.(int_range 0 1_000_000)
    (fun v ->
      let t = List.nth templates (v mod 3) in
      let a = Mediator.run_query med (t.sql v) in
      let b = Mediator.run_query ~objective:Optimizer.First_tuple med (t.sql v) in
      sorted_ids a.Mediator.rows t.out = sorted_ids b.Mediator.rows t.out)

let () =
  Alcotest.run "fuzz"
    [ ( "estimator",
        List.map QCheck_alcotest.to_alcotest
          [ prop_estimator_total; prop_estimator_joins ] );
      ( "histogram",
        List.map QCheck_alcotest.to_alcotest
          [ prop_equi_depth; prop_merge; prop_cdf_monotone; prop_extremes;
            prop_deterministic; prop_selest_bounds_hist ] );
      ( "engine differential",
        List.map QCheck_alcotest.to_alcotest [ prop_engines_agree ] );
      ( "end-to-end",
        List.map QCheck_alcotest.to_alcotest
          [ prop_query_vs_reference; prop_objectives_agree ] ) ]
