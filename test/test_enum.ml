(* Join-enumeration engines (DESIGN.md §15): DPccp must be bit-identical to
   the subset DP wherever both run (plan, cost, plans_considered,
   dp_entries — at any domain count); greedy must produce valid plans at
   near-exact cost on the widths where the exact cost is still computable;
   and the width guards and impossible-query diagnostics that arrived with
   the engines must fire with named, actionable messages. *)

open Disco_algebra
open Disco_wrapper
open Disco_mediator

let bits = Int64.bits_of_float

let demo_med () =
  let med = Mediator.create () in
  List.iter (Mediator.register med) (Demo.make ~sizes:Demo.small_sizes ());
  med

let synth_med ?(rows = 30) n =
  let med = Mediator.create () in
  List.iter (Mediator.register med) (Demo.synthetic ~rows ~n ());
  med

let spec_of med sql =
  (Mediator.resolve med (Disco_sql.Sql.parse sql)).Mediator.spec

(* What bit-identity means between engines: same plan text, same cost down
   to the last mantissa bit, same candidates costed, same entries kept. *)
type obs = { plan : string; cost_bits : int64; considered : int; entries : int }

let observe ?domains ~enum med spec =
  let stats = Optimizer.new_stats () in
  let plan, cost =
    Optimizer.optimize ?domains ~enum ~stats (Mediator.registry med) spec
  in
  { plan = Plan.to_string plan;
    cost_bits = bits cost;
    considered = stats.Optimizer.plans_considered;
    entries = stats.Optimizer.dp_entries }

let check_identical where a b =
  Alcotest.(check string) (where ^ ": plan") a.plan b.plan;
  Alcotest.(check int64) (where ^ ": cost bits") a.cost_bits b.cost_bits;
  Alcotest.(check int) (where ^ ": plans_considered") a.considered b.considered;
  Alcotest.(check int) (where ^ ": dp_entries") a.entries b.entries

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let expect_plan_error ~what subs f =
  match f () with
  | _ -> Alcotest.failf "%s: expected Plan_error, got a plan" what
  | exception Disco_common.Err.Plan_error msg ->
    List.iter
      (fun s ->
        if not (contains msg s) then
          Alcotest.failf "%s: diagnostic %S does not mention %S" what msg s)
      subs

(* --- property: Dp = Dpccp on random synthetic join graphs ------------------ *)

let shape_of_idx n = function
  | 0 -> Demo.Chain
  | 1 -> Demo.Star
  | 2 -> Demo.Clique
  | _ -> Demo.Random_edges (max 1 (n / 2))

let differential_prop =
  let gen =
    QCheck2.Gen.(triple (int_range 0 3) (int_range 2 8) (int_range 0 3))
  in
  let print (s, n, seed) = Fmt.str "shape=%d n=%d seed=%d" s n seed in
  QCheck2.Test.make ~count:12 ~name:"dp = dpccp on random join graphs" ~print
    gen (fun (s, n, seed) ->
      (* Dense shapes stay small: the subset DP is ~3^n on them. *)
      let n = match s with 1 | 2 -> min n 6 | _ -> n in
      let shape = shape_of_idx n s in
      let med = Mediator.create () in
      List.iter (Mediator.register med) (Demo.synthetic ~seed ~rows:25 ~n ());
      let spec = spec_of med (Demo.synthetic_sql ~seed ~shape ~n ()) in
      List.iter
        (fun domains ->
          let where =
            Fmt.str "%s-%d seed=%d domains=%d" (Demo.shape_to_string shape) n
              seed domains
          in
          check_identical where
            (observe ~domains ~enum:Optimizer.Dp med spec)
            (observe ~domains ~enum:Optimizer.Dpccp med spec))
        [ 1; 4 ];
      true)

(* --- demo corpus: engines agree; the pinned 3-chain counters --------------- *)

let workload =
  [ "select e.id from Employee e where e.salary > 20000";
    "select e.id from Employee e, Department d where e.dept_id = d.id \
     and d.budget > 150000";
    "select e.id from Employee e, Department d, Project p \
     where e.dept_id = d.id and d.id = p.dept_id and e.salary > 15000";
    "select e.id from Employee e, Department d, Project p, Task t \
     where e.dept_id = d.id and d.id = p.dept_id and p.id = t.project_id \
     and t.hours > 10" ]

let test_demo_corpus () =
  let med = demo_med () in
  List.iteri
    (fun i sql ->
      let spec = spec_of med sql in
      let dp = observe ~enum:Optimizer.Dp med spec in
      (* Dpccp matches the sequential Dp reference at every pool size, and
         Auto below the threshold is exactly Dpccp. *)
      List.iter
        (fun domains ->
          check_identical
            (Fmt.str "workload %d dpccp domains=%d" i domains)
            dp
            (observe ~domains ~enum:Optimizer.Dpccp med spec))
        [ 1; 2; 4; 8 ];
      check_identical
        (Fmt.str "workload %d auto" i)
        dp
        (observe ~enum:Optimizer.Auto med spec))
    workload

let test_pinned_counters () =
  let med = demo_med () in
  let spec =
    spec_of med
      "select e.id from Employee e, Department d, Project p \
       where e.dept_id = d.id and d.id = p.dept_id"
  in
  let run enum =
    let stats = Optimizer.new_stats () in
    let _ = Optimizer.optimize ~enum ~stats (Mediator.registry med) spec in
    stats
  in
  let dp = run Optimizer.Dp and ccp = run Optimizer.Dpccp in
  Alcotest.(check int) "dp considered" 36 dp.Optimizer.plans_considered;
  Alcotest.(check int) "dpccp considered" 36 ccp.Optimizer.plans_considered;
  Alcotest.(check int) "dp entries" 10 dp.Optimizer.dp_entries;
  Alcotest.(check int) "dpccp entries" 10 ccp.Optimizer.dp_entries;
  (* The one counter the engines are allowed to differ on: enumeration
     work. The 3-chain has 6 subset splits but only 4 csg–cmp pairs. *)
  Alcotest.(check int) "dp splits" 6 dp.Optimizer.csg_cmp_pairs;
  Alcotest.(check int) "dpccp pairs" 4 ccp.Optimizer.csg_cmp_pairs

(* --- greedy: near-exact cost where exact is feasible, valid plans wider ---- *)

let test_greedy_cost_ratio () =
  let n = 16 in
  let med = synth_med n in
  let spec = spec_of med (Demo.synthetic_sql ~shape:Demo.Chain ~n ()) in
  let cost_of enum =
    let stats = Optimizer.new_stats () in
    snd (Optimizer.optimize ~enum ~stats (Mediator.registry med) spec)
  in
  let exact = cost_of Optimizer.Dpccp and greedy = cost_of Optimizer.Greedy in
  let ratio = greedy /. exact in
  if ratio < 0.999 || ratio > 1.5 then
    Alcotest.failf "greedy/exact cost ratio %.4f outside [1, 1.5] at chain-16"
      ratio

let test_greedy_plans_verify () =
  let med = Mediator.create ~enum_mode:Optimizer.Greedy () in
  List.iter (Mediator.register med) (Demo.synthetic ~rows:30 ~n:18 ());
  Alcotest.(check string)
    "mediator runs the greedy engine" "greedy"
    (Optimizer.enum_mode_to_string (Mediator.enum_mode med));
  List.iter
    (fun shape ->
      let sql = Demo.synthetic_sql ~shape ~n:18 () in
      let plan, _cost = Mediator.plan_query med sql in
      let errs =
        Disco_analysis.Plancheck.errors (Mediator.verify_plan med plan)
      in
      Alcotest.(check int)
        (Fmt.str "%s-18 greedy plan verification errors"
           (Demo.shape_to_string shape))
        0 (List.length errs))
    [ Demo.Chain; Demo.Random_edges 9 ]

(* --- diagnostics: impossible queries fail with names ----------------------- *)

let test_disconnected_diagnostic () =
  let med = demo_med () in
  let spec =
    spec_of med
      "select e.id from Employee e, Department d where e.salary > 20000"
  in
  expect_plan_error ~what:"cross join"
    [ "disconnected components"; "{d}"; "{e}"; "join predicates" ]
    (fun () -> Optimizer.optimize (Mediator.registry med) spec)

let test_unavailable_diagnostic () =
  let med = synth_med 4 in
  let spec = spec_of med (Demo.synthetic_sql ~shape:Demo.Chain ~n:4 ()) in
  expect_plan_error ~what:"excluded source"
    [ "Rel0"; "source s0"; "unavailable" ]
    (fun () ->
      Optimizer.optimize
        ~available:(fun s -> s <> "s0")
        (Mediator.registry med) spec)

(* --- width guards ---------------------------------------------------------- *)

let test_width_guards () =
  let med11 = synth_med ~rows:10 11 in
  let spec11 = spec_of med11 (Demo.synthetic_sql ~shape:Demo.Chain ~n:11 ()) in
  expect_plan_error ~what:"enumerate at 11" [ "cannot enumerate"; "11" ]
    (fun () -> Optimizer.enumerate spec11);
  let med21 = synth_med ~rows:10 21 in
  let spec21 = spec_of med21 (Demo.synthetic_sql ~shape:Demo.Chain ~n:21 ()) in
  expect_plan_error ~what:"dp at 21" [ "dp join enumerator"; "at most 20" ]
    (fun () ->
      Optimizer.optimize ~enum:Optimizer.Dp (Mediator.registry med21) spec21);
  (* The same query is fine under the graph-based engines. *)
  let _ = Optimizer.optimize ~enum:Optimizer.Dpccp (Mediator.registry med21) spec21 in
  ()

(* --- mediator-level stats accumulate across queries ------------------------ *)

let test_stats_accumulate () =
  let med = synth_med 5 in
  let considered () = (Mediator.optimizer_stats med).Optimizer.plans_considered in
  let c0 = considered () in
  let _ = Mediator.plan_query med (Demo.synthetic_sql ~shape:Demo.Chain ~n:5 ()) in
  let c1 = considered () in
  let _ = Mediator.plan_query med (Demo.synthetic_sql ~shape:Demo.Star ~n:5 ()) in
  let c2 = considered () in
  if not (c0 < c1 && c1 < c2) then
    Alcotest.failf "optimizer_stats did not accumulate: %d, %d, %d" c0 c1 c2

(* --- 50 sources end to end (the Auto -> Greedy path) ----------------------- *)

let test_chain50_end_to_end () =
  let med = synth_med ~rows:15 50 in
  let answer =
    Mediator.run_query med (Demo.synthetic_sql ~shape:Demo.Chain ~n:50 ())
  in
  Alcotest.(check int) "no replans" 0 answer.Mediator.replans;
  let errs =
    Disco_analysis.Plancheck.errors
      (Mediator.verify_plan med answer.Mediator.plan)
  in
  Alcotest.(check int) "executed plan verifies clean" 0 (List.length errs)

(* --- mode parsing and the DISCO_ENUM environment override ------------------ *)

let test_mode_parsing () =
  let mode =
    Alcotest.testable
      (fun ppf m -> Fmt.string ppf (Optimizer.enum_mode_to_string m))
      ( = )
  in
  Alcotest.(check (option mode)) "dp" (Some Optimizer.Dp)
    (Optimizer.enum_mode_of_string "dp");
  Alcotest.(check (option mode)) "DPCCP" (Some Optimizer.Dpccp)
    (Optimizer.enum_mode_of_string "DPCCP");
  Alcotest.(check (option mode)) "Greedy" (Some Optimizer.Greedy)
    (Optimizer.enum_mode_of_string "Greedy");
  Alcotest.(check (option mode)) "auto" (Some Optimizer.Auto)
    (Optimizer.enum_mode_of_string "auto");
  Alcotest.(check (option mode)) "unknown" None
    (Optimizer.enum_mode_of_string "bogus");
  Unix.putenv "DISCO_ENUM" "greedy";
  Alcotest.(check mode) "env greedy" Optimizer.Greedy (Optimizer.env_enum_mode ());
  Unix.putenv "DISCO_ENUM" "bogus";
  Alcotest.(check mode) "env unknown falls back" Optimizer.Auto
    (Optimizer.env_enum_mode ());
  Unix.putenv "DISCO_ENUM" "";
  Alcotest.(check mode) "env empty falls back" Optimizer.Auto
    (Optimizer.env_enum_mode ())

let () =
  Alcotest.run "enum"
    [ ( "differential",
        [ QCheck_alcotest.to_alcotest differential_prop;
          Alcotest.test_case "demo corpus: dp = dpccp = auto" `Quick
            test_demo_corpus;
          Alcotest.test_case "3-chain pinned counters" `Quick
            test_pinned_counters ] );
      ( "greedy",
        [ Alcotest.test_case "chain-16 cost ratio" `Quick test_greedy_cost_ratio;
          Alcotest.test_case "18-source plans verify" `Quick
            test_greedy_plans_verify;
          Alcotest.test_case "chain-50 end to end" `Slow
            test_chain50_end_to_end ] );
      ( "guards",
        [ Alcotest.test_case "disconnected join graph" `Quick
            test_disconnected_diagnostic;
          Alcotest.test_case "unavailable source" `Quick
            test_unavailable_diagnostic;
          Alcotest.test_case "width limits" `Quick test_width_guards ] );
      ( "modes",
        [ Alcotest.test_case "stats accumulate" `Quick test_stats_accumulate;
          Alcotest.test_case "parsing and DISCO_ENUM" `Quick test_mode_parsing ] )
    ]
