(* The disco command-line interface: query and inspect the demo federation.

     dune exec bin/disco.exe -- query "select e.name from Employee e limit 5"
     dune exec bin/disco.exe -- explain "select * from Department d"
     dune exec bin/disco.exe -- registration web
     dune exec bin/disco.exe -- sources
     dune exec bin/disco.exe -- fig12 --parts 7000 *)

open Cmdliner
open Disco_core
open Disco_exec
open Disco_wrapper
open Disco_mediator

(* --- shared options ---------------------------------------------------------- *)

let small_arg =
  let doc = "Use the small demo data set (fast)." in
  Arg.(value & flag & info [ "small" ] ~doc)

let seed_arg =
  let doc = "Seed for the deterministic data generator." in
  Arg.(value & opt int 42 & info [ "seed" ] ~doc)

let history_arg =
  let doc = "Historical-cost mode: off, exact or adjust." in
  Arg.(value & opt string "off" & info [ "history" ] ~doc)

let no_rules_arg =
  let doc = "Register wrappers without their cost rules (generic model only)." in
  Arg.(value & flag & info [ "no-rules" ] ~doc)

let no_cache_arg =
  let doc =
    "Disable the estimation caches (per-optimization memo and cross-query \
     plan cache); every plan is re-estimated from scratch."
  in
  Arg.(value & flag & info [ "no-cache" ] ~doc)

let domains_arg =
  let doc =
    "Domain-pool degree for parallel plan search and scatter-gather submit \
     execution (1 = sequential; results are bit-identical at any value). \
     Defaults to $(b,DISCO_DOMAINS), else 1."
  in
  Arg.(value & opt (some int) None & info [ "domains" ] ~docv:"N" ~doc)

let enum_arg =
  let modes =
    [ ("dp", Optimizer.Dp); ("dpccp", Optimizer.Dpccp);
      ("greedy", Optimizer.Greedy); ("auto", Optimizer.Auto) ]
  in
  let doc =
    "Join-enumeration engine: $(b,dp) (subset DP), $(b,dpccp) \
     (connected-subgraph DP; bit-identical plans at a fraction of the \
     enumeration work), $(b,greedy) (GOO + bounded improvement, for wide \
     federations), or $(b,auto) (dpccp up to the threshold, greedy above). \
     Defaults to $(b,DISCO_ENUM), else auto."
  in
  Arg.(value & opt (some (enum modes)) None & info [ "enum" ] ~docv:"MODE" ~doc)

let enum_threshold_arg =
  let doc =
    "Relation count where $(b,--enum auto) hands exact DPccp enumeration \
     over to the greedy engine (default 12)."
  in
  Arg.(value & opt (some int) None & info [ "enum-threshold" ] ~docv:"N" ~doc)

let stats_arg =
  let doc =
    "Enable feedback-driven statistics: harvest wrapper samples into \
     equi-depth histograms at registration and fold observed cardinalities \
     back into per-predicate selectivity corrections (off by default; the \
     off path is bit-identical to builds without the subsystem)."
  in
  Arg.(value & flag & info [ "stats" ] ~doc)

let fault_arg =
  let doc =
    "Install fault-injection profiles, e.g. \
     $(b,web:err=0.3@40,spike=0.2@500;files:outage=0-5000). Fields: seed=N, \
     spike=P@MS, err=P[@MS], stall=P, outage=A-B, stallwin=A-B (times in \
     simulated ms)."
  in
  Arg.(value & opt (some string) None & info [ "fault-profile" ] ~docv:"SPEC" ~doc)

let engine_arg =
  let doc =
    "Execution engine: $(b,tuple) (tuple-at-a-time) or $(b,batch) \
     (vectorized columnar batches). Results and simulated costs are \
     bit-identical; only wall-clock differs. Defaults to $(b,DISCO_ENGINE), \
     else tuple."
  in
  Arg.(value & opt (some string) None & info [ "engine" ] ~docv:"ENGINE" ~doc)

let batch_size_arg =
  let doc =
    "Rows per columnar batch in the batched engine. Defaults to \
     $(b,DISCO_BATCH), else 1024."
  in
  Arg.(value & opt (some int) None & info [ "batch-size" ] ~docv:"N" ~doc)

(* Resolve --engine/--batch-size into the session-wide default mode. *)
let set_engine engine batch_size =
  let bsz =
    match batch_size with
    | Some n when n > 0 -> n
    | Some n -> Fmt.failwith "batch size must be positive, got %d" n
    | None ->
      (match Run.default_mode () with
       | Run.Batched { batch_size } -> batch_size
       | Run.Tuple_at_a_time -> Run.default_batch_size)
  in
  match engine with
  | Some ("tuple" | "tuple-at-a-time") -> Run.set_default_mode Run.Tuple_at_a_time
  | Some ("batch" | "batched" | "vector" | "vectorized") ->
    Run.set_default_mode (Run.Batched { batch_size = bsz })
  | Some other -> Fmt.failwith "unknown engine %S (tuple|batch)" other
  | None ->
    (* keep the env-derived default, but honour an explicit --batch-size *)
    (match Run.default_mode () with
     | Run.Batched _ when batch_size <> None ->
       Run.set_default_mode (Run.Batched { batch_size = bsz })
     | _ -> ())

let history_mode = function
  | "off" -> History.Off
  | "exact" -> History.Exact
  | "adjust" -> History.Adjust { smoothing = 0.6 }
  | other -> Fmt.failwith "unknown history mode %S (off|exact|adjust)" other

let objective_arg =
  let doc = "Optimization objective: total (complete answer) or first (first object)." in
  Arg.(value & opt string "total" & info [ "objective" ] ~doc)

let objective_of = function
  | "total" -> Optimizer.Total_time
  | "first" -> Optimizer.First_tuple
  | other -> Fmt.failwith "unknown objective %S (total|first)" other

let make_mediator ?(no_cache = false) ?(stats = false) ?fault ?domains ?enum
    ?enum_threshold ~small ~seed ~history ~no_rules () =
  let sizes = if small then Demo.small_sizes else Demo.default_sizes in
  let wrappers = Demo.make ~seed ~sizes () in
  let wrappers =
    if no_rules then List.map Wrapper.without_rules wrappers else wrappers
  in
  let stats_mode =
    if stats then Mediator.Stats_feedback History.default_feedback
    else Mediator.Stats_off
  in
  let med =
    Mediator.create ~history_mode:(history_mode history) ~cache:(not no_cache)
      ?domains ~stats_mode ?enum_mode:enum ?enum_threshold ()
  in
  List.iter (Mediator.register med) wrappers;
  (match fault with
   | None -> ()
   | Some spec ->
     List.iter
       (fun (source, profile) ->
         match List.find_opt (fun w -> w.Wrapper.name = source) wrappers with
         | Some w -> Wrapper.install_fault w profile
         | None -> Fmt.failwith "fault profile names unknown source %S" source)
       (Disco_fault.Fault.parse_spec spec));
  (med, wrappers)

let handle f =
  match Disco_common.Err.guard f with
  | Ok () -> 0
  | Error msg ->
    Fmt.epr "error: %s@." msg;
    1

(* --- query -------------------------------------------------------------------- *)

let query_cmd =
  let sql =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"SQL" ~doc:"The query.")
  in
  let run small seed history no_rules no_cache stats fault domains enum
      enum_threshold objective engine batch_size sql =
    handle (fun () ->
        set_engine engine batch_size;
        let med, _ =
          make_mediator ~no_cache ~stats ?fault ?domains ?enum ?enum_threshold
            ~small ~seed ~history ~no_rules ()
        in
        let a = Mediator.run_query ~objective:(objective_of objective) med sql in
        List.iter (fun row -> Fmt.pr "%a@." Tuple.pp_with_names row) a.Mediator.rows;
        Fmt.pr "-- %d rows, measured %a@."
          (List.length a.Mediator.rows)
          Run.pp_vector a.Mediator.measured;
        Fmt.pr "-- estimated TotalTime %.1f ms@."
          (Estimator.total_time a.Mediator.estimate);
        if a.Mediator.replans > 0 then begin
          Fmt.pr "-- recovered after %d replan(s):@." a.Mediator.replans;
          List.iter
            (fun f -> Fmt.pr "--   %a@." Run.pp_submit_failure f)
            a.Mediator.recovered
        end;
        if Mediator.cache_enabled med then
          Fmt.pr "-- plan cache: %a@." Plancache.pp_counters (Mediator.plancache med))
  in
  Cmd.v
    (Cmd.info "query" ~doc:"Run a query against the demo federation.")
    Term.(
      const run $ small_arg $ seed_arg $ history_arg $ no_rules_arg $ no_cache_arg
      $ stats_arg $ fault_arg $ domains_arg $ enum_arg $ enum_threshold_arg
      $ objective_arg $ engine_arg $ batch_size_arg $ sql)

(* --- explain ------------------------------------------------------------------- *)

let explain_cmd =
  let sql =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"SQL" ~doc:"The query.")
  in
  let run small seed history no_rules no_cache stats fault domains enum
      enum_threshold engine batch_size sql =
    handle (fun () ->
        set_engine engine batch_size;
        let med, _ =
          make_mediator ~no_cache ~stats ?fault ?domains ?enum ?enum_threshold
            ~small ~seed ~history ~no_rules ()
        in
        print_string (Mediator.explain med sql))
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Show the chosen plan with per-node cost estimates and the scope of \
          the rule that produced each one.")
    Term.(
      const run $ small_arg $ seed_arg $ history_arg $ no_rules_arg $ no_cache_arg
      $ stats_arg $ fault_arg $ domains_arg $ enum_arg $ enum_threshold_arg
      $ engine_arg $ batch_size_arg $ sql)

(* --- analyze ------------------------------------------------------------------- *)

let analyze_cmd =
  let sql =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"SQL" ~doc:"The query.")
  in
  let run small seed history no_rules no_cache stats fault domains engine
      batch_size sql =
    handle (fun () ->
        set_engine engine batch_size;
        let med, _ =
          make_mediator ~no_cache ~stats ?fault ?domains ~small ~seed ~history
            ~no_rules ()
        in
        print_string (Mediator.analyze med sql))
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:"Execute a query and compare estimated vs measured costs per subquery.")
    Term.(
      const run $ small_arg $ seed_arg $ history_arg $ no_rules_arg $ no_cache_arg
      $ stats_arg $ fault_arg $ domains_arg $ engine_arg $ batch_size_arg $ sql)

(* --- registration ----------------------------------------------------------------- *)

let registration_cmd =
  let source =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"SOURCE" ~doc:"Wrapper name (relstore, objstore, files, web).")
  in
  let run small seed source =
    handle (fun () ->
        let wrappers = Demo.make ~seed ~sizes:(if small then Demo.small_sizes else Demo.default_sizes) () in
        match List.find_opt (fun w -> w.Wrapper.name = source) wrappers with
        | Some w -> print_endline (Wrapper.registration_text w)
        | None -> Fmt.failwith "unknown source %S" source)
  in
  Cmd.v
    (Cmd.info "registration"
       ~doc:
         "Print the cost-communication-language text a wrapper exports at \
          registration (schemas, statistics, cost rules).")
    Term.(const run $ small_arg $ seed_arg $ source)

(* --- check ----------------------------------------------------------------------- *)

let check_cmd =
  let source =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"SOURCE" ~doc:"Wrapper name (relstore, objstore, files, web).")
  in
  let run small seed source =
    handle (fun () ->
        let wrappers =
          Demo.make ~seed ~sizes:(if small then Demo.small_sizes else Demo.default_sizes) ()
        in
        match List.find_opt (fun w -> w.Wrapper.name = source) wrappers with
        | None -> Fmt.failwith "unknown source %S" source
        | Some w ->
          let issues =
            Disco_costlang.Check.check_source (Wrapper.registration_decl w)
          in
          if issues = [] then Fmt.pr "%s: export is clean@." source
          else List.iter (Fmt.pr "%a@." Disco_costlang.Check.pp_issue) issues)
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:"Statically check a wrapper's registration export (rules, interfaces).")
    Term.(const run $ small_arg $ seed_arg $ source)

(* --- lint ------------------------------------------------------------------------ *)

let strict_arg =
  let doc = "Exit non-zero when any error-severity finding is present." in
  Arg.(value & flag & info [ "strict" ] ~doc)

let fail_on_arg =
  let doc =
    "Exit non-zero when a finding at $(docv) or above is present: \
     $(b,error) fails on errors only, $(b,warning) also on warnings. \
     Excluded (circuit-broken) sources never gate."
  in
  Arg.(
    value
    & opt (some (enum [ ("error", `Error); ("warning", `Warning) ])) None
    & info [ "fail-on" ] ~docv:"SEVERITY" ~doc)

(* Shared gate for lint/verify: [--strict] and [--fail-on] apply to the
   findings the optimizer can actually act on. *)
let gate ~what ~strict ~fail_on ~nerrors ~nwarnings =
  if strict && nerrors > 0 then
    Fmt.failwith "%s failed: %d error-severity finding(s)" what nerrors;
  match fail_on with
  | Some `Error when nerrors > 0 ->
    Fmt.failwith "%s failed (--fail-on error): %d error(s)" what nerrors
  | Some `Warning when nerrors + nwarnings > 0 ->
    Fmt.failwith "%s failed (--fail-on warning): %d error(s), %d warning(s)"
      what nerrors nwarnings
  | _ -> ()

let lint_cmd =
  let json_arg =
    let doc = "Write the findings as a JSON array to $(docv)." in
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"PATH" ~doc)
  in
  let run small seed no_rules strict fail_on json =
    handle (fun () ->
        let module A = Disco_analysis.Analyzer in
        (* the demo federation: generic model blended with the four wrapper
           exports (lint runs over every registered source, "default" and
           "mediator" included). Findings of circuit-broken sources are
           reported but tagged scope:excluded and never gate. *)
        let med, _ = make_mediator ~small ~seed ~history:"off" ~no_rules () in
        let breaker_open src =
          match Health.state (Mediator.health med) src with
          | Health.Open _ -> true
          | Health.Closed | Health.Half_open _ -> false
        in
        let demo = A.analyze ~excluded:breaker_open (Mediator.registry med) in
        (* the oo7 example export, blended into its own fresh model *)
        let oo7 =
          let registry = Registry.create (Disco_catalog.Catalog.create ()) in
          Generic.register registry;
          let src =
            Disco_oo7.Oo7.make_source ~config:Disco_oo7.Oo7.small_config
              ~with_rules:true ()
          in
          ignore
            (Registry.register_source_decl registry (Wrapper.registration_decl src));
          A.analyze_source registry ~source:"oo7"
        in
        let findings = demo @ oo7 in
        List.iter (fun f -> Fmt.pr "%a@." A.pp_finding f) findings;
        let count s = List.length (A.of_severity s findings) in
        Fmt.pr "-- %d finding(s): %d error(s), %d warning(s), %d info@."
          (List.length findings) (count A.Error) (count A.Warning) (count A.Info);
        (match json with
         | None -> ()
         | Some path ->
           let oc = open_out path in
           output_string oc (A.to_json findings);
           close_out oc);
        let act = A.active findings in
        gate ~what:"lint" ~strict ~fail_on
          ~nerrors:(List.length (A.errors act))
          ~nwarnings:(List.length (A.of_severity A.Warning act)))
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Statically analyze the blended cost model of the demo federation \
          and the oo7 export: interval abstract interpretation (division by \
          zero, NaN, negative costs), rule shadowing and dead rules, \
          coverage of the five cost variables, and dependency cycles.")
    Term.(
      const run $ small_arg $ seed_arg $ no_rules_arg $ strict_arg $ fail_on_arg
      $ json_arg)

(* --- verify ---------------------------------------------------------------------- *)

let verify_cmd =
  let json_arg =
    let doc = "Write the findings as a JSON array to $(docv)." in
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"PATH" ~doc)
  in
  let run small seed no_rules stats strict fail_on json =
    handle (fun () ->
        let module PC = Disco_analysis.Plancheck in
        let module PB = Disco_analysis.Planbound in
        (* demo federation: optimize a representative query corpus and verify
           every chosen plan — typed well-formedness plus estimate bounds *)
        let med, _ = make_mediator ~stats ~small ~seed ~history:"off" ~no_rules () in
        let corpus =
          [ "select e.name from Employee e where e.salary > 5000";
            "select e.name, e.age from Employee e where e.age >= 30 order by e.age";
            "select e.name, d.city from Employee e, Department d \
             where e.dept_id = d.id and d.budget > 100000";
            "select p.id, t.hours from Project p, Task t \
             where t.project_id = p.id order by t.hours";
            "select d.id, count(*) as n from Employee e, Department d \
             where e.dept_id = d.id group by d.id";
            "select doc.doc_id from Document doc where doc.bytes > 1000";
            "select l.rating, e.name from Listing l, Employee e where l.emp_id = e.id";
            "select p.id, doc.doc_id from Project p, Document doc \
             where doc.project_id = p.id and p.cost > 100" ]
        in
        let tag label fs =
          List.map (fun f -> { f with PC.path = label ^ "/" ^ f.PC.path }) fs
        in
        let demo =
          List.concat_map
            (fun sql ->
              let plan, _ = Mediator.plan_query med sql in
              tag sql (Mediator.verify_plan med plan))
            corpus
        in
        (* oo7: the example export's own query workload, verified as the
           wrapper executes it (wrapper-side placement rules) *)
        let config = Disco_oo7.Oo7.small_config in
        let oo7 =
          let registry = Registry.create (Disco_catalog.Catalog.create ()) in
          Generic.register registry;
          let src =
            Disco_oo7.Oo7.make_source ~config ~with_rules:true ()
          in
          ignore
            (Registry.register_source_decl registry (Wrapper.registration_decl src));
          List.concat_map
            (fun (label, plan) ->
              tag ("oo7:" ^ label)
                (PC.check ~ctx:(`Wrapper "oo7") registry plan
                 @ PB.check ~source:"oo7" registry plan))
            (Disco_oo7.Oo7.queries config)
        in
        let findings = demo @ oo7 in
        List.iter (fun f -> Fmt.pr "%a@." PC.pp_finding f) findings;
        let count s = List.length (PC.of_severity s findings) in
        Fmt.pr
          "-- verified %d demo plan(s), %d oo7 plan(s): %d finding(s) \
           (%d error(s), %d warning(s), %d info)@."
          (List.length corpus)
          (List.length (Disco_oo7.Oo7.queries config))
          (List.length findings) (count PC.Error) (count PC.Warning)
          (count PC.Info);
        (match json with
         | None -> ()
         | Some path ->
           let oc = open_out path in
           output_string oc (PC.to_json findings);
           close_out oc);
        gate ~what:"verify" ~strict ~fail_on ~nerrors:(count PC.Error)
          ~nwarnings:(count PC.Warning))
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:
         "Statically verify whole plans over the demo and oo7 federations: \
          typed well-formedness of every optimizer-chosen plan (attribute \
          binding, operand and join-key types, projection shape, placement \
          and capabilities) plus interval cardinality/cost-bound validation \
          of its estimates (NaN, negative, divergent, non-monotone).")
    Term.(
      const run $ small_arg $ seed_arg $ no_rules_arg $ stats_arg $ strict_arg
      $ fail_on_arg $ json_arg)

(* --- sources --------------------------------------------------------------------- *)

let sources_cmd =
  let run small seed =
    handle (fun () ->
        let med, wrappers =
          make_mediator ~small ~seed ~history:"off" ~no_rules:false ()
        in
        List.iter
          (fun w ->
            Fmt.pr "source %s:@." w.Wrapper.name;
            List.iter
              (fun name ->
                let e =
                  Disco_catalog.Catalog.extent_stats (Mediator.catalog med)
                    ~source:w.Wrapper.name name
                in
                Fmt.pr "  %s %a@." name Disco_catalog.Stats.pp_extent e)
              (Wrapper.table_names w);
            Fmt.pr "  registered rules: %d@."
              (Registry.rule_count (Mediator.registry med) ~source:w.Wrapper.name))
          wrappers)
  in
  Cmd.v
    (Cmd.info "sources" ~doc:"List registered sources, collections and rule counts.")
    Term.(const run $ small_arg $ seed_arg)

(* --- health ---------------------------------------------------------------------- *)

let health_cmd =
  let probes_arg =
    let doc = "Probe submits per source." in
    Arg.(value & opt int 3 & info [ "probes" ] ~doc)
  in
  let run small seed fault domains probes =
    handle (fun () ->
        let med, wrappers =
          make_mediator ?fault ?domains ~small ~seed ~history:"off"
            ~no_rules:false ()
        in
        (* probe each source with real submits (scan of its first collection)
           so timeouts, retries and breaker transitions actually happen *)
        List.iter
          (fun w ->
            match Wrapper.table_names w with
            | [] -> ()
            | collection :: _ ->
              let probe =
                Disco_algebra.Plan.Submit
                  ( w.Wrapper.name,
                    Disco_algebra.Plan.Scan
                      { Disco_algebra.Plan.source = w.Wrapper.name;
                        collection;
                        binding = "p" } )
              in
              for _ = 1 to probes do
                try ignore (Mediator.to_physical med probe)
                with Run.Submit_error _ -> ()
              done)
          wrappers;
        Fmt.pr "source     state                 ok  fail  retries  consec  probes  last error@.";
        List.iter
          (fun (r : Health.row) ->
            Fmt.pr "%-10s %-20s %3d  %4d  %7d  %6d  %6d  %s@." r.Health.source
              (Fmt.str "%a" Health.pp_state r.Health.row_state)
              r.Health.ok r.Health.failed r.Health.retried r.Health.consecutive
              r.Health.probed
              (Option.value ~default:"-" r.Health.error))
          (Health.report (Mediator.health med));
        Fmt.pr "-- simulated clock: %.0f ms@." (Mediator.now med))
  in
  Cmd.v
    (Cmd.info "health"
       ~doc:
         "Probe each source with real submits under the configured fault \
          profiles and print the per-source health table (state, outcomes, \
          retries, circuit breaker).")
    Term.(const run $ small_arg $ seed_arg $ fault_arg $ domains_arg $ probes_arg)

(* --- serve / metrics -------------------------------------------------------------- *)

module Server = Disco_server.Server
module Client = Disco_server.Client
module Json = Disco_server.Json

let socket_arg =
  let doc = "Unix-domain socket path (ignored when --port is given)." in
  Arg.(value & opt string "/tmp/disco.sock" & info [ "socket" ] ~docv:"PATH" ~doc)

let host_arg =
  let doc = "TCP host to bind or connect to (with --port)." in
  Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"HOST" ~doc)

let port_arg =
  let doc = "Serve over TCP on $(docv) instead of the unix socket." in
  Arg.(value & opt (some int) None & info [ "port" ] ~docv:"PORT" ~doc)

let addr_of socket host port =
  match port with
  | Some port -> Server.Tcp { host; port }
  | None -> Server.Unix_socket socket

let serve_cmd =
  let queue_arg =
    let doc =
      "Admission-queue depth: queries beyond it are rejected immediately \
       with $(b,queue_full) (the backpressure point)."
    in
    Arg.(value & opt int 64 & info [ "queue" ] ~docv:"N" ~doc)
  in
  let workers_arg =
    let doc = "Worker threads draining the admission queue." in
    Arg.(value & opt int 2 & info [ "workers" ] ~docv:"N" ~doc)
  in
  let deadline_arg =
    let doc =
      "Default per-query deadline (wall-clock ms from receipt) for queries \
       that set none; expired-in-queue queries are rejected unexecuted."
    in
    Arg.(value & opt (some float) None & info [ "deadline-ms" ] ~docv:"MS" ~doc)
  in
  let snapshot_arg =
    let doc =
      "Snapshot file for warm restarts: per-tenant histories, adjustment \
       factors and the simulated clock are restored on start and saved on \
       shutdown."
    in
    Arg.(value & opt (some string) None & info [ "snapshot" ] ~docv:"PATH" ~doc)
  in
  let snapshot_every_arg =
    let doc = "Executed queries between periodic snapshots (0 disables)." in
    Arg.(value & opt int 32 & info [ "snapshot-every" ] ~docv:"N" ~doc)
  in
  let no_verify_arg =
    let doc =
      "Disable whole-plan verification at query admission (on by default: \
       an invalid chosen plan is rejected with a typed protocol error)."
    in
    Arg.(value & flag & info [ "no-verify" ] ~doc)
  in
  let run small seed history no_rules no_cache stats fault domains enum
      enum_threshold engine batch_size socket host port queue workers deadline
      snapshot snapshot_every no_verify =
    handle (fun () ->
        set_engine engine batch_size;
        let med, _ =
          make_mediator ~no_cache ~stats ?fault ?domains ?enum ?enum_threshold
            ~small ~seed ~history ~no_rules ()
        in
        let config =
          { Server.addr = addr_of socket host port;
            queue_depth = queue;
            workers;
            default_deadline_ms = deadline;
            snapshot_path = snapshot;
            snapshot_every;
            verify = not no_verify }
        in
        let srv = Server.create ~config med in
        Server.start srv;
        let shutdown _ = Server.stop srv in
        Sys.set_signal Sys.sigint (Sys.Signal_handle shutdown);
        Sys.set_signal Sys.sigterm (Sys.Signal_handle shutdown);
        (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
         with Invalid_argument _ -> ());
        Server.wait srv)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the persistent multi-tenant federation server: line-delimited \
          JSON queries over a unix or TCP socket, bounded admission with \
          backpressure, per-tenant history partitions, a shared plan cache, \
          /health and /metrics endpoints, and snapshot-based warm restarts.")
    Term.(
      const run $ small_arg $ seed_arg $ history_arg $ no_rules_arg $ no_cache_arg
      $ stats_arg $ fault_arg $ domains_arg $ enum_arg $ enum_threshold_arg
      $ engine_arg $ batch_size_arg $ socket_arg $ host_arg $ port_arg
      $ queue_arg $ workers_arg $ deadline_arg $ snapshot_arg
      $ snapshot_every_arg $ no_verify_arg)

let metrics_cmd =
  let json_flag =
    let doc = "Print the raw JSON instead of the table." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let iget path j = Option.value ~default:0 (Json.int_member path j) in
  let fget path j = Option.value ~default:0. (Json.float_member path j) in
  let run socket host port json =
    handle (fun () ->
        let c = Client.connect (addr_of socket host port) in
        let m = Client.metrics c in
        let h = Client.health c in
        Client.close c;
        if json then begin
          print_endline (Json.to_string m);
          print_endline (Json.to_string h)
        end
        else begin
          let server = Option.value ~default:Json.Null (Json.member "server" m) in
          let adm = Option.value ~default:Json.Null (Json.member "admission" m) in
          let pc = Option.value ~default:Json.Null (Json.member "plancache" m) in
          let st = Option.value ~default:Json.Null (Json.member "stats" m) in
          Fmt.pr "server    up %.1fs  received %d  admitted %d  completed %d  \
                  degraded %d  failed %d  in-flight %d@."
            (fget "uptime_s" server) (iget "received" server)
            (iget "admitted" server) (iget "completed" server)
            (iget "degraded" server) (iget "failed" server)
            (iget "in_flight" server);
          Fmt.pr "rejected  queue_full %d  deadline %d@."
            (iget "rejected_queue" server)
            (iget "rejected_deadline" server);
          let lat = Option.value ~default:Json.Null (Json.member "latency" server) in
          Fmt.pr "latency   p50 %.1f ms  p95 %.1f ms  p99 %.1f ms  max %.1f ms  \
                  (%d samples)@."
            (fget "p50_ms" lat) (fget "p95_ms" lat) (fget "p99_ms" lat)
            (fget "max_ms" lat) (iget "samples" lat);
          Fmt.pr "admission depth %d  queued %d  pushed %d  rejected %d  popped %d@."
            (iget "depth" adm) (iget "queued" adm) (iget "pushed" adm)
            (iget "rejected" adm) (iget "popped" adm);
          Fmt.pr "plancache hits %d  misses %d  stale %d  evictions %d  entries %d@."
            (iget "hits" pc) (iget "misses" pc) (iget "stale" pc)
            (iget "evictions" pc) (iget "entries" pc);
          Fmt.pr "stats     generation %d  history records %d  tenants %d@."
            (iget "generation" st) (iget "history_records" st) (iget "tenants" st);
          let opt = Option.value ~default:Json.Null (Json.member "optimizer" m) in
          Fmt.pr "optimizer %s (threshold %d)  plans %d  aborted %d  csg-cmp \
                  pairs %d  dp entries %d@."
            (Option.value ~default:"?" (Json.string_member "enum_mode" opt))
            (iget "enum_threshold" opt) (iget "plans_considered" opt)
            (iget "plans_aborted" opt) (iget "csg_cmp_pairs" opt)
            (iget "dp_entries" opt);
          (match Json.member "sources" h with
           | Some (Json.List sources) ->
             Fmt.pr "health    clock %.0f ms@." (fget "clock_ms" h);
             List.iter
               (fun s ->
                 let state =
                   match Json.member "state" s with
                   | Some (Json.String st) -> st
                   | Some (Json.Obj ((k, _) :: _)) -> k
                   | _ -> "?"
                 in
                 Fmt.pr "  %-10s %-10s ok %d  failed %d  retried %d  probes %d@."
                   (Option.value ~default:"?" (Json.string_member "source" s))
                   state (iget "ok" s) (iget "failed" s) (iget "retried" s)
                   (iget "probes" s))
               sources
           | _ -> ())
        end)
  in
  Cmd.v
    (Cmd.info "metrics"
       ~doc:
         "Scrape a running server's /metrics and /health and print latency \
          percentiles, admission counters, plan-cache rates and per-source \
          breaker states.")
    Term.(const run $ socket_arg $ host_arg $ port_arg $ json_flag)

(* --- fig12 ----------------------------------------------------------------------- *)

let fig12_cmd =
  let parts =
    let doc = "Number of AtomicParts (the paper uses 70000)." in
    Arg.(value & opt int 70_000 & info [ "parts" ] ~doc)
  in
  let run parts engine batch_size =
    handle (fun () ->
        set_engine engine batch_size;
        let config = { Disco_oo7.Oo7.paper_config with Disco_oo7.Oo7.atomic_parts = parts } in
        let source = Disco_oo7.Oo7.make_source ~config ~with_rules:true () in
        let registry_of src =
          let registry = Registry.create (Disco_catalog.Catalog.create ()) in
          Generic.register registry;
          ignore (Registry.register_source_decl registry (Wrapper.registration_decl src));
          registry
        in
        let reg_yao = registry_of source in
        let reg_cal = registry_of (Wrapper.without_rules source) in
        Fmt.pr "sel   measured(s)  calibrated(s)  yao(s)@.";
        List.iter
          (fun sel ->
            let k = int_of_float (float_of_int parts *. sel) in
            let plan =
              Disco_algebra.Plan.Select
                ( Disco_algebra.Plan.Scan
                    { Disco_algebra.Plan.source = "oo7";
                      collection = "AtomicPart";
                      binding = "a" },
                  Disco_algebra.Pred.Cmp
                    ("a.id", Disco_algebra.Pred.Le, Disco_common.Constant.Int k) )
            in
            Disco_oo7.Oo7.cold_cache source;
            let _, v = Wrapper.execute source plan in
            let est r =
              Estimator.total_time (Estimator.estimate ~source:"oo7" r plan) /. 1000.
            in
            Fmt.pr "%.2f  %11.1f  %13.1f  %6.1f@." sel
              (v.Run.total_time /. 1000.) (est reg_cal) (est reg_yao))
          [ 0.01; 0.05; 0.1; 0.2; 0.3; 0.4; 0.5; 0.6; 0.7 ])
  in
  Cmd.v
    (Cmd.info "fig12" ~doc:"Reproduce the paper's Figure 12 index-scan experiment.")
    Term.(const run $ parts $ engine_arg $ batch_size_arg)

let () =
  let info =
    Cmd.info "disco" ~version:"1.0.0"
      ~doc:
        "A mediator over heterogeneous data sources with an extensible, \
         blended cost model (reproduction of Naacke, Gardarin and Tomasic)."
  in
  exit
    (Cmd.eval'
       (Cmd.group info
          [ query_cmd; explain_cmd; analyze_cmd; registration_cmd; check_cmd;
            lint_cmd; verify_cmd; sources_cmd; health_cmd; serve_cmd; metrics_cmd;
            fig12_cmd ]))
