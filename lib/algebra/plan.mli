(** Logical query plans: the mediator algebra of paper §2.2 — scan, select,
    project, sort, join, union, dedup, aggregate — plus [submit], which
    models sending a subplan to a wrapper.

    Attributes in a plan are qualified by the binding of the scan producing
    them ([e.salary] for a scan of Employee bound to [e]), so joins of
    collections with identically-named attributes stay unambiguous. *)

type collection_ref = {
  source : string;      (** the data source (wrapper) name *)
  collection : string;  (** collection name within that source *)
  binding : string;     (** alias qualifying this scan's attributes *)
}

val pp_collection_ref : Format.formatter -> collection_ref -> unit

type order = Asc | Desc

type agg_fun = Count | Sum | Avg | Min | Max

val pp_agg_fun : Format.formatter -> agg_fun -> unit

type aggregate = {
  group_by : string list;
  aggs : (agg_fun * string * string) list;
      (** (function, input attribute — [""] for count-star, output name) *)
}

type t =
  | Scan of collection_ref
  | Select of t * Pred.t
  | Project of t * string list
  | Sort of t * (string * order) list
  | Join of t * t * Pred.t
  | Union of t * t
  | Dedup of t
  | Aggregate of t * aggregate
  | Submit of string * t  (** [Submit (source, subplan)] *)

val pp : Format.formatter -> t -> unit
(** Single-line rendering. *)

val to_string : t -> string

val pp_indented : Format.formatter -> t -> unit
(** Multi-line rendering for EXPLAIN output. *)

val children : t -> t list

val fold : ('a -> t -> 'a) -> 'a -> t -> 'a
(** Pre-order fold over all nodes. *)

val size : t -> int
(** Number of nodes. *)

val equal : t -> t -> bool
(** Structural equality; this is the matching relation of query-scope
    (historical) cost rules. *)

val equal_structural : t -> t -> bool
(** Alias of {!equal}, named for its role as the equivalence underlying
    {!hash}: two structurally equal subtrees are estimation-equivalent under
    a fixed registry, so caches may share their cost annotations. *)

val hash : t -> int
(** Canonical structural hash consistent with {!equal_structural} (full
    depth, numeric-coercing constant hashing). Key plans with [hash] +
    [equal_structural] in memo tables. *)

val scans : t -> collection_ref list
(** All scans, left to right. *)

val bindings : t -> (string * collection_ref) list
(** Binding -> collection map, for attribute-origin resolution. *)

val split_attr : string -> (string * string) option
(** [split_attr "e.salary" = Some ("e", "salary")]; [None] for bare names. *)

val attr_origin : t -> string -> (collection_ref * string) option
(** The base collection and unqualified attribute a qualified name traces
    back to, if its binding appears in the plan. *)

val output_attrs : collection_attrs:(string -> string -> string list) -> t -> string list
(** Output attributes of a plan; [collection_attrs source collection] supplies
    the unqualified attribute names of base collections. *)

val submit_sources : t -> string list
(** Sources of all [Submit] nodes, in plan order. *)
