(* Predicates over objects. Selection predicates compare an attribute with a
   constant; join predicates compare attributes of two inputs. Compound
   predicates combine them with And/Or/Not. *)

open Disco_common

type cmp = Cmp.t = Eq | Ne | Lt | Le | Gt | Ge

let pp_cmp = Cmp.pp
let eval_cmp = Cmp.eval
let flip_cmp = Cmp.flip

type t =
  | Cmp of string * cmp * Constant.t    (* attr op constant *)
  | Attr_cmp of string * cmp * string   (* attr op attr (join condition) *)
  | Apply of string * string * Constant.t
      (* ADT operation: fn(attr, constant), boolean result *)
  | And of t * t
  | Or of t * t
  | Not of t
  | True

let rec pp ppf = function
  | Cmp (a, op, v) -> Fmt.pf ppf "%s %a %a" a pp_cmp op Constant.pp v
  | Attr_cmp (a, op, b) -> Fmt.pf ppf "%s %a %s" a pp_cmp op b
  | Apply (fn, a, v) -> Fmt.pf ppf "%s(%s, %a)" fn a Constant.pp v
  | And (p, q) -> Fmt.pf ppf "(%a and %a)" pp p pp q
  | Or (p, q) -> Fmt.pf ppf "(%a or %a)" pp p pp q
  | Not p -> Fmt.pf ppf "not %a" pp p
  | True -> Fmt.string ppf "true"

let to_string p = Fmt.str "%a" pp p

let rec equal p q =
  match p, q with
  | Cmp (a1, o1, v1), Cmp (a2, o2, v2) ->
    String.equal a1 a2 && o1 = o2 && Constant.equal v1 v2
  | Attr_cmp (a1, o1, b1), Attr_cmp (a2, o2, b2) ->
    String.equal a1 a2 && o1 = o2 && String.equal b1 b2
  | Apply (f1, a1, v1), Apply (f2, a2, v2) ->
    String.equal f1 f2 && String.equal a1 a2 && Constant.equal v1 v2
  | And (p1, q1), And (p2, q2) | Or (p1, q1), Or (p2, q2) ->
    equal p1 p2 && equal q1 q2
  | Not p1, Not p2 -> equal p1 p2
  | True, True -> true
  | _ -> false

(* Structural hash consistent with [equal]; a cheap polynomial combine over
   constructor tags and leaf hashes (no depth cut-off, unlike the default
   [Hashtbl.hash], so large predicates still discriminate). *)
let hash p =
  let comb acc x = (acc * 31) + x in
  let cmp_tag = function Eq -> 1 | Ne -> 2 | Lt -> 3 | Le -> 4 | Gt -> 5 | Ge -> 6 in
  let rec go acc = function
    | Cmp (a, op, v) ->
      comb (comb (comb (comb acc 3) (Hashtbl.hash a)) (cmp_tag op)) (Constant.hash v)
    | Attr_cmp (a, op, b) ->
      comb (comb (comb (comb acc 5) (Hashtbl.hash a)) (cmp_tag op)) (Hashtbl.hash b)
    | Apply (fn, a, v) ->
      comb (comb (comb (comb acc 7) (Hashtbl.hash fn)) (Hashtbl.hash a)) (Constant.hash v)
    | And (p, q) -> go (go (comb acc 11) p) q
    | Or (p, q) -> go (go (comb acc 13) p) q
    | Not p -> go (comb acc 17) p
    | True -> comb acc 19
  in
  go 0 p land max_int

let no_apply name _ _ =
  raise
    (Disco_common.Err.Eval_error
       (Fmt.str "no implementation for ADT operation %S" name))

(* Evaluate against a lookup function from attribute name to value; [apply]
   supplies the implementations of ADT operations. *)
let rec eval ?(apply = no_apply) lookup = function
  | Cmp (a, op, v) -> eval_cmp op (lookup a) v
  | Attr_cmp (a, op, b) -> eval_cmp op (lookup a) (lookup b)
  | Apply (fn, a, v) -> apply fn (lookup a) v
  | And (p, q) -> eval ~apply lookup p && eval ~apply lookup q
  | Or (p, q) -> eval ~apply lookup p || eval ~apply lookup q
  | Not p -> not (eval ~apply lookup p)
  | True -> true

(* All attribute names referenced by a predicate. *)
let rec attributes = function
  | Cmp (a, _, _) | Apply (_, a, _) -> [ a ]
  | Attr_cmp (a, _, b) -> [ a; b ]
  | And (p, q) | Or (p, q) -> attributes p @ attributes q
  | Not p -> attributes p
  | True -> []

(* Names of the ADT operations a predicate invokes. *)
let rec adt_operations = function
  | Apply (fn, _, _) -> [ fn ]
  | And (p, q) | Or (p, q) -> adt_operations p @ adt_operations q
  | Not p -> adt_operations p
  | Cmp _ | Attr_cmp _ | True -> []

let has_apply p = adt_operations p <> []

(* Split a conjunction into its atomic conjuncts. *)
let rec conjuncts = function
  | And (p, q) -> conjuncts p @ conjuncts q
  | True -> []
  | p -> [ p ]

let conj = function
  | [] -> True
  | p :: rest -> List.fold_left (fun acc q -> And (acc, q)) p rest
