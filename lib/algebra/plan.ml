(* Logical query plans: the mediator algebra of paper §2.2 — scan, select,
   project, sort, join, union, dedup, aggregate, plus [submit] which models
   sending a subplan to a wrapper.

   Attributes in a plan are qualified by the binding of the scan that produces
   them ("e.salary" for scan of Employee bound to [e]), so joins of two
   collections with identically-named attributes stay unambiguous. *)

type collection_ref = {
  source : string;     (* data source (wrapper) name *)
  collection : string; (* collection name in that source *)
  binding : string;    (* alias used to qualify attributes *)
}

let pp_collection_ref ppf r = Fmt.pf ppf "%s.%s as %s" r.source r.collection r.binding

type order = Asc | Desc

type agg_fun = Count | Sum | Avg | Min | Max

let pp_agg_fun ppf = function
  | Count -> Fmt.string ppf "count"
  | Sum -> Fmt.string ppf "sum"
  | Avg -> Fmt.string ppf "avg"
  | Min -> Fmt.string ppf "min"
  | Max -> Fmt.string ppf "max"

type aggregate = {
  group_by : string list;
  (* (function, input attribute, output name); Count ignores its input. *)
  aggs : (agg_fun * string * string) list;
}

type t =
  | Scan of collection_ref
  | Select of t * Pred.t
  | Project of t * string list
  | Sort of t * (string * order) list
  | Join of t * t * Pred.t
  | Union of t * t
  | Dedup of t
  | Aggregate of t * aggregate
  | Submit of string * t

let rec pp ppf = function
  | Scan r -> Fmt.pf ppf "scan(%a)" pp_collection_ref r
  | Select (p, pr) -> Fmt.pf ppf "select(%a, %a)" pp p Pred.pp pr
  | Project (p, attrs) -> Fmt.pf ppf "project(%a, [%s])" pp p (String.concat ", " attrs)
  | Sort (p, keys) ->
    let key ppf (a, o) = Fmt.pf ppf "%s%s" a (match o with Asc -> "" | Desc -> " desc") in
    Fmt.pf ppf "sort(%a, [%a])" pp p Fmt.(list ~sep:(any ", ") key) keys
  | Join (l, r, pr) -> Fmt.pf ppf "join(%a, %a, %a)" pp l pp r Pred.pp pr
  | Union (l, r) -> Fmt.pf ppf "union(%a, %a)" pp l pp r
  | Dedup p -> Fmt.pf ppf "dedup(%a)" pp p
  | Aggregate (p, a) ->
    let agg ppf (f, i, o) = Fmt.pf ppf "%a(%s) as %s" pp_agg_fun f i o in
    Fmt.pf ppf "aggregate(%a, group [%s], [%a])" pp p
      (String.concat ", " a.group_by)
      Fmt.(list ~sep:(any ", ") agg)
      a.aggs
  | Submit (src, p) -> Fmt.pf ppf "submit(%s, %a)" src pp p

let to_string p = Fmt.str "%a" pp p

(* Multi-line rendering for EXPLAIN output. *)
let pp_indented ppf plan =
  let rec go indent p =
    let pad = String.make indent ' ' in
    let line fmt = Fmt.pf ppf ("%s" ^^ fmt ^^ "@.") pad in
    match p with
    | Scan r -> line "scan %a" pp_collection_ref r
    | Select (c, pr) ->
      line "select %a" Pred.pp pr;
      go (indent + 2) c
    | Project (c, attrs) ->
      line "project [%s]" (String.concat ", " attrs);
      go (indent + 2) c
    | Sort (c, keys) ->
      line "sort [%s]" (String.concat ", " (List.map fst keys));
      go (indent + 2) c
    | Join (l, r, pr) ->
      line "join %a" Pred.pp pr;
      go (indent + 2) l;
      go (indent + 2) r
    | Union (l, r) ->
      line "union";
      go (indent + 2) l;
      go (indent + 2) r
    | Dedup c ->
      line "dedup";
      go (indent + 2) c
    | Aggregate (c, a) ->
      line "aggregate group [%s]" (String.concat ", " a.group_by);
      go (indent + 2) c
    | Submit (src, c) ->
      line "submit -> %s" src;
      go (indent + 2) c
  in
  go 0 plan

let children = function
  | Scan _ -> []
  | Select (c, _) | Project (c, _) | Sort (c, _) | Dedup c | Aggregate (c, _)
  | Submit (_, c) ->
    [ c ]
  | Join (l, r, _) | Union (l, r) -> [ l; r ]

let rec fold f acc p = List.fold_left (fold f) (f acc p) (children p)

let size p = fold (fun n _ -> n + 1) 0 p

let rec equal p q =
  match p, q with
  | Scan a, Scan b ->
    String.equal a.source b.source
    && String.equal a.collection b.collection
    && String.equal a.binding b.binding
  | Select (c1, p1), Select (c2, p2) -> Pred.equal p1 p2 && equal c1 c2
  | Project (c1, a1), Project (c2, a2) -> a1 = a2 && equal c1 c2
  | Sort (c1, k1), Sort (c2, k2) -> k1 = k2 && equal c1 c2
  | Join (l1, r1, p1), Join (l2, r2, p2) ->
    Pred.equal p1 p2 && equal l1 l2 && equal r1 r2
  | Union (l1, r1), Union (l2, r2) -> equal l1 l2 && equal r1 r2
  | Dedup c1, Dedup c2 -> equal c1 c2
  | Aggregate (c1, a1), Aggregate (c2, a2) -> a1 = a2 && equal c1 c2
  | Submit (s1, c1), Submit (s2, c2) -> String.equal s1 s2 && equal c1 c2
  | _ -> false

let equal_structural = equal

(* Canonical structural hash consistent with [equal_structural]. The tree is
   combined manually (the default [Hashtbl.hash] stops after 10 meaningful
   nodes, which would collide every deep plan); flat leaf payloads — name
   lists, sort keys, aggregate specs — go through [Hashtbl.hash], and
   predicates through [Pred.hash], whose constant hashing matches the numeric
   coercion of [Pred.equal]. *)
let hash p =
  let comb acc x = (acc * 31) + x in
  let rec go acc = function
    | Scan r ->
      comb
        (comb (comb (comb acc 3) (Hashtbl.hash r.source)) (Hashtbl.hash r.collection))
        (Hashtbl.hash r.binding)
    | Select (c, pr) -> go (comb (comb acc 5) (Pred.hash pr)) c
    | Project (c, attrs) -> go (comb (comb acc 7) (Hashtbl.hash attrs)) c
    | Sort (c, keys) -> go (comb (comb acc 11) (Hashtbl.hash keys)) c
    | Join (l, r, pr) -> go (go (comb (comb acc 13) (Pred.hash pr)) l) r
    | Union (l, r) -> go (go (comb acc 17) l) r
    | Dedup c -> go (comb acc 19) c
    | Aggregate (c, a) -> go (comb (comb acc 23) (Hashtbl.hash a)) c
    | Submit (src, c) -> go (comb (comb acc 29) (Hashtbl.hash src)) c
  in
  go 0 p land max_int

(* All scans appearing in a plan, left to right. *)
let scans p =
  List.rev
    (fold (fun acc n -> match n with Scan r -> r :: acc | _ -> acc) [] p)

(* Binding -> collection_ref map for attribute-origin resolution. *)
let bindings p = List.map (fun r -> (r.binding, r)) (scans p)

(* Split a qualified attribute name "b.attr" into (binding, attr). *)
let split_attr qname =
  match String.index_opt qname '.' with
  | Some i ->
    Some (String.sub qname 0 i, String.sub qname (i + 1) (String.length qname - i - 1))
  | None -> None

(* The base collection and unqualified attribute a qualified name refers to,
   if it traces back to a scan of [plan]. *)
let attr_origin plan qname =
  match split_attr qname with
  | None -> None
  | Some (binding, attr) ->
    (match List.assoc_opt binding (bindings plan) with
     | Some r -> Some (r, attr)
     | None -> None)

(* Output attributes of a plan, given the attribute names of base
   collections. [collection_attrs source collection] returns the unqualified
   attribute names. *)
let rec output_attrs ~collection_attrs p =
  match p with
  | Scan r ->
    List.map (fun a -> r.binding ^ "." ^ a) (collection_attrs r.source r.collection)
  | Select (c, _) | Sort (c, _) | Dedup c | Submit (_, c) ->
    output_attrs ~collection_attrs c
  | Project (_, attrs) -> attrs
  | Join (l, r, _) ->
    output_attrs ~collection_attrs l @ output_attrs ~collection_attrs r
  | Union (l, _) -> output_attrs ~collection_attrs l
  | Aggregate (_, a) -> a.group_by @ List.map (fun (_, _, o) -> o) a.aggs

(* Sources mentioned by submits in the plan. *)
let submit_sources p =
  List.rev
    (fold (fun acc n -> match n with Submit (s, _) -> s :: acc | _ -> acc) [] p)
