(** Predicates over objects: attribute-vs-constant comparisons, attribute-vs-
    attribute comparisons (join conditions), and boolean combinations. *)

open Disco_common

type cmp = Cmp.t = Eq | Ne | Lt | Le | Gt | Ge
(** Re-export of {!Disco_common.Cmp.t}. *)

val pp_cmp : Format.formatter -> cmp -> unit
val eval_cmp : cmp -> Constant.t -> Constant.t -> bool
val flip_cmp : cmp -> cmp

type t =
  | Cmp of string * cmp * Constant.t   (** [attr op constant] *)
  | Attr_cmp of string * cmp * string  (** [attr op attr] (join condition) *)
  | Apply of string * string * Constant.t
      (** [fn(attr, constant)]: a boolean abstract-data-type operation
          implemented by the wrapper (paper §7); its cost and selectivity may
          be exported through the cost language *)
  | And of t * t
  | Or of t * t
  | Not of t
  | True                               (** the neutral predicate *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val equal : t -> t -> bool
(** Structural equality (constants compare with numeric coercion). *)

val hash : t -> int
(** Structural hash consistent with {!equal}; unbounded depth, unlike the
    default [Hashtbl.hash]. *)

val eval :
  ?apply:(string -> Constant.t -> Constant.t -> bool) ->
  (string -> Constant.t) -> t -> bool
(** [eval lookup p] evaluates [p], resolving attribute names through
    [lookup]; [apply] supplies the implementations of ADT operations (the
    default raises {!Disco_common.Err.Eval_error}). *)

val adt_operations : t -> string list
(** Names of the ADT operations invoked, with duplicates. *)

val has_apply : t -> bool

val attributes : t -> string list
(** All attribute names referenced, with duplicates, in syntactic order. *)

val conjuncts : t -> t list
(** Split a conjunction into atomic conjuncts; [conjuncts True = []]. *)

val conj : t list -> t
(** Rebuild a conjunction; [conj [] = True]. For any [p] built from [And],
    [conj (conjuncts p)] is logically equivalent to [p]. *)
