(* A secondary index: keys in sorted order, each with the record ids of the
   matching objects. Implemented as a sorted array with binary search —
   behaviourally equivalent to a B-tree for our simulation purposes; the
   probe cost (tree descent) is charged by the executor. *)

open Disco_common

type rid = { page : int; slot : int }

type t = {
  keys : Constant.t array;        (* sorted, distinct *)
  rids : rid list array;          (* postings per key *)
  height : int;                   (* simulated tree height, for probe cost *)
}

let height_of n =
  (* fanout-128 tree *)
  let rec go h cap = if cap >= n || h > 8 then h else go (h + 1) (cap * 128) in
  go 1 128

let build (entries : (Constant.t * rid) list) : t =
  let sorted =
    List.sort (fun (a, _) (b, _) -> Constant.compare a b) entries
  in
  let rec group acc current_key current_rids = function
    | [] ->
      (match current_key with
       | None -> List.rev acc
       | Some k -> List.rev ((k, List.rev current_rids) :: acc))
    | (k, r) :: rest ->
      (match current_key with
       | None -> group acc (Some k) [ r ] rest
       | Some ck when Constant.compare ck k = 0 ->
         group acc current_key (r :: current_rids) rest
       | Some ck -> group ((ck, List.rev current_rids) :: acc) (Some k) [ r ] rest)
  in
  let grouped = group [] None [] sorted in
  { keys = Array.of_list (List.map fst grouped);
    rids = Array.of_list (List.map snd grouped);
    height = height_of (List.length grouped) }

let key_count t = Array.length t.keys

(* Index of the first key >= [k] (length if none). *)
let lower_bound t k =
  let lo = ref 0 and hi = ref (Array.length t.keys) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if Constant.compare t.keys.(mid) k < 0 then lo := mid + 1 else hi := mid
  done;
  !lo

(* Index of the first key > [k]. *)
let upper_bound t k =
  let lo = ref 0 and hi = ref (Array.length t.keys) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if Constant.compare t.keys.(mid) k <= 0 then lo := mid + 1 else hi := mid
  done;
  !lo

let lookup t k =
  let i = lower_bound t k in
  if i < Array.length t.keys && Constant.compare t.keys.(i) k = 0 then t.rids.(i)
  else []

(* All rids whose key is within the given bounds, in key order. *)
let range ?lo ?(lo_strict = false) ?hi ?(hi_strict = false) t : rid list =
  let start =
    match lo with
    | None -> 0
    | Some k -> if lo_strict then upper_bound t k else lower_bound t k
  in
  let stop =
    match hi with
    | None -> Array.length t.keys
    | Some k -> if hi_strict then lower_bound t k else upper_bound t k
  in
  let acc = ref [] in
  for i = stop - 1 downto start do
    acc := t.rids.(i) @ !acc
  done;
  !acc

(* Rids satisfying a comparison against [k], in key order. *)
let search t (op : Cmp.t) k =
  match op with
  | Cmp.Eq -> lookup t k
  | Lt -> range ~hi:k ~hi_strict:true t
  | Le -> range ~hi:k t
  | Gt -> range ~lo:k ~lo_strict:true t
  | Ge -> range ~lo:k t
  | Ne ->
    range ~hi:k ~hi_strict:true t @ range ~lo:k ~lo_strict:true t

(* Streaming variants of [range]/[search]: visit the same rids in the same
   order without materializing the list — the batch executor's index scans
   fetch millions of rids at the large OO7 scale. *)
let iter_range ?lo ?(lo_strict = false) ?hi ?(hi_strict = false) t f =
  let start =
    match lo with
    | None -> 0
    | Some k -> if lo_strict then upper_bound t k else lower_bound t k
  in
  let stop =
    match hi with
    | None -> Array.length t.keys
    | Some k -> if hi_strict then lower_bound t k else upper_bound t k
  in
  for i = start to stop - 1 do
    List.iter f t.rids.(i)
  done

let iter_search t (op : Cmp.t) k f =
  match op with
  | Cmp.Eq -> List.iter f (lookup t k)
  | Lt -> iter_range ~hi:k ~hi_strict:true t f
  | Le -> iter_range ~hi:k t f
  | Gt -> iter_range ~lo:k ~lo_strict:true t f
  | Ge -> iter_range ~lo:k t f
  | Ne ->
    iter_range ~hi:k ~hi_strict:true t f;
    iter_range ~lo:k ~lo_strict:true t f
