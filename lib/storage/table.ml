(* A stored collection: fixed-size objects packed into pages, optionally
   clustered on one attribute, with secondary B-tree indexes. This is the
   simulated stand-in for the paper's data sources (ObjectStore et al.);
   object placement across pages is what makes index-scan costs follow Yao's
   formula rather than the linear calibrated model. *)

open Disco_common
open Disco_catalog

type tuple = Constant.t array

(* One whole-table column in storage order: unboxed when every cell is an
   Int (resp. Float), boxed otherwise. The vectorized executor's scan blits
   batch-sized slices out of these instead of transposing boxed cells row by
   row — that is what lets a columnar scan beat the tuple engine, whose
   scan shares the stored row arrays and does no per-cell work at all. *)
type col =
  | Cints of int array
  | Cfloats of float array
  | Cboxed of Constant.t array

type t = {
  name : string;
  schema : Schema.collection;
  pages : tuple array array;      (* page -> slot -> object *)
  object_size : int;              (* bytes per object *)
  page_size : int;
  fill : float;
  indexes : (string * Btree.t) list;  (* attribute -> index *)
  clustered_on : string option;
  count : int;
  columnar : col array;           (* per attribute, whole table, page order *)
}

let attr_pos t name =
  match Schema.attr_index t.schema name with
  | Some i -> i
  | None ->
    raise (Err.Unknown_attribute { collection = t.name; attribute = name })

let objects_per_page ~page_size ~fill ~object_size =
  max 1 (int_of_float (float_of_int page_size *. fill) / object_size)

(* Build a table from rows. Rows are paged in the given order (callers
   shuffle beforehand for random placement) unless [cluster_on] asks for
   clustering, in which case rows are sorted by that attribute first. *)
let create ~name ~schema ?(page_size = 4096) ?(fill = 0.96) ~object_size ?cluster_on
    ?(index_on = []) (rows : tuple list) : t =
  let rows =
    match cluster_on with
    | None -> rows
    | Some attr ->
      let pos =
        match Schema.attr_index schema attr with
        | Some i -> i
        | None -> raise (Err.Unknown_attribute { collection = name; attribute = attr })
      in
      List.sort (fun a b -> Constant.compare a.(pos) b.(pos)) rows
  in
  let per_page = objects_per_page ~page_size ~fill ~object_size in
  let arr = Array.of_list rows in
  let count = Array.length arr in
  let n_pages = (count + per_page - 1) / per_page in
  let pages =
    Array.init (max n_pages 0) (fun p ->
        let base = p * per_page in
        Array.init (min per_page (count - base)) (fun s -> arr.(base + s)))
  in
  let index_of attr =
    let pos =
      match Schema.attr_index schema attr with
      | Some i -> i
      | None -> raise (Err.Unknown_attribute { collection = name; attribute = attr })
    in
    let entries = ref [] in
    Array.iteri
      (fun p page ->
        Array.iteri
          (fun s row ->
            entries := (row.(pos), { Btree.page = p; slot = s }) :: !entries)
          page)
      pages;
    (attr, Btree.build !entries)
  in
  (* The columnar mirror duplicates the data in unboxed form (cheaper than
     the boxed rows it shadows). Built eagerly so concurrent domains never
     race on a lazy cell. [arr] is already in page order — pages were cut
     from it above. *)
  let ncols = List.length schema.Schema.attributes in
  let columnar =
    Array.init ncols (fun c ->
        let rec kind i k =
          if i >= count then k
          else
            match arr.(i).(c), k with
            | Constant.Int _, (`Any | `Int) -> kind (i + 1) `Int
            | Constant.Float _, (`Any | `Float) -> kind (i + 1) `Float
            | _ -> `Boxed
        in
        match kind 0 `Any with
        | `Int ->
          Cints
            (Array.init count (fun i ->
                 match arr.(i).(c) with Constant.Int x -> x | _ -> assert false))
        | `Float ->
          Cfloats
            (Array.init count (fun i ->
                 match arr.(i).(c) with Constant.Float x -> x | _ -> assert false))
        | `Any | `Boxed -> Cboxed (Array.init count (fun i -> arr.(i).(c))))
  in
  { name;
    schema;
    pages;
    object_size;
    page_size;
    fill;
    indexes = List.map index_of index_on;
    clustered_on = cluster_on;
    count;
    columnar }

let page_count t = Array.length t.pages
let count t = t.count
let total_size t = t.count * t.object_size
let columnar t = t.columnar

let fetch t (rid : Btree.rid) : tuple = t.pages.(rid.Btree.page).(rid.Btree.slot)

let index t attr = List.assoc_opt attr t.indexes
let has_index t attr = List.mem_assoc attr t.indexes

let iter_pages t f = Array.iteri f t.pages

let fold_pages t init f =
  let acc = ref init in
  Array.iteri (fun p page -> acc := f !acc p page) t.pages;
  !acc

let fold_rows t init f =
  fold_pages t init (fun acc _ page -> Array.fold_left f acc page)

(* All rows, in storage order. *)
let rows t = List.rev (fold_rows t [] (fun acc row -> row :: acc))

let column t attr =
  let pos = attr_pos t attr in
  List.rev (fold_rows t [] (fun acc row -> row.(pos) :: acc))

(* --- Statistics export (the wrapper's cardinality methods, paper §3.2) --- *)

let extent_stats t : Stats.extent =
  Stats.extent ~count_objects:t.count ~total_size:(total_size t)
    ~object_size:t.object_size

let attribute_stats t attr : Stats.attribute =
  let values = column t attr in
  Stats.attribute_of_values ~indexed:(has_index t attr) values

let all_attribute_stats t =
  List.map
    (fun (a : Schema.attribute) ->
      (a.Schema.attr_name, attribute_stats t a.Schema.attr_name))
    t.schema.Schema.attributes
