(** A secondary index: keys in sorted order, each with the record ids of the
    matching objects. Implemented as a sorted array with binary search —
    behaviourally equivalent to a B-tree for simulation purposes; the probe
    cost (tree descent, {!field-height} levels) is charged by the executor. *)

open Disco_common

type rid = { page : int; slot : int }
(** A record id: page number and slot within the page. *)

type t = {
  keys : Constant.t array;   (** sorted, distinct *)
  rids : rid list array;     (** postings per key *)
  height : int;              (** simulated tree height, for probe cost *)
}

val height_of : int -> int
(** Height of a fanout-128 tree over [n] distinct keys. *)

val build : (Constant.t * rid) list -> t

val key_count : t -> int

val lower_bound : t -> Constant.t -> int
(** Index of the first key [>= k] ([key_count] if none). *)

val upper_bound : t -> Constant.t -> int
(** Index of the first key [> k]. *)

val lookup : t -> Constant.t -> rid list
(** Postings of one key (empty if absent). *)

val range :
  ?lo:Constant.t -> ?lo_strict:bool -> ?hi:Constant.t -> ?hi_strict:bool -> t ->
  rid list
(** All rids whose key is within the bounds, in key order. *)

val search : t -> Cmp.t -> Constant.t -> rid list
(** Rids satisfying [key op k], in key order ([Ne] concatenates the two
    ranges around [k]). *)

val iter_range :
  ?lo:Constant.t -> ?lo_strict:bool -> ?hi:Constant.t -> ?hi_strict:bool -> t ->
  (rid -> unit) -> unit
(** Visit exactly the rids {!range} would return, in the same order,
    without materializing the list. *)

val iter_search : t -> Cmp.t -> Constant.t -> (rid -> unit) -> unit
(** Visit exactly the rids {!search} would return, in the same order. *)
