(** A stored collection: fixed-size objects packed into pages, optionally
    clustered on one attribute, with secondary B-tree indexes. This is the
    simulated stand-in for the paper's data sources; object placement across
    pages is what makes index-scan costs follow Yao's formula rather than the
    linear calibrated model. *)

open Disco_common
open Disco_catalog

type tuple = Constant.t array

(** One whole-table column in storage (page) order: unboxed when every cell
    is an Int (resp. Float), boxed otherwise. Cell [i] equals cell [i] of
    the [i]-th stored row, so a scan reading from the mirror sees exactly
    the rows it would read page by page. *)
type col =
  | Cints of int array
  | Cfloats of float array
  | Cboxed of Constant.t array

type t = {
  name : string;
  schema : Schema.collection;
  pages : tuple array array;  (** page -> slot -> object *)
  object_size : int;          (** bytes per object *)
  page_size : int;
  fill : float;
  indexes : (string * Btree.t) list;
  clustered_on : string option;
  count : int;
  columnar : col array;       (** per attribute; built once at creation *)
}

val attr_pos : t -> string -> int
(** Position of an attribute in the tuple layout.
    @raise Disco_common.Err.Unknown_attribute when absent. *)

val objects_per_page : page_size:int -> fill:float -> object_size:int -> int
(** With the paper's §5 parameters (4096-byte pages, 96 % fill, 56-byte
    objects) this is 70, giving 1000 pages for 70000 objects. *)

val create :
  name:string ->
  schema:Schema.collection ->
  ?page_size:int ->
  ?fill:float ->
  object_size:int ->
  ?cluster_on:string ->
  ?index_on:string list ->
  tuple list ->
  t
(** Build a table. Rows are paged in the given order — callers shuffle
    beforehand for random (unclustered) placement — unless [cluster_on] asks
    for clustering, in which case rows are sorted by that attribute first. *)

val page_count : t -> int
val count : t -> int
val total_size : t -> int

val columnar : t -> col array
(** The columnar mirror of the stored rows, one {!col} per attribute. *)

val fetch : t -> Btree.rid -> tuple

val index : t -> string -> Btree.t option
val has_index : t -> string -> bool

val iter_pages : t -> (int -> tuple array -> unit) -> unit

val fold_pages : t -> 'a -> ('a -> int -> tuple array -> 'a) -> 'a
(** Fold over pages in storage order; the callback receives the page
    number, as {!iter_pages} does. *)

val fold_rows : t -> 'a -> ('a -> tuple -> 'a) -> 'a
(** Fold over all rows in storage order without materializing a list. *)

val rows : t -> tuple list
(** All rows, in storage order. *)

val column : t -> string -> Constant.t list

(** {1 Statistics export — the wrapper's cardinality methods (paper §3.2)} *)

val extent_stats : t -> Stats.extent
val attribute_stats : t -> string -> Stats.attribute
val all_attribute_stats : t -> (string * Stats.attribute) list
