(* Statistics exported by wrappers during registration (paper §3.2).

   [extent] corresponds to the [cardinality extent(...)] method: number of
   objects, total size in bytes, average object size. [attribute] corresponds
   to [cardinality attribute(...)]: index presence, distinct count, min and
   max values. *)

open Disco_common

type extent = {
  count_objects : int;  (* CountObject *)
  total_size : int;     (* TotalSize, bytes *)
  object_size : int;    (* ObjectSize, average bytes per object *)
}

type attribute = {
  indexed : bool;              (* Indexed *)
  count_distinct : int;        (* CountDistinct *)
  min : Constant.t;            (* Min *)
  max : Constant.t;            (* Max *)
  histogram : Histogram.t option;  (* value distribution, when sampled *)
}

let extent ~count_objects ~total_size ~object_size =
  { count_objects; total_size; object_size }

let attribute ?(indexed = false) ?histogram ~count_distinct ~min ~max () =
  { indexed; count_distinct; min; max; histogram }

(* Defaults used when a wrapper exports nothing (paper §6: "In case they are
   not provided, standard values are given, as usual"). *)
let default_extent = { count_objects = 1000; total_size = 100_000; object_size = 100 }

let default_attribute =
  { indexed = false;
    count_distinct = 10;
    min = Constant.Null;
    max = Constant.Null;
    histogram = None }

let pp_extent ppf e =
  Fmt.pf ppf "{objects=%d; size=%dB; objsize=%dB}" e.count_objects e.total_size
    e.object_size

let pp_attribute ppf a =
  Fmt.pf ppf "{indexed=%b; distinct=%d; min=%a; max=%a%a}" a.indexed a.count_distinct
    Constant.pp a.min Constant.pp a.max
    (Fmt.option (fun ppf h -> Fmt.pf ppf "; %a" Histogram.pp h))
    a.histogram

(* Compute attribute statistics from actual column values; wrappers use this
   to implement their cardinality methods over generated data. *)
let attribute_of_values ?(indexed = false) (values : Constant.t list) =
  match values with
  | [] -> { default_attribute with indexed }
  | v0 :: rest ->
    let module S = Set.Make (struct
      type t = Constant.t
      let compare = Constant.compare
    end) in
    let distinct, min, max =
      List.fold_left
        (fun (set, mn, mx) v ->
          ( S.add v set,
            (if Constant.compare v mn < 0 then v else mn),
            if Constant.compare v mx > 0 then v else mx ))
        (S.singleton v0, v0, v0) rest
    in
    { indexed; count_distinct = S.cardinal distinct; min; max; histogram = None }
