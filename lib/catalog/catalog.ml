(* The mediator catalog (paper §2.1): stores, per registered source, the
   schemas and statistics uploaded by its wrapper. Cost rules are stored
   separately in the cost-model registry (lib/core). *)

open Disco_common

type entry = {
  schema : Schema.collection;
  extent : Stats.extent;
  attributes : (string * Stats.attribute) list;
  parent : string option;  (* super-interface within the same source *)
}

type source = {
  source_name : string;
  mutable collections : (string * entry) list;
  (* operators the wrapper can execute (paper §2.1); None = all *)
  mutable capabilities : string list option;
}

type t = { mutable sources : (string * source) list }

let create () = { sources = [] }

let register_source t name =
  match List.assoc_opt name t.sources with
  | Some s -> s
  | None ->
    let s = { source_name = name; collections = []; capabilities = None } in
    t.sources <- t.sources @ [ (name, s) ];
    s

let source_names t = List.map fst t.sources

let find_source t name =
  match List.assoc_opt name t.sources with
  | Some s -> s
  | None -> raise (Err.Unknown_source name)

(* Register or replace a collection of [source]; re-registration supports the
   paper's administrative interface for refreshing out-of-date statistics. *)
let register_collection ?parent t ~source ~schema ~extent ~attributes =
  let s = register_source t source in
  let entry = { schema; extent; attributes; parent } in
  s.collections <-
    (schema.Schema.coll_name, entry)
    :: List.remove_assoc schema.Schema.coll_name s.collections

let collections t ~source = List.map fst (find_source t source).collections

(* Wrapper capabilities (paper §2.1): which operators a source can execute.
   [None] (the default) means all. *)
let set_capabilities t ~source ops =
  (register_source t source).capabilities <- Some ops

let capable t ~source op =
  match List.assoc_opt source t.sources with
  | None | Some { capabilities = None; _ } -> true
  | Some { capabilities = Some ops; _ } -> List.mem op ops

(* Interface inheritance: [is_instance t ~source child ancestor] holds when
   [child] equals [ancestor] or derives from it through parent links. *)
let rec is_instance t ~source child ancestor =
  String.equal child ancestor
  ||
  match List.assoc_opt source t.sources with
  | None -> false
  | Some s ->
    (match List.assoc_opt child s.collections with
     | Some { parent = Some p; _ } -> is_instance t ~source p ancestor
     | _ -> false)

(* Depth of a collection in its inheritance chain (0 for roots); used to make
   sub-interface rules more specific than their parents'. *)
let rec inheritance_depth t ~source name =
  match List.assoc_opt source t.sources with
  | None -> 0
  | Some s ->
    (match List.assoc_opt name s.collections with
     | Some { parent = Some p; _ } -> 1 + inheritance_depth t ~source p
     | _ -> 0)

let find_collection t ~source name =
  match List.assoc_opt name (find_source t source).collections with
  | Some e -> e
  | None -> raise (Err.Unknown_collection (source ^ "." ^ name))

let mem_collection t ~source name =
  match List.assoc_opt source t.sources with
  | None -> false
  | Some s -> List.mem_assoc name s.collections

(* Locate the unique source exporting [name]; used to resolve unqualified
   collection names in queries. *)
let locate_collection t name =
  let hits =
    List.filter_map
      (fun (src, s) -> if List.mem_assoc name s.collections then Some src else None)
      t.sources
  in
  match hits with
  | [ src ] -> Some src
  | [] -> None
  | src :: _ -> Some src (* ambiguous: first registered wins *)

let extent_stats t ~source name = (find_collection t ~source name).extent

let attribute_stats t ~source ~collection attr =
  let e = find_collection t ~source collection in
  match List.assoc_opt attr e.attributes with
  | Some st -> st
  | None ->
    if Schema.has_attribute e.schema attr then Stats.default_attribute
    else raise (Err.Unknown_attribute { collection; attribute = attr })

(* Install (or replace) a histogram on one attribute, leaving the wrapper's
   exported statistics untouched. Used by the mediator's statistics harvest
   at registration and by feedback-driven recalibration. *)
let set_histogram t ~source ~collection ~attr hist =
  let e = find_collection t ~source collection in
  let st =
    match List.assoc_opt attr e.attributes with
    | Some st -> st
    | None ->
      if Schema.has_attribute e.schema attr then Stats.default_attribute
      else raise (Err.Unknown_attribute { collection; attribute = attr })
  in
  let st = { st with Stats.histogram = hist } in
  let e = { e with attributes = (attr, st) :: List.remove_assoc attr e.attributes } in
  let s = find_source t source in
  s.collections <- (collection, e) :: List.remove_assoc collection s.collections

let pp ppf t =
  List.iter
    (fun (src, s) ->
      Fmt.pf ppf "source %s:@." src;
      List.iter
        (fun (cname, e) ->
          Fmt.pf ppf "  %s %a@." cname Stats.pp_extent e.extent;
          List.iter
            (fun (a, st) -> Fmt.pf ppf "    .%s %a@." a Stats.pp_attribute st)
            e.attributes)
        s.collections)
    t.sources
