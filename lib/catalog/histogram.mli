(** Equi-depth histograms over attribute values.

    Built at registration time from wrapper-exported samples (or full table
    scans) and refreshed by the §4.3 feedback loop, histograms replace the
    uniform-distribution assumption behind range and equality selectivities.
    Values map to a float {e key}: numerics through
    {!Disco_common.Constant.to_float_opt}, strings through their first two
    bytes — the same lexical interpolation {!Disco_common.Constant.fraction}
    uses. Buckets hold roughly equal counts; lookups interpolate linearly
    within a bucket.

    The representation is transparent so tests can assert structural
    invariants (ascending non-overlapping buckets, counts summing to the
    total). *)

open Disco_common

type kind = Numeric | Textual

type bucket = {
  lo : float;        (** smallest key in the bucket *)
  hi : float;        (** largest key in the bucket *)
  count : float;     (** objects falling in [[lo, hi]] *)
  distinct : float;  (** distinct keys in [[lo, hi]] *)
}

type t = private {
  kind : kind;
  buckets : bucket array;  (** non-empty; ascending, non-overlapping *)
  total : float;           (** sum of bucket counts *)
}

val kind : t -> kind
val buckets : t -> bucket list
val total : t -> float

val key : t -> Constant.t -> float option
(** Key of a constant under this histogram's kind; [None] when the constant
    is not comparable in that domain. *)

val of_values :
  ?buckets:int -> ?sample:int -> ?seed:int -> Constant.t list -> t option
(** Build an equi-depth histogram from raw column values. The kind is decided
    by the first non-null value; values of the other kind are dropped. [None]
    on an empty (or all-null) column. Columns larger than [sample] (default
    1024) are subsampled deterministically with {!Disco_common.Rng} under
    [seed] (default 0), so builds are cheap and reproducible. [buckets]
    bounds the bucket count (default 32). *)

(** Comparator for {!sel_cmp}. A local variant so the catalog layer stays
    independent of the algebra library; {!Disco_core.Selest} maps predicate
    comparators onto it. *)
type cmp = Ceq | Cne | Clt | Cle | Cgt | Cge

val sel_cmp : t -> cmp -> Constant.t -> float option
(** [sel_cmp t cmp c] is the fraction of objects satisfying [attr cmp c],
    in [[0, 1]]. Exact at the extremes: [sel_cmp t Cle max = 1.] and
    [sel_cmp t Clt min = 0.]. [None] when [c] does not map into the
    histogram's key domain (callers fall back to uniform interpolation). *)

val narrow_le : t -> Constant.t -> t option
(** Restrict to objects with key at most the constant's key; [None] when
    nothing survives, [Some t] unchanged when the constant has no key. Used
    by [Derive] to propagate range predicates. *)

val narrow_ge : t -> Constant.t -> t option

val merge : t -> t -> t
(** Merge two histograms of the same kind: totals add exactly, the bucket
    count stays bounded by the larger input's. Used when refreshing
    statistics incrementally. Raises [Invalid_argument] on kind mismatch. *)

val join_eq : t -> t -> float option
(** Selectivity of an equi-join between two attributes from their histograms:
    the probability that a random pair of objects agree on a key, summed over
    overlapping buckets. [None] on kind mismatch. *)

val pp : Format.formatter -> t -> unit
