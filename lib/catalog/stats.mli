(** Statistics exported by wrappers during the registration phase (paper
    §3.2): the results of the [cardinality extent(...)] and [cardinality
    attribute(...)] methods of an interface. *)

open Disco_common

type extent = {
  count_objects : int;  (** CountObject: number of objects in the extent *)
  total_size : int;     (** TotalSize: extent size in bytes *)
  object_size : int;    (** ObjectSize: average object size in bytes *)
}

type attribute = {
  indexed : bool;          (** Indexed: an index exists on the attribute *)
  count_distinct : int;    (** CountDistinct: distinct values in the extent *)
  min : Constant.t;        (** Min: smallest value *)
  max : Constant.t;        (** Max: largest value *)
  histogram : Histogram.t option;
      (** Value distribution, when the wrapper exported samples or the
          feedback loop rebuilt one; [None] keeps the uniform assumption. *)
}

val extent : count_objects:int -> total_size:int -> object_size:int -> extent

val attribute :
  ?indexed:bool -> ?histogram:Histogram.t -> count_distinct:int ->
  min:Constant.t -> max:Constant.t -> unit -> attribute

val default_extent : extent
(** Standard values used when a wrapper exports nothing (paper §6). *)

val default_attribute : attribute

val pp_extent : Format.formatter -> extent -> unit
val pp_attribute : Format.formatter -> attribute -> unit

val attribute_of_values : ?indexed:bool -> Constant.t list -> attribute
(** Compute attribute statistics from actual column values; wrappers use this
    to implement their cardinality methods over generated data. Empty input
    yields {!default_attribute}. *)
