(* Equi-depth histograms over attribute values (ROADMAP: feedback-driven
   statistics; paper §4.3 motivates refreshing them from observed behaviour).

   A histogram summarizes one attribute of one extent as an array of buckets
   holding roughly equal numbers of objects. Values are mapped to a float
   *key*: numerics through {!Constant.to_float_opt}, strings through their
   first two bytes — the same lexical interpolation {!Constant.fraction}
   uses, so histogram and uniform fallback agree on what "between min and
   max" means for strings. Within a bucket the distribution is assumed
   uniform; selectivity lookups interpolate linearly. *)

open Disco_common

type kind = Numeric | Textual

type bucket = {
  lo : float;        (* smallest key in the bucket *)
  hi : float;        (* largest key in the bucket *)
  count : float;     (* objects falling in [lo, hi] *)
  distinct : float;  (* distinct keys in [lo, hi] *)
}

type t = {
  kind : kind;
  buckets : bucket array;  (* non-empty; ascending, non-overlapping *)
  total : float;           (* sum of bucket counts *)
}

let kind t = t.kind
let buckets t = Array.to_list t.buckets
let total t = t.total

let str_key s =
  let byte i = if String.length s > i then Char.code s.[i] else 0 in
  float_of_int ((byte 0 * 256) + byte 1)

(* Key of a constant under a histogram's kind; [None] when the constant is
   not comparable in that domain (lookups then fall back to uniform). *)
let key t (c : Constant.t) =
  match (t.kind, c) with
  | Textual, Constant.String s -> Some (str_key s)
  | Textual, _ -> None
  | Numeric, _ -> Constant.to_float_opt c

(* --- Building ------------------------------------------------------------- *)

let default_buckets = 32
let default_sample = 1024

(* Cut a sorted key array into [n] equi-depth runs. Cuts never split a run of
   duplicate keys, so each distinct key lives in exactly one bucket; with
   all-distinct input the bucket counts differ by at most one. *)
let cut_sorted keys n =
  let len = Array.length keys in
  let n = max 1 (min n len) in
  let out = ref [] in
  let start = ref 0 in
  let made = ref 0 in
  while !start < len do
    let remaining_buckets = n - !made in
    let remaining = len - !start in
    let depth =
      if remaining_buckets <= 1 then remaining
      else (remaining + remaining_buckets - 1) / remaining_buckets
    in
    (* Provisional end, then extend over duplicates of the boundary key. *)
    let stop = ref (min len (!start + depth)) in
    while !stop < len && keys.(!stop) = keys.(!stop - 1) do
      incr stop
    done;
    let lo = keys.(!start) and hi = keys.(!stop - 1) in
    let count = float_of_int (!stop - !start) in
    let distinct = ref 1 in
    for i = !start + 1 to !stop - 1 do
      if keys.(i) <> keys.(i - 1) then incr distinct
    done;
    out := { lo; hi; count; distinct = float_of_int !distinct } :: !out;
    start := !stop;
    incr made
  done;
  Array.of_list (List.rev !out)

let of_keys ~kind ?(buckets = default_buckets) keys =
  match keys with
  | [] -> None
  | _ ->
    let arr = Array.of_list keys in
    Array.sort Float.compare arr;
    let bs = cut_sorted arr buckets in
    Some { kind; buckets = bs; total = float_of_int (Array.length arr) }

(* Build from raw column values. The kind is decided by the first non-null
   value; values of the other kind are dropped. Large columns are subsampled
   deterministically with {!Rng} so registration-time builds stay cheap and
   reproducible. *)
let of_values ?(buckets = default_buckets) ?(sample = default_sample) ?(seed = 0)
    (values : Constant.t list) =
  let kind =
    List.find_map
      (function
        | Constant.String _ -> Some Textual
        | Constant.Null -> None
        | _ -> Some Numeric)
      values
  in
  match kind with
  | None -> None
  | Some kind ->
    let keys =
      List.filter_map
        (fun c ->
          match (kind, c) with
          | Textual, Constant.String s -> Some (str_key s)
          | Textual, _ -> None
          | Numeric, _ -> Constant.to_float_opt c)
        values
    in
    let keys =
      let n = List.length keys in
      if n <= sample then keys
      else begin
        let rng = Rng.create ~seed in
        let arr = Array.of_list keys in
        Rng.shuffle rng arr;
        Array.to_list (Array.sub arr 0 sample)
      end
    in
    of_keys ~kind ~buckets keys

(* --- Lookups --------------------------------------------------------------- *)

let clamp01 x = if x >= 1. then 1. else if x >= 0. then x else 0.

(* Fraction of objects with key strictly below [x]. Within a bucket of [d]
   distinct keys, the expected number of keys strictly below [x] grows from 1
   just above [lo] (the key at [lo] itself) to [d - 1] at [hi], so the
   object fraction is [(1 + (x-lo)/(hi-lo) * (d-2)) / d]. This keeps the CDF
   monotone across bucket boundaries: [lt hi + eq hi] telescopes to exactly
   the cumulative count through the bucket, which equals [lt x] for any [x]
   in the gap before the next bucket. *)
let lt t x =
  let b0 = t.buckets.(0) in
  if x <= b0.lo then 0.
  else begin
    let acc = ref 0. in
    let res = ref None in
    (try
       Array.iter
         (fun b ->
           if x > b.hi then acc := !acc +. b.count
           else begin
             (if x > b.lo && b.hi > b.lo then begin
                let d = Float.max 2. b.distinct in
                let frac =
                  (1. +. ((x -. b.lo) /. (b.hi -. b.lo) *. (d -. 2.))) /. d
                in
                acc := !acc +. (b.count *. frac)
              end);
             res := Some !acc;
             raise Exit
           end)
         t.buckets
     with Exit -> ());
    let below = match !res with Some v -> v | None -> !acc in
    clamp01 (below /. t.total)
  end

(* Fraction of objects with key equal to [x]: one distinct value's share of
   its bucket, zero outside all buckets. *)
let eq t x =
  let found = ref 0. in
  Array.iter
    (fun b ->
      if x >= b.lo && x <= b.hi && b.distinct > 0. then
        found := b.count /. b.distinct /. t.total)
    t.buckets;
  clamp01 !found

let le t x =
  let last = t.buckets.(Array.length t.buckets - 1) in
  if x >= last.hi then 1. else clamp01 (lt t x +. eq t x)

let ge t x = clamp01 (1. -. lt t x)
let gt t x = clamp01 (1. -. le t x)
let ne t x = clamp01 (1. -. eq t x)

(* Selectivity of [attr cmp c] against this histogram; [None] when the
   constant does not map into the histogram's key domain. The [cmp] argument
   is a plain variant so the catalog layer stays independent of the algebra
   library — {!Selest} maps predicate comparators onto it. *)
type cmp = Ceq | Cne | Clt | Cle | Cgt | Cge

let sel_cmp t cmp c =
  match key t c with
  | None -> None
  | Some x ->
    Some
      (match cmp with
      | Ceq -> eq t x
      | Cne -> ne t x
      | Clt -> lt t x
      | Cle -> le t x
      | Cgt -> gt t x
      | Cge -> ge t x)

(* --- Narrowing (for [Derive] range propagation) ---------------------------- *)

(* Portion of bucket [b] falling inside [l, h]; [None] if disjoint. The
   overlap fraction counts inclusive key positions: with [d] distinct keys
   spread over [b.lo, b.hi] the average spacing is [(hi-lo)/(d-1)], and a
   sub-range of width [w] holds about [(w + spacing) / (range + spacing)] of
   them — the continuous [w / range] systematically drops the boundary key
   (a large error when buckets hold only a few distinct keys, e.g. integer
   domains). *)
let clip_bucket b ~l ~h =
  if b.hi < l || b.lo > h then None
  else begin
    let lo = Float.max b.lo l and hi = Float.min b.hi h in
    let s =
      if b.distinct > 1. then (b.hi -. b.lo) /. (b.distinct -. 1.) else 0.
    in
    let w =
      if b.hi <= b.lo then 1.
      else Float.min 1. ((hi -. lo +. s) /. (b.hi -. b.lo +. s))
    in
    let count = b.count *. w and distinct = Float.max 1. (b.distinct *. w) in
    if count <= 0. then None else Some { lo; hi; count; distinct }
  end

let narrow_range t ~l ~h =
  let bs =
    Array.to_list t.buckets |> List.filter_map (fun b -> clip_bucket b ~l ~h)
  in
  match bs with
  | [] -> None
  | bs ->
    let buckets = Array.of_list bs in
    let total = Array.fold_left (fun a b -> a +. b.count) 0. buckets in
    Some { t with buckets; total }

let narrow_le t c =
  match key t c with None -> Some t | Some x -> narrow_range t ~l:neg_infinity ~h:x

let narrow_ge t c =
  match key t c with None -> Some t | Some x -> narrow_range t ~l:x ~h:infinity

(* --- Merge ----------------------------------------------------------------- *)

(* Merge two histograms of the same kind: overlay both onto the union grid of
   their bucket boundaries, sum the overlapping mass, then re-cut to the
   larger of the two bucket counts. Totals add exactly; the equi-depth shape
   is restored by the re-cut. *)
let merge a b =
  if a.kind <> b.kind then invalid_arg "Histogram.merge: kind mismatch";
  let boundaries =
    Array.to_list a.buckets @ Array.to_list b.buckets
    |> List.concat_map (fun bk -> [ bk.lo; bk.hi ])
    |> List.sort_uniq Float.compare
  in
  let cells =
    (* Consecutive boundary pairs, inclusive cells; degenerate single point
       handled by the [lo = hi] case. *)
    let rec pairs = function
      | x :: (y :: _ as rest) -> (x, y) :: pairs rest
      | [ x ] -> [ (x, x) ]
      | [] -> []
    in
    match boundaries with [ x ] -> [ (x, x) ] | l -> pairs l
  in
  let mass_in hist ~l ~h =
    Array.fold_left
      (fun (c, d) bk ->
        match clip_bucket bk ~l ~h with
        | None -> (c, d)
        | Some b -> (c +. b.count, d +. b.distinct))
      (0., 0.) hist.buckets
  in
  let overlay =
    List.filter_map
      (fun (l, h) ->
        (* Half-open cells except the last, to avoid double counting the
           shared boundary: shrink the top infinitesimally via weighting is
           overkill — instead count each histogram's mass proportionally and
           accept boundary mass landing in both cells, then renormalize. *)
        let ca, da = mass_in a ~l ~h and cb, db = mass_in b ~l ~h in
        let count = ca +. cb and distinct = Float.max 1. (Float.max da db) in
        if count <= 0. then None else Some { lo = l; hi = h; count; distinct })
      cells
  in
  match overlay with
  | [] -> a
  | overlay ->
    (* Renormalize so the merged total is exactly [a.total + b.total] even
       when boundary overlap double-counted some mass. *)
    let raw = List.fold_left (fun acc b -> acc +. b.count) 0. overlay in
    let target = a.total +. b.total in
    let scale = if raw > 0. then target /. raw else 1. in
    let overlay = List.map (fun b -> { b with count = b.count *. scale }) overlay in
    (* Re-cut to equi-depth: expand cells into a sorted key multiset is too
       costly; instead coalesce adjacent cells until the bucket count is at
       most [max |a| |b|], always merging the lightest adjacent pair. *)
    let limit = max (Array.length a.buckets) (Array.length b.buckets) in
    let join x y =
      { lo = x.lo;
        hi = y.hi;
        count = x.count +. y.count;
        distinct = x.distinct +. y.distinct }
    in
    let rec coalesce bs =
      if List.length bs <= limit then bs
      else begin
        (* Find index of the adjacent pair with the smallest combined count. *)
        let arr = Array.of_list bs in
        let best = ref 0 and best_w = ref infinity in
        for i = 0 to Array.length arr - 2 do
          let w = arr.(i).count +. arr.(i + 1).count in
          if w < !best_w then begin
            best := i;
            best_w := w
          end
        done;
        let merged =
          List.concat
            (List.mapi
               (fun i b ->
                 if i = !best then [ join b arr.(i + 1) ]
                 else if i = !best + 1 then []
                 else [ b ])
               bs)
        in
        coalesce merged
      end
    in
    { kind = a.kind; buckets = Array.of_list (coalesce overlay); total = target }

(* --- Equi-join overlap ------------------------------------------------------ *)

(* Selectivity of [a.x = b.y] from the two attribute histograms: for every
   pair of overlapping buckets, the probability that a random pair of objects
   drawn from the two buckets agree on a key, assuming the matching keys are
   the shared distinct values of the overlap. Falls back to [None] on kind
   mismatch. *)
let join_eq a b =
  if a.kind <> b.kind then None
  else begin
    let sel = ref 0. in
    Array.iter
      (fun ba ->
        Array.iter
          (fun bb ->
            let l = Float.max ba.lo bb.lo and h = Float.min ba.hi bb.hi in
            if l <= h then begin
              match (clip_bucket ba ~l ~h, clip_bucket bb ~l ~h) with
              | Some ca, Some cb ->
                let d = Float.max 1. (Float.max ca.distinct cb.distinct) in
                sel :=
                  !sel
                  +. (ca.count /. a.total) *. (cb.count /. b.total) /. d
              | _ -> ()
            end)
          b.buckets)
      a.buckets;
    Some (clamp01 !sel)
  end

(* --- Pretty-printing -------------------------------------------------------- *)

let pp ppf t =
  let k = match t.kind with Numeric -> "num" | Textual -> "str" in
  Fmt.pf ppf "hist(%s, %d buckets, %.0f objs)" k (Array.length t.buckets) t.total
