(** The mediator catalog (paper §2.1): per registered source, the schemas and
    statistics uploaded by its wrapper. Cost rules are stored separately in
    the cost-model registry (lib/core). *)

type entry = {
  schema : Schema.collection;
  extent : Stats.extent;
  attributes : (string * Stats.attribute) list;
  parent : string option;  (** super-interface within the same source *)
}

type source = {
  source_name : string;
  mutable collections : (string * entry) list;
  mutable capabilities : string list option;
      (** operators the wrapper can execute (paper §2.1); [None] = all *)
}

type t

val create : unit -> t

val register_source : t -> string -> source
(** Idempotent: returns the existing source entry if already registered. *)

val source_names : t -> string list

val find_source : t -> string -> source
(** @raise Disco_common.Err.Unknown_source when absent. *)

val register_collection :
  ?parent:string ->
  t ->
  source:string ->
  schema:Schema.collection ->
  extent:Stats.extent ->
  attributes:(string * Stats.attribute) list ->
  unit
(** Register or replace a collection. Re-registration supports the paper's
    administrative interface for refreshing out-of-date statistics. *)

val collections : t -> source:string -> string list

val set_capabilities : t -> source:string -> string list -> unit
(** Restrict a source to the given operator names. *)

val capable : t -> source:string -> string -> bool
(** Whether the source can execute the operator; [true] when no capabilities
    were declared (the paper's simplifying assumption). *)

val is_instance : t -> source:string -> string -> string -> bool
(** [is_instance t ~source child ancestor]: [child] equals [ancestor] or
    derives from it through interface-inheritance links. *)

val inheritance_depth : t -> source:string -> string -> int
(** Depth in the inheritance chain (0 for roots); sub-interface rules beat
    their parents' during matching. *)

val find_collection : t -> source:string -> string -> entry
(** @raise Disco_common.Err.Unknown_collection when absent. *)

val mem_collection : t -> source:string -> string -> bool

val locate_collection : t -> string -> string option
(** The source exporting a collection name, used to resolve unqualified names
    in queries; first registered wins when several sources export it. *)

val extent_stats : t -> source:string -> string -> Stats.extent

val attribute_stats : t -> source:string -> collection:string -> string -> Stats.attribute
(** Statistics of one attribute; defaults when the attribute exists in the
    schema but exported no statistics.
    @raise Disco_common.Err.Unknown_attribute when not in the schema. *)

val set_histogram :
  t -> source:string -> collection:string -> attr:string -> Histogram.t option -> unit
(** Install (or clear, with [None]) a histogram on one attribute without
    touching the wrapper's exported statistics. Used by the mediator's
    statistics harvest at registration and by feedback-driven recalibration.
    @raise Disco_common.Err.Unknown_attribute when not in the schema. *)

val pp : Format.formatter -> t -> unit
