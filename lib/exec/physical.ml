(* Physical plans and access-path selection for one execution engine.

   A wrapper translates the logical subplan it receives into a physical plan
   over its stored tables: selections over base scans choose between a full
   scan and an index scan (using the engine's true costs — the wrapper knows
   its own engine, which is precisely why its exported cost rules beat the
   mediator's generic model), and joins choose index-nested-loop when the
   inner input is a base scan with an index on the join attribute. *)

open Disco_common
open Disco_algebra
open Disco_storage

type access =
  | Full_scan
  | Index_scan of { attr : string; op : Cmp.t; value : Constant.t }

type t =
  | Pscan of { table : Table.t; binding : string; access : access; residual : Pred.t }
  | Pfilter of t * Pred.t
  | Pproject of t * string list
  | Psort of t * (string * Plan.order) list
  | Pnested_join of t * t * Pred.t
  | Pindex_join of {
      outer : t;
      table : Table.t;           (* inner base table *)
      binding : string;
      outer_attr : string;       (* qualified attr of the outer tuple *)
      inner_attr : string;       (* unqualified inner attribute (indexed) *)
      residual : Pred.t;
    }
  | Punion of t * t
  | Pdedup of t
  | Paggregate of t * Plan.aggregate
  (* Already-computed input (a wrapper subresult at the mediator), with the
     simulated times spent producing it. [count] is [List.length rows],
     carried so pretty-printing never walks materialized data. *)
  | Pmaterialized of { rows : Tuple.t list; count : int; first : float; total : float }

let rec pp ppf = function
  | Pscan { table; binding; access; residual } ->
    let acc ppf = function
      | Full_scan -> Fmt.string ppf "seq"
      | Index_scan { attr; op; value } ->
        Fmt.pf ppf "index[%s %a %a]" attr Cmp.pp op Constant.pp value
    in
    Fmt.pf ppf "scan<%a>(%s as %s, %a)" acc access table.Table.name binding Pred.pp
      residual
  | Pfilter (c, p) -> Fmt.pf ppf "filter(%a, %a)" pp c Pred.pp p
  | Pproject (c, attrs) -> Fmt.pf ppf "project(%a, [%s])" pp c (String.concat "," attrs)
  | Psort (c, keys) ->
    Fmt.pf ppf "sort(%a, [%s])" pp c (String.concat "," (List.map fst keys))
  | Pnested_join (l, r, p) -> Fmt.pf ppf "nljoin(%a, %a, %a)" pp l pp r Pred.pp p
  | Pindex_join { outer; table; outer_attr; inner_attr; _ } ->
    Fmt.pf ppf "idxjoin(%a, %s on %s=%s)" pp outer table.Table.name outer_attr
      inner_attr
  | Punion (l, r) -> Fmt.pf ppf "union(%a, %a)" pp l pp r
  | Pdedup c -> Fmt.pf ppf "dedup(%a)" pp c
  | Paggregate (c, _) -> Fmt.pf ppf "aggregate(%a)" pp c
  | Pmaterialized { count; _ } -> Fmt.pf ppf "materialized[%d rows]" count

(* Strip the binding qualifier when the attribute belongs to [binding]. *)
let local_attr ~binding qattr =
  match Plan.split_attr qattr with
  | Some (b, a) when String.equal b binding -> Some a
  | Some _ -> None
  | None -> Some qattr

(* --- Access-path selection ------------------------------------------------ *)

(* Exact number of matching objects, obtained from the index itself. *)
let index_match_count (idx : Btree.t) op v = List.length (Btree.search idx op v)

(* Estimated cost of scanning [table] through an index for [k] matches. *)
let index_scan_cost (engine : Costs.engine) table ~clustered k =
  let pages = float_of_int (Table.page_count table) in
  let n = float_of_int (Table.count table) in
  let per_page = n /. Float.max pages 1. in
  let touched =
    if clustered then ceil (float_of_int k /. Float.max per_page 1.)
    else
      Disco_costlang.Builtins.yao_exact ~objects:n ~pages ~selected:(float_of_int k)
      *. pages
  in
  engine.Costs.probe_ms +. (touched *. engine.Costs.io_ms)
  +. (float_of_int k *. engine.Costs.output_ms)

let full_scan_cost (engine : Costs.engine) table ~matches =
  (float_of_int (Table.page_count table) *. engine.Costs.io_ms)
  +. (float_of_int (Table.count table) *. engine.Costs.eval_ms)
  +. (float_of_int matches *. engine.Costs.output_ms)

(* Choose the cheapest indexed conjunct, if any beats the full scan. Returns
   the chosen access and the residual predicate. *)
let choose_access engine table ~binding (pred : Pred.t) : access * Pred.t =
  let conjuncts = Pred.conjuncts pred in
  let candidates =
    List.filter_map
      (fun c ->
        match c with
        | Pred.Cmp (qattr, op, v) ->
          (match local_attr ~binding qattr with
           | Some attr ->
             (match Table.index table attr with
              | Some idx ->
                let k = index_match_count idx op v in
                let clustered = table.Table.clustered_on = Some attr in
                let cost = index_scan_cost engine table ~clustered k in
                Some (c, attr, op, v, k, cost)
              | None -> None)
           | None -> None)
        | _ -> None)
      conjuncts
  in
  match candidates with
  | [] -> (Full_scan, pred)
  | _ ->
    let best =
      List.fold_left
        (fun acc c ->
          let _, _, _, _, _, cost = c in
          match acc with
          | Some (_, _, _, _, _, best_cost) when best_cost <= cost -> acc
          | _ -> Some c)
        None candidates
    in
    (match best with
     | Some (chosen, attr, op, v, k, cost)
       when cost < full_scan_cost engine table ~matches:k ->
       let residual = Pred.conj (List.filter (fun c -> not (Pred.equal c chosen)) conjuncts) in
       (Index_scan { attr; op; value = v }, residual)
     | _ -> (Full_scan, pred))

(* --- Logical-to-physical translation -------------------------------------- *)

(* [find_table] resolves a collection name of this source. *)
let rec of_logical ~engine ~find_table (plan : Plan.t) : t =
  let recur = of_logical ~engine ~find_table in
  match plan with
  | Plan.Scan r ->
    Pscan
      { table = find_table r.Plan.collection;
        binding = r.Plan.binding;
        access = Full_scan;
        residual = Pred.True }
  | Plan.Select (Plan.Scan r, pred) ->
    let table = find_table r.Plan.collection in
    let access, residual = choose_access engine table ~binding:r.Plan.binding pred in
    Pscan { table; binding = r.Plan.binding; access; residual }
  | Plan.Select (child, pred) -> Pfilter (recur child, pred)
  | Plan.Project (child, attrs) -> Pproject (recur child, attrs)
  | Plan.Sort (child, keys) -> Psort (recur child, keys)
  | Plan.Join (left, inner, Pred.Attr_cmp (a, Pred.Eq, b))
    when (match inner with
          | Plan.Scan _ | Plan.Project (Plan.Scan _, _) -> true
          | _ -> false) ->
    (* An inner base scan — possibly under a (width-only) projection pushed
       down by the optimizer — can be probed through its index. The
       projection is dropped: it only trims attribute width, and the final
       projection above still applies. *)
    let r =
      match inner with
      | Plan.Scan r | Plan.Project (Plan.Scan r, _) -> r
      | _ -> assert false
    in
    let table = find_table r.Plan.collection in
    let inner_of q = local_attr ~binding:r.Plan.binding q in
    let choice =
      match inner_of b, inner_of a with
      | Some inner, _ when Table.has_index table inner -> Some (a, inner)
      | _, Some inner when Table.has_index table inner -> Some (b, inner)
      | _ -> None
    in
    (match choice with
     | Some (outer_attr, inner_attr) ->
       Pindex_join
         { outer = recur left;
           table;
           binding = r.Plan.binding;
           outer_attr;
           inner_attr;
           residual = Pred.True }
     | None ->
       Pnested_join (recur left, recur inner, Pred.Attr_cmp (a, Pred.Eq, b)))
  | Plan.Join (left, right, pred) -> Pnested_join (recur left, recur right, pred)
  | Plan.Union (left, right) -> Punion (recur left, recur right)
  | Plan.Dedup child -> Pdedup (recur child)
  | Plan.Aggregate (child, agg) -> Paggregate (recur child, agg)
  | Plan.Submit (_, _) ->
    raise (Err.Plan_error "submit cannot appear inside a wrapper subplan")
