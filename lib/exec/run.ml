(* The measuring evaluator: executes a physical plan over the simulated
   storage engine and accounts simulated time — IO through the buffer pool,
   CPU per predicate evaluation, output per produced object. The resulting
   measured cost vectors play the role of the paper's "real measurements of
   an object database system" (§5); they are also what the historical-cost
   extension feeds back into the cost model.

   Two execution engines share this module:

   - the tuple-at-a-time engine ([exec_tuple]), the original list-of-tuples
     interpreter;
   - the batched engine ([exec_batch]), which streams columnar {!Batch.t}
     chunks through the same operators, compiles predicates once per batch
     into selection masks ({!Bpred}) and carries row counts and byte sizes
     incrementally.

   Both charge simulated milliseconds through the same cost-formula helpers
   below, replay buffer-pool accesses in the same order and produce the same
   rows in the same order — so results and simulated costs are bit-identical
   by construction; the differential suites pin this. Wall-clock time
   ([wall_ms]) is the second, real clock: it measures the engine itself and
   is the metric the two engines are allowed to differ on. *)

open Disco_common
open Disco_algebra
open Disco_storage

type env = {
  engine : Costs.engine;
  buffer : Buffer.t;
  (* the mediator's composition engine hashes equi-joins over materialized
     subresults; the simulated 1997-era sources do not *)
  hash_join : bool;
  (* ADT operation implementations available to this engine (paper §7);
     shipped to the mediator at registration, like cost rules *)
  adts : Adt.t list;
}

(* --- Engine selection ------------------------------------------------------ *)

type mode = Tuple_at_a_time | Batched of { batch_size : int }

let default_batch_size = 1024

let mode_of_env () =
  let batch_size =
    match Sys.getenv_opt "DISCO_BATCH" with
    | Some s ->
      (match int_of_string_opt (String.trim s) with
       | Some n when n > 0 -> n
       | _ -> default_batch_size)
    | None -> default_batch_size
  in
  match Sys.getenv_opt "DISCO_ENGINE" with
  | Some ("batch" | "batched" | "vector" | "vectorized") -> Batched { batch_size }
  | _ -> Tuple_at_a_time

let default_mode_ref = ref (mode_of_env ())
let default_mode () = !default_mode_ref
let set_default_mode m = default_mode_ref := m

type result = {
  rows : Tuple.t list;
  first : float;  (* simulated ms until the first object *)
  total : float;  (* simulated ms until completion *)
  wall_ms : float;  (* real elapsed ms of the engine itself *)
}

(* The measured counterpart of the estimator's five cost variables, plus the
   real clock. *)
type vector = {
  count : float;
  size : float;
  time_first : float;
  time_next : float;
  total_time : float;
  wall_ms : float;
}

let vector_of_result r =
  let count = float_of_int (List.length r.rows) in
  let size = float_of_int (List.fold_left (fun acc t -> acc + Tuple.byte_size t) 0 r.rows) in
  { count;
    size;
    time_first = r.first;
    time_next = (r.total -. r.first) /. Float.max count 1.;
    total_time = r.total;
    wall_ms = r.wall_ms }

let to_cost_vars (v : vector) =
  Disco_costlang.Ast.
    [ (Count_object, v.count);
      (Total_size, v.size);
      (Time_first, v.time_first);
      (Time_next, v.time_next);
      (Total_time, v.total_time) ]

let pp_vector ppf v =
  Fmt.pf ppf "{count=%.0f size=%.0fB first=%.1fms next=%.2fms total=%.1fms}" v.count
    v.size v.time_first v.time_next v.total_time

(* --- Typed submit failures -------------------------------------------------

   A subplan submitted to a wrapper can fail to come back: the attempt can
   exceed the mediator's per-source timeout, the source can return a
   transient error, or the source can be hard-unavailable. The mediator's
   submit policy retries within one attempt budget; when the budget is
   exhausted the failure surfaces as this typed exception rather than a
   swallowed generic one, so callers can replan or report precisely. *)

type failure_reason = Timeout | Transient | Unavailable

type submit_failure = {
  source : string;
  attempts : int;        (* submits tried, including the failing one *)
  elapsed_ms : float;    (* simulated ms burnt across all attempts *)
  reason : failure_reason;  (* of the final attempt *)
}

exception Submit_error of submit_failure

let reason_to_string = function
  | Timeout -> "timeout"
  | Transient -> "transient error"
  | Unavailable -> "unavailable"

let pp_submit_failure ppf f =
  Fmt.pf ppf "source %S failed (%s) after %d attempt%s, %.0f ms wasted" f.source
    (reason_to_string f.reason) f.attempts
    (if f.attempts = 1 then "" else "s")
    f.elapsed_ms

let () =
  Printexc.register_printer (function
    | Submit_error f -> Some (Fmt.str "Submit_error: %a" pp_submit_failure f)
    | _ -> None)

(* --- Helpers -------------------------------------------------------------- *)

let qualified_attrs (table : Table.t) binding =
  Array.of_list
    (List.map
       (fun (a : Disco_catalog.Schema.attribute) ->
         binding ^ "." ^ a.Disco_catalog.Schema.attr_name)
       table.Table.schema.Disco_catalog.Schema.attributes)

let tuple_of_row attrs row = Tuple.make attrs row

let eval_pred env (p : Pred.t) (t : Tuple.t) =
  Pred.eval ~apply:(Adt.apply env.adts) (fun a -> Tuple.get t a) p

(* Cost of applying [p] once, including its ADT operations. *)
let pred_cost env (p : Pred.t) = Adt.pred_cost env.adts ~eval_ms:env.engine.Costs.eval_ms p

let nlog2n n = float_of_int n *. (log (Float.max (float_of_int n) 2.) /. log 2.)

(* --- Cost formulas ---------------------------------------------------------

   One function per operator, returning (first, total). Shared verbatim by
   the tuple-at-a-time and the batched engine, so the two are bit-identical
   in simulated time by construction — the float operations and their order
   are fixed here, and both engines feed the same operands (the batched
   engine replays buffer accesses in the same order, so even the repeated
   [io +. io_ms] accumulation matches bit for bit). [rc] is the per-object
   residual-predicate cost, [None] when the residual is [True] (the tuple
   path never evaluates — or charges — an absent residual). *)

let full_scan_costs (e : Costs.engine) ~io ~scanned ~rc =
  let total =
    e.Costs.startup_ms +. io
    +. (match rc with Some c -> float_of_int scanned *. c | None -> 0.)
    +. (float_of_int scanned *. e.Costs.output_ms)
  in
  (e.Costs.startup_ms +. e.Costs.io_ms, total)

let index_scan_costs (e : Costs.engine) ~height ~io ~fetched ~rc =
  let probe = float_of_int height *. e.Costs.probe_ms in
  let total =
    e.Costs.startup_ms +. probe +. io
    +. (match rc with Some c -> fetched *. c | None -> 0.)
    +. (fetched *. e.Costs.output_ms)
  in
  (e.Costs.startup_ms +. probe +. e.Costs.io_ms, total)

let filter_costs (e : Costs.engine) ~c_first ~c_total ~n_in ~n_out ~per_row =
  ( c_first +. per_row,
    c_total
    +. (float_of_int n_in *. per_row)
    +. (float_of_int n_out *. e.Costs.output_ms) )

let project_costs (e : Costs.engine) ~c_first ~c_total ~n_out =
  (c_first, c_total +. (float_of_int n_out *. e.Costs.eval_ms))

let sort_costs (e : Costs.engine) ~c_total ~n =
  let first = c_total +. (e.Costs.sort_ms *. nlog2n n) in
  (first, first +. (float_of_int n *. e.Costs.output_ms))

let hash_join_costs (e : Costs.engine) ~l_first ~l_total ~r_total ~n_left ~n_right
    ~candidates ~n_out ~pc =
  let emitted = float_of_int n_out in
  let build_probe = float_of_int (n_left + n_right) *. e.Costs.eval_ms in
  let total =
    l_total +. r_total +. build_probe
    +. (float_of_int candidates *. pc)
    +. (emitted *. e.Costs.output_ms)
  in
  (l_first +. r_total +. e.Costs.eval_ms, total)

let nl_join_costs (e : Costs.engine) ~l_first ~l_total ~r_first ~r_total ~n_left
    ~n_right ~n_out ~pc =
  let pairs = float_of_int (n_left * n_right) in
  let emitted = float_of_int n_out in
  let total =
    l_total +. r_total +. (pairs *. pc) +. (emitted *. e.Costs.output_ms)
  in
  (l_first +. r_first +. e.Costs.eval_ms, total)

let index_join_costs (e : Costs.engine) ~o_first ~o_total ~height ~probes ~io
    ~fetched ~rc ~n_out =
  let emitted = float_of_int n_out in
  let probe_cost =
    float_of_int probes *. float_of_int height *. e.Costs.probe_ms
  in
  let residual_cost =
    match rc with Some c -> float_of_int fetched *. c | None -> 0.
  in
  let total =
    o_total +. probe_cost +. io +. residual_cost
    +. (float_of_int fetched *. e.Costs.output_ms)
    +. (emitted *. e.Costs.output_ms)
  in
  (o_first +. (float_of_int height *. e.Costs.probe_ms) +. e.Costs.io_ms, total)

let union_costs (e : Costs.engine) ~l_first ~l_total ~r_first ~r_total ~n_out =
  ( Float.min l_first r_first,
    l_total +. r_total +. (float_of_int n_out *. e.Costs.output_ms) )

let dedup_costs (e : Costs.engine) ~c_total ~n_in ~n_out =
  let first = c_total +. (e.Costs.sort_ms *. nlog2n n_in) in
  (first, first +. (float_of_int n_out *. e.Costs.output_ms))

let aggregate_costs (e : Costs.engine) ~c_total ~n_in ~n_out =
  let n = float_of_int n_in in
  let first = c_total +. (n *. e.Costs.eval_ms) in
  (first, first +. (float_of_int n_out *. e.Costs.output_ms))

(* --- Tuple-at-a-time evaluation -------------------------------------------- *)

let mk rows ~first ~total = { rows; first; total; wall_ms = 0. }

let rec exec_tuple (env : env) (p : Physical.t) : result =
  let e = env.engine in
  match p with
  (* Gather point of the mediator's scatter-gather: wrapper subresults land
     here pre-executed (possibly concurrently, in their own envs), so the
     composition below never touches a wrapper and [env] stays
     single-domain. *)
  | Physical.Pmaterialized { rows; count = _; first; total } -> mk rows ~first ~total
  | Physical.Pscan { table; binding; access; residual } ->
    let attrs = qualified_attrs table binding in
    let has_residual = not (Pred.equal residual Pred.True) in
    let rc () = if has_residual then Some (pred_cost env residual) else None in
    (match access with
     | Physical.Full_scan ->
       let io = ref 0. and rows = ref [] and scanned = ref 0 in
       Table.iter_pages table (fun page_no page ->
           if Buffer.access env.buffer ~table:table.Table.name ~page:page_no then
             io := !io +. e.Costs.io_ms;
           Array.iter
             (fun row ->
               incr scanned;
               let t = tuple_of_row attrs row in
               if (not has_residual) || eval_pred env residual t then rows := t :: !rows)
             page);
       let rows = List.rev !rows in
       (* every scanned object is materialized (the paper's Output cost),
          whether or not it passes the residual predicate *)
       let first, total = full_scan_costs e ~io:!io ~scanned:!scanned ~rc:(rc ()) in
       mk rows ~first ~total
     | Physical.Index_scan { attr; op; value } ->
       let idx =
         match Table.index table attr with
         | Some i -> i
         | None -> raise (Err.Plan_error ("no index on " ^ attr))
       in
       let rids = Btree.search idx op value in
       let io = ref 0. and rows = ref [] in
       List.iter
         (fun rid ->
           if Buffer.access env.buffer ~table:table.Table.name ~page:rid.Btree.page
           then io := !io +. e.Costs.io_ms;
           let t = tuple_of_row attrs (Table.fetch table rid) in
           if (not has_residual) || eval_pred env residual t then rows := t :: !rows)
         rids;
       let rows = List.rev !rows in
       let fetched = float_of_int (List.length rids) in
       (* every fetched object is materialized, as above *)
       let first, total =
         index_scan_costs e ~height:idx.Btree.height ~io:!io ~fetched ~rc:(rc ())
       in
       mk rows ~first ~total)
  | Physical.Pfilter (child, pred) ->
    let c = exec_tuple env child in
    let rows = List.filter (eval_pred env pred) c.rows in
    let first, total =
      filter_costs e ~c_first:c.first ~c_total:c.total
        ~n_in:(List.length c.rows) ~n_out:(List.length rows)
        ~per_row:(pred_cost env pred)
    in
    mk rows ~first ~total
  | Physical.Pproject (child, attrs) ->
    let c = exec_tuple env child in
    let rows = List.map (fun t -> Tuple.project t attrs) c.rows in
    let first, total =
      project_costs e ~c_first:c.first ~c_total:c.total ~n_out:(List.length rows)
    in
    mk rows ~first ~total
  | Physical.Psort (child, keys) ->
    let c = exec_tuple env child in
    let cmp a b =
      let rec go = function
        | [] -> 0
        | (k, ord) :: rest ->
          let r = Constant.compare (Tuple.get a k) (Tuple.get b k) in
          let r = match ord with Plan.Asc -> r | Plan.Desc -> -r in
          if r <> 0 then r else go rest
      in
      go keys
    in
    let rows = List.stable_sort cmp c.rows in
    let first, total = sort_costs e ~c_total:c.total ~n:(List.length rows) in
    mk rows ~first ~total
  | Physical.Pnested_join (left, right, pred) ->
    let l = exec_tuple env left and r = exec_tuple env right in
    (* hash path: pick one equi conjunct between the two sides as build key *)
    let equi_key =
      if not env.hash_join then None
      else
        let in_rows rows a =
          match rows with
          | t :: _ -> (try ignore (Tuple.get t a); true with _ -> false)
          | [] -> false
        in
        List.find_map
          (function
            | Pred.Attr_cmp (a, Pred.Eq, b) ->
              if in_rows l.rows a && in_rows r.rows b then Some (a, b)
              else if in_rows l.rows b && in_rows r.rows a then Some (b, a)
              else None
            | _ -> None)
          (Pred.conjuncts pred)
    in
    (match equi_key with
     | Some (lkey, rkey) ->
       let table = Hashtbl.create (List.length r.rows) in
       List.iter
         (fun rt -> Hashtbl.add table (Constant.to_string (Tuple.get rt rkey)) rt)
         r.rows;
       let candidates = ref 0 in
       let rows =
         List.concat_map
           (fun lt ->
             let matches = Hashtbl.find_all table (Constant.to_string (Tuple.get lt lkey)) in
             candidates := !candidates + List.length matches;
             List.filter_map
               (fun rt ->
                 let t = Tuple.concat lt rt in
                 if eval_pred env pred t then Some t else None)
               matches)
           l.rows
       in
       let first, total =
         hash_join_costs e ~l_first:l.first ~l_total:l.total ~r_total:r.total
           ~n_left:(List.length l.rows) ~n_right:(List.length r.rows)
           ~candidates:!candidates ~n_out:(List.length rows)
           ~pc:(pred_cost env pred)
       in
       mk rows ~first ~total
     | None ->
       let rows =
         List.concat_map
           (fun lt ->
             List.filter_map
               (fun rt ->
                 let t = Tuple.concat lt rt in
                 if eval_pred env pred t then Some t else None)
               r.rows)
           l.rows
       in
       let first, total =
         nl_join_costs e ~l_first:l.first ~l_total:l.total ~r_first:r.first
           ~r_total:r.total ~n_left:(List.length l.rows)
           ~n_right:(List.length r.rows) ~n_out:(List.length rows)
           ~pc:(pred_cost env pred)
       in
       mk rows ~first ~total)
  | Physical.Pindex_join { outer; table; binding; outer_attr; inner_attr; residual } ->
    let o = exec_tuple env outer in
    let idx =
      match Table.index table inner_attr with
      | Some i -> i
      | None -> raise (Err.Plan_error ("no index on " ^ inner_attr))
    in
    let attrs = qualified_attrs table binding in
    let io = ref 0. and probes = ref 0 and rows = ref [] and fetched = ref 0 in
    List.iter
      (fun ot ->
        incr probes;
        let key = Tuple.get ot outer_attr in
        List.iter
          (fun rid ->
            if Buffer.access env.buffer ~table:table.Table.name ~page:rid.Btree.page
            then io := !io +. e.Costs.io_ms;
            incr fetched;
            let t = Tuple.concat ot (tuple_of_row attrs (Table.fetch table rid)) in
            if Pred.equal residual Pred.True || eval_pred env residual t then
              rows := t :: !rows)
          (Btree.lookup idx key))
      o.rows;
    let rows = List.rev !rows in
    let rc =
      if Pred.equal residual Pred.True then None else Some (pred_cost env residual)
    in
    let first, total =
      index_join_costs e ~o_first:o.first ~o_total:o.total ~height:idx.Btree.height
        ~probes:!probes ~io:!io ~fetched:!fetched ~rc ~n_out:(List.length rows)
    in
    mk rows ~first ~total
  | Physical.Punion (left, right) ->
    let l = exec_tuple env left and r = exec_tuple env right in
    let rows = l.rows @ r.rows in
    let first, total =
      union_costs e ~l_first:l.first ~l_total:l.total ~r_first:r.first
        ~r_total:r.total ~n_out:(List.length rows)
    in
    mk rows ~first ~total
  | Physical.Pdedup child ->
    let c = exec_tuple env child in
    let seen = Hashtbl.create 64 in
    let rows =
      List.filter
        (fun t ->
          let k = Tuple.key t in
          if Hashtbl.mem seen k then false
          else begin
            Hashtbl.add seen k ();
            true
          end)
        c.rows
    in
    let first, total =
      dedup_costs e ~c_total:c.total ~n_in:(List.length c.rows)
        ~n_out:(List.length rows)
    in
    mk rows ~first ~total
  | Physical.Paggregate (child, agg) ->
    let c = exec_tuple env child in
    let groups : (string, Tuple.t * Tuple.t list ref) Hashtbl.t = Hashtbl.create 64 in
    let order = ref [] in
    List.iter
      (fun t ->
        let key =
          String.concat "\x00"
            (List.map (fun a -> Constant.to_string (Tuple.get t a)) agg.Plan.group_by)
        in
        match Hashtbl.find_opt groups key with
        | Some (_, rows) -> rows := t :: !rows
        | None ->
          Hashtbl.add groups key (t, ref [ t ]);
          order := key :: !order)
      c.rows;
    let aggregate_rows rows (f, input, _) : Constant.t =
      let nums () =
        List.filter_map (fun t -> Constant.to_float_opt (Tuple.get t input)) rows
      in
      match f with
      | Plan.Count -> Constant.Int (List.length rows)
      | Plan.Sum -> Constant.Float (List.fold_left ( +. ) 0. (nums ()))
      | Plan.Avg ->
        let xs = nums () in
        if xs = [] then Constant.Null
        else Constant.Float (List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs))
      | Plan.Min ->
        (match rows with
         | [] -> Constant.Null
         | t0 :: _ ->
           List.fold_left
             (fun acc t ->
               let v = Tuple.get t input in
               if Constant.compare v acc < 0 then v else acc)
             (Tuple.get t0 input) rows)
      | Plan.Max ->
        (match rows with
         | [] -> Constant.Null
         | t0 :: _ ->
           List.fold_left
             (fun acc t ->
               let v = Tuple.get t input in
               if Constant.compare v acc > 0 then v else acc)
             (Tuple.get t0 input) rows)
    in
    let out_attrs =
      Array.of_list (agg.Plan.group_by @ List.map (fun (_, _, o) -> o) agg.Plan.aggs)
    in
    let rows =
      List.rev_map
        (fun key ->
          let witness, rows = Hashtbl.find groups key in
          let group_vals = List.map (fun a -> Tuple.get witness a) agg.Plan.group_by in
          let agg_vals = List.map (aggregate_rows !rows) agg.Plan.aggs in
          Tuple.make out_attrs (Array.of_list (group_vals @ agg_vals)))
        !order
    in
    let first, total =
      aggregate_costs e ~c_total:c.total ~n_in:(List.length c.rows)
        ~n_out:(List.length rows)
    in
    mk rows ~first ~total

(* --- Batched evaluation ----------------------------------------------------

   Same operators over lists of columnar batches. Intermediate results are
   [Batch.t list] rather than one batch because unions legally mix schemas
   in a single row stream; every batch in a result is non-empty, and row
   order across the list equals the tuple engine's row order. Counts and
   byte sizes are carried incrementally (never recomputed by walking rows —
   the satellite fix for [vector_of_result]'s O(n) refold). *)

type batched_result = {
  batches : Batch.t list;
  bcount : int;   (* total rows across [batches] *)
  bbytes : int;   (* total Tuple.byte_size across [batches] *)
  bfirst : float;
  btotal : float;
  bwall_ms : float;
}

(* Accumulator of finished batches, in order. *)
type bacc = {
  mutable abats : Batch.t list;  (* reversed *)
  mutable acount : int;
  mutable abytes : int;
}

let bacc () = { abats = []; acount = 0; abytes = 0 }

let bpush a (b : Batch.t) =
  if b.Batch.len > 0 then begin
    a.abats <- b :: a.abats;
    a.acount <- a.acount + b.Batch.len;
    a.abytes <- a.abytes + b.Batch.bytes
  end

let bdone a = List.rev a.abats

(* Row-wise output collector: builds batches of at most [osize] rows,
   starting a new batch when the row schema changes mid-stream. *)
type bout = {
  osize : int;
  mutable cur : (string array * Batch.builder) option;
  oacc : bacc;
}

let bout bsz = { osize = bsz; cur = None; oacc = bacc () }

let bout_flush o =
  match o.cur with
  | Some (_, bld) when Batch.builder_len bld > 0 -> bpush o.oacc (Batch.flush bld)
  | _ -> ()

let schema_eq a b =
  a == b || (Array.length a = Array.length b && Array.for_all2 String.equal a b)

let bout_target o attrs =
  match o.cur with
  | Some (a, bld) when schema_eq a attrs -> bld
  | _ ->
    bout_flush o;
    let bld = Batch.builder ~hint:o.osize attrs in
    o.cur <- Some (attrs, bld);
    bld

let bout_row o attrs values =
  let bld = bout_target o attrs in
  Batch.add_row bld values;
  if Batch.builder_len bld >= o.osize then bout_flush o

let bout_from o (src : Batch.t) i =
  let bld = bout_target o src.Batch.attrs in
  Batch.add_from bld src i;
  if Batch.builder_len bld >= o.osize then bout_flush o

let bout_pair o cattrs (l : Batch.t) li (r : Batch.t) ri =
  let bld = bout_target o cattrs in
  Batch.add_pair_from bld l li r ri;
  if Batch.builder_len bld >= o.osize then bout_flush o

let bout_done o =
  bout_flush o;
  (bdone o.oacc, o.oacc.acount, o.oacc.abytes)

let bres (bats, count, bytes) ~first ~total =
  { batches = bats;
    bcount = count;
    bbytes = bytes;
    bfirst = first;
    btotal = total;
    bwall_ms = 0. }

let bres_of_acc acc ~first ~total =
  bres (bdone acc, acc.acount, acc.abytes) ~first ~total

let rec exec_batch (env : env) ~bsz (p : Physical.t) : batched_result =
  let e = env.engine in
  let apply = Adt.apply env.adts in
  match p with
  | Physical.Pmaterialized { rows; count = _; first; total } ->
    let o = bout bsz in
    List.iter (fun (t : Tuple.t) -> bout_row o t.Tuple.attrs t.Tuple.values) rows;
    bres (bout_done o) ~first ~total
  | Physical.Pscan { table; binding; access; residual } ->
    let attrs = qualified_attrs table binding in
    let has_residual = not (Pred.equal residual Pred.True) in
    let acc = bacc () in
    let stage = Batch.builder ~hint:bsz attrs in
    (* flush the staged scanned rows through the residual's selection mask;
       with a residual the stage is only borrowed (mask + filter-copy, then
       reset), so one set of staging arrays serves the whole scan and the
       only allocations that survive are the kept rows *)
    let emit () =
      if Batch.builder_len stage > 0 then
        if has_residual then begin
          let v = Batch.unsafe_view stage in
          let m, keep = Bpred.mask ~apply v residual in
          (* copy densifies: [filter] only sets a selection vector over the
             staging arrays, which the next fill overwrites *)
          if keep > 0 then bpush acc (Batch.copy (Batch.filter v m ~keep));
          Batch.reset stage
        end
        else bpush acc (Batch.flush stage)
    in
    let rc () = if has_residual then Some (pred_cost env residual) else None in
    (match access with
     | Physical.Full_scan ->
       (* pages are visited one by one so the buffer-pool accesses — and
          hence the charged I/O — are exactly the tuple engine's, but the
          data itself comes from the table's columnar mirror, zero-copy:
          the emitted batch shares the mirror's column arrays (and a
          residual needs just one mask + one gather over them, no per-row
          staging). Row order is page order either way. *)
       let io = ref 0. and scanned = ref 0 in
       Table.iter_pages table (fun page_no page ->
           if Buffer.access env.buffer ~table:table.Table.name ~page:page_no then
             io := !io +. e.Costs.io_ms;
           scanned := !scanned + Array.length page);
       let n = Table.count table in
       if n > 0 then begin
         let whole = Batch.of_table_columns attrs (Table.columnar table) n in
         if has_residual then begin
           let m, keep = Bpred.mask ~apply whole residual in
           if keep > 0 then bpush acc (Batch.filter whole m ~keep)
         end
         else bpush acc whole
       end;
       let first, total = full_scan_costs e ~io:!io ~scanned:!scanned ~rc:(rc ()) in
       bres_of_acc acc ~first ~total
     | Physical.Index_scan { attr; op; value } ->
       let idx =
         match Table.index table attr with
         | Some i -> i
         | None -> raise (Err.Plan_error ("no index on " ^ attr))
       in
       let io = ref 0. and nrids = ref 0 in
       Btree.iter_search idx op value (fun rid ->
           incr nrids;
           if Buffer.access env.buffer ~table:table.Table.name ~page:rid.Btree.page
           then io := !io +. e.Costs.io_ms;
           Batch.add_row stage (Table.fetch table rid);
           if Batch.builder_len stage >= bsz then emit ());
       emit ();
       let fetched = float_of_int !nrids in
       let first, total =
         index_scan_costs e ~height:idx.Btree.height ~io:!io ~fetched ~rc:(rc ())
       in
       bres_of_acc acc ~first ~total)
  | Physical.Pfilter (child, pred) ->
    let c = exec_batch env ~bsz child in
    let acc = bacc () in
    List.iter
      (fun b ->
        let m, keep = Bpred.mask ~apply b pred in
        if keep > 0 then bpush acc (Batch.filter b m ~keep))
      c.batches;
    let first, total =
      filter_costs e ~c_first:c.bfirst ~c_total:c.btotal ~n_in:c.bcount
        ~n_out:acc.acount ~per_row:(pred_cost env pred)
    in
    bres_of_acc acc ~first ~total
  | Physical.Pproject (child, names) ->
    let c = exec_batch env ~bsz child in
    let acc = bacc () in
    List.iter (fun b -> bpush acc (Batch.select_cols b names)) c.batches;
    let first, total =
      project_costs e ~c_first:c.bfirst ~c_total:c.btotal ~n_out:acc.acount
    in
    bres_of_acc acc ~first ~total
  | Physical.Psort (child, keys) ->
    let c = exec_batch env ~bsz child in
    let bats = Array.of_list c.batches in
    let keyspec = Array.of_list keys in
    (* per-batch, per-key column resolution, forced only when a comparison
       actually reaches that key — so a sort over <= 1 rows (no comparisons)
       or with ties never hit tolerates unresolvable keys, exactly like the
       tuple comparator *)
    let kcols =
      Array.map
        (fun b -> Array.map (fun (k, _) -> lazy (Batch.find_col b k)) keyspec)
        bats
    in
    let idx = Array.make c.bcount (0, 0) in
    let pos = ref 0 in
    Array.iteri
      (fun bi b ->
        for i = 0 to b.Batch.len - 1 do
          idx.(!pos) <- (bi, i);
          incr pos
        done)
      bats;
    let cmp (bi, ri) (bj, rj) =
      let rec go k =
        if k >= Array.length keyspec then 0
        else begin
          let _, ord = keyspec.(k) in
          let ci = Lazy.force kcols.(bi).(k) in
          let cj = Lazy.force kcols.(bj).(k) in
          let r = Batch.cell_compare bats.(bi) ci ri bats.(bj) cj rj in
          let r = match ord with Plan.Asc -> r | Plan.Desc -> -r in
          if r <> 0 then r else go (k + 1)
        end
      in
      go 0
    in
    (* both engines use a stable merge sort with the same comparator, so the
       output permutation is identical *)
    Array.stable_sort cmp idx;
    let o = bout bsz in
    Array.iter (fun (bi, i) -> bout_from o bats.(bi) i) idx;
    let first, total = sort_costs e ~c_total:c.btotal ~n:c.bcount in
    bres (bout_done o) ~first ~total
  | Physical.Pnested_join (left, right, pred) ->
    let l = exec_batch env ~bsz left and r = exec_batch env ~bsz right in
    let lbats = Array.of_list l.batches and rbats = Array.of_list r.batches in
    (* pair-compiled predicate and concatenated schema per batch pair,
       compiled on first use (the tuple path only ever evaluates the
       predicate once a candidate pair exists) *)
    let pairinfo = Array.make_matrix (Array.length lbats) (Array.length rbats) None in
    let pair_info lbi rbi =
      match pairinfo.(lbi).(rbi) with
      | Some x -> x
      | None ->
        let lb = lbats.(lbi) and rb = rbats.(rbi) in
        let x =
          (Array.append lb.Batch.attrs rb.Batch.attrs,
           Bpred.pair_eval ~apply lb rb pred)
        in
        pairinfo.(lbi).(rbi) <- Some x;
        x
    in
    let equi_key =
      if not env.hash_join then None
      else
        let in_bats bats a =
          match bats with
          | b :: _ -> (try ignore (Batch.find_col b a); true with _ -> false)
          | [] -> false
        in
        List.find_map
          (function
            | Pred.Attr_cmp (a, Pred.Eq, b) ->
              if in_bats l.batches a && in_bats r.batches b then Some (a, b)
              else if in_bats l.batches b && in_bats r.batches a then Some (b, a)
              else None
            | _ -> None)
          (Pred.conjuncts pred)
    in
    (match equi_key with
     | Some (lkey, rkey) ->
       (* int-specialized build/probe is valid only when the key column is
          unboxed Ints on every batch of both sides: the tuple path keys the
          hash table on [Constant.to_string], under which [Int 1] and
          [Float 1.] do NOT collide, so numeric-coercing keys would change
          the partition. *)
       let all_ints bats key =
         bats <> []
         && List.for_all
              (fun b ->
                match Batch.find_col_opt b key with
                | Some c ->
                  (match b.Batch.cols.(c) with Batch.Ints _ -> true | _ -> false)
                | None -> false)
              bats
       in
       let candidates = ref 0 in
       let o = bout bsz in
       let emit lbi (lb : Batch.t) li matches =
         candidates := !candidates + List.length matches;
         List.iter
           (fun (rbi, ri) ->
             let cattrs, ev = pair_info lbi rbi in
             if ev li ri then bout_pair o cattrs lb li rbats.(rbi) ri)
           matches
       in
       if all_ints l.batches lkey && all_ints r.batches rkey then begin
         let tbl : (int, int * int) Hashtbl.t = Hashtbl.create r.bcount in
         Array.iteri
           (fun rbi (b : Batch.t) ->
             match b.Batch.cols.(Batch.find_col b rkey) with
             | Batch.Ints a ->
               let ix = Batch.indexer b in
               for i = 0 to b.Batch.len - 1 do
                 Hashtbl.add tbl a.(ix i) (rbi, i)
               done
             | _ -> assert false)
           rbats;
         Array.iteri
           (fun lbi (lb : Batch.t) ->
             match lb.Batch.cols.(Batch.find_col lb lkey) with
             | Batch.Ints a ->
               let ix = Batch.indexer lb in
               for li = 0 to lb.Batch.len - 1 do
                 emit lbi lb li (Hashtbl.find_all tbl a.(ix li))
               done
             | _ -> assert false)
           lbats
       end
       else begin
         let tbl : (string, int * int) Hashtbl.t = Hashtbl.create r.bcount in
         Array.iteri
           (fun rbi (b : Batch.t) ->
             let c = Batch.find_col b rkey in
             for i = 0 to b.Batch.len - 1 do
               Hashtbl.add tbl (Constant.to_string (Batch.cell b c i)) (rbi, i)
             done)
           rbats;
         Array.iteri
           (fun lbi (lb : Batch.t) ->
             let c = Batch.find_col lb lkey in
             for li = 0 to lb.Batch.len - 1 do
               emit lbi lb li
                 (Hashtbl.find_all tbl (Constant.to_string (Batch.cell lb c li)))
             done)
           lbats
       end;
       let bats, n_out, bytes = bout_done o in
       let first, total =
         hash_join_costs e ~l_first:l.bfirst ~l_total:l.btotal ~r_total:r.btotal
           ~n_left:l.bcount ~n_right:r.bcount ~candidates:!candidates ~n_out
           ~pc:(pred_cost env pred)
       in
       bres (bats, n_out, bytes) ~first ~total
     | None ->
       let o = bout bsz in
       Array.iteri
         (fun lbi (lb : Batch.t) ->
           for li = 0 to lb.Batch.len - 1 do
             Array.iteri
               (fun rbi (rb : Batch.t) ->
                 let cattrs, ev = pair_info lbi rbi in
                 for ri = 0 to rb.Batch.len - 1 do
                   if ev li ri then bout_pair o cattrs lb li rb ri
                 done)
               rbats
           done)
         lbats;
       let bats, n_out, bytes = bout_done o in
       let first, total =
         nl_join_costs e ~l_first:l.bfirst ~l_total:l.btotal ~r_first:r.bfirst
           ~r_total:r.btotal ~n_left:l.bcount ~n_right:r.bcount ~n_out
           ~pc:(pred_cost env pred)
       in
       bres (bats, n_out, bytes) ~first ~total)
  | Physical.Pindex_join { outer; table; binding; outer_attr; inner_attr; residual } ->
    let ores = exec_batch env ~bsz outer in
    let idx =
      match Table.index table inner_attr with
      | Some i -> i
      | None -> raise (Err.Plan_error ("no index on " ^ inner_attr))
    in
    let attrs = qualified_attrs table binding in
    let has_res = not (Pred.equal residual Pred.True) in
    let io = ref 0. and probes = ref 0 and fetched = ref 0 in
    let o = bout bsz in
    List.iter
      (fun (ob : Batch.t) ->
        let kol = Batch.find_col ob outer_attr in
        let cattrs = Array.append ob.Batch.attrs attrs in
        (* fetched inner rows staged per outer batch, with the outer row
           index of each staged row alongside *)
        let stage = Batch.builder ~hint:bsz attrs in
        let oix = ref (Array.make (max bsz 16) 0) and on = ref 0 in
        let push_ix li =
          if !on >= Array.length !oix then begin
            let a = Array.make (2 * Array.length !oix) 0 in
            Array.blit !oix 0 a 0 !on;
            oix := a
          end;
          !oix.(!on) <- li;
          incr on
        in
        let emit () =
          if Batch.builder_len stage > 0 then begin
            let ib = Batch.flush stage in
            let ev =
              if has_res then Some (Bpred.pair_eval ~apply ob ib residual)
              else None
            in
            for k = 0 to ib.Batch.len - 1 do
              let li = !oix.(k) in
              if (match ev with None -> true | Some f -> f li k) then
                bout_pair o cattrs ob li ib k
            done;
            on := 0
          end
        in
        for li = 0 to ob.Batch.len - 1 do
          incr probes;
          let key = Batch.cell ob kol li in
          List.iter
            (fun rid ->
              if Buffer.access env.buffer ~table:table.Table.name ~page:rid.Btree.page
              then io := !io +. e.Costs.io_ms;
              incr fetched;
              Batch.add_row stage (Table.fetch table rid);
              push_ix li;
              if Batch.builder_len stage >= bsz then emit ())
            (Btree.lookup idx key)
        done;
        emit ())
      ores.batches;
    let rc = if has_res then Some (pred_cost env residual) else None in
    let bats, n_out, bytes = bout_done o in
    let first, total =
      index_join_costs e ~o_first:ores.bfirst ~o_total:ores.btotal
        ~height:idx.Btree.height ~probes:!probes ~io:!io ~fetched:!fetched ~rc
        ~n_out
    in
    bres (bats, n_out, bytes) ~first ~total
  | Physical.Punion (left, right) ->
    let l = exec_batch env ~bsz left and r = exec_batch env ~bsz right in
    let first, total =
      union_costs e ~l_first:l.bfirst ~l_total:l.btotal ~r_first:r.bfirst
        ~r_total:r.btotal ~n_out:(l.bcount + r.bcount)
    in
    bres
      (l.batches @ r.batches, l.bcount + r.bcount, l.bbytes + r.bbytes)
      ~first ~total
  | Physical.Pdedup child ->
    let c = exec_batch env ~bsz child in
    let seen = Hashtbl.create 64 in
    let o = bout bsz in
    List.iter
      (fun (b : Batch.t) ->
        for i = 0 to b.Batch.len - 1 do
          let k = Batch.row_key b i in
          if not (Hashtbl.mem seen k) then begin
            Hashtbl.add seen k ();
            bout_from o b i
          end
        done)
      c.batches;
    let bats, n_out, bytes = bout_done o in
    let first, total = dedup_costs e ~c_total:c.btotal ~n_in:c.bcount ~n_out in
    bres (bats, n_out, bytes) ~first ~total
  | Physical.Paggregate (child, agg) ->
    let c = exec_batch env ~bsz child in
    let bats = Array.of_list c.batches in
    let nb = Array.length bats in
    let groups : (string, (int * int) * (int * int) list ref) Hashtbl.t =
      Hashtbl.create 64
    in
    let order = ref [] in
    Array.iteri
      (fun bi (b : Batch.t) ->
        let gcols = List.map (fun a -> Batch.find_col b a) agg.Plan.group_by in
        for i = 0 to b.Batch.len - 1 do
          let key =
            String.concat "\x00"
              (List.map (fun ci -> Constant.to_string (Batch.cell b ci i)) gcols)
          in
          match Hashtbl.find_opt groups key with
          | Some (_, rows) -> rows := (bi, i) :: !rows
          | None ->
            Hashtbl.add groups key ((bi, i), ref [ (bi, i) ]);
            order := key :: !order
        done)
      bats;
    (* one evaluator per aggregate; group rows arrive in the same (reversed)
       accumulation order the tuple path folds over *)
    let agg_evals =
      List.map
        (fun (f, input, _) ->
          let icol = Array.make (max nb 1) (-1) in
          let getv (bi, i) =
            let ci =
              if icol.(bi) >= 0 then icol.(bi)
              else begin
                let ci = Batch.find_col bats.(bi) input in
                icol.(bi) <- ci;
                ci
              end
            in
            Batch.cell bats.(bi) ci i
          in
          fun (rows : (int * int) list) : Constant.t ->
            let nums () =
              List.filter_map (fun p -> Constant.to_float_opt (getv p)) rows
            in
            match f with
            | Plan.Count -> Constant.Int (List.length rows)
            | Plan.Sum -> Constant.Float (List.fold_left ( +. ) 0. (nums ()))
            | Plan.Avg ->
              let xs = nums () in
              if xs = [] then Constant.Null
              else
                Constant.Float
                  (List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs))
            | Plan.Min ->
              (match rows with
               | [] -> Constant.Null
               | p0 :: _ ->
                 List.fold_left
                   (fun acc p ->
                     let v = getv p in
                     if Constant.compare v acc < 0 then v else acc)
                   (getv p0) rows)
            | Plan.Max ->
              (match rows with
               | [] -> Constant.Null
               | p0 :: _ ->
                 List.fold_left
                   (fun acc p ->
                     let v = getv p in
                     if Constant.compare v acc > 0 then v else acc)
                   (getv p0) rows))
        agg.Plan.aggs
    in
    let out_attrs =
      Array.of_list (agg.Plan.group_by @ List.map (fun (_, _, o) -> o) agg.Plan.aggs)
    in
    let o = bout bsz in
    List.iter
      (fun key ->
        let (wbi, wi), rows = Hashtbl.find groups key in
        let wb = bats.(wbi) in
        let group_vals =
          List.map
            (fun a -> Batch.cell wb (Batch.find_col wb a) wi)
            agg.Plan.group_by
        in
        let agg_vals = List.map (fun ev -> ev !rows) agg_evals in
        bout_row o out_attrs (Array.of_list (group_vals @ agg_vals)))
      (List.rev !order);
    let bats, n_out, bytes = bout_done o in
    let first, total =
      aggregate_costs e ~c_total:c.btotal ~n_in:c.bcount ~n_out
    in
    bres (bats, n_out, bytes) ~first ~total

(* --- Public API ------------------------------------------------------------ *)

let timed f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, (Unix.gettimeofday () -. t0) *. 1000.)

let run_batched ?(batch_size = default_batch_size) env p =
  let br, w = timed (fun () -> exec_batch env ~bsz:(max batch_size 1) p) in
  { br with bwall_ms = w }

let rows_of_batched br = List.concat_map Batch.to_tuples br.batches

let vector_of_batched br =
  let count = float_of_int br.bcount in
  { count;
    size = float_of_int br.bbytes;
    time_first = br.bfirst;
    time_next = (br.btotal -. br.bfirst) /. Float.max count 1.;
    total_time = br.btotal;
    wall_ms = br.bwall_ms }

let resolve_mode = function Some m -> m | None -> !default_mode_ref

let run ?mode env p : result =
  match resolve_mode mode with
  | Tuple_at_a_time ->
    let r, w = timed (fun () -> exec_tuple env p) in
    { r with wall_ms = w }
  | Batched { batch_size } ->
    let br = run_batched ~batch_size env p in
    { rows = rows_of_batched br;
      first = br.bfirst;
      total = br.btotal;
      wall_ms = br.bwall_ms }

(* Execute and measure in one step. In batched mode the vector's count and
   size come from the incrementally-carried totals — no walk over the rows —
   and are bit-identical to the tuple path's refold because both are exact
   integer sums. *)
let measure ?mode env p : Tuple.t list * vector =
  match resolve_mode mode with
  | Tuple_at_a_time ->
    let r = run ~mode:Tuple_at_a_time env p in
    (r.rows, vector_of_result r)
  | Batched { batch_size } ->
    let br = run_batched ~batch_size env p in
    (rows_of_batched br, vector_of_batched br)
