(* The measuring evaluator: executes a physical plan over the simulated
   storage engine and accounts simulated time — IO through the buffer pool,
   CPU per predicate evaluation, output per produced object. The resulting
   measured cost vectors play the role of the paper's "real measurements of
   an object database system" (§5); they are also what the historical-cost
   extension feeds back into the cost model. *)

open Disco_common
open Disco_algebra
open Disco_storage

type env = {
  engine : Costs.engine;
  buffer : Buffer.t;
  (* the mediator's composition engine hashes equi-joins over materialized
     subresults; the simulated 1997-era sources do not *)
  hash_join : bool;
  (* ADT operation implementations available to this engine (paper §7);
     shipped to the mediator at registration, like cost rules *)
  adts : Adt.t list;
}

type result = {
  rows : Tuple.t list;
  first : float;  (* simulated ms until the first object *)
  total : float;  (* simulated ms until completion *)
}

(* The measured counterpart of the estimator's five cost variables. *)
type vector = {
  count : float;
  size : float;
  time_first : float;
  time_next : float;
  total_time : float;
}

let vector_of_result r =
  let count = float_of_int (List.length r.rows) in
  let size = float_of_int (List.fold_left (fun acc t -> acc + Tuple.byte_size t) 0 r.rows) in
  { count;
    size;
    time_first = r.first;
    time_next = (r.total -. r.first) /. Float.max count 1.;
    total_time = r.total }

let to_cost_vars (v : vector) =
  Disco_costlang.Ast.
    [ (Count_object, v.count);
      (Total_size, v.size);
      (Time_first, v.time_first);
      (Time_next, v.time_next);
      (Total_time, v.total_time) ]

let pp_vector ppf v =
  Fmt.pf ppf "{count=%.0f size=%.0fB first=%.1fms next=%.2fms total=%.1fms}" v.count
    v.size v.time_first v.time_next v.total_time

(* --- Typed submit failures -------------------------------------------------

   A subplan submitted to a wrapper can fail to come back: the attempt can
   exceed the mediator's per-source timeout, the source can return a
   transient error, or the source can be hard-unavailable. The mediator's
   submit policy retries within one attempt budget; when the budget is
   exhausted the failure surfaces as this typed exception rather than a
   swallowed generic one, so callers can replan or report precisely. *)

type failure_reason = Timeout | Transient | Unavailable

type submit_failure = {
  source : string;
  attempts : int;        (* submits tried, including the failing one *)
  elapsed_ms : float;    (* simulated ms burnt across all attempts *)
  reason : failure_reason;  (* of the final attempt *)
}

exception Submit_error of submit_failure

let reason_to_string = function
  | Timeout -> "timeout"
  | Transient -> "transient error"
  | Unavailable -> "unavailable"

let pp_submit_failure ppf f =
  Fmt.pf ppf "source %S failed (%s) after %d attempt%s, %.0f ms wasted" f.source
    (reason_to_string f.reason) f.attempts
    (if f.attempts = 1 then "" else "s")
    f.elapsed_ms

let () =
  Printexc.register_printer (function
    | Submit_error f -> Some (Fmt.str "Submit_error: %a" pp_submit_failure f)
    | _ -> None)

(* --- Helpers -------------------------------------------------------------- *)

let qualified_attrs (table : Table.t) binding =
  Array.of_list
    (List.map
       (fun (a : Disco_catalog.Schema.attribute) ->
         binding ^ "." ^ a.Disco_catalog.Schema.attr_name)
       table.Table.schema.Disco_catalog.Schema.attributes)

let tuple_of_row attrs row = Tuple.make attrs row

let eval_pred env (p : Pred.t) (t : Tuple.t) =
  Pred.eval ~apply:(Adt.apply env.adts) (fun a -> Tuple.get t a) p

(* Cost of applying [p] once, including its ADT operations. *)
let pred_cost env (p : Pred.t) = Adt.pred_cost env.adts ~eval_ms:env.engine.Costs.eval_ms p

let nlog2n n = float_of_int n *. (log (Float.max (float_of_int n) 2.) /. log 2.)

(* --- Evaluation ------------------------------------------------------------ *)

let rec run (env : env) (p : Physical.t) : result =
  let e = env.engine in
  match p with
  (* Gather point of the mediator's scatter-gather: wrapper subresults land
     here pre-executed (possibly concurrently, in their own envs), so the
     composition below never touches a wrapper and [env] stays
     single-domain. *)
  | Physical.Pmaterialized { rows; first; total } -> { rows; first; total }
  | Physical.Pscan { table; binding; access; residual } ->
    let attrs = qualified_attrs table binding in
    let has_residual = not (Pred.equal residual Pred.True) in
    (match access with
     | Physical.Full_scan ->
       let io = ref 0. and rows = ref [] and scanned = ref 0 in
       Table.iter_pages table (fun page_no page ->
           if Buffer.access env.buffer ~table:table.Table.name ~page:page_no then
             io := !io +. e.Costs.io_ms;
           Array.iter
             (fun row ->
               incr scanned;
               let t = tuple_of_row attrs row in
               if (not has_residual) || eval_pred env residual t then rows := t :: !rows)
             page);
       let rows = List.rev !rows in
       (* every scanned object is materialized (the paper's Output cost),
          whether or not it passes the residual predicate *)
       let total =
         e.Costs.startup_ms +. !io
         +. (if has_residual then float_of_int !scanned *. pred_cost env residual else 0.)
         +. (float_of_int !scanned *. e.Costs.output_ms)
       in
       { rows; first = e.Costs.startup_ms +. e.Costs.io_ms; total }
     | Physical.Index_scan { attr; op; value } ->
       let idx =
         match Table.index table attr with
         | Some i -> i
         | None -> raise (Err.Plan_error ("no index on " ^ attr))
       in
       let rids = Btree.search idx op value in
       let io = ref 0. and rows = ref [] in
       List.iter
         (fun rid ->
           if Buffer.access env.buffer ~table:table.Table.name ~page:rid.Btree.page
           then io := !io +. e.Costs.io_ms;
           let t = tuple_of_row attrs (Table.fetch table rid) in
           if (not has_residual) || eval_pred env residual t then rows := t :: !rows)
         rids;
       let rows = List.rev !rows in
       let fetched = float_of_int (List.length rids) in
       let probe = float_of_int idx.Btree.height *. e.Costs.probe_ms in
       (* every fetched object is materialized, as above *)
       let total =
         e.Costs.startup_ms +. probe +. !io
         +. (if has_residual then fetched *. pred_cost env residual else 0.)
         +. (fetched *. e.Costs.output_ms)
       in
       { rows; first = e.Costs.startup_ms +. probe +. e.Costs.io_ms; total })
  | Physical.Pfilter (child, pred) ->
    let c = run env child in
    let rows = List.filter (eval_pred env pred) c.rows in
    let per_row = pred_cost env pred in
    let total =
      c.total
      +. (float_of_int (List.length c.rows) *. per_row)
      +. (float_of_int (List.length rows) *. e.Costs.output_ms)
    in
    { rows; first = c.first +. per_row; total }
  | Physical.Pproject (child, attrs) ->
    let c = run env child in
    let rows = List.map (fun t -> Tuple.project t attrs) c.rows in
    { rows;
      first = c.first;
      total = c.total +. (float_of_int (List.length rows) *. e.Costs.eval_ms) }
  | Physical.Psort (child, keys) ->
    let c = run env child in
    let cmp a b =
      let rec go = function
        | [] -> 0
        | (k, ord) :: rest ->
          let r = Constant.compare (Tuple.get a k) (Tuple.get b k) in
          let r = match ord with Plan.Asc -> r | Plan.Desc -> -r in
          if r <> 0 then r else go rest
      in
      go keys
    in
    let rows = List.stable_sort cmp c.rows in
    let n = List.length rows in
    let first = c.total +. (e.Costs.sort_ms *. nlog2n n) in
    { rows; first; total = first +. (float_of_int n *. e.Costs.output_ms) }
  | Physical.Pnested_join (left, right, pred) ->
    let l = run env left and r = run env right in
    (* hash path: pick one equi conjunct between the two sides as build key *)
    let equi_key =
      if not env.hash_join then None
      else
        let in_rows rows a =
          match rows with
          | t :: _ -> (try ignore (Tuple.get t a); true with _ -> false)
          | [] -> false
        in
        List.find_map
          (function
            | Pred.Attr_cmp (a, Pred.Eq, b) ->
              if in_rows l.rows a && in_rows r.rows b then Some (a, b)
              else if in_rows l.rows b && in_rows r.rows a then Some (b, a)
              else None
            | _ -> None)
          (Pred.conjuncts pred)
    in
    (match equi_key with
     | Some (lkey, rkey) ->
       let table = Hashtbl.create (List.length r.rows) in
       List.iter
         (fun rt -> Hashtbl.add table (Constant.to_string (Tuple.get rt rkey)) rt)
         r.rows;
       let candidates = ref 0 in
       let rows =
         List.concat_map
           (fun lt ->
             let matches = Hashtbl.find_all table (Constant.to_string (Tuple.get lt lkey)) in
             candidates := !candidates + List.length matches;
             List.filter_map
               (fun rt ->
                 let t = Tuple.concat lt rt in
                 if eval_pred env pred t then Some t else None)
               matches)
           l.rows
       in
       let emitted = float_of_int (List.length rows) in
       let build_probe =
         float_of_int (List.length l.rows + List.length r.rows) *. e.Costs.eval_ms
       in
       let total =
         l.total +. r.total +. build_probe
         +. (float_of_int !candidates *. pred_cost env pred)
         +. (emitted *. e.Costs.output_ms)
       in
       { rows; first = l.first +. r.total +. e.Costs.eval_ms; total }
     | None ->
       let rows =
         List.concat_map
           (fun lt ->
             List.filter_map
               (fun rt ->
                 let t = Tuple.concat lt rt in
                 if eval_pred env pred t then Some t else None)
               r.rows)
           l.rows
       in
       let pairs = float_of_int (List.length l.rows * List.length r.rows) in
       let emitted = float_of_int (List.length rows) in
       let total =
         l.total +. r.total
         +. (pairs *. pred_cost env pred)
         +. (emitted *. e.Costs.output_ms)
       in
       { rows; first = l.first +. r.first +. e.Costs.eval_ms; total })
  | Physical.Pindex_join { outer; table; binding; outer_attr; inner_attr; residual } ->
    let o = run env outer in
    let idx =
      match Table.index table inner_attr with
      | Some i -> i
      | None -> raise (Err.Plan_error ("no index on " ^ inner_attr))
    in
    let attrs = qualified_attrs table binding in
    let io = ref 0. and probes = ref 0 and rows = ref [] and fetched = ref 0 in
    List.iter
      (fun ot ->
        incr probes;
        let key = Tuple.get ot outer_attr in
        List.iter
          (fun rid ->
            if Buffer.access env.buffer ~table:table.Table.name ~page:rid.Btree.page
            then io := !io +. e.Costs.io_ms;
            incr fetched;
            let t = Tuple.concat ot (tuple_of_row attrs (Table.fetch table rid)) in
            if Pred.equal residual Pred.True || eval_pred env residual t then
              rows := t :: !rows)
          (Btree.lookup idx key))
      o.rows;
    let rows = List.rev !rows in
    let emitted = float_of_int (List.length rows) in
    let probe_cost =
      float_of_int !probes *. float_of_int idx.Btree.height *. e.Costs.probe_ms
    in
    let residual_cost =
      if Pred.equal residual Pred.True then 0.
      else float_of_int !fetched *. pred_cost env residual
    in
    let total =
      o.total +. probe_cost +. !io +. residual_cost
      +. (float_of_int !fetched *. e.Costs.output_ms)
      +. (emitted *. e.Costs.output_ms)
    in
    { rows;
      first = o.first +. (float_of_int idx.Btree.height *. e.Costs.probe_ms) +. e.Costs.io_ms;
      total }
  | Physical.Punion (left, right) ->
    let l = run env left and r = run env right in
    let rows = l.rows @ r.rows in
    { rows;
      first = Float.min l.first r.first;
      total =
        l.total +. r.total +. (float_of_int (List.length rows) *. e.Costs.output_ms) }
  | Physical.Pdedup child ->
    let c = run env child in
    let seen = Hashtbl.create 64 in
    let rows =
      List.filter
        (fun t ->
          let k = Tuple.key t in
          if Hashtbl.mem seen k then false
          else begin
            Hashtbl.add seen k ();
            true
          end)
        c.rows
    in
    let n = List.length c.rows in
    let first = c.total +. (e.Costs.sort_ms *. nlog2n n) in
    { rows; first; total = first +. (float_of_int (List.length rows) *. e.Costs.output_ms) }
  | Physical.Paggregate (child, agg) ->
    let c = run env child in
    let groups : (string, Tuple.t * Tuple.t list ref) Hashtbl.t = Hashtbl.create 64 in
    let order = ref [] in
    List.iter
      (fun t ->
        let key =
          String.concat "\x00"
            (List.map (fun a -> Constant.to_string (Tuple.get t a)) agg.Plan.group_by)
        in
        match Hashtbl.find_opt groups key with
        | Some (_, rows) -> rows := t :: !rows
        | None ->
          Hashtbl.add groups key (t, ref [ t ]);
          order := key :: !order)
      c.rows;
    let aggregate_rows rows (f, input, _) : Constant.t =
      let nums () =
        List.filter_map (fun t -> Constant.to_float_opt (Tuple.get t input)) rows
      in
      match f with
      | Plan.Count -> Constant.Int (List.length rows)
      | Plan.Sum -> Constant.Float (List.fold_left ( +. ) 0. (nums ()))
      | Plan.Avg ->
        let xs = nums () in
        if xs = [] then Constant.Null
        else Constant.Float (List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs))
      | Plan.Min ->
        (match rows with
         | [] -> Constant.Null
         | t0 :: _ ->
           List.fold_left
             (fun acc t ->
               let v = Tuple.get t input in
               if Constant.compare v acc < 0 then v else acc)
             (Tuple.get t0 input) rows)
      | Plan.Max ->
        (match rows with
         | [] -> Constant.Null
         | t0 :: _ ->
           List.fold_left
             (fun acc t ->
               let v = Tuple.get t input in
               if Constant.compare v acc > 0 then v else acc)
             (Tuple.get t0 input) rows)
    in
    let out_attrs =
      Array.of_list (agg.Plan.group_by @ List.map (fun (_, _, o) -> o) agg.Plan.aggs)
    in
    let rows =
      List.rev_map
        (fun key ->
          let witness, rows = Hashtbl.find groups key in
          let group_vals = List.map (fun a -> Tuple.get witness a) agg.Plan.group_by in
          let agg_vals = List.map (aggregate_rows !rows) agg.Plan.aggs in
          Tuple.make out_attrs (Array.of_list (group_vals @ agg_vals)))
        !order
    in
    let n = float_of_int (List.length c.rows) in
    let first = c.total +. (n *. e.Costs.eval_ms) in
    { rows;
      first;
      total = first +. (float_of_int (List.length rows) *. e.Costs.output_ms) }

(* Execute and measure in one step. *)
let measure env p : Tuple.t list * vector =
  let r = run env p in
  (r.rows, vector_of_result r)
