(* Columnar tuple batches for the vectorized executor. A batch holds a run
   of rows that share one schema, stored column-wise: int and float columns
   are unboxed ([int array] / [float array]); everything else — strings,
   nulls, booleans, mixed columns — falls back to a boxed [Constant.t array].
   The builder types a column optimistically from its first value and
   promotes to boxed on the first mismatch, so clean numeric data never
   boxes while dirty data stays correct.

   Invariants relied on by the batch execution path in {!Run}:
   - [len > 0] for every batch an operator emits (empty batches are dropped);
   - [bytes] is the exact sum of [Tuple.byte_size] over the batch's rows
     (integer arithmetic, so carrying it incrementally is exact);
   - attribute resolution ([find_col]) matches [Tuple.get]: exact match
     first, then a unique unqualified-suffix match, else [Err.Eval_error]. *)

open Disco_common

type col =
  | Ints of int array
  | Floats of float array
  | Boxed of Constant.t array

type t = {
  attrs : string array;
  cols : col array;
  len : int;
  bytes : int;  (* sum of Constant.byte_size over all cells *)
  sel : int array option;
      (* selection vector: when [Some s], logical row [i] lives at physical
         index [s.(i)] of every column (and [len = Array.length s]). A
         filter emits this instead of gathering fresh columns — the classic
         vectorized-executor trick that makes a 50%-selective filter cost a
         selection array rather than a copy of half the data. *)
}

let length b = b.len
let attrs b = b.attrs
let byte_size b = b.bytes

(* Logical-to-physical row translation; the identity for dense batches. *)
let indexer b =
  match b.sel with
  | None -> fun i -> i
  | Some s -> fun i -> Array.unsafe_get s i

let phys b i = match b.sel with None -> i | Some s -> s.(i)

(* Box one cell; [i] is a logical row index. *)
let cell b c i =
  let i = phys b i in
  match b.cols.(c) with
  | Ints a -> Constant.Int a.(i)
  | Floats a -> Constant.Float a.(i)
  | Boxed a -> a.(i)

(* Compare two cells without boxing when both columns are unboxed; must
   agree with [Constant.compare] on the boxed values (it does: Int/Int is
   [Int.compare], Float/Float is [Float.compare], and Int/Float coerces the
   int side to float). *)
let cell_compare ba ca ia bb cb ib =
  let pa = phys ba ia and pb = phys bb ib in
  match ba.cols.(ca), bb.cols.(cb) with
  | Ints xs, Ints ys -> Int.compare xs.(pa) ys.(pb)
  | Floats xs, Floats ys -> Float.compare xs.(pa) ys.(pb)
  | Ints xs, Floats ys -> Float.compare (float_of_int xs.(pa)) ys.(pb)
  | Floats xs, Ints ys -> Float.compare xs.(pa) (float_of_int ys.(pb))
  | _ -> Constant.compare (cell ba ca ia) (cell bb cb ib)

(* Attribute resolution, mirroring [Tuple.get]: first exact name match wins;
   otherwise a unique match on the unqualified suffix; otherwise the same
   [Err.Eval_error] a tuple lookup would raise. *)
let find_col_opt b name =
  let n = Array.length b.attrs in
  let rec exact i =
    if i >= n then None
    else if String.equal b.attrs.(i) name then Some i
    else exact (i + 1)
  in
  match exact 0 with
  | Some _ as r -> r
  | None ->
    let matches = ref [] in
    Array.iteri
      (fun i a ->
        match Disco_algebra.Plan.split_attr a with
        | Some (_, base) when String.equal base name -> matches := i :: !matches
        | _ -> ())
      b.attrs;
    (match !matches with [ i ] -> Some i | _ -> None)

let find_col b name =
  match find_col_opt b name with
  | Some i -> i
  | None ->
    raise
      (Err.Eval_error
         (Fmt.str "attribute %S not found in tuple (%s)" name
            (String.concat ", " (Array.to_list b.attrs))))

(* The whole row, boxed. *)
let row b i = Array.init (Array.length b.cols) (fun c -> cell b c i)

let tuple_at b i = Tuple.make b.attrs (row b i)

let to_tuples b = List.init b.len (fun i -> tuple_at b i)

(* Rendered-values key, identical to [Tuple.key] on [tuple_at b i]. *)
let row_key b i =
  String.concat "\x00"
    (List.init (Array.length b.cols) (fun c -> Constant.to_string (cell b c i)))

let row_bytes b i =
  let i = phys b i in
  let acc = ref 0 in
  for c = 0 to Array.length b.cols - 1 do
    acc :=
      !acc
      +
      match b.cols.(c) with
      | Ints _ -> 8
      | Floats _ -> 8
      | Boxed a -> Constant.byte_size a.(i)
  done;
  !acc

let same_schema a b =
  a.attrs == b.attrs
  || (Array.length a.attrs = Array.length b.attrs
      && Array.for_all2 String.equal a.attrs b.attrs)

(* --- Builder --------------------------------------------------------------- *)

(* Column buffers start untyped; the first row decides Ints / Floats / Boxed
   per column, and a later mismatching value promotes the buffer to boxed,
   copying the prefix. *)
type buf =
  | Bempty
  | Bints of int array
  | Bfloats of float array
  | Bboxed of Constant.t array

type builder = {
  battrs : string array;
  mutable bufs : buf array;
  mutable blen : int;
  mutable cap : int;
  mutable bbytes : int;
}

let builder ?(hint = 64) attrs =
  { battrs = attrs;
    bufs = Array.make (Array.length attrs) Bempty;
    blen = 0;
    cap = max hint 1;
    bbytes = 0 }

let builder_len bld = bld.blen

let grow bld =
  let cap' = bld.cap * 2 in
  bld.bufs <-
    Array.map
      (function
        | Bempty -> Bempty
        | Bints a ->
          let a' = Array.make cap' 0 in
          Array.blit a 0 a' 0 bld.blen; Bints a'
        | Bfloats a ->
          let a' = Array.make cap' 0. in
          Array.blit a 0 a' 0 bld.blen; Bfloats a'
        | Bboxed a ->
          let a' = Array.make cap' Constant.Null in
          Array.blit a 0 a' 0 bld.blen; Bboxed a')
      bld.bufs;
  bld.cap <- cap'

let box_prefix bld = function
  | Bempty -> Array.make bld.cap Constant.Null
  | Bints a -> Array.init bld.cap (fun i -> if i < bld.blen then Constant.Int a.(i) else Constant.Null)
  | Bfloats a ->
    Array.init bld.cap (fun i -> if i < bld.blen then Constant.Float a.(i) else Constant.Null)
  | Bboxed a -> a

(* Store cell [v] at column [c], row [bld.blen]; caller bumps [blen]. *)
let put bld c (v : Constant.t) =
  let i = bld.blen in
  (match bld.bufs.(c), v with
   | Bints a, Constant.Int x -> a.(i) <- x
   | Bfloats a, Constant.Float x -> a.(i) <- x
   | Bboxed a, v -> a.(i) <- v
   | Bempty, Constant.Int x ->
     let a = Array.make bld.cap 0 in
     a.(i) <- x;
     bld.bufs.(c) <- Bints a
   | Bempty, Constant.Float x ->
     let a = Array.make bld.cap 0. in
     a.(i) <- x;
     bld.bufs.(c) <- Bfloats a
   | (Bempty | Bints _ | Bfloats _), v ->
     let a = box_prefix bld bld.bufs.(c) in
     a.(i) <- v;
     bld.bufs.(c) <- Bboxed a);
  bld.bbytes <- bld.bbytes + Constant.byte_size v

let add_row bld (values : Constant.t array) =
  if bld.blen >= bld.cap then grow bld;
  Array.iteri (fun c v -> put bld c v) values;
  bld.blen <- bld.blen + 1

(* Append row [i] of batch [src]; schemas must already agree (column count —
   callers key output builders by schema). Unboxed-to-unboxed copies avoid
   boxing. *)
let add_from bld (src : t) i =
  if bld.blen >= bld.cap then grow bld;
  let j = bld.blen in
  let ip = phys src i in
  Array.iteri
    (fun c scol ->
      match bld.bufs.(c), scol with
      | Bints a, Ints s ->
        a.(j) <- s.(ip);
        bld.bbytes <- bld.bbytes + 8
      | Bfloats a, Floats s ->
        a.(j) <- s.(ip);
        bld.bbytes <- bld.bbytes + 8
      | Bempty, Ints s ->
        let a = Array.make bld.cap 0 in
        a.(j) <- s.(ip);
        bld.bufs.(c) <- Bints a;
        bld.bbytes <- bld.bbytes + 8
      | Bempty, Floats s ->
        let a = Array.make bld.cap 0. in
        a.(j) <- s.(ip);
        bld.bufs.(c) <- Bfloats a;
        bld.bbytes <- bld.bbytes + 8
      | _, _ -> put bld c (cell src c i))
    src.cols;
  bld.blen <- j + 1

(* Append the concatenation of row [li] of [l] and row [ri] of [r]; the
   builder's schema is [l.attrs ++ r.attrs]. *)
let add_pair_from bld (l : t) li (r : t) ri =
  if bld.blen >= bld.cap then grow bld;
  let j = bld.blen in
  let lw = Array.length l.cols in
  let one off (src : t) c i =
    let ip = phys src i in
    match bld.bufs.(off + c), src.cols.(c) with
    | Bints a, Ints s ->
      a.(j) <- s.(ip);
      bld.bbytes <- bld.bbytes + 8
    | Bfloats a, Floats s ->
      a.(j) <- s.(ip);
      bld.bbytes <- bld.bbytes + 8
    | Bempty, Ints s ->
      let a = Array.make bld.cap 0 in
      a.(j) <- s.(ip);
      bld.bufs.(off + c) <- Bints a;
      bld.bbytes <- bld.bbytes + 8
    | Bempty, Floats s ->
      let a = Array.make bld.cap 0. in
      a.(j) <- s.(ip);
      bld.bufs.(off + c) <- Bfloats a;
      bld.bbytes <- bld.bbytes + 8
    | _, _ -> put bld (off + c) (cell src c i)
  in
  for c = 0 to lw - 1 do one 0 l c li done;
  for c = 0 to Array.length r.cols - 1 do one lw r c ri done;
  bld.blen <- j + 1

(* Borrow the builder's rows as a batch WITHOUT transferring ownership: the
   column arrays are shared and may be longer than [len]. Valid only until
   the next mutation of the builder; callers must copy anything they keep
   (see [copy] / [filter]) and then [reset]. This is what lets a residual
   scan reuse one set of staging arrays for the whole scan instead of
   flushing a fresh major-heap allocation per batch just to filter it. *)
let unsafe_view bld : t =
  let view = function
    | Bempty -> Boxed [||]
    | Bints a -> Ints a
    | Bfloats a -> Floats a
    | Bboxed a -> Boxed a
  in
  { attrs = bld.battrs; cols = Array.map view bld.bufs; len = bld.blen;
    bytes = bld.bbytes; sel = None }

(* Drop the accumulated rows but keep the buffers (and their types) for the
   next fill. Pairs with [unsafe_view]. *)
let reset bld =
  bld.blen <- 0;
  bld.bbytes <- 0

(* A batch owning freshly trimmed (and, for selection-vector batches,
   gathered) copies of [b]'s columns — densifies, detaching a borrowed view
   or a filter result from the arrays it shares. *)
let copy (b : t) : t =
  match b.sel with
  | None ->
    let cols =
      Array.map
        (function
          | Ints a -> Ints (Array.sub a 0 b.len)
          | Floats a -> Floats (Array.sub a 0 b.len)
          | Boxed a -> Boxed (Array.sub a 0 b.len))
        b.cols
    in
    { b with cols }
  | Some s ->
    let n = b.len in
    let cols =
      Array.map
        (function
          | Ints a -> Ints (Array.init n (fun k -> a.(s.(k))))
          | Floats a -> Floats (Array.init n (fun k -> a.(s.(k))))
          | Boxed a -> Boxed (Array.init n (fun k -> a.(s.(k)))))
        b.cols
    in
    { b with cols; sel = None }

(* Emit the accumulated rows as a batch and reset the builder. *)
let flush bld : t =
  let n = bld.blen in
  let trim = function
    | Bempty -> Boxed [||]
    | Bints a -> Ints (if Array.length a = n then a else Array.sub a 0 n)
    | Bfloats a -> Floats (if Array.length a = n then a else Array.sub a 0 n)
    | Bboxed a -> Boxed (if Array.length a = n then a else Array.sub a 0 n)
  in
  let b =
    { attrs = bld.battrs; cols = Array.map trim bld.bufs; len = n;
      bytes = bld.bbytes; sel = None }
  in
  bld.bufs <- Array.make (Array.length bld.battrs) Bempty;
  bld.blen <- 0;
  bld.bbytes <- 0;
  b

(* --- Selection ------------------------------------------------------------- *)

(* Keep the rows whose mask byte is non-zero. [keep] is their count. The
   result SHARES [b]'s column arrays and carries a selection vector instead
   of gathering — at high row counts the gather's allocation churn (and the
   major-GC work it triggers against a large live heap) costs more than the
   whole filter. Consumers translate through [indexer]/[phys]. *)
let filter b (mask : Bytes.t) ~keep : t =
  if keep = b.len then b
  else begin
    let sel = Array.make (max keep 1) 0 in
    let j = ref 0 in
    (match b.sel with
     | None ->
       for i = 0 to b.len - 1 do
         if Bytes.unsafe_get mask i <> '\000' then begin
           Array.unsafe_set sel !j i;
           incr j
         end
       done
     | Some s ->
       for i = 0 to b.len - 1 do
         if Bytes.unsafe_get mask i <> '\000' then begin
           Array.unsafe_set sel !j (Array.unsafe_get s i);
           incr j
         end
       done);
    let sel = if keep = Array.length sel then sel else Array.sub sel 0 keep in
    let bytes = ref 0 in
    Array.iter
      (function
        | Ints _ | Floats _ -> bytes := !bytes + (8 * keep)
        | Boxed a ->
          for k = 0 to keep - 1 do
            bytes := !bytes + Constant.byte_size a.(Array.unsafe_get sel k)
          done)
      b.cols;
    { b with sel = Some sel; len = keep; bytes = !bytes }
  end

(* Restrict to a subset of columns (projection); shares column arrays. *)
let select_cols b names =
  let idx = List.map (fun n -> find_col b n) names in
  let cols = Array.of_list (List.map (fun i -> b.cols.(i)) idx) in
  let bytes = ref 0 in
  Array.iter
    (function
      | Ints _ | Floats _ -> bytes := !bytes + (8 * b.len)
      | Boxed a ->
        for i = 0 to b.len - 1 do
          bytes := !bytes + Constant.byte_size a.(phys b i)
        done)
    cols;
  { attrs = Array.of_list names; cols; len = b.len; bytes = !bytes; sel = b.sel }

(* Zero-copy batch over a table's columnar mirror: the column arrays are
   shared, not copied — a full scan's output references storage the way any
   vectorized engine's scan vectors do. Safe because batches are read-only
   after construction. [n] is the table's row count (= every column's
   length). *)
let of_table_columns attrs (cols : Disco_storage.Table.col array) n : t =
  let bytes = ref 0 in
  let cols =
    Array.map
      (function
        | Disco_storage.Table.Cints a ->
          bytes := !bytes + (8 * n);
          Ints a
        | Disco_storage.Table.Cfloats a ->
          bytes := !bytes + (8 * n);
          Floats a
        | Disco_storage.Table.Cboxed a ->
          Array.iter (fun v -> bytes := !bytes + Constant.byte_size v) a;
          Boxed a)
      cols
  in
  { attrs; cols; len = n; bytes = !bytes; sel = None }

(* Convert a tuple list (one schema run is NOT assumed: the caller chunks on
   schema change) — helper for materialized inputs lives in Run. *)
let of_tuples attrs (ts : Tuple.t list) : t =
  let bld = builder ~hint:(max (List.length ts) 1) attrs in
  List.iter (fun (t : Tuple.t) -> add_row bld t.Tuple.values) ts;
  flush bld
