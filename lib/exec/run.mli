(** The measuring evaluator: executes a physical plan over the simulated
    storage engine and accounts simulated time — IO through the buffer pool,
    CPU per predicate, materialization per object touched, delivery per
    result. The resulting measured cost vectors play the role of the paper's
    "real measurements of an object database system" (§5); they are also what
    the historical-cost extension feeds back into the cost model.

    Two engines share the operators: the original tuple-at-a-time
    interpreter, and a batched engine streaming columnar {!Batch.t} chunks
    with predicates compiled once per batch ({!Bpred}). Both replay the same
    buffer-pool accesses and charge simulated time through shared cost
    formulas, so rows and simulated costs are bit-identical between engines;
    only [wall_ms] — the real clock on the engine itself — differs. *)

open Disco_storage

type env = {
  engine : Costs.engine;
  buffer : Buffer.t;
  hash_join : bool;
      (** the mediator's composition engine hashes equi-joins over
          materialized subresults; the simulated 1997-era sources do not *)
  adts : Adt.t list;
      (** ADT operation implementations available to this engine (paper §7);
          shipped to the mediator at registration, like cost rules *)
}

(** Which engine executes the plan. *)
type mode = Tuple_at_a_time | Batched of { batch_size : int }

val default_batch_size : int
(** 1024 rows per batch unless overridden. *)

val default_mode : unit -> mode
(** The session default: [Batched] when [DISCO_ENGINE] is
    [batch|batched|vector|vectorized] (batch size from [DISCO_BATCH]),
    [Tuple_at_a_time] otherwise. *)

val set_default_mode : mode -> unit

type result = {
  rows : Tuple.t list;
  first : float;  (** simulated ms until the first object *)
  total : float;  (** simulated ms until completion *)
  wall_ms : float;  (** real elapsed ms of the engine itself *)
}

(** The measured counterpart of the estimator's five cost variables, plus
    the real clock. *)
type vector = {
  count : float;
  size : float;
  time_first : float;
  time_next : float;
  total_time : float;
  wall_ms : float;
}

val vector_of_result : result -> vector

val to_cost_vars : vector -> (Disco_costlang.Ast.cost_var * float) list

val pp_vector : Format.formatter -> vector -> unit

type failure_reason = Timeout | Transient | Unavailable

(** Why a subplan submitted to a wrapper did not come back. Produced by the
    mediator's submit policy once its retry budget for the attempt is spent;
    typed so callers can replan around the failed source or report precisely
    instead of swallowing a generic exception. *)
type submit_failure = {
  source : string;
  attempts : int;        (** submits tried, including the failing one *)
  elapsed_ms : float;    (** simulated ms burnt across all attempts *)
  reason : failure_reason;  (** of the final attempt *)
}

exception Submit_error of submit_failure

val reason_to_string : failure_reason -> string
val pp_submit_failure : Format.formatter -> submit_failure -> unit

val run : ?mode:mode -> env -> Physical.t -> result
(** Execute a physical plan, producing rows and simulated times. [mode]
    defaults to {!default_mode}; both engines produce the same rows in the
    same order and bit-identical simulated times.

    Concurrency contract: [run] mutates [env.buffer] (the buffer pool's
    replacement state), so a given [env] must be driven from one domain at
    a time and two evaluations over the same [env] are order-dependent.
    This is why the mediator's scatter-gather path parallelizes {e
    upstream} of [run]: wrapper subplans execute concurrently in their own
    wrappers (each with its own [env]) during translation to {!Physical.t},
    arrive here as {!Physical.Pmaterialized} leaves — rows plus the
    simulated times already charged — and the mediator-side composition
    that [run] performs stays single-domain and deterministic. *)

val measure : ?mode:mode -> env -> Physical.t -> Tuple.t list * vector
(** {!run} followed by {!vector_of_result}. In batched mode the vector's
    count and size come from incrementally-carried totals rather than a
    walk over the result rows. *)

(** {1 Batched execution}

    The batched result keeps rows in columnar form; a result is a list of
    batches (unions legally mix schemas in one stream), every batch
    non-empty, concatenated row order equal to the tuple engine's. *)

type batched_result = {
  batches : Batch.t list;
  bcount : int;   (** total rows across [batches] *)
  bbytes : int;   (** total {!Tuple.byte_size} across [batches] *)
  bfirst : float;
  btotal : float;
  bwall_ms : float;
}

val run_batched : ?batch_size:int -> env -> Physical.t -> batched_result
(** Execute with the batched engine, keeping the columnar result. Same
    concurrency contract as {!run}. *)

val rows_of_batched : batched_result -> Tuple.t list

val vector_of_batched : batched_result -> vector
(** Built from the carried [bcount]/[bbytes] — O(#batches), not O(rows). *)
