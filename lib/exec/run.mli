(** The measuring evaluator: executes a physical plan over the simulated
    storage engine and accounts simulated time — IO through the buffer pool,
    CPU per predicate, materialization per object touched, delivery per
    result. The resulting measured cost vectors play the role of the paper's
    "real measurements of an object database system" (§5); they are also what
    the historical-cost extension feeds back into the cost model. *)

open Disco_storage

type env = {
  engine : Costs.engine;
  buffer : Buffer.t;
  hash_join : bool;
      (** the mediator's composition engine hashes equi-joins over
          materialized subresults; the simulated 1997-era sources do not *)
  adts : Adt.t list;
      (** ADT operation implementations available to this engine (paper §7);
          shipped to the mediator at registration, like cost rules *)
}

type result = {
  rows : Tuple.t list;
  first : float;  (** simulated ms until the first object *)
  total : float;  (** simulated ms until completion *)
}

(** The measured counterpart of the estimator's five cost variables. *)
type vector = {
  count : float;
  size : float;
  time_first : float;
  time_next : float;
  total_time : float;
}

val vector_of_result : result -> vector

val to_cost_vars : vector -> (Disco_costlang.Ast.cost_var * float) list

val pp_vector : Format.formatter -> vector -> unit

type failure_reason = Timeout | Transient | Unavailable

(** Why a subplan submitted to a wrapper did not come back. Produced by the
    mediator's submit policy once its retry budget for the attempt is spent;
    typed so callers can replan around the failed source or report precisely
    instead of swallowing a generic exception. *)
type submit_failure = {
  source : string;
  attempts : int;        (** submits tried, including the failing one *)
  elapsed_ms : float;    (** simulated ms burnt across all attempts *)
  reason : failure_reason;  (** of the final attempt *)
}

exception Submit_error of submit_failure

val reason_to_string : failure_reason -> string
val pp_submit_failure : Format.formatter -> submit_failure -> unit

val run : env -> Physical.t -> result
(** Execute a physical plan, producing rows and simulated times.

    Concurrency contract: [run] mutates [env.buffer] (the buffer pool's
    replacement state), so a given [env] must be driven from one domain at
    a time and two evaluations over the same [env] are order-dependent.
    This is why the mediator's scatter-gather path parallelizes {e
    upstream} of [run]: wrapper subplans execute concurrently in their own
    wrappers (each with its own [env]) during translation to {!Physical.t},
    arrive here as {!Physical.Pmaterialized} leaves — rows plus the
    simulated times already charged — and the mediator-side composition
    that [run] performs stays single-domain and deterministic. *)

val measure : env -> Physical.t -> Tuple.t list * vector
(** {!run} followed by {!vector_of_result}. *)
