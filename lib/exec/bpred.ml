(* Vectorized predicate evaluation: compile a predicate once per batch into
   a selection mask (one byte per row), or once per batch pair into a
   two-row evaluator for joins — instead of re-resolving attribute names and
   re-dispatching on constructors per tuple, as [Pred.eval] does.

   Semantics are pinned to the tuple path:
   - attribute resolution mirrors [Tuple.get] (via [Batch.find_col]), and
     for pairs resolves over the concatenated schema exactly like
     [Tuple.get] on [Tuple.concat lt rt];
   - comparison agrees with [Cmp.eval]/[Constant.compare], including the
     Int/Float coercion and the rank order across constructors;
   - the right operand of [And]/[Or] is only compiled and evaluated when
     some row short-circuits into it, so a resolution error in a dead
     branch raises in the batch path exactly when it would have raised in
     the tuple path. *)

open Disco_common
open Disco_algebra

let holds (op : Cmp.t) c =
  match op with
  | Cmp.Eq -> c = 0
  | Ne -> c <> 0
  | Lt -> c < 0
  | Le -> c <= 0
  | Gt -> c > 0
  | Ge -> c >= 0

let with_mask n f =
  let m = Bytes.make n '\000' in
  let cnt = ref 0 in
  for i = 0 to n - 1 do
    if f i then begin
      Bytes.unsafe_set m i '\001';
      incr cnt
    end
  done;
  (m, !cnt)

(* attr-vs-constant column comparison. [ix] translates logical row indices
   through the batch's selection vector (identity for dense batches). *)
let cmp_mask (b : Batch.t) ci op v =
  let n = b.Batch.len in
  let ix = Batch.indexer b in
  match b.Batch.cols.(ci), v with
  | Batch.Ints a, Constant.Int x ->
    (match op with
     | Cmp.Eq -> with_mask n (fun i -> a.(ix i) = x)
     | Ne -> with_mask n (fun i -> a.(ix i) <> x)
     | Lt -> with_mask n (fun i -> a.(ix i) < x)
     | Le -> with_mask n (fun i -> a.(ix i) <= x)
     | Gt -> with_mask n (fun i -> a.(ix i) > x)
     | Ge -> with_mask n (fun i -> a.(ix i) >= x))
  | Batch.Ints a, Constant.Float x ->
    with_mask n (fun i -> holds op (Float.compare (float_of_int a.(ix i)) x))
  | Batch.Floats a, Constant.Float x ->
    with_mask n (fun i -> holds op (Float.compare a.(ix i) x))
  | Batch.Floats a, Constant.Int xi ->
    let x = float_of_int xi in
    with_mask n (fun i -> holds op (Float.compare a.(ix i) x))
  | Batch.Ints _, v ->
    (* non-numeric constant vs a numeric column: the comparison is decided
       by constructor rank alone, so the whole column answers alike *)
    let r = holds op (Constant.compare (Constant.Int 0) v) in
    with_mask n (fun _ -> r)
  | Batch.Floats _, v ->
    let r = holds op (Constant.compare (Constant.Float 0.) v) in
    with_mask n (fun _ -> r)
  | Batch.Boxed a, v -> with_mask n (fun i -> Cmp.eval op a.(ix i) v)

let attr_mask (b : Batch.t) ci cj op =
  let n = b.Batch.len in
  match b.Batch.cols.(ci), b.Batch.cols.(cj) with
  | Batch.Ints a, Batch.Ints c ->
    let ix = Batch.indexer b in
    (match op with
     | Cmp.Eq -> with_mask n (fun i -> a.(ix i) = c.(ix i))
     | Ne -> with_mask n (fun i -> a.(ix i) <> c.(ix i))
     | Lt -> with_mask n (fun i -> a.(ix i) < c.(ix i))
     | Le -> with_mask n (fun i -> a.(ix i) <= c.(ix i))
     | Gt -> with_mask n (fun i -> a.(ix i) > c.(ix i))
     | Ge -> with_mask n (fun i -> a.(ix i) >= c.(ix i)))
  | _ -> with_mask n (fun i -> holds op (Batch.cell_compare b ci i b cj i))

(* Selection mask of [p] over [b], with its true-count. The right side of a
   conjunction (disjunction) is skipped when no (every) row reaches it —
   the same rows the tuple path's short-circuit would skip. *)
let rec mask ~apply (b : Batch.t) (p : Pred.t) : Bytes.t * int =
  let n = b.Batch.len in
  match p with
  | Pred.True -> (Bytes.make n '\001', n)
  | Pred.Cmp (a, op, v) -> cmp_mask b (Batch.find_col b a) op v
  | Pred.Attr_cmp (a, op, b') ->
    let ci = Batch.find_col b a in
    let cj = Batch.find_col b b' in
    attr_mask b ci cj op
  | Pred.Apply (fn, a, v) ->
    let c = Batch.find_col b a in
    with_mask n (fun i -> apply fn (Batch.cell b c i) v)
  | Pred.And (p, q) ->
    let mp, cp = mask ~apply b p in
    if cp = 0 then (mp, 0)
    else begin
      let mq, _ = mask ~apply b q in
      let cnt = ref 0 in
      for i = 0 to n - 1 do
        if Bytes.unsafe_get mp i <> '\000' then
          if Bytes.unsafe_get mq i <> '\000' then incr cnt
          else Bytes.unsafe_set mp i '\000'
      done;
      (mp, !cnt)
    end
  | Pred.Or (p, q) ->
    let mp, cp = mask ~apply b p in
    if cp = n then (mp, n)
    else begin
      let mq, _ = mask ~apply b q in
      let cnt = ref 0 in
      for i = 0 to n - 1 do
        if Bytes.unsafe_get mp i <> '\000' || Bytes.unsafe_get mq i <> '\000'
        then begin
          Bytes.unsafe_set mp i '\001';
          incr cnt
        end
      done;
      (mp, !cnt)
    end
  | Pred.Not p ->
    let mp, cp = mask ~apply b p in
    for i = 0 to n - 1 do
      Bytes.unsafe_set mp i
        (if Bytes.unsafe_get mp i = '\000' then '\001' else '\000')
    done;
    (mp, n - cp)

(* --- Pair evaluators (joins) ----------------------------------------------- *)

type loc = L of int | R of int

(* Resolution over the concatenated schema, identical to [Tuple.get] on
   [Tuple.concat lt rt]: exact match scans left attrs then right attrs;
   the suffix fallback must be unique across both. *)
let find_pair (l : Batch.t) (r : Batch.t) name : loc =
  let la = l.Batch.attrs and ra = r.Batch.attrs in
  let ln = Array.length la in
  let rec exact i =
    if i < ln then
      if String.equal la.(i) name then Some (L i) else exact (i + 1)
    else if i - ln < Array.length ra then
      if String.equal ra.(i - ln) name then Some (R (i - ln)) else exact (i + 1)
    else None
  in
  match exact 0 with
  | Some loc -> loc
  | None ->
    let matches = ref [] in
    let consider i a =
      match Disco_algebra.Plan.split_attr a with
      | Some (_, base) when String.equal base name -> matches := i :: !matches
      | _ -> ()
    in
    Array.iteri consider la;
    Array.iteri (fun i a -> consider (ln + i) a) ra;
    (match !matches with
     | [ i ] -> if i < ln then L i else R (i - ln)
     | _ ->
       raise
         (Err.Eval_error
            (Fmt.str "attribute %S not found in tuple (%s)" name
               (String.concat ", " (Array.to_list la @ Array.to_list ra)))))

let int_test (op : Cmp.t) : int -> int -> bool =
  match op with
  | Cmp.Eq -> ( = )
  | Ne -> ( <> )
  | Lt -> ( < )
  | Le -> ( <= )
  | Gt -> ( > )
  | Ge -> ( >= )

(* [pair_eval ~apply l r p] compiles [p] into a [fun li ri -> bool] over row
   [li] of [l] concatenated with row [ri] of [r]. Compile it lazily — only
   once a candidate pair actually needs evaluation — so resolution errors
   surface exactly when the tuple path would raise them. *)
let pair_eval ~apply (l : Batch.t) (r : Batch.t) (p : Pred.t) :
    int -> int -> bool =
  let colof = function L c -> l.Batch.cols.(c) | R c -> r.Batch.cols.(c) in
  let lix = Batch.indexer l and rix = Batch.indexer r in
  let cellf = function
    | L c -> fun i _ -> Batch.cell l c i
    | R c -> fun _ j -> Batch.cell r c j
  in
  let rec go = function
    | Pred.True -> fun _ _ -> true
    | Pred.And (p, q) ->
      let f = go p in
      let g = lazy (go q) in
      fun i j -> f i j && (Lazy.force g) i j
    | Pred.Or (p, q) ->
      let f = go p in
      let g = lazy (go q) in
      fun i j -> f i j || (Lazy.force g) i j
    | Pred.Not p ->
      let f = go p in
      fun i j -> not (f i j)
    | Pred.Cmp (a, op, v) ->
      let loc = find_pair l r a in
      (match colof loc, v with
       | Batch.Ints arr, Constant.Int x ->
         let t = int_test op in
         (match loc with
          | L _ -> fun i _ -> t arr.(lix i) x
          | R _ -> fun _ j -> t arr.(rix j) x)
       | _ ->
         let get = cellf loc in
         fun i j -> Cmp.eval op (get i j) v)
    | Pred.Attr_cmp (a, op, b) ->
      let la = find_pair l r a in
      let lb = find_pair l r b in
      (match colof la, colof lb with
       | Batch.Ints xs, Batch.Ints ys ->
         let t = int_test op in
         (match la, lb with
          | L _, R _ -> fun i j -> t xs.(lix i) ys.(rix j)
          | R _, L _ -> fun i j -> t xs.(rix j) ys.(lix i)
          | L _, L _ -> fun i _ -> t xs.(lix i) ys.(lix i)
          | R _, R _ -> fun _ j -> t xs.(rix j) ys.(rix j))
       | _ ->
         let ga = cellf la and gb = cellf lb in
         fun i j -> Cmp.eval op (ga i j) (gb i j))
    | Pred.Apply (fn, a, v) ->
      let get = cellf (find_pair l r a) in
      fun i j -> apply fn (get i j) v
  in
  go p
