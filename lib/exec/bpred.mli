(** Vectorized predicate evaluation over {!Batch.t}: selection masks for one
    batch and compiled two-row evaluators for join pairs. Semantics are
    pinned to the tuple path ([Pred.eval] over [Tuple.get]), including
    attribute-resolution errors and short-circuit laziness: the right side
    of a conjunction/disjunction is only touched when some row reaches it. *)

open Disco_common
open Disco_algebra

val mask :
  apply:(string -> Constant.t -> Constant.t -> bool) ->
  Batch.t -> Pred.t -> Bytes.t * int
(** Selection mask (one byte per row, non-zero = selected) and its
    true-count. @raise Disco_common.Err.Eval_error as [Tuple.get] would. *)

val pair_eval :
  apply:(string -> Constant.t -> Constant.t -> bool) ->
  Batch.t -> Batch.t -> Pred.t -> int -> int -> bool
(** [pair_eval ~apply l r p li ri] evaluates [p] over row [li] of [l]
    concatenated with row [ri] of [r], resolving names over the
    concatenated schema exactly like [Tuple.get] on [Tuple.concat]. Callers
    should invoke it only once a candidate pair actually needs evaluation,
    so dead-branch resolution errors match the tuple path. *)
