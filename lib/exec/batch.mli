(** Columnar tuple batches for the vectorized executor: a run of rows
    sharing one schema, stored column-wise. Int and float columns are
    unboxed; strings, booleans, nulls and mixed columns fall back to a boxed
    [Constant.t array]. The builder types each column optimistically from
    its first value and promotes to boxed on the first mismatch.

    Invariants the batch execution path relies on: emitted batches are
    non-empty; [byte_size] is the exact integer sum of {!Tuple.byte_size}
    over the rows; {!find_col} resolves names exactly like {!Tuple.get}. *)

open Disco_common

type col =
  | Ints of int array
  | Floats of float array
  | Boxed of Constant.t array

type t = {
  attrs : string array;
  cols : col array;
  len : int;
  bytes : int;
  sel : int array option;
      (** selection vector: when [Some s], logical row [i] of the batch lives
          at physical index [s.(i)] of every column array (and
          [len = Array.length s]). Filters emit this instead of gathering
          columns; read raw columns through {!indexer}. *)
}

val length : t -> int
val attrs : t -> string array
val byte_size : t -> int

val indexer : t -> int -> int
(** Logical-to-physical row translation ([fun i -> i] for dense batches).
    Bind it once outside a loop when indexing [cols] arrays directly. *)

val cell : t -> int -> int -> Constant.t
(** [cell b col row], boxed. *)

val cell_compare : t -> int -> int -> t -> int -> int -> int
(** [cell_compare ba ca ia bb cb ib] agrees with [Constant.compare] on the
    boxed cells but avoids boxing for unboxed column pairs. *)

val find_col_opt : t -> string -> int option

val find_col : t -> string -> int
(** Resolution identical to {!Tuple.get}: exact match first, then a unique
    unqualified-suffix match.
    @raise Disco_common.Err.Eval_error when absent or ambiguous. *)

val row : t -> int -> Constant.t array
val tuple_at : t -> int -> Tuple.t
val to_tuples : t -> Tuple.t list

val row_key : t -> int -> string
(** Identical to [Tuple.key (tuple_at b i)]. *)

val row_bytes : t -> int -> int
(** Identical to [Tuple.byte_size (tuple_at b i)]. *)

val same_schema : t -> t -> bool

type builder

val builder : ?hint:int -> string array -> builder
val builder_len : builder -> int
val add_row : builder -> Constant.t array -> unit

val add_from : builder -> t -> int -> unit
val add_pair_from : builder -> t -> int -> t -> int -> unit
(** Append the concatenation of a row of each input; the builder's schema
    must be the concatenation of the two inputs' schemas. *)

val flush : builder -> t
(** Emit the accumulated rows and reset the builder (possibly empty). *)

val unsafe_view : builder -> t
(** Borrow the builder's rows as a batch without transferring ownership:
    column arrays are shared (and may be longer than the batch). Valid only
    until the builder's next mutation — keep data via {!copy} or {!filter},
    then {!reset}. *)

val reset : builder -> unit
(** Drop the accumulated rows, keeping the buffers for the next fill. *)

val copy : t -> t
(** A dense batch owning fresh copies of the columns: trims over-long shared
    arrays (detaching a {!unsafe_view}) and gathers through any selection
    vector. *)

val filter : t -> Bytes.t -> keep:int -> t
(** Rows whose mask byte is non-zero; [keep] is their count. Shares the
    input's column arrays and sets a selection vector rather than copying —
    {!copy} densifies when the input's storage is about to be reused. *)

val select_cols : t -> string list -> t
(** Projection; shares column arrays.
    @raise Disco_common.Err.Eval_error on unknown/ambiguous names. *)

val of_table_columns : string array -> Disco_storage.Table.col array -> int -> t
(** Zero-copy batch over a table's columnar mirror (column arrays shared,
    not copied); the int is the table's row count. *)

val of_tuples : string array -> Tuple.t list -> t
(** Build from same-schema tuples (the caller chunks on schema change). *)
