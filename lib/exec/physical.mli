(** Physical plans and access-path selection for one execution engine.

    A wrapper translates the logical subplan it receives into a physical plan
    over its stored tables: selections over base scans choose between a full
    scan and an index scan using the engine's true costs (the wrapper knows
    its own engine — which is precisely why its exported cost rules beat the
    mediator's generic model), and joins choose index-nested-loop when the
    inner input is a base scan with an index on the join attribute. *)

open Disco_common
open Disco_algebra
open Disco_storage

type access =
  | Full_scan
  | Index_scan of { attr : string; op : Cmp.t; value : Constant.t }

type t =
  | Pscan of { table : Table.t; binding : string; access : access; residual : Pred.t }
  | Pfilter of t * Pred.t
  | Pproject of t * string list
  | Psort of t * (string * Plan.order) list
  | Pnested_join of t * t * Pred.t
  | Pindex_join of {
      outer : t;
      table : Table.t;      (** inner base table *)
      binding : string;
      outer_attr : string;  (** qualified attribute of the outer tuple *)
      inner_attr : string;  (** unqualified inner attribute (indexed) *)
      residual : Pred.t;
    }
  | Punion of t * t
  | Pdedup of t
  | Paggregate of t * Plan.aggregate
  | Pmaterialized of { rows : Tuple.t list; count : int; first : float; total : float }
      (** An already-computed input (a wrapper subresult at the mediator),
          with the simulated times spent producing it. [count] must equal
          [List.length rows]; it is carried so pretty-printing a plan never
          walks materialized data. *)

val pp : Format.formatter -> t -> unit

val local_attr : binding:string -> string -> string option
(** Strip the binding qualifier when the attribute belongs to [binding]. *)

val index_scan_cost : Costs.engine -> Table.t -> clustered:bool -> int -> float
(** Estimated cost of fetching [k] matches through an index: probe + touched
    pages (contiguous when clustered, Yao otherwise) + materialization. *)

val full_scan_cost : Costs.engine -> Table.t -> matches:int -> float

val choose_access : Costs.engine -> Table.t -> binding:string -> Pred.t -> access * Pred.t
(** Pick the cheapest indexed conjunct if any beats the full scan; returns
    the chosen access and the residual predicate. *)

val of_logical : engine:Costs.engine -> find_table:(string -> Table.t) -> Plan.t -> t
(** Translate a logical subplan (no [submit] nodes — raises
    {!Disco_common.Err.Plan_error} on one) into a physical plan.
    Width-only projections over an inner scan do not hide its indexes from
    join planning. *)
