(* Abstract interpretation of cost formulas over the interval domain.

   The interpreter mirrors the concrete evaluator ({!Disco_costlang.Compile}
   driven by the estimator's resolver): references yield abstract values
   through an environment, wrapper [def]s are inlined (depth-bounded),
   builtins get interval transfer functions, and context functions are
   abstracted by their documented ranges. Where the concrete evaluator
   raises — a zero divisor, a name coerced to a number — the interpreter
   records an issue and continues with a sound over-approximation, so one
   pass surfaces every potential failure in a formula. *)

open Disco_costlang

(* Abstract value of an expression. Mirrors {!Value.t}: [Name]/[Pred] raise
   on numeric coercion concretely, [Opaque] stands for an unknown
   representation (e.g. a head variable that may bind an attribute or a
   constant) whose coercion we cannot judge. *)
type aval =
  | Num of Interval.t
  | Name of string   (* attribute / collection / source name *)
  | Pred of string   (* bound predicate variable *)
  | Opaque

(* A potential runtime failure or range violation found while evaluating. *)
type issue =
  | Div_by_zero of { definite : bool }
  | Numeric_name of string  (* name/predicate used where a number is required *)
  | Unknown_call of string

type env = {
  resolve : string list -> aval;
      (* reference resolution: head variables, earlier body targets, node
         cost variables, [let] parameters, catalog paths *)
  def_of : string -> (string list * Ast.expr) option;
      (* wrapper-defined functions, inlined abstractly *)
}

let max_inline_depth = 16

let interval_of = function
  | Num i -> Some i
  | Name _ | Pred _ | Opaque -> None

let eval env (e : Ast.expr) : aval * issue list =
  let issues = ref [] in
  let emit i = if not (List.mem i !issues) then issues := i :: !issues in
  (* coerce to a number the way [Value.to_num] does: names and predicates
     raise (recorded as an issue), opaque values are given the benefit of
     the doubt *)
  let num = function
    | Num i -> i
    | Name n -> emit (Numeric_name n); Interval.top
    | Pred p -> emit (Numeric_name p); Interval.top
    | Opaque -> Interval.top
  in
  let rec go depth locals (e : Ast.expr) : aval =
    match e with
    | Ast.Num f -> Num (Interval.point f)
    | Ast.Str s -> Name s  (* string literal: argument position only *)
    | Ast.Ref [ x ] when List.mem_assoc x locals -> List.assoc x locals
    | Ast.Ref path -> env.resolve path
    | Ast.Neg e -> Num (Interval.neg (num (go depth locals e)))
    | Ast.Binop (op, a, b) ->
      let ia = num (go depth locals a) in
      let ib = num (go depth locals b) in
      (match op with
       | Ast.Add -> Num (Interval.add ia ib)
       | Ast.Sub -> Num (Interval.sub ia ib)
       | Ast.Mul -> Num (Interval.mul ia ib)
       | Ast.Div ->
         let r, st = Interval.div ia ib in
         (match st with
          | Interval.Div_zero -> emit (Div_by_zero { definite = true })
          | Interval.Div_maybe_zero -> emit (Div_by_zero { definite = false })
          | Interval.Div_ok -> ());
         Num r)
    | Ast.Call (fn, args) -> call depth locals fn args
  and call depth locals fn args =
    (* wrapper-defined functions shadow context functions and builtins,
       matching [Estimator.call_function] *)
    match env.def_of fn with
    | Some (params, body) when List.length params = List.length args ->
      if depth >= max_inline_depth then Opaque
      else
        let vals = List.map (go depth locals) args in
        go (depth + 1) (List.combine params vals) body
    | Some _ -> Opaque (* arity mismatch raises concretely on Vnum count *)
    | None ->
      let nums () = List.map (fun a -> num (go depth locals a)) args in
      let n1 f = match nums () with [ a ] -> Num (f a) | _ -> Opaque in
      let fold f init =
        match nums () with
        | [] -> Opaque
        | vs -> Num (List.fold_left f init vs)
      in
      (match fn with
       | "exp" -> n1 Interval.exp_
       | "ln" -> n1 Interval.ln_
       | "log2" -> n1 Interval.log2_
       | "sqrt" -> n1 Interval.sqrt_
       | "ceil" -> n1 Interval.ceil_
       | "floor" -> n1 Interval.floor_
       | "abs" -> n1 Interval.abs_
       | "pow" ->
         (match nums () with [ a; b ] -> Num (Interval.pow_ a b) | _ -> Opaque)
       | "min" -> fold Interval.min_ (Interval.point infinity)
       | "max" -> fold Interval.max_ (Interval.point neg_infinity)
       | "if" ->
         (match args with
          | [ c; t; e ] ->
            let ic = num (go depth locals c) in
            let at = go depth locals t and ae = go depth locals e in
            (match interval_of at, interval_of ae with
             | Some it, Some ie -> Num (Interval.ite ic it ie)
             | _ -> Opaque)
          | _ -> Opaque)
       | "yao" ->
         (* exact Yao'77 page-fetch fraction: in [0, 1] for every input
            (degenerate inputs clamp); NaN inputs propagate *)
         let anynan = List.exists (fun i -> i.Interval.nan) (nums ()) in
         Num (Interval.with_nan anynan Interval.unit)
       | "yaoapprox" ->
         (* 1 - exp(-selected / pages): in [0, 1) only when the selected
            count is nonnegative. A negative count yields 1 - exp(+x),
            unboundedly negative and — when exp overflows — a true -inf
            whose products can be NaN, so it also taints. *)
         (match nums () with
          | [ m; k ] ->
            let anynan = m.Interval.nan || k.Interval.nan in
            let range =
              if k.Interval.lo >= 0. then Interval.unit
              else Interval.v ~nan:true neg_infinity 1.
            in
            Num (Interval.with_nan anynan range)
          | _ -> Opaque)
       | "sel" | "selectivity" | "indexed" | "rindexed" ->
         List.iter (fun a -> ignore (go depth locals a)) args;
         Num Interval.unit
       | "adtcost" | "adjust" | "nnames" ->
         List.iter (fun a -> ignore (go depth locals a)) args;
         Num Interval.nonneg
       | "groupcard" ->
         List.iter (fun a -> ignore (go depth locals a)) args;
         Num Interval.ge1
       | _ when List.mem fn Builtins.context_function_names ->
         (* a context function without a dedicated transfer function:
            conservatively a nonnegative statistic *)
         List.iter (fun a -> ignore (go depth locals a)) args;
         Num Interval.nonneg
       | _ ->
         List.iter (fun a -> ignore (go depth locals a)) args;
         emit (Unknown_call fn);
         Opaque)
  in
  let v = go 0 [] e in
  (v, List.rev !issues)

let pp_issue ppf = function
  | Div_by_zero { definite = true } -> Format.fprintf ppf "division by zero"
  | Div_by_zero { definite = false } ->
    Format.fprintf ppf "possible division by zero"
  | Numeric_name n ->
    Format.fprintf ppf "%S used where a number is required" n
  | Unknown_call fn -> Format.fprintf ppf "unknown function %S" fn
