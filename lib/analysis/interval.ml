(* Interval arithmetic over the extended reals, the value domain of the
   abstract interpreter ({!Absint}). An element approximates the set of
   floats a formula can evaluate to: every concrete result lies in
   [[lo, hi]], plus NaN when [nan] is set.

   Two conventions keep the domain useful on cost formulas:

   - An infinite endpoint means "unbounded but finite": the inputs we
     abstract (cardinalities, sizes, times) are finite reals with no a
     priori upper bound. Endpoint arithmetic therefore resolves the IEEE
     indeterminate forms 0 * inf and inf - inf to the sound finite-reading
     bound instead of poisoning the interval with NaN — [0, inf) * [0, 1]
     is [0, inf), not "maybe NaN".
   - [nan] is set only by operations that can produce NaN from *finite*
     inputs: ln/log2/sqrt of a possibly-negative argument, pow with a
     possibly-negative base. It then propagates through arithmetic. *)

type t = { lo : float; hi : float; nan : bool }

let v ?(nan = false) lo hi = { lo; hi; nan }

let point f =
  if Float.is_nan f then { lo = neg_infinity; hi = infinity; nan = true }
  else { lo = f; hi = f; nan = false }

let top = { lo = neg_infinity; hi = infinity; nan = false }
let top_nan = { lo = neg_infinity; hi = infinity; nan = true }
let nonneg = { lo = 0.; hi = infinity; nan = false }
let unit = { lo = 0.; hi = 1.; nan = false }
let ge1 = { lo = 1.; hi = infinity; nan = false }

let with_nan n i = if n then { i with nan = true } else i

let contains i x = if Float.is_nan x then i.nan else i.lo <= x && x <= i.hi

let contains_zero i = i.lo <= 0. && i.hi >= 0.
let is_zero i = i.lo = 0. && i.hi = 0. && not i.nan
let definitely_neg i = i.hi < 0.
let maybe_neg i = i.lo < 0.

let join a b =
  { lo = Float.min a.lo b.lo; hi = Float.max a.hi b.hi; nan = a.nan || b.nan }

(* Resolve an indeterminate endpoint (inf - inf) to the requested bound. *)
let ep_lo f = if Float.is_nan f then neg_infinity else f
let ep_hi f = if Float.is_nan f then infinity else f

let add a b =
  { lo = ep_lo (a.lo +. b.lo); hi = ep_hi (a.hi +. b.hi); nan = a.nan || b.nan }

let sub a b =
  { lo = ep_lo (a.lo -. b.hi); hi = ep_hi (a.hi -. b.lo); nan = a.nan || b.nan }

let neg a = { lo = -.a.hi; hi = -.a.lo; nan = a.nan }

(* 0 * inf = 0 at endpoints: the zero endpoint is exact while the infinite
   one only stands for an unbounded finite input. *)
let mul_ep x y = if x = 0. || y = 0. then 0. else x *. y

let mul a b =
  let c1 = mul_ep a.lo b.lo
  and c2 = mul_ep a.lo b.hi
  and c3 = mul_ep a.hi b.lo
  and c4 = mul_ep a.hi b.hi in
  { lo = Float.min (Float.min c1 c2) (Float.min c3 c4);
    hi = Float.max (Float.max c1 c2) (Float.max c3 c4);
    nan = a.nan || b.nan }

(* The concrete evaluator raises on a zero divisor, so a divisor interval
   touching 0 is reported to the caller; the value component stays a sound
   approximation of the non-raising executions. *)
type div_status = Div_ok | Div_maybe_zero | Div_zero

let div a b =
  let nan = a.nan || b.nan in
  if b.lo = 0. && b.hi = 0. then
    (* every non-NaN divisor raises *)
    ({ top with nan }, (if b.nan then Div_maybe_zero else Div_zero))
  else if contains_zero b then ({ top with nan }, Div_maybe_zero)
  else
    let cands =
      List.filter
        (fun x -> not (Float.is_nan x))
        [ a.lo /. b.lo; a.lo /. b.hi; a.hi /. b.lo; a.hi /. b.hi ]
    in
    (match cands with
     | [] -> ({ top with nan }, Div_ok)
     | c :: rest ->
       ( { lo = List.fold_left Float.min c rest;
           hi = List.fold_left Float.max c rest;
           nan },
         Div_ok ))

(* Monotone-increasing unary function; [dom_lo] is where NaN starts (the
   function is undefined strictly below it). *)
let mono_incr ?(dom_lo = neg_infinity) f i =
  if i.hi < dom_lo then top_nan
  else
    let nan = i.nan || i.lo < dom_lo in
    let lo = f (Float.max i.lo dom_lo) and hi = f i.hi in
    { lo = ep_lo lo; hi = ep_hi hi; nan }

let exp_ i = mono_incr exp i

(* ln/log2 at exactly 0 are a true -inf from a finite input — the one place
   the "infinite endpoints are unbounded finite" reading breaks (a later
   0 * -inf or -inf - -inf really is NaN). A possibly-zero argument
   therefore taints the result with [nan] on top of the -inf endpoint. *)
let ln_ i =
  with_nan (contains_zero i) (mono_incr ~dom_lo:0. log i)

let log2_ i =
  with_nan (contains_zero i) (mono_incr ~dom_lo:0. (fun x -> log x /. log 2.) i)

let sqrt_ i = mono_incr ~dom_lo:0. sqrt i
let ceil_ i = mono_incr ceil i
let floor_ i = mono_incr floor i

let abs_ i =
  if i.lo >= 0. then i
  else if i.hi <= 0. then neg i
  else { lo = 0.; hi = Float.max (-.i.lo) i.hi; nan = i.nan }

(* pow(a, b) = exp(b * ln a) for a >= 0: over a box, b * ln a is extremal at
   corners and exp is monotone, so corner evaluation is sound. A possibly
   negative base can yield NaN (fractional exponent), so we give up on the
   value there. *)
let pow_ a b =
  let nan = a.nan || b.nan in
  if a.lo >= 0. then
    let cands =
      List.filter
        (fun x -> not (Float.is_nan x))
        [ Float.pow a.lo b.lo; Float.pow a.lo b.hi; Float.pow a.hi b.lo;
          Float.pow a.hi b.hi ]
    in
    match cands with
    | [] -> { top with nan }
    | c :: rest ->
      { lo = List.fold_left Float.min c rest;
        hi = List.fold_left Float.max c rest;
        nan }
  else top_nan

let min_ a b =
  { lo = Float.min a.lo b.lo; hi = Float.min a.hi b.hi; nan = a.nan || b.nan }

let max_ a b =
  { lo = Float.max a.lo b.lo; hi = Float.max a.hi b.hi; nan = a.nan || b.nan }

(* if(c, t, e): the concrete builtin takes the then-branch when c <> 0 —
   which includes a NaN condition — so a condition interval is only decisive
   when it is NaN-free. *)
let ite c t e =
  if c.nan then join t e
  else if is_zero c then e
  else if not (contains_zero c) then t
  else join t e

let pp ppf i =
  Format.fprintf ppf "[%g, %g]%s" i.lo i.hi (if i.nan then "?nan" else "")
