(** Abstract interpretation of cost formulas over the interval domain.

    Mirrors the concrete evaluator: references resolve through an
    environment to abstract values, wrapper [def]s are inlined
    (depth-bounded), builtins get interval transfer functions, and context
    functions ([sel], [adtcost], ...) are abstracted by their documented
    ranges. Where the concrete evaluator raises — a zero divisor, a name
    coerced to a number — the interpreter records an issue and continues
    with a sound over-approximation. *)

open Disco_costlang

(** Abstract value of an expression. [Name]/[Pred] raise on numeric
    coercion concretely; [Opaque] is an unknown representation whose
    coercion cannot be judged (no issue is recorded for it). *)
type aval =
  | Num of Interval.t
  | Name of string
  | Pred of string
  | Opaque

type issue =
  | Div_by_zero of { definite : bool }
      (** divisor interval is exactly zero ([definite]) or touches zero *)
  | Numeric_name of string
      (** a name or predicate flows into arithmetic — concretely
          [Value.to_num] raises; this is also how the estimator's silent
          [Vname] fallback for undefined variables surfaces *)
  | Unknown_call of string

type env = {
  resolve : string list -> aval;
  def_of : string -> (string list * Ast.expr) option;
}

val max_inline_depth : int

val interval_of : aval -> Interval.t option

val eval : env -> Ast.expr -> aval * issue list
(** Evaluate abstractly; issues are deduplicated, in first-occurrence
    order. *)

val pp_issue : Format.formatter -> issue -> unit
