(* Typed well-formedness checking of whole plans (DESIGN.md §14).

   The checker walks a plan bottom-up computing each node's typed output
   environment — the qualified attribute names it emits, with their schema
   types — and validates every reference against it. The environment mirrors
   [Plan.output_attrs] exactly (requested names survive Project/Aggregate
   verbatim), so what we type here is what [Run] will look up at execution.
   Name resolution copies the executor's rule (Tuple.get / Batch.find_col):
   exact match first, then a unique unqualified-suffix match. *)

open Disco_common
open Disco_catalog
open Disco_algebra
open Disco_core

type severity = Analyzer.severity = Error | Warning | Info

type finding = {
  severity : severity;
  tag : string;
  source : string option;
  scope : Scope.t option;
  path : string;
  msg : string;
}

let errors fs = List.filter (fun f -> f.severity = Error) fs
let of_severity s fs = List.filter (fun f -> f.severity = s) fs

let pp_severity ppf s =
  Fmt.string ppf
    (match s with Error -> "error" | Warning -> "warning" | Info -> "info")

let pp_finding ppf f =
  Fmt.pf ppf "%s: %a [%s]%a: %s" f.path pp_severity f.severity f.tag
    (Fmt.option (fun ppf s -> Fmt.pf ppf " %s" s))
    f.source f.msg

(* Same hand-rolled JSON as Analyzer.to_json: stable field order, no
   dependencies. *)
let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Fmt.str "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json findings =
  let field k v = Fmt.str "\"%s\":%s" k v in
  let str s = Fmt.str "\"%s\"" (json_escape s) in
  let one f =
    let fields =
      [ field "severity"
          (str (match f.severity with Error -> "error" | Warning -> "warning" | Info -> "info"));
        field "tag" (str f.tag);
        field "source" (match f.source with Some s -> str s | None -> "null");
        field "scope"
          (match f.scope with Some s -> str (Scope.to_string s) | None -> "null");
        field "path" (str f.path);
        field "msg" (str f.msg) ]
    in
    "{" ^ String.concat "," fields ^ "}"
  in
  "[" ^ String.concat "," (List.map one findings) ^ "]"

type ctx = [ `Mediator | `Wrapper of string | `Any ]

(* ---------------- typed environments ---------------- *)

type env = (string * Schema.ty) list

let unqual name =
  match Plan.split_attr name with Some (_, a) -> a | None -> name

type resolution =
  | Found of string * Schema.ty
  | Ambiguous of string list
  | Missing

let resolve (env : env) name : resolution =
  match List.assoc_opt name env with
  | Some ty -> Found (name, ty)
  | None ->
    if Plan.split_attr name <> None then Missing
    else (
      match List.filter (fun (n, _) -> unqual n = name) env with
      | [ (n, ty) ] -> Found (n, ty)
      | [] -> Missing
      | several -> Ambiguous (List.map fst several))

let numeric = function Schema.Tint | Schema.Tfloat -> true | _ -> false
let compatible a b = a = b || (numeric a && numeric b)

let ty_name = function
  | Schema.Tbool -> "bool"
  | Schema.Tint -> "int"
  | Schema.Tfloat -> "float"
  | Schema.Tstring -> "string"

let const_ty : Constant.t -> Schema.ty option = function
  | Constant.Null -> None (* null compares with anything *)
  | Constant.Bool _ -> Some Schema.Tbool
  | Constant.Int _ -> Some Schema.Tint
  | Constant.Float _ -> Some Schema.Tfloat
  | Constant.String _ -> Some Schema.Tstring

let available env =
  match env with
  | [] -> "nothing in scope"
  | _ -> "in scope: " ^ String.concat ", " (List.map fst env)

(* ---------------- the checker ---------------- *)

let check ?(ctx = `Mediator) reg plan =
  let cat = Registry.catalog reg in
  let out = ref [] in
  let add ?source ?scope severity tag path msg =
    out := { severity; tag; source; scope; path; msg } :: !out
  in
  let resolve_or_report ?(tag = "unknown-attribute") env path name =
    match resolve env name with
    | Found _ as r -> r
    | Missing as r ->
      add Error tag path (Fmt.str "attribute %s does not resolve (%s)" name (available env));
      r
    | Ambiguous names as r ->
      add Error "ambiguous-attribute" path
        (Fmt.str "attribute %s is ambiguous: matches %s" name (String.concat ", " names));
      r
  in
  (* [sides = Some (left, right)] inside a Join predicate: attr-vs-attr
     conjuncts get the join-key vocabulary and a sidedness check. *)
  let rec check_pred ?sides env path (p : Pred.t) =
    match p with
    | Pred.True -> ()
    | Pred.And (a, b) | Pred.Or (a, b) ->
      check_pred ?sides env path a;
      check_pred ?sides env path b
    | Pred.Not a -> check_pred ?sides env path a
    | Pred.Cmp (attr, _, c) ->
      (match resolve_or_report env path attr with
       | Found (_, ty) ->
         (match const_ty c with
          | Some cty when not (compatible ty cty) ->
            add Error "type-mismatch" path
              (Fmt.str "%s : %s compared with %s constant %s" attr (ty_name ty)
                 (ty_name cty) (Constant.to_string c))
          | _ -> ())
       | _ -> ())
    | Pred.Apply (fn, attr, _) ->
      ignore (resolve_or_report env path attr);
      if Registry.adt_cost reg fn = None then
        add Warning "unknown-adt" path
          (Fmt.str "ADT operation %s exports no cost; it will be priced as free" fn)
    | Pred.Attr_cmp (a, _, b) -> (
      match (resolve_or_report env path a, resolve_or_report env path b) with
      | Found (ra, ta), Found (rb, tb) ->
        let tag = if sides = None then "type-mismatch" else "join-type" in
        if not (compatible ta tb) then
          add Error tag path
            (Fmt.str "%s : %s compared with %s : %s" a (ty_name ta) b (ty_name tb));
        (match sides with
         | Some (le, re) ->
           let on e n = match resolve e n with Found _ -> true | _ -> false in
           let left_only = on le ra && not (on re ra) in
           let right_only = on re rb && not (on le rb) in
           let left_only_b = on le rb && not (on re rb) in
           let right_only_a = on re ra && not (on le ra) in
           if not ((left_only && right_only) || (left_only_b && right_only_a))
           then
             add Warning "join-local" path
               (Fmt.str "join conjunct %s vs %s does not pair the two sides" a b)
         | None -> ())
      | _ -> ())
  in
  (* Returns the node's typed output environment. [inside] is the submit
     source when below a Submit node. *)
  let rec walk ~inside rev_path (p : Plan.t) : env =
    let label =
      match p with
      | Plan.Scan r -> Fmt.str "scan(%s.%s)" r.Plan.source r.Plan.collection
      | Plan.Select _ -> "select"
      | Plan.Project _ -> "project"
      | Plan.Sort _ -> "sort"
      | Plan.Join _ -> "join"
      | Plan.Union _ -> "union"
      | Plan.Dedup _ -> "dedup"
      | Plan.Aggregate _ -> "aggregate"
      | Plan.Submit (s, _) -> Fmt.str "submit(%s)" s
    in
    let rev_path = label :: rev_path in
    let path = String.concat "/" (List.rev rev_path) in
    match p with
    | Plan.Scan r ->
      let source = r.Plan.source in
      (match (ctx, inside) with
       | `Mediator, None ->
         add ~source Error "bare-scan" path
           "scan outside submit cannot execute at the mediator (missing Submit)"
       | `Wrapper w, _ when source <> w ->
         add ~source Error "foreign-scan" path
           (Fmt.str "scan of source %s inside a plan for wrapper %s" source w)
       | _ -> ());
      (match inside with
       | Some s when s <> source ->
         add ~source Error "foreign-scan" path
           (Fmt.str "scan of source %s inside submit(%s)" source s)
       | _ -> ());
      (match Catalog.find_collection cat ~source r.Plan.collection with
       | exception Err.Unknown_source s ->
         add ~source Error "unknown-source" path
           (Fmt.str "source %s is not registered" s);
         []
       | exception Err.Unknown_collection c ->
         add ~source Error "unknown-collection" path
           (Fmt.str "collection %s is not exported by source %s" c source);
         []
       | entry ->
         List.map
           (fun a ->
             let q =
               if r.Plan.binding = "" then a.Schema.attr_name
               else r.Plan.binding ^ "." ^ a.Schema.attr_name
             in
             (q, a.Schema.attr_type))
           entry.Catalog.schema.Schema.attributes)
    | Plan.Select (c, pred) ->
      let env = walk ~inside rev_path c in
      check_pred env path pred;
      env
    | Plan.Project (c, attrs) ->
      let env = walk ~inside rev_path c in
      if attrs = [] then
        add Error "projection" path "projection keeps no attributes";
      let seen = Hashtbl.create 8 in
      List.filter_map
        (fun a ->
          if Hashtbl.mem seen a then (
            add Warning "projection" path (Fmt.str "duplicate projection of %s" a);
            None)
          else (
            Hashtbl.add seen a ();
            match resolve_or_report ~tag:"projection" env path a with
            | Found (_, ty) -> Some (a, ty) (* requested name survives *)
            | _ -> None))
        attrs
    | Plan.Sort (c, keys) ->
      let env = walk ~inside rev_path c in
      List.iter (fun (k, _) -> ignore (resolve_or_report env path k)) keys;
      if keys = [] then add Warning "sort" path "sort with no keys";
      env
    | Plan.Join (l, r, pred) ->
      let le = walk ~inside rev_path l in
      let re = walk ~inside rev_path r in
      let overlap = List.filter (fun (n, _) -> List.mem_assoc n re) le in
      (match overlap with
       | [] -> ()
       | (n, _) :: _ ->
         add Error "duplicate-binding" path
           (Fmt.str "both join sides export %s (rebind one scan)" n));
      let env = le @ re in
      if pred = Pred.True then
        add Info "cross-product" path "join on true is a cross product";
      check_pred ~sides:(le, re) env path pred;
      env
    | Plan.Union (l, r) ->
      let le = walk ~inside rev_path l in
      let re = walk ~inside rev_path r in
      let names e = List.sort compare (List.map fst e) in
      if names le <> names re then
        add Warning "union-schema" path
          "union branches emit different attributes; downstream resolution \
           follows the left branch"
      else
        List.iter
          (fun (n, ty) ->
            match List.assoc_opt n re with
            | Some ty' when not (compatible ty ty') ->
              add Warning "type-mismatch" path
                (Fmt.str "union branches disagree on %s: %s vs %s" n (ty_name ty)
                   (ty_name ty'))
            | _ -> ())
          le;
      le
    | Plan.Dedup c -> walk ~inside rev_path c
    | Plan.Aggregate (c, a) ->
      let env = walk ~inside rev_path c in
      let group =
        List.filter_map
          (fun g ->
            match resolve_or_report env path g with
            | Found (_, ty) -> Some (g, ty)
            | _ -> None)
          a.Plan.group_by
      in
      let aggs =
        List.filter_map
          (fun (fn, input, output) ->
            match fn with
            | Plan.Count when input = "" -> Some (output, Schema.Tint)
            | _ -> (
              match resolve_or_report ~tag:"agg-input" env path input with
              | Found (_, ty) ->
                (match fn with
                 | Plan.Sum | Plan.Avg when not (numeric ty) ->
                   add Error "agg-type" path
                     (Fmt.str "%a over non-numeric attribute %s : %s"
                        Plan.pp_agg_fun fn input (ty_name ty))
                 | _ -> ());
                let oty =
                  match fn with
                  | Plan.Count -> Schema.Tint
                  | Plan.Avg -> Schema.Tfloat
                  | Plan.Sum | Plan.Min | Plan.Max -> ty
                in
                Some (output, oty)
              | _ -> None))
          a.Plan.aggs
      in
      if a.Plan.aggs = [] && a.Plan.group_by = [] then
        add Warning "aggregate" path "aggregate computes nothing";
      let outs = group @ aggs in
      let seen = Hashtbl.create 8 in
      List.iter
        (fun (n, _) ->
          if Hashtbl.mem seen n then
            add Error "aggregate" path (Fmt.str "duplicate output attribute %s" n)
          else Hashtbl.add seen n ())
        outs;
      outs
    | Plan.Submit (source, sub) ->
      (match (ctx, inside) with
       | _, Some enclosing ->
         add ~source Error "submit-nesting" path
           (Fmt.str "submit(%s) nested inside submit(%s)" source enclosing)
       | `Wrapper w, None ->
         add ~source Error "submit-in-wrapper" path
           (Fmt.str "submit node in a plan for wrapper %s" w)
       | _ -> ());
      (match Catalog.find_source cat source with
       | exception Err.Unknown_source s ->
         add ~source Error "unknown-source" path
           (Fmt.str "submit to unregistered source %s" s);
         []
       | _ ->
         (* capability check: every operator below the submit must be one the
            wrapper declared (paper §2.1); scans are always executable *)
         Plan.fold
           (fun () node ->
             let op =
               match node with
               | Plan.Scan _ | Plan.Submit _ -> None
               | Plan.Select _ -> Some "select"
               | Plan.Project _ -> Some "project"
               | Plan.Sort _ -> Some "sort"
               | Plan.Join _ -> Some "join"
               | Plan.Union _ -> Some "union"
               | Plan.Dedup _ -> Some "dedup"
               | Plan.Aggregate _ -> Some "aggregate"
             in
             match op with
             | Some op when not (Catalog.capable cat ~source op) ->
               add ~source Error "capability" path
                 (Fmt.str "source %s cannot execute %s" source op)
             | _ -> ())
           () sub;
         walk ~inside:(Some source) rev_path sub)
  in
  ignore (walk ~inside:None [] plan);
  List.rev !out

let ok ?ctx reg plan = errors (check ?ctx reg plan) = []

(* ---------------- physical-plan invariants ---------------- *)

module P = Disco_exec.Physical
module T = Disco_storage.Table

let check_physical plan =
  let out = ref [] in
  let add severity tag path msg =
    out := { severity; tag; source = None; scope = None; path; msg } :: !out
  in
  let table_attr table binding path what name =
    (* residuals and access paths reference attributes of one table: accept
       the bare schema name or its binding-qualified form *)
    let bare =
      match Plan.split_attr name with
      | Some (b, a) when b = binding -> Some a
      | Some _ -> None
      | None -> Some name
    in
    match bare with
    | Some a
      when Schema.find_attribute table.T.schema a <> None ->
      Some a
    | _ ->
      add Error "unknown-attribute" path
        (Fmt.str "%s references %s, not an attribute of %s" what name
           table.T.schema.Schema.coll_name);
      None
  in
  let rec walk rev_path (p : P.t) =
    let label =
      match p with
      | P.Pscan { table; _ } -> Fmt.str "pscan(%s)" table.T.name
      | P.Pfilter _ -> "pfilter"
      | P.Pproject _ -> "pproject"
      | P.Psort _ -> "psort"
      | P.Pnested_join _ -> "pnested_join"
      | P.Pindex_join _ -> "pindex_join"
      | P.Punion _ -> "punion"
      | P.Pdedup _ -> "pdedup"
      | P.Paggregate _ -> "paggregate"
      | P.Pmaterialized _ -> "pmaterialized"
    in
    let rev_path = label :: rev_path in
    let path = String.concat "/" (List.rev rev_path) in
    match p with
    | P.Pscan { table; binding; access; residual } ->
      (match access with
       | P.Full_scan -> ()
       | P.Index_scan { attr; _ } -> (
         match table_attr table binding path "index access" attr with
         | Some a when not (T.has_index table a) ->
           add Error "index-access" path
             (Fmt.str "index scan on %s but %s has no index on it" attr
                table.T.name)
         | _ -> ()));
      List.iter
        (fun a -> ignore (table_attr table binding path "residual" a))
        (Pred.attributes residual)
    | P.Pfilter (c, _) | P.Pproject (c, _) | P.Psort (c, _) | P.Pdedup c
    | P.Paggregate (c, _) ->
      walk rev_path c
    | P.Pnested_join (l, r, _) | P.Punion (l, r) ->
      walk rev_path l;
      walk rev_path r
    | P.Pindex_join { outer; table; binding; inner_attr; residual; _ } ->
      (match table_attr table binding path "index join" inner_attr with
       | Some a when not (T.has_index table a) ->
         add Error "index-access" path
           (Fmt.str "index join probes %s but %s has no index on it" inner_attr
              table.T.name)
       | _ -> ());
      ignore residual;
      walk rev_path outer
    | P.Pmaterialized { rows; count; _ } ->
      let n = List.length rows in
      if count <> n then
        add Error "materialized-count" path
          (Fmt.str "materialized node claims %d rows but holds %d" count n)
  in
  walk [] plan;
  List.rev !out

(* ---------------- batched-engine preconditions ---------------- *)

module B = Disco_exec.Batch

let check_batch (b : B.t) =
  let out = ref [] in
  let add severity tag msg =
    out := { severity; tag; source = None; scope = None; path = "batch"; msg }
           :: !out
  in
  let ncols = Array.length b.B.cols in
  if Array.length b.B.attrs <> ncols then
    add Error "batch-shape"
      (Fmt.str "%d attribute names for %d columns" (Array.length b.B.attrs) ncols);
  let col_len = function
    | B.Ints a -> Array.length a
    | B.Floats a -> Array.length a
    | B.Boxed a -> Array.length a
  in
  let phys =
    Array.fold_left (fun acc c -> min acc (col_len c)) max_int b.B.cols
  in
  let phys = if ncols = 0 then 0 else phys in
  (match b.B.sel with
   | None ->
     if ncols > 0 && phys < b.B.len then
       add Error "batch-shape"
         (Fmt.str "dense batch of len %d over columns of %d rows" b.B.len phys)
   | Some sel ->
     if Array.length sel <> b.B.len then
       add Error "selection-vector"
         (Fmt.str "selection vector of %d entries but len = %d"
            (Array.length sel) b.B.len);
     Array.iter
       (fun i ->
         if i < 0 || (ncols > 0 && i >= phys) then
           add Error "selection-vector"
             (Fmt.str "selection index %d outside physical rows [0, %d)" i phys))
       sel);
  if b.B.len = 0 then
    add Warning "batch-shape" "emitted batches are non-empty by engine invariant";
  if errors !out = [] then (
    let bytes = ref 0 in
    for i = 0 to b.B.len - 1 do
      bytes := !bytes + B.row_bytes b i
    done;
    if !bytes <> b.B.bytes then
      add Error "batch-bytes"
        (Fmt.str "batch claims %d bytes but rows sum to %d" b.B.bytes !bytes));
  List.rev !out
