(** Interval propagation of cardinality and cost bounds through whole plans
    (DESIGN.md §14).

    {!Plancheck} proves a plan well-typed; this module proves its {e
    estimates} structurally sane before execution. A bottom-up pass derives
    a sound interval for each node's cardinality under any rule set whose
    per-operator selectivities stay in [[0, 1]] (which {!Selest} clamps
    enforce for every shipped model): scans are bounded by the catalog
    extent, selections by their input, joins by the product, unions by the
    sum, dedup/aggregate by [max 1 input]. Degenerate catalog statistics
    taint the interval through the {!Interval.t} NaN flag, reusing the PR 4
    abstract domain; attribute ranges come from the {!Derive} chain, i.e.
    the histogram-clipped statistics of PR 6.

    The concrete estimates ([CountObject], [TotalTime]) of every node are
    then validated against the intervals: NaN, true infinities, negative
    values, cardinalities above the bound, and monotonicity violations
    (a filter exceeding its input) each produce a finding carrying the
    provenance scope of the rule that supplied the bad value. Nodes priced
    by query-scope (measured) rules are exempt from the formula-derived
    bound — measured truth may legally contradict a formula's estimate of a
    sibling — and report an [Info] deviation instead. *)

open Disco_algebra
open Disco_core

type bound = { card : Interval.t; cost : Interval.t }
(** [cost] is [[0, inf)] with the taint of its inputs: per-operator cost has
    no useful structural upper bound, but its sign and taint do propagate. *)

val bounds : ?source:string -> Registry.t -> Plan.t -> bound
(** Root bound of a plan; [source] is the rule context (defaults to the
    mediator, like {!Estimator.estimate}). *)

val check_ann : Registry.t -> Estimator.ann -> Plancheck.finding list
(** Validate an already-annotated plan — the warm path: [run_query] reuses
    the answer's estimation tree, so verification adds no estimation pass.
    Demands [CountObject] and [TotalTime] at every node (cached in the
    annotation once computed). *)

val check : ?source:string -> Registry.t -> Plan.t -> Plancheck.finding list
(** [check_ann] over a freshly built annotation. *)
