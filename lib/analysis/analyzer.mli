(** Whole-model static analysis of the blended cost model.

    Runs after registration (or on demand via [disco lint]) over the
    registry's merged rule chains. Four passes:

    - {b interval abstract interpretation} of every rule body ({!Absint})
      over typed variable domains — cardinalities, sizes and times in
      [[0, inf)], selectivities in [[0, 1]], [let] parameters at their
      registered values — flagging possible division by zero, NaN,
      negative costs, and names silently coerced to numbers. The pass is
      run on the raw AST and again after {!Disco_costlang.Opt.pipeline},
      and the two verdicts are compared ("backend-divergence");
    - {b shadowing}: per (source, operator) chain, rules whose head is
      subsumed by strictly more specific rules providing all their
      variables are dead; same-level overlaps are min-combined
      ambiguities;
    - {b coverage}: does the merged chain define all five cost variables
      for every node shape of each operator, and where does a wrapper
      fall back to the generic model;
    - {b cycles}: inter-variable dependencies (TotalTime -> TotalSize ->
      TotalTime) that diverge at evaluation time.

    Severity contract: [Error] findings mean estimation can raise,
    diverge, or produce meaningless (negative / non-numeric) costs —
    strict registration ({!Disco_mediator.Mediator}) rejects them. A
    model "lints clean under --strict" when {!errors} is empty. *)

open Disco_costlang
open Disco_core

type severity = Error | Warning | Info

val severity_name : severity -> string

type finding = {
  severity : severity;
  tag : string;
      (** stable machine tag: "div-zero", "nan", "negative", "non-numeric",
          "unknown-function", "selectivity-range", "dead-rule",
          "shadows-default", "ambiguous", "coverage", "fallback", "cycle",
          "unmatchable", "backend-divergence" *)
  source : string;  (** owning source of the offending rule or parameter *)
  operator : string option;
  scope : Scope.t option;
  where : string;  (** ["rule scan(C)"], ["let AdtSel_match"], ... *)
  loc : Ast.pos option;  (** lexer position, when the rule was parsed *)
  msg : string;
  excluded : bool;
      (** the owning source is circuit-broken (breaker open), so the
          optimizer cannot pick its rules right now: the finding is
          reported for completeness but tagged [scope:excluded] *)
}

val errors : finding list -> finding list
val of_severity : severity -> finding list -> finding list

val active : finding list -> finding list
(** Findings whose source the optimizer can actually pick (not
    [excluded]); strictness gates ([--strict], [--fail-on]) apply to
    these. *)

val analyze_rule : Registry.t -> Rule.t -> finding list
(** Interval pass over one rule's body (both backends, verdicts
    compared). Rules without source AST (query-scope history) yield no
    findings. *)

val analyze_chain : Registry.t -> source:string -> operator:string -> finding list
(** Shadowing, ambiguity, coverage and cycle analysis of the merged
    (source + default) chain for one operator. *)

val analyze_source : ?excluded:(string -> bool) -> Registry.t -> source:string -> finding list
(** All passes for one source: its own rules, its ADT parameter ranges
    ([AdtSel_* ] in [[0,1]], [AdtCost_*] nonnegative), and the merged
    chain of every operator it exports rules for (every known operator
    for the default source). [excluded] marks findings of circuit-broken
    sources (default: none). *)

val analyze : ?excluded:(string -> bool) -> Registry.t -> finding list
(** {!analyze_source} over every registered source, deduplicated. *)

val pp_finding : Format.formatter -> finding -> unit

val to_json : finding list -> string
(** Findings as a JSON array (stable field order), for CI artifacts. *)
