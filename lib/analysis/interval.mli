(** Interval arithmetic over the extended reals: the value domain of the
    abstract interpreter. [{lo; hi; nan}] approximates a set of floats —
    every concrete result lies in [[lo, hi]], plus NaN when [nan] holds.

    Infinite endpoints mean "unbounded but finite" (cost inputs are finite
    reals without an a priori bound), so endpoint arithmetic resolves the
    IEEE indeterminate forms [0 * inf] and [inf - inf] to the sound bound
    rather than NaN. [nan] is set only by operations that can produce NaN
    or a true infinity from finite inputs (ln/log2/sqrt of a possibly
    negative argument, ln/log2 of a possibly zero argument, pow with a
    possibly negative base) and then propagates. *)

type t = { lo : float; hi : float; nan : bool }

val v : ?nan:bool -> float -> float -> t

val point : float -> t
(** Singleton interval; [point nan] is {!top_nan}. *)

val top : t
val top_nan : t

val nonneg : t
(** [[0, inf)] — cardinalities, sizes, times. *)

val unit : t
(** [[0, 1]] — selectivities. *)

val ge1 : t
(** [[1, inf)]. *)

val with_nan : bool -> t -> t

val contains : t -> float -> bool
(** Membership, NaN-aware: [contains i nan] iff [i.nan]. *)

val contains_zero : t -> bool
val is_zero : t -> bool
val definitely_neg : t -> bool
val maybe_neg : t -> bool

val join : t -> t -> t

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val mul : t -> t -> t

(** Division result status: the concrete evaluator raises on a zero divisor,
    so a divisor interval touching zero is reported alongside the sound
    approximation of the non-raising executions. *)
type div_status = Div_ok | Div_maybe_zero | Div_zero

val div : t -> t -> t * div_status

val exp_ : t -> t
val ln_ : t -> t
val log2_ : t -> t
val sqrt_ : t -> t
val ceil_ : t -> t
val floor_ : t -> t
val abs_ : t -> t
val pow_ : t -> t -> t
val min_ : t -> t -> t
val max_ : t -> t -> t

val ite : t -> t -> t -> t
(** [ite c t e]: abstract [if(c, t, e)]. Decisive only when [c] is NaN-free
    (the concrete builtin takes the then-branch on [c <> 0], which includes
    NaN). *)

val pp : Format.formatter -> t -> unit
