(* Whole-model static analysis of the blended cost model.

   Four passes over the registry (paper §3.3/§4: wrapper rules blended into
   the mediator's generic model through the scope hierarchy):

   - interval abstract interpretation of every rule body ({!Absint}) over
     typed variable domains — cardinalities/sizes/times in [0, inf),
     selectivities in [0, 1], [let] parameters at their registered values —
     flagging possible division by zero, NaN, negative cost results, and
     names coerced to numbers (the estimator's silent [Vname] fallback for
     undefined variables);
   - scope/shadowing analysis: pairwise head subsumption per
     (source, operator) chain reports rules that can never fire because a
     strictly more specific rule covers all their variables for every node
     shape, and same-level overlaps whose results are min-combined (Fig 11);
   - coverage analysis: for each source and operator, does the merged chain
     define all five cost variables for every node shape, and where does a
     wrapper's own export fall back to the generic model;
   - inter-variable dependency cycle detection (TotalTime -> TotalSize ->
     TotalTime through different rules), which diverges at evaluation time.

   Findings carry severity, owning source, scope, and source locations
   threaded from the lexer. *)

open Disco_common
open Disco_catalog
open Disco_algebra
open Disco_costlang
open Disco_core

type severity = Error | Warning | Info

let severity_name = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

type finding = {
  severity : severity;
  tag : string;        (* stable machine tag: "div-zero", "dead-rule", ... *)
  source : string;     (* owning source of the offending rule/parameter *)
  operator : string option;
  scope : Scope.t option;
  where : string;      (* "rule scan(C)", "let AdtSel_match", ... *)
  loc : Ast.pos option;
  msg : string;
  excluded : bool;     (* owning source is circuit-broken right now *)
}

let errors fs = List.filter (fun f -> f.severity = Error) fs
let of_severity s fs = List.filter (fun f -> f.severity = s) fs
let active fs = List.filter (fun f -> not f.excluded) fs

let pp_finding ppf f =
  (match f.loc with
   | Some p -> Fmt.pf ppf "%a: " Ast.pp_pos p
   | None -> ());
  Fmt.pf ppf "%s [%s] %s%a in %s: %s" (severity_name f.severity) f.tag f.source
    Fmt.(option (fun ppf s -> pf ppf "/%s" s))
    f.operator f.where f.msg;
  if f.excluded then Fmt.pf ppf " (scope:excluded)"

(* --- Typed domains for rule-context references ---------------------------- *)

(* Statistic tails of operand and attribute paths, with their ranges. Times,
   sizes and cardinalities are nonnegative by the domain typing premise;
   [Indexed] is a 0/1 flag; [Min]/[Max] may be non-numeric constants. *)
let stat_domain = function
  | "CountObject" | "TotalSize" | "ObjectSize" | "TimeFirst" | "TimeNext"
  | "TotalTime" ->
    Some Interval.nonneg
  | "Indexed" -> Some Interval.unit
  | "CountDistinct" -> Some Interval.nonneg
  | _ -> None

let aval_of_value (v : Value.t) : Absint.aval =
  match v with
  | Value.Vnum f -> Absint.Num (Interval.point f)
  | Value.Vconst c ->
    (match Constant.to_float_opt c with
     | Some f -> Absint.Num (Interval.point f)
     | None -> Absint.Name (Fmt.str "%a" Constant.pp c))
  | Value.Vname n -> Absint.Name n
  | Value.Vpred p -> Absint.Pred (Fmt.str "%a" Pred.pp p)

(* What each head variable binds to at match time (mirrors
   [Rule.match_head]). *)
type head_kind =
  | Koperand          (* child plan / base collection *)
  | Kattr of string   (* attribute name (Battr) *)
  | Kconst_or_attr    (* Pcmp right side: constant or attribute *)
  | Kpred of string   (* whole predicate (Bpred) *)
  | Kname             (* source name or attribute/group list (Bname) *)

let head_kinds (h : Ast.head) : (string * head_kind) list =
  let arg k = function Ast.Pvar v -> [ (v, k) ] | _ -> [] in
  let pred = function
    | Ast.Ppred_var v -> [ (v, Kpred v) ]
    | Ast.Pcmp (l, _, r) ->
      (match l with Ast.Pvar v -> [ (v, Kattr v) ] | _ -> [])
      @ arg Kconst_or_attr r
  in
  match h with
  | Ast.Hscan c | Ast.Hdedup c -> arg Koperand c
  | Ast.Hselect (c, p) -> arg Koperand c @ pred p
  | Ast.Hproject (c, a) | Ast.Hsort (c, a) | Ast.Haggregate (c, a) ->
    arg Koperand c @ arg Kname a
  | Ast.Hunion (l, r) -> arg Koperand l @ arg Koperand r
  | Ast.Hjoin (l, r, p) -> arg Koperand l @ arg Koperand r @ pred p
  | Ast.Hsubmit (w, c) -> arg Kname w @ arg Koperand c

(* --- Interval pass over one rule ------------------------------------------ *)

(* Reference resolution for the abstract interpreter, mirroring
   [Estimator.resolve_ref]: body locals and earlier targets, then node-level
   cost variables, then head bindings, then [let] parameters, then the
   silent [Vname] fallback (whose numeric use the interpreter flags). *)
let rule_resolver reg ~source ~kinds ~locals path : Absint.aval =
  match path with
  | [] -> Absint.Opaque
  | [ x ] ->
    (match Hashtbl.find_opt locals x with
     | Some v -> v
     | None ->
       (match Ast.cost_var_of_name x with
        | Some _ -> Absint.Num Interval.nonneg
        | None ->
          (match List.assoc_opt x kinds with
           | Some Koperand ->
             (* "operand used as a plain value" raises concretely; surfaces
                as a numeric-name issue on coercion *)
             Absint.Name x
           | Some (Kattr a) -> Absint.Name a
           | Some Kconst_or_attr -> Absint.Opaque
           | Some (Kpred p) -> Absint.Pred p
           | Some Kname -> Absint.Name x
           | None ->
             (match Registry.lookup_let_or_default reg ~source x with
              | Some v -> aval_of_value v
              | None -> Absint.Name x (* estimator's silent fallback *)
              | exception _ -> Absint.Opaque))))
  | x :: rest ->
    let tail = List.hd (List.rev rest) in
    let by_tail () =
      match stat_domain tail with
      | Some i -> Absint.Num i
      | None -> Absint.Opaque
    in
    (match List.assoc_opt x kinds with
     | Some Koperand | Some (Kattr _) -> by_tail ()
     | Some _ -> Absint.Opaque
     | None ->
       (* literal path against the rule owner's catalog: resolves to the
          registered statistic when the collection is known statically *)
       (match Registry.catalog_path reg ~source path with
        | Some v -> aval_of_value v
        | None -> by_tail ()
        | exception _ -> by_tail ()))

(* One pass over a rule body with a transform applied to each formula
   (identity for the AST pass, [Opt.pipeline] for the bytecode cross-check).
   Sequential scoping: earlier targets' abstract values refine later
   formulas, exactly like the concrete evaluator's [inst.values]. *)
let body_pass reg (rule : Rule.t) (ast : Ast.rule) ~transform : finding list =
  let source = rule.Rule.source in
  let operator = Rule.operator rule in
  let where = Fmt.str "rule %a" Pp.head ast.Ast.head in
  let kinds = head_kinds ast.Ast.head in
  let locals = Hashtbl.create 8 in
  let findings = ref [] in
  let add ?loc severity tag msg =
    let f =
      { severity; tag; source; operator = Some operator;
        scope = Some rule.Rule.scope; where; loc; msg; excluded = false }
    in
    if not (List.mem f !findings) then findings := f :: !findings
  in
  let env =
    { Absint.resolve = rule_resolver reg ~source ~kinds ~locals;
      def_of =
        (fun fn ->
          match Registry.lookup_def_or_default reg ~source fn with
          | Some d -> Some (d.Compile.params, d.Compile.def_ast)
          | None -> None) }
  in
  List.iter
    (fun (target, expr) ->
      let name = Ast.target_name target in
      let loc =
        match Ast.target_pos ast name with
        | Some _ as p -> p
        | None -> ast.Ast.rule_pos
      in
      let expr = try transform expr with _ -> expr in
      let v, issues = Absint.eval env expr in
      List.iter
        (fun (i : Absint.issue) ->
          match i with
          | Absint.Div_by_zero { definite } ->
            add ?loc
              (if definite then Error else Warning)
              "div-zero"
              (Fmt.str "%s in the formula for %s"
                 (if definite then "division by zero"
                  else
                    "possible division by zero (the divisor interval \
                     contains 0)")
                 name)
          | Absint.Numeric_name n ->
            add ?loc Error "non-numeric"
              (Fmt.str
                 "%S is used where a number is required in the formula for %s \
                  (undefined variables silently resolve to their own name)"
                 n name)
          | Absint.Unknown_call fn ->
            add ?loc Error "unknown-function"
              (Fmt.str "unknown function %S in the formula for %s" fn name))
        issues;
      (match target, v with
       | Ast.Cost _, Absint.Num i ->
         if Interval.definitely_neg i then
           add ?loc Error "negative"
             (Fmt.str "%s is always negative: %a" name Interval.pp i)
         else if Interval.maybe_neg i then
           add ?loc Info "negative"
             (Fmt.str "%s may be negative: %a" name Interval.pp i);
         if i.Interval.nan then
           add ?loc Warning "nan"
             (Fmt.str "%s may evaluate to NaN: %a" name Interval.pp i)
       | Ast.Cost _, (Absint.Name n | Absint.Pred n) ->
         add ?loc Error "non-numeric"
           (Fmt.str "%s is assigned the non-numeric value %S" name n)
       | _ -> ());
      Hashtbl.replace locals name v)
    ast.Ast.body;
  List.rev !findings

(* The verdict of a pass: which (tag, severity) classes it raised. The AST
   and bytecode backends must agree — [Opt]'s rewrites are documented as
   observationally equivalent. *)
let verdict fs = List.sort_uniq compare (List.map (fun f -> (f.tag, f.severity)) fs)

let analyze_rule reg (rule : Rule.t) : finding list =
  match rule.Rule.ast with
  | None -> []
  | Some ast ->
    let raw = body_pass reg rule ast ~transform:(fun e -> e) in
    let lookup fn =
      match
        Registry.lookup_def_or_default reg ~source:rule.Rule.source fn
      with
      | Some d -> Some (d.Compile.params, d.Compile.def_ast)
      | None -> None
    in
    let opt = body_pass reg rule ast ~transform:(Opt.pipeline ~lookup) in
    if verdict raw <> verdict opt then
      raw
      @ [ { severity = Warning; tag = "backend-divergence";
            source = rule.Rule.source;
            operator = Some (Rule.operator rule);
            scope = Some rule.Rule.scope;
            where = Fmt.str "rule %a" Pp.head ast.Ast.head;
            loc = ast.Ast.rule_pos;
            msg =
              "the AST and optimized (bytecode) forms of this rule disagree \
               on lint verdicts — optimizer rewrites may not be \
               observationally equivalent here";
            excluded = false } ]
    else raw

(* --- ADT parameter ranges ------------------------------------------------- *)

let has_prefix p s =
  String.length s > String.length p && String.sub s 0 (String.length p) = p

let adt_let_findings reg ~source : finding list =
  List.filter_map
    (fun n ->
      let value () =
        match Registry.lookup_let reg ~source n with
        | Some (Value.Vnum f) -> Some f
        | Some _ | None -> None
        | exception _ -> None
      in
      if has_prefix "AdtSel_" n then
        match value () with
        | Some f when f < 0. || f > 1. ->
          Some
            { severity = Error; tag = "selectivity-range"; source;
              operator = None; scope = None; where = "let " ^ n; loc = None;
              msg =
                Fmt.str "exported ADT selectivity is %g, outside [0, 1]" f;
              excluded = false }
        | _ -> None
      else if has_prefix "AdtCost_" n then
        match value () with
        | Some f when f < 0. ->
          Some
            { severity = Error; tag = "negative"; source; operator = None;
              scope = None; where = "let " ^ n; loc = None;
              msg = Fmt.str "exported ADT cost is negative (%g)" f;
              excluded = false }
        | _ -> None
      else None)
    (Registry.let_names reg ~source)

(* --- Head subsumption, overlap, universality ------------------------------ *)

let unqual a =
  match String.rindex_opt a '.' with
  | Some i -> String.sub a (i + 1) (String.length a - i - 1)
  | None -> a

(* Operand positions: a literal name matches every instance of that
   collection, including sub-interfaces. [inst child anc] is the catalog's
   instance relation. *)
let arg_sub ~inst a b =
  match a, b with
  | Ast.Pvar _, _ -> true
  | Ast.Pname na, Ast.Pname nb -> inst nb na
  | Ast.Pconst x, Ast.Pconst y -> Constant.equal x y
  | _ -> false

(* Attribute / constant positions of a predicate pattern: literal names
   compare unqualified, constants structurally. *)
let lit_sub a b =
  match a, b with
  | Ast.Pvar _, _ -> true
  | Ast.Pname na, Ast.Pname nb -> String.equal (unqual na) (unqual nb)
  | Ast.Pconst x, Ast.Pconst y -> Constant.equal x y
  | _ -> false

(* Submit's source position: exact name matching, no inheritance. *)
let src_sub a b =
  match a, b with
  | Ast.Pvar _, _ -> true
  | Ast.Pname na, Ast.Pname nb -> String.equal na nb
  | _ -> false

let pred_sub a b =
  match a, b with
  | Ast.Ppred_var _, _ -> true
  | Ast.Pcmp (l, op, r), Ast.Pcmp (l', op', r') ->
    op = op' && lit_sub l l' && lit_sub r r'
  | Ast.Pcmp _, Ast.Ppred_var _ -> false

(* [head_subsumes ~inst a b]: every node matched by [b] is matched by [a].
   The attribute-list positions of project/sort/aggregate match
   unconditionally (literals there are ignored by the matcher), so they
   don't constrain subsumption. *)
let head_subsumes ~inst a b =
  match a, b with
  | Ast.Hscan x, Ast.Hscan y | Ast.Hdedup x, Ast.Hdedup y -> arg_sub ~inst x y
  | Ast.Hselect (c, p), Ast.Hselect (c', p') ->
    arg_sub ~inst c c' && pred_sub p p'
  | Ast.Hproject (c, _), Ast.Hproject (c', _)
  | Ast.Hsort (c, _), Ast.Hsort (c', _)
  | Ast.Haggregate (c, _), Ast.Haggregate (c', _) ->
    arg_sub ~inst c c'
  | Ast.Hjoin (l, r, p), Ast.Hjoin (l', r', p') ->
    arg_sub ~inst l l' && arg_sub ~inst r r' && pred_sub p p'
  | Ast.Hunion (l, r), Ast.Hunion (l', r') ->
    arg_sub ~inst l l' && arg_sub ~inst r r'
  | Ast.Hsubmit (w, c), Ast.Hsubmit (w', c') ->
    src_sub w w' && arg_sub ~inst c c'
  | _ -> false

let arg_olap ~inst a b =
  match a, b with
  | Ast.Pvar _, _ | _, Ast.Pvar _ -> true
  | Ast.Pname x, Ast.Pname y -> inst x y || inst y x
  | _ -> false (* Pconst never matches an operand *)

let lit_olap a b =
  match a, b with
  | Ast.Pvar _, _ | _, Ast.Pvar _ -> true
  | Ast.Pname x, Ast.Pname y -> String.equal (unqual x) (unqual y)
  | Ast.Pconst x, Ast.Pconst y -> Constant.equal x y
  | _ -> false

let src_olap a b =
  match a, b with
  | Ast.Pvar _, _ | _, Ast.Pvar _ -> true
  | Ast.Pname x, Ast.Pname y -> String.equal x y
  | _ -> false

let pred_olap a b =
  match a, b with
  | Ast.Ppred_var _, _ | _, Ast.Ppred_var _ -> true
  | Ast.Pcmp (l, op, r), Ast.Pcmp (l', op', r') ->
    op = op' && lit_olap l l' && lit_olap r r'

(* [heads_overlap ~inst a b]: some node can match both. *)
let heads_overlap ~inst a b =
  match a, b with
  | Ast.Hscan x, Ast.Hscan y | Ast.Hdedup x, Ast.Hdedup y -> arg_olap ~inst x y
  | Ast.Hselect (c, p), Ast.Hselect (c', p') ->
    arg_olap ~inst c c' && pred_olap p p'
  | Ast.Hproject (c, _), Ast.Hproject (c', _)
  | Ast.Hsort (c, _), Ast.Hsort (c', _)
  | Ast.Haggregate (c, _), Ast.Haggregate (c', _) ->
    arg_olap ~inst c c'
  | Ast.Hjoin (l, r, p), Ast.Hjoin (l', r', p') ->
    arg_olap ~inst l l' && arg_olap ~inst r r' && pred_olap p p'
  | Ast.Hunion (l, r), Ast.Hunion (l', r') ->
    arg_olap ~inst l l' && arg_olap ~inst r r'
  | Ast.Hsubmit (w, c), Ast.Hsubmit (w', c') ->
    src_olap w w' && arg_olap ~inst c c'
  | _ -> false

(* A universal head matches every node of its operator: all constraining
   positions are distinct free variables. *)
let universal_head (h : Ast.head) =
  let distinct =
    let vs = Ast.head_var_names h in
    List.length (List.sort_uniq String.compare vs) = List.length vs
  in
  distinct
  &&
  match h with
  | Ast.Hscan (Ast.Pvar _) | Ast.Hdedup (Ast.Pvar _) -> true
  | Ast.Hselect (Ast.Pvar _, Ast.Ppred_var _) -> true
  | Ast.Hproject (Ast.Pvar _, _)
  | Ast.Hsort (Ast.Pvar _, _)
  | Ast.Haggregate (Ast.Pvar _, _) ->
    true (* the attribute-list position matches unconditionally *)
  | Ast.Hjoin (Ast.Pvar _, Ast.Pvar _, Ast.Ppred_var _) -> true
  | Ast.Hunion (Ast.Pvar _, Ast.Pvar _) -> true
  | Ast.Hsubmit (Ast.Pvar _, Ast.Pvar _) -> true
  | _ -> false

(* A head position the matcher can never satisfy: a constant in an operand,
   attribute or source position. Such a rule can never fire. *)
let unmatchable_head (h : Ast.head) : string option =
  let op = function Ast.Pconst _ -> Some "a constant in an operand position" | _ -> None in
  let pred = function
    | Ast.Ppred_var _ -> None
    | Ast.Pcmp (Ast.Pconst _, _, _) ->
      Some "a constant in the attribute position of a predicate pattern"
    | Ast.Pcmp _ -> None
  in
  let first l = List.find_opt Option.is_some l |> Option.join in
  match h with
  | Ast.Hscan c | Ast.Hdedup c -> op c
  | Ast.Hselect (c, p) -> first [ op c; pred p ]
  | Ast.Hproject (c, _) | Ast.Hsort (c, _) | Ast.Haggregate (c, _) -> op c
  | Ast.Hunion (l, r) -> first [ op l; op r ]
  | Ast.Hjoin (l, r, p) -> first [ op l; op r; pred p ]
  | Ast.Hsubmit (w, c) ->
    first
      [ (match w with
         | Ast.Pconst _ -> Some "a constant in the source position of submit"
         | _ -> None);
        op c ]

(* --- Chain analyses: shadowing, ambiguity, coverage, cycles --------------- *)

let pattern_head (r : Rule.t) =
  match r.Rule.kind with Rule.Pattern h -> Some h | Rule.Exact _ -> None

let rule_where (r : Rule.t) =
  match pattern_head r with
  | Some h -> Fmt.str "rule %a" Pp.head h
  | None -> Fmt.str "rule #%d" r.Rule.id

let rule_loc (r : Rule.t) =
  Option.bind r.Rule.ast (fun a -> a.Ast.rule_pos)

(* Bare cost-variable references of a formula (transitively through [def]
   bodies), excluding names assigned earlier in the same rule body: these
   re-enter the estimator's [require] at the same node and form the
   dependency graph for cycle detection. *)
let cost_var_deps ~def_of ~earlier (e : Ast.expr) : Ast.cost_var list =
  let acc = ref [] in
  let rec go depth e =
    match e with
    | Ast.Num _ | Ast.Str _ -> ()
    | Ast.Ref [ x ] ->
      (match Ast.cost_var_of_name x with
       | Some v when not (List.mem x earlier) ->
         if not (List.mem v !acc) then acc := v :: !acc
       | _ -> ())
    | Ast.Ref _ -> ()
    | Ast.Neg e -> go depth e
    | Ast.Binop (_, a, b) -> go depth a; go depth b
    | Ast.Call (fn, args) ->
      List.iter (go depth) args;
      if depth < 8 then
        match def_of fn with
        | Some (_, body) -> go (depth + 1) body
        | None -> ()
  in
  go 0 e;
  !acc

let analyze_chain reg ~source ~operator : finding list =
  let chain =
    Registry.rules_for reg ~source ~operator
    |> List.filter (fun r -> Option.is_some (pattern_head r))
  in
  let head_of r = Option.get (pattern_head r) in
  let cat = Registry.catalog reg in
  let inst child anc =
    String.equal child anc
    || (try Catalog.is_instance cat ~source child anc with _ -> false)
  in
  let findings = ref [] in
  let add ?loc ?rule_scope ~owner severity tag where msg =
    let f =
      { severity; tag; source = owner; operator = Some operator;
        scope = rule_scope; where; loc; msg; excluded = false }
    in
    if not (List.mem f !findings) then findings := f :: !findings
  in
  (* unmatchable heads *)
  List.iter
    (fun r ->
      match unmatchable_head (head_of r) with
      | Some why ->
        add ~owner:r.Rule.source ?loc:(rule_loc r)
          ~rule_scope:r.Rule.scope Warning "unmatchable" (rule_where r)
          (Fmt.str "this head can never match a node: %s" why)
      | None -> ())
    chain;
  (* dead rules: every variable of [b] is provided by a strictly more
     specific rule whose head subsumes [b]'s *)
  let fully_dead =
    List.filter
      (fun b ->
        b.Rule.provides <> []
        &&
        let shadowers =
          List.filter
            (fun a ->
              a.Rule.id <> b.Rule.id
              && Rule.compare_level a b > 0
              && (not (Rule.same_level a b))
              && head_subsumes ~inst (head_of a) (head_of b))
            chain
        in
        List.for_all
          (fun v ->
            List.exists (fun a -> List.mem v a.Rule.provides) shadowers)
          b.Rule.provides)
      chain
  in
  List.iter
    (fun b ->
      let shadower =
        List.find
          (fun a ->
            a.Rule.id <> b.Rule.id
            && Rule.compare_level a b > 0
            && (not (Rule.same_level a b))
            && head_subsumes ~inst (head_of a) (head_of b))
          chain
      in
      if String.equal b.Rule.source Registry.default_source
         && not (String.equal source Registry.default_source)
      then
        add ~owner:source ?loc:(rule_loc shadower)
          ~rule_scope:shadower.Rule.scope Info "shadows-default"
          (rule_where shadower)
          (Fmt.str
             "fully overrides the generic %s (%s scope, intentional blending)"
             (rule_where b)
             (Scope.to_string b.Rule.scope))
      else
        add ~owner:b.Rule.source ?loc:(rule_loc b) ~rule_scope:b.Rule.scope
          Warning "dead-rule" (rule_where b)
          (Fmt.str
             "dead rule: %s (%s scope) matches every node this rule matches \
              and provides all of its variables, so this rule can never \
              contribute"
             (rule_where shadower)
             (Scope.to_string shadower.Rule.scope)))
    fully_dead;
  let dead_ids = List.map (fun r -> r.Rule.id) fully_dead in
  let live = List.filter (fun r -> not (List.mem r.Rule.id dead_ids)) chain in
  (* same-level ambiguity: overlapping heads providing the same variable are
     all evaluated and min-combined (paper §4.2 step 3) *)
  let rec pairs = function
    | [] -> ()
    | a :: rest ->
      List.iter
        (fun b ->
          if
            String.equal a.Rule.source b.Rule.source
            && Rule.same_level a b
            && heads_overlap ~inst (head_of a) (head_of b)
          then begin
            let shared =
              List.filter (fun v -> List.mem v b.Rule.provides) a.Rule.provides
            in
            if shared <> [] then
              add ~owner:a.Rule.source ?loc:(rule_loc a)
                ~rule_scope:a.Rule.scope Info "ambiguous" (rule_where a)
                (Fmt.str
                   "overlaps %s at the same matching level; %s will be \
                    min-combined (competing strategies)"
                   (rule_where b)
                   (String.concat ", "
                      (List.map Ast.cost_var_name shared)))
          end)
        rest;
      pairs rest
  in
  pairs live;
  (* coverage: per variable, does some live universal-head rule provide it,
     and does the wrapper's own export cover it or fall back to defaults *)
  let own = List.filter (fun r -> String.equal r.Rule.source source) live in
  if own <> [] || String.equal source Registry.default_source then begin
    let missing = ref [] and conditional = ref [] in
    let own_partial = ref [] and own_none = ref [] in
    List.iter
      (fun v ->
        let providers =
          List.filter (fun r -> List.mem v r.Rule.provides) live
        in
        let universal =
          List.filter (fun r -> universal_head (head_of r)) providers
        in
        if providers = [] then missing := v :: !missing
        else if universal = [] then conditional := (v, providers) :: !conditional;
        if not (String.equal source Registry.default_source) then begin
          let own_p = List.filter (fun r -> List.mem r.Rule.id (List.map (fun o -> o.Rule.id) own)) providers in
          if own_p = [] && providers <> [] then own_none := v :: !own_none
          else if own_p <> [] && not (List.exists (fun r -> universal_head (head_of r)) own_p)
          then own_partial := v :: !own_partial
        end)
      Ast.all_cost_vars;
    if !missing <> [] then
      add ~owner:source Error "coverage" (Fmt.str "operator %s" operator)
        (Fmt.str
           "no rule in the merged chain provides %s: estimation will fail \
            for every %s node"
           (String.concat ", " (List.map Ast.cost_var_name (List.rev !missing)))
           operator);
    List.iter
      (fun (v, providers) ->
        add ~owner:source Error "coverage" (Fmt.str "operator %s" operator)
          (Fmt.str
             "%s is only provided for restricted node shapes (%s): other %s \
              nodes have no formula and estimation will fail"
             (Ast.cost_var_name v)
             (String.concat "; " (List.map rule_where providers))
             operator))
      (List.rev !conditional);
    if !own_none <> [] then
      add ~owner:source Info "fallback" (Fmt.str "operator %s" operator)
        (Fmt.str "%s %s provided only by the generic model for %s nodes"
           (String.concat ", " (List.map Ast.cost_var_name (List.rev !own_none)))
           (if List.length !own_none = 1 then "is" else "are")
           operator);
    if !own_partial <> [] then
      add ~owner:source Info "fallback" (Fmt.str "operator %s" operator)
        (Fmt.str
           "%s exported only for some node shapes; other %s nodes fall back \
            to the generic model"
           (String.concat ", " (List.map Ast.cost_var_name (List.rev !own_partial)))
           operator)
  end;
  (* inter-variable dependency cycles across the chain's live rules *)
  let edges =
    List.concat_map
      (fun r ->
        match r.Rule.ast with
        | None -> []
        | Some ast ->
          let def_of fn =
            match
              Registry.lookup_def_or_default reg ~source:r.Rule.source fn
            with
            | Some d -> Some (d.Compile.params, d.Compile.def_ast)
            | None -> None
          in
          let _, edges =
            List.fold_left
              (fun (earlier, acc) (target, expr) ->
                let name = Ast.target_name target in
                let acc =
                  match target with
                  | Ast.Cost v ->
                    List.map
                      (fun w -> (v, w, r))
                      (cost_var_deps ~def_of ~earlier expr)
                    @ acc
                  | Ast.Local _ -> acc
                in
                (name :: earlier, acc))
              ([], []) ast.Ast.body
          in
          edges)
      live
  in
  let succ v = List.filter (fun (a, _, _) -> a = v) edges in
  let reported = ref [] in
  let rec dfs path v =
    if List.mem v path then begin
      (* cycle: the segment of [path] from [v] back to [v] *)
      let rec upto = function
        | [] -> []
        | x :: rest -> if x = v then [ x ] else x :: upto rest
      in
      let cycle = List.sort_uniq compare (v :: upto path) in
      if not (List.mem cycle !reported) then begin
        reported := cycle :: !reported;
        let cyc_edges =
          List.filter (fun (a, b, _) -> List.mem a cycle && List.mem b cycle) edges
        in
        let rules =
          List.sort_uniq compare (List.map (fun (_, _, r) -> rule_where r) cyc_edges)
        in
        let loc =
          match cyc_edges with (_, _, r) :: _ -> rule_loc r | [] -> None
        in
        add ~owner:source ?loc Error "cycle" (String.concat ", " rules)
          (Fmt.str
             "circular cost-variable dependency %s for operator %s: \
              evaluation cannot terminate"
             (String.concat " -> "
                (List.map Ast.cost_var_name (cycle @ [ List.hd cycle ])))
             operator)
      end
    end
    else List.iter (fun (_, w, _) -> dfs (v :: path) w) (succ v)
  in
  List.iter (fun v -> dfs [] v) Ast.all_cost_vars;
  List.rev !findings

(* --- Whole-source and whole-model entry points ---------------------------- *)

let dedup fs =
  List.rev
    (List.fold_left (fun acc f -> if List.mem f acc then acc else f :: acc) [] fs)

(* Findings of a circuit-broken source are kept (the model is still
   registered and will return once the breaker closes) but marked so lint
   gates match what the optimizer can actually pick right now. *)
let mark_excluded excluded fs =
  List.map (fun f -> if excluded f.source then { f with excluded = true } else f) fs

let analyze_source ?(excluded = fun _ -> false) reg ~source : finding list =
  let own =
    Registry.source_rules reg ~source
    |> List.filter (fun r -> Option.is_some (pattern_head r))
  in
  let rule_findings = List.concat_map (analyze_rule reg) own in
  let ops =
    if String.equal source Registry.default_source then Check.known_operators
    else List.sort_uniq String.compare (List.map Rule.operator own)
  in
  let chain_findings =
    List.concat_map (fun op -> analyze_chain reg ~source ~operator:op) ops
  in
  mark_excluded excluded
    (dedup (rule_findings @ adt_let_findings reg ~source @ chain_findings))

let analyze ?(excluded = fun _ -> false) reg : finding list =
  mark_excluded excluded
    (dedup
       (List.concat_map
          (fun source -> analyze_source reg ~source)
          (Registry.sources reg)))

(* --- Reporting ------------------------------------------------------------ *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Fmt.str "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json (fs : finding list) : string =
  let field k v = Fmt.str "%S: %s" k v in
  let str k v = field k (Fmt.str "\"%s\"" (json_escape v)) in
  let one f =
    let fields =
      [ str "severity" (severity_name f.severity);
        str "tag" f.tag;
        str "source" f.source ]
      @ (match f.operator with Some o -> [ str "operator" o ] | None -> [])
      @ (match f.scope with
         | Some s -> [ str "scope" (Scope.to_string s) ]
         | None -> [])
      @ [ str "where" f.where ]
      @ (match f.loc with
         | Some p ->
           [ field "line" (string_of_int p.Ast.line);
             field "col" (string_of_int p.Ast.col) ]
         | None -> [])
      @ (if f.excluded then [ field "excluded" "true" ] else [])
      @ [ str "msg" f.msg ]
    in
    "  {" ^ String.concat ", " fields ^ "}"
  in
  "[\n" ^ String.concat ",\n" (List.map one fs) ^ "\n]\n"
