(* Interval propagation of cardinality/cost bounds and estimate validation
   (DESIGN.md §14).

   Soundness argument for the cardinality lattice: every shipped count
   formula has the shape [child counts × selectivities], with selectivities
   clamped to [0, 1] by Selest and scan counts read from the catalog extent.
   Hence scan ≤ extent, select ≤ input, join ≤ product, union = sum,
   dedup/aggregate ≤ max(1, input) (the generic model floors both at one
   group). Query-scope (measured) rules are the one legal escape — a
   measured count is truth, not a formula — so nodes priced by them are
   exempted from formula-derived bounds below. *)

open Disco_common
open Disco_catalog
open Disco_algebra
open Disco_costlang
open Disco_core

type bound = { card : Interval.t; cost : Interval.t }

(* Tolerances for comparing concrete estimates against interval endpoints:
   formulas evaluate in float, bounds multiply long chains of extents, so
   allow relative drift before calling an overflow a violation. *)
let rel = 1e-9
let abs = 1e-6

let above x hi = x > (hi *. (1. +. rel)) +. abs
let below x lo = x < (lo *. (1. -. rel)) -. abs

let comparable a b =
  match (a, b) with
  | Constant.String _, Constant.String _ -> true
  | _ -> Constant.to_float_opt a <> None && Constant.to_float_opt b <> None

(* Can [attr op c] hold for any value in the derived [min, max] range?
   Conservative: undecidable ranges (missing stats, incomparable kinds)
   answer yes. *)
let sat_cmp (st : Derive.attr_stat) op c =
  let mn = st.Derive.min and mx = st.Derive.max in
  if not (comparable mn c && comparable mx c) then true
  else
    match op with
    | Cmp.Eq -> Pred.eval_cmp Cmp.Le mn c && Pred.eval_cmp Cmp.Le c mx
    | Cmp.Ne -> not (Pred.eval_cmp Cmp.Eq mn mx && Pred.eval_cmp Cmp.Eq mn c)
    | Cmp.Lt -> Pred.eval_cmp Cmp.Lt mn c
    | Cmp.Le -> Pred.eval_cmp Cmp.Le mn c
    | Cmp.Gt -> Pred.eval_cmp Cmp.Gt mx c
    | Cmp.Ge -> Pred.eval_cmp Cmp.Ge mx c

let unsat_conjunct child_stats pred =
  List.exists
    (fun conj ->
      match conj with
      | Pred.Cmp (attr, op, c) -> (
        match Derive.find_loose child_stats attr with
        | Some st -> not (sat_cmp st op c)
        | None -> false)
      | _ -> false)
    (Pred.conjuncts pred)

(* One walk computes bounds and (optionally) validates concrete estimates.
   [validate = None] is the pure bound pass used by [bounds]. *)
let analyze reg ?(validate : (Plancheck.finding -> unit) option) (ann0 : Estimator.ann) =
  let cat = Registry.catalog reg in
  let ctx = Estimator.make_ctx reg in
  let add f = match validate with Some k -> k f | None -> () in
  let finding ?scope severity tag path source msg =
    add { Plancheck.severity; tag; source = Some source; scope; path; msg }
  in
  (* Concrete estimate of one variable, reporting evaluation failures. *)
  let demand path (ann : Estimator.ann) var =
    if validate = None then None
    else
      match Estimator.require ctx ann var with
      | v -> Some v
      | exception Estimator.Aborted -> None
      | exception e ->
        (* Eval_error, or a lazily-resolved catalog miss (Unknown_source /
           Unknown_collection reached only at evaluation time): degrade to a
           finding — Plancheck pinpoints the ill-formed node. *)
        let msg =
          match e with Err.Eval_error m -> m | e -> Printexc.to_string e
        in
        finding Plancheck.Error "estimation-failure" path ann.Estimator.source
          (Fmt.str "%s cannot be estimated: %s" (Ast.cost_var_name var) msg);
        None
  in
  let scope_of ann var =
    Option.map
      (fun (p : Estimator.provenance) -> p.Estimator.rule_scope)
      (Estimator.provenance ann var)
  in
  let measured ann var = scope_of ann var = Some Scope.Query in
  let validate_value path ann var v =
    let scope = scope_of ann var in
    let name = Ast.cost_var_name var in
    if Float.is_nan v then
      finding ?scope Plancheck.Error "nan" path ann.Estimator.source
        (Fmt.str "%s is NaN" name)
    else if v < 0. then
      finding ?scope Plancheck.Error "negative" path ann.Estimator.source
        (Fmt.str "%s is negative (%g)" name v)
    else if v = Float.infinity then
      finding ?scope Plancheck.Error "divergent" path ann.Estimator.source
        (Fmt.str "%s diverges to infinity" name)
  in
  let rec walk rev_path (ann : Estimator.ann) : bound =
    let label =
      match ann.Estimator.node with
      | Plan.Scan r -> Fmt.str "scan(%s.%s)" r.Plan.source r.Plan.collection
      | Plan.Select _ -> "select"
      | Plan.Project _ -> "project"
      | Plan.Sort _ -> "sort"
      | Plan.Join _ -> "join"
      | Plan.Union _ -> "union"
      | Plan.Dedup _ -> "dedup"
      | Plan.Aggregate _ -> "aggregate"
      | Plan.Submit (s, _) -> Fmt.str "submit(%s)" s
    in
    let rev_path = label :: rev_path in
    let path = String.concat "/" (List.rev rev_path) in
    let kids = Array.map (walk rev_path) ann.Estimator.inputs in
    let child i = kids.(i) in
    let card =
      match ann.Estimator.node with
      | Plan.Scan r -> (
        match Catalog.extent_stats cat ~source:r.Plan.source r.Plan.collection with
        | exception _ -> Interval.nonneg
        | ext ->
          let n = float_of_int ext.Stats.count_objects in
          if n < 0. || Float.is_nan n then (
            finding Plancheck.Warning "tainted-bound" path ann.Estimator.source
              (Fmt.str "catalog extent of %s.%s is degenerate (%g objects)"
                 r.Plan.source r.Plan.collection n);
            Interval.with_nan true Interval.nonneg)
          else Interval.v 0. n)
      | Plan.Select (_, pred) ->
        let c = (child 0).card in
        (if
           (match Lazy.force ann.Estimator.inputs.(0).Estimator.stats with
            | st -> unsat_conjunct st pred
            | exception _ -> false)
         then
           finding Plancheck.Info "empty-select" path ann.Estimator.source
             "predicate is unsatisfiable against the derived attribute ranges");
        Interval.v ~nan:c.Interval.nan 0. c.Interval.hi
      | Plan.Project _ | Plan.Sort _ | Plan.Submit _ -> (child 0).card
      | Plan.Join _ ->
        Interval.mul (Interval.mul (child 0).card (child 1).card) Interval.unit
      | Plan.Union _ -> Interval.add (child 0).card (child 1).card
      | Plan.Dedup _ | Plan.Aggregate _ ->
        let c = (child 0).card in
        Interval.v ~nan:c.Interval.nan 0. (Float.max 1. c.Interval.hi)
    in
    let taint =
      card.Interval.nan
      || Array.exists (fun (b : bound) -> b.cost.Interval.nan) kids
    in
    let cost = Interval.with_nan taint Interval.nonneg in
    (* concrete validation *)
    (match demand path ann Ast.Count_object with
     | None -> ()
     | Some est ->
       validate_value path ann Ast.Count_object est;
       let scope = scope_of ann Ast.Count_object in
       if Float.is_nan est || est < 0. || est = Float.infinity then ()
       else if measured ann Ast.Count_object then (
         if above est card.Interval.hi || below est card.Interval.lo then
           finding ?scope Plancheck.Info "measured-deviation" path
             ann.Estimator.source
             (Fmt.str
                "measured cardinality %g lies outside the formula-derived \
                 bound %a"
                est Interval.pp card))
       else begin
         if
           (not card.Interval.nan)
           && (above est card.Interval.hi || below est card.Interval.lo)
         then
           finding ?scope Plancheck.Error "card-bound" path ann.Estimator.source
             (Fmt.str "estimated cardinality %g outside sound bound %a" est
                Interval.pp card);
         (* direct parent-vs-child monotonicity, sharper than the interval
            when the child estimate is itself below its bound *)
         let child_est i =
           let c = ann.Estimator.inputs.(i) in
           if measured c Ast.Count_object then None
           else Estimator.var c Ast.Count_object
         in
         match ann.Estimator.node with
         | Plan.Select _ | Plan.Project _ | Plan.Sort _ | Plan.Submit _ -> (
           match child_est 0 with
           | Some c when (not (Float.is_nan c)) && above est c ->
             finding ?scope Plancheck.Error "monotonicity" path
               ann.Estimator.source
               (Fmt.str "cardinality %g exceeds its input's %g" est c)
           | _ -> ())
         | Plan.Dedup _ | Plan.Aggregate _ -> (
           match child_est 0 with
           | Some c when (not (Float.is_nan c)) && above est (Float.max 1. c)
             ->
             finding ?scope Plancheck.Error "monotonicity" path
               ann.Estimator.source
               (Fmt.str "cardinality %g exceeds max(1, input %g)" est c)
           | _ -> ())
         | _ -> ()
       end);
    (match demand path ann Ast.Total_time with
     | None -> ()
     | Some t -> validate_value path ann Ast.Total_time t);
    { card; cost }
  in
  walk [] ann0

(* [Estimator.build] resolves sources eagerly and raises on a dangling
   one; bound analysis of an ill-formed plan degrades to a finding rather
   than leaking the exception (Plancheck reports the precise node). *)
let build_ann reg ~source plan =
  match Estimator.build reg ~source plan with
  | ann -> Ok ann
  | exception e -> Error (Printexc.to_string e)

let bounds ?source reg plan =
  let source = Option.value source ~default:Registry.mediator_source in
  match build_ann reg ~source plan with
  | Ok ann -> analyze reg ann
  | Error _ ->
    { card = Interval.with_nan true Interval.nonneg;
      cost = Interval.with_nan true Interval.nonneg }

let check_ann reg ann =
  let out = ref [] in
  ignore (analyze reg ~validate:(fun f -> out := f :: !out) ann);
  List.rev !out

let check ?source reg plan =
  let source = Option.value source ~default:Registry.mediator_source in
  match build_ann reg ~source plan with
  | Ok ann -> check_ann reg ann
  | Error msg ->
    [ { Plancheck.severity = Plancheck.Error; tag = "estimation-failure";
        source = None; scope = None; path = "plan";
        msg = Fmt.str "plan cannot be annotated for estimation: %s" msg } ]
