(** Typed well-formedness checking of whole plans (DESIGN.md §14).

    Where {!Analyzer} proves each cost {e formula} sound in isolation (PR 4),
    this module checks the {e plans} those formulas price: every attribute
    reference resolves against the registered schemas, predicate operands
    agree in type, join keys are comparable, projections and materialized
    results have the shape the executors assume, and batched-engine
    preconditions (selection-vector validity, column/row-count agreement)
    hold. Findings reuse the PR 4 severity vocabulary; position is the
    operator path from the root (plans carry no lexer locations). *)

open Disco_algebra
open Disco_core

type severity = Analyzer.severity = Error | Warning | Info

type finding = {
  severity : severity;
  tag : string;  (** stable machine-readable rule id, e.g. ["type-mismatch"] *)
  source : string option;  (** data source involved, when known *)
  scope : Scope.t option;  (** cost-rule scope, for estimate-derived findings *)
  path : string;  (** operator path from the root, e.g. ["join/left/scan(e)"] *)
  msg : string;
}

val errors : finding list -> finding list
val of_severity : severity -> finding list -> finding list

val pp_finding : Format.formatter -> finding -> unit
(** [path: severity [tag] source: msg] — one line, aligned with
    {!Analyzer.pp_finding}. *)

val to_json : finding list -> string
(** Stable JSON array (same hand-rolled shape as {!Analyzer.to_json}). *)

type ctx =
  [ `Mediator  (** full mediator plan: bare scans outside [Submit] are errors *)
  | `Wrapper of string
    (** wrapper-side plan for the named source: [Submit] is an error and
        every scan must stay on that source *)
  | `Any  (** placement-agnostic: accepts both shapes (plan-cache admission,
              where DP candidates include unwrapped wrapper-side trees) *) ]

val check : ?ctx:ctx -> Registry.t -> Plan.t -> finding list
(** Structural + type checks only; never estimates costs (see {!Planbound}).
    Defaults to [`Mediator]. Unknown sources/collections are reported once
    and their subtrees are skipped rather than cascading. *)

val ok : ?ctx:ctx -> Registry.t -> Plan.t -> bool
(** [errors (check ...) = []] — the cheap admission predicate. *)

(** {1 Physical-plan and batch invariants} *)

val check_physical : Disco_exec.Physical.t -> finding list
(** Shape invariants the executors assume but do not re-check: materialized
    node counts match their row lists, index access paths name indexed
    attributes, residual predicates resolve against the scanned table. *)

val check_batch : Disco_exec.Batch.t -> finding list
(** Batched-engine preconditions: attrs/columns agreement, selection-vector
    bounds, exact [bytes] accounting, non-emptiness (warning). *)
