(** A wrapper: the interface between the mediator and one data source (paper
    §2). During the registration phase it exports a [source] declaration —
    interfaces with cardinality sections computed from the actual data, plus
    whatever cost rules its implementor wrote (possibly none: the mediator's
    generic model then covers the source). During the query phase it accepts
    logical subplans, executes them on the simulated engine, and returns
    objects plus measured costs. *)

open Disco_algebra
open Disco_costlang
open Disco_storage
open Disco_exec

type t = {
  name : string;
  engine : Costs.engine;
  network : Costs.network;
  buffer : Buffer.t;
  tables : (string * Table.t) list;
  rules_text : string;  (** cost-language items exported at registration *)
  adts : Adt.t list;    (** ADT operation implementations (paper §7) *)
  export_adt_costs : bool;
      (** export [AdtCost_]/[AdtSel_] parameters at registration *)
  mutable fault : Disco_fault.Fault.t option;
      (** communication-fault injector, consulted by the mediator's submit
          policy; orthogonal to the wrapper's tables and cost rules *)
}

val create :
  name:string ->
  engine:Costs.engine ->
  network:Costs.network ->
  ?buffer_pages:int ->
  ?rules_text:string ->
  ?adts:Adt.t list ->
  Table.t list ->
  t

val without_rules : t -> t
(** The same wrapper, exporting statistics but no cost rules or ADT costs:
    the baseline calibrating behaviour, used by the validation benches. *)

val install_fault : t -> Disco_fault.Fault.profile -> unit
(** Attach a fault injector for this source, replacing any previous one.
    The wrapper's tables, rules and statistics are untouched; the mediator's
    submit policy consults the injector on every submit attempt. *)

val clear_fault : t -> unit

val find_table : t -> string -> Table.t
(** @raise Disco_common.Err.Unknown_collection when absent. *)

val table_names : t -> string list

val sample_values : t -> collection:string -> attr:string -> Disco_common.Constant.t list
(** The wrapper's sample-export method (§4.3): raw column values the mediator
    turns into histograms at registration or on feedback-driven refresh.
    @raise Disco_common.Err.Unknown_collection on an unknown collection. *)

(** {1 Registration phase (paper Fig 1)} *)

val interface_of_table : Table.t -> Ast.interface_decl
(** The wrapper's [cardinality] methods (paper §3.2): statistics computed
    from the stored data. *)

val registration_decl : t -> Ast.source_decl
(** Everything the wrapper uploads at registration: schemas, statistics and
    cost rules. @raise Disco_common.Err.Parse_error if the wrapper's rule
    text is malformed. *)

val registration_text : t -> string
(** The registration declaration as shipped on the wire — the concrete
    cost-language syntax of Figs 4/8. *)

(** {1 Query phase (paper Fig 2)} *)

val execute : ?mode:Run.mode -> t -> Plan.t -> Tuple.t list * Run.vector
(** Execute a logical subplan (no [submit] nodes) and measure it. [mode]
    selects the execution engine (default {!Run.default_mode}); both engines
    return the same rows and bit-identical simulated vectors. *)

val physical_plan : t -> Plan.t -> Physical.t
(** The physical plan the wrapper would run, for explain output. *)
