(* A wrapper: the interface between the mediator and one data source (paper
   §2). During the registration phase it exports a [source] declaration —
   interfaces with cardinality sections computed from the actual data, plus
   whatever cost rules its implementor wrote (possibly none: the mediator's
   generic model then covers the source). During the query phase it accepts
   logical subplans, translates them to physical plans over its stored
   tables, executes them on the simulated engine and returns objects plus
   measured costs. *)

open Disco_common
open Disco_catalog
open Disco_algebra
open Disco_costlang
open Disco_storage
open Disco_exec

type t = {
  name : string;
  engine : Costs.engine;
  network : Costs.network;
  buffer : Buffer.t;
  tables : (string * Table.t) list;
  rules_text : string;  (* cost-language items exported at registration *)
  adts : Adt.t list;    (* ADT operation implementations (paper §7) *)
  export_adt_costs : bool;  (* export AdtCost_/AdtSel_ parameters *)
  (* communication-fault injector, consulted by the mediator's submit policy;
     orthogonal to the wrapper's tables and cost rules *)
  mutable fault : Disco_fault.Fault.t option;
}

let create ~name ~engine ~network ?(buffer_pages = 2048) ?(rules_text = "")
    ?(adts = []) tables =
  { name;
    engine;
    network;
    buffer = Buffer.create ~capacity:buffer_pages;
    tables = List.map (fun (tbl : Table.t) -> (tbl.Table.name, tbl)) tables;
    rules_text;
    adts;
    export_adt_costs = true;
    fault = None }

let install_fault t profile =
  t.fault <- Some (Disco_fault.Fault.install profile ~source:t.name)

let clear_fault t = t.fault <- None

(* The same wrapper, exporting statistics but no cost rules or ADT costs: the
   baseline calibrating behaviour, used by the validation benches. *)
let without_rules t = { t with rules_text = ""; export_adt_costs = false }

let find_table t name =
  match List.assoc_opt name t.tables with
  | Some tbl -> tbl
  | None -> raise (Err.Unknown_collection (t.name ^ "." ^ name))

let table_names t = List.map fst t.tables

(* The wrapper's sample-export method (§4.3): raw column values the mediator
   turns into histograms at registration or on feedback-driven refresh. A
   real wrapper would subsample server-side; the mediator's histogram builder
   subsamples deterministically anyway, so the simulated one just ships the
   column. *)
let sample_values t ~collection ~attr = Table.column (find_table t collection) attr

(* --- Registration phase --------------------------------------------------- *)

(* The wrapper's [cardinality] methods (paper §3.2): statistics computed from
   the stored data. *)
let interface_of_table (tbl : Table.t) : Ast.interface_decl =
  let extent = Table.extent_stats tbl in
  let attr_decls =
    List.map
      (fun (a : Schema.attribute) -> Ast.Attr_decl (a.Schema.attr_type, a.Schema.attr_name))
      tbl.Table.schema.Schema.attributes
  in
  let stats_decls =
    List.map
      (fun (name, (st : Stats.attribute)) ->
        Ast.Attr_stats
          { attr = name;
            indexed = st.Stats.indexed;
            distinct = float_of_int st.Stats.count_distinct;
            min = st.Stats.min;
            max = st.Stats.max })
      (Table.all_attribute_stats tbl)
  in
  { Ast.iface_name = tbl.Table.name;
    iface_parent = None;
    members =
      attr_decls
      @ [ Ast.Extent_decl
            { count = float_of_int extent.Stats.count_objects;
              total = float_of_int extent.Stats.total_size;
              objsize = float_of_int extent.Stats.object_size } ]
      @ stats_decls }

(* Everything the wrapper uploads at registration (paper Fig 1, steps 2a/2b):
   schemas, statistics, and cost rules. *)
let registration_decl t : Ast.source_decl =
  let interfaces =
    List.map (fun (_, tbl) -> Ast.Interface (interface_of_table tbl)) t.tables
  in
  (* the cost and selectivity of ADT operations, exported as parameters the
     mediator harvests (paper §7) *)
  let adt_items =
    if not t.export_adt_costs then []
    else
      List.concat_map
        (fun (a : Adt.t) ->
          [ Ast.Let ("AdtCost_" ^ a.Adt.name, Ast.Num a.Adt.cost_ms);
            Ast.Let ("AdtSel_" ^ a.Adt.name, Ast.Num a.Adt.selectivity) ])
        t.adts
  in
  let rule_items =
    if String.length (String.trim t.rules_text) = 0 then []
    else Parser.parse_items ~what:(t.name ^ " cost rules") t.rules_text
  in
  { Ast.source_name = t.name; items = interfaces @ adt_items @ rule_items }

(* The registration text as shipped on the wire — the concrete cost-language
   syntax of Figs 4/8. *)
let registration_text t = Pp.source_to_string (registration_decl t)

(* --- Query phase ----------------------------------------------------------- *)

(* Execute a logical subplan (no [submit] nodes) and measure it. [mode]
   selects the execution engine, defaulting to the session default. *)
let execute ?mode t (plan : Plan.t) : Tuple.t list * Run.vector =
  let physical =
    Physical.of_logical ~engine:t.engine ~find_table:(find_table t) plan
  in
  Run.measure ?mode
    { Run.engine = t.engine; buffer = t.buffer; hash_join = false; adts = t.adts }
    physical

(* The physical plan the wrapper would run, for explain output. *)
let physical_plan t (plan : Plan.t) : Physical.t =
  Physical.of_logical ~engine:t.engine ~find_table:(find_table t) plan
