(** A reproducible federation of four heterogeneous sources, used by tests,
    examples and benchmarks. Each source exercises a different point of the
    paper's spectrum of cost-information export (§1: "from nothing to
    everything"):

    - [relstore] — relational engine; exports {e partial} rules (an accurate
      scan rule and a fast-LAN submit rule; selections and joins fall back to
      the generic model).
    - [objstore] — ObjectStore-like engine; exports {e complete} rules,
      including the Yao-formula index-scan rule of Fig 13 and an index-join
      rule that prices non-indexed joins prohibitively (this engine has no
      sort-merge join).
    - [files] — flat-file source; exports {e statistics only}: pure
      generic-model / calibration behaviour.
    - [web] — remote source behind a slow network; exports a [submit] rule
      overriding the mediator's uniform-communication assumption. *)

open Disco_catalog

val employee_schema : Schema.collection
val department_schema : Schema.collection
val project_schema : Schema.collection
val task_schema : Schema.collection
val document_schema : Schema.collection
val listing_schema : Schema.collection

val objstore_rules : string
(** The complete rule export of the object store. *)

val lang_match : Disco_exec.Adt.t
(** The files source's expensive ADT operation (200 ms/call language
    detection, selectivity 0.25), usable in queries as
    [lang_match(d.lang, "en")]. *)

val web_rules : string

type sizes = {
  employees : int;
  departments : int;
  projects : int;
  tasks : int;
  documents : int;
  listings : int;
}

val default_sizes : sizes
val small_sizes : sizes
(** A reduced data set for tests and examples. *)

val make : ?seed:int -> ?sizes:sizes -> unit -> Wrapper.t list
(** Generate the federation deterministically: [relstore], [objstore],
    [files], [web], in that order. *)

(** {1 Synthetic wide federations}

    Join-enumeration workloads for the scalability experiments (DESIGN.md
    §15): [n] single-collection sources [s0 .. s{n-1}], each holding
    [Rel{i}(id, fk, grp, v)], with rotating engines
    (relational / objectstore / flat-file), a LAN/WAN mix, and every third
    source exporting [capabilities scan;] (no pushed selections or joins).
    The join graph over them is one of four shapes. *)

(** [Chain] joins [r{i+1}.fk = r{i}.id]; [Star] joins every satellite's
    [fk] to [r0.id]; [Clique] is a chain backbone plus [grp = grp] edges
    between every remaining pair; [Random_edges k] is a random spanning
    tree plus [k] random extra [grp] edges. *)
type shape = Chain | Star | Clique | Random_edges of int

val shape_to_string : shape -> string

val synthetic_edges :
  shape:shape -> n:int -> seed:int -> (int * int * [ `Fk | `Grp ]) list
(** The join graph's edge list, deterministic in (shape, n, seed) —
    {!synthetic} and {!synthetic_sql} called with the same parameters agree
    on it. *)

val synthetic : ?seed:int -> ?rows:int -> n:int -> unit -> Wrapper.t list
(** The [n] wrappers (the data does not depend on the shape — only the
    query text does). [rows] tuples per relation (default 200). *)

val synthetic_sql : ?seed:int -> shape:shape -> n:int -> unit -> string
(** The n-way join query over the shape's edges, with a [v > 500]
    selection on every fourth relation. *)
