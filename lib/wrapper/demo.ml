(* A reproducible federation of four heterogeneous sources, used by tests,
   examples and benchmarks. Each source exercises a different point of the
   paper's spectrum of cost-information export (§1: "from nothing to
   everything"):

   - [relstore] — relational engine; exports *partial* rules (scan and
     sequential select with its true coefficients; no index or join rules,
     so the generic model fills in).
   - [objstore] — ObjectStore-like engine; exports *complete* rules,
     including the Yao-formula index-scan rule of Fig 13 and an index-join
     rule.
   - [files]    — flat-file source; exports *statistics only* (no rules at
     all): pure generic-model / calibration behaviour.
   - [web]      — remote source behind a slow network; exports a [submit]
     rule overriding the mediator's uniform communication assumption. *)

open Disco_common
open Disco_catalog
open Disco_storage
open Disco_exec

let names =
  [| "Adiba"; "Bancilhon"; "Carey"; "DeWitt"; "Gardarin"; "Naacke"; "Stonebraker";
     "Tomasic"; "Ullman"; "Valduriez"; "Widom"; "Zdonik" |]

let cities = [| "Paris"; "Versailles"; "Berlin"; "Madrid"; "Roma"; "Wien" |]
let kinds = [| "research"; "transfer"; "support"; "internal" |]
let langs = [| "en"; "fr"; "de"; "es" |]

(* --- relstore: Employee + Department -------------------------------------- *)

let employee_schema =
  Schema.collection "Employee"
    [ ("id", Schema.Tint);
      ("dept_id", Schema.Tint);
      ("salary", Schema.Tint);
      ("age", Schema.Tint);
      ("name", Schema.Tstring) ]

let department_schema =
  Schema.collection "Department"
    [ ("id", Schema.Tint); ("budget", Schema.Tint); ("city", Schema.Tstring) ]

let make_relstore ~rng ~employees ~departments =
  let emp_rows =
    List.init employees (fun i ->
        [| Constant.Int (i + 1);
           Constant.Int (1 + Rng.int rng departments);
           Constant.Int (1000 + (100 * Rng.int rng 291));
           Constant.Int (20 + Rng.int rng 46);
           Constant.String (Rng.pick rng names ^ "_" ^ string_of_int i) |])
  in
  let emp_arr = Array.of_list emp_rows in
  Rng.shuffle rng emp_arr;
  let dept_rows =
    List.init departments (fun i ->
        [| Constant.Int (i + 1);
           Constant.Int (10000 + (1000 * Rng.int rng 500));
           Constant.String (Rng.pick rng cities) |])
  in
  let employee =
    Table.create ~name:"Employee" ~schema:employee_schema ~object_size:64
      ~index_on:[ "id"; "dept_id"; "salary" ] (Array.to_list emp_arr)
  in
  let department =
    Table.create ~name:"Department" ~schema:department_schema ~object_size:48
      ~cluster_on:"id" ~index_on:[ "id" ] dept_rows
  in
  (* Partial export: an accurate scan rule with the engine's true
     coefficients, nothing else — selections, joins etc. fall back to the
     mediator's generic model on top of the corrected scan cost. Note that
     exporting a select rule here would *shadow* the generic index-scan
     strategy (the estimator only evaluates the most specific matching
     level), so a partial exporter is better off exporting none. *)
  let rules =
    {|
    let IO = 20; let Output = 2; let Startup = 80;
    let PageSize = 4096; let Fill = 0.96;

    rule scan(C) {
      CountObject = C.CountObject;
      TotalSize = C.TotalSize;
      TimeFirst = Startup + IO;
      TotalTime = Startup + IO * ceil(C.TotalSize / (PageSize * Fill))
                  + Output * C.CountObject;
      TimeNext = (TotalTime - TimeFirst) / max(C.CountObject, 1);
    }

    // fast LAN, unlike the mediator's conservative default
    rule submit(W, C) {
      CountObject = C.CountObject;
      TotalSize = C.TotalSize;
      TimeFirst = 60 + C.TimeFirst + 0.005 * C.ObjectSize;
      TotalTime = 60 + C.TotalTime + 0.005 * C.TotalSize;
      TimeNext = (TotalTime - TimeFirst) / max(C.CountObject, 1);
    }
    |}
  in
  Wrapper.create ~name:"relstore" ~engine:Costs.relational ~network:Costs.lan
    ~rules_text:rules
    [ employee; department ]

(* --- objstore: Project + Task ---------------------------------------------- *)

let project_schema =
  Schema.collection "Project"
    [ ("id", Schema.Tint);
      ("dept_id", Schema.Tint);
      ("cost", Schema.Tint);
      ("hours_budget", Schema.Tint);
      ("kind", Schema.Tstring) ]

let task_schema =
  Schema.collection "Task"
    [ ("id", Schema.Tint); ("project_id", Schema.Tint); ("hours", Schema.Tint) ]

(* The complete rule export, including the Yao index-scan formula the paper
   derives in §5 (Fig 13) and an index-join rule. *)
let objstore_rules =
  {|
  let IO = 25; let Output = 9; let Eval = 0.4; let Startup = 120; let Probe = 12;
  let PageSize = 4096; let Fill = 0.96;
  let Huge = 1e18;

  rule scan(C) {
    CountObject = C.CountObject;
    TotalSize = C.TotalSize;
    TimeFirst = Startup + IO;
    TotalTime = Startup + IO * ceil(C.TotalSize / (PageSize * Fill))
                + Output * C.CountObject;
    TimeNext = (TotalTime - TimeFirst) / max(C.CountObject, 1);
  }

  rule select(C, P) {
    CountObject = C.CountObject * sel(P);
    TotalSize = CountObject * C.ObjectSize;
    TimeFirst = C.TimeFirst + Eval + adtcost(P);
    TotalTime = C.TotalTime + (Eval + adtcost(P)) * C.CountObject;
    TimeNext = (TotalTime - TimeFirst) / max(CountObject, 1);
  }

  // Unclustered index scan: Yao page-fetch model (paper Fig 13).
  rule select(C, P) {
    CountPage = ceil(C.TotalSize / (PageSize * Fill));
    CountObject = C.CountObject * sel(P);
    TimeFirst = if(indexed(P), Startup + 3 * Probe + IO, Huge);
    TotalTime = if(indexed(P),
                   Startup + 3 * Probe
                   + IO * CountPage * yao(C.CountObject, CountPage, CountObject)
                   + Output * CountObject,
                   Huge);
  }

  // Index join: one index probe per outer object; the IO is the number of
  // distinct inner pages the fetches touch (Yao over the result
  // cardinality — the buffer pool absorbs repeats). This engine has no
  // other join method: a non-indexed join is a nested loop the implementor
  // prices prohibitively (the mediator should compose instead).
  rule join(C1, C2, P) {
    CountPage2 = ceil(C2.TotalSize / (PageSize * Fill));
    CountObject = C1.CountObject * C2.CountObject * sel(P);
    TotalSize = CountObject * (C1.ObjectSize + C2.ObjectSize);
    TimeFirst = if(rindexed(P), C1.TimeFirst + 3 * Probe + IO, Huge);
    TotalTime = if(rindexed(P),
                   C1.TotalTime + C1.CountObject * 3 * Probe
                   + IO * CountPage2 * yao(C2.CountObject, CountPage2, CountObject)
                   + Output * CountObject,
                   Huge);
  }

  // fast LAN, unlike the mediator's conservative default
  rule submit(W, C) {
    CountObject = C.CountObject;
    TotalSize = C.TotalSize;
    TimeFirst = 60 + C.TimeFirst + 0.005 * C.ObjectSize;
    TotalTime = 60 + C.TotalTime + 0.005 * C.TotalSize;
    TimeNext = (TotalTime - TimeFirst) / max(C.CountObject, 1);
  }
  |}

let make_objstore ~rng ~projects ~tasks ~departments =
  let project_rows =
    List.init projects (fun i ->
        [| Constant.Int (i + 1);
           Constant.Int (1 + Rng.int rng departments);
           Constant.Int (5000 + (500 * Rng.int rng 200));
           Constant.Int (1 + Rng.int rng 400);
           Constant.String (Rng.pick rng kinds) |])
  in
  let project_arr = Array.of_list project_rows in
  Rng.shuffle rng project_arr;
  let task_rows =
    List.init tasks (fun i ->
        [| Constant.Int (i + 1);
           Constant.Int (1 + Rng.int rng projects);
           Constant.Int (1 + Rng.int rng 400) |])
  in
  let task_arr = Array.of_list task_rows in
  Rng.shuffle rng task_arr;
  let project =
    Table.create ~name:"Project" ~schema:project_schema ~object_size:56
      ~index_on:[ "id"; "dept_id" ] (Array.to_list project_arr)
  in
  let task =
    Table.create ~name:"Task" ~schema:task_schema ~object_size:56
      ~index_on:[ "id"; "project_id" ] (Array.to_list task_arr)
  in
  Wrapper.create ~name:"objstore" ~engine:Costs.objectstore ~network:Costs.lan
    ~rules_text:objstore_rules
    [ project; task ]

(* --- files: Document (statistics only, no rules) ---------------------------- *)

let document_schema =
  Schema.collection "Document"
    [ ("doc_id", Schema.Tint);
      ("project_id", Schema.Tint);
      ("bytes", Schema.Tint);
      ("lang", Schema.Tstring) ]

(* An expensive abstract-data-type operation (paper §7): language detection
   over a document — 200 ms per call against fractions of a millisecond for
   ordinary comparisons. The implementation is shipped to the mediator like
   cost rules are; the cost and selectivity are exported as [AdtCost_]/
   [AdtSel_] parameters (even though this wrapper exports no cost rules). *)
let lang_match =
  Adt.make ~name:"lang_match" ~cost_ms:200. ~selectivity:0.25 (fun a v ->
      match a, v with
      | Constant.String a, Constant.String v ->
        String.lowercase_ascii a = String.lowercase_ascii v
      | _ -> false)

let make_files ~rng ~documents ~projects =
  let rows =
    List.init documents (fun i ->
        [| Constant.Int (i + 1);
           Constant.Int (1 + Rng.int rng projects);
           Constant.Int (100 + Rng.int rng 100_000);
           Constant.String (Rng.pick rng langs) |])
  in
  let document =
    Table.create ~name:"Document" ~schema:document_schema ~object_size:80 rows
  in
  Wrapper.create ~name:"files" ~engine:Costs.flat_file ~network:Costs.lan
    ~adts:[ lang_match ]
    [ document ]

(* --- web: Listing behind a slow network ------------------------------------- *)

let listing_schema =
  Schema.collection "Listing"
    [ ("id", Schema.Tint); ("emp_id", Schema.Tint); ("rating", Schema.Tint) ]

(* The wrapper knows its communication is expensive and overrides the
   mediator's uniform-communication submit rule. *)
let web_rules =
  {|
  // the web source can only deliver whole listings: no server-side
  // selection, projection or join (paper §2.1 capabilities)
  capabilities scan;

  let MsgCost = 4000; let ByteCost = 0.08;
  let IO = 20; let Output = 2; let Eval = 0.15; let Startup = 80;
  let PageSize = 4096; let Fill = 0.96;

  rule submit(W, C) {
    CountObject = C.CountObject;
    TotalSize = C.TotalSize;
    TimeFirst = MsgCost + C.TimeFirst + ByteCost * C.ObjectSize;
    TotalTime = MsgCost + C.TotalTime + ByteCost * C.TotalSize;
    TimeNext = (TotalTime - TimeFirst) / max(C.CountObject, 1);
  }

  rule scan(C) {
    CountObject = C.CountObject;
    TotalSize = C.TotalSize;
    TimeFirst = Startup + IO;
    TotalTime = Startup + IO * ceil(C.TotalSize / (PageSize * Fill))
                + Output * C.CountObject;
    TimeNext = (TotalTime - TimeFirst) / max(C.CountObject, 1);
  }
  |}

let make_web ~rng ~listings ~employees =
  let rows =
    List.init listings (fun i ->
        [| Constant.Int (i + 1);
           Constant.Int (1 + Rng.int rng employees);
           Constant.Int (1 + Rng.int rng 5) |])
  in
  let arr = Array.of_list rows in
  Rng.shuffle rng arr;
  let listing =
    Table.create ~name:"Listing" ~schema:listing_schema ~object_size:32
      ~index_on:[ "id"; "emp_id" ] (Array.to_list arr)
  in
  Wrapper.create ~name:"web" ~engine:Costs.relational ~network:Costs.wan
    ~rules_text:web_rules
    [ listing ]

(* --- The federation --------------------------------------------------------- *)

type sizes = {
  employees : int;
  departments : int;
  projects : int;
  tasks : int;
  documents : int;
  listings : int;
}

let default_sizes =
  { employees = 8000;
    departments = 200;
    projects = 4000;
    tasks = 20000;
    documents = 3000;
    listings = 5000 }

let small_sizes =
  { employees = 400;
    departments = 20;
    projects = 200;
    tasks = 1000;
    documents = 150;
    listings = 250 }

let make ?(seed = 42) ?(sizes = default_sizes) () : Wrapper.t list =
  let rng = Rng.create ~seed in
  [ make_relstore ~rng ~employees:sizes.employees ~departments:sizes.departments;
    make_objstore ~rng ~projects:sizes.projects ~tasks:sizes.tasks
      ~departments:sizes.departments;
    make_files ~rng ~documents:sizes.documents ~projects:sizes.projects;
    make_web ~rng ~listings:sizes.listings ~employees:sizes.employees ]

(* --- Synthetic wide federations (join-enumeration workloads) ----------------- *)

type shape = Chain | Star | Clique | Random_edges of int

let shape_to_string = function
  | Chain -> "chain"
  | Star -> "star"
  | Clique -> "clique"
  | Random_edges k -> Fmt.str "random%d" k

let synthetic_schema i =
  Schema.collection (Fmt.str "Rel%d" i)
    [ ("id", Schema.Tint);
      ("fk", Schema.Tint);
      ("grp", Schema.Tint);
      ("v", Schema.Tint) ]

(* The join graph as an edge list over source indices. [`Fk (a, b)] is a
   foreign-key edge (relation [b]'s [fk] references [a]'s [id]); [`Grp]
   edges are equi-joins on the shared low-cardinality [grp] attribute —
   used where a relation would otherwise need several foreign keys (clique
   and random extra edges). Deterministic in (shape, n, seed) so the
   federation and the query text always agree on the graph. *)
let synthetic_edges ~shape ~n ~seed =
  match shape with
  | Chain -> List.init (n - 1) (fun i -> (i, i + 1, `Fk))
  | Star -> List.init (n - 1) (fun i -> (0, i + 1, `Fk))
  | Clique ->
    let backbone = List.init (n - 1) (fun i -> (i, i + 1, `Fk)) in
    let extra = ref [] in
    for b = n - 1 downto 0 do
      for a = b - 2 downto 0 do extra := (a, b, `Grp) :: !extra done
    done;
    backbone @ !extra
  | Random_edges k ->
    let rng = Rng.create ~seed:(seed + 7919) in
    let tree = List.init (n - 1) (fun i -> (Rng.int rng (i + 1), i + 1, `Fk)) in
    let seen = Hashtbl.create 16 in
    List.iter (fun (a, b, _) -> Hashtbl.replace seen (a, b) ()) tree;
    let extra = ref [] and added = ref 0 and attempts = ref 0 in
    while !added < k && !attempts < (10 * k) + 100 do
      incr attempts;
      let a = Rng.int rng n and b = Rng.int rng n in
      let a, b = (min a b, max a b) in
      if a <> b && not (Hashtbl.mem seen (a, b)) then begin
        Hashtbl.replace seen (a, b) ();
        extra := (a, b, `Grp) :: !extra;
        incr added
      end
    done;
    tree @ List.rev !extra

let synthetic ?(seed = 42) ?(rows = 200) ~n () : Wrapper.t list =
  let rng = Rng.create ~seed in
  List.init n (fun i ->
      let row_list =
        List.init rows (fun r ->
            [| Constant.Int (r + 1);
               Constant.Int (1 + Rng.int rng rows);
               Constant.Int (Rng.int rng 32);
               Constant.Int (Rng.int rng 1000) |])
      in
      let table =
        Table.create ~name:(Fmt.str "Rel%d" i) ~schema:(synthetic_schema i)
          ~object_size:32
          ~index_on:[ "id"; "fk" ]
          row_list
      in
      let engine =
        match i mod 3 with
        | 0 -> Costs.relational
        | 1 -> Costs.objectstore
        | _ -> Costs.flat_file
      in
      let network = if i mod 5 = 4 then Costs.wan else Costs.lan in
      (* every third source is scan-only: no pushed selections or joins,
         so placement has to route around it (paper §2.1 capabilities) *)
      let rules_text = if i mod 3 = 2 then Some "capabilities scan;" else None in
      Wrapper.create ~name:(Fmt.str "s%d" i) ~engine ~network ?rules_text
        [ table ])

let synthetic_sql ?(seed = 42) ~shape ~n () =
  let edges = synthetic_edges ~shape ~n ~seed in
  let froms =
    String.concat ", " (List.init n (fun i -> Fmt.str "Rel%d r%d" i i))
  in
  let joins =
    List.map
      (fun (a, b, kind) ->
        match kind with
        | `Fk -> Fmt.str "r%d.fk = r%d.id" b a
        | `Grp -> Fmt.str "r%d.grp = r%d.grp" a b)
      edges
  in
  let selects =
    List.filter_map
      (fun i -> if i mod 4 = 2 then Some (Fmt.str "r%d.v > 500" i) else None)
      (List.init n Fun.id)
  in
  Fmt.str "select r0.id from %s where %s" froms
    (String.concat " and " (joins @ selects))
