let max_domains = 64

type t = { degree : int }

let create n = { degree = max 1 (min n max_domains) }
let degree t = t.degree

let env_domains () =
  match Sys.getenv_opt "DISCO_DOMAINS" with
  | None -> 1
  | Some s ->
    (match int_of_string_opt (String.trim s) with
     | Some n -> max 1 (min n max_domains)
     | None -> 1)

(* One shared worker set for the whole process. A worker owns a mailbox
   (mutex + condition + job slot); the master hands it a thunk and waits for
   the slot to empty again. Workers are spawned lazily up to the largest
   degree any [run] has needed and joined at exit. *)

type mailbox = {
  m : Mutex.t;
  cv : Condition.t;
  mutable job : (unit -> unit) option;
  mutable stop : bool;
}

type worker = { box : mailbox; domain : unit Domain.t }

(* Serializes worker spawning and fork/join rounds: only one [run] at a time
   owns the worker set. Nested calls never take it (they run inline). *)
let client_lock = Mutex.create ()
let workers : worker list ref = ref []

let worker_loop (b : mailbox) =
  let continue = ref true in
  while !continue do
    Mutex.lock b.m;
    while b.job = None && not b.stop do
      Condition.wait b.cv b.m
    done;
    if b.stop then begin
      Mutex.unlock b.m;
      continue := false
    end
    else begin
      let f = Option.get b.job in
      Mutex.unlock b.m;
      (* [f] traps its own exceptions; a raise here would kill the worker. *)
      (try f () with _ -> ());
      Mutex.lock b.m;
      b.job <- None;
      Condition.broadcast b.cv;
      Mutex.unlock b.m
    end
  done

let spawn_worker () =
  let box =
    { m = Mutex.create (); cv = Condition.create (); job = None; stop = false }
  in
  { box; domain = Domain.spawn (fun () -> worker_loop box) }

(* Ensure at least [n] workers exist; caller holds [client_lock]. Returns
   the first [n] in a stable order so slot [s] always maps to the same
   worker within a round. *)
let ensure_workers n =
  while List.length !workers < n do
    workers := !workers @ [ spawn_worker () ]
  done;
  Array.of_list !workers

let submit w f =
  let b = w.box in
  Mutex.lock b.m;
  b.job <- Some f;
  Condition.broadcast b.cv;
  Mutex.unlock b.m

let await w =
  let b = w.box in
  Mutex.lock b.m;
  while b.job <> None do
    Condition.wait b.cv b.m
  done;
  Mutex.unlock b.m

let shutdown () =
  Mutex.lock client_lock;
  let ws = !workers in
  workers := [];
  Mutex.unlock client_lock;
  List.iter
    (fun w ->
      let b = w.box in
      Mutex.lock b.m;
      b.stop <- true;
      Condition.broadcast b.cv;
      Mutex.unlock b.m)
    ws;
  List.iter (fun w -> Domain.join w.domain) ws

let () = at_exit shutdown

(* True inside a pool task: a nested [run] must execute inline rather than
   wait on workers that may themselves be waiting on it. *)
let in_task : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

let run t f n =
  if n <= 0 then [||]
  else
    let p = min t.degree n in
    if p <= 1 || Domain.DLS.get in_task then Array.init n f
    else begin
      let results = Array.make n None in
      let errors = Array.make p None in
      let run_slot slot =
        Domain.DLS.set in_task true;
        let i = ref slot in
        while !i < n do
          (match errors.(slot) with
           | Some _ -> () (* slot already failed: skip its remaining tasks *)
           | None -> (
             try results.(!i) <- Some (f !i)
             with e ->
               errors.(slot) <- Some (e, Printexc.get_raw_backtrace ())));
          i := !i + p
        done;
        Domain.DLS.set in_task false
      in
      Mutex.lock client_lock;
      let ws =
        match ensure_workers (p - 1) with
        | ws -> ws
        | exception e ->
          Mutex.unlock client_lock;
          raise e
      in
      for s = 1 to p - 1 do
        submit ws.(s - 1) (fun () -> run_slot s)
      done;
      run_slot 0;
      for s = 1 to p - 1 do
        await ws.(s - 1)
      done;
      Mutex.unlock client_lock;
      Array.iter
        (function
          | Some (e, bt) -> Printexc.raise_with_backtrace e bt
          | None -> ())
        errors;
      Array.map
        (function
          | Some v -> v
          | None -> assert false)
        results
    end

let chunk p xs =
  let len = List.length xs in
  if len = 0 then [||]
  else begin
    let p = max 1 (min p len) in
    let base = len / p and extra = len mod p in
    let chunks = Array.make p [] in
    let rest = ref xs in
    for c = 0 to p - 1 do
      let size = base + if c < extra then 1 else 0 in
      let taken = ref [] in
      for _ = 1 to size do
        match !rest with
        | x :: tl ->
          taken := x :: !taken;
          rest := tl
        | [] -> assert false
      done;
      chunks.(c) <- List.rev !taken
    done;
    chunks
  end

let reduce f a =
  match Array.length a with
  | 0 -> None
  | n ->
    let acc = ref a.(0) in
    for i = 1 to n - 1 do
      acc := f !acc a.(i)
    done;
    Some !acc
