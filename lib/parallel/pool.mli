(** A shared fixed pool of OCaml 5 domains with a fork/join helper and
    deterministic reduction.

    The pool exists to parallelize two embarrassingly parallel hot spots of
    the mediator — plan-space search and wrapper scatter-gather — without
    perturbing their sequential semantics. The design invariants callers
    rely on:

    - {b Slot determinism.} {!run} executes task [i] on slot [i mod p]
      (slot 0 is the calling domain, which participates). Within a slot,
      tasks run in increasing index order. Results come back as an array
      indexed by task, so any reduction the caller performs in index order
      is independent of the interleaving across slots.
    - {b Exception determinism.} If several tasks raise, the exception from
      the lowest-numbered slot is re-raised after the barrier; the others
      are dropped. All slots always run to completion (a slot that has
      already failed skips its remaining tasks).
    - {b Reentrancy.} A task that calls {!run} again executes the nested
      tasks inline on its own domain — the pool never deadlocks on nested
      fork/join, it just loses the nested parallelism.
    - {b Shared workers.} Worker domains are process-global, spawned on
      demand up to the largest degree requested, reused across pools, and
      joined at process exit. Concurrent {!run} calls from different
      domains serialize on the worker set. *)

type t
(** A pool handle: a requested degree of parallelism over the shared
    worker set. Handles are cheap — no domain is spawned until {!run}
    actually needs one. *)

val create : int -> t
(** [create n] is a pool of degree [max 1 (min n max_domains)]. *)

val degree : t -> int

val max_domains : int
(** Upper clamp on any pool degree (64). *)

val env_domains : unit -> int
(** The degree requested by the [DISCO_DOMAINS] environment variable,
    clamped to [1 .. max_domains]; [1] when unset or unparsable. *)

val run : t -> (int -> 'a) -> int -> 'a array
(** [run t f n] evaluates [f 0 .. f (n-1)] across [min (degree t) n]
    domains and returns [[| f 0; ...; f (n-1) |]]. See the invariants
    above. [f] must not assume anything about which domain it runs on
    beyond slot determinism; cross-task mutable state must be sharded by
    slot or protected by the caller. *)

val chunk : int -> 'a list -> 'a list array
(** [chunk p xs] splits [xs] into [min p (length xs)] contiguous chunks
    (empty input gives an empty array) whose sizes differ by at most one,
    earlier chunks larger. Concatenating the chunks in index order yields
    [xs] — the helper parallel loops use to keep chunked iteration in the
    same order as the sequential fold they replace. *)

val reduce : ('a -> 'a -> 'a) -> 'a array -> 'a option
(** Left fold in index order — the deterministic reduction for per-slot
    partial results. [None] on an empty array. *)

val shutdown : unit -> unit
(** Join all spawned worker domains. Automatically registered with
    [at_exit]; safe to call more than once (subsequent {!run}s respawn
    workers as needed). *)
