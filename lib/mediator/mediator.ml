(* The mediator facade: registration phase (paper Fig 1) and query processing
   phase (Fig 2). [register] uploads a wrapper's schemas, statistics and cost
   rules into the catalog and rule registry; [run_query] parses a declarative
   query, optimizes it under the blended cost model, executes the chosen plan
   (submitting subplans to wrappers and composing their answers), and feeds
   measured costs back into the historical-cost extension. *)

open Disco_common
open Disco_catalog
open Disco_algebra
open Disco_core
open Disco_storage
open Disco_exec
open Disco_wrapper
open Disco_fault
open Disco_sql

module Plan_tbl = Hashtbl.Make (struct
  type t = Plan.t

  let equal = Plan.equal_structural
  let hash = Plan.hash
end)

type t = {
  catalog : Catalog.t;
  registry : Registry.t;
  (* the active history partition. One-shot use never touches it; the
     server swaps in a per-tenant partition before each query (under its
     execution lock), so feedback records and drift streaks are
     per-tenant while the registry-level effects (adjust factors,
     selectivity corrections, query-scope rules) blend into the shared
     model as always. *)
  mutable history : History.t;
  plancache : Plancache.t;
  (* plans already verified clean, stamped with the registry generation
     they verified at: the warm query path under [~verify:true] skips the
     checker walks for a plan it has already proven at the current model
     (same contract as the plan cache's stamped entries). *)
  verify_memo : int Plan_tbl.t;
  health : Health.t;
  (* simulated wall clock, in ms; advances only when submit traffic runs
     (wrapper work, communication, injected anomalies, retry backoff). The
     fault injectors' windows and the circuit-breaker cooldowns live on it. *)
  mutable now : float;
  (* escape hatch (the CLI's --no-cache): when off, every optimization
     re-estimates from scratch — the reference behavior the differential
     tests compare against *)
  mutable cache_enabled : bool;
  (* strict-mode contract for registration-time static analysis: [`Error]
     rejects an export whose lint has error-severity findings, [`Warn] logs
     and keeps them inspectable, [`Off] skips the analyzer *)
  lint : [ `Error | `Warn | `Off ];
  mutable last_lint : Disco_analysis.Analyzer.finding list;
  mutable wrappers : (string * Wrapper.t) list;
  (* degree of the domain pool used for plan search and scatter-gather
     submit execution; 1 = fully sequential. Parallelism is value-preserving
     (see Optimizer and [to_physical]), so this is a throughput knob, never
     a semantics knob. *)
  domains : int;
  (* feedback-driven statistics (§4.3, DESIGN.md §11). Off by default: the
     estimator then never sees a histogram or a selectivity correction and
     every estimate is bit-identical to a mediator without the subsystem. *)
  stats_mode : stats_mode;
  (* join-enumeration engine (DESIGN.md §15): auto hands exact DPccp over
     to the greedy path above [enum_threshold] relations *)
  enum_mode : Optimizer.enum_mode;
  enum_threshold : int;
  (* cumulative optimizer counters across every optimization this mediator
     ran; surfaced through the server's /metrics so plan-search cost is
     observable in production mode *)
  opt_stats : Optimizer.stats;
}

and stats_mode = Stats_off | Stats_feedback of History.feedback

module Pool = Disco_parallel.Pool

let stats_on t = t.stats_mode <> Stats_off

(* Statistics harvest: turn the wrapper's sample export into equi-depth
   histograms on every attribute of every collection it registered. The
   build is deterministic (fixed Rng seed), so repeated harvests of
   unchanged data produce identical histograms. *)
let harvest_wrapper t (w : Wrapper.t) =
  List.iter
    (fun coll ->
      let entry =
        Catalog.find_collection t.catalog ~source:w.Wrapper.name coll
      in
      List.iter
        (fun (a : Schema.attribute) ->
          let attr = a.Schema.attr_name in
          let values = Wrapper.sample_values w ~collection:coll ~attr in
          Catalog.set_histogram t.catalog ~source:w.Wrapper.name ~collection:coll
            ~attr (Histogram.of_values values))
        entry.Catalog.schema.Schema.attributes)
    (Catalog.collections t.catalog ~source:w.Wrapper.name)

(* Drift-triggered recalibration: re-sample the drifting source and rebuild
   its histograms. Runs on the gather domain (History.observe's caller);
   catalog writes are plain replacements and estimation re-reads them only
   after the accompanying generation bump drops cached plans. *)
let refresh_histograms t ~source =
  match List.assoc_opt source t.wrappers with
  | Some w when stats_on t -> harvest_wrapper t w
  | _ -> ()

let create ?backend ?calibration ?(history_mode = History.Off) ?(cache = true)
    ?policy ?(lint = `Warn) ?domains ?(stats_mode = Stats_off) ?enum_mode
    ?enum_threshold () =
  let domains =
    match domains with Some d -> max 1 (min d Pool.max_domains) | None -> Pool.env_domains ()
  in
  let enum_mode =
    match enum_mode with Some m -> m | None -> Optimizer.env_enum_mode ()
  in
  let enum_threshold =
    match enum_threshold with
    | Some n -> max 1 n
    | None -> Optimizer.default_enum_threshold
  in
  let catalog = Catalog.create () in
  let registry = Registry.create ?backend catalog in
  Generic.register ?calibration registry;
  (* Admission gate of the plan cache: structural well-formedness only
     (Plancheck), placement-agnostic — optimizer DP candidates include
     unwrapped wrapper-side trees. Bound validation (Planbound) re-enters
     the estimator, which itself consults this cache, so it stays out of
     the admission path and runs on chosen plans instead (run_query
     ~verify / verify_plan). *)
  let plancache =
    Plancache.create
      ~verify:(fun reg plan -> Disco_analysis.Plancheck.ok ~ctx:`Any reg plan)
      ()
  in
  let t =
    { catalog;
      registry;
      history = History.create ~mode:history_mode registry;
      plancache;
      verify_memo = Plan_tbl.create 64;
      health = Health.create ?policy ();
      now = 0.;
      cache_enabled = cache;
      lint;
      last_lint = [];
      wrappers = [];
      domains;
      stats_mode;
      enum_mode;
      enum_threshold;
      opt_stats = Optimizer.new_stats () }
  in
  (match stats_mode with
   | Stats_off -> ()
   | Stats_feedback fb ->
     History.set_feedback t.history
       ~on_drift:(fun ~source -> refresh_histograms t ~source)
       (Some fb));
  t

let registry t = t.registry
let catalog t = t.catalog
let history t = t.history

(* A fresh history partition wired like the mediator's own: same mode, and
   when feedback statistics are on, the same drift hook (histogram
   recalibration). The server creates one per tenant. *)
let fresh_history t =
  let h = History.create ~mode:(History.mode t.history) t.registry in
  (match t.stats_mode with
   | Stats_off -> ()
   | Stats_feedback fb ->
     History.set_feedback h
       ~on_drift:(fun ~source -> refresh_histograms t ~source)
       (Some fb));
  h

let set_history t h = t.history <- h
let plancache t = t.plancache
let health t = t.health
let now t = t.now
let set_now t v = t.now <- v
let cache_enabled t = t.cache_enabled
let set_cache_enabled t on = t.cache_enabled <- on
let lint_mode t = t.lint
let last_lint t = t.last_lint
let domains t = t.domains
let stats_mode t = t.stats_mode
let enum_mode t = t.enum_mode
let enum_threshold t = t.enum_threshold

(* A copy, so callers can't corrupt the accumulator. *)
let optimizer_stats t =
  let s = Optimizer.new_stats () in
  Optimizer.merge_stats ~into:s t.opt_stats;
  s

let active_cache t = if t.cache_enabled then Some t.plancache else None

(* Registration phase: the wrapper returns schemas, statistics and cost
   information; the mediator statically checks the export, then compiles and
   stores it. Re-registration refreshes statistics and replaces rules. *)
let register t (w : Wrapper.t) =
  let decl = Wrapper.registration_decl w in
  (match Disco_costlang.Check.errors (Disco_costlang.Check.check_source decl) with
   | [] -> ()
   | err :: _ ->
     raise
       (Err.Eval_error
          (Fmt.str "registration of %S rejected: %a" w.Wrapper.name
             Disco_costlang.Check.pp_issue err)));
  ignore (Registry.register_source_decl t.registry decl);
  (* static analysis of the freshly blended model (lib/analysis): in strict
     mode an export whose merged chains can raise, diverge or produce
     meaningless costs is rejected and rolled back *)
  (match t.lint with
   | `Off -> t.last_lint <- []
   | (`Warn | `Error) as mode ->
     let module A = Disco_analysis.Analyzer in
     let breaker_open src =
       match Health.state t.health src with
       | Health.Open _ -> true
       | Health.Closed | Health.Half_open _ -> false
     in
     let findings =
       A.analyze_source ~excluded:breaker_open t.registry
         ~source:decl.Disco_costlang.Ast.source_name
     in
     t.last_lint <- findings;
     (match mode, A.errors (A.active findings) with
      | `Error, (err :: _ as errs) ->
        Registry.clear_source t.registry ~source:decl.Disco_costlang.Ast.source_name;
        raise
          (Err.Eval_error
             (Fmt.str "registration of %S rejected by lint (%d error%s): %a"
                w.Wrapper.name (List.length errs)
                (if List.length errs = 1 then "" else "s")
                A.pp_finding err))
      | _, _ ->
        List.iter
          (fun f ->
            match f.A.severity with
            | A.Error | A.Warning ->
              Logs.warn (fun m -> m "lint: %a" A.pp_finding f)
            | A.Info -> Logs.info (fun m -> m "lint: %a" A.pp_finding f))
          findings));
  t.wrappers <- (w.Wrapper.name, w) :: List.remove_assoc w.Wrapper.name t.wrappers;
  if stats_on t then harvest_wrapper t w

let find_wrapper t name =
  match List.assoc_opt name t.wrappers with
  | Some w -> w
  | None -> raise (Err.Unknown_source name)

(* --- Query resolution: SQL -> optimizer spec -------------------------------- *)

type resolved = {
  spec : Optimizer.spec;
  post_pred : Pred.t;                 (* residual mediator-side predicate *)
  (* expensive (ADT) single-relation predicates whose placement — pushed to
     the wrapper or deferred past the joins — is decided by cost (§7) *)
  deferrable : (string * Pred.t) list;
  items : Sql.item list;
  star : bool;
  star_attrs : string list;           (* output attributes for SELECT * *)
  distinct : bool;
  group_by : string list;
  order_by : (string * Plan.order) list;
  limit : int option;
}

let resolve t (q : Sql.t) : resolved =
  (* resolve each relation to a source *)
  let rels =
    List.map
      (fun (r : Sql.relation) ->
        let source =
          match r.Sql.rel_source with
          | Some s ->
            if not (Catalog.mem_collection t.catalog ~source:s r.Sql.rel_collection)
            then raise (Err.Unknown_collection (s ^ "." ^ r.Sql.rel_collection));
            s
          | None ->
            (match Catalog.locate_collection t.catalog r.Sql.rel_collection with
             | Some s -> s
             | None -> raise (Err.Unknown_collection r.Sql.rel_collection))
        in
        { Plan.source; collection = r.Sql.rel_collection; binding = r.Sql.rel_alias })
      q.Sql.relations
  in
  (* alias uniqueness *)
  let aliases = List.map (fun r -> r.Plan.binding) rels in
  let rec dup = function
    | [] -> None
    | a :: rest -> if List.mem a rest then Some a else dup rest
  in
  (match dup aliases with
   | Some a -> raise (Err.Plan_error (Fmt.str "duplicate alias %S" a))
   | None -> ());
  let attrs_of r =
    let entry =
      Catalog.find_collection t.catalog ~source:r.Plan.source r.Plan.collection
    in
    Schema.attribute_names entry.Catalog.schema
  in
  (* qualify an attribute reference *)
  let qualify name =
    match Plan.split_attr name with
    | Some (alias, attr) ->
      (match List.find_opt (fun r -> String.equal r.Plan.binding alias) rels with
       | Some r ->
         if List.mem attr (attrs_of r) then name
         else raise (Err.Unknown_attribute { collection = r.Plan.collection; attribute = attr })
       | None -> raise (Err.Plan_error (Fmt.str "unknown alias %S in %S" alias name)))
    | None ->
      (match List.filter (fun r -> List.mem name (attrs_of r)) rels with
       | [ r ] -> r.Plan.binding ^ "." ^ name
       | [] -> raise (Err.Plan_error (Fmt.str "unknown attribute %S" name))
       | _ -> raise (Err.Plan_error (Fmt.str "ambiguous attribute %S" name)))
  in
  let rec qualify_pred = function
    | Pred.Cmp (a, op, v) -> Pred.Cmp (qualify a, op, v)
    | Pred.Attr_cmp (a, op, b) -> Pred.Attr_cmp (qualify a, op, qualify b)
    | Pred.Apply (fn, a, v) -> Pred.Apply (fn, qualify a, v)
    | Pred.And (p, q) -> Pred.And (qualify_pred p, qualify_pred q)
    | Pred.Or (p, q) -> Pred.Or (qualify_pred p, qualify_pred q)
    | Pred.Not p -> Pred.Not (qualify_pred p)
    | Pred.True -> Pred.True
  in
  let where = qualify_pred q.Sql.where in
  let items =
    List.map
      (function
        | Sql.Col a -> Sql.Col (qualify a)
        | Sql.Agg (f, "", o) -> Sql.Agg (f, "", o)
        | Sql.Agg (f, i, o) -> Sql.Agg (f, qualify i, o))
      q.Sql.items
  in
  let group_by = List.map qualify q.Sql.group_by in
  (* ORDER BY may reference an aggregate's output name, which is not a base
     attribute *)
  let agg_outputs =
    List.filter_map (function Sql.Agg (_, _, o) -> Some o | Sql.Col _ -> None) items
  in
  let order_by =
    List.map
      (fun (a, o) -> if List.mem a agg_outputs then (a, o) else (qualify a, o))
      q.Sql.order_by
  in
  (* partition the WHERE conjuncts *)
  let alias_of a = Option.map fst (Plan.split_attr a) in
  let conjuncts = Pred.conjuncts where in
  let classify p =
    let alias_set =
      List.sort_uniq String.compare (List.filter_map alias_of (Pred.attributes p))
    in
    match p, alias_set with
    | Pred.Cmp _, [ a ] -> `Local a
    | Pred.Attr_cmp (x, _, y), [ _; _ ] ->
      `Join (Option.get (alias_of x), Option.get (alias_of y), p)
    | _, [ a ] ->
      (* ADT-bearing predicates are placement candidates, not forced
         pushdowns: evaluating an expensive operation after a reducing join
         can be much cheaper (paper §7) *)
      if Pred.has_apply p then `Defer (a, p) else `Local a
    | _ -> `Post
  in
  let locals = Hashtbl.create 8 in
  let joins = ref [] and post = ref [] and defers = ref [] in
  List.iter
    (fun p ->
      match classify p with
      | `Local a ->
        Hashtbl.replace locals a (p :: Option.value ~default:[] (Hashtbl.find_opt locals a))
      | `Join (a, b, p) -> joins := (a, b, p) :: !joins
      | `Defer (a, p) -> defers := (a, p) :: !defers
      | `Post -> post := p :: !post)
    conjuncts;
  (* attributes each alias must export: everything referenced above the scan *)
  let needed = Hashtbl.create 8 in
  let need a =
    match Plan.split_attr a with
    | Some (alias, _) ->
      Hashtbl.replace needed alias
        (a :: Option.value ~default:[] (Hashtbl.find_opt needed alias))
    | None -> ()
  in
  List.iter
    (function Sql.Col a -> need a | Sql.Agg (_, i, _) -> if i <> "" then need i)
    items;
  List.iter need group_by;
  List.iter (fun (a, _) -> need a) order_by;
  List.iter (fun (_, _, p) -> List.iter need (Pred.attributes p)) !joins;
  List.iter (fun p -> List.iter need (Pred.attributes p)) !post;
  List.iter (fun (_, p) -> List.iter need (Pred.attributes p)) !defers;
  if q.Sql.star then
    List.iter (fun r -> List.iter (fun a -> need (r.Plan.binding ^ "." ^ a)) (attrs_of r)) rels;
  let bases =
    List.map
      (fun r ->
        let alias = r.Plan.binding in
        let pred =
          Pred.conj (Option.value ~default:[] (Hashtbl.find_opt locals alias))
        in
        let all = List.map (fun a -> alias ^ "." ^ a) (attrs_of r) in
        let wanted =
          List.sort_uniq String.compare
            (Option.value ~default:[] (Hashtbl.find_opt needed alias))
        in
        let project =
          (* keep catalog order; skip the projection when everything is used *)
          let kept = List.filter (fun a -> List.mem a wanted) all in
          if List.length kept = List.length all || kept = [] then None else Some kept
        in
        { Optimizer.ref_ = r;
          pred;
          project;
          can_select = Catalog.capable t.catalog ~source:r.Plan.source "select";
          can_project = Catalog.capable t.catalog ~source:r.Plan.source "project" })
      rels
  in
  let star_attrs =
    List.concat_map (fun r -> List.map (fun a -> r.Plan.binding ^ "." ^ a) (attrs_of r)) rels
  in
  { spec =
      { Optimizer.bases;
        joins = !joins;
        can_join = (fun s -> Catalog.capable t.catalog ~source:s "join") };
    post_pred = Pred.conj !post;
    deferrable = !defers;
    items;
    star = q.Sql.star;
    star_attrs;
    distinct = q.Sql.distinct;
    group_by;
    order_by;
    limit = q.Sql.limit }

(* Placement alternatives for the deferrable (ADT) predicates: pushed into
   their base relation's selection, or evaluated at the mediator after the
   joins. The caller costs both decorated plans and keeps the cheaper. *)
let variants (r : resolved) : resolved list =
  match r.deferrable with
  | [] -> [ r ]
  | ds ->
    let pushed =
      let bases =
        List.map
          (fun (b : Optimizer.base) ->
            let mine =
              List.filter_map
                (fun (a, p) ->
                  if String.equal a b.Optimizer.ref_.Plan.binding then Some p else None)
                ds
            in
            if mine = [] then b
            else
              { b with
                Optimizer.pred = Pred.conj (Pred.conjuncts b.Optimizer.pred @ mine) })
          r.spec.Optimizer.bases
      in
      { r with spec = { r.spec with Optimizer.bases }; deferrable = [] }
    in
    let deferred =
      { r with
        post_pred = Pred.conj (Pred.conjuncts r.post_pred @ List.map snd ds);
        deferrable = [] }
    in
    [ pushed; deferred ]

(* Wrap the optimized join tree with the mediator-side decoration:
   residual predicate, aggregation or projection, dedup, sort. *)
let decorate (r : resolved) (joined : Plan.t) : Plan.t =
  let filtered =
    if Pred.equal r.post_pred Pred.True then joined else Plan.Select (joined, r.post_pred)
  in
  let aggs = List.filter_map (function Sql.Agg (f, i, o) -> Some (f, i, o) | _ -> None) r.items in
  let shaped =
    if aggs <> [] || r.group_by <> [] then begin
      let cols = List.filter_map (function Sql.Col a -> Some a | _ -> None) r.items in
      List.iter
        (fun c ->
          if not (List.mem c r.group_by) then
            raise
              (Err.Plan_error
                 (Fmt.str "column %S must appear in GROUP BY when aggregating" c)))
        cols;
      Plan.Aggregate (filtered, { Plan.group_by = r.group_by; aggs })
    end
    else if r.star then filtered
    else
      let cols = List.filter_map (function Sql.Col a -> Some a | _ -> None) r.items in
      Plan.Project (filtered, cols)
  in
  let deduped = if r.distinct then Plan.Dedup shaped else shaped in
  if r.order_by = [] then deduped else Plan.Sort (deduped, r.order_by)

(* --- Plan selection ----------------------------------------------------------- *)

(* Per-query availability view. [Health.available] is the circuit
   breaker's probe admission point: the first check of a recovering source
   admits exactly one half-open probe, and a second un-memoized check by
   the same query would refuse the very admission it just won (planning
   checks each source several times: fail-fast, seeding, variants). Each
   query therefore decides availability once per source and reuses the
   answer; [release] hands admitted-but-unsubmitted probes back when
   planning fails, so the breaker is not stuck waiting out the lost-probe
   cooldown. *)
let availability t =
  let memo = Hashtbl.create 4 in
  let probed = ref [] in
  let check s =
    match Hashtbl.find_opt memo s with
    | Some b -> b
    | None ->
      let b = Health.available t.health ~now:t.now s in
      (if b then
         match Health.state t.health s with
         | Health.Half_open _ -> probed := s :: !probed
         | Health.Closed | Health.Open _ -> ());
      Hashtbl.replace memo s b;
      b
  in
  let release () = List.iter (Health.release_probe t.health) !probed in
  (check, release)

(* Optimize one resolved variant into a complete decorated plan. Sources
   with an open circuit breaker are excluded from plan seeding. *)
let plan_of_variant ?objective ?available t (r : resolved) : Plan.t =
  let available =
    match available with
    | Some f -> f
    | None -> fst (availability t)
  in
  let joined =
    match r.spec.Optimizer.bases with
    | [ b ] -> Optimizer.submit_base b
    | _ ->
      fst
        (Optimizer.optimize ?objective ~memo:t.cache_enabled
           ?cache:(active_cache t) ~available ~domains:t.domains
           ~stats:t.opt_stats ~enum:t.enum_mode
           ~enum_threshold:t.enum_threshold t.registry r.spec)
  in
  decorate r joined

(* Graceful degradation starts at optimization time: when a query needs a
   source whose circuit is open and no alternative source serves the
   collection, fail before planning with an error that says when to retry. *)
let check_sources_available ?available t (r : resolved) =
  let available =
    match available with
    | Some f -> f
    | None -> fst (availability t)
  in
  List.iter
    (fun (b : Optimizer.base) ->
      let s = b.Optimizer.ref_.Plan.source in
      if not (available s) then
        raise
          (Err.Source_unavailable
             { source = s; retry_at_ms = Health.retry_at t.health s }))
    r.spec.Optimizer.bases

(* Estimate one variable of a complete plan through the cross-query cache
   (when enabled). Cached and fresh paths return bit-identical values: the
   cache stores exactly what the estimator computed, and the generation stamp
   drops it as soon as the model changes. *)
let cached_estimate t ~var (plan : Plan.t) : float =
  let fresh () =
    let ann = Estimator.estimate ~require_vars:[ var ] t.registry plan in
    Option.get (Estimator.var ann var)
  in
  match active_cache t with
  | None -> fresh ()
  | Some c ->
    (match Plancache.find c t.registry ~objective:var plan with
     | Some cost -> cost
     | None ->
       let cost = fresh () in
       Plancache.add c t.registry ~objective:var plan cost;
       cost)

(* Parse, resolve and optimize a query — including the push-vs-defer choice
   for expensive predicates; returns the decorated plan and its estimated
   TotalTime. *)
let best_plan ?(objective = Optimizer.Total_time) t (text : string) : Plan.t * float =
  let q = Sql.parse text in
  let r = resolve t q in
  let available, release_probes = availability t in
  match
    check_sources_available ~available t r;
    let var =
      match objective with
      | Optimizer.Total_time -> Disco_costlang.Ast.Total_time
      | Optimizer.First_tuple -> Disco_costlang.Ast.Time_first
    in
    let candidates =
      List.map
        (fun v ->
          let plan = plan_of_variant ~objective ~available t v in
          (plan, cached_estimate t ~var plan))
        (variants r)
    in
    (candidates : (Plan.t * float) list)
  with
  | [] -> raise (Err.Plan_error "no plan")
  | first :: rest ->
    List.fold_left (fun best c -> if snd c < snd best then c else best) first rest
  | exception e ->
    (* the query dies before any submit: give admitted half-open probes
       back so concurrent traffic can re-probe immediately *)
    release_probes ();
    raise e

let plan_query ?objective t text = best_plan ?objective t text

(* --- Execution ------------------------------------------------------------------ *)

(* The mediator's composition engine. ADT implementations are shipped by
   wrappers at registration (like cost rules, §2.4), so deferred predicates
   can be evaluated over composed results. *)
let mediator_run_env t =
  { Run.engine = Costs.mediator_engine;
    buffer = Buffer.create ~capacity:1;
    hash_join = true;
    adts = List.concat_map (fun (_, w) -> w.Wrapper.adts) t.wrappers }

(* Estimate a submitted subplan for the history feedback; the estimate
   carries the current per-source adjustment factor, so the smoothing in
   History.observe converges instead of compounding. Model errors degrade to
   0 (no feedback); anything else — in particular typed submit failures —
   propagates. *)
let history_estimate t ~source sub =
  try
    let ann = Estimator.estimate ~source t.registry sub in
    let count =
      if stats_on t then Some (Estimator.count_object ann) else None
    in
    (Estimator.total_time ann *. Registry.adjust t.registry ~source, count)
  with
  | Err.Eval_error _ | Err.Plan_error _ | Err.Unknown_collection _
  | Err.Unknown_attribute _ | Err.Unknown_source _ ->
    (0., None)

(* Submit one subplan to its wrapper under the submit policy.

   Without an injector this is the plain query-phase exchange: execute,
   charge communication per the wrapper's network, feed history. With one,
   each attempt is first decided by the injector at the current simulated
   time: a healthy (or merely spiky, below-timeout) response completes the
   submit with the anomaly added on top of the real measured times, while a
   stall/timeout, a transient error or a hard refusal burns simulated time
   and is retried — with exponential backoff — until the policy's attempt
   budget is spent and the failure surfaces as [Run.Submit_error].

   Time wasted on faulty attempts ([inflate]) is charged to the result and
   to the measured TotalTime fed into history: under [History.Adjust] a
   flaky source's estimates inflate, steering the optimizer away from it.

   [prefetched] holds scatter-phase wrapper results, one FIFO queue per
   source filled in the same per-source order this sequential gather
   consumes them, so popping the head always yields this very submit's
   result. Only wrapper execution is ever prefetched — every piece of
   mediator accounting (history feedback, communication charge, clock
   advance, health) happens here, on the gathering domain, in plan order. *)
type prefetched =
  (string, (Tuple.t list * Run.vector, exn) result Queue.t) Hashtbl.t

let submit_subplan ?prefetched t src sub : Physical.t =
  let w = find_wrapper t src in
  let net = w.Wrapper.network in
  let execute () =
    match prefetched with
    | Some (tbl : prefetched) ->
      (match Hashtbl.find_opt tbl src with
       | Some q when not (Queue.is_empty q) ->
         (match Queue.pop q with Ok r -> r | Error e -> raise e)
       | _ -> Wrapper.execute w sub)
    | None -> Wrapper.execute w sub
  in
  let complete ~inflate =
    let rows, vec = execute () in
    let estimated_total, estimated_count = history_estimate t ~source:src sub in
    let measured =
      if inflate = 0. then Run.to_cost_vars vec
      else
        List.map
          (fun (v, x) ->
            if v = Disco_costlang.Ast.Total_time then (v, x +. inflate) else (v, x))
          (Run.to_cost_vars vec)
    in
    History.observe ?estimated_count t.history ~source:src ~plan:sub ~measured
      ~estimated_total;
    let comm = net.Costs.msg_ms +. (net.Costs.byte_ms *. vec.Run.size) in
    t.now <- t.now +. vec.Run.total_time +. comm +. inflate;
    Health.on_success t.health src;
    Physical.Pmaterialized
      { rows;
        count = int_of_float vec.Run.count;
        first = vec.Run.time_first +. net.Costs.msg_ms +. inflate;
        total = vec.Run.total_time +. comm +. inflate }
  in
  match w.Wrapper.fault with
  | None -> complete ~inflate:0.
  | Some inj ->
    let policy = Health.policy t.health in
    let rec attempt k wasted =
      match Fault.decide inj ~now:t.now with
      | Fault.Respond extra when extra < policy.Health.timeout_ms ->
        complete ~inflate:(wasted +. extra)
      | outcome ->
        let burn, reason =
          match outcome with
          (* a spike at or past the timeout is indistinguishable from a
             stall: the mediator gives up at the timeout either way *)
          | Fault.Respond _ | Fault.Stall -> (policy.Health.timeout_ms, Run.Timeout)
          | Fault.Fail_after ms ->
            (Float.min ms policy.Health.timeout_ms, Run.Transient)
          | Fault.Refuse -> (net.Costs.msg_ms, Run.Unavailable)
        in
        t.now <- t.now +. burn;
        if k >= policy.Health.max_attempts then begin
          Health.on_failure t.health ~now:t.now src
            ~reason:(Run.reason_to_string reason);
          raise
            (Run.Submit_error
               { source = src; attempts = k; elapsed_ms = wasted +. burn; reason })
        end
        else begin
          let backoff =
            policy.Health.backoff_base_ms
            *. (policy.Health.backoff_factor ** float_of_int (k - 1))
          in
          t.now <- t.now +. backoff;
          Health.note_retry t.health src;
          attempt (k + 1) (wasted +. burn +. backoff)
        end
    in
    attempt 1 0.

(* Execute the mediator-side plan: submits run in their wrappers under the
   submit policy (communication charged per the wrapper's network, history
   fed back, faults retried); composition operators run in the mediator
   engine. Binary nodes pin the translation order explicitly — right child
   first, matching what OCaml's right-to-left argument evaluation always
   did here — because the scatter phase must enqueue wrapper results in
   exactly the order this gather consumes them. *)
let rec translate ?prefetched t (plan : Plan.t) : Physical.t =
  match plan with
  | Plan.Submit (src, sub) -> submit_subplan ?prefetched t src sub
  | Plan.Scan _ ->
    raise (Err.Plan_error "bare scan at the mediator (missing submit)")
  | Plan.Select (c, p) -> Physical.Pfilter (translate ?prefetched t c, p)
  | Plan.Project (c, attrs) -> Physical.Pproject (translate ?prefetched t c, attrs)
  | Plan.Sort (c, keys) -> Physical.Psort (translate ?prefetched t c, keys)
  | Plan.Join (l, r, p) ->
    let pr = translate ?prefetched t r in
    let pl = translate ?prefetched t l in
    Physical.Pnested_join (pl, pr, p)
  | Plan.Union (l, r) ->
    let ur = translate ?prefetched t r in
    let ul = translate ?prefetched t l in
    Physical.Punion (ul, ur)
  | Plan.Dedup c -> Physical.Pdedup (translate ?prefetched t c)
  | Plan.Aggregate (c, a) -> Physical.Paggregate (translate ?prefetched t c, a)

(* Submit occurrences in translation order (right child first, like
   [translate]); the scatter phase partitions them by source. *)
let rec submit_occurrences (plan : Plan.t) : (string * Plan.t) list =
  match plan with
  | Plan.Submit (src, sub) -> [ (src, sub) ]
  | Plan.Scan _ -> []
  | Plan.Select (c, _) | Plan.Project (c, _) | Plan.Sort (c, _)
  | Plan.Dedup c | Plan.Aggregate (c, _) -> submit_occurrences c
  | Plan.Join (l, r, _) | Plan.Union (l, r) ->
    submit_occurrences r @ submit_occurrences l

(* Scatter-gather execution. With [domains > 1], independent wrapper work
   runs concurrently: submits to injector-free sources are grouped per
   source (wrapper buffers make same-source submits order-dependent, so a
   group executes its submits in plan order on one domain) and the groups
   fan out over the pool. The gather then runs the ordinary sequential
   translation, consuming the prefetched results — so history feedback,
   communication charges, the simulated clock and health all advance in
   plan order on the calling domain, and answers, history, clock and
   breaker state are bit-identical to the sequential path. Sources with a
   fault injector are left to the gather untouched: their outcomes depend
   on the clock at submit time, and the retry/backoff/breaker loop must see
   the clock the sequential path would. A wrapper error inside a group
   parks as [Error] in the queue and re-raises at the consuming submit's
   position. *)
let to_physical t (plan : Plan.t) : Physical.t =
  if t.domains <= 1 then translate t plan
  else begin
    let occs = submit_occurrences plan in
    (* per-source groups of prefetchable submits, first-occurrence order *)
    let groups : (string * Plan.t list ref) list ref = ref [] in
    List.iter
      (fun (src, sub) ->
        match List.assoc_opt src t.wrappers with
        | Some { Wrapper.fault = None; _ } ->
          (match List.assoc_opt src !groups with
           | Some subs -> subs := sub :: !subs
           | None -> groups := !groups @ [ (src, ref [ sub ]) ])
        | Some _ | None ->
          (* faulty at gather time; unknown sources error there too *)
          ())
      occs;
    let groups =
      List.map (fun (src, subs) -> (src, List.rev !subs)) !groups
    in
    let prefetched : prefetched = Hashtbl.create 8 in
    List.iter (fun (src, _) -> Hashtbl.replace prefetched src (Queue.create ())) groups;
    let garr = Array.of_list groups in
    let pool = Pool.create t.domains in
    let results =
      Pool.run pool
        (fun i ->
          let src, subs = garr.(i) in
          let w = List.assoc src t.wrappers in
          (* stop at the first error: the submits a sequential run would
             never have reached must not touch the wrapper's buffer *)
          let rec go acc = function
            | [] -> List.rev acc
            | sub :: rest ->
              (match Wrapper.execute w sub with
               | r -> go (Ok r :: acc) rest
               | exception e -> List.rev (Error e :: acc))
          in
          go [] subs)
        (Array.length garr)
    in
    Array.iteri
      (fun i rs ->
        let src, _ = garr.(i) in
        let q = Hashtbl.find prefetched src in
        List.iter (fun r -> Queue.push r q) rs)
      results;
    translate ~prefetched t plan
  end

type answer = {
  rows : Tuple.t list;
  plan : Plan.t;
  estimate : Estimator.ann;
  measured : Run.vector;
  replans : int;
  recovered : Run.submit_failure list;
}

type report = {
  failures : Run.submit_failure list;
  replans : int;
  unavailable : (string * float) list;
}

exception Degraded of report

let pp_report ppf (r : report) =
  Fmt.pf ppf "query degraded after %d replan%s:@," r.replans
    (if r.replans = 1 then "" else "s");
  List.iter (fun f -> Fmt.pf ppf "  %a@," Run.pp_submit_failure f) r.failures;
  List.iter
    (fun (s, at) -> Fmt.pf ppf "  source %S circuit open until t≈%.0f ms@," s at)
    r.unavailable

let () =
  Printexc.register_printer (function
    | Degraded r -> Some (Fmt.str "@[<v>Degraded: %a@]" pp_report r)
    | _ -> None)

let unavailable_sources t =
  List.filter_map
    (fun (name, _) ->
      match Health.state t.health name with
      | Health.Open { until } -> Some (name, until)
      | Health.Closed | Health.Half_open _ -> None)
    t.wrappers
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* The full query-processing phase of Fig 2, wrapped in the degradation
   contract: a submit that exhausts its retry budget mid-execution triggers a
   replan — the failed source's circuit state and inflated history steer the
   optimizer, and with the circuit open the source is excluded outright — up
   to [max_replans] times; when no plan remains (or the budget is spent) the
   accumulated failures surface as a structured [Degraded] report. A query
   that needs an already-open source fails fast with
   [Err.Source_unavailable]. *)
exception Invalid_plan of Disco_analysis.Plancheck.finding list

let () =
  Printexc.register_printer (function
    | Invalid_plan fs ->
      Some
        (Fmt.str "Invalid_plan: %a"
           Fmt.(list ~sep:(any "; ") Disco_analysis.Plancheck.pp_finding)
           fs)
    | _ -> None)

(* Whole-plan verification of a chosen plan: typed well-formedness
   (Plancheck, mediator placement rules) plus, when [deep], estimate-bound
   validation (Planbound). [ann] reuses an existing estimation tree so the
   warm query path never pays a second estimation pass. *)
let verify_chosen ?(deep = true) ?ann t plan =
  let pc = Disco_analysis.Plancheck.check ~ctx:`Mediator t.registry plan in
  let pb =
    (* the bound pass presumes well-formedness (it annotates the plan
       through the estimator, which resolves sources eagerly): skip it on
       plans the typed checker already rejects *)
    if (not deep) || Disco_analysis.Plancheck.errors pc <> [] then []
    else
      match ann with
      | Some a -> Disco_analysis.Planbound.check_ann t.registry a
      | None -> Disco_analysis.Planbound.check t.registry plan
  in
  pc @ pb

let verify_plan ?deep t plan = verify_chosen ?deep t plan

let run_query ?objective ?(max_replans = 2) ?(verify = false) t (text : string)
    : answer =
  let q = Sql.parse text in
  let r = resolve t q in
  let rec go replans failures =
    match
      let plan, _ = best_plan ?objective t text in
      let estimate = Estimator.estimate t.registry plan in
      (if verify then
         let gen = Registry.generation t.registry in
         match Plan_tbl.find_opt t.verify_memo plan with
         | Some g when g = gen -> ()
         | _ -> (
           match
             Disco_analysis.Plancheck.errors
               (verify_chosen ~ann:estimate t plan)
           with
           | [] ->
             (* generation-stamped positive cache; a model change bumps the
                generation and forces re-verification (bounded like the
                plan cache, cleared wholesale on overflow) *)
             if Plan_tbl.length t.verify_memo >= 4096 then
               Plan_tbl.reset t.verify_memo;
             Plan_tbl.replace t.verify_memo plan gen
           | errs -> raise (Invalid_plan errs)));
      let physical = to_physical t plan in
      let rows, measured = Run.measure (mediator_run_env t) physical in
      (plan, estimate, rows, measured)
    with
    | plan, estimate, rows, measured ->
      let rows =
        match r.limit with
        | Some n -> List.filteri (fun i _ -> i < n) rows
        | None -> rows
      in
      { rows; plan; estimate; measured; replans; recovered = List.rev failures }
    | exception Run.Submit_error f ->
      if replans >= max_replans then
        raise
          (Degraded
             { failures = List.rev (f :: failures);
               replans;
               unavailable = unavailable_sources t })
      else go (replans + 1) (f :: failures)
    | exception Err.Source_unavailable _ when failures <> [] ->
      (* replanning found no remaining plan: report instead of erroring *)
      raise
        (Degraded
           { failures = List.rev failures;
             replans;
             unavailable = unavailable_sources t })
  in
  go 0 []

(* EXPLAIN output: the chosen plan with per-node cost estimates. *)
let explain t (text : string) : string =
  let plan, _ = plan_query t text in
  let ann = Estimator.estimate t.registry plan in
  Fmt.str "%a@.%s" Plan.pp_indented plan (Estimator.report ann)

(* EXPLAIN ANALYZE: execute the query and report, per wrapper subquery and
   overall, the estimated vs measured cost — the estimation-quality feedback
   an administrator would look at before deciding which wrappers need better
   cost rules (or a history mode). *)
let analyze ?objective t (text : string) : string =
  let before = List.length (History.records t.history) in
  let a = run_query ?objective t text in
  let new_records =
    List.filteri (fun i _ -> i >= before) (History.records t.history)
  in
  let buf = Stdlib.Buffer.create 256 in
  Stdlib.Buffer.add_string buf (Fmt.str "%a" Plan.pp_indented a.plan);
  Stdlib.Buffer.add_string buf "per wrapper subquery (estimated vs measured TotalTime, ms):\n";
  List.iter
    (fun (r : History.record) ->
      let real =
        Option.value ~default:0.
          (List.assoc_opt Disco_costlang.Ast.Total_time r.History.measured)
      in
      Stdlib.Buffer.add_string buf
        (Fmt.str "  %-10s %10.1f %10.1f  (%+.0f%%)  %s\n" r.History.source
           r.History.estimated_total real
           (100. *. (r.History.estimated_total -. real) /. Float.max real 1e-9)
           (Plan.to_string r.History.plan)))
    new_records;
  let est_total = Estimator.total_time a.estimate in
  Stdlib.Buffer.add_string buf
    (Fmt.str "overall: estimated %.1f ms, measured %.1f ms (%+.0f%%), %d rows\n"
       est_total a.measured.Run.total_time
       (100. *. (est_total -. a.measured.Run.total_time)
        /. Float.max a.measured.Run.total_time 1e-9)
       (List.length a.rows));
  Stdlib.Buffer.contents buf
