(** Per-source health tracking for the mediator's submit policy.

    Tracks submit outcomes per source and drives a consecutive-failure
    circuit breaker: after {!policy.breaker_threshold} consecutive exhausted
    retry budgets the circuit opens for {!policy.breaker_cooldown_ms}
    simulated ms, the optimizer excludes the source, and once the cooldown
    elapses a single half-open probe decides whether it closes again. The
    caller (the mediator) owns the simulated clock and passes [now]. *)

type policy = {
  timeout_ms : float;          (** per-attempt bound on injected anomalies *)
  max_attempts : int;          (** submits per subplan, including the first *)
  backoff_base_ms : float;     (** wait before the first retry *)
  backoff_factor : float;      (** multiplier per further retry *)
  breaker_threshold : int;     (** consecutive failures that open the circuit *)
  breaker_cooldown_ms : float; (** open duration before a half-open probe *)
}

val default_policy : policy
(** 10 s timeout, 3 attempts, 250 ms backoff doubling, breaker at 3
    consecutive failures with a 60 s cooldown — all simulated ms. *)

type state = Closed | Open of { until : float } | Half_open

type t

val create : ?policy:policy -> unit -> t

val policy : t -> policy

val available : t -> now:float -> string -> bool
(** Whether the source may be planned against / submitted to at simulated
    time [now]. An open circuit whose cooldown has elapsed transitions to
    half-open and admits the caller as its probe. *)

val retry_at : t -> string -> float
(** For an open circuit, when a half-open probe will be admitted; [0.]
    otherwise. *)

val state : t -> string -> state

val on_success : t -> string -> unit
(** A submit completed: reset the consecutive-failure count and close the
    circuit (a successful half-open probe recovers the source). *)

val on_failure : t -> now:float -> string -> reason:string -> unit
(** A submit exhausted its retry budget. Opens the circuit when the
    consecutive-failure threshold is reached, or immediately when a
    half-open probe fails. *)

val note_retry : t -> string -> unit

(** One source's line in the health report. *)
type row = {
  source : string;
  row_state : state;
  ok : int;          (** completed submits *)
  failed : int;      (** exhausted retry budgets *)
  retried : int;     (** individual retries across all submits *)
  consecutive : int; (** current consecutive-failure count *)
  probed : int;      (** half-open probes admitted *)
  error : string option;  (** most recent failure reason *)
}

val report : t -> row list
(** All tracked sources, sorted by name. *)

val pp_state : Format.formatter -> state -> unit
