(** Per-source health tracking for the mediator's submit policy.

    Tracks submit outcomes per source and drives a consecutive-failure
    circuit breaker: after {!policy.breaker_threshold} consecutive exhausted
    retry budgets the circuit opens for {!policy.breaker_cooldown_ms}
    simulated ms, the optimizer excludes the source, and once the cooldown
    elapses a single half-open probe decides whether it closes again. The
    caller (the mediator) owns the simulated clock and passes [now]. *)

type policy = {
  timeout_ms : float;          (** per-attempt bound on injected anomalies *)
  max_attempts : int;          (** submits per subplan, including the first *)
  backoff_base_ms : float;     (** wait before the first retry *)
  backoff_factor : float;      (** multiplier per further retry *)
  breaker_threshold : int;     (** consecutive failures that open the circuit *)
  breaker_cooldown_ms : float; (** open duration before a half-open probe *)
}

val default_policy : policy
(** 10 s timeout, 3 attempts, 250 ms backoff doubling, breaker at 3
    consecutive failures with a 60 s cooldown — all simulated ms. *)

type state = Closed | Open of { until : float } | Half_open of { probing : bool }
(** [Half_open { probing = true }] tracks an admitted, not-yet-settled
    probe: availability checks answer [false] until {!on_success} or
    {!on_failure} settles the circuit (or the probe is presumed lost after
    a further cooldown, or returned via {!release_probe}). *)

type t

val create : ?policy:policy -> unit -> t

val policy : t -> policy

val available : t -> now:float -> string -> bool
(** Whether the source may be planned against / submitted to at simulated
    time [now]. This is the probe admission point: an open circuit whose
    cooldown has elapsed transitions to half-open and admits {e exactly
    one} caller as its probe — concurrent callers are refused until the
    probe settles, so a recovering source sees a single probe per
    cooldown instead of a storm. Callers that may check the same source
    more than once while deciding one query must memoize the answer (the
    mediator does), or the admission they won would refuse them. *)

val release_probe : t -> string -> unit
(** Return a probe admission that will never be submitted (the winning
    query failed between planning and submit): the next availability check
    admits a fresh probe immediately instead of waiting out the lost-probe
    cooldown. No-op unless the circuit is half-open with a probe in
    flight. *)

val retry_at : t -> string -> float
(** For an open circuit, when a half-open probe will be admitted; [0.]
    otherwise. *)

val state : t -> string -> state

val on_success : t -> string -> unit
(** A submit completed: reset the consecutive-failure count and close the
    circuit (a successful half-open probe recovers the source). *)

val on_failure : t -> now:float -> string -> reason:string -> unit
(** A submit exhausted its retry budget. Opens the circuit when the
    consecutive-failure threshold is reached, or immediately when a
    half-open probe fails. *)

val note_retry : t -> string -> unit

(** One source's line in the health report. *)
type row = {
  source : string;
  row_state : state;
  ok : int;          (** completed submits *)
  failed : int;      (** exhausted retry budgets *)
  retried : int;     (** individual retries across all submits *)
  consecutive : int; (** current consecutive-failure count *)
  probed : int;      (** half-open probes admitted *)
  error : string option;  (** most recent failure reason *)
}

val report : t -> row list
(** All tracked sources, sorted by name. *)

val pp_state : Format.formatter -> state -> unit
