(* Cross-query plan/cost cache.

   The per-optimization memo in [Estimator] shares subtree annotations within
   one optimizer run; this cache carries complete estimation results across
   queries. Entries are keyed on the objective variable and the canonical
   structural hash of the plan, and stamped with the registry generation in
   force when they were computed. Any write to the blended model — rule
   registration, [let] update, calibration adjustment, historical-tuning
   feedback (§4.3) — bumps the generation, so stale entries are detected on
   lookup and dropped instead of served: the dynamic-extension machinery can
   never be shadowed by an old cached cost.

   Eviction is FIFO under a fixed capacity: mediator workloads re-optimize
   recent query shapes, and FIFO keeps the bookkeeping O(1) without touching
   entries on hit. *)

open Disco_algebra
open Disco_core

module Tbl = Hashtbl.Make (struct
  type t = Disco_costlang.Ast.cost_var * Plan.t

  let equal (v1, p1) (v2, p2) = v1 = v2 && Plan.equal_structural p1 p2
  let hash (v, p) = (Hashtbl.hash v * 31) + Plan.hash p
end)

type entry = { cost : float; generation : int }

type counters = {
  mutable hits : int;
  mutable misses : int;       (* includes stale lookups *)
  mutable stale : int;        (* entries dropped because the model changed *)
  mutable evictions : int;    (* entries dropped by the capacity bound *)
}

type t = {
  capacity : int;
  table : entry Tbl.t;
  order : (Disco_costlang.Ast.cost_var * Plan.t) Queue.t;  (* insertion order *)
  counters : counters;
}

let create ?(capacity = 4096) () =
  { capacity = max capacity 1;
    table = Tbl.create 256;
    order = Queue.create ();
    counters = { hits = 0; misses = 0; stale = 0; evictions = 0 } }

let counters t = t.counters

let size t = Tbl.length t.table

let clear t =
  Tbl.reset t.table;
  Queue.clear t.order

let find t registry ~objective plan =
  let key = (objective, plan) in
  match Tbl.find_opt t.table key with
  | Some e when e.generation = Registry.generation registry ->
    t.counters.hits <- t.counters.hits + 1;
    Some e.cost
  | Some _ ->
    Tbl.remove t.table key;
    t.counters.stale <- t.counters.stale + 1;
    t.counters.misses <- t.counters.misses + 1;
    None
  | None ->
    t.counters.misses <- t.counters.misses + 1;
    None

let add t registry ~objective plan cost =
  let key = (objective, plan) in
  if not (Tbl.mem t.table key) then begin
    (* the order queue may hold keys whose entry was already dropped as
       stale; pop until a live one is evicted *)
    while Tbl.length t.table >= t.capacity && not (Queue.is_empty t.order) do
      let victim = Queue.pop t.order in
      if Tbl.mem t.table victim then begin
        Tbl.remove t.table victim;
        t.counters.evictions <- t.counters.evictions + 1
      end
    done;
    Queue.push key t.order
  end;
  Tbl.replace t.table key { cost; generation = Registry.generation registry }

let pp_counters ppf t =
  Fmt.pf ppf "hits %d, misses %d (stale %d), evictions %d, entries %d"
    t.counters.hits t.counters.misses t.counters.stale t.counters.evictions
    (size t)
