(* Cross-query plan/cost cache.

   The per-optimization memo in [Estimator] shares subtree annotations within
   one optimizer run; this cache carries complete estimation results across
   queries. Entries are keyed on the objective variable and the canonical
   structural hash of the plan, and stamped with the registry generation in
   force when they were computed. Any write to the blended model — rule
   registration, [let] update, calibration adjustment, historical-tuning
   feedback (§4.3) — bumps the generation, so stale entries are detected on
   lookup and dropped instead of served: the dynamic-extension machinery can
   never be shadowed by an old cached cost.

   Eviction is FIFO under a fixed capacity: mediator workloads re-optimize
   recent query shapes, and FIFO keeps the bookkeeping O(1) without touching
   entries on hit. *)

open Disco_algebra
open Disco_core

module Tbl = Hashtbl.Make (struct
  type t = Disco_costlang.Ast.cost_var * Plan.t

  let equal (v1, p1) (v2, p2) = v1 = v2 && Plan.equal_structural p1 p2
  let hash (v, p) = (Hashtbl.hash v * 31) + Plan.hash p
end)

(* [stamp] identifies the entry's occurrence in the FIFO [order] queue. A key
   dropped as stale in [find] leaves a dead occurrence behind; when the key
   is later re-added it gets a fresh occurrence and a fresh stamp, so the
   eviction loop can tell the dead (older) occurrence from the live one and
   never evicts a re-added entry out of insertion order. *)
type entry = { cost : float; generation : int; stamp : int }

(* the live counters, mutated under [t.lock] *)
type live = {
  mutable hits : int;
  mutable misses : int;       (* includes stale lookups *)
  mutable stale : int;        (* entries dropped because the model changed *)
  mutable evictions : int;    (* entries dropped by the capacity bound *)
  mutable verify_rejects : int;  (* plans refused admission by the verifier *)
}

(* what callers see: an immutable snapshot taken in one critical section,
   so continuously polling consumers (metrics endpoints, the CLI) can never
   observe a torn state where hits + misses ≠ lookups *)
type counters = {
  hits : int;
  misses : int;
  stale : int;
  evictions : int;
  entries : int;  (* table size at snapshot time *)
  verify_rejects : int;
}

type t = {
  capacity : int;
  verify : Registry.t -> Plan.t -> bool;
  table : entry Tbl.t;
  (* insertion order; each element is one stamped occurrence of a key *)
  order : ((Disco_costlang.Ast.cost_var * Plan.t) * int) Queue.t;
  counters : live;
  mutable tick : int;  (* stamp generator *)
  (* one lock over table + queue + counters + tick: every operation is a
     short critical section (hash probe, queue pop, counter bump — no
     estimation work), and a single lock keeps the counters exact under
     concurrent access — hits + misses always equals lookups, an eviction
     is counted exactly once *)
  lock : Mutex.t;
}

let create ?(capacity = 4096) ?(verify = fun _ _ -> true) () =
  { capacity = max capacity 1;
    verify;
    table = Tbl.create 256;
    order = Queue.create ();
    counters = { hits = 0; misses = 0; stale = 0; evictions = 0; verify_rejects = 0 };
    tick = 0;
    lock = Mutex.create () }

let counters t =
  Mutex.protect t.lock (fun () ->
      { hits = t.counters.hits;
        misses = t.counters.misses;
        stale = t.counters.stale;
        evictions = t.counters.evictions;
        entries = Tbl.length t.table;
        verify_rejects = t.counters.verify_rejects })

let size t = Mutex.protect t.lock (fun () -> Tbl.length t.table)

let clear t =
  Mutex.protect t.lock (fun () ->
      Tbl.reset t.table;
      Queue.clear t.order;
      t.counters.hits <- 0;
      t.counters.misses <- 0;
      t.counters.stale <- 0;
      t.counters.evictions <- 0;
      t.counters.verify_rejects <- 0)

let find t registry ~objective plan =
  let key = (objective, plan) in
  Mutex.protect t.lock (fun () ->
      match Tbl.find_opt t.table key with
      | Some e when e.generation = Registry.generation registry ->
        t.counters.hits <- t.counters.hits + 1;
        Some e.cost
      | Some _ ->
        Tbl.remove t.table key;
        t.counters.stale <- t.counters.stale + 1;
        t.counters.misses <- t.counters.misses + 1;
        None
      | None ->
        t.counters.misses <- t.counters.misses + 1;
        None)

let add t registry ~objective plan cost =
  let key = (objective, plan) in
  (* verification walks the plan: run it outside the critical section (the
     lock only covers O(1) bookkeeping). Both branches below are guarded —
     a refresh-in-place is a re-admission and re-verifies like any other. *)
  if not (t.verify registry plan) then
    Mutex.protect t.lock (fun () ->
        t.counters.verify_rejects <- t.counters.verify_rejects + 1)
  else
  Mutex.protect t.lock (fun () ->
      match Tbl.find_opt t.table key with
      | Some e ->
        (* refresh in place, keeping the entry's queue slot (no duplicate
           push) *)
        Tbl.replace t.table key
          { e with cost; generation = Registry.generation registry }
      | None ->
        (* the order queue may hold dead occurrences — keys dropped as stale
           in [find], or superseded by a re-add under a newer stamp; pop
           until a live occurrence is evicted *)
        while Tbl.length t.table >= t.capacity && not (Queue.is_empty t.order) do
          match Queue.pop t.order with
          | victim, stamp ->
            (match Tbl.find_opt t.table victim with
             | Some e when e.stamp = stamp ->
               Tbl.remove t.table victim;
               t.counters.evictions <- t.counters.evictions + 1
             | _ -> ())
        done;
        t.tick <- t.tick + 1;
        Queue.push (key, t.tick) t.order;
        Tbl.replace t.table key
          { cost; generation = Registry.generation registry; stamp = t.tick })

let pp_counters ppf t =
  let c = counters t in
  Fmt.pf ppf
    "hits %d, misses %d (stale %d), evictions %d, entries %d, verify rejects %d"
    c.hits c.misses c.stale c.evictions c.entries c.verify_rejects
