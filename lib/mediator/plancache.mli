(** Cross-query plan/cost cache, invalidated by the registry generation.

    Complete estimation results (one cost per objective variable per plan)
    are kept across queries, keyed on the canonical structural hash of the
    plan ({!Disco_algebra.Plan.hash}). Each entry is stamped with the
    {!Disco_core.Registry.generation} in force when it was computed; a lookup
    under a newer generation drops the entry instead of serving it, so model
    writes — rule registration, [let] updates, calibration adjustment,
    historical-tuning feedback (paper §4.3) — can never be shadowed by an
    old cached cost. Eviction is FIFO under a fixed capacity.

    Admission can be guarded by a verifier ({!create}'s [verify]): a plan
    failing verification is never admitted (counted in [verify_rejects]).
    Because every stored entry passed verification at its stamped
    generation and lookups drop entries from any other generation, a
    served cost is always one verified against a registry state the
    current generation still matches — re-verifying on lookup would be
    redundant. *)

open Disco_algebra
open Disco_core

type t

(** Hit/miss/eviction counters, exposed for the CLI, the cache bench and
    the server's metrics endpoint. An immutable snapshot taken in one
    critical section: [hits + misses] always equals the lookups performed
    before the snapshot, even under concurrent traffic. *)
type counters = {
  hits : int;
  misses : int;     (** includes stale lookups *)
  stale : int;      (** entries dropped because the model changed *)
  evictions : int;  (** entries dropped by the capacity bound *)
  entries : int;    (** table size at snapshot time *)
  verify_rejects : int;  (** plans refused admission by the verifier *)
}

val create : ?capacity:int -> ?verify:(Registry.t -> Plan.t -> bool) -> unit -> t
(** An empty cache holding at most [capacity] (default 4096) entries.
    [verify] (default: accept) gates admission in {!add}: it runs outside
    the cache lock (it may walk the whole plan) and must be pure. *)

val find : t -> Registry.t -> objective:Disco_costlang.Ast.cost_var -> Plan.t -> float option
(** The cached cost of [plan] under [objective], if present and computed
    under the registry's current generation. A stale entry is dropped and
    reported as a miss. *)

val add : t -> Registry.t -> objective:Disco_costlang.Ast.cost_var -> Plan.t -> float -> unit
(** Record a freshly computed cost, stamped with the current generation,
    evicting the oldest entries if the capacity is reached. *)

val counters : t -> counters
(** A consistent snapshot of the counters, taken under the cache lock. *)

val size : t -> int

val clear : t -> unit
(** Drop all entries and reset the counters. *)

val pp_counters : Format.formatter -> t -> unit
