(* Per-source health tracking for the mediator's submit policy.

   Each source carries a consecutive-failure circuit breaker: after
   [breaker_threshold] consecutive exhausted submit attempts the circuit
   opens for [breaker_cooldown_ms] of simulated time, during which the
   optimizer excludes the source from planning. Once the cooldown elapses
   the next availability check admits a single half-open probe — exactly
   one caller wins admission, concurrent callers are refused until the
   probe settles; a successful submit closes the circuit, a failed one
   reopens it for another cooldown. All times are simulated ms, supplied
   by the caller (the mediator owns the clock). *)

type policy = {
  timeout_ms : float;         (* per-attempt bound on injected anomalies *)
  max_attempts : int;         (* submits per subplan, including the first *)
  backoff_base_ms : float;    (* wait before the first retry *)
  backoff_factor : float;     (* multiplier per further retry *)
  breaker_threshold : int;    (* consecutive failures that open the circuit *)
  breaker_cooldown_ms : float;(* open duration before a half-open probe *)
}

let default_policy =
  { timeout_ms = 10_000.;
    max_attempts = 3;
    backoff_base_ms = 250.;
    backoff_factor = 2.;
    breaker_threshold = 3;
    breaker_cooldown_ms = 60_000. }

type state = Closed | Open of { until : float } | Half_open of { probing : bool }

type entry = {
  mutable state : state;
  mutable consecutive_failures : int;
  mutable successes : int;
  mutable failures : int;   (* exhausted attempt budgets, not single attempts *)
  mutable retries : int;
  mutable probes : int;     (* half-open probes admitted *)
  (* simulated time past which an admitted-but-unsettled probe is presumed
     lost (its query died between planning and submit) and a new probe may
     be admitted; meaningful only in [Half_open { probing = true }] *)
  mutable probe_lost_at : float;
  mutable last_error : string option;
}

type t = {
  policy : policy;
  entries : (string, entry) Hashtbl.t;
  (* guards the table and every per-source entry: scatter-gather execution
     reads availability and reports outcomes from several domains; each
     operation is a short read-modify-write, so one lock suffices and keeps
     the counters and breaker transitions exact *)
  lock : Mutex.t;
}

let create ?(policy = default_policy) () =
  { policy; entries = Hashtbl.create 8; lock = Mutex.create () }

let policy t = t.policy

(* caller holds [t.lock] *)
let entry t source =
  match Hashtbl.find_opt t.entries source with
  | Some e -> e
  | None ->
    let e =
      { state = Closed;
        consecutive_failures = 0;
        successes = 0;
        failures = 0;
        retries = 0;
        probes = 0;
        probe_lost_at = 0.;
        last_error = None }
    in
    Hashtbl.add t.entries source e;
    e

let state t source = Mutex.protect t.lock (fun () -> (entry t source).state)

(* caller holds [t.lock]: admit the caller as the in-flight probe *)
let admit_probe t e ~now =
  e.state <- Half_open { probing = true };
  e.probes <- e.probes + 1;
  e.probe_lost_at <- now +. t.policy.breaker_cooldown_ms;
  true

let available t ~now source =
  Mutex.protect t.lock (fun () ->
      let e = entry t source in
      match e.state with
      | Closed -> true
      | Open { until } when now >= until ->
        (* cooldown elapsed: admit exactly this caller as the probe; its
           outcome settles the circuit, everyone else is refused meanwhile *)
        admit_probe t e ~now
      | Open _ -> false
      | Half_open { probing = false } ->
        (* a previously admitted probe was returned unused — hand the slot
           to this caller *)
        admit_probe t e ~now
      | Half_open { probing = true } when now >= e.probe_lost_at ->
        (* the in-flight probe never settled (its query died between
           planning and submit): presume it lost after a further cooldown
           and admit a fresh one, so the source is not stuck half-open *)
        admit_probe t e ~now
      | Half_open { probing = true } -> false)

let release_probe t source =
  Mutex.protect t.lock (fun () ->
      let e = entry t source in
      match e.state with
      | Half_open { probing = true } ->
        e.state <- Half_open { probing = false }
      | Closed | Open _ | Half_open { probing = false } -> ())

let retry_at t source =
  Mutex.protect t.lock (fun () ->
      match (entry t source).state with
      | Open { until } -> until
      | Closed | Half_open _ -> 0.)

let on_success t source =
  Mutex.protect t.lock (fun () ->
      let e = entry t source in
      e.successes <- e.successes + 1;
      e.consecutive_failures <- 0;
      e.state <- Closed)

let on_failure t ~now source ~reason =
  Mutex.protect t.lock (fun () ->
      let e = entry t source in
      e.failures <- e.failures + 1;
      e.consecutive_failures <- e.consecutive_failures + 1;
      e.last_error <- Some reason;
      let open_until = now +. t.policy.breaker_cooldown_ms in
      match e.state with
      | Half_open _ ->
        (* the probe failed: straight back to open *)
        e.state <- Open { until = open_until }
      | Closed when e.consecutive_failures >= t.policy.breaker_threshold ->
        e.state <- Open { until = open_until }
      | Closed | Open _ -> ())

let note_retry t source =
  Mutex.protect t.lock (fun () ->
      let e = entry t source in
      e.retries <- e.retries + 1)

type row = {
  source : string;
  row_state : state;
  ok : int;
  failed : int;
  retried : int;
  consecutive : int;
  probed : int;
  error : string option;
}

let report t =
  Mutex.protect t.lock @@ fun () ->
  Hashtbl.fold
    (fun source e acc ->
      { source;
        row_state = e.state;
        ok = e.successes;
        failed = e.failures;
        retried = e.retries;
        consecutive = e.consecutive_failures;
        probed = e.probes;
        error = e.last_error }
      :: acc)
    t.entries []
  |> List.sort (fun a b -> String.compare a.source b.source)

let pp_state ppf = function
  | Closed -> Fmt.string ppf "closed"
  | Open { until } -> Fmt.pf ppf "open(until %.0fms)" until
  | Half_open { probing = true } -> Fmt.string ppf "half-open(probing)"
  | Half_open { probing = false } -> Fmt.string ppf "half-open"
