(* The mediator query optimizer (paper §2.2): enumerates access plans —
   join orders (bushy, via dynamic programming over connected subsets) and
   operator placement (wrapper-side subtrees under [submit] vs mediator-side
   composition) — and selects the plan with the lowest estimated TotalTime
   under the blended cost model.

   [enumerate] exhaustively generates complete plans (used by the validation
   benches, in particular the branch-and-bound ablation of §4.3.2);
   [optimize] is the DP used during normal query processing. *)

open Disco_common
open Disco_algebra
open Disco_core

(* One base relation of the query, with the selection pushed onto it and the
   attributes the rest of the query needs from it. The capability flags come
   from the wrapper's registration (paper §2.1): when a source cannot execute
   an operator, the mediator compensates on its side. *)
type base = {
  ref_ : Plan.collection_ref;
  pred : Pred.t;                  (* local selection; True if none *)
  project : string list option;   (* None: keep all attributes *)
  can_select : bool;
  can_project : bool;
}

type spec = {
  bases : base list;
  (* join predicates, each connecting two aliases *)
  joins : (string * string * Pred.t) list;
  (* whether a source can execute joins (capability, paper §2.1) *)
  can_join : string -> bool;
}

module Aliases = Set.Make (String)

(* Plan for one base relation, as executed inside its wrapper — only the
   operators the wrapper is capable of. *)
let base_plan (b : base) : Plan.t =
  let scan = Plan.Scan b.ref_ in
  let selected =
    if b.can_select && not (Pred.equal b.pred Pred.True) then
      Plan.Select (scan, b.pred)
    else scan
  in
  match b.project with
  | Some attrs when b.can_project -> Plan.Project (selected, attrs)
  | _ -> selected

(* The part of the base selection the wrapper cannot execute: applied by the
   mediator, above the submit. *)
let base_residual (b : base) : Pred.t = if b.can_select then Pred.True else b.pred

(* A single base relation as a complete mediator-side plan: submit the
   wrapper-capable part, apply the residual above. *)
let submit_base (b : base) : Plan.t =
  let p = Plan.Submit (b.ref_.Plan.source, base_plan b) in
  let residual = base_residual b in
  if Pred.equal residual Pred.True then p else Plan.Select (p, residual)

(* Per-alias index of the join predicates touching each alias, built once
   per enumeration/optimization. [connecting] visits only the joins adjacent
   to the smaller side of a split instead of scanning the full [spec.joins]
   list for every split of every subset. Entries carry their position in
   [spec.joins] so the connecting conjunction keeps declaration order,
   exactly as the direct scan produced it. *)
type adjacency = (string, (int * string * string * Pred.t) list) Hashtbl.t

let adjacency_of (spec : spec) : adjacency =
  let adj : adjacency = Hashtbl.create 16 in
  let add alias e =
    Hashtbl.replace adj alias
      (e :: Option.value ~default:[] (Hashtbl.find_opt adj alias))
  in
  List.iteri
    (fun i (a, b, p) ->
      let e = (i, a, b, p) in
      add a e;
      add b e)
    spec.joins;
  adj

(* Join predicates crossing between the disjoint alias sets [s1] and [s2],
   in [spec.joins] order. Each crossing join is adjacent to exactly one
   alias of the side we iterate (its endpoints lie in different sets), so no
   deduplication is needed. *)
let connecting (adj : adjacency) s1 s2 =
  let smaller, other =
    if Aliases.cardinal s1 <= Aliases.cardinal s2 then (s1, s2) else (s2, s1)
  in
  let hits = ref [] in
  Aliases.iter
    (fun alias ->
      List.iter
        (fun (i, a, b, p) ->
          let o = if String.equal a alias then b else a in
          if Aliases.mem o other then hits := (i, p) :: !hits)
        (Option.value ~default:[] (Hashtbl.find_opt adj alias)))
    smaller;
  List.map snd
    (List.sort (fun (i, _) (j, _) -> Int.compare i j) !hits)

(* A candidate subplan during enumeration: either still inside one wrapper
   (unwrapped), or already a mediator-side plan whose leaves are submits. *)
type site = At_source of string | At_mediator

type candidate = {
  plan : Plan.t;
  site : site;
  aliases : Aliases.t;
  (* selection a capability-limited wrapper could not execute; applied by the
     mediator right above the submit *)
  residual : Pred.t;
}

let wrap (c : candidate) : candidate =
  match c.site with
  | At_mediator -> c
  | At_source s ->
    let p = Plan.Submit (s, c.plan) in
    let p =
      if Pred.equal c.residual Pred.True then p else Plan.Select (p, c.residual)
    in
    { plan = p; site = At_mediator; aliases = c.aliases; residual = Pred.True }

(* Combine two disjoint candidates with a join, in both orientations (join
   costs are asymmetric: the inner input may be probed via an index).
   Wrapper-side joins are only possible when both sides live in the same
   source. *)
let combine spec (adj : adjacency) (l : candidate) (r : candidate) :
    candidate list =
  let preds = connecting adj l.aliases r.aliases in
  if preds = [] then []
  else
    let pred = Pred.conj preds in
    let aliases = Aliases.union l.aliases r.aliases in
    let mediator_side =
      let l' = wrap l and r' = wrap r in
      [ { plan = Plan.Join (l'.plan, r'.plan, pred);
          site = At_mediator;
          aliases;
          residual = Pred.True };
        { plan = Plan.Join (r'.plan, l'.plan, pred);
          site = At_mediator;
          aliases;
          residual = Pred.True } ]
    in
    match l.site, r.site with
    | At_source s1, At_source s2 when String.equal s1 s2 && spec.can_join s1 ->
      let residual = Pred.conj (Pred.conjuncts l.residual @ Pred.conjuncts r.residual) in
      { plan = Plan.Join (l.plan, r.plan, pred); site = At_source s1; aliases; residual }
      :: { plan = Plan.Join (r.plan, l.plan, pred); site = At_source s1; aliases; residual }
      :: mediator_side
    | _ -> mediator_side

(* All non-empty proper splits of a list (first element pinned to the left
   side, avoiding mirror duplicates). *)
let splits = function
  | [] | [ _ ] -> []
  | first :: rest ->
    let n = List.length rest in
    let all = ref [] in
    for mask = 0 to (1 lsl n) - 1 do
      let left = ref [ first ] and right = ref [] in
      List.iteri
        (fun i x -> if mask land (1 lsl i) <> 0 then left := x :: !left else right := x :: !right)
        rest;
      if !right <> [] then all := (List.rev !left, List.rev !right) :: !all
    done;
    !all

(* --- Exhaustive enumeration ------------------------------------------------- *)

(* All complete mediator-side plans joining every base (small N only). *)
let enumerate (spec : spec) : Plan.t list =
  let adj = adjacency_of spec in
  let rec gen (bs : base list) : candidate list =
    match bs with
    | [] -> []
    | [ b ] ->
      [ { plan = base_plan b;
          site = At_source b.ref_.Plan.source;
          aliases = Aliases.singleton b.ref_.Plan.binding;
          residual = base_residual b } ]
    | _ ->
      List.concat_map
        (fun (lbs, rbs) ->
          List.concat_map
            (fun l -> List.concat_map (fun r -> combine spec adj l r) (gen rbs))
            (gen lbs))
        (splits bs)
  in
  match spec.bases with
  | [] -> []
  | [ b ] -> [ submit_base b ]
  | bs ->
    let complete = gen bs in
    List.filter_map
      (fun c ->
        if Aliases.cardinal c.aliases = List.length bs then Some (wrap c).plan
        else None)
      complete

(* --- Cost-based selection ---------------------------------------------------- *)

type stats = {
  mutable plans_considered : int;
  mutable plans_aborted : int;
  mutable formula_evals : int;
}

let new_stats () = { plans_considered = 0; plans_aborted = 0; formula_evals = 0 }

(* Counters are never shared across domains: each parallel slot fills its
   own [stats] (a [cost_of] call mutates exactly the record it was handed)
   and the partials are merged once, at the fork/join barrier, in slot
   order. One merge per partial — never double- or under-counted; the
   regression test in test/test_parallel.ml pins exact values. *)
let merge_stats ~into (s : stats) =
  into.plans_considered <- into.plans_considered + s.plans_considered;
  into.plans_aborted <- into.plans_aborted + s.plans_aborted;
  into.formula_evals <- into.formula_evals + s.formula_evals

(* What the optimizer minimizes: the time to the complete answer, or the
   time to the first object (the paper's TimeFirst — interactive clients).
   Pipelined strategies (index joins) tend to win the latter; blocking ones
   (mediator hash joins, sorts) the former. *)
type objective = Total_time | First_tuple

let objective_var = function
  | Total_time -> Disco_costlang.Ast.Total_time
  | First_tuple -> Disco_costlang.Ast.Time_first

(* Estimate a complete plan; [bound] enables the early-abort heuristic of
   §4.3.2 (TotalTime objective only — TimeFirst is not monotone along the
   tree). Returns [None] when aborted.

   [memo] shares subtree annotations with earlier estimates of the same
   optimizer run; [cache] consults (and feeds) the cross-query plan cache. A
   cache hit can return a cost above [bound] where the uncached path would
   have aborted — callers compare against the best so far either way, so the
   selected plan is identical; only the abort counter differs. Aborted
   estimates are never cached. *)
let cost_of ?bound ?(objective = Total_time) ?memo ?cache ?shard registry
    (stats : stats) (plan : Plan.t) : float option =
  stats.plans_considered <- stats.plans_considered + 1;
  let var = objective_var objective in
  let cached =
    match cache with
    | Some c -> Plancache.find c registry ~objective:var plan
    | None -> None
  in
  match cached with
  | Some cost -> Some cost
  | None ->
    let evals = ref 0 in
    let bound = match objective with Total_time -> bound | First_tuple -> None in
    let result =
      try
        let ann =
          Estimator.estimate ?abort_above:bound ~evals ?memo ?shard
            ~require_vars:[ var ] registry plan
        in
        Some (Option.get (Estimator.var ann var))
      with Estimator.Aborted ->
        stats.plans_aborted <- stats.plans_aborted + 1;
        None
    in
    stats.formula_evals <- stats.formula_evals + !evals;
    (match result, cache with
     | Some cost, Some c -> Plancache.add c registry ~objective:var plan cost
     | _ -> ());
    result

module Pool = Disco_parallel.Pool

(* Pick the cheapest plan from an explicit list, optionally with
   branch-and-bound pruning. With [domains > 1] the list is split into
   contiguous chunks costed concurrently — each slot with its own memo,
   stats and prune bound, shard-isolated in the VM — and the chunk winners
   are reduced in chunk order under the same [c <= cost] keep-the-earlier
   tie-break the sequential fold applies, so the chosen plan and cost are
   bit-identical at any domain count. (With pruning on, [plans_aborted] may
   differ across domain counts: chunk-local bounds abort differently. The
   winner cannot change — an aborted plan's cost exceeds its chunk bound,
   which some already-kept plan achieved.) *)
let choose ?(prune = true) ?(objective = Total_time) ?memo ?cache
    ?(domains = 1) registry ?stats (plans : Plan.t list) :
    (Plan.t * float) option =
  let caller_stats = stats in
  let best_of ?memo ~shard stats plans =
    List.fold_left
      (fun best plan ->
        let bound = if prune then Option.map snd best else None in
        match
          cost_of ?bound ~objective ?memo ?cache ~shard registry stats plan
        with
        | None -> best
        | Some cost ->
          (match best with
           | Some (_, c) when c <= cost -> best
           | _ -> Some (plan, cost)))
      None plans
  in
  let pool = Pool.create domains in
  let finish stats result =
    (match caller_stats with
     | Some into when into != stats -> merge_stats ~into stats
     | _ -> ());
    result
  in
  if Pool.degree pool <= 1 then
    let stats = match caller_stats with Some s -> s | None -> new_stats () in
    best_of ?memo ~shard:0 stats plans
  else begin
    let chunks = Pool.chunk (Pool.degree pool) plans in
    let nchunks = Array.length chunks in
    let memos =
      Array.init nchunks (fun i ->
          if i = 0 then memo
          else Option.map (fun _ -> Estimator.new_memo ()) memo)
    in
    let slot_stats = Array.init nchunks (fun _ -> new_stats ()) in
    let results =
      Pool.run pool
        (fun slot ->
          best_of ?memo:memos.(slot) ~shard:slot slot_stats.(slot)
            chunks.(slot))
        nchunks
    in
    for s = 1 to nchunks - 1 do
      merge_stats ~into:slot_stats.(0) slot_stats.(s)
    done;
    finish slot_stats.(0)
      (Array.fold_left
         (fun best r ->
           match best, r with
           | Some (_, c), Some (_, c') when c <= c' -> best
           | _, Some pc -> Some pc
           | _, None -> best)
         None results)
  end

(* --- Dynamic programming ------------------------------------------------------ *)

module Key = struct
  type t = string list (* sorted aliases *)

  let of_aliases s = List.sort String.compare (Aliases.elements s)
end

(* DP over alias subsets: for each subset keep the best candidate per site
   (one per source for unwrapped plans, one mediator-side), stored with its
   cost so each candidate is costed exactly once per run — the incumbent's
   stored cost is compared against, never recomputed. [memo] (default on)
   shares subtree annotations across the run — candidates overlap massively,
   so without sharing the estimator re-runs formulas on identical subtrees
   thousands of times. [cache] is the cross-query cache; both only change
   what is recomputed, never the costs, so the chosen plan is identical with
   and without them (see test/test_plancache.ml). *)
(* Parallel structure: within one subset size every subset is independent —
   its splits read only strictly-smaller keys, and all its candidates land
   on its own key — so each size is a fork/join round: subsets are chunked
   contiguously across domains, every slot accumulates its subsets' entry
   lists locally (shard-isolated cost evaluation: own memo, own stats, own
   VM slot-cache shard), and the main domain installs the lists into the
   shared table at the barrier, in enumeration order. Costs are
   value-deterministic whatever slot computes them, so every comparison —
   the per-site [old_cost <= c_cost] keep-the-incumbent rule and the final
   [b <= cst] fold — resolves identically at any domain count, and the
   chosen plan, its cost, the DP table and [plans_considered] are
   bit-identical to the sequential run. Only [formula_evals] is
   configuration-dependent (per-slot memos change what is recomputed, never
   any value), exactly as PR 1's cache caveat. *)
let optimize ?(objective = Total_time) ?(memo = true) ?cache
    ?(available = fun _ -> true) ?(domains = 1) ?stats registry (spec : spec)
    : Plan.t * float =
  if spec.bases = [] then raise (Err.Plan_error "query has no relations");
  let caller_stats = stats in
  let pool = Pool.create domains in
  let p = Pool.degree pool in
  let memos =
    Array.init p (fun _ -> if memo then Some (Estimator.new_memo ()) else None)
  in
  let slot_stats = Array.init p (fun _ -> new_stats ()) in
  let adj = adjacency_of spec in
  let cost ~slot plan =
    match
      cost_of ~objective ?memo:memos.(slot) ?cache ~shard:slot registry
        slot_stats.(slot) plan
    with
    | Some c -> c
    | None -> infinity
  in
  let table : (Key.t, (candidate * float) list) Hashtbl.t = Hashtbl.create 64 in
  (* keep at most one candidate per site; [existing] is threaded, not read
     back from the table, so slots can accumulate without touching it *)
  let put_entry ~slot existing (c : candidate) =
    let same_site ((x : candidate), _) =
      match x.site, c.site with
      | At_mediator, At_mediator -> true
      | At_source a, At_source b -> String.equal a b
      | _ -> false
    in
    match List.find_opt same_site existing with
    | Some ((_, old_cost) as entry) ->
      let c_cost = cost ~slot c.plan in
      if old_cost <= c_cost then existing
      else (c, c_cost) :: List.filter (fun e -> e != entry) existing
    | None -> (c, cost ~slot c.plan) :: existing
  in
  (* singletons; a base whose source is unavailable (open circuit) is not
     seeded, so no plan ever touches it — with replicated collections the DP
     would route around it, with single-sourced ones the full-subset lookup
     below fails and the caller reports the unavailability *)
  List.iter
    (fun b ->
      if available b.ref_.Plan.source then begin
        let c =
          { plan = base_plan b;
            site = At_source b.ref_.Plan.source;
            aliases = Aliases.singleton b.ref_.Plan.binding;
            residual = base_residual b }
        in
        let key = Key.of_aliases c.aliases in
        let existing =
          Option.value ~default:[] (Hashtbl.find_opt table key)
        in
        let existing = put_entry ~slot:0 existing c in
        let existing = put_entry ~slot:0 existing (wrap c) in
        Hashtbl.replace table key existing
      end)
    spec.bases;
  (* grow subsets by size *)
  let aliases = List.map (fun b -> b.ref_.Plan.binding) spec.bases in
  let n = List.length aliases in
  let alias_arr = Array.of_list aliases in
  let subsets_of_size k =
    let out = ref [] in
    let rec go i chosen count =
      if count = k then out := List.rev chosen :: !out
      else if i < n then begin
        go (i + 1) (alias_arr.(i) :: chosen) (count + 1);
        if n - i - 1 >= k - count then go (i + 1) chosen count
      end
    in
    go 0 [] 0;
    !out
  in
  (* one subset's entry list, built against the (read-only) smaller sizes *)
  let process_subset ~slot subset =
    let entries = ref [] in
    List.iter
      (fun (left, right) ->
        let lkey = Key.of_aliases (Aliases.of_list left)
        and rkey = Key.of_aliases (Aliases.of_list right) in
        match Hashtbl.find_opt table lkey, Hashtbl.find_opt table rkey with
        | Some ls, Some rs ->
          List.iter
            (fun (l, _) ->
              List.iter
                (fun (r, _) ->
                  List.iter
                    (fun c -> entries := put_entry ~slot !entries c)
                    (combine spec adj l r))
                rs)
            ls
        | _ -> ())
      (splits subset);
    (Key.of_aliases (Aliases.of_list subset), !entries)
  in
  for size = 2 to n do
    let chunks = Pool.chunk p (subsets_of_size size) in
    let results =
      Pool.run pool
        (fun slot -> List.map (process_subset ~slot) chunks.(slot))
        (Array.length chunks)
    in
    (* install at the barrier, in enumeration order; a subset with no
       connecting joins stays absent, as the sequential path leaves it *)
    Array.iter
      (fun keyed ->
        List.iter
          (fun (key, entries) ->
            if entries <> [] then Hashtbl.replace table key entries)
          keyed)
      results
  done;
  let finish result =
    for s = 1 to p - 1 do
      merge_stats ~into:slot_stats.(0) slot_stats.(s)
    done;
    (match caller_stats with
     | Some into -> merge_stats ~into slot_stats.(0)
     | None -> ());
    result
  in
  let full = Key.of_aliases (Aliases.of_list aliases) in
  match Hashtbl.find_opt table full with
  | None | Some [] ->
    ignore (finish ());
    raise
      (Err.Plan_error
         "no complete plan found (disconnected join graph without cross \
          joins, or every source of a relation unavailable)")
  | Some cands ->
    (match
       List.fold_left
         (fun best (c, stored) ->
           let w = wrap c in
           (* wrapping is the identity on mediator-side candidates, whose
              stored cost is still exact; wrapper-side candidates change
              plan (submit + residual) and are costed once here *)
           let cst = if w == c then stored else cost ~slot:0 w.plan in
           match best with
           | Some (_, b) when b <= cst -> best
           | _ -> Some (w.plan, cst))
         None cands
     with
     | Some result -> finish result
     | None -> assert false)
